// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (the experiment IDs of DESIGN.md §4). Each benchmark runs the
// corresponding experiment and reports the paper's headline metrics via
// b.ReportMetric, so `go test -bench=.` regenerates the whole evaluation.
//
// The full workload matches the paper's scale (≈90 days, ≈200k requests);
// `go test -short -bench=.` uses the small workload instead.
package specweb

import (
	"sync"
	"testing"

	"specweb/internal/experiments"
	"specweb/internal/httpspec"
	"specweb/internal/loadgen"
	"specweb/internal/popularity"
	"specweb/internal/simulate"
)

var (
	benchOnce sync.Once
	benchWL   *experiments.Workload
	benchErr  error
)

func benchWorkload(b *testing.B) *experiments.Workload {
	b.Helper()
	benchOnce.Do(func() {
		cfg := experiments.DefaultWorkload()
		if testing.Short() {
			cfg = experiments.SmallWorkload()
		}
		benchWL, benchErr = experiments.Build(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchWL
}

// BenchmarkFigure1 regenerates the block-popularity profile (F1).
func BenchmarkFigure1(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	var res *experiments.Figure1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure1(w, 256<<10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Top10PctCoverage, "top10pct_req_coverage_%")
	b.ReportMetric(100*res.Rows[0].CumReqFrac, "first_block_coverage_%")
	b.ReportMetric(res.Lambda*1e9, "lambda_e-9_per_byte")
}

// BenchmarkClassification regenerates the §2 document census (T1).
func BenchmarkClassification(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	var res *experiments.ClassificationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Classification(w)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Counts[popularity.LocallyPopular]), "locally_popular_docs")
	b.ReportMetric(float64(res.Counts[popularity.RemotelyPopular]), "remotely_popular_docs")
	b.ReportMetric(float64(res.Counts[popularity.GloballyPopular]), "globally_popular_docs")
	b.ReportMetric(100*res.MeanUpdateRate[popularity.LocallyPopular], "local_update_%_per_day")
	b.ReportMetric(100*res.MeanUpdateRate[popularity.GloballyPopular], "global_update_%_per_day")
}

// BenchmarkFigure2 regenerates the allocation curves (F2).
func BenchmarkFigure2(b *testing.B) {
	var pts []experiments.Figure2Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Figure2(3, 6.247e-7, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	peak := 0
	for i, p := range pts {
		if p.Tight > pts[peak].Tight {
			peak = i
		}
	}
	b.ReportMetric(pts[peak].LambdaRatio, "tight_peak_lambda_ratio")
	b.ReportMetric(pts[0].Lax, "lax_alloc_at_small_lambda")
}

// BenchmarkSizing regenerates the eq. 10 sizing examples (T2).
func BenchmarkSizing(b *testing.B) {
	var rows []experiments.SizingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Sizing(0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].B0/1e6, "ten_servers_90pct_MB") // paper: ≈36
	b.ReportMetric(rows[1].B0/1e6, "hundred_servers_96pct_MB")
}

// BenchmarkFigure3 regenerates the dissemination sweep (F3).
func BenchmarkFigure3(b *testing.B) {
	w := benchWorkload(b)
	counts := []int{1, 2, 4, 8, 16}
	b.ResetTimer()
	var curves []experiments.Figure3Curve
	for i := 0; i < b.N; i++ {
		var err error
		curves, err = experiments.Figure3(w, []float64{0.10, 0.04}, counts)
		if err != nil {
			b.Fatal(err)
		}
	}
	last10 := curves[0].Points[len(curves[0].Points)-1]
	last4 := curves[1].Points[len(curves[1].Points)-1]
	b.ReportMetric(last10.ReductionPct, "reduction_%_top10pct_16proxies")
	b.ReportMetric(last4.ReductionPct, "reduction_%_top4pct_16proxies")
	b.ReportMetric(float64(last10.TotalStorage)/1e6, "storage_MB_top10pct_16proxies")
}

// BenchmarkFigure4 regenerates the dependency histogram (F4).
func BenchmarkFigure4(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	var res *experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure4(w, 20)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Pairs), "dependent_pairs")
	b.ReportMetric(100*res.EmbeddingMass, "embedding_peak_mass_%")
}

// BenchmarkFigure5 regenerates the threshold sweep (F5, and by reordering
// F6).
func BenchmarkFigure5(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	var pts []experiments.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Figure5(w, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.Tp == 0.25 {
			b.ReportMetric(p.Ratios.TrafficIncreasePct(), "traffic_%_at_tp0.25")
			b.ReportMetric(p.Ratios.ServerLoadReductionPct(), "load_red_%_at_tp0.25")
			b.ReportMetric(p.Ratios.ServiceTimeReductionPct(), "time_red_%_at_tp0.25")
			b.ReportMetric(p.Ratios.MissRateReductionPct(), "miss_red_%_at_tp0.25")
		}
	}
}

// BenchmarkHeadline regenerates the §3.3 operating points (T3).
func BenchmarkHeadline(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	var rows []experiments.HeadlineRow
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure5(w, nil)
		if err != nil {
			b.Fatal(err)
		}
		rows, err = experiments.Headline(pts, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Paper: 5% → 30/23/18; 10% → 35/27/23.
	b.ReportMetric(rows[0].LoadReduction, "load_red_%_at_5pct_traffic")
	b.ReportMetric(rows[0].TimeReduction, "time_red_%_at_5pct_traffic")
	b.ReportMetric(rows[0].MissReduction, "miss_red_%_at_5pct_traffic")
	b.ReportMetric(rows[1].LoadReduction, "load_red_%_at_10pct_traffic")
	b.ReportMetric(rows[3].LoadReduction, "load_red_%_at_100pct_traffic")
}

// BenchmarkStability regenerates the update-cycle study (T4).
func BenchmarkStability(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	var rows []experiments.StabilityRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Stability(w, 0.25)
		if err != nil {
			b.Fatal(err)
		}
	}
	byDP := map[[2]int]experiments.StabilityRow{}
	for _, r := range rows {
		byDP[[2]int{r.UpdateCycleDays, r.HistoryDays}] = r
	}
	fresh := byDP[[2]int{1, 60}].Ratios.ServerLoadReductionPct()
	b.ReportMetric(fresh, "load_red_%_D1")
	b.ReportMetric(fresh-byDP[[2]int{7, 60}].Ratios.ServerLoadReductionPct(), "degradation_%_D7")
	b.ReportMetric(fresh-byDP[[2]int{60, 60}].Ratios.ServerLoadReductionPct(), "degradation_%_D60")
}

// BenchmarkMaxSize regenerates the MaxSize study (T5).
func BenchmarkMaxSize(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	var rows []experiments.MaxSizeRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.MaxSizeSweep(w, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	if best, err := experiments.BestMaxSize(rows, 3); err == nil {
		b.ReportMetric(float64(best.MaxSize)/1024, "best_maxsize_KB_at_3pct")
	}
	if best, err := experiments.BestMaxSize(rows, 10); err == nil {
		b.ReportMetric(float64(best.MaxSize)/1024, "best_maxsize_KB_at_10pct")
	}
}

// BenchmarkCaching regenerates the client-cache study (T6).
func BenchmarkCaching(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	var rows []experiments.CachingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.CachingTable(w, 0.25)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Name {
		case "single-session ∞":
			b.ReportMetric(r.Ratios.ServerLoadReductionPct(), "load_red_%_single_session")
		case "multi-session ∞":
			b.ReportMetric(r.Ratios.ServerLoadReductionPct(), "load_red_%_infinite_cache")
		}
	}
}

// BenchmarkCooperative regenerates the cooperative-clients study (T7).
func BenchmarkCooperative(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	var rows []experiments.CooperativeRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Cooperative(w, []float64{0.25})
		if err != nil {
			b.Fatal(err)
		}
	}
	r := rows[0]
	b.ReportMetric(r.Plain.TrafficIncreasePct(), "plain_traffic_%")
	b.ReportMetric(r.Cooperative.TrafficIncreasePct(), "cooperative_traffic_%")
	b.ReportMetric(r.Cooperative.ServerLoadReductionPct(), "cooperative_load_red_%")
}

// BenchmarkPrefetch regenerates the delivery-mode study (T8).
func BenchmarkPrefetch(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	var rows []experiments.PrefetchRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.PrefetchTable(w, 0.25)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Mode {
		case simulate.ModePush:
			b.ReportMetric(r.Ratios.ServerLoadReductionPct(), "push_load_red_%")
		case simulate.ModeHints:
			b.ReportMetric(r.Ratios.TrafficIncreasePct(), "hints_traffic_%")
		case simulate.ModeHybrid:
			b.ReportMetric(r.Ratios.ServerLoadReductionPct(), "hybrid_load_red_%")
		}
	}
}

// BenchmarkAblationClosure compares the three dependency-matrix
// constructions (DESIGN.md ablation).
func BenchmarkAblationClosure(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	var rows []experiments.ClosureAblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ClosureAblation(w, 0.25)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Name {
		case "P* (direct estimate)":
			b.ReportMetric(r.Ratios.ServerLoadReductionPct(), "direct_pstar_load_red_%")
			b.ReportMetric(r.Ratios.TrafficIncreasePct(), "direct_pstar_traffic_%")
		case "P* (analytic closure)":
			b.ReportMetric(r.Ratios.ServerLoadReductionPct(), "analytic_pstar_load_red_%")
			b.ReportMetric(r.Ratios.TrafficIncreasePct(), "analytic_pstar_traffic_%")
		case "raw P":
			b.ReportMetric(r.Ratios.ServerLoadReductionPct(), "raw_p_load_red_%")
			b.ReportMetric(r.Ratios.TrafficIncreasePct(), "raw_p_traffic_%")
		}
	}
}

// BenchmarkAblationAllocation compares the exponential closed form against
// the empirical greedy optimum (DESIGN.md ablation).
func BenchmarkAblationAllocation(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	var cmp *experiments.AllocationComparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = experiments.CompareAllocation(w, 8, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*cmp.AlphaGreedy, "greedy_alpha_%")
	b.ReportMetric(100*cmp.AlphaModel, "exp_model_alpha_%")
	b.ReportMetric(100*cmp.ModelShortfall, "model_shortfall_pp")
}

// BenchmarkAblationSpecialized compares uniform replication with per-proxy
// geographic specialization (§2.4's remark; DESIGN.md ablation).
func BenchmarkAblationSpecialized(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	var uni, spec float64
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Figure3(w, []float64{0.10}, []int{8})
		if err != nil {
			b.Fatal(err)
		}
		uni = curves[0].Points[0].ReductionPct
		scurves, err := experiments.Figure3Specialized(w, 0.10, []int{8})
		if err != nil {
			b.Fatal(err)
		}
		spec = scurves[0].ReductionPct
	}
	b.ReportMetric(uni, "uniform_reduction_%")
	b.ReportMetric(spec, "specialized_reduction_%")
}

// BenchmarkClusterValidation closes the loop on §2.1's cluster model: the
// eq. 4–5 allocation versus naive and empirical baselines, predicted versus
// measured α on a held-out window.
func BenchmarkClusterValidation(b *testing.B) {
	days := 40
	if testing.Short() {
		days = 16
	}
	var rows []experiments.ClusterRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ClusterValidation(7, 4, 800<<10, days)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Strategy.String() {
		case "exponential":
			b.ReportMetric(100*r.PredictedAlpha, "exp_predicted_alpha_%")
			b.ReportMetric(100*r.MeasuredAlpha, "exp_measured_alpha_%")
		case "greedy":
			b.ReportMetric(100*r.MeasuredAlpha, "greedy_measured_alpha_%")
		case "equal":
			b.ReportMetric(100*r.MeasuredAlpha, "equal_measured_alpha_%")
		}
	}
}

// BenchmarkUserProfile regenerates the §3.4 closing comparison: per-user
// client prefetching versus server-initiated speculative service, split by
// repeat and novel accesses.
func BenchmarkUserProfile(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	var rows []experiments.UserProfileRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.UserProfileStudy(w, 0.3)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Name {
		case "client user-profile prefetch":
			b.ReportMetric(float64(r.RepeatConversions), "client_repeat_conversions")
			b.ReportMetric(float64(r.NovelConversions), "client_novel_conversions")
		case "server speculative service":
			b.ReportMetric(float64(r.RepeatConversions), "server_repeat_conversions")
			b.ReportMetric(float64(r.NovelConversions), "server_novel_conversions")
		}
	}
}

// BenchmarkLoadBalance regenerates the §2.3 bottleneck/load-balance study
// (T11): home-server relief and busiest-proxy concentration, with dynamic
// shielding at half the busiest observed proxy load.
func BenchmarkLoadBalance(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	var rows []experiments.LoadBalanceRow
	for i := 0; i < b.N; i++ {
		open, err := experiments.LoadBalance(w, 0.10, []int{1, 4, 16}, 0)
		if err != nil {
			b.Fatal(err)
		}
		capacity := int64(open[0].MaxProxySharePct / 200 * float64(w.Trace.TotalBytes()))
		rows, err = experiments.LoadBalance(w, 0.10, []int{1, 4, 16}, capacity)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.RootShedPct, "root_relief_%_16proxies")
	b.ReportMetric(last.MaxProxySharePct, "busiest_proxy_%_16proxies")
	b.ReportMetric(last.ShieldedMaxSharePct, "busiest_shielded_%_16proxies")
}

// BenchmarkMaxSizeMedia reruns the T5 MaxSize study on the multimedia
// workload, where the Pareto object tail makes the cap bind (on the
// department workload it does not — see EXPERIMENTS.md).
func BenchmarkMaxSizeMedia(b *testing.B) {
	cfg := experiments.MediaWorkload()
	cfg.Days = 30
	cfg.SessionsPerDay = 100
	if testing.Short() {
		cfg.Days = 10
		cfg.SessionsPerDay = 50
	}
	w, err := experiments.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rows []experiments.MaxSizeRow
	for i := 0; i < b.N; i++ {
		rows, err = experiments.MaxSizeSweep(w, []float64{0.5, 0.25, 0.1},
			[]int64{0, 256 << 10, 29 << 10, 15 << 10})
		if err != nil {
			b.Fatal(err)
		}
	}
	if best, err := experiments.BestMaxSize(rows, 10); err == nil {
		b.ReportMetric(float64(best.MaxSize)/1024, "best_maxsize_KB_at_10pct")
		b.ReportMetric(best.Ratios.ServerLoadReductionPct(), "best_load_red_%_at_10pct")
	}
	if best, err := experiments.BestMaxSize(rows, 30); err == nil {
		b.ReportMetric(float64(best.MaxSize)/1024, "best_maxsize_KB_at_30pct")
	}
}

// BenchmarkSpecbench drives the live httpspec stack through the
// deterministic load generator (cmd/specbench's engine) and reports the
// measured wall-clock and paper metrics for the speculative arm. Each
// iteration is one full warmup+measurement run.
func BenchmarkSpecbench(b *testing.B) {
	cfg := loadgen.Config{
		Workload:  experiments.SmallWorkload(),
		Speculate: true,
		Mode:      httpspec.ModePush,
		MaxPush:   16,
	}
	if !testing.Short() {
		cfg.Workload = experiments.DefaultWorkload()
	}
	b.ResetTimer()
	var res *loadgen.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, _, _, err = loadgen.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Timing.Throughput, "req/s")
	b.ReportMetric(res.Timing.Latency.P99, "p99_ms")
	b.ReportMetric(res.Ratios.Bandwidth, "bandwidth_ratio")
	b.ReportMetric(res.Ratios.ServerLoad, "server_load_ratio")
	b.ReportMetric(res.Timing.ServiceTime, "service_time_ratio")
}
