GO ?= go

.PHONY: all build vet test race bench bench-short clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full 90-day evaluation workload; takes several minutes.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Small workload; seconds.
bench-short:
	$(GO) test -short -bench=. -benchmem -run=^$$ .

clean:
	$(GO) clean ./...
