GO ?= go

.PHONY: all build vet test race chaos bench bench-short clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: chaos
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection suite: the resilience layer (retry/backoff, circuit
# breaking, deadline propagation, the fault injector itself) and the
# proxy/client/replay failure paths, all under the race detector.
chaos:
	$(GO) test -race ./internal/resilience/... \
		-run 'Test' -count=1
	$(GO) test -race ./internal/httpspec/ -count=1 \
		-run 'TestProxyPartialDisseminate|TestProxyServesStaleWhenOriginDown|TestProxyBreakerOpensAndRecovers|TestProxyStripsHopByHopHeaders|TestStripHopByHop|TestChaosReplayAvailability|TestReplaySummaryChaosFieldOptIn|TestClientCountsStaleServes|TestClientRetriesThroughFaults'

# Full 90-day evaluation workload; takes several minutes.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Small workload; seconds.
bench-short:
	$(GO) test -short -bench=. -benchmem -run=^$$ .

clean:
	$(GO) clean ./...
