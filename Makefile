GO ?= go

.PHONY: all build vet lint test race chaos overload bench bench-short \
	bench-smoke specbench bench-run bench-gate bench-baseline \
	bench-scenarios bench-scenarios-baseline \
	bench-restart bench-restart-baseline bench-memory \
	bench-stream bench-stream-baseline bench-distributed \
	fuzz-checkpoint fuzz-estimator golden clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fast lint pass: gofmt must leave no file behind, then go vet. Kept as
# its own target so CI can fail formatting in seconds, before any build.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

test: chaos overload
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection suite: the resilience layer (retry/backoff, circuit
# breaking, deadline propagation, the fault injector itself) and the
# proxy/client/replay failure paths, all under the race detector.
chaos:
	$(GO) test -race ./internal/resilience/... \
		-run 'Test' -count=1
	$(GO) test -race ./internal/httpspec/ -count=1 \
		-run 'TestProxyPartialDisseminate|TestProxyServesStaleWhenOriginDown|TestProxyBreakerOpensAndRecovers|TestProxyStripsHopByHopHeaders|TestStripHopByHop|TestChaosReplayAvailability|TestReplaySummaryChaosFieldOptIn|TestClientCountsStaleServes|TestClientRetriesThroughFaults|TestServerDegradationLadder'

# Overload-control suite: the admission controller and governor unit
# tests, the server degradation ladder, and the open-loop acceptance run
# (2x saturation: demand p99 near the no-speculation baseline with >=90%
# of shed work speculative-class), all under the race detector.
overload:
	$(GO) test -race ./internal/overload/... -count=1
	$(GO) test -race ./internal/httpspec/ -count=1 \
		-run 'TestServerAdmissionSheds|TestServerDegradationLadder|TestStatsOmitOverloadWhenDisabled|TestOpenLoopOverloadAcceptance'

# Full 90-day evaluation workload; takes several minutes.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Small workload; seconds.
bench-short:
	$(GO) test -short -bench=. -benchmem -run=^$$ .

# Hot-path micro-benchmarks under the race detector: a fixed iteration
# count (-benchtime=100x) makes this a correctness smoke test of the
# lock-free read path, not a timing run — it catches races and alloc
# regressions cheaply in CI.
bench-smoke:
	$(GO) test -race -run '^$$' -benchtime=100x -cpu 1,4,8 \
		-bench 'BenchmarkEngine' ./internal/core/
	$(GO) test -race -run '^$$' -benchtime=5x \
		-bench 'BenchmarkClosureSerial|BenchmarkClosureParallel|BenchmarkFreeze|BenchmarkFrozenThresholdRow' \
		./internal/markov/

# Deterministic load-generation benchmark (cmd/specbench). bench-run
# writes BENCH.json; bench-gate additionally fails on regression against
# the committed baseline; bench-baseline refreshes that baseline (run on
# an idle machine and commit the diff deliberately).
specbench:
	$(GO) build -o bin/specbench ./cmd/specbench

bench-run: specbench
	./bin/specbench -short -o BENCH.json

bench-gate: specbench
	./bin/specbench -short -o BENCH.json -baseline testdata/bench_baseline.json

bench-baseline: specbench
	./bin/specbench -short -o testdata/bench_baseline.json

# Adversarial scenario suite (estguard chaos gate): clean control, the five
# adversarial profiles under guard, and an unguarded crawler arm. The gate
# enforces the structural invariants (guarded crawler interception strictly
# beats unguarded; per-scenario degradation bounds vs clean) and drift
# bounds against the committed baseline suite.
bench-scenarios: specbench
	./bin/specbench -short -reps 1 -scenario-suite -o BENCH-scenarios.json \
		-baseline testdata/scenarios_baseline.json

bench-scenarios-baseline: specbench
	./bin/specbench -short -reps 1 -scenario-suite -o testdata/scenarios_baseline.json

# Kill/restart chaos suite (durability gate): the same workload through an
# uninterrupted control, a warm restart (checkpoint recovery), a cold
# restart, and a warm restart forced through the corrupt-frame fallback
# ladder. The gate enforces the durability invariants (warm recovery
# within 5% of uninterrupted, warm strictly beats cold, corruption falls
# back to last-good, zero dropped demand) plus drift bounds against the
# committed baseline.
bench-restart: specbench
	./bin/specbench -restart -short -o BENCH-restart.json \
		-baseline testdata/restart_baseline.json

bench-restart-baseline: specbench
	./bin/specbench -restart -short -o testdata/restart_baseline.json

# Estimator memory gate: a fixed-iteration, deterministic run asserting
# the bounded estimator's analytic footprint stays flat (≤1.1×) across a
# 10× document-cardinality jump while the exact estimator's grows
# multiplicatively. Writes the BENCH-memory.json artifact CI uploads.
bench-memory:
	BENCH_MEMORY_OUT=$(CURDIR)/BENCH-memory.json \
		$(GO) test ./internal/markov/ -run TestBoundedMemoryGate -count=1 -v

# Streaming gate: (1) byte-identity — over a spec × overload cube and two
# worker counts, driving the benchmark from per-client seeded stream
# cursors must produce exactly the deterministic report that materializing
# the same stream produces; (2) the memory bound — at a 100k-client
# population the streamed trace pipeline's peak live heap must stay within
# 0.2× of what materializing the trace costs. Writes the BENCH-stream.json
# artifact; the deterministic fields (request/client counts, cell
# coverage) are gated against the committed baseline.
bench-stream: specbench
	./bin/specbench -stream-gate -o BENCH-stream.json \
		-baseline testdata/stream_baseline.json

bench-stream-baseline: specbench
	./bin/specbench -stream-gate -o testdata/stream_baseline.json

# Distributed smoke: a coordinator self-execs two local workers, ships
# each a disjoint client shard over the HTTP job protocol, merges the
# partial reports, and (-verify-single) requires the merge to be
# byte-identical to running the same config in one process.
bench-distributed: specbench
	./bin/specbench -short -reps 1 -stream -spawn 2 -verify-single \
		-o BENCH-distributed.json

# Checkpoint decoder fuzzing: truncated, bit-flipped, and version-skewed
# frames must fail with typed errors, never panic.
fuzz-checkpoint:
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 30s ./internal/checkpoint/

# Bounded-estimator fuzzing: interleaved record/evict/freeze/warm-start
# sequences must never panic, never roll the eviction ledger backwards,
# and every exported v2 frame must re-encode canonically.
fuzz-estimator:
	$(GO) test -run '^$$' -fuzz FuzzBoundedEstimator -fuzztime 30s ./internal/core/

# Regenerate the golden files pinning the experiments renderers.
golden:
	$(GO) test ./internal/experiments -run Golden -update

clean:
	$(GO) clean ./...
