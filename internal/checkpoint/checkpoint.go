// Package checkpoint makes the speculation engine's trained state durable.
//
// The paper's speculative service is only worth running while the server
// holds an estimated P[i,j]; a crash or redeploy that discards the frozen
// Markov snapshot sends interception to ~0 until the estimator re-trains —
// exactly the server-load regression the paper exists to avoid. This
// package provides a versioned, checksummed binary codec for that state
// (the frozen CSR matrix, the policy knobs in force, the estguard
// per-client trust/quarantine summaries, and the snapshot judge's
// calibration bound) plus an atomic on-disk store with bounded retention
// and a manifest of config fingerprints, so a checkpoint only ever loads
// into a compatible engine.
//
// The codec is strictly canonical: Decode accepts exactly the byte
// strings Encode produces, and re-encoding a decoded snapshot reproduces
// the input byte for byte. That property is what lets the same frames
// later ship frozen snapshots between cluster nodes (ROADMAP's multi-node
// item) with content-addressed dedup — a frame is its state, with no
// encoder freedom to diverge.
package checkpoint

import (
	"errors"
	"fmt"
	"math"

	"specweb/internal/estguard"
	"specweb/internal/markov"
	"specweb/internal/webgraph"
)

// Typed decode failures. Every way a file can be unusable maps onto one of
// these, so the recovery ladder can distinguish "corrupt, try the previous
// file" (IsCorrupt) from an I/O error worth surfacing.
var (
	// ErrTruncated: the file ends before the framing says it should.
	ErrTruncated = errors.New("checkpoint: truncated file")
	// ErrBadMagic: the leading bytes are not a checkpoint frame at all.
	ErrBadMagic = errors.New("checkpoint: bad magic")
	// ErrVersion: the frame is from a codec this build does not speak.
	ErrVersion = errors.New("checkpoint: unsupported version")
	// ErrChecksum: framing is intact but the CRC over header+payload fails.
	ErrChecksum = errors.New("checkpoint: checksum mismatch")
	// ErrMalformed: the checksum passes but the payload violates the
	// canonical form (out-of-range probability, unsorted rows, unknown
	// quarantine reason, trailing bytes, ...).
	ErrMalformed = errors.New("checkpoint: malformed payload")
	// ErrFingerprint: the frame decodes but was written by an engine with
	// an incompatible configuration or site seed.
	ErrFingerprint = errors.New("checkpoint: fingerprint mismatch")
)

// IsCorrupt reports whether err means "this file is unusable but the next
// (older) one might not be" — the condition that advances the
// corrupt → last-good → cold-start fallback ladder.
func IsCorrupt(err error) bool {
	return errors.Is(err, ErrTruncated) || errors.Is(err, ErrBadMagic) ||
		errors.Is(err, ErrVersion) || errors.Is(err, ErrChecksum) ||
		errors.Is(err, ErrMalformed) || errors.Is(err, ErrFingerprint)
}

// Meta is the snapshot's provenance block.
type Meta struct {
	// CreatedUnixNano is the engine clock at checkpoint time (virtual in
	// deterministic harnesses, wall elsewhere).
	CreatedUnixNano int64
	// Fingerprint binds the frame to an engine+site configuration; the
	// store stamps it on Save and refuses mismatches on Load.
	Fingerprint uint64
	// Recorded is the engine's lifetime observed-request count.
	Recorded int64
	// LastRefreshUnixNano is when the frozen matrix being persisted was
	// estimated.
	LastRefreshUnixNano int64
}

// Knobs are the §3.4 policy knobs in force when the snapshot was taken.
// They ride in the checkpoint (rather than the fingerprint) because the
// overload governor retunes them at runtime; a warm start resumes with the
// tuning the dead process had converged to.
type Knobs struct {
	Tp      float64
	Embed   float64
	MaxSize int64
	TopK    int32
}

// Succ is one successor entry of a CSR row. The probability travels as
// raw IEEE-754 bits so the round trip is exact.
type Succ struct {
	Doc   int32
	PBits uint64
}

// P returns the successor's probability.
func (s Succ) P() float64 { return math.Float64frombits(s.PBits) }

// Row is one document's successor row, sorted by (P desc, Doc asc) —
// the same canonical order markov.Freeze produces.
type Row struct {
	Doc  int32
	Succ []Succ
}

// EstimatorState is the bounded estimator's persisted summary: the caps
// that shaped the rows being checkpointed and the cumulative eviction
// ledger, so a warm start resumes with monotone eviction counters and
// operators can see how lossy the persisted estimate is. The live
// space-saving store itself is deliberately absent for the same reason
// the exact accumulator is (DESIGN §13): it describes a training window
// the dead process never finished. The evicted mass travels as raw
// IEEE-754 bits so the round trip is exact.
type EstimatorState struct {
	MaxRows      int32
	RowTopK      int32
	EvictedRows  int64
	EvictedPairs int64
	EvictedMass  float64
}

// Snapshot is the decoded form of one checkpoint frame: everything a
// fresh engine needs to resume speculating as if the crash never
// happened. Live shard buffers, the aging pair accumulator, and the drift
// window are deliberately absent — see DESIGN §13 for why.
//
// Estimator is nil on exact-estimator engines; its presence selects the
// codec version (nil encodes as version 1, non-nil as version 2), so old
// frames and old readers keep working and Encode(Decode(x)) == x holds
// per version with no extra bookkeeping.
type Snapshot struct {
	Meta      Meta
	Knobs     Knobs
	Rows      []Row // ascending Doc
	Clients   []estguard.ClientSummary
	Judge     estguard.JudgeSummary
	Estimator *EstimatorState
}

// Counters is the checkpoint lifecycle tally, exported on /spec/stats,
// in replay -chaos summaries, and per restart-harness arm. The JSON shape
// is shared by every surface so baselines compare across them.
type Counters struct {
	Saved          int64 `json:"saved"`
	SaveErrors     int64 `json:"save_errors,omitempty"`
	Loaded         int64 `json:"loaded"`
	CorruptSkipped int64 `json:"corrupt_skipped"`
	ColdStarts     int64 `json:"cold_starts"`
}

// Fingerprint hashes a configuration description into the 64-bit
// compatibility stamp (FNV-1a). Callers build s from every field that
// changes what the persisted state means.
func Fingerprint(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Combine folds two fingerprints into one (order-sensitive), for stamping
// a frame with both the engine config and the site identity.
func Combine(a, b uint64) uint64 {
	return Fingerprint(fmt.Sprintf("%016x|%016x", a, b))
}

// RowsFromFrozen converts a frozen matrix into checkpoint rows. RangeRows
// visits rows in ascending DocID order with successors pre-sorted, so the
// output is already canonical — and identical regardless of how many
// workers recorded the underlying traffic.
func RowsFromFrozen(f *markov.Frozen) []Row {
	rows := make([]Row, 0, f.NumRows())
	f.RangeRows(func(doc webgraph.DocID, row []markov.Successor) bool {
		r := Row{Doc: int32(doc), Succ: make([]Succ, 0, len(row))}
		for _, s := range row {
			r.Succ = append(r.Succ, Succ{Doc: int32(s.Doc), PBits: math.Float64bits(s.P)})
		}
		rows = append(rows, r)
		return true
	})
	return rows
}

// FrozenFromRows rebuilds the immutable CSR snapshot from checkpoint
// rows. Probabilities are re-validated before touching the matrix —
// markov.Matrix.Set panics on invalid input, and a decoded file crossed a
// trust boundary even when its checksum held.
func FrozenFromRows(rows []Row) (*markov.Frozen, error) {
	m := markov.NewMatrix()
	for _, r := range rows {
		for _, s := range r.Succ {
			p := s.P()
			if math.IsNaN(p) || p <= 0 || p > 1 {
				return nil, fmt.Errorf("%w: probability %v for (%d,%d) outside (0,1]",
					ErrMalformed, p, r.Doc, s.Doc)
			}
			m.Set(webgraph.DocID(r.Doc), webgraph.DocID(s.Doc), p)
		}
	}
	return markov.Freeze(m), nil
}
