package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"specweb/internal/obs"
)

// StoreConfig parameterizes an on-disk checkpoint store.
type StoreConfig struct {
	// Dir is the state directory; created if absent.
	Dir string
	// Retain bounds how many checkpoint files are kept (newest wins);
	// 0 defaults to 3. At least one older file always survives a save, so
	// a torn write of the newest frame can never orphan the state.
	Retain int
	// Fingerprint stamps every saved frame and gates every load: a frame
	// written under a different engine config or site seed is skipped like
	// a corrupt one.
	Fingerprint uint64
	// Metrics receives specweb_checkpoint_* series (nil = obs.Default).
	Metrics *obs.Registry
	// Tracer emits checkpoint.save / checkpoint.load spans (nil = none).
	Tracer *obs.Tracer
}

// Store persists checkpoint frames in a directory with atomic
// write-to-temp + rename, bounded retention, and a JSON manifest. Save
// and Load serialize on an internal mutex; counters read lock-free.
type Store struct {
	cfg StoreConfig
	met *storeMetrics

	mu      sync.Mutex
	nextSeq uint64

	saved          atomic.Int64
	saveErrors     atomic.Int64
	loaded         atomic.Int64
	corruptSkipped atomic.Int64
	coldStarts     atomic.Int64
}

// LoadInfo describes how recovery went: which file won and how many
// newer-but-unusable ones the ladder skipped over.
type LoadInfo struct {
	Path    string
	Skipped int
}

type storeMetrics struct {
	saved      *obs.Counter
	saveErrors *obs.Counter
	loaded     *obs.Counter
	corrupt    *obs.Counter
	coldStarts *obs.Counter
	lastSize   *obs.Gauge
	retained   *obs.Gauge
}

func newStoreMetrics(reg *obs.Registry) *storeMetrics {
	if reg == nil {
		reg = obs.Default
	}
	return &storeMetrics{
		saved: reg.Counter("specweb_checkpoint_saved_total",
			"Checkpoint frames durably written (temp + rename).", nil),
		saveErrors: reg.Counter("specweb_checkpoint_save_errors_total",
			"Checkpoint saves that failed; the previous frame keeps serving restarts.", nil),
		loaded: reg.Counter("specweb_checkpoint_loaded_total",
			"Warm starts served from a decoded checkpoint frame.", nil),
		corrupt: reg.Counter("specweb_checkpoint_corrupt_skipped_total",
			"Frames skipped by the recovery ladder (corrupt or fingerprint mismatch).", nil),
		coldStarts: reg.Counter("specweb_checkpoint_cold_starts_total",
			"Recoveries that found no usable frame and started cold.", nil),
		lastSize: reg.Gauge("specweb_checkpoint_last_size_bytes",
			"Size of the most recently written checkpoint frame.", nil),
		retained: reg.Gauge("specweb_checkpoint_retained",
			"Checkpoint frames currently kept in the state directory.", nil),
	}
}

const (
	framePrefix = "ckpt-"
	frameSuffix = ".spw"
	// ManifestName is the store's human-readable index file.
	ManifestName = "MANIFEST.json"
)

// NewStore opens (creating if needed) the state directory and scans it so
// new saves continue the existing sequence.
func NewStore(cfg StoreConfig) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("checkpoint: empty state directory")
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 3
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create state dir: %w", err)
	}
	s := &Store{cfg: cfg, met: newStoreMetrics(cfg.Metrics)}
	frames, err := s.frames()
	if err != nil {
		return nil, err
	}
	if len(frames) > 0 {
		s.nextSeq = frames[len(frames)-1].seq + 1
	}
	return s, nil
}

// Dir returns the state directory.
func (s *Store) Dir() string { return s.cfg.Dir }

// Fingerprint returns the compatibility stamp this store writes and
// requires.
func (s *Store) Fingerprint() uint64 { return s.cfg.Fingerprint }

type frameFile struct {
	seq  uint64
	name string
}

// frames lists the checkpoint files in ascending sequence order,
// ignoring anything that does not match the naming scheme (temp files,
// the manifest, stray data).
func (s *Store) frames() ([]frameFile, error) {
	ents, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read state dir: %w", err)
	}
	var out []frameFile
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, framePrefix) || !strings.HasSuffix(name, frameSuffix) {
			continue
		}
		seqs := strings.TrimSuffix(strings.TrimPrefix(name, framePrefix), frameSuffix)
		seq, err := strconv.ParseUint(seqs, 10, 64)
		if err != nil {
			continue
		}
		out = append(out, frameFile{seq: seq, name: name})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].seq < out[b].seq })
	return out, nil
}

// Save encodes snap, stamps it with the store's fingerprint, and writes
// it durably: temp file in the same directory, fsync, rename, directory
// fsync, then retention pruning and a manifest rewrite. On any error the
// previous frames are untouched.
func (s *Store) Save(snap *Snapshot) (path string, err error) {
	var sp *obs.ActiveSpan
	if s.cfg.Tracer != nil {
		sp = s.cfg.Tracer.Start("checkpoint.save")
		defer func() {
			if err != nil {
				sp.SetAttr("error", err.Error())
			}
			sp.Finish()
		}()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() {
		if err != nil {
			s.saveErrors.Add(1)
			s.met.saveErrors.Inc()
		}
	}()

	snap.Meta.Fingerprint = s.cfg.Fingerprint
	frame, err := Encode(snap)
	if err != nil {
		return "", fmt.Errorf("checkpoint: encode: %w", err)
	}

	name := fmt.Sprintf("%s%012d%s", framePrefix, s.nextSeq, frameSuffix)
	path = filepath.Join(s.cfg.Dir, name)
	if err := writeFileAtomic(s.cfg.Dir, name, frame); err != nil {
		return "", err
	}
	s.nextSeq++
	s.saved.Add(1)
	s.met.saved.Inc()
	s.met.lastSize.Set(float64(len(frame)))
	if sp != nil {
		sp.SetAttr("file", name)
		sp.SetAttr("bytes", strconv.Itoa(len(frame)))
	}

	// Retention and the manifest are best-effort: the frame is already
	// durable, so neither failure mode loses state.
	if frames, ferr := s.frames(); ferr == nil {
		for len(frames) > s.cfg.Retain {
			os.Remove(filepath.Join(s.cfg.Dir, frames[0].name))
			frames = frames[1:]
		}
		s.met.retained.Set(float64(len(frames)))
		s.writeManifest(frames, snap.Meta.CreatedUnixNano)
	}
	return path, nil
}

// manifest is the store's index: enough to see at a glance (or from a
// cluster peer) what the directory holds and whether it is compatible.
type manifest struct {
	CodecVersion    int      `json:"codec_version"`
	Fingerprint     string   `json:"fingerprint"`
	Retain          int      `json:"retain"`
	LastSeq         uint64   `json:"last_seq"`
	CreatedUnixNano int64    `json:"created_unix_nano"`
	Frames          []string `json:"frames"`
}

func (s *Store) writeManifest(frames []frameFile, createdNano int64) {
	m := manifest{
		CodecVersion:    VersionBounded,
		Fingerprint:     fmt.Sprintf("%016x", s.cfg.Fingerprint),
		Retain:          s.cfg.Retain,
		LastSeq:         s.nextSeq - 1,
		CreatedUnixNano: createdNano,
		Frames:          make([]string, 0, len(frames)),
	}
	for _, f := range frames {
		m.Frames = append(m.Frames, f.name)
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return
	}
	writeFileAtomic(s.cfg.Dir, ManifestName, append(b, '\n'))
}

// Load walks the recovery ladder: newest frame first, skipping anything
// corrupt, version-skewed, or fingerprint-mismatched, until a frame
// decodes clean. A nil snapshot with a nil error means cold start — the
// directory held nothing usable, which is a counted outcome, not a
// failure. A non-nil error means the directory itself was unreadable.
func (s *Store) Load() (snap *Snapshot, info LoadInfo, err error) {
	var sp *obs.ActiveSpan
	if s.cfg.Tracer != nil {
		sp = s.cfg.Tracer.Start("checkpoint.load")
		defer func() {
			sp.SetAttr("skipped", strconv.Itoa(info.Skipped))
			if snap != nil {
				sp.SetAttr("file", filepath.Base(info.Path))
			} else {
				sp.SetAttr("outcome", "cold")
			}
			sp.Finish()
		}()
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	frames, err := s.frames()
	if err != nil {
		return nil, info, err
	}
	for i := len(frames) - 1; i >= 0; i-- {
		path := filepath.Join(s.cfg.Dir, frames[i].name)
		b, rerr := os.ReadFile(path)
		if rerr != nil {
			info.Skipped++
			s.noteCorrupt()
			continue
		}
		c, derr := Decode(b)
		if derr != nil {
			info.Skipped++
			s.noteCorrupt()
			continue
		}
		if c.Meta.Fingerprint != s.cfg.Fingerprint {
			info.Skipped++
			s.noteCorrupt()
			continue
		}
		info.Path = path
		s.loaded.Add(1)
		s.met.loaded.Inc()
		return c, info, nil
	}
	s.coldStarts.Add(1)
	s.met.coldStarts.Inc()
	return nil, info, nil
}

// NoteColdStart records a cold start decided outside Load — e.g. the
// engine refused an otherwise well-formed frame — so the counters keep
// describing what actually happened.
func (s *Store) NoteColdStart() {
	s.coldStarts.Add(1)
	s.met.coldStarts.Inc()
}

func (s *Store) noteCorrupt() {
	s.corruptSkipped.Add(1)
	s.met.corrupt.Inc()
}

// Counters returns the lifecycle tally. Safe for concurrent use.
func (s *Store) Counters() Counters {
	return Counters{
		Saved:          s.saved.Load(),
		SaveErrors:     s.saveErrors.Load(),
		Loaded:         s.loaded.Load(),
		CorruptSkipped: s.corruptSkipped.Load(),
		ColdStarts:     s.coldStarts.Load(),
	}
}

// writeFileAtomic writes name under dir via a same-directory temp file,
// fsyncs the file, renames into place, and fsyncs the directory so the
// rename itself is durable.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, ".tmp-"+name+"-")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: write temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: sync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close temp: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
