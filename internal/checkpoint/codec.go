package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"specweb/internal/estguard"
	"specweb/internal/trace"
)

// Frame layout. All integers little-endian, fixed width.
//
//	[0:8)   magic "SPWCKPT1"
//	[8:10)  u16 codec version
//	[10:12) u16 flags (must be 0)
//	[12:16) u32 payload length
//	[16:n)  payload
//	[n:n+4) u32 CRC-32C (Castagnoli) over bytes [0:n)
//
// Payload, version 1:
//
//	meta    i64 created · u64 fingerprint · i64 recorded · i64 lastRefresh
//	knobs   u64 tpBits · u64 embedBits · i64 maxSize · i32 topK
//	rows    u32 count · { i32 doc · u32 nSucc · nSucc×(i32 doc · u64 pBits) }
//	clients u32 count · { u16 idLen · id · u8 status · u8 reasonLen · reason
//	        · i64 totalReqs · i64 windows · u64 breadth · u64 distinct
//	        · u64 repeat · u64 gapCV · i32 streak }
//	judge   u8 haveLast · u64 scoreBits · i64 delivered · i64 consumed
//	        · i64 wasted · i32 streak
//
// Version 2 is version 1 plus a mandatory trailing estimator section —
// the bounded estimator's caps and cumulative eviction ledger:
//
//	est     i32 maxRows · i32 rowTopK · i64 evictedRows · i64 evictedPairs
//	        · u64 evictedMassBits
//
// The version is determined by the snapshot's content: Encode emits
// version 2 exactly when Snapshot.Estimator is non-nil, and Decode sets
// Estimator exactly when the frame is version 2. Exact-estimator engines
// therefore keep producing byte-identical version-1 frames, and
// re-encode(decode(x)) == x holds across both versions.
//
// The format is strictly canonical: Decode accepts exactly what Encode
// emits. Rows ascend by document, successors keep the frozen (P desc,
// Doc asc) order, clients ascend by ID, probabilities live in (0, 1],
// and no trailing bytes are tolerated. Canonicality is what makes
// re-encode(decode(x)) == x — proven by test and fuzz — so frames can be
// compared and content-addressed byte-wise.

const (
	magic = "SPWCKPT1"
	// Version is the base codec version: frames without an estimator
	// section.
	Version = 1
	// VersionBounded extends Version with the bounded estimator's summary
	// section; the newest version this build reads and writes.
	VersionBounded = 2

	headerLen  = 16
	trailerLen = 4
	// maxClientID bounds one client identifier; estguard IDs are short
	// synthetic strings, and an attacker-sized ID must not force a giant
	// allocation.
	maxClientID = 1024
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode serializes s into a framed, checksummed byte string. The
// snapshot is validated first: Encode refuses to produce a frame Decode
// would reject, so an engine bug surfaces at save time, not at the next
// restart.
func Encode(s *Snapshot) ([]byte, error) {
	if err := validateSnapshot(s); err != nil {
		return nil, err
	}
	payload := appendPayload(make([]byte, 0, payloadSize(s)), s)
	version := uint16(Version)
	if s.Estimator != nil {
		version = VersionBounded
	}

	buf := make([]byte, 0, headerLen+len(payload)+trailerLen)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint16(buf, version)
	buf = binary.LittleEndian.AppendUint16(buf, 0) // flags
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return buf, nil
}

// Decode parses a frame. It never panics on hostile input: every failure
// is one of the typed errors above, and IsCorrupt(err) advances the
// store's fallback ladder.
func Decode(b []byte) (*Snapshot, error) {
	if len(b) < headerLen+trailerLen {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrTruncated, len(b), headerLen+trailerLen)
	}
	if string(b[:8]) != magic {
		return nil, ErrBadMagic
	}
	version := binary.LittleEndian.Uint16(b[8:10])
	if version != Version && version != VersionBounded {
		return nil, fmt.Errorf("%w: frame version %d, codec speaks %d-%d",
			ErrVersion, version, Version, VersionBounded)
	}
	if f := binary.LittleEndian.Uint16(b[10:12]); f != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrVersion, f)
	}
	n := int(binary.LittleEndian.Uint32(b[12:16]))
	switch total := headerLen + n + trailerLen; {
	case len(b) < total:
		return nil, fmt.Errorf("%w: %d bytes, frame declares %d", ErrTruncated, len(b), total)
	case len(b) > total:
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(b)-total)
	}
	sum := binary.LittleEndian.Uint32(b[headerLen+n:])
	if got := crc32.Checksum(b[:headerLen+n], castagnoli); got != sum {
		return nil, fmt.Errorf("%w: crc %08x, frame says %08x", ErrChecksum, got, sum)
	}

	r := &reader{b: b[headerLen : headerLen+n]}
	s := &Snapshot{}

	s.Meta.CreatedUnixNano = r.i64()
	s.Meta.Fingerprint = r.u64()
	s.Meta.Recorded = r.i64()
	s.Meta.LastRefreshUnixNano = r.i64()

	s.Knobs.Tp = math.Float64frombits(r.u64())
	s.Knobs.Embed = math.Float64frombits(r.u64())
	s.Knobs.MaxSize = r.i64()
	s.Knobs.TopK = r.i32()

	nRows := int(r.u32())
	if err := r.fits(nRows, 8); err != nil {
		return nil, err
	}
	if nRows > 0 {
		s.Rows = make([]Row, 0, nRows)
	}
	for i := 0; i < nRows; i++ {
		row := Row{Doc: r.i32()}
		nSucc := int(r.u32())
		if err := r.fits(nSucc, 12); err != nil {
			return nil, err
		}
		row.Succ = make([]Succ, 0, nSucc)
		for j := 0; j < nSucc; j++ {
			row.Succ = append(row.Succ, Succ{Doc: r.i32(), PBits: r.u64()})
		}
		s.Rows = append(s.Rows, row)
	}

	nClients := int(r.u32())
	if err := r.fits(nClients, 57); err != nil {
		return nil, err
	}
	if nClients > 0 {
		s.Clients = make([]estguard.ClientSummary, 0, nClients)
	}
	for i := 0; i < nClients; i++ {
		var c estguard.ClientSummary
		c.ID = trace.ClientID(r.clientID())
		c.Status = estguard.Status(r.u8())
		c.Reason = r.shortString()
		c.TotalReqs = r.i64()
		c.Windows = r.i64()
		c.Breadth = math.Float64frombits(r.u64())
		c.Distinct = math.Float64frombits(r.u64())
		c.Repeat = math.Float64frombits(r.u64())
		c.GapCV = math.Float64frombits(r.u64())
		c.Streak = r.i32()
		s.Clients = append(s.Clients, c)
	}

	s.Judge.HaveLast = r.u8() != 0
	s.Judge.LastScore = math.Float64frombits(r.u64())
	s.Judge.Delivered = r.i64()
	s.Judge.Consumed = r.i64()
	s.Judge.Wasted = r.i64()
	s.Judge.Streak = r.i32()

	if version == VersionBounded {
		s.Estimator = &EstimatorState{
			MaxRows:      r.i32(),
			RowTopK:      r.i32(),
			EvictedRows:  r.i64(),
			EvictedPairs: r.i64(),
			EvictedMass:  math.Float64frombits(r.u64()),
		}
	}

	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(r.b) {
		return nil, fmt.Errorf("%w: %d unread payload bytes", ErrMalformed, len(r.b)-r.pos)
	}
	// Full structural validation after parse: the same rules Encode
	// enforces, so the accepted language is exactly Encode's image.
	if err := validateSnapshot(s); err != nil {
		return nil, err
	}
	return s, nil
}

// reader is a cursor over the payload with sticky error handling: once a
// read overruns, every later read returns zeros and the error survives to
// the end of Decode. Overruns inside a length-validated payload mean the
// structure lied about its own counts — malformed, not truncated.
type reader struct {
	b   []byte
	pos int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.pos+n > len(r.b) {
		r.err = fmt.Errorf("%w: structure overruns payload at byte %d", ErrMalformed, r.pos)
		return nil
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out
}

func (r *reader) u8() uint8 {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (r *reader) u16() uint16 {
	if b := r.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (r *reader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *reader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *reader) i32() int32 { return int32(r.u32()) }
func (r *reader) i64() int64 { return int64(r.u64()) }

// fits rejects element counts that could not possibly fit in the
// remaining payload, before any allocation is sized from them.
func (r *reader) fits(count, minItem int) error {
	if r.err != nil {
		return r.err
	}
	if count < 0 || count*minItem > len(r.b)-r.pos {
		r.err = fmt.Errorf("%w: count %d exceeds remaining payload", ErrMalformed, count)
	}
	return r.err
}

func (r *reader) clientID() (s string) {
	n := int(r.u16())
	if b := r.take(n); b != nil {
		s = string(b)
	}
	return
}

func (r *reader) shortString() (s string) {
	n := int(r.u8())
	if b := r.take(n); b != nil {
		s = string(b)
	}
	return
}

func payloadSize(s *Snapshot) int {
	n := 32 + 28 + 4 + 4 + 37
	for i := range s.Rows {
		n += 8 + 12*len(s.Rows[i].Succ)
	}
	for i := range s.Clients {
		n += 57 - 1 + len(s.Clients[i].ID) + len(s.Clients[i].Reason)
	}
	if s.Estimator != nil {
		n += 32
	}
	return n
}

func appendPayload(buf []byte, s *Snapshot) []byte {
	le := binary.LittleEndian
	buf = le.AppendUint64(buf, uint64(s.Meta.CreatedUnixNano))
	buf = le.AppendUint64(buf, s.Meta.Fingerprint)
	buf = le.AppendUint64(buf, uint64(s.Meta.Recorded))
	buf = le.AppendUint64(buf, uint64(s.Meta.LastRefreshUnixNano))

	buf = le.AppendUint64(buf, math.Float64bits(s.Knobs.Tp))
	buf = le.AppendUint64(buf, math.Float64bits(s.Knobs.Embed))
	buf = le.AppendUint64(buf, uint64(s.Knobs.MaxSize))
	buf = le.AppendUint32(buf, uint32(s.Knobs.TopK))

	buf = le.AppendUint32(buf, uint32(len(s.Rows)))
	for i := range s.Rows {
		row := &s.Rows[i]
		buf = le.AppendUint32(buf, uint32(row.Doc))
		buf = le.AppendUint32(buf, uint32(len(row.Succ)))
		for _, sc := range row.Succ {
			buf = le.AppendUint32(buf, uint32(sc.Doc))
			buf = le.AppendUint64(buf, sc.PBits)
		}
	}

	buf = le.AppendUint32(buf, uint32(len(s.Clients)))
	for i := range s.Clients {
		c := &s.Clients[i]
		buf = le.AppendUint16(buf, uint16(len(c.ID)))
		buf = append(buf, c.ID...)
		buf = append(buf, uint8(c.Status))
		buf = append(buf, uint8(len(c.Reason)))
		buf = append(buf, c.Reason...)
		buf = le.AppendUint64(buf, uint64(c.TotalReqs))
		buf = le.AppendUint64(buf, uint64(c.Windows))
		buf = le.AppendUint64(buf, math.Float64bits(c.Breadth))
		buf = le.AppendUint64(buf, math.Float64bits(c.Distinct))
		buf = le.AppendUint64(buf, math.Float64bits(c.Repeat))
		buf = le.AppendUint64(buf, math.Float64bits(c.GapCV))
		buf = le.AppendUint32(buf, uint32(c.Streak))
	}

	if s.Judge.HaveLast {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = le.AppendUint64(buf, math.Float64bits(s.Judge.LastScore))
	buf = le.AppendUint64(buf, uint64(s.Judge.Delivered))
	buf = le.AppendUint64(buf, uint64(s.Judge.Consumed))
	buf = le.AppendUint64(buf, uint64(s.Judge.Wasted))
	buf = le.AppendUint32(buf, uint32(s.Judge.Streak))

	if e := s.Estimator; e != nil {
		buf = le.AppendUint32(buf, uint32(e.MaxRows))
		buf = le.AppendUint32(buf, uint32(e.RowTopK))
		buf = le.AppendUint64(buf, uint64(e.EvictedRows))
		buf = le.AppendUint64(buf, uint64(e.EvictedPairs))
		buf = le.AppendUint64(buf, math.Float64bits(e.EvictedMass))
	}
	return buf
}

// validateSnapshot enforces the canonical form on both codec directions.
func validateSnapshot(s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("%w: nil snapshot", ErrMalformed)
	}
	if s.Meta.Recorded < 0 {
		return fmt.Errorf("%w: negative recorded count %d", ErrMalformed, s.Meta.Recorded)
	}
	if err := validateKnobs(&s.Knobs); err != nil {
		return err
	}
	prevDoc := int32(-1)
	for i := range s.Rows {
		if err := validateRow(&s.Rows[i], prevDoc); err != nil {
			return err
		}
		prevDoc = s.Rows[i].Doc
	}
	prevID := ""
	for i := range s.Clients {
		if err := validateClient(&s.Clients[i], prevID, i == 0); err != nil {
			return err
		}
		prevID = string(s.Clients[i].ID)
	}
	if err := validateJudge(&s.Judge); err != nil {
		return err
	}
	return validateEstimator(s.Estimator)
}

func validateEstimator(e *EstimatorState) error {
	if e == nil {
		return nil
	}
	if e.MaxRows <= 0 || e.RowTopK <= 0 {
		return fmt.Errorf("%w: estimator caps %d×%d not positive", ErrMalformed, e.MaxRows, e.RowTopK)
	}
	if e.EvictedRows < 0 || e.EvictedPairs < 0 {
		return fmt.Errorf("%w: estimator eviction counters out of range", ErrMalformed)
	}
	if !finite(e.EvictedMass) || e.EvictedMass < 0 {
		return fmt.Errorf("%w: estimator evicted mass %v invalid", ErrMalformed, e.EvictedMass)
	}
	return nil
}

func validateKnobs(k *Knobs) error {
	if !finite(k.Tp) || k.Tp < 0 || k.Tp > 1 {
		return fmt.Errorf("%w: Tp %v outside [0,1]", ErrMalformed, k.Tp)
	}
	if !finite(k.Embed) || k.Embed < 0 {
		return fmt.Errorf("%w: embed threshold %v invalid", ErrMalformed, k.Embed)
	}
	if k.MaxSize < 0 {
		return fmt.Errorf("%w: MaxSize %d negative", ErrMalformed, k.MaxSize)
	}
	if k.TopK < 0 {
		return fmt.Errorf("%w: TopK %d negative", ErrMalformed, k.TopK)
	}
	return nil
}

func validateRow(row *Row, prevDoc int32) error {
	if row.Doc < 0 {
		return fmt.Errorf("%w: negative document %d", ErrMalformed, row.Doc)
	}
	if row.Doc <= prevDoc {
		return fmt.Errorf("%w: rows not strictly ascending at document %d", ErrMalformed, row.Doc)
	}
	if len(row.Succ) == 0 {
		return fmt.Errorf("%w: empty row for document %d", ErrMalformed, row.Doc)
	}
	prevP := math.Inf(1)
	prevSucc := int32(-1)
	for _, sc := range row.Succ {
		if sc.Doc < 0 {
			return fmt.Errorf("%w: negative successor %d in row %d", ErrMalformed, sc.Doc, row.Doc)
		}
		if sc.Doc == row.Doc {
			return fmt.Errorf("%w: self-successor in row %d", ErrMalformed, row.Doc)
		}
		p := sc.P()
		if math.IsNaN(p) || p <= 0 || p > 1 {
			return fmt.Errorf("%w: probability %v in row %d outside (0,1]", ErrMalformed, p, row.Doc)
		}
		// Frozen row order: P strictly descending, ties by ascending Doc.
		// p > 0 excludes ±0, so equal values imply equal bits and the
		// comparison is exact.
		if p > prevP || (p == prevP && sc.Doc <= prevSucc) {
			return fmt.Errorf("%w: row %d not in (P desc, Doc asc) order", ErrMalformed, row.Doc)
		}
		prevP, prevSucc = p, sc.Doc
	}
	return nil
}

func validateClient(c *estguard.ClientSummary, prevID string, first bool) error {
	if len(c.ID) == 0 || len(c.ID) > maxClientID {
		return fmt.Errorf("%w: client ID length %d", ErrMalformed, len(c.ID))
	}
	if !first && string(c.ID) <= prevID {
		return fmt.Errorf("%w: clients not strictly ascending at %q", ErrMalformed, c.ID)
	}
	switch c.Status {
	case estguard.Human:
		if c.Reason != "" {
			return fmt.Errorf("%w: human client %q carries reason %q", ErrMalformed, c.ID, c.Reason)
		}
	case estguard.Quarantined:
		if !estguard.ValidReason(c.Reason) {
			return fmt.Errorf("%w: unknown quarantine reason %q", ErrMalformed, c.Reason)
		}
	default:
		return fmt.Errorf("%w: unknown client status %d", ErrMalformed, c.Status)
	}
	if c.TotalReqs < 0 || c.Windows < 1 || c.Streak < 0 {
		return fmt.Errorf("%w: client %q counters out of range", ErrMalformed, c.ID)
	}
	for _, v := range [...]float64{c.Breadth, c.Distinct, c.Repeat, c.GapCV} {
		if !finite(v) || v < 0 {
			return fmt.Errorf("%w: client %q fingerprint %v invalid", ErrMalformed, c.ID, v)
		}
	}
	return nil
}

func validateJudge(j *estguard.JudgeSummary) error {
	if !finite(j.LastScore) || j.LastScore < 0 || j.LastScore > 1 {
		return fmt.Errorf("%w: judge score %v outside [0,1]", ErrMalformed, j.LastScore)
	}
	if j.Delivered < 0 || j.Consumed < 0 || j.Wasted < 0 || j.Streak < 0 {
		return fmt.Errorf("%w: judge counters out of range", ErrMalformed)
	}
	if !j.HaveLast && (j.LastScore != 0 || j.Streak != 0 ||
		j.Delivered != 0 || j.Consumed != 0 || j.Wasted != 0) {
		return fmt.Errorf("%w: judge state without a last snapshot", ErrMalformed)
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
