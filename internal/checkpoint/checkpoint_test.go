package checkpoint

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"specweb/internal/estguard"
	"specweb/internal/markov"
	"specweb/internal/obs"
)

// testSnapshot builds a representative snapshot: probability ties (the
// Doc-asc tie order must survive), a quarantined and a human client, and
// a calibrated judge.
func testSnapshot() *Snapshot {
	return &Snapshot{
		Meta: Meta{
			CreatedUnixNano:     1700000000123456789,
			Fingerprint:         0xdeadbeefcafe,
			Recorded:            4096,
			LastRefreshUnixNano: 1700000000000000000,
		},
		Knobs: Knobs{Tp: 0.25, Embed: 0.95, MaxSize: 1 << 20, TopK: 8},
		Rows: []Row{
			{Doc: 0, Succ: []Succ{
				{Doc: 3, PBits: math.Float64bits(0.9)},
				{Doc: 1, PBits: math.Float64bits(0.5)},
				{Doc: 2, PBits: math.Float64bits(0.5)},
				{Doc: 7, PBits: math.Float64bits(0.125)},
			}},
			{Doc: 2, Succ: []Succ{{Doc: 0, PBits: math.Float64bits(1.0)}}},
			{Doc: 9, Succ: []Succ{
				{Doc: 4, PBits: math.Float64bits(0.0625)},
			}},
		},
		Clients: []estguard.ClientSummary{
			{ID: "c-001", Status: estguard.Quarantined, Reason: estguard.ReasonCrawler,
				TotalReqs: 900, Windows: 4, Breadth: 0.92, Distinct: 200, Repeat: 0.01,
				GapCV: 0.05, Streak: 1},
			{ID: "c-002", Status: estguard.Human,
				TotalReqs: 40, Windows: 3, Breadth: 0.4, Distinct: 12, Repeat: 0.3,
				GapCV: 1.8},
		},
		Judge: estguard.JudgeSummary{
			HaveLast: true, LastScore: 0.62,
			Delivered: 500, Consumed: 310, Wasted: 120, Streak: 2,
		},
	}
}

func mustEncode(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	b, err := Encode(s)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return b
}

func TestCodecRoundTripByteDeterministic(t *testing.T) {
	want := testSnapshot()
	frame := mustEncode(t, want)

	got, err := Decode(frame)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}
	again := mustEncode(t, got)
	if !bytes.Equal(again, frame) {
		t.Fatalf("re-encode(decode(x)) != x: %d vs %d bytes", len(again), len(frame))
	}
}

func TestCodecEmptySnapshot(t *testing.T) {
	s := &Snapshot{}
	frame := mustEncode(t, s)
	got, err := Decode(frame)
	if err != nil {
		t.Fatalf("Decode empty: %v", err)
	}
	if !bytes.Equal(mustEncode(t, got), frame) {
		t.Fatal("empty snapshot not byte-stable")
	}
}

// TestFrozenRowsRoundTrip pins the engine-facing conversion: frozen →
// rows → frozen → rows must be an identity, so a shipped frame rebuilds
// the exact decision state.
func TestFrozenRowsRoundTrip(t *testing.T) {
	m := markov.NewMatrix()
	m.Set(0, 1, 0.5)
	m.Set(0, 2, 0.5) // tie with doc 1
	m.Set(0, 3, 0.9)
	m.Set(5, 0, 1.0)
	rows := RowsFromFrozen(markov.Freeze(m))

	f2, err := FrozenFromRows(rows)
	if err != nil {
		t.Fatalf("FrozenFromRows: %v", err)
	}
	rows2 := RowsFromFrozen(f2)
	if !reflect.DeepEqual(rows, rows2) {
		t.Fatalf("frozen rows not stable:\n%+v\n%+v", rows, rows2)
	}
	if got := f2.Get(0, 3); got != 0.9 {
		t.Fatalf("rebuilt frozen lost p(0,3): %v", got)
	}
}

func TestFrozenFromRowsRejectsBadProbability(t *testing.T) {
	for _, p := range []float64{0, -0.5, 1.5, math.NaN(), math.Inf(1)} {
		rows := []Row{{Doc: 0, Succ: []Succ{{Doc: 1, PBits: math.Float64bits(p)}}}}
		if _, err := FrozenFromRows(rows); err == nil {
			t.Fatalf("FrozenFromRows accepted p=%v", p)
		}
	}
}

func TestDecodeTruncatedEveryPrefix(t *testing.T) {
	frame := mustEncode(t, testSnapshot())
	for n := 0; n < len(frame); n++ {
		_, err := Decode(frame[:n])
		if err == nil {
			t.Fatalf("Decode accepted %d-byte prefix of a %d-byte frame", n, len(frame))
		}
		if !IsCorrupt(err) {
			t.Fatalf("prefix %d: error %v is not IsCorrupt", n, err)
		}
	}
}

func TestDecodeBitFlipEveryByte(t *testing.T) {
	frame := mustEncode(t, testSnapshot())
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x40
		_, err := Decode(mut)
		if err == nil {
			t.Fatalf("Decode accepted frame with byte %d flipped", i)
		}
		if !IsCorrupt(err) {
			t.Fatalf("byte %d: error %v is not IsCorrupt", i, err)
		}
	}
}

// reframe rewrites a frame's CRC after a deliberate header/payload edit,
// so the test reaches the validation behind the checksum.
func reframe(frame []byte) []byte {
	out := append([]byte(nil), frame...)
	body := out[:len(out)-trailerLen]
	binary.LittleEndian.PutUint32(out[len(out)-trailerLen:], crc32.Checksum(body, castagnoli))
	return out
}

func TestDecodeVersionSkew(t *testing.T) {
	frame := mustEncode(t, testSnapshot())

	skew := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint16(skew[8:10], VersionBounded+1)
	_, err := Decode(reframe(skew))
	if err == nil || !IsCorrupt(err) {
		t.Fatalf("future version: got %v", err)
	}

	flags := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint16(flags[10:12], 0x8000)
	if _, err := Decode(reframe(flags)); err == nil || !IsCorrupt(err) {
		t.Fatalf("unknown flags: got %v", err)
	}

	garbage := append([]byte("NOTACKPT"), frame[8:]...)
	if _, err := Decode(reframe(garbage)); err == nil || !IsCorrupt(err) {
		t.Fatalf("bad magic: got %v", err)
	}

	trailing := append(append([]byte(nil), frame...), 0xFF)
	if _, err := Decode(trailing); err == nil || !IsCorrupt(err) {
		t.Fatalf("trailing byte: got %v", err)
	}
}

// TestEncodeRejectsNonCanonical drives the shared validator: every way a
// snapshot can violate the canonical form must be refused symmetrically
// by Encode (engine bugs surface at save time) and, via reframe, Decode.
func TestEncodeRejectsNonCanonical(t *testing.T) {
	cases := map[string]func(*Snapshot){
		"tp above one":      func(s *Snapshot) { s.Knobs.Tp = 1.5 },
		"tp NaN":            func(s *Snapshot) { s.Knobs.Tp = math.NaN() },
		"negative max size": func(s *Snapshot) { s.Knobs.MaxSize = -1 },
		"negative recorded": func(s *Snapshot) { s.Meta.Recorded = -1 },
		"rows out of order": func(s *Snapshot) { s.Rows[1].Doc = 0 },
		"negative doc":      func(s *Snapshot) { s.Rows[0].Doc = -3 },
		"empty row":         func(s *Snapshot) { s.Rows[0].Succ = nil },
		"self successor":    func(s *Snapshot) { s.Rows[1].Succ[0].Doc = 2 },
		"zero probability": func(s *Snapshot) {
			s.Rows[0].Succ[0].PBits = math.Float64bits(0)
		},
		"probability above one": func(s *Snapshot) {
			s.Rows[0].Succ[0].PBits = math.Float64bits(1.25)
		},
		"row order violated": func(s *Snapshot) {
			s.Rows[0].Succ[0], s.Rows[0].Succ[1] = s.Rows[0].Succ[1], s.Rows[0].Succ[0]
		},
		"tie order violated": func(s *Snapshot) {
			s.Rows[0].Succ[1], s.Rows[0].Succ[2] = s.Rows[0].Succ[2], s.Rows[0].Succ[1]
		},
		"clients out of order": func(s *Snapshot) {
			s.Clients[0], s.Clients[1] = s.Clients[1], s.Clients[0]
		},
		"empty client id": func(s *Snapshot) { s.Clients[0].ID = "" },
		"human with reason": func(s *Snapshot) {
			s.Clients[1].Reason = estguard.ReasonBot
		},
		"invented quarantine reason": func(s *Snapshot) {
			s.Clients[0].Reason = "nosy-neighbor"
		},
		"bad status": func(s *Snapshot) { s.Clients[0].Status = 7 },
		"client NaN fingerprint": func(s *Snapshot) {
			s.Clients[0].GapCV = math.NaN()
		},
		"zero windows":    func(s *Snapshot) { s.Clients[0].Windows = 0 },
		"judge above one": func(s *Snapshot) { s.Judge.LastScore = 1.5 },
		"judge state without last": func(s *Snapshot) {
			s.Judge.HaveLast = false
		},
	}
	for name, mutate := range cases {
		s := testSnapshot()
		mutate(s)
		if _, err := Encode(s); err == nil {
			t.Errorf("%s: Encode accepted non-canonical snapshot", name)
		}
	}
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(StoreConfig{Dir: dir, Fingerprint: 42, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	want := testSnapshot()
	path, err := st.Save(want)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("saved outside state dir: %s", path)
	}

	got, info, err := st.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got == nil || info.Skipped != 0 {
		t.Fatalf("Load: snap=%v skipped=%d", got, info.Skipped)
	}
	if got.Meta.Fingerprint != 42 {
		t.Fatalf("Save did not stamp the store fingerprint: %d", got.Meta.Fingerprint)
	}
	want.Meta.Fingerprint = 42
	if !reflect.DeepEqual(got, want) {
		t.Fatal("store round trip diverged")
	}
	c := st.Counters()
	if c.Saved != 1 || c.Loaded != 1 || c.CorruptSkipped != 0 || c.ColdStarts != 0 {
		t.Fatalf("counters: %+v", c)
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err != nil {
		t.Fatalf("manifest missing: %v", err)
	}
}

func TestStoreRetention(t *testing.T) {
	st, err := NewStore(StoreConfig{Dir: t.TempDir(), Retain: 2, Fingerprint: 1, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s := testSnapshot()
		s.Meta.Recorded = int64(i)
		if _, err := st.Save(s); err != nil {
			t.Fatal(err)
		}
	}
	frames, err := st.frames()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("retention kept %d frames, want 2", len(frames))
	}
	snap, _, err := st.Load()
	if err != nil || snap == nil {
		t.Fatalf("Load after prune: %v %v", snap, err)
	}
	if snap.Meta.Recorded != 4 {
		t.Fatalf("newest frame should win, got recorded=%d", snap.Meta.Recorded)
	}
}

func corruptFile(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStoreFallbackLadder: newest corrupt → previous good frame wins;
// everything corrupt → counted cold start with nil snapshot, nil error.
func TestStoreFallbackLadder(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(StoreConfig{Dir: dir, Fingerprint: 9, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	good := testSnapshot()
	good.Meta.Recorded = 111
	if _, err := st.Save(good); err != nil {
		t.Fatal(err)
	}
	bad := testSnapshot()
	bad.Meta.Recorded = 222
	badPath, err := st.Save(bad)
	if err != nil {
		t.Fatal(err)
	}
	corruptFile(t, badPath)

	snap, info, err := st.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if snap == nil || snap.Meta.Recorded != 111 {
		t.Fatalf("ladder should fall back to last-good frame, got %+v", snap)
	}
	if info.Skipped != 1 {
		t.Fatalf("skipped=%d, want 1", info.Skipped)
	}

	// Corrupt the survivor too: the ladder ends in a counted cold start.
	corruptFile(t, info.Path)
	snap, info, err = st.Load()
	if err != nil {
		t.Fatalf("Load all-corrupt: %v", err)
	}
	if snap != nil {
		t.Fatal("all-corrupt directory must cold-start")
	}
	c := st.Counters()
	if c.ColdStarts != 1 || c.CorruptSkipped != 3 || c.Loaded != 1 {
		t.Fatalf("counters after ladder: %+v", c)
	}
}

func TestStoreFingerprintMismatchSkips(t *testing.T) {
	dir := t.TempDir()
	a, err := NewStore(StoreConfig{Dir: dir, Fingerprint: 1, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Save(testSnapshot()); err != nil {
		t.Fatal(err)
	}
	// Same directory, different engine/site identity.
	b, err := NewStore(StoreConfig{Dir: dir, Fingerprint: 2, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	snap, info, err := b.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatal("incompatible frame must not warm-start")
	}
	if info.Skipped != 1 || b.Counters().ColdStarts != 1 {
		t.Fatalf("mismatch accounting: info=%+v counters=%+v", info, b.Counters())
	}
}

// TestStoreSequenceSurvivesReopen: a reopened store continues the file
// sequence instead of overwriting the newest frame.
func TestStoreSequenceSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := StoreConfig{Dir: dir, Fingerprint: 5, Metrics: obs.NewRegistry()}
	st1, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := st1.Save(testSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Metrics = obs.NewRegistry()
	st2, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := st2.Save(testSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatalf("reopened store reused sequence number: %s", p2)
	}
}

func TestFingerprintCombine(t *testing.T) {
	if Fingerprint("a") == Fingerprint("b") {
		t.Fatal("distinct strings collided")
	}
	if Combine(1, 2) == Combine(2, 1) {
		t.Fatal("Combine must be order-sensitive")
	}
}
