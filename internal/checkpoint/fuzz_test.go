package checkpoint

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzDecode is the decoder's trust-boundary contract, in the same style
// as the Spec-* header fuzz targets: a checkpoint file is attacker-sized
// input (it survives on disk across process lifetimes and will later
// arrive over the network from cluster peers), so Decode must never
// panic, must classify every failure as a typed corrupt error (that is
// what advances the store's fallback ladder), and on success must accept
// only the canonical form — proven by re-encoding byte-identically.
func FuzzDecode(f *testing.F) {
	// Valid frames, from empty to fully populated.
	full := testSnapshotFrame(f)
	f.Add(full)
	empty, err := Encode(&Snapshot{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	// A version-2 frame — estimator section present — seeds the second
	// wire version, so mutations explore both layouts and the canonical
	// re-encode check covers the version-by-presence rule.
	v2snap := testSnapshot()
	v2snap.Estimator = &EstimatorState{
		MaxRows: 1 << 16, RowTopK: 32,
		EvictedRows: 7, EvictedPairs: 1234, EvictedMass: 56.25,
	}
	v2, err := Encode(v2snap)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(v2)

	// Classic corruptions as seeds; the fuzzer mutates from here.
	f.Add(full[:len(full)/2])            // truncation
	f.Add(append([]byte(nil), magic...)) // header only
	skew := append([]byte(nil), full...)
	binary.LittleEndian.PutUint16(skew[8:10], Version+3)
	f.Add(skew) // version skew (stale CRC)
	flip := append([]byte(nil), full...)
	flip[len(flip)/3] ^= 0x10
	f.Add(flip) // bit flip
	huge := append([]byte(nil), full...)
	binary.LittleEndian.PutUint32(huge[12:16], math.MaxUint32) // lying length
	f.Add(huge)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data)
		if err != nil {
			if snap != nil {
				t.Fatal("Decode returned both a snapshot and an error")
			}
			if !IsCorrupt(err) {
				t.Fatalf("Decode error %v is not a typed corrupt error", err)
			}
			return
		}
		// Canonical acceptance: whatever decodes must re-encode to the
		// exact input bytes — no second representation of any state.
		again, eerr := Encode(snap)
		if eerr != nil {
			t.Fatalf("Decode accepted a snapshot Encode refuses: %v", eerr)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("non-canonical frame accepted: %d in, %d out", len(data), len(again))
		}
		// And the decision-state reconstruction must hold, too.
		if _, ferr := FrozenFromRows(snap.Rows); ferr != nil {
			t.Fatalf("decoded rows rejected by FrozenFromRows: %v", ferr)
		}
	})
}

func testSnapshotFrame(f *testing.F) []byte {
	f.Helper()
	b, err := Encode(testSnapshot())
	if err != nil {
		f.Fatal(err)
	}
	return b
}
