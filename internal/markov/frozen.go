package markov

import (
	"sort"

	"specweb/internal/webgraph"
)

// Frozen is an immutable, compiled form of a Matrix: a CSR-like layout with
// one flat successor array, per-row offsets, and a dense document index.
// Rows are pre-sorted by decreasing probability (ties by ascending DocID),
// so the policy operations — sorted-row lookup, threshold cut, top-K — are
// zero-allocation slice and binary-search operations over shared storage.
//
// A Frozen is built once per engine refresh with Freeze and then published
// to concurrent readers; it is never mutated, so it is safe for unlocked
// use from any number of goroutines. Returned row slices alias the frozen
// storage and must not be modified.
type Frozen struct {
	ids  []webgraph.DocID // row documents, ascending
	off  []int32          // row r spans succ[off[r]:off[r+1]]
	succ []Successor      // flat rows, each sorted by (P desc, Doc asc)
	// dense maps a DocID directly to its row index + 1 (0 = no row) when
	// the ID space is compact; otherwise lookups binary-search ids.
	dense []int32
}

// Freeze compiles m into its immutable CSR form. The input matrix is not
// retained; later mutations of m do not affect the snapshot.
func Freeze(m *Matrix) *Frozen {
	f := &Frozen{
		ids: make([]webgraph.DocID, 0, len(m.rows)),
		off: make([]int32, 1, len(m.rows)+1),
	}
	pairs := 0
	var maxID webgraph.DocID
	for i, row := range m.rows {
		f.ids = append(f.ids, i)
		pairs += len(row)
		if i > maxID {
			maxID = i
		}
	}
	sort.Slice(f.ids, func(a, b int) bool { return f.ids[a] < f.ids[b] })
	f.succ = make([]Successor, 0, pairs)
	for _, i := range f.ids {
		start := len(f.succ)
		for j, p := range m.rows[i] {
			f.succ = append(f.succ, Successor{Doc: j, P: p})
		}
		row := f.succ[start:]
		sort.Slice(row, func(a, b int) bool {
			if row[a].P != row[b].P {
				return row[a].P > row[b].P
			}
			return row[a].Doc < row[b].Doc
		})
		f.off = append(f.off, int32(len(f.succ)))
	}
	// The dense index trades O(maxID) words for O(1) row lookup; fall back
	// to binary search when IDs are sparse enough that the table would
	// dominate the snapshot's footprint.
	if n := len(f.ids); n > 0 && maxID >= 0 && int(maxID) < 4*n+1024 {
		f.dense = make([]int32, int(maxID)+1)
		for r, id := range f.ids {
			f.dense[id] = int32(r) + 1
		}
	}
	return f
}

// rowIndex resolves a document to its row index; ok is false when the
// document has no successors.
func (f *Frozen) rowIndex(i webgraph.DocID) (int, bool) {
	if f.dense != nil {
		if i < 0 || int(i) >= len(f.dense) {
			return 0, false
		}
		r := f.dense[i]
		if r == 0 {
			return 0, false
		}
		return int(r) - 1, true
	}
	r := sort.Search(len(f.ids), func(k int) bool { return f.ids[k] >= i })
	if r == len(f.ids) || f.ids[r] != i {
		return 0, false
	}
	return r, true
}

// SortedRow returns document i's successors in decreasing probability order
// (ties by ascending DocID). The slice aliases the frozen storage: zero
// allocation, read-only.
func (f *Frozen) SortedRow(i webgraph.DocID) []Successor {
	r, ok := f.rowIndex(i)
	if !ok {
		return nil
	}
	return f.succ[f.off[r]:f.off[r+1]]
}

// RowLen returns the number of successors of i without materializing the
// row.
func (f *Frozen) RowLen(i webgraph.DocID) int {
	r, ok := f.rowIndex(i)
	if !ok {
		return 0
	}
	return int(f.off[r+1] - f.off[r])
}

// ThresholdRow returns the prefix of i's sorted row with P ≥ tp, located by
// binary search (the row is sorted by decreasing P, so the candidates form
// a prefix). Equal-probability successors at the cut keep their
// deterministic Doc-ascending order. Zero allocation.
func (f *Frozen) ThresholdRow(i webgraph.DocID, tp float64) []Successor {
	row := f.SortedRow(i)
	cut := sort.Search(len(row), func(k int) bool { return row[k].P < tp })
	return row[:cut]
}

// TopKRow returns up to k successors of i with P ≥ minP. k < 0 means
// unbounded. Zero allocation.
func (f *Frozen) TopKRow(i webgraph.DocID, k int, minP float64) []Successor {
	row := f.SortedRow(i)
	if k >= 0 && len(row) > k {
		row = row[:k]
	}
	cut := sort.Search(len(row), func(j int) bool { return row[j].P < minP })
	return row[:cut]
}

// Get returns p[i,j] in the snapshot (0 when absent). Lookup is a binary
// search within the row, which is ordered by probability, so this is O(row)
// only in the worst case of many probability ties.
func (f *Frozen) Get(i, j webgraph.DocID) float64 {
	for _, s := range f.SortedRow(i) {
		if s.Doc == j {
			return s.P
		}
	}
	return 0
}

// NumRows returns the number of documents with at least one successor.
func (f *Frozen) NumRows() int { return len(f.ids) }

// NumPairs returns the number of (i,j) entries in the snapshot.
func (f *Frozen) NumPairs() int { return len(f.succ) }

// RangeRows visits every row in ascending DocID order. The row slice
// aliases frozen storage and must not be modified; returning false stops
// the iteration.
func (f *Frozen) RangeRows(fn func(doc webgraph.DocID, row []Successor) bool) {
	for r, id := range f.ids {
		if !fn(id, f.succ[f.off[r]:f.off[r+1]]) {
			return
		}
	}
}
