// Package markov implements the document access-interdependency model of
// §3.1: the conditional-probability matrix P, where p[i,j] is the
// probability that document D_j is requested within a window T_w of a
// request for D_i, and its closure P*, which extends P to chains of
// requests each at most T_w apart.
//
// P is estimated from server logs exactly as the paper describes; the
// closure is computed by the monotone fixpoint X ← clamp₁(P + P·X), which
// sums path products over all chain lengths and clamps at 1 (the paper
// writes the closure as P^N; the clamped fixpoint is the same quantity with
// probabilities capped at certainty, and converges because the iteration is
// monotone and bounded). Sparse rows are pruned below a threshold to keep
// the matrices tractable, as any real deployment would.
package markov

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"specweb/internal/stats"
	"specweb/internal/webgraph"
)

// Matrix is a sparse row-major matrix of probabilities indexed by document
// ID. A missing entry is 0.
type Matrix struct {
	rows map[webgraph.DocID]map[webgraph.DocID]float64
	// evictedPairs annotates a snapshot produced by a bounded estimator
	// with the cumulative number of (i,j) pairs its space-saving store
	// evicted — pairs that existed in the traffic but are absent here.
	// Always 0 for exact estimation, so NumPairs ("tracked") and
	// EvictedPairs never conflate and benchmark baselines cannot shift
	// silently when bounding is enabled.
	evictedPairs int64
}

// NewMatrix returns an empty matrix.
func NewMatrix() *Matrix {
	return &Matrix{rows: make(map[webgraph.DocID]map[webgraph.DocID]float64)}
}

// Get returns p[i,j].
func (m *Matrix) Get(i, j webgraph.DocID) float64 {
	return m.rows[i][j]
}

// Set stores p[i,j], dropping the entry when p <= 0. It panics on p > 1 or
// NaN, which would indicate a corrupted estimation.
func (m *Matrix) Set(i, j webgraph.DocID, p float64) {
	if p != p || p > 1+1e-12 {
		panic(fmt.Sprintf("markov: invalid probability %v for (%d,%d)", p, i, j))
	}
	if p <= 0 {
		if row, ok := m.rows[i]; ok {
			delete(row, j)
			if len(row) == 0 {
				delete(m.rows, i)
			}
		}
		return
	}
	if p > 1 {
		p = 1
	}
	row, ok := m.rows[i]
	if !ok {
		row = make(map[webgraph.DocID]float64)
		m.rows[i] = row
	}
	row[j] = p
}

// Row returns a copy of document i's successors and probabilities. The
// copy is safe to hold and modify, at the cost of an allocation per call;
// iteration-only callers should use RangeRow, and hot paths should operate
// on a Frozen snapshot instead.
func (m *Matrix) Row(i webgraph.DocID) map[webgraph.DocID]float64 {
	row := m.rows[i]
	if row == nil {
		return nil
	}
	out := make(map[webgraph.DocID]float64, len(row))
	for j, p := range row {
		out[j] = p
	}
	return out
}

// RangeRow visits document i's successors without copying the row.
// Returning false stops the iteration. The visit order is unspecified.
func (m *Matrix) RangeRow(i webgraph.DocID, fn func(j webgraph.DocID, p float64) bool) {
	for j, p := range m.rows[i] {
		if !fn(j, p) {
			return
		}
	}
}

// RowLen returns the number of successors of i without copying the row.
func (m *Matrix) RowLen(i webgraph.DocID) int { return len(m.rows[i]) }

// Successors returns row i as a slice sorted by decreasing probability
// (ties by DocID), for deterministic policy evaluation.
type Successor struct {
	Doc webgraph.DocID
	P   float64
}

// SortedRow returns the successors of i in decreasing probability order.
func (m *Matrix) SortedRow(i webgraph.DocID) []Successor {
	row := m.rows[i]
	out := make([]Successor, 0, len(row))
	for j, p := range row {
		out = append(out, Successor{Doc: j, P: p})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].P != out[b].P {
			return out[a].P > out[b].P
		}
		return out[a].Doc < out[b].Doc
	})
	return out
}

// Docs returns the IDs of all documents with at least one successor, in
// ascending order, so callers can iterate rows deterministically.
func (m *Matrix) Docs() []webgraph.DocID {
	out := make([]webgraph.DocID, 0, len(m.rows))
	for i := range m.rows {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// ScaleRow multiplies every probability in row i by f, deleting entries
// that fall to (or below) zero weight. Used by trust damping: scaling a
// low-trust row pushes its entries below the push/hint thresholds without
// disturbing the relative order of its successors.
func (m *Matrix) ScaleRow(i webgraph.DocID, f float64) {
	row := m.rows[i]
	if row == nil {
		return
	}
	if f <= 0 {
		delete(m.rows, i)
		return
	}
	if f >= 1 {
		return
	}
	for j, p := range row {
		p *= f
		if p < 1e-9 {
			delete(row, j)
		} else {
			row[j] = p
		}
	}
	if len(row) == 0 {
		delete(m.rows, i)
	}
}

// NumPairs returns the number of (i,j) entries stored — the *tracked*
// pairs. Pairs a bounded estimator evicted are deliberately not included;
// they are reported separately by EvictedPairs.
func (m *Matrix) NumPairs() int {
	n := 0
	for _, row := range m.rows {
		n += len(row)
	}
	return n
}

// EvictedPairs returns the cumulative count of dependency pairs the
// producing estimator evicted before this snapshot was taken (0 for exact
// estimation and hand-built matrices).
func (m *Matrix) EvictedPairs() int64 { return m.evictedPairs }

// SetEvictedPairs annotates the matrix with its producer's eviction
// tally. Bounded estimators stamp it at Snapshot time.
func (m *Matrix) SetEvictedPairs(n int64) { m.evictedPairs = n }

// NumRows returns the number of documents with at least one successor.
func (m *Matrix) NumRows() int { return len(m.rows) }

// Clone returns a deep copy (including the eviction annotation).
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix()
	c.evictedPairs = m.evictedPairs
	for i, row := range m.rows {
		nr := make(map[webgraph.DocID]float64, len(row))
		for j, p := range row {
			nr[j] = p
		}
		c.rows[i] = nr
	}
	return c
}

// Prune drops entries below eps.
func (m *Matrix) Prune(eps float64) {
	for i, row := range m.rows {
		for j, p := range row {
			if p < eps {
				delete(row, j)
			}
		}
		if len(row) == 0 {
			delete(m.rows, i)
		}
	}
}

// Closure computes P*: the probability that a chain of dependent requests
// starting at D_i eventually reaches D_j. The paper defines the closure as
// the matrix power P^N, i.e. probabilities summed over paths; a literal sum
// badly overestimates when many alternative paths exist (path events are
// not disjoint — summing 20 paths of 0.1 "proves" certainty), so this
// implementation combines alternatives by noisy-OR instead:
//
//	X(i,j) ← 1 - (1 - p(i,j)) · Π_k (1 - p(i,k)·X(k,j))
//
// which treats the first-step alternatives as independent and is bounded by
// 1 by construction. The iteration is monotone from X = P and stops when no
// entry moves by more than tol or after maxIter rounds (default 32).
// Entries below eps are pruned each round to keep the matrix sparse.
//
// Each iteration's rows are independent (they read only the previous X), so
// the fixpoint is evaluated by a worker pool sized to GOMAXPROCS; per-row
// arithmetic is identical to the serial evaluation, so the result does not
// depend on the worker count.
func (m *Matrix) Closure(eps, tol float64, maxIter int) *Matrix {
	return m.closure(eps, tol, maxIter, runtime.GOMAXPROCS(0))
}

// closure is Closure with an explicit worker count; workers <= 1 runs the
// serial evaluation (benchmarked against the parallel one in bench_test.go).
func (m *Matrix) closure(eps, tol float64, maxIter, workers int) *Matrix {
	if maxIter <= 0 {
		maxIter = 32
	}
	if tol <= 0 {
		tol = 1e-6
	}
	x := m.Clone()
	x.Prune(eps)
	// Snapshot the row set once: m is read-only throughout the iteration.
	ids := make([]webgraph.DocID, 0, len(m.rows))
	for i := range m.rows {
		ids = append(ids, i)
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	rows := make([]map[webgraph.DocID]float64, len(ids))
	deltas := make([]float64, len(ids))
	for iter := 0; iter < maxIter; iter++ {
		if workers > 1 {
			var cursor atomic.Int64
			var wg sync.WaitGroup
			// Small chunks keep the pool balanced when row fan-out is
			// skewed (popular pages have far larger rows).
			chunk := len(ids)/(workers*8) + 1
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						lo := int(cursor.Add(int64(chunk))) - chunk
						if lo >= len(ids) {
							return
						}
						hi := lo + chunk
						if hi > len(ids) {
							hi = len(ids)
						}
						for r := lo; r < hi; r++ {
							rows[r], deltas[r] = m.closureRow(ids[r], x, eps)
						}
					}
				}()
			}
			wg.Wait()
		} else {
			for r, id := range ids {
				rows[r], deltas[r] = m.closureRow(id, x, eps)
			}
		}
		next := NewMatrix()
		maxDelta := 0.0
		for r, id := range ids {
			if len(rows[r]) > 0 {
				next.rows[id] = rows[r]
			}
			if deltas[r] > maxDelta {
				maxDelta = deltas[r]
			}
			rows[r] = nil
		}
		x = next
		if maxDelta <= tol {
			break
		}
	}
	// Strip the diagonal from the reported closure: a document is not a
	// speculative candidate for itself.
	for i, row := range x.rows {
		delete(row, i)
		if len(row) == 0 {
			delete(x.rows, i)
		}
	}
	return x
}

// closureRow evaluates one row of the noisy-OR fixpoint against the
// previous iterate x, returning the new row (nil when empty) and the row's
// largest entry increase.
func (m *Matrix) closureRow(i webgraph.DocID, x *Matrix, eps float64) (map[webgraph.DocID]float64, float64) {
	row := m.rows[i]
	// acc[j] accumulates Π (1 - contribution) over the direct edge and
	// every first-step alternative.
	acc := make(map[webgraph.DocID]float64, len(row)*2)
	for k, pik := range row {
		if prev, ok := acc[k]; ok {
			acc[k] = prev * (1 - pik)
		} else {
			acc[k] = 1 - pik
		}
		for j, xkj := range x.rows[k] {
			// Diagonal entries (i→…→i) are kept during the iteration:
			// they are the return paths longer chains pass through.
			c := pik * xkj
			if prev, ok := acc[j]; ok {
				acc[j] = prev * (1 - c)
			} else {
				acc[j] = 1 - c
			}
		}
	}
	out := make(map[webgraph.DocID]float64, len(acc))
	var maxDelta float64
	for j, q := range acc {
		p := 1 - q
		if p <= 0 || p < eps {
			continue
		}
		if p > 1 {
			p = 1
		}
		out[j] = p
		if d := p - x.Get(i, j); d > maxDelta {
			maxDelta = d
		}
	}
	if len(out) == 0 {
		return nil, maxDelta
	}
	return out, maxDelta
}

// PairHistogram bins every stored probability into a histogram over (0, 1],
// the data behind Figure 4.
func (m *Matrix) PairHistogram(bins int) *stats.Histogram {
	h := stats.NewHistogram(0, 1, bins)
	for _, row := range m.rows {
		for _, p := range row {
			h.Add(p)
		}
	}
	return h
}
