package markov

import (
	"math"
	"reflect"
	"testing"
	"time"

	"specweb/internal/stats"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// boundedRandTrace builds a seeded multi-client trace over documents
// [0, docs). Gaps are drawn in [0s, 8s), so with a 5 s window pairs both
// join and split — the traversal logic, not just the counting, is
// exercised. Per-client times are monotone, as ByClient requires.
func boundedRandTrace(rng *stats.RNG, docs, reqs int) *trace.Trace {
	clients := []trace.ClientID{"a", "b", "c", "d"}
	at := make([]time.Duration, len(clients))
	tr := &trace.Trace{Requests: make([]trace.Request, 0, reqs)}
	for n := 0; n < reqs; n++ {
		c := rng.Intn(len(clients))
		at[c] += time.Duration(rng.Intn(8)) * time.Second
		tr.Requests = append(tr.Requests, trace.Request{
			Time:   t0.Add(at[c]),
			Client: clients[c],
			Doc:    webgraph.DocID(rng.Intn(docs)),
			Size:   1,
		})
	}
	return tr
}

// matricesIdentical compares two snapshots entry-by-entry with exact
// float64 equality — the byte-identity oracle, not an epsilon check.
func matricesIdentical(a, b *Matrix) bool {
	if len(a.rows) != len(b.rows) {
		return false
	}
	for i, ra := range a.rows {
		rb, ok := b.rows[i]
		if !ok || len(ra) != len(rb) {
			return false
		}
		for j, p := range ra {
			q, ok := rb[j]
			if !ok || p != q {
				return false
			}
		}
	}
	return true
}

// The tentpole property: while nothing has been evicted — every document
// fits under MaxRows and every row under RowTopK — the bounded estimator
// is indistinguishable from the exact one, bit for bit, across multiple
// decayed days, for both the windowed P and the transitive P* pairing.
func TestBoundedMatchesExactUnderCaps(t *testing.T) {
	cfg := EstimateConfig{
		Window:         5 * time.Second,
		StrideTimeout:  5 * time.Second,
		MinOccurrences: 2,
		Smoothing:      2,
	}
	const docs = 12 // ≤ MaxRows, and any row has ≤ 11 successors ≤ RowTopK
	bcfg := BoundedConfig{MaxRows: 16, RowTopK: 16}
	for seed := int64(0); seed < 8; seed++ {
		for _, decay := range []float64{1, 0.97, 0.5} {
			for _, transitive := range []bool{false, true} {
				rng := stats.NewRNG(1000 + seed)
				exact := NewAging(decay, cfg)
				bounded := NewBounded(decay, cfg, bcfg)
				bounded.Transitive = transitive
				exact.Transitive = transitive
				for day := 0; day < 4; day++ {
					tr := boundedRandTrace(rng, docs, 150)
					if err := exact.AddDay(tr); err != nil {
						t.Fatal(err)
					}
					if err := bounded.AddDay(tr); err != nil {
						t.Fatal(err)
					}
					me, mb := exact.Snapshot(), bounded.Snapshot()
					if !matricesIdentical(me, mb) {
						t.Fatalf("seed=%d decay=%v transitive=%v day=%d: bounded snapshot diverged from exact",
							seed, decay, transitive, day)
					}
					// Byte-level check: the frozen CSR forms are identical too.
					if !reflect.DeepEqual(Freeze(me), Freeze(mb)) {
						t.Fatalf("seed=%d decay=%v day=%d: frozen forms differ", seed, decay, day)
					}
					if mb.EvictedPairs() != 0 {
						t.Fatalf("no-eviction regime annotated %d evicted pairs", mb.EvictedPairs())
					}
					st := bounded.EstimatorStats()
					if st.EvictedRows != 0 || st.EvictedPairs != 0 || st.EvictedMass != 0 || st.ErrorBound != 0 {
						t.Fatalf("no-eviction regime reported evictions: %+v", st)
					}
					// Support parity feeds trust scoring identically.
					for d := webgraph.DocID(0); d < docs; d++ {
						if exact.Occurrences(d) != bounded.Occurrences(d) {
							t.Fatalf("occ[%d]: exact %v bounded %v", d, exact.Occurrences(d), bounded.Occurrences(d))
						}
					}
					if exact.Pairs() != bounded.Pairs() {
						t.Fatalf("pairs: exact %d bounded %d", exact.Pairs(), bounded.Pairs())
					}
				}
			}
		}
	}
}

// The space-saving sandwich: with RowTopK forced tiny, every tracked pair
// satisfies count − err ≤ true ≤ count against the exact accumulator, the
// inherited error never exceeds the per-row ε = rowMass/K bound, and the
// count-min sketch upper-bounds every pair the row dropped.
func TestBoundedSpaceSavingSandwich(t *testing.T) {
	cfg := EstimateConfig{
		Window:         5 * time.Second,
		StrideTimeout:  5 * time.Second,
		MinOccurrences: 1,
		Smoothing:      2,
	}
	const (
		docs = 24
		k    = 3
	)
	for seed := int64(0); seed < 6; seed++ {
		rng := stats.NewRNG(7000 + seed)
		exact := NewAging(1, cfg)
		bounded := NewBounded(1, cfg, BoundedConfig{MaxRows: 1 << 16, RowTopK: k})
		for day := 0; day < 3; day++ {
			tr := boundedRandTrace(rng, docs, 400)
			if err := exact.AddDay(tr); err != nil {
				t.Fatal(err)
			}
			if err := bounded.AddDay(tr); err != nil {
				t.Fatal(err)
			}
		}
		st := bounded.EstimatorStats()
		if st.EvictedPairs == 0 {
			t.Fatalf("seed=%d: workload too tame — K=%d forced no evictions, test vacuous", seed, k)
		}
		for i, r := range bounded.rows {
			if len(r.succ) > k {
				t.Fatalf("row %d holds %d > K=%d successors", i, len(r.succ), k)
			}
			// rowMass is the true total increment mass of row i: with
			// decay=1 every counted (i,j) observation is still in the exact
			// accumulator, so it equals Σ_j true(i,j).
			var rowMass float64
			for _, c := range exact.acc.counts[i] {
				rowMass += c
			}
			for j, e := range r.succ {
				truth := exact.acc.counts[i][j]
				if e.count < truth {
					t.Errorf("row %d→%d: count %v < true %v (upper bound violated)", i, j, e.count, truth)
				}
				if e.count-e.err > truth {
					t.Errorf("row %d→%d: count−err %v > true %v (lower bound violated)", i, j, e.count-e.err, truth)
				}
				if e.err > rowMass/float64(k)+1e-9 {
					t.Errorf("row %d→%d: err %v exceeds ε = rowMass/K = %v", i, j, e.err, rowMass/float64(k))
				}
				if e.err > st.ErrorBound {
					t.Errorf("row %d→%d: err %v exceeds reported ErrorBound %v", i, j, e.err, st.ErrorBound)
				}
			}
			// Every pair the exact oracle holds but the bounded row dropped
			// must be covered by the eviction sketch: an untracked pair's
			// full true mass passed through a space-saving eviction.
			for j, truth := range exact.acc.counts[i] {
				if _, tracked := r.succ[j]; tracked {
					continue
				}
				if got := bounded.EvictedBound(i, j); got < truth {
					t.Errorf("row %d→%d: evicted bound %v < true %v", i, j, got, truth)
				}
			}
		}
	}
}

// Row-granularity space-saving: with MaxRows forced tiny the tracked-row
// count never exceeds the cap, surviving rows keep the occurrence sandwich
// occ − occErr ≤ true ≤ occ, and the eviction ledger moves monotonically.
func TestBoundedRowAdmission(t *testing.T) {
	cfg := EstimateConfig{
		Window:         5 * time.Second,
		StrideTimeout:  5 * time.Second,
		MinOccurrences: 1,
		Smoothing:      2,
	}
	const (
		docs    = 48
		maxRows = 6
	)
	rng := stats.NewRNG(99)
	exact := NewAging(1, cfg)
	bounded := NewBounded(1, cfg, BoundedConfig{MaxRows: maxRows, RowTopK: 8})
	var prev EstimatorStats
	for day := 0; day < 4; day++ {
		tr := boundedRandTrace(rng, docs, 300)
		if err := exact.AddDay(tr); err != nil {
			t.Fatal(err)
		}
		if err := bounded.AddDay(tr); err != nil {
			t.Fatal(err)
		}
		if len(bounded.rows) > maxRows {
			t.Fatalf("day %d: %d rows tracked, cap %d", day, len(bounded.rows), maxRows)
		}
		st := bounded.EstimatorStats()
		if st.EvictedRows < prev.EvictedRows || st.EvictedPairs < prev.EvictedPairs {
			t.Fatalf("day %d: eviction counters went backwards: %+v after %+v", day, st, prev)
		}
		prev = st
		for i, r := range bounded.rows {
			truth := exact.Occurrences(i)
			if r.occ < truth {
				t.Errorf("day %d row %d: occ %v < true %v", day, i, r.occ, truth)
			}
			if r.occ-r.occErr > truth {
				t.Errorf("day %d row %d: occ−occErr %v > true %v", day, i, r.occ-r.occErr, truth)
			}
		}
	}
	if prev.EvictedRows == 0 {
		t.Fatal("workload too tame — no row evictions, test vacuous")
	}
	// The annotation rides into the snapshot for NumPairs/EvictedPairs
	// separation downstream.
	if got := bounded.Snapshot().EvictedPairs(); got != prev.EvictedPairs {
		t.Errorf("snapshot annotates %d evicted pairs, ledger says %d", got, prev.EvictedPairs)
	}
}

func TestBoundedImportCountersMonotone(t *testing.T) {
	b := NewBounded(1, DefaultEstimate(), BoundedConfig{})
	b.ImportCounters(10, 20, 1.5)
	st := b.EstimatorStats()
	if st.EvictedRows != 10 || st.EvictedPairs != 20 || st.EvictedMass != 1.5 {
		t.Fatalf("import lost: %+v", st)
	}
	// A stale frame must never roll the ledger back.
	b.ImportCounters(5, 5, 0.5)
	st = b.EstimatorStats()
	if st.EvictedRows != 10 || st.EvictedPairs != 20 || st.EvictedMass != 1.5 {
		t.Fatalf("stale import rolled counters back: %+v", st)
	}
}

func TestNewBoundedRejectsBadDecay(t *testing.T) {
	for _, d := range []float64{0, -1, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("decay %v should panic", d)
				}
			}()
			NewBounded(d, DefaultEstimate(), BoundedConfig{})
		}()
	}
	// Zero-valued caps take the documented defaults.
	b := NewBounded(1, DefaultEstimate(), BoundedConfig{})
	if b.Config() != DefaultBounded() {
		t.Errorf("defaults not applied: %+v", b.Config())
	}
}

// TestBoundedMemoryGate is the CI memory gate (`make bench-memory`): at a
// 10× document-cardinality jump with the caps saturated, the bounded
// estimator's footprint must stay flat while the exact estimator's grows
// multiplicatively. MemoryBytes is analytic — entry counts × fixed
// per-entry costs — so the gate is deterministic, not heap-noise-bound.
// With BENCH_MEMORY_OUT set it also writes the report artifact CI uploads.
func TestBoundedMemoryGate(t *testing.T) {
	cfg := EstimateConfig{
		Window:         5 * time.Second,
		StrideTimeout:  5 * time.Second,
		MinOccurrences: 1,
		Smoothing:      2,
	}
	bcfg := BoundedConfig{MaxRows: 64, RowTopK: 4}
	run := func(docs, reqs int) (exactBytes, boundedBytes int64) {
		rng := stats.NewRNG(4242)
		exact := NewAging(1, cfg)
		bounded := NewBounded(1, cfg, bcfg)
		for day := 0; day < 3; day++ {
			tr := boundedRandTrace(rng, docs, reqs)
			if err := exact.AddDay(tr); err != nil {
				t.Fatal(err)
			}
			if err := bounded.AddDay(tr); err != nil {
				t.Fatal(err)
			}
			exact.Snapshot()
			bounded.Snapshot()
		}
		return exact.EstimatorStats().MemoryBytes, bounded.EstimatorStats().MemoryBytes
	}
	exact1, bounded1 := run(128, 4000)
	exact10, bounded10 := run(1280, 40000) // 10× cardinality, 10× traffic
	exactGrowth := float64(exact10) / float64(exact1)
	boundedGrowth := float64(bounded10) / float64(bounded1)
	t.Logf("exact:   %d B → %d B (×%.2f) at 10× cardinality", exact1, exact10, exactGrowth)
	t.Logf("bounded: %d B → %d B (×%.2f) at 10× cardinality", bounded1, bounded10, boundedGrowth)
	if boundedGrowth > 1.1 {
		t.Errorf("bounded estimator grew ×%.2f at 10× cardinality; gate requires ≤ 1.1 (flat)", boundedGrowth)
	}
	if exactGrowth < 3 {
		t.Errorf("exact estimator grew only ×%.2f at 10× cardinality; contrast check expects ≥ 3 — "+
			"the workload no longer saturates the caps and the gate is vacuous", exactGrowth)
	}
	writeMemoryGateReport(t, memoryGateReport{
		Caps:            bcfg,
		ExactBytes1x:    exact1,
		ExactBytes10x:   exact10,
		BoundedBytes1x:  bounded1,
		BoundedBytes10x: bounded10,
		ExactGrowth:     exactGrowth,
		BoundedGrowth:   boundedGrowth,
	})
}
