package markov

import (
	"runtime"
	"testing"
	"time"

	"specweb/internal/stats"
	"specweb/internal/synth"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	site, err := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	cfg := synth.DefaultConfig(site, nil)
	cfg.Days = 10
	cfg.SessionsPerDay = 80
	res, err := synth.Generate(cfg, stats.NewRNG(2))
	if err != nil {
		b.Fatal(err)
	}
	return res.Trace
}

// BenchmarkEstimate measures windowed P estimation throughput.
func BenchmarkEstimate(b *testing.B) {
	tr := benchTrace(b)
	cfg := DefaultEstimate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len()), "requests")
}

// BenchmarkEstimateTransitive measures direct P* estimation.
func BenchmarkEstimateTransitive(b *testing.B) {
	tr := benchTrace(b)
	cfg := DefaultEstimate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateTransitive(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClosure measures the analytic noisy-OR closure.
func BenchmarkClosure(b *testing.B) {
	tr := benchTrace(b)
	m, err := Estimate(tr, DefaultEstimate())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Closure(1e-3, 1e-4, 6)
	}
	reportPairMetrics(b, m)
}

// reportPairMetrics splits the old input_pairs metric into what the matrix
// actually holds vs what a bounded estimator dropped on the way: NumPairs
// only ever counted tracked pairs, and conflating the two would let a
// bounding change shift benchmark baselines silently.
func reportPairMetrics(b *testing.B, m *Matrix) {
	b.ReportMetric(float64(m.NumPairs()), "tracked_pairs")
	b.ReportMetric(float64(m.EvictedPairs()), "evicted_pairs")
}

// BenchmarkClosureSerial pins the single-worker closure as the baseline
// for the parallel variant below.
func BenchmarkClosureSerial(b *testing.B) {
	tr := benchTrace(b)
	m, err := Estimate(tr, DefaultEstimate())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.closure(1e-3, 1e-4, 6, 1)
	}
	reportPairMetrics(b, m)
}

// BenchmarkClosureParallel measures the row-parallel worker pool at full
// width; compare against BenchmarkClosureSerial for the speedup.
func BenchmarkClosureParallel(b *testing.B) {
	tr := benchTrace(b)
	m, err := Estimate(tr, DefaultEstimate())
	if err != nil {
		b.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.closure(1e-3, 1e-4, 6, workers)
	}
	reportPairMetrics(b, m)
}

// BenchmarkFreeze measures CSR snapshot construction (refresh-path cost).
func BenchmarkFreeze(b *testing.B) {
	tr := benchTrace(b)
	m, err := Estimate(tr, DefaultEstimate())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Freeze(m)
	}
	b.ReportMetric(float64(m.NumPairs()), "pairs")
}

// BenchmarkFrozenThresholdRow measures the zero-alloc binary-search cut on
// a frozen row — the innermost operation of the request hot path.
func BenchmarkFrozenThresholdRow(b *testing.B) {
	tr := benchTrace(b)
	m, err := Estimate(tr, DefaultEstimate())
	if err != nil {
		b.Fatal(err)
	}
	f := Freeze(m)
	var widest webgraph.DocID
	best := 0
	f.RangeRows(func(doc webgraph.DocID, row []Successor) bool {
		if len(row) > best {
			widest, best = doc, len(row)
		}
		return true
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if row := f.ThresholdRow(widest, 0.05); len(row) == 0 && best > 0 {
			_ = row
		}
	}
}

// BenchmarkAgingAddDay measures incremental daily folding.
func BenchmarkAgingAddDay(b *testing.B) {
	tr := benchTrace(b)
	first, _, _ := tr.Span()
	day := tr.Window(first, first.Add(24*time.Hour))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewAging(0.97, DefaultEstimate())
		if err := a.AddDay(day); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBoundedAddDay measures the bounded counterpart under caps tight
// enough that space-saving eviction is on the measured path; compare
// against BenchmarkAgingAddDay for the streaming overhead.
func BenchmarkBoundedAddDay(b *testing.B) {
	tr := benchTrace(b)
	first, _, _ := tr.Span()
	day := tr.Window(first, first.Add(24*time.Hour))
	b.ResetTimer()
	var st EstimatorStats
	for i := 0; i < b.N; i++ {
		bd := NewBounded(0.97, DefaultEstimate(), BoundedConfig{MaxRows: 64, RowTopK: 8})
		if err := bd.AddDay(day); err != nil {
			b.Fatal(err)
		}
		st = bd.EstimatorStats()
	}
	b.ReportMetric(float64(st.TrackedPairs), "tracked_pairs")
	b.ReportMetric(float64(st.EvictedPairs), "evicted_pairs")
	b.ReportMetric(float64(st.MemoryBytes), "estimator_bytes")
}

// BenchmarkDeltaFreeze measures the incremental refresh-path freeze when
// only a small fraction of rows changed since the previous snapshot —
// the case delta-freezing exists for. Compare against BenchmarkFreeze.
func BenchmarkDeltaFreeze(b *testing.B) {
	tr := benchTrace(b)
	m, err := Estimate(tr, DefaultEstimate())
	if err != nil {
		b.Fatal(err)
	}
	prev := Freeze(m)
	// Touch ~1/16 of the rows, the shape of a quiet refresh window.
	var dirty []webgraph.DocID
	f := Freeze(m)
	f.RangeRows(func(doc webgraph.DocID, row []Successor) bool {
		if int(doc)%16 == 0 {
			m.Set(doc, row[0].Doc, row[0].P/2)
			dirty = append(dirty, doc)
		}
		return true
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DeltaFreeze(prev, m, dirty)
	}
	b.ReportMetric(float64(len(dirty)), "dirty_rows")
	b.ReportMetric(float64(m.NumRows()), "total_rows")
}
