package markov

import (
	"runtime"
	"testing"
	"time"

	"specweb/internal/stats"
	"specweb/internal/synth"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	site, err := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	cfg := synth.DefaultConfig(site, nil)
	cfg.Days = 10
	cfg.SessionsPerDay = 80
	res, err := synth.Generate(cfg, stats.NewRNG(2))
	if err != nil {
		b.Fatal(err)
	}
	return res.Trace
}

// BenchmarkEstimate measures windowed P estimation throughput.
func BenchmarkEstimate(b *testing.B) {
	tr := benchTrace(b)
	cfg := DefaultEstimate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len()), "requests")
}

// BenchmarkEstimateTransitive measures direct P* estimation.
func BenchmarkEstimateTransitive(b *testing.B) {
	tr := benchTrace(b)
	cfg := DefaultEstimate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateTransitive(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClosure measures the analytic noisy-OR closure.
func BenchmarkClosure(b *testing.B) {
	tr := benchTrace(b)
	m, err := Estimate(tr, DefaultEstimate())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Closure(1e-3, 1e-4, 6)
	}
	b.ReportMetric(float64(m.NumPairs()), "input_pairs")
}

// BenchmarkClosureSerial pins the single-worker closure as the baseline
// for the parallel variant below.
func BenchmarkClosureSerial(b *testing.B) {
	tr := benchTrace(b)
	m, err := Estimate(tr, DefaultEstimate())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.closure(1e-3, 1e-4, 6, 1)
	}
	b.ReportMetric(float64(m.NumPairs()), "input_pairs")
}

// BenchmarkClosureParallel measures the row-parallel worker pool at full
// width; compare against BenchmarkClosureSerial for the speedup.
func BenchmarkClosureParallel(b *testing.B) {
	tr := benchTrace(b)
	m, err := Estimate(tr, DefaultEstimate())
	if err != nil {
		b.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.closure(1e-3, 1e-4, 6, workers)
	}
	b.ReportMetric(float64(m.NumPairs()), "input_pairs")
}

// BenchmarkFreeze measures CSR snapshot construction (refresh-path cost).
func BenchmarkFreeze(b *testing.B) {
	tr := benchTrace(b)
	m, err := Estimate(tr, DefaultEstimate())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Freeze(m)
	}
	b.ReportMetric(float64(m.NumPairs()), "pairs")
}

// BenchmarkFrozenThresholdRow measures the zero-alloc binary-search cut on
// a frozen row — the innermost operation of the request hot path.
func BenchmarkFrozenThresholdRow(b *testing.B) {
	tr := benchTrace(b)
	m, err := Estimate(tr, DefaultEstimate())
	if err != nil {
		b.Fatal(err)
	}
	f := Freeze(m)
	var widest webgraph.DocID
	best := 0
	f.RangeRows(func(doc webgraph.DocID, row []Successor) bool {
		if len(row) > best {
			widest, best = doc, len(row)
		}
		return true
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if row := f.ThresholdRow(widest, 0.05); len(row) == 0 && best > 0 {
			_ = row
		}
	}
}

// BenchmarkAgingAddDay measures incremental daily folding.
func BenchmarkAgingAddDay(b *testing.B) {
	tr := benchTrace(b)
	first, _, _ := tr.Span()
	day := tr.Window(first, first.Add(24*time.Hour))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewAging(0.97, DefaultEstimate())
		if err := a.AddDay(day); err != nil {
			b.Fatal(err)
		}
	}
}
