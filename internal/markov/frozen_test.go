package markov

import (
	"math"
	"testing"

	"specweb/internal/webgraph"
)

func frozenFixture() *Matrix {
	m := NewMatrix()
	m.Set(1, 2, 0.9)
	m.Set(1, 3, 0.5)
	m.Set(1, 4, 0.2)
	m.Set(1, 5, 1.0)
	m.Set(7, 1, 0.4)
	return m
}

func TestFreezeMatchesSortedRow(t *testing.T) {
	m := frozenFixture()
	f := Freeze(m)
	if f.NumRows() != m.NumRows() || f.NumPairs() != m.NumPairs() {
		t.Fatalf("shape: frozen %d/%d vs matrix %d/%d",
			f.NumRows(), f.NumPairs(), m.NumRows(), m.NumPairs())
	}
	for _, i := range []webgraph.DocID{1, 7, 99} {
		want := m.SortedRow(i)
		got := f.SortedRow(i)
		if len(got) != len(want) {
			t.Fatalf("row %d: frozen %v vs live %v", i, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Errorf("row %d[%d]: frozen %v vs live %v", i, k, got[k], want[k])
			}
		}
		if f.RowLen(i) != len(want) {
			t.Errorf("RowLen(%d) = %d, want %d", i, f.RowLen(i), len(want))
		}
	}
	if got := f.Get(1, 3); got != 0.5 {
		t.Errorf("Get(1,3) = %v", got)
	}
	if got := f.Get(2, 3); got != 0 {
		t.Errorf("Get(2,3) = %v, want 0", got)
	}
}

func TestFreezeIsImmutable(t *testing.T) {
	m := frozenFixture()
	f := Freeze(m)
	m.Set(1, 2, 0.1)
	m.Set(1, 9, 0.99)
	if got := f.Get(1, 2); got != 0.9 {
		t.Errorf("snapshot leaked a later mutation: Get(1,2) = %v", got)
	}
	if got := f.RowLen(1); got != 4 {
		t.Errorf("snapshot grew: RowLen(1) = %d", got)
	}
}

func TestFrozenThresholdRow(t *testing.T) {
	f := Freeze(frozenFixture())
	for _, tc := range []struct {
		tp   float64
		want []webgraph.DocID
	}{
		{0, []webgraph.DocID{5, 2, 3, 4}},
		{0.5, []webgraph.DocID{5, 2, 3}},
		{0.51, []webgraph.DocID{5, 2}},
		{1, []webgraph.DocID{5}},
	} {
		got := f.ThresholdRow(1, tc.tp)
		if len(got) != len(tc.want) {
			t.Fatalf("tp=%v: got %v, want %v", tc.tp, got, tc.want)
		}
		for k, d := range tc.want {
			if got[k].Doc != d {
				t.Errorf("tp=%v[%d]: got %d, want %d", tc.tp, k, got[k].Doc, d)
			}
		}
	}
	if got := f.ThresholdRow(404, 0); len(got) != 0 {
		t.Errorf("unknown row: %v", got)
	}
}

// TestFrozenThresholdTieOrdering pins the determinism guarantee: successors
// with equal probability keep ascending-DocID order, and a threshold cut
// landing exactly on the tied value keeps the whole tie group.
func TestFrozenThresholdTieOrdering(t *testing.T) {
	m := NewMatrix()
	m.Set(1, 9, 0.5)
	m.Set(1, 3, 0.5)
	m.Set(1, 6, 0.5)
	m.Set(1, 2, 0.8)
	m.Set(1, 8, 0.1)
	f := Freeze(m)
	got := f.ThresholdRow(1, 0.5)
	want := []webgraph.DocID{2, 3, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("cut at tie value: %v, want docs %v", got, want)
	}
	for k, d := range want {
		if got[k].Doc != d {
			t.Errorf("tie order[%d] = %d, want %d", k, got[k].Doc, d)
		}
	}
	if got := f.TopKRow(1, 2, 0); got[0].Doc != 2 || got[1].Doc != 3 {
		t.Errorf("topK tie order: %v", got)
	}
}

func TestFrozenTopKRow(t *testing.T) {
	f := Freeze(frozenFixture())
	if got := f.TopKRow(1, 2, 0); len(got) != 2 || got[0].Doc != 5 || got[1].Doc != 2 {
		t.Errorf("top2 = %v", got)
	}
	if got := f.TopKRow(1, 10, 0.4); len(got) != 3 {
		t.Errorf("top10 minP 0.4 = %v", got)
	}
	if got := f.TopKRow(1, -1, 0); len(got) != 4 {
		t.Errorf("unbounded topK = %v", got)
	}
}

// TestFrozenSparseIDs forces the binary-search index (IDs too sparse for
// the dense table) and checks lookups still resolve.
func TestFrozenSparseIDs(t *testing.T) {
	m := NewMatrix()
	m.Set(5, 6, 0.5)
	m.Set(1<<30, 7, 0.9)
	f := Freeze(m)
	if f.dense != nil {
		t.Fatal("expected sparse fallback for a 2^30 ID span")
	}
	if got := f.SortedRow(1 << 30); len(got) != 1 || got[0].Doc != 7 {
		t.Errorf("sparse row = %v", got)
	}
	if got := f.SortedRow(5); len(got) != 1 || got[0].Doc != 6 {
		t.Errorf("sparse row = %v", got)
	}
	if got := f.SortedRow(6); got != nil {
		t.Errorf("absent row = %v", got)
	}
}

func TestFreezeEmpty(t *testing.T) {
	f := Freeze(NewMatrix())
	if f.NumRows() != 0 || f.NumPairs() != 0 {
		t.Errorf("empty freeze: %d rows, %d pairs", f.NumRows(), f.NumPairs())
	}
	if got := f.SortedRow(1); got != nil {
		t.Errorf("empty row = %v", got)
	}
	if got := f.ThresholdRow(1, 0); len(got) != 0 {
		t.Errorf("empty threshold = %v", got)
	}
}

func TestFrozenRangeRows(t *testing.T) {
	f := Freeze(frozenFixture())
	var visited []webgraph.DocID
	pairs := 0
	f.RangeRows(func(doc webgraph.DocID, row []Successor) bool {
		visited = append(visited, doc)
		pairs += len(row)
		return true
	})
	if len(visited) != 2 || visited[0] != 1 || visited[1] != 7 {
		t.Errorf("visited %v, want [1 7]", visited)
	}
	if pairs != f.NumPairs() {
		t.Errorf("visited %d pairs, want %d", pairs, f.NumPairs())
	}
	// Early stop.
	n := 0
	f.RangeRows(func(webgraph.DocID, []Successor) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d rows", n)
	}
}

// TestMatrixRowIsACopy pins the defensive-copy contract of the stat-path
// accessor: mutating the returned map must not corrupt the matrix.
func TestMatrixRowIsACopy(t *testing.T) {
	m := frozenFixture()
	row := m.Row(1)
	row[2] = 0.001
	delete(row, 5)
	if got := m.Get(1, 2); got != 0.9 {
		t.Errorf("mutating the Row copy leaked: Get(1,2) = %v", got)
	}
	if got := m.RowLen(1); got != 4 {
		t.Errorf("RowLen(1) = %d after external delete", got)
	}
	if m.Row(99) != nil {
		t.Error("absent row should be nil")
	}
}

func TestMatrixRangeRow(t *testing.T) {
	m := frozenFixture()
	sum := 0.0
	m.RangeRow(1, func(_ webgraph.DocID, p float64) bool { sum += p; return true })
	if math.Abs(sum-2.6) > 1e-12 {
		t.Errorf("RangeRow sum = %v, want 2.6", sum)
	}
	n := 0
	m.RangeRow(1, func(webgraph.DocID, float64) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

// TestClosureParallelMatchesSerial checks the worker pool changes nothing:
// per-row arithmetic is identical, so serial and parallel closures must
// agree entry-for-entry (up to map-iteration rounding jitter, which both
// evaluations share).
func TestClosureParallelMatchesSerial(t *testing.T) {
	m := NewMatrix()
	// A braided graph: chains, a cycle, and fan-out, sized so several
	// iterations run.
	for i := 0; i < 40; i++ {
		m.Set(webgraph.DocID(i), webgraph.DocID(i+1), 0.6)
		m.Set(webgraph.DocID(i), webgraph.DocID(i+2), 0.3)
		if i%5 == 0 {
			m.Set(webgraph.DocID(i+3), webgraph.DocID(i), 0.4)
		}
	}
	serial := m.closure(1e-6, 1e-9, 0, 1)
	parallel := m.closure(1e-6, 1e-9, 0, 8)
	if serial.NumPairs() != parallel.NumPairs() || serial.NumRows() != parallel.NumRows() {
		t.Fatalf("shape mismatch: serial %d/%d parallel %d/%d",
			serial.NumRows(), serial.NumPairs(), parallel.NumRows(), parallel.NumPairs())
	}
	for i := 0; i < 45; i++ {
		id := webgraph.DocID(i)
		serial.RangeRow(id, func(j webgraph.DocID, p float64) bool {
			if q := parallel.Get(id, j); math.Abs(p-q) > 1e-9 {
				t.Errorf("p*[%d,%d]: serial %v parallel %v", id, j, p, q)
			}
			return true
		})
	}
}
