package markov

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"specweb/internal/stats"
	"specweb/internal/synth"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

var t0 = time.Date(1995, time.January, 9, 0, 0, 0, 0, time.UTC)

func TestMatrixSetGet(t *testing.T) {
	m := NewMatrix()
	m.Set(1, 2, 0.5)
	if m.Get(1, 2) != 0.5 || m.Get(2, 1) != 0 {
		t.Error("basic get/set broken")
	}
	m.Set(1, 2, 0) // deletion
	if m.Get(1, 2) != 0 || m.NumPairs() != 0 || m.NumRows() != 0 {
		t.Error("zero set should delete")
	}
	defer func() {
		if recover() == nil {
			t.Error("p > 1 should panic")
		}
	}()
	m.Set(1, 2, 1.5)
}

func TestMatrixSortedRow(t *testing.T) {
	m := NewMatrix()
	m.Set(1, 5, 0.2)
	m.Set(1, 3, 0.9)
	m.Set(1, 4, 0.2)
	row := m.SortedRow(1)
	if len(row) != 3 || row[0].Doc != 3 || row[1].Doc != 4 || row[2].Doc != 5 {
		t.Errorf("sorted row = %v", row)
	}
	if m.SortedRow(99) != nil && len(m.SortedRow(99)) != 0 {
		t.Error("missing row should be empty")
	}
}

func TestMatrixCloneIndependent(t *testing.T) {
	m := NewMatrix()
	m.Set(1, 2, 0.4)
	c := m.Clone()
	c.Set(1, 2, 0.9)
	if m.Get(1, 2) != 0.4 {
		t.Error("clone shares storage")
	}
}

func TestMatrixPrune(t *testing.T) {
	m := NewMatrix()
	m.Set(1, 2, 0.001)
	m.Set(1, 3, 0.5)
	m.Prune(0.01)
	if m.Get(1, 2) != 0 || m.Get(1, 3) != 0.5 {
		t.Error("prune wrong")
	}
}

func TestClosureChain(t *testing.T) {
	// 1 → 2 (0.5), 2 → 3 (0.5): closure must add 1 → 3 with 0.25.
	m := NewMatrix()
	m.Set(1, 2, 0.5)
	m.Set(2, 3, 0.5)
	c := m.Closure(1e-6, 1e-9, 0)
	if got := c.Get(1, 3); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("p*[1,3] = %v, want 0.25", got)
	}
	if got := c.Get(1, 2); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("closure must include direct edges: p*[1,2] = %v", got)
	}
}

func TestClosureClampsAtOne(t *testing.T) {
	// Two certain paths 1→2→4 and 1→3→4 would sum to 2; clamp at 1.
	m := NewMatrix()
	m.Set(1, 2, 1)
	m.Set(1, 3, 1)
	m.Set(2, 4, 1)
	m.Set(3, 4, 1)
	c := m.Closure(1e-6, 1e-9, 0)
	if got := c.Get(1, 4); got != 1 {
		t.Errorf("p*[1,4] = %v, want clamped 1", got)
	}
}

func TestClosureCycleConverges(t *testing.T) {
	// 1 → 2 → 1 cycle with sub-unit probabilities. Under the noisy-OR
	// composition the fixpoint solves
	//   x = 1 - (1-0.6)·(1 - 0.6·(0.5·x))  ⇒  x = 0.6/0.88.
	m := NewMatrix()
	m.Set(1, 2, 0.6)
	m.Set(2, 1, 0.5)
	c := m.Closure(1e-9, 1e-12, 200)
	want := 0.6 / 0.88
	if got := c.Get(1, 2); math.Abs(got-want) > 1e-6 {
		t.Errorf("p*[1,2] = %v, want %v", got, want)
	}
	// No self-dependencies are recorded.
	if got := c.Get(1, 1); got != 0 {
		t.Errorf("p*[1,1] = %v, want 0 (self-dependencies excluded)", got)
	}
}

func TestClosureDominatesP(t *testing.T) {
	m := NewMatrix()
	m.Set(1, 2, 0.3)
	m.Set(2, 3, 0.7)
	m.Set(1, 3, 0.1)
	c := m.Closure(1e-9, 1e-9, 0)
	for _, i := range []webgraph.DocID{1, 2} {
		m.RangeRow(i, func(j webgraph.DocID, p float64) bool {
			if c.Get(i, j) < p-1e-12 {
				t.Errorf("closure lost mass: p*[%d,%d]=%v < p=%v", i, j, c.Get(i, j), p)
			}
			return true
		})
	}
}

func mkReq(c string, at time.Duration, doc webgraph.DocID) trace.Request {
	return trace.Request{Time: t0.Add(at), Client: trace.ClientID(c), Doc: doc, Size: 1}
}

func TestEstimateBasic(t *testing.T) {
	// Client a requests doc 1 three times; doc 2 follows within the window
	// twice. p[1,2] = 2/3.
	tr := &trace.Trace{Requests: []trace.Request{
		mkReq("a", 0, 1),
		mkReq("a", time.Second, 2),
		mkReq("a", time.Hour, 1),
		mkReq("a", time.Hour+2*time.Second, 2),
		mkReq("a", 2*time.Hour, 1),
		// nothing follows the third occurrence
	}}
	m, err := Estimate(tr, EstimateConfig{Window: 5 * time.Second, MinOccurrences: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Get(1, 2); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("p[1,2] = %v, want 2/3", got)
	}
	// Reverse direction: doc 2 occurred twice, never followed by 1 in
	// window.
	if got := m.Get(2, 1); got != 0 {
		t.Errorf("p[2,1] = %v, want 0", got)
	}
}

func TestEstimateWindowBoundary(t *testing.T) {
	tr := &trace.Trace{Requests: []trace.Request{
		mkReq("a", 0, 1),
		mkReq("a", 6*time.Second, 2), // outside 5s window
	}}
	m, err := Estimate(tr, EstimateConfig{Window: 5 * time.Second, MinOccurrences: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Get(1, 2) != 0 {
		t.Error("pair outside window counted")
	}
}

func TestEstimateDistinctPerOccurrence(t *testing.T) {
	// D_j requested twice within one window counts once.
	tr := &trace.Trace{Requests: []trace.Request{
		mkReq("a", 0, 1),
		mkReq("a", time.Second, 2),
		mkReq("a", 2*time.Second, 2),
	}}
	m, err := Estimate(tr, EstimateConfig{Window: 5 * time.Second, MinOccurrences: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Get(1, 2); got != 1 {
		t.Errorf("p[1,2] = %v, want exactly 1", got)
	}
}

func TestEstimateClientsSeparate(t *testing.T) {
	tr := &trace.Trace{Requests: []trace.Request{
		mkReq("a", 0, 1),
		mkReq("b", time.Second, 2), // different client: no pair
	}}
	m, err := Estimate(tr, EstimateConfig{Window: 5 * time.Second, MinOccurrences: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPairs() != 0 {
		t.Error("cross-client pair counted")
	}
}

func TestEstimateStrideRestriction(t *testing.T) {
	// 1 then (gap 4s) 2 then (gap 4s) 3: with StrideTimeout 5s and window
	// 10s, (1,3) is in-window and in-stride. With StrideTimeout 3s the
	// stride breaks and nothing pairs.
	tr := &trace.Trace{Requests: []trace.Request{
		mkReq("a", 0, 1),
		mkReq("a", 4*time.Second, 2),
		mkReq("a", 8*time.Second, 3),
	}}
	m, err := Estimate(tr, EstimateConfig{Window: 10 * time.Second, StrideTimeout: 5 * time.Second, MinOccurrences: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Get(1, 3) != 1 {
		t.Errorf("in-stride pair missing: %v", m.Get(1, 3))
	}
	m, err = Estimate(tr, EstimateConfig{Window: 10 * time.Second, StrideTimeout: 3 * time.Second, MinOccurrences: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPairs() != 0 {
		t.Error("stride-broken pairs counted")
	}
}

func TestEstimateMinOccurrences(t *testing.T) {
	tr := &trace.Trace{Requests: []trace.Request{
		mkReq("a", 0, 1),
		mkReq("a", time.Second, 2),
	}}
	m, err := Estimate(tr, EstimateConfig{Window: 5 * time.Second, MinOccurrences: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPairs() != 0 {
		t.Error("single-occurrence row kept despite MinOccurrences=2")
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := Estimate(&trace.Trace{}, EstimateConfig{Window: 0}); err == nil {
		t.Error("zero window accepted")
	}
}

// The headline §3.1 property: on a synthetic trace, embedding dependencies
// produce p ≈ 1 pairs and traversal dependencies produce peaks near 1/k.
func TestFigure4Structure(t *testing.T) {
	site, err := webgraph.Generate(webgraph.DepartmentSite(), stats.NewRNG(41))
	if err != nil {
		t.Fatal(err)
	}
	cfg := synth.DefaultConfig(site, nil)
	cfg.Days = 20
	cfg.SessionsPerDay = 200
	res, err := synth.Generate(cfg, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Estimate(res.Trace, EstimateConfig{
		Window: 5 * time.Second, StrideTimeout: 5 * time.Second, MinOccurrences: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPairs() < 100 {
		t.Fatalf("only %d pairs estimated", m.NumPairs())
	}

	// Embedding check: pages with embedded objects must have p ≈ 1 edges
	// to them whenever the page was requested often enough.
	checked := 0
	for i := range site.Docs {
		d := &site.Docs[i]
		if d.Kind != webgraph.Page || len(d.Embedded) == 0 {
			continue
		}
		if m.RowLen(d.ID) == 0 {
			continue
		}
		for _, e := range d.Embedded {
			if p := m.Get(d.ID, e); p > 0 {
				checked++
				if p < 0.95 {
					t.Errorf("embedding p[%d,%d] = %v, want ≈1", d.ID, e, p)
				}
			}
		}
	}
	if checked < 10 {
		t.Errorf("too few embedding pairs observed (%d)", checked)
	}

	// Histogram check: mass near 1.0 (embeddings) must exist, and there
	// must be substantial sub-0.6 mass (traversal dependencies).
	h := m.PairHistogram(20)
	top := h.Counts[19]
	if top == 0 {
		t.Error("no mass in the p≈1 bin")
	}
	var low int64
	for b := 0; b < 12; b++ {
		low += h.Counts[b]
	}
	if low == 0 {
		t.Error("no traversal-dependency mass below 0.6")
	}
}

func TestAging(t *testing.T) {
	cfg := EstimateConfig{Window: 5 * time.Second, MinOccurrences: 1}
	a := NewAging(0.5, cfg)

	day1 := &trace.Trace{Requests: []trace.Request{
		mkReq("a", 0, 1),
		mkReq("a", time.Second, 2),
	}}
	if err := a.AddDay(day1); err != nil {
		t.Fatal(err)
	}
	if got := a.Snapshot().Get(1, 2); got != 1 {
		t.Errorf("after day1 p[1,2] = %v, want 1", got)
	}

	// Day 2: doc 1 requested, followed by doc 3 instead.
	day2 := &trace.Trace{Requests: []trace.Request{
		mkReq("a", 48*time.Hour, 1),
		mkReq("a", 48*time.Hour+time.Second, 3),
	}}
	if err := a.AddDay(day2); err != nil {
		t.Fatal(err)
	}
	snap := a.Snapshot()
	// occ(1) = 0.5 + 1 = 1.5; count(1,2) = 0.5; count(1,3) = 1.
	if got := snap.Get(1, 2); math.Abs(got-0.5/1.5) > 1e-9 {
		t.Errorf("aged p[1,2] = %v, want 1/3", got)
	}
	if got := snap.Get(1, 3); math.Abs(got-1/1.5) > 1e-9 {
		t.Errorf("fresh p[1,3] = %v, want 2/3", got)
	}
}

func TestAgingPanicsOnBadDecay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("decay > 1 should panic")
		}
	}()
	NewAging(1.5, DefaultEstimate())
}

// Property: estimated probabilities are always in (0, 1]; the closure
// dominates P and stays within [0, 1].
func TestEstimateClosureProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := stats.NewRNG(seed)
		tr := &trace.Trace{}
		at := time.Duration(0)
		for i := 0; i < 200; i++ {
			at += time.Duration(g.Intn(8000)) * time.Millisecond
			tr.Requests = append(tr.Requests,
				mkReq(of(g.Intn(3)), at, webgraph.DocID(g.Intn(12))))
		}
		m, err := Estimate(tr, EstimateConfig{Window: 5 * time.Second, MinOccurrences: 1})
		if err != nil {
			return false
		}
		for i, row := range m.rows {
			for j, p := range row {
				if p <= 0 || p > 1 || i == j {
					return false
				}
			}
		}
		c := m.Closure(1e-6, 1e-9, 0)
		for i, row := range m.rows {
			for j, p := range row {
				cp := c.Get(i, j)
				if cp < p-1e-9 || cp > 1+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// of names clients a, b, c.
func of(i int) string { return string(rune('a' + i)) }

func TestEstimateTransitive(t *testing.T) {
	// 1 → 2 → 3 within one stride (gaps 4s < 5s timeout) but the 1→3 gap
	// (8s) exceeds the 5s window: windowed P misses (1,3), transitive P*
	// catches it.
	tr := &trace.Trace{Requests: []trace.Request{
		mkReq("a", 0, 1),
		mkReq("a", 4*time.Second, 2),
		mkReq("a", 8*time.Second, 3),
	}}
	cfg := EstimateConfig{Window: 5 * time.Second, StrideTimeout: 5 * time.Second, MinOccurrences: 1}
	p, err := Estimate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Get(1, 3) != 0 {
		t.Errorf("windowed P caught the out-of-window pair: %v", p.Get(1, 3))
	}
	ps, err := EstimateTransitive(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Get(1, 3) != 1 {
		t.Errorf("p*[1,3] = %v, want 1 (same stride)", ps.Get(1, 3))
	}
	if ps.Get(1, 2) != 1 || ps.Get(2, 3) != 1 {
		t.Error("transitive estimate lost direct pairs")
	}
}

func TestEstimateTransitiveDefaultsStride(t *testing.T) {
	// Without a stride timeout the window doubles as the stride bound.
	tr := &trace.Trace{Requests: []trace.Request{
		mkReq("a", 0, 1),
		mkReq("a", 4*time.Second, 2),
		mkReq("a", 20*time.Second, 3), // breaks the stride
	}}
	m, err := EstimateTransitive(tr, EstimateConfig{Window: 5 * time.Second, MinOccurrences: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Get(1, 2) != 1 || m.Get(1, 3) != 0 || m.Get(2, 3) != 0 {
		t.Errorf("rows: 1→%v 2→%v", m.Row(1), m.Row(2))
	}
	if _, err := EstimateTransitive(tr, EstimateConfig{}); err == nil {
		t.Error("no window and no stride accepted")
	}
}

func TestEstimateSmoothing(t *testing.T) {
	tr := &trace.Trace{Requests: []trace.Request{
		mkReq("a", 0, 1),
		mkReq("a", time.Second, 2),
	}}
	m, err := Estimate(tr, EstimateConfig{Window: 5 * time.Second, MinOccurrences: 1, Smoothing: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Get(1, 2); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("smoothed p = %v, want 1/(1+3)", got)
	}
}

func TestAgingErrorOnBadWindow(t *testing.T) {
	a := NewAging(0.9, EstimateConfig{})
	if err := a.AddDay(&trace.Trace{}); err == nil {
		t.Error("aging with zero window accepted a day")
	}
}

func TestAgingTransitive(t *testing.T) {
	cfg := EstimateConfig{Window: 5 * time.Second, StrideTimeout: 5 * time.Second, MinOccurrences: 1}
	a := NewAging(1, cfg)
	a.Transitive = true
	day := &trace.Trace{Requests: []trace.Request{
		mkReq("a", 0, 1),
		mkReq("a", 4*time.Second, 2),
		mkReq("a", 8*time.Second, 3),
	}}
	if err := a.AddDay(day); err != nil {
		t.Fatal(err)
	}
	if got := a.Snapshot().Get(1, 3); got != 1 {
		t.Errorf("transitive aging p*[1,3] = %v, want 1", got)
	}
}

func TestPruneDropsEmptyRows(t *testing.T) {
	m := NewMatrix()
	m.Set(1, 2, 0.001)
	m.Prune(0.01)
	if m.NumRows() != 0 {
		t.Errorf("rows = %d, want 0", m.NumRows())
	}
}
