package markov

import (
	"encoding/json"
	"os"
	"testing"
)

// memoryGateReport is the artifact `make bench-memory` writes (and CI
// uploads): the analytic estimator footprints at 1× and 10× document
// cardinality and their growth ratios, so a regression of the memory gate
// can be diagnosed from the artifact without rerunning anything.
type memoryGateReport struct {
	Caps            BoundedConfig `json:"caps"`
	ExactBytes1x    int64         `json:"exact_bytes_1x"`
	ExactBytes10x   int64         `json:"exact_bytes_10x"`
	BoundedBytes1x  int64         `json:"bounded_bytes_1x"`
	BoundedBytes10x int64         `json:"bounded_bytes_10x"`
	ExactGrowth     float64       `json:"exact_growth"`
	BoundedGrowth   float64       `json:"bounded_growth"`
}

// writeMemoryGateReport writes the gate report to $BENCH_MEMORY_OUT when
// set; a plain `go test` run skips the artifact.
func writeMemoryGateReport(t *testing.T, r memoryGateReport) {
	t.Helper()
	out := os.Getenv("BENCH_MEMORY_OUT")
	if out == "" {
		return
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatalf("memory gate report: %v", err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatalf("memory gate report: %v", err)
	}
	t.Logf("memory gate report written to %s", out)
}
