package markov

import (
	"fmt"
	"math"
	"sort"

	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// Memory-bounded streaming estimation.
//
// The exact estimator keeps one float64 per observed (i,j) dependency pair
// and one per document — at million-document cardinality that unbounded
// map is the scaling wall (ROADMAP: "streaming, memory-bounded Markov
// estimation"). Bounded replaces it with three fixed-size structures:
//
//   - per-row space-saving top-K successor tracking: each row holds at
//     most RowTopK (count, err) entries; an overflowing insert evicts the
//     minimum-count entry and admits the newcomer with count = min+1,
//     err = min, so for every tracked pair
//     count − err ≤ true count ≤ count (the space-saving sandwich) and
//     err ≤ (row increment mass)/K (the ε guarantee);
//   - a hard cap on tracked rows with popularity-ranked admission: when
//     MaxRows rows are live, a new document evicts the row with the
//     smallest occurrence count and inherits that count as its occ error
//     — space-saving applied at row granularity, so persistently popular
//     rows are never displaced by scan traffic;
//   - a count-min sketch accumulating the mass of every evicted pair, so
//     EvictedBound(i,j) upper-bounds what was dropped for any pair
//     without storing it.
//
// Determinism and the test oracle: Bounded implements the same pairSink
// event stream as the exact accumulator and performs bit-identical float
// arithmetic (the same increments, the same decay multiplies, the same
// 1e-9 cull, the same count/(occ+smoothing) division). While nothing has
// been evicted — every row width ≤ RowTopK and distinct documents ≤
// MaxRows — its Snapshot is therefore byte-identical to the exact
// estimator's, which is what the conformance matrix and the property
// tests in bounded_test.go pin.
type BoundedConfig struct {
	// MaxRows caps the number of tracked rows (documents). 0 takes the
	// default.
	MaxRows int
	// RowTopK caps successors tracked per row. 0 takes the default.
	RowTopK int
	// SketchWidth and SketchDepth size the count-min sketch that bounds
	// evicted mass; 0 takes the defaults.
	SketchWidth int
	SketchDepth int
}

// DefaultBounded returns production-shaped caps: 64Ki rows of 32
// successors bounds the accumulator near 100 MB regardless of site size,
// while staying exact for every site the conformance suite drives.
func DefaultBounded() BoundedConfig {
	return BoundedConfig{MaxRows: 1 << 16, RowTopK: 32, SketchWidth: 2048, SketchDepth: 4}
}

func (c BoundedConfig) withDefaults() BoundedConfig {
	d := DefaultBounded()
	if c.MaxRows <= 0 {
		c.MaxRows = d.MaxRows
	}
	if c.RowTopK <= 0 {
		c.RowTopK = d.RowTopK
	}
	if c.SketchWidth <= 0 {
		c.SketchWidth = d.SketchWidth
	}
	if c.SketchDepth <= 0 {
		c.SketchDepth = d.SketchDepth
	}
	return c
}

// ssEntry is one space-saving successor slot.
type ssEntry struct {
	count float64 // observed count plus inherited overcount
	err   float64 // the inherited part: count − err ≤ true ≤ count
}

// boundedRow is one tracked document's successor store.
type boundedRow struct {
	occ    float64 // decayed occurrence count (incl. occErr)
	occErr float64 // occurrence mass inherited at row admission
	succ   map[webgraph.DocID]*ssEntry
}

// Both estimators satisfy the engine-facing contract and the counting
// sink, so they consume the identical event stream.
var (
	_ Estimator = (*Aging)(nil)
	_ Estimator = (*Bounded)(nil)
	_ pairSink  = (*pairAccumulator)(nil)
	_ pairSink  = (*Bounded)(nil)
)

// Bounded is the memory-bounded streaming estimator. Like Aging it is
// single-writer: the engine calls AddDay/Snapshot under its refresh
// mutex. It is not safe for concurrent mutation.
type Bounded struct {
	// Transitive selects the P* (stride) pairing instead of the windowed
	// P pairing, as on Aging.
	Transitive bool

	decay float64
	cfg   EstimateConfig
	bcfg  BoundedConfig

	rows   map[webgraph.DocID]*boundedRow
	sketch *countMin

	// Eviction ledger (cumulative, monotone except for decay on mass).
	evictedRows  int64
	evictedPairs int64
	evictedMass  float64

	// Dirty tracking for delta-freezing: rows touched since the last
	// Snapshot. allDirty short-circuits when decay re-weighted every row.
	dirty        map[webgraph.DocID]struct{}
	allDirty     bool
	lastDirty    []webgraph.DocID
	lastDirtyAll bool
}

// NewBounded returns a bounded estimator with the given decay per refresh
// interval. It panics on decay outside (0, 1], mirroring NewAging.
func NewBounded(decay float64, cfg EstimateConfig, bcfg BoundedConfig) *Bounded {
	if decay <= 0 || decay > 1 || math.IsNaN(decay) {
		panic(fmt.Sprintf("markov: decay %v outside (0,1]", decay))
	}
	bcfg = bcfg.withDefaults()
	return &Bounded{
		decay:        decay,
		cfg:          cfg,
		bcfg:         bcfg,
		rows:         make(map[webgraph.DocID]*boundedRow),
		sketch:       newCountMin(bcfg.SketchWidth, bcfg.SketchDepth),
		dirty:        make(map[webgraph.DocID]struct{}),
		allDirty:     true, // before the first Snapshot, everything is new
		lastDirtyAll: true,
	}
}

// Config returns the bounding parameters in force (after defaulting).
func (b *Bounded) Config() BoundedConfig { return b.bcfg }

func (b *Bounded) markDirty(i webgraph.DocID) {
	if b.allDirty {
		return
	}
	b.dirty[i] = struct{}{}
}

// row returns document i's tracked row, admitting it — evicting the
// least-popular row when the table is full — if absent.
func (b *Bounded) row(i webgraph.DocID) *boundedRow {
	if r, ok := b.rows[i]; ok {
		return r
	}
	r := &boundedRow{succ: make(map[webgraph.DocID]*ssEntry)}
	if len(b.rows) >= b.bcfg.MaxRows {
		// Popularity-ranked admission: displace the row with the least
		// occurrence support (ties by ascending DocID, deterministically)
		// and inherit its count as this row's overcount, space-saving
		// style. The evicted row's pairs are folded into the sketch so
		// their mass stays bounded, not lost.
		victim := webgraph.None
		minOcc := math.Inf(1)
		for doc, vr := range b.rows {
			if vr.occ < minOcc || (vr.occ == minOcc && doc < victim) {
				victim, minOcc = doc, vr.occ
			}
		}
		vr := b.rows[victim]
		for doc, e := range vr.succ {
			b.sketch.add(victim, doc, e.count)
			b.evictedMass += e.count - e.err
		}
		b.evictedRows++
		b.evictedPairs += int64(len(vr.succ))
		delete(b.rows, victim)
		b.markDirty(victim)
		r.occ = vr.occ
		r.occErr = vr.occ
	}
	b.rows[i] = r
	return r
}

// addOcc implements pairSink: one occurrence of document i.
func (b *Bounded) addOcc(i webgraph.DocID) {
	r := b.row(i)
	r.occ++
	b.markDirty(i)
}

// addPair implements pairSink: one (i,j) dependency observation, counted
// with per-row space-saving semantics.
func (b *Bounded) addPair(i, j webgraph.DocID) {
	r := b.row(i)
	if e, ok := r.succ[j]; ok {
		e.count++
		b.markDirty(i)
		return
	}
	if len(r.succ) < b.bcfg.RowTopK {
		r.succ[j] = &ssEntry{count: 1}
		b.markDirty(i)
		return
	}
	// Row full: evict the minimum-count successor (ties by ascending
	// DocID) and admit j with the classic space-saving inheritance.
	victim := webgraph.None
	var ve *ssEntry
	for doc, e := range r.succ {
		if ve == nil || e.count < ve.count || (e.count == ve.count && doc < victim) {
			victim, ve = doc, e
		}
	}
	b.sketch.add(i, victim, ve.count)
	b.evictedMass += ve.count - ve.err
	b.evictedPairs++
	delete(r.succ, victim)
	r.succ[j] = &ssEntry{count: ve.count + 1, err: ve.count}
	b.markDirty(i)
}

// AddDay decays the accumulated state by one refresh interval and folds
// in the given window's trace — the bounded counterpart of Aging.AddDay,
// performing the identical float operations on every surviving entry.
func (b *Bounded) AddDay(day *trace.Trace) error {
	if b.cfg.Window <= 0 {
		return fmt.Errorf("markov: bounded estimator has non-positive window")
	}
	if b.decay < 1 {
		// Decay re-weights every row, so the whole snapshot is dirty and
		// delta-freezing has nothing to patch against.
		b.allDirty = true
		for i := range b.dirty {
			delete(b.dirty, i)
		}
		for i, r := range b.rows {
			for j, e := range r.succ {
				e.count *= b.decay
				if e.count < 1e-9 {
					delete(r.succ, j)
					continue
				}
				e.err *= b.decay
			}
			r.occ *= b.decay
			r.occErr *= b.decay
			if r.occ < 1e-9 && len(r.succ) == 0 {
				delete(b.rows, i)
			}
		}
		b.sketch.scale(b.decay)
		b.evictedMass *= b.decay
	}
	accumulateTrace(day, b.cfg, b.Transitive, b)
	return nil
}

// Snapshot materializes the current bounded estimate. In the no-eviction
// regime it is byte-identical to the exact estimator's snapshot (same
// counts, same division, same MinOccurrences filter); with evictions the
// tracked probabilities are the space-saving overestimates and the matrix
// carries the eviction tally. Snapshot also latches the dirty row set for
// DirtyDocs and starts a fresh one.
func (b *Bounded) Snapshot() *Matrix {
	m := NewMatrix()
	min := float64(b.cfg.MinOccurrences)
	if min < 1 {
		min = 1
	}
	for i, r := range b.rows {
		if len(r.succ) == 0 || r.occ < min {
			continue
		}
		den := r.occ + b.cfg.Smoothing
		for j, e := range r.succ {
			p := e.count / den
			if p > 1 {
				p = 1
			}
			m.Set(i, j, p)
		}
	}
	m.SetEvictedPairs(b.evictedPairs)

	// Latch the change set between the previous snapshot and this one.
	b.lastDirtyAll = b.allDirty
	if b.allDirty {
		b.lastDirty = nil
	} else {
		b.lastDirty = make([]webgraph.DocID, 0, len(b.dirty))
		for i := range b.dirty {
			b.lastDirty = append(b.lastDirty, i)
		}
		sort.Slice(b.lastDirty, func(a, c int) bool { return b.lastDirty[a] < b.lastDirty[c] })
	}
	b.dirty = make(map[webgraph.DocID]struct{})
	b.allDirty = false
	return m
}

// DirtyDocs reports the rows that changed between the two most recent
// snapshots, in ascending order. ok is false when every row may have
// changed (before the first snapshot, or when decay re-weighted the whole
// store), in which case callers must freeze in full.
func (b *Bounded) DirtyDocs() ([]webgraph.DocID, bool) {
	if b.lastDirtyAll {
		return nil, false
	}
	return b.lastDirty, true
}

// Occurrences reports the decayed occurrence count backing row i,
// including any admission-inherited overcount (0 when untracked).
func (b *Bounded) Occurrences(i webgraph.DocID) float64 {
	if r, ok := b.rows[i]; ok {
		return r.occ
	}
	return 0
}

// Pairs reports the number of (i,j) pairs currently tracked.
func (b *Bounded) Pairs() int {
	n := 0
	for _, r := range b.rows {
		n += len(r.succ)
	}
	return n
}

// EvictedBound returns an upper bound on the (decayed) count mass evicted
// for pair (i,j): the count-min estimate, which over-approximates only by
// hash collisions, never under. 0 means nothing was provably dropped.
func (b *Bounded) EvictedBound(i, j webgraph.DocID) float64 {
	return b.sketch.estimate(i, j)
}

// ErrorBound returns the largest per-entry overcount currently tracked —
// the realized space-saving ε: for every tracked pair,
// count − ErrorBound ≤ true count ≤ count.
func (b *Bounded) ErrorBound() float64 {
	var worst float64
	for _, r := range b.rows {
		if r.occErr > worst {
			worst = r.occErr
		}
		for _, e := range r.succ {
			if e.err > worst {
				worst = e.err
			}
		}
	}
	return worst
}

// ImportCounters restores the cumulative eviction ledger from a
// checkpoint, so the eviction counters stay monotone across a warm
// restart even though the live store restarts empty.
func (b *Bounded) ImportCounters(rows, pairs int64, mass float64) {
	if rows > b.evictedRows {
		b.evictedRows = rows
	}
	if pairs > b.evictedPairs {
		b.evictedPairs = pairs
	}
	if mass > b.evictedMass {
		b.evictedMass = mass
	}
}

// EstimatorStats reports the bounded estimator's footprint and eviction
// ledger. MemoryBytes is analytic (entry counts × fixed per-entry costs
// plus the fixed sketch), hence deterministic: with the caps saturated it
// stops growing no matter how many documents the site has.
func (b *Bounded) EstimatorStats() EstimatorStats {
	pairs := b.Pairs()
	mem := int64(mapFixedBytes) // rows header
	// Outer entry + row struct + inner map header per row; entry struct +
	// pointer + map entry per pair.
	mem += int64(len(b.rows)) * (mapEntryBytes + 32 + mapFixedBytes)
	mem += int64(pairs) * (mapEntryBytes + 16)
	mem += b.sketch.bytes()
	mem += int64(len(b.dirty)+len(b.lastDirty)) * 8
	return EstimatorStats{
		TrackedRows:  len(b.rows),
		TrackedPairs: pairs,
		EvictedRows:  b.evictedRows,
		EvictedPairs: b.evictedPairs,
		EvictedMass:  b.evictedMass,
		ErrorBound:   b.ErrorBound(),
		MemoryBytes:  mem,
	}
}

// countMin is a depth×width count-min sketch over (i,j) pair keys with
// float64 cells, used to upper-bound the mass of evicted pairs. Adds and
// scales are deterministic for a given operation sequence.
type countMin struct {
	w, d  int
	cells []float64
}

func newCountMin(w, d int) *countMin {
	return &countMin{w: w, d: d, cells: make([]float64, w*d)}
}

// pairKey packs an (i,j) pair into the 64-bit hash input.
func pairKey(i, j webgraph.DocID) uint64 {
	return uint64(uint32(i))<<32 | uint64(uint32(j))
}

// splitmix64 is the finalizer used to derive per-depth hash rows.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (c *countMin) idx(r int, key uint64) int {
	h := splitmix64(key ^ (uint64(r+1) * 0x9e3779b97f4a7c15))
	return r*c.w + int(h%uint64(c.w))
}

func (c *countMin) add(i, j webgraph.DocID, v float64) {
	key := pairKey(i, j)
	for r := 0; r < c.d; r++ {
		c.cells[c.idx(r, key)] += v
	}
}

func (c *countMin) estimate(i, j webgraph.DocID) float64 {
	key := pairKey(i, j)
	est := math.Inf(1)
	for r := 0; r < c.d; r++ {
		if v := c.cells[c.idx(r, key)]; v < est {
			est = v
		}
	}
	return est
}

func (c *countMin) scale(f float64) {
	for i := range c.cells {
		c.cells[i] *= f
	}
}

func (c *countMin) bytes() int64 { return int64(len(c.cells)) * 8 }
