package markov

import (
	"fmt"
	"math"
	"sort"
	"time"

	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// EstimateConfig parameterizes P estimation.
type EstimateConfig struct {
	// Window is T_w: D_j counts as dependent on D_i when requested within
	// Window of D_i by the same client. The paper's Figure 4 uses 5 s.
	Window time.Duration
	// StrideTimeout, when positive, additionally requires the requests
	// between D_i and D_j to form a stride (successive gaps below the
	// timeout). §3.2: setting it small restricts dependencies to
	// embeddings; larger values admit traversal dependencies.
	StrideTimeout time.Duration
	// MinOccurrences drops rows for documents requested fewer times than
	// this, avoiding probability estimates from single observations.
	MinOccurrences int
	// Smoothing adds pseudo-observations to the denominator:
	// p = count / (occurrences + Smoothing). A few units of smoothing
	// shrink low-support estimates toward zero — a document seen twice,
	// both times followed by D_j, is *not* evidence that p[i,j] = 1 — while
	// leaving well-supported probabilities (embeddings of popular pages)
	// essentially untouched. Without it, spurious certainty edges on rare
	// documents make the server push large sets of unrelated documents.
	Smoothing float64
}

// DefaultEstimate returns the paper's baseline estimation parameters.
func DefaultEstimate() EstimateConfig {
	return EstimateConfig{
		Window:         5 * time.Second,
		StrideTimeout:  5 * time.Second,
		MinOccurrences: 2,
		Smoothing:      2,
	}
}

// pairSink receives the (occurrence, pair) event stream a trace traversal
// produces. The exact accumulator and the memory-bounded estimator both
// implement it, so they count the *same* events and differ only in how
// they store them — the structural fact behind the bounded estimator's
// test oracle: under its caps it performs bit-identical arithmetic.
type pairSink interface {
	addOcc(i webgraph.DocID)
	addPair(i, j webgraph.DocID)
}

// accumulateTrace is the shared counting core of all estimators. When
// transitive is false, a pair (i,j) counts when j follows i within Window
// (the P relation). When transitive is true, a pair counts when j follows
// i anywhere within the same stride — the paper's definition of the
// closure P*: "a sequence of requests starting with document D_i and
// ending with document D_j, in which every request is separated by at most
// T_w units of time from the previous request" (§3.1). Estimating P*
// directly from the trace avoids the inflation a matrix-power closure
// suffers when many alternative paths connect the same pair.
func accumulateTrace(tr *trace.Trace, cfg EstimateConfig, transitive bool, sink pairSink) {
	strideTimeout := cfg.StrideTimeout
	if transitive && strideTimeout <= 0 {
		strideTimeout = cfg.Window
	}
	// Clients are visited in sorted order, not map order. The exact
	// accumulator cannot tell the difference (its additions commute), but
	// space-saving eviction is order-dependent: the bounded estimator's
	// state — and hence benchmark reports under tight caps — is only
	// reproducible run-to-run if the event stream is.
	byClient := tr.ByClient()
	clients := make([]trace.ClientID, 0, len(byClient))
	for c := range byClient {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(a, b int) bool { return clients[a] < clients[b] })
	for _, c := range clients {
		reqs := byClient[c]
		segments := [][]trace.Request{reqs}
		if strideTimeout > 0 {
			segments = trace.Segment(reqs, strideTimeout)
		}
		for _, seg := range segments {
			for x := range seg {
				i := seg[x].Doc
				if i == webgraph.None {
					continue
				}
				sink.addOcc(i)
				var seen map[webgraph.DocID]bool
				for y := x + 1; y < len(seg); y++ {
					if !transitive && seg[y].Time.Sub(seg[x].Time) > cfg.Window {
						break
					}
					j := seg[y].Doc
					if j == webgraph.None || j == i {
						continue
					}
					if seen == nil {
						seen = make(map[webgraph.DocID]bool)
					}
					if seen[j] {
						continue
					}
					seen[j] = true
					sink.addPair(i, j)
				}
			}
		}
	}
}

// pairAccumulator is the exact counting store: full per-(i,j) counts and
// per-document occurrences, unbounded. It remains the reference
// implementation — the test oracle the bounded estimator is
// property-tested and conformance-gated against.
type pairAccumulator struct {
	counts map[webgraph.DocID]map[webgraph.DocID]float64
	occ    map[webgraph.DocID]float64
}

func newPairAccumulator() *pairAccumulator {
	return &pairAccumulator{
		counts: make(map[webgraph.DocID]map[webgraph.DocID]float64),
		occ:    make(map[webgraph.DocID]float64),
	}
}

func (a *pairAccumulator) addOcc(i webgraph.DocID) { a.occ[i]++ }

func (a *pairAccumulator) addPair(i, j webgraph.DocID) {
	row := a.counts[i]
	if row == nil {
		row = make(map[webgraph.DocID]float64)
		a.counts[i] = row
	}
	row[j]++
}

func (a *pairAccumulator) addTrace(tr *trace.Trace, cfg EstimateConfig, transitive bool) {
	accumulateTrace(tr, cfg, transitive, a)
}

func (a *pairAccumulator) snapshot(cfg EstimateConfig) *Matrix {
	m := NewMatrix()
	min := float64(cfg.MinOccurrences)
	if min < 1 {
		min = 1
	}
	for i, row := range a.counts {
		if a.occ[i] < min {
			continue
		}
		den := a.occ[i] + cfg.Smoothing
		for j, c := range row {
			p := c / den
			if p > 1 {
				p = 1
			}
			m.Set(i, j, p)
		}
	}
	return m
}

// Estimate computes P from a trace: for each occurrence of document i, the
// set of distinct other documents the same client requests within the
// window (and, when configured, within the same stride) counts once toward
// p[i,j].
func Estimate(tr *trace.Trace, cfg EstimateConfig) (*Matrix, error) {
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("markov: window must be positive, got %v", cfg.Window)
	}
	a := newPairAccumulator()
	a.addTrace(tr, cfg, false)
	return a.snapshot(cfg), nil
}

// EstimateTransitive computes P* directly from the trace per the paper's
// §3.1 definition: p*[i,j] is the probability that D_j follows D_i within
// the same traversal stride (successive gaps below StrideTimeout, which
// defaults to Window when unset).
func EstimateTransitive(tr *trace.Trace, cfg EstimateConfig) (*Matrix, error) {
	if cfg.Window <= 0 && cfg.StrideTimeout <= 0 {
		return nil, fmt.Errorf("markov: need a positive window or stride timeout")
	}
	a := newPairAccumulator()
	a.addTrace(tr, cfg, true)
	return a.snapshot(cfg), nil
}

// EstimatorStats describes an estimator's storage footprint and loss.
// For the exact estimator the evicted tallies are always zero; for the
// bounded estimator they are the cumulative space-saving eviction ledger.
// Every field is a deterministic function of the ingested traces, so the
// struct can ride in byte-compared benchmark reports.
type EstimatorStats struct {
	// TrackedRows and TrackedPairs size the live accumulator (before
	// MinOccurrences filtering).
	TrackedRows  int `json:"tracked_rows"`
	TrackedPairs int `json:"tracked_pairs"`
	// EvictedRows / EvictedPairs count cumulative space-saving evictions;
	// EvictedMass is the (decayed) count mass those evictions dropped.
	EvictedRows  int64   `json:"evicted_rows,omitempty"`
	EvictedPairs int64   `json:"evicted_pairs,omitempty"`
	EvictedMass  float64 `json:"evicted_mass,omitempty"`
	// ErrorBound is the largest per-entry overcount currently tracked
	// (the space-saving ε): for every tracked pair,
	// count − ErrorBound ≤ true count ≤ count.
	ErrorBound float64 `json:"error_bound,omitempty"`
	// MemoryBytes is the estimator's analytic live footprint — computed
	// from entry counts and fixed per-entry costs, not from the runtime
	// heap, so it is deterministic and gateable in CI.
	MemoryBytes int64 `json:"memory_bytes"`
}

// Estimator is the engine-facing estimation contract: fold a window of
// traffic in, materialize the current estimate, and report per-row
// support. Two implementations exist — the exact *Aging (the reference
// and test oracle) and the memory-bounded *Bounded — selected by
// configuration, so every downstream consumer (freeze, trust scoring,
// drift, checkpointing) is representation-agnostic.
type Estimator interface {
	// AddDay decays the accumulated state by one refresh interval and
	// folds in the window's trace.
	AddDay(day *trace.Trace) error
	// Snapshot materializes the current estimate as a Matrix.
	Snapshot() *Matrix
	// Occurrences reports the decayed occurrence count backing row i.
	Occurrences(i webgraph.DocID) float64
	// Pairs reports the number of (i,j) pairs currently tracked.
	Pairs() int
	// EstimatorStats reports the storage footprint and eviction ledger.
	EstimatorStats() EstimatorStats
	// DirtyDocs reports which rows changed between the two most recent
	// Snapshot calls, for incremental delta-freezing. ok is false when
	// the estimator cannot bound the change set (every row may have
	// moved — e.g. decay < 1 re-weights all rows each AddDay), in which
	// case the caller must rebuild the frozen snapshot in full.
	DirtyDocs() (docs []webgraph.DocID, ok bool)
}

// Aging maintains an exponentially-decayed estimate of P (or P* when
// Transitive is set), the "aging mechanism to phase-out dependencies
// exhibited in older traces" of §3.4. Counts from d days ago carry weight
// Decay^d.
type Aging struct {
	// Decay is the per-day retention factor in (0, 1].
	Decay float64
	// Transitive selects the P* (stride) pairing instead of the windowed
	// P pairing.
	Transitive bool

	cfg EstimateConfig
	acc *pairAccumulator
}

// NewAging returns an aging estimator. It panics on decay outside (0, 1].
func NewAging(decay float64, cfg EstimateConfig) *Aging {
	if decay <= 0 || decay > 1 || math.IsNaN(decay) {
		panic(fmt.Sprintf("markov: decay %v outside (0,1]", decay))
	}
	return &Aging{Decay: decay, cfg: cfg, acc: newPairAccumulator()}
}

// AddDay decays the accumulated state by one day and folds in the given
// day's trace.
func (a *Aging) AddDay(day *trace.Trace) error {
	if a.cfg.Window <= 0 {
		return fmt.Errorf("markov: aging estimator has non-positive window")
	}
	for i, row := range a.acc.counts {
		for j := range row {
			row[j] *= a.Decay
			if row[j] < 1e-9 {
				delete(row, j)
			}
		}
		if len(row) == 0 {
			delete(a.acc.counts, i)
		}
	}
	for i := range a.acc.occ {
		a.acc.occ[i] *= a.Decay
		if a.acc.occ[i] < 1e-9 {
			delete(a.acc.occ, i)
		}
	}
	a.acc.addTrace(day, a.cfg, a.Transitive)
	return nil
}

// Snapshot materializes the current decayed estimate as a Matrix.
func (a *Aging) Snapshot() *Matrix {
	return a.acc.snapshot(a.cfg)
}

// Occurrences reports the decayed occurrence count backing row i — the
// per-row sample support ("row provenance") that trust scoring reads: a
// row estimated from two sightings is not a row estimated from two
// hundred, even when both produce the same probabilities.
func (a *Aging) Occurrences(i webgraph.DocID) float64 {
	return a.acc.occ[i]
}

// Pairs reports the number of (i,j) dependency pairs currently held by
// the accumulator, before MinOccurrences filtering.
func (a *Aging) Pairs() int {
	n := 0
	for _, row := range a.acc.counts {
		n += len(row)
	}
	return n
}

// Analytic per-entry storage costs, shared by both estimators' MemoryBytes
// accounting. They approximate Go map internals (key + value + bucket
// overhead) but their exact values matter less than their being fixed:
// the memory gate compares growth ratios, not absolute bytes.
const (
	mapEntryBytes = 48 // one map[DocID]float64 entry incl. bucket share
	mapFixedBytes = 96 // map header + first bucket
)

// EstimatorStats reports the exact estimator's footprint: rows and pairs
// tracked in full, nothing ever evicted. Memory grows with the number of
// distinct documents and dependency pairs — the unbounded behavior the
// bounded estimator exists to cap.
func (a *Aging) EstimatorStats() EstimatorStats {
	rows := len(a.acc.counts)
	pairs := a.Pairs()
	mem := int64(mapFixedBytes) * 2 // counts and occ headers
	mem += int64(len(a.acc.occ)) * mapEntryBytes
	mem += int64(rows) * (mapEntryBytes + mapFixedBytes) // outer entry + inner header
	mem += int64(pairs) * mapEntryBytes
	return EstimatorStats{
		TrackedRows:  rows,
		TrackedPairs: pairs,
		MemoryBytes:  mem,
	}
}

// DirtyDocs reports ok=false: the exact estimator does not track per-row
// change sets, so callers rebuild frozen snapshots in full.
func (a *Aging) DirtyDocs() ([]webgraph.DocID, bool) { return nil, false }
