package markov

import (
	"sort"

	"specweb/internal/webgraph"
)

// DeltaFreeze compiles m into its immutable CSR form by patching only the
// dirty rows into prev, copying every other row's already-sorted
// successors verbatim. dirty must be a superset of the rows on which m
// differs from the matrix prev was frozen from (a bounded estimator's
// DirtyDocs provides exactly that); under this contract the result is
// byte-identical to Freeze(m) — Freeze's output is fully determined by
// the matrix content (ids ascending, each row sorted by the total order
// (P desc, Doc asc), dense-index threshold a pure function of ids) — so
// delta-freezing never perturbs the determinism the conformance matrix
// and checkpoint codec pin. The win is skipping the per-row sort and the
// map iteration for the (typically dominant) clean rows.
//
// DeltaFreeze falls back to a full Freeze when prev is nil.
func DeltaFreeze(prev *Frozen, m *Matrix, dirty []webgraph.DocID) *Frozen {
	if prev == nil {
		return Freeze(m)
	}
	dirtySet := make(map[webgraph.DocID]struct{}, len(dirty))
	for _, d := range dirty {
		dirtySet[d] = struct{}{}
	}

	f := &Frozen{
		ids: make([]webgraph.DocID, 0, len(m.rows)),
		off: make([]int32, 1, len(m.rows)+1),
	}
	pairs := 0
	var maxID webgraph.DocID
	for i, row := range m.rows {
		f.ids = append(f.ids, i)
		pairs += len(row)
		if i > maxID {
			maxID = i
		}
	}
	sort.Slice(f.ids, func(a, b int) bool { return f.ids[a] < f.ids[b] })
	f.succ = make([]Successor, 0, pairs)

	// Walk prev's rows in lockstep with the new ascending id list so clean
	// rows resolve to their previous storage without per-row lookups.
	prevPos := 0
	for _, i := range f.ids {
		for prevPos < len(prev.ids) && prev.ids[prevPos] < i {
			prevPos++
		}
		_, isDirty := dirtySet[i]
		if !isDirty && prevPos < len(prev.ids) && prev.ids[prevPos] == i {
			f.succ = append(f.succ, prev.succ[prev.off[prevPos]:prev.off[prevPos+1]]...)
			f.off = append(f.off, int32(len(f.succ)))
			continue
		}
		start := len(f.succ)
		for j, p := range m.rows[i] {
			f.succ = append(f.succ, Successor{Doc: j, P: p})
		}
		row := f.succ[start:]
		sort.Slice(row, func(a, b int) bool {
			if row[a].P != row[b].P {
				return row[a].P > row[b].P
			}
			return row[a].Doc < row[b].Doc
		})
		f.off = append(f.off, int32(len(f.succ)))
	}
	if n := len(f.ids); n > 0 && maxID >= 0 && int(maxID) < 4*n+1024 {
		f.dense = make([]int32, int(maxID)+1)
		for r, id := range f.ids {
			f.dense[id] = int32(r) + 1
		}
	}
	return f
}
