package markov

import (
	"reflect"
	"testing"
	"time"

	"specweb/internal/stats"
	"specweb/internal/webgraph"
)

// requireFrozenIdentical fails unless two frozen matrices are structurally
// identical — ids, offsets, the flat successor array, and the dense index
// all DeepEqual, which is exactly the byte-identity the checkpoint codec
// and the conformance matrix pin.
func requireFrozenIdentical(t *testing.T, got, want *Frozen, ctx string) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: DeltaFreeze diverged from Freeze\n got: ids=%v off=%v succ=%v dense=%v\nwant: ids=%v off=%v succ=%v dense=%v",
			ctx, got.ids, got.off, got.succ, got.dense, want.ids, want.off, want.succ, want.dense)
	}
}

func TestDeltaFreezeSynthetic(t *testing.T) {
	m1 := NewMatrix()
	m1.Set(1, 2, 0.9)
	m1.Set(1, 3, 0.5)
	m1.Set(3, 4, 0.7)
	m1.Set(5, 6, 0.2)
	m1.Set(5, 7, 0.2) // probability tie: Doc-ascending order must survive patching
	f1 := Freeze(m1)

	// Mutate row 3, add row 9, drop row 5 entirely.
	m2 := m1.Clone()
	m2.Set(3, 4, 0.1)
	m2.Set(3, 8, 0.95)
	m2.Set(9, 1, 0.4)
	m2.Set(5, 6, 0)
	m2.Set(5, 7, 0)

	dirty := []webgraph.DocID{3, 5, 9}
	requireFrozenIdentical(t, DeltaFreeze(f1, m2, dirty), Freeze(m2), "exact dirty set")

	// The contract asks only for a superset: extra ids — clean rows, absent
	// rows — must not perturb the output.
	super := []webgraph.DocID{1, 2, 3, 5, 9, 1000}
	requireFrozenIdentical(t, DeltaFreeze(f1, m2, super), Freeze(m2), "dirty superset")

	// nil previous snapshot falls back to a full freeze.
	requireFrozenIdentical(t, DeltaFreeze(nil, m2, dirty), Freeze(m2), "nil prev")

	// Empty delta: nothing dirty, output identical to prev and to Freeze.
	requireFrozenIdentical(t, DeltaFreeze(f1, m1, nil), Freeze(m1), "empty delta")
}

// The production path: a bounded estimator with decay 1 emits snapshots
// plus DirtyDocs, and chained delta-freezes must stay byte-identical to
// full freezes across rounds — including rounds where row admission evicts
// a previously-frozen row (the victim must appear dirty, or the stale row
// would survive patching).
func TestDeltaFreezeTracksBoundedEstimator(t *testing.T) {
	cfg := EstimateConfig{
		Window:         5 * time.Second,
		StrideTimeout:  5 * time.Second,
		MinOccurrences: 1,
		Smoothing:      2,
	}
	for _, tc := range []struct {
		name    string
		docs    int
		maxRows int
		sparse  bool // remap ids far apart to force the binary-search (non-dense) layout
	}{
		{"dense-no-eviction", 16, 64, false},
		{"dense-row-eviction", 48, 8, false},
		{"sparse-ids", 16, 64, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := stats.NewRNG(555)
			b := NewBounded(1, cfg, BoundedConfig{MaxRows: tc.maxRows, RowTopK: 6})
			var prev *Frozen
			evictions := false
			for day := 0; day < 5; day++ {
				tr := boundedRandTrace(rng, tc.docs, 250)
				if tc.sparse {
					for i := range tr.Requests {
						tr.Requests[i].Doc *= 10007
					}
				}
				if err := b.AddDay(tr); err != nil {
					t.Fatal(err)
				}
				m := b.Snapshot()
				full := Freeze(m)
				if day == 0 {
					// Before the first snapshot the estimator cannot bound
					// the change set; callers must full-freeze.
					if _, ok := b.DirtyDocs(); ok {
						t.Fatal("DirtyDocs ok before any delta baseline exists")
					}
					prev = full
					continue
				}
				dirty, ok := b.DirtyDocs()
				if !ok {
					t.Fatalf("day %d: decay=1 estimator must bound its change set", day)
				}
				requireFrozenIdentical(t, DeltaFreeze(prev, m, dirty), full, tc.name)
				prev = full
				if b.EstimatorStats().EvictedRows > 0 {
					evictions = true
				}
			}
			if tc.maxRows < tc.docs && !evictions {
				t.Fatal("row-eviction case saw no evictions; test vacuous")
			}
		})
	}
}

// Decay < 1 re-weights every row each day, so the estimator must declare
// the whole snapshot dirty and the engine must fall back to a full freeze.
func TestDeltaFreezeDecayForcesFullRebuild(t *testing.T) {
	cfg := EstimateConfig{Window: 5 * time.Second, MinOccurrences: 1, Smoothing: 2}
	rng := stats.NewRNG(77)
	b := NewBounded(0.9, cfg, BoundedConfig{MaxRows: 64, RowTopK: 8})
	for day := 0; day < 3; day++ {
		if err := b.AddDay(boundedRandTrace(rng, 16, 100)); err != nil {
			t.Fatal(err)
		}
		b.Snapshot()
		if _, ok := b.DirtyDocs(); ok {
			t.Fatalf("day %d: DirtyDocs ok despite decay re-weighting all rows", day)
		}
	}
}
