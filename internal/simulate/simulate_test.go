package simulate

import (
	"sync"
	"testing"
	"time"

	"specweb/internal/cache"
	"specweb/internal/stats"
	"specweb/internal/synth"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// shared fixture: generating a trace is the expensive part, so tests share
// one medium-sized workload.
var (
	fixOnce sync.Once
	fixSite *webgraph.Site
	fixTr   *trace.Trace
)

func fixture(t *testing.T) (*webgraph.Site, *trace.Trace) {
	t.Helper()
	fixOnce.Do(func() {
		site, err := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(71))
		if err != nil {
			t.Fatal(err)
		}
		cfg := synth.DefaultConfig(site, nil)
		cfg.Days = 21
		cfg.SessionsPerDay = 60
		cfg.RemoteClients = 300
		cfg.LocalClients = 20
		res, err := synth.Generate(cfg, stats.NewRNG(72))
		if err != nil {
			t.Fatal(err)
		}
		fixSite, fixTr = site, res.Trace
	})
	if fixSite == nil {
		t.Fatal("fixture failed")
	}
	return fixSite, fixTr
}

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	site, tr := fixture(t)
	cfg.Site = site
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBaselineDefaultsMatchPaperTable(t *testing.T) {
	c := Baseline(nil, 0.25)
	if c.Costs.CommCost != 1 || c.Costs.ServCost != 10000 {
		t.Error("costs differ from the paper's table")
	}
	if c.StrideTimeout != 5*time.Second || c.Window != 5*time.Second {
		t.Error("stride timeout / window differ from 5s")
	}
	if c.SessionTimeout != cache.Forever {
		t.Error("session timeout should be ∞")
	}
	if c.MaxSize != 0 {
		t.Error("MaxSize should be unlimited")
	}
	if c.HistoryLength != 60 || c.UpdateCycle != 1 {
		t.Error("history/update cycle differ from 60/1")
	}
	if !c.UseClosure || c.Mode != ModePush {
		t.Error("baseline should push on the closure")
	}
}

func TestRunSpeculationTradeoffs(t *testing.T) {
	site, tr := fixture(t)
	cfg := Baseline(site, 0.25)
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Ratios
	// Speculation costs bandwidth and buys load/time/miss improvements.
	if r.Bandwidth <= 1.0 {
		t.Errorf("bandwidth ratio %v: speculation should cost extra traffic", r.Bandwidth)
	}
	if r.ServerLoad >= 1.0 {
		t.Errorf("server load ratio %v: speculation should reduce load", r.ServerLoad)
	}
	if r.ServiceTime >= 1.0 {
		t.Errorf("service time ratio %v: speculation should reduce latency", r.ServiceTime)
	}
	if r.MissRate >= 1.0 {
		t.Errorf("miss rate ratio %v: speculation should reduce misses", r.MissRate)
	}
	if res.SpeculatedDocs == 0 || res.UsedDocs == 0 {
		t.Errorf("speculated=%d used=%d: expected activity", res.SpeculatedDocs, res.UsedDocs)
	}
	if res.UsedDocs > res.SpeculatedDocs {
		t.Errorf("used %d > speculated %d", res.UsedDocs, res.SpeculatedDocs)
	}
	// Both arms see identical client demand.
	if res.Spec.AccessedBytes != res.Base.AccessedBytes {
		t.Error("arms diverged on accessed bytes")
	}
}

func TestTpSweepMonotonicity(t *testing.T) {
	site, tr := fixture(t)
	sched, err := BuildSchedule(tr, Baseline(site, 0))
	if err != nil {
		t.Fatal(err)
	}
	var prevBW = -1.0
	var prevLoad = 2.0
	for _, tp := range []float64{0.9, 0.5, 0.25, 0.1} {
		cfg := Baseline(site, tp)
		res, err := RunWithSchedule(tr, cfg, sched)
		if err != nil {
			t.Fatal(err)
		}
		// Lower thresholds speculate more: traffic rises, load falls.
		if res.Ratios.Bandwidth < prevBW-1e-9 {
			t.Errorf("Tp=%v: bandwidth ratio %v decreased from %v", tp, res.Ratios.Bandwidth, prevBW)
		}
		if res.Ratios.ServerLoad > prevLoad+1e-9 {
			t.Errorf("Tp=%v: load ratio %v increased from %v", tp, res.Ratios.ServerLoad, prevLoad)
		}
		prevBW = res.Ratios.Bandwidth
		prevLoad = res.Ratios.ServerLoad
	}
}

func TestEmbeddingOnlySpeculationNearlyFree(t *testing.T) {
	// §3.3: capitalizing on embedding dependencies (T_p ≈ 1) costs almost
	// no extra traffic, because embedded documents are certainly needed.
	// (0.95 rather than 0.99: the estimator's shrinkage keeps moderately
	// popular pages' embedding probabilities just below certainty.)
	res := run(t, Baseline(nil, 0.95))
	extra := res.Ratios.TrafficIncreasePct()
	if extra > 5 {
		t.Errorf("embedding-only speculation used %.1f%% extra traffic, want ≈0", extra)
	}
	if res.Ratios.ServerLoad >= 1 {
		t.Error("embedding-only speculation should still reduce load")
	}
}

func TestNoCacheStillBenefits(t *testing.T) {
	// §3.4: gains are possible even without any long-term client cache.
	cfg := Baseline(nil, 0.25)
	cfg.SessionTimeout = 30 * time.Minute // single-visit cache only
	res := run(t, cfg)
	if res.Ratios.ServerLoad >= 1 {
		t.Errorf("short-session clients got no benefit: %+v", res.Ratios)
	}
}

func TestInfiniteCacheShrinksRelativeGains(t *testing.T) {
	// §3.4: with an infinite multi-session cache the relative improvements
	// shrink compared to per-session caches (the cache already absorbs
	// revisits).
	perSession := Baseline(nil, 0.25)
	perSession.SessionTimeout = 60 * time.Minute
	rsSession := run(t, perSession)

	infinite := Baseline(nil, 0.25)
	rsInf := run(t, infinite)

	if rsInf.Ratios.ServerLoadReductionPct() > rsSession.Ratios.ServerLoadReductionPct()+10 {
		t.Errorf("infinite cache gains (%.1f%%) should not exceed session-cache gains (%.1f%%) by much",
			rsInf.Ratios.ServerLoadReductionPct(), rsSession.Ratios.ServerLoadReductionPct())
	}
}

func TestCooperativeSavesBandwidth(t *testing.T) {
	// §3.4: cooperative clients yield better bandwidth utilization at the
	// same speculation level.
	plain := Baseline(nil, 0.25)
	rp := run(t, plain)
	coop := Baseline(nil, 0.25)
	coop.Cooperative = true
	rc := run(t, coop)
	if rc.Ratios.Bandwidth > rp.Ratios.Bandwidth+1e-9 {
		t.Errorf("cooperative bandwidth %v worse than plain %v", rc.Ratios.Bandwidth, rp.Ratios.Bandwidth)
	}
	// Load gains must not be destroyed by cooperation.
	if rc.Ratios.ServerLoad > rp.Ratios.ServerLoad+0.05 {
		t.Errorf("cooperative load %v much worse than plain %v", rc.Ratios.ServerLoad, rp.Ratios.ServerLoad)
	}
}

func TestMaxSizeCapsTraffic(t *testing.T) {
	uncapped := Baseline(nil, 0.1)
	ru := run(t, uncapped)
	capped := Baseline(nil, 0.1)
	capped.MaxSize = 8 << 10
	rc := run(t, capped)
	if rc.Ratios.Bandwidth > ru.Ratios.Bandwidth+1e-9 {
		t.Errorf("MaxSize cap did not reduce traffic: %v vs %v", rc.Ratios.Bandwidth, ru.Ratios.Bandwidth)
	}
}

func TestHintsModeTradesLoadForBandwidth(t *testing.T) {
	// Server-assisted prefetching never wastes bandwidth (the client skips
	// cached documents and fetches only above its threshold), but each
	// prefetch is an individual request, so server load benefits less than
	// push mode at equal thresholds.
	push := Baseline(nil, 0.25)
	rPush := run(t, push)

	hints := Baseline(nil, 0.25)
	hints.Mode = ModeHints
	hints.PrefetchTp = 0.25
	rHints := run(t, hints)

	if rHints.PrefetchedDocs == 0 {
		t.Fatal("no prefetches happened")
	}
	if rHints.Ratios.Bandwidth > rPush.Ratios.Bandwidth+1e-9 {
		t.Errorf("hints mode used more bandwidth (%v) than push (%v)",
			rHints.Ratios.Bandwidth, rPush.Ratios.Bandwidth)
	}
	if rHints.Ratios.ServerLoad < rPush.Ratios.ServerLoad-1e-9 {
		t.Errorf("hints mode reduced load more (%v) than push (%v) — prefetches should cost requests",
			rHints.Ratios.ServerLoad, rPush.Ratios.ServerLoad)
	}
	// Miss rate still improves: prefetched documents are in cache.
	if rHints.Ratios.MissRate >= 1 {
		t.Errorf("hints mode did not improve miss rate: %v", rHints.Ratios.MissRate)
	}
}

func TestHybridBetweenPushAndHints(t *testing.T) {
	hybrid := Baseline(nil, 0.25)
	hybrid.Mode = ModeHybrid
	hybrid.EmbedThreshold = 0.95
	hybrid.PrefetchTp = 0.25
	r := run(t, hybrid)
	if r.SpeculatedDocs == 0 {
		t.Error("hybrid pushed nothing (embeddings should be pushed)")
	}
	if r.PrefetchedDocs == 0 {
		t.Error("hybrid hinted nothing")
	}
	if r.Ratios.ServerLoad >= 1 {
		t.Errorf("hybrid gave no load benefit: %v", r.Ratios.ServerLoad)
	}
}

func TestClosureAblation(t *testing.T) {
	// The closure admits chain dependencies the raw P misses; at equal
	// thresholds it speculates at least as much.
	withClosure := Baseline(nil, 0.25)
	rc := run(t, withClosure)
	rawP := Baseline(nil, 0.25)
	rawP.UseClosure = false
	rp := run(t, rawP)
	if rc.Ratios.Bandwidth < rp.Ratios.Bandwidth-1e-9 {
		t.Errorf("closure (%v) speculated less than raw P (%v)", rc.Ratios.Bandwidth, rp.Ratios.Bandwidth)
	}
}

func TestStalenessOrdering(t *testing.T) {
	// §3.4: a 60-day update cycle degrades performance relative to a 1-day
	// cycle (the dependencies drift).
	site, tr := fixture(t)
	fresh := Baseline(site, 0.25)
	fresh.UpdateCycle = 1
	rFresh, err := Run(tr, fresh)
	if err != nil {
		t.Fatal(err)
	}
	stale := Baseline(site, 0.25)
	stale.UpdateCycle = 60 // never refreshed within the 21-day trace
	rStale, err := Run(tr, stale)
	if err != nil {
		t.Fatal(err)
	}
	if rStale.Ratios.ServerLoadReductionPct() > rFresh.Ratios.ServerLoadReductionPct()+1e-9 {
		t.Errorf("stale estimates outperformed fresh ones: %.2f%% vs %.2f%%",
			rStale.Ratios.ServerLoadReductionPct(), rFresh.Ratios.ServerLoadReductionPct())
	}
}

func TestTopKPolicyRuns(t *testing.T) {
	cfg := Baseline(nil, 0.05)
	cfg.TopK = 2
	r := run(t, cfg)
	if r.SpeculatedDocs == 0 {
		t.Error("top-K policy speculated nothing")
	}
}

func TestScheduleAt(t *testing.T) {
	site, tr := fixture(t)
	cfg := Baseline(site, 0.25)
	sched, err := BuildSchedule(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, last, _ := tr.Span()
	if sched.Cycles() < 20 {
		t.Errorf("expected ≈21 daily cycles, got %d", sched.Cycles())
	}
	// Times before the start clamp to the first matrix; after the end to
	// the last.
	if sched.At(first.Add(-time.Hour)) != sched.matrices[0] {
		t.Error("pre-start time not clamped")
	}
	if sched.At(last.Add(time.Hour)) != sched.matrices[len(sched.matrices)-1] {
		t.Error("post-end time not clamped")
	}
	// The first matrix has no history behind it: it must be empty, so no
	// speculation happens on day zero.
	if sched.matrices[0].NumPairs() != 0 {
		t.Error("day-0 matrix should be empty (no history yet)")
	}
	if sched.matrices[len(sched.matrices)-1].NumPairs() == 0 {
		t.Error("final matrix empty: estimation never learned anything")
	}
}

func TestConfigValidation(t *testing.T) {
	site, tr := fixture(t)
	bad := Baseline(site, 0.25)
	bad.Site = nil
	if _, err := Run(tr, bad); err == nil {
		t.Error("nil site accepted")
	}
	bad = Baseline(site, 0.25)
	bad.Window = 0
	if _, err := Run(tr, bad); err == nil {
		t.Error("zero window accepted")
	}
	bad = Baseline(site, 0.25)
	bad.HistoryLength = 0
	if _, err := Run(tr, bad); err == nil {
		t.Error("zero history accepted")
	}
	bad = Baseline(site, 1.5)
	if _, err := Run(tr, bad); err == nil {
		t.Error("Tp > 1 accepted")
	}
	bad = Baseline(site, 0.25)
	bad.Mode = ModeHybrid
	bad.EmbedThreshold = 0
	if _, err := Run(tr, bad); err == nil {
		t.Error("hybrid without embed threshold accepted")
	}
	bad = Baseline(site, 0.25)
	bad.Mode = ModeHints
	bad.PrefetchTp = -0.1
	if _, err := Run(tr, bad); err == nil {
		t.Error("negative prefetch threshold accepted")
	}
	if _, err := Run(&trace.Trace{}, Baseline(site, 0.25)); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := RunWithSchedule(tr, Baseline(site, 0.25), nil); err == nil {
		t.Error("nil schedule accepted")
	}
}

func TestModeString(t *testing.T) {
	if ModePush.String() != "push" || ModeHints.String() != "hints" ||
		ModeHybrid.String() != "hybrid" || Mode(9).String() == "" {
		t.Error("mode strings wrong")
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, Baseline(nil, 0.25))
	b := run(t, Baseline(nil, 0.25))
	if a.Ratios != b.Ratios || a.SpeculatedDocs != b.SpeculatedDocs {
		t.Error("identical runs diverged")
	}
}

func TestMeasureFromExcludesWarmup(t *testing.T) {
	site, tr := fixture(t)
	first, last, _ := tr.Span()
	mid := first.Add(last.Sub(first) / 2)

	full := Baseline(site, 0.25)
	rFull, err := Run(tr, full)
	if err != nil {
		t.Fatal(err)
	}
	half := Baseline(site, 0.25)
	half.MeasureFrom = mid
	rHalf, err := Run(tr, half)
	if err != nil {
		t.Fatal(err)
	}
	if rHalf.Base.AccessedBytes >= rFull.Base.AccessedBytes {
		t.Errorf("warmup not excluded: %d vs %d accessed bytes",
			rHalf.Base.AccessedBytes, rFull.Base.AccessedBytes)
	}
	if rHalf.Spec.AccessedBytes != rHalf.Base.AccessedBytes {
		t.Error("arms diverged under MeasureFrom")
	}
	// Used deliveries cannot exceed counted deliveries.
	if rHalf.UsedDocs > rHalf.SpeculatedDocs+rHalf.PrefetchedDocs {
		t.Errorf("used %d > delivered %d", rHalf.UsedDocs, rHalf.SpeculatedDocs+rHalf.PrefetchedDocs)
	}
	// Everything after warmup still behaves: gains exist.
	if rHalf.Ratios.ServerLoad >= 1 {
		t.Errorf("no gains in measured window: %+v", rHalf.Ratios)
	}
	// Measuring from after the trace end yields empty tallies and neutral
	// ratios.
	never := Baseline(site, 0.25)
	never.MeasureFrom = last.Add(time.Hour)
	rNever, err := Run(tr, never)
	if err != nil {
		t.Fatal(err)
	}
	if rNever.Base.Requests != 0 || rNever.Ratios.ServerLoad != 1 {
		t.Errorf("post-trace MeasureFrom measured something: %+v", rNever.Base)
	}
}

// Property-style invariants over a grid of configurations: the speculative
// arm never sends fewer bytes than baseline (non-cooperative push), used ≤
// delivered, and accessed bytes agree across arms.
func TestRunInvariantsAcrossConfigs(t *testing.T) {
	site, tr := fixture(t)
	sched, err := BuildSchedule(tr, Baseline(site, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range []float64{0.9, 0.5, 0.2, 0.05} {
		for _, maxSize := range []int64{0, 8 << 10} {
			for _, coop := range []bool{false, true} {
				cfg := Baseline(site, tp)
				cfg.MaxSize = maxSize
				cfg.Cooperative = coop
				res, err := RunWithSchedule(tr, cfg, sched)
				if err != nil {
					t.Fatal(err)
				}
				if res.Spec.AccessedBytes != res.Base.AccessedBytes {
					t.Fatalf("tp=%v maxSize=%d coop=%v: accessed bytes diverged", tp, maxSize, coop)
				}
				if res.Spec.BytesSent < res.Base.BytesSent {
					t.Errorf("tp=%v maxSize=%d coop=%v: spec sent fewer bytes than baseline", tp, maxSize, coop)
				}
				if res.UsedDocs > res.SpeculatedDocs {
					t.Errorf("tp=%v: used %d > speculated %d", tp, res.UsedDocs, res.SpeculatedDocs)
				}
				if res.Spec.Requests > res.Base.Requests {
					t.Errorf("tp=%v: push mode increased server load", tp)
				}
				if res.RepeatConversions+res.NovelConversions != res.UsedDocs {
					t.Errorf("tp=%v: conversion split %d+%d != used %d", tp,
						res.RepeatConversions, res.NovelConversions, res.UsedDocs)
				}
			}
		}
	}
}
