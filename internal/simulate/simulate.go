// Package simulate implements the trace-driven simulation of §3.2–3.4: it
// replays a server log twice — once without speculation and once with a
// speculation policy — and reports the paper's four ratios (bandwidth,
// server load, service time, byte miss rate).
//
// The simulated world matches the paper's:
//
//   - Each client has a cache governed by SessionTimeout (∞ = infinite
//     multi-session cache, 0 = no cache) and optionally a capacity bound.
//   - The server estimates P (and its closure P*) from the most recent
//     HistoryLength days of its own log, re-estimating every UpdateCycle
//     days; requests are served with the estimate in force at their time.
//   - On a cache miss the client fetches from the server (one unit of
//     server load, ServCost + CommCost·size latency); the speculative arm's
//     server then pushes the policy's candidates, which enter the client's
//     cache and are charged to bandwidth whether or not they are ever used.
//   - Cooperative clients (§3.4) piggyback their cache digest, letting the
//     server skip documents the client already holds.
//   - Server-assisted prefetching (§3.4) sends hints instead of documents;
//     the client prefetches hints above its own threshold with individual
//     background requests. The hybrid protocol pushes near-certain
//     documents and hints the rest.
package simulate

import (
	"fmt"
	"time"

	"specweb/internal/cache"
	"specweb/internal/costmodel"
	"specweb/internal/markov"
	"specweb/internal/speculation"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// Mode selects how speculative candidates reach the client.
type Mode int

const (
	// ModePush is the paper's speculative service: the server sends the
	// documents themselves.
	ModePush Mode = iota
	// ModeHints is server-assisted prefetching: the server sends a hint
	// list and the client issues background prefetch requests.
	ModeHints
	// ModeHybrid pushes candidates above EmbedThreshold and hints the
	// rest.
	ModeHybrid
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModePush:
		return "push"
	case ModeHints:
		return "hints"
	case ModeHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config parameterizes one simulation run. Baseline() reproduces the
// paper's §3.2 parameter table.
type Config struct {
	Site  *webgraph.Site
	Costs costmodel.Costs

	// Client cache model.
	SessionTimeout time.Duration
	CacheCapacity  int64 // 0 = unbounded

	// Dependency estimation.
	Window         time.Duration // T_w
	StrideTimeout  time.Duration
	HistoryLength  int // days of log used per estimate (D')
	UpdateCycle    int // days between re-estimates (D)
	MinOccurrences int
	// Smoothing shrinks low-support probability estimates toward zero
	// (see markov.EstimateConfig.Smoothing).
	Smoothing float64
	// UseClosure selects P* (true, the baseline) or the raw P (false, the
	// ablation of DESIGN.md). P* is estimated directly from the trace by
	// stride pairing (the paper's §3.1 definition); set ClosureAnalytic to
	// instead derive it from P by the noisy-OR fixpoint, the second
	// ablation.
	UseClosure      bool
	ClosureAnalytic bool
	ClosureEps      float64

	// Policy.
	Tp      float64 // threshold on the selected matrix
	TopK    int     // when > 0, use top-K selection instead of threshold
	MaxSize int64   // per-document cap; 0 = ∞
	// Cooperative lets the server skip documents in the client's cache.
	Cooperative bool

	// Delivery mode and its knobs.
	Mode           Mode
	EmbedThreshold float64 // hybrid: push at or above this probability
	PrefetchTp     float64 // hints: client prefetches at or above this

	// MeasureFrom, when non-zero, starts metric accumulation at that
	// instant: earlier requests still warm caches and are replayed
	// normally, but contribute to neither arm's tallies. Experiments use
	// it to exclude the estimation cold-start from the measurement, as an
	// evaluation with pre-existing log history would.
	MeasureFrom time.Time
}

// Baseline returns the paper's baseline parameters: CommCost 1, ServCost
// 10,000, StrideTimeout 5 s, SessionTimeout ∞, MaxSize ∞, policy
// p*[i,j] ≥ T_p, HistoryLength 60 days, UpdateCycle 1 day.
func Baseline(site *webgraph.Site, tp float64) Config {
	return Config{
		Site:           site,
		Costs:          costmodel.Default(),
		SessionTimeout: cache.Forever,
		Window:         5 * time.Second,
		StrideTimeout:  5 * time.Second,
		HistoryLength:  60,
		UpdateCycle:    1,
		MinOccurrences: 5,
		Smoothing:      2,
		UseClosure:     true,
		ClosureEps:     1e-3,
		Tp:             tp,
		Mode:           ModePush,
		EmbedThreshold: 0.95,
		PrefetchTp:     0.25,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Site == nil {
		return fmt.Errorf("simulate: nil site")
	}
	if err := c.Costs.Validate(); err != nil {
		return err
	}
	if c.Window <= 0 {
		return fmt.Errorf("simulate: window must be positive, got %v", c.Window)
	}
	if c.HistoryLength <= 0 || c.UpdateCycle <= 0 {
		return fmt.Errorf("simulate: HistoryLength (%d) and UpdateCycle (%d) must be positive",
			c.HistoryLength, c.UpdateCycle)
	}
	if c.Tp < 0 || c.Tp > 1 {
		return fmt.Errorf("simulate: Tp %v outside [0,1]", c.Tp)
	}
	if c.Mode == ModeHybrid && (c.EmbedThreshold <= 0 || c.EmbedThreshold > 1) {
		return fmt.Errorf("simulate: hybrid needs EmbedThreshold in (0,1], got %v", c.EmbedThreshold)
	}
	if c.Mode != ModePush && (c.PrefetchTp < 0 || c.PrefetchTp > 1) {
		return fmt.Errorf("simulate: PrefetchTp %v outside [0,1]", c.PrefetchTp)
	}
	return nil
}

// Result is one run's outcome.
type Result struct {
	Spec   costmodel.Tally
	Base   costmodel.Tally
	Ratios costmodel.Ratios
	// SpeculatedDocs counts documents pushed speculatively; UsedDocs those
	// later hit in cache by a client-initiated request.
	SpeculatedDocs int64
	UsedDocs       int64
	// PrefetchedDocs counts client-initiated background prefetches
	// (hints/hybrid modes).
	PrefetchedDocs int64
	// RepeatConversions counts speculative deliveries later used for a
	// document this client had requested before; NovelConversions those
	// for first-time documents. §3.4 contrasts server-side speculation
	// (which converts novel accesses) with per-user client prefetching
	// (which cannot).
	RepeatConversions int64
	NovelConversions  int64
}

// Schedule is the sequence of dependency-matrix estimates in force over a
// trace, one per update cycle. It is policy-independent, so one Schedule
// can drive a whole T_p sweep.
type Schedule struct {
	start    time.Time
	cycle    time.Duration
	matrices []*markov.Matrix // matrices[k] serves days [k·UC, (k+1)·UC)
}

// BuildSchedule estimates the matrices for the trace under the config's
// estimation parameters (Window, StrideTimeout, HistoryLength, UpdateCycle,
// UseClosure).
func BuildSchedule(tr *trace.Trace, cfg Config) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	first, last, ok := tr.Span()
	if !ok {
		return nil, fmt.Errorf("simulate: empty trace")
	}
	day := 24 * time.Hour
	s := &Schedule{start: first, cycle: time.Duration(cfg.UpdateCycle) * day}
	est := markov.EstimateConfig{
		Window:         cfg.Window,
		StrideTimeout:  cfg.StrideTimeout,
		MinOccurrences: cfg.MinOccurrences,
		Smoothing:      cfg.Smoothing,
	}
	eps := cfg.ClosureEps
	if eps <= 0 {
		eps = 1e-3
	}
	for at := first; !at.After(last); at = at.Add(s.cycle) {
		histFrom := at.Add(-time.Duration(cfg.HistoryLength) * day)
		window := tr.Window(histFrom, at)
		var m *markov.Matrix
		var err error
		switch {
		case cfg.UseClosure && !cfg.ClosureAnalytic:
			m, err = markov.EstimateTransitive(window, est)
		case cfg.UseClosure:
			m, err = markov.Estimate(window, est)
			if err == nil {
				// Chains beyond a handful of links carry negligible
				// probability mass; bounding the fixpoint keeps the
				// analytic ablation tractable on month-scale histories.
				m = m.Closure(eps, 1e-4, 6)
			}
		default:
			m, err = markov.Estimate(window, est)
		}
		if err != nil {
			return nil, err
		}
		s.matrices = append(s.matrices, m)
	}
	return s, nil
}

// At returns the matrix in force at the given time.
func (s *Schedule) At(t time.Time) *markov.Matrix {
	k := int(t.Sub(s.start) / s.cycle)
	if k < 0 {
		k = 0
	}
	if k >= len(s.matrices) {
		k = len(s.matrices) - 1
	}
	return s.matrices[k]
}

// Cycles returns the number of estimation cycles in the schedule.
func (s *Schedule) Cycles() int { return len(s.matrices) }

// Run simulates the trace under cfg, building the matrix schedule itself.
func Run(tr *trace.Trace, cfg Config) (*Result, error) {
	sched, err := BuildSchedule(tr, cfg)
	if err != nil {
		return nil, err
	}
	return RunWithSchedule(tr, cfg, sched)
}

// RunWithSchedule simulates the trace using a prebuilt schedule, which must
// have been built with the same estimation parameters.
func RunWithSchedule(tr *trace.Trace, cfg Config, sched *Schedule) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sched == nil || sched.Cycles() == 0 {
		return nil, fmt.Errorf("simulate: empty schedule")
	}

	res := &Result{}
	baseCaches := make(map[trace.ClientID]cache.Cache)
	specCaches := make(map[trace.ClientID]cache.Cache)
	getCache := func(m map[trace.ClientID]cache.Cache, c trace.ClientID) cache.Cache {
		cc, ok := m[c]
		if !ok {
			cc = cache.New(cfg.SessionTimeout, cfg.CacheCapacity)
			m[c] = cc
		}
		return cc
	}
	// specPushed tracks, per client, pushed-but-not-yet-used documents for
	// the UsedDocs accounting; visited tracks each client's full request
	// history for the repeat/novel conversion split.
	pushedPending := make(map[trace.ClientID]map[webgraph.DocID]bool)
	visited := make(map[trace.ClientID]map[webgraph.DocID]bool)

	for i := range tr.Requests {
		r := &tr.Requests[i]
		if r.Doc == webgraph.None {
			continue
		}
		m := sched.At(r.Time)
		var policy speculation.Policy
		if cfg.TopK > 0 {
			policy = speculation.TopK{M: m, K: cfg.TopK, MinP: cfg.Tp}
		} else {
			policy = speculation.Threshold{M: m, Tp: cfg.Tp}
		}
		sel := &speculation.Selector{Policy: policy, Site: cfg.Site, MaxSize: cfg.MaxSize}

		bc := getCache(baseCaches, r.Client)
		sc := getCache(specCaches, r.Client)
		bc.Touch(r.Time)
		sc.Touch(r.Time)

		measured := cfg.MeasureFrom.IsZero() || !r.Time.Before(cfg.MeasureFrom)
		if measured {
			res.Base.AccessedBytes += r.Size
			res.Spec.AccessedBytes += r.Size
		}

		// Non-speculative arm.
		if !bc.Has(r.Doc) {
			if measured {
				res.Base.Requests++
				res.Base.BytesSent += r.Size
				res.Base.MissBytes += r.Size
				res.Base.Latency += cfg.Costs.RequestLatency(r.Size)
			}
			bc.Put(r.Doc, r.Size)
		}

		// Speculative arm.
		seen := visited[r.Client]
		if seen == nil {
			seen = make(map[webgraph.DocID]bool)
			visited[r.Client] = seen
		}
		wasSeen := seen[r.Doc]
		seen[r.Doc] = true

		if sc.Has(r.Doc) {
			if pend := pushedPending[r.Client]; pend != nil {
				if countedAtPush, ok := pend[r.Doc]; ok {
					delete(pend, r.Doc)
					// Only deliveries that were themselves counted can
					// count as used, keeping UsedDocs ≤ SpeculatedDocs
					// (+ PrefetchedDocs) under a measurement warmup.
					if measured && countedAtPush {
						res.UsedDocs++
						if wasSeen {
							res.RepeatConversions++
						} else {
							res.NovelConversions++
						}
					}
				}
			}
			continue
		}
		if measured {
			res.Spec.Requests++
			res.Spec.BytesSent += r.Size
			res.Spec.MissBytes += r.Size
			res.Spec.Latency += cfg.Costs.RequestLatency(r.Size)
		}
		sc.Put(r.Doc, r.Size)

		var exclude func(webgraph.DocID) bool
		if cfg.Cooperative {
			exclude = sc.Has
		}

		switch cfg.Mode {
		case ModePush:
			for _, d := range sel.Select(r.Doc, exclude) {
				pushDoc(res, cfg, sc, pushedPending, r.Client, d, measured)
			}
		case ModeHints:
			for _, h := range sel.Hints(r.Doc, exclude) {
				if h.P >= cfg.PrefetchTp {
					prefetchDoc(res, cfg, sc, pushedPending, r.Client, h.Doc, measured)
				}
			}
		case ModeHybrid:
			push, hints := sel.Split(r.Doc, cfg.EmbedThreshold, exclude)
			for _, d := range push {
				pushDoc(res, cfg, sc, pushedPending, r.Client, d, measured)
			}
			for _, h := range hints {
				if h.P >= cfg.PrefetchTp {
					prefetchDoc(res, cfg, sc, pushedPending, r.Client, h.Doc, measured)
				}
			}
		}
	}

	res.Ratios = costmodel.Compare(res.Spec, res.Base)
	return res, nil
}

// pushDoc delivers one speculative document: bytes are charged whether or
// not the client already had it (a non-cooperative server cannot know), but
// the cache and usage tracking only change on new documents.
func pushDoc(res *Result, cfg Config, sc cache.Cache,
	pending map[trace.ClientID]map[webgraph.DocID]bool,
	client trace.ClientID, d webgraph.DocID, measured bool) {

	size := cfg.Site.Doc(d).Size
	if measured {
		res.Spec.BytesSent += size
	}
	if sc.Has(d) {
		return
	}
	sc.Put(d, size)
	if measured {
		res.SpeculatedDocs++
	}
	markPending(pending, client, d, measured)
}

// prefetchDoc is a client-initiated background fetch: it costs a server
// request and bytes but no client-visible latency, and the client never
// prefetches what it has.
func prefetchDoc(res *Result, cfg Config, sc cache.Cache,
	pending map[trace.ClientID]map[webgraph.DocID]bool,
	client trace.ClientID, d webgraph.DocID, measured bool) {

	if sc.Has(d) {
		return
	}
	size := cfg.Site.Doc(d).Size
	if measured {
		res.Spec.BytesSent += size
		res.Spec.Requests++
		res.PrefetchedDocs++
	}
	sc.Put(d, size)
	markPending(pending, client, d, measured)
}

// markPending records a delivered document; the value remembers whether the
// delivery was inside the measurement window.
func markPending(pending map[trace.ClientID]map[webgraph.DocID]bool,
	client trace.ClientID, d webgraph.DocID, measured bool) {
	m := pending[client]
	if m == nil {
		m = make(map[webgraph.DocID]bool)
		pending[client] = m
	}
	m[d] = measured
}
