package webgraph

import (
	"fmt"
	"math"

	"specweb/internal/stats"
)

// Profile parameterizes site generation. The two stock profiles —
// DepartmentSite and MediaSite — are calibrated to the two workloads the
// paper draws on: the cs-www.bu.edu departmental server and the Rolling
// Stones multimedia site mentioned in §2's footnote.
type Profile struct {
	Name  string
	Pages int // number of HTML pages

	// Structure.
	EmbeddedPerPage stats.Dist // objects per page (drawn per page)
	LinksPerPage    stats.Dist // out-links per page
	SharedObjProb   float64    // probability an embedding reuses an existing object (site-wide icons)

	// Sizes in bytes.
	PageSize   stats.Dist
	ObjectSize stats.Dist

	// Popularity shaping.
	EntryFraction float64 // fraction of pages that are session entry points
	EntrySkew     float64 // Zipf skew for entry selection
	// LinkAttachment controls hyperlink target choice: with this
	// probability a link targets a page drawn by preferential attachment
	// (popular targets attract more links); otherwise a uniform page.
	// Preferential attachment is what makes document popularity heavy-
	// tailed, as in Figure 1.
	LinkAttachment float64
	// LinkHomophily is the probability that a link's target is drawn from
	// pages of the same audience class as the linking page. Homophily
	// keeps traversal strides audience-coherent (a local user browsing a
	// local section stays in it), which is what lets the analyzer recover
	// the paper's locally/remotely popular classes from traces, while
	// anchor choice during navigation stays uniform (preserving the 1/k
	// traversal-probability peaks of Figure 4).
	LinkHomophily float64

	// Audience mix. Fractions of pages of each audience class; the paper
	// observed 510 locally / 99 remotely / 365 globally popular documents
	// out of 974 accessed.
	LocalFraction  float64
	RemoteFraction float64

	// Update behaviour (per-day probabilities, §2).
	MutableFraction  float64 // fraction of locally-popular pages that mutate often
	MutableUpdate    float64 // per-day update probability of mutable documents
	ImmutableUpdate  float64 // per-day update probability of everything else
	ObjectUpdateProb float64 // objects change essentially never
}

// ProfileNames lists the built-in profile names ProfileByName accepts.
func ProfileNames() []string {
	return []string{"department", "media", "tiny"}
}

// ProfileByName resolves a command-line profile name — the switch shared
// by every cmd that builds a site.
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "department":
		return DepartmentSite(), nil
	case "media":
		return MediaSite(), nil
	case "tiny":
		return TinySite(), nil
	}
	return Profile{}, fmt.Errorf("webgraph: unknown profile %q (want department, media, or tiny)", name)
}

// DepartmentSite returns a profile calibrated to the cs-www.bu.edu numbers
// reported in §2: roughly 2000 documents totalling ≈50 MB, strongly skewed
// popularity, a majority-local audience, and infrequent updates outside a
// small mutable core.
func DepartmentSite() Profile {
	return Profile{
		Name:            "department",
		Pages:           700,
		EmbeddedPerPage: stats.NewGeometric(0.45), // ≈1.2 objects per page
		LinksPerPage:    stats.NewUniform(1, 9),   // integer anchors, 1..8
		SharedObjProb:   0.35,
		PageSize:        stats.NewLognormal(8.6, 1.0),            // median ≈5.4 KB, mean ≈8.9 KB
		ObjectSize:      stats.NewBoundedPareto(1500, 1.12, 8e6), // heavy tail, mean ≈9 KB, ≤8 MB
		EntryFraction:   0.06,
		EntrySkew:       1.1,
		LinkAttachment:  0.75,
		LinkHomophily:   0.85,
		LocalFraction:   0.52,
		RemoteFraction:  0.10,
		MutableFraction: 0.15,
		MutableUpdate:   0.02,  // ≈2%/day, §2's locally-popular rate
		ImmutableUpdate: 0.004, // <0.5%/day
	}
}

// MediaSite returns a profile for a multimedia-heavy site in the spirit of
// the Rolling Stones server (§2 footnote): fewer pages, much larger objects,
// sharper popularity skew.
func MediaSite() Profile {
	return Profile{
		Name:            "media",
		Pages:           220,
		EmbeddedPerPage: stats.NewGeometric(0.30), // ≈2.3 objects per page
		LinksPerPage:    stats.NewUniform(1, 6),
		SharedObjProb:   0.20,
		PageSize:        stats.NewLognormal(8.6, 0.8),
		ObjectSize:      stats.NewBoundedPareto(20e3, 1.1, 40e6), // audio/video tail
		EntryFraction:   0.05,
		EntrySkew:       1.35,
		LinkAttachment:  0.85,
		LinkHomophily:   0.6,
		LocalFraction:   0.05,
		RemoteFraction:  0.70,
		MutableFraction: 0.05,
		MutableUpdate:   0.02,
		ImmutableUpdate: 0.002,
	}
}

// TinySite returns a small profile for tests and the quickstart example.
// The entry fraction is raised so that even a 60-page site exposes entry
// pages of every audience class.
func TinySite() Profile {
	p := DepartmentSite()
	p.Name = "tiny"
	p.Pages = 60
	p.EntryFraction = 0.2
	return p
}

// Validate reports whether the profile is internally consistent.
func (p *Profile) Validate() error {
	if p.Pages <= 0 {
		return fmt.Errorf("webgraph: profile needs Pages > 0, got %d", p.Pages)
	}
	if p.EmbeddedPerPage == nil || p.LinksPerPage == nil || p.PageSize == nil || p.ObjectSize == nil {
		return fmt.Errorf("webgraph: profile %q has nil distributions", p.Name)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"SharedObjProb", p.SharedObjProb},
		{"EntryFraction", p.EntryFraction},
		{"LinkAttachment", p.LinkAttachment},
		{"LinkHomophily", p.LinkHomophily},
		{"LocalFraction", p.LocalFraction},
		{"RemoteFraction", p.RemoteFraction},
		{"MutableFraction", p.MutableFraction},
		{"MutableUpdate", p.MutableUpdate},
		{"ImmutableUpdate", p.ImmutableUpdate},
		{"ObjectUpdateProb", p.ObjectUpdateProb},
	} {
		if f.v < 0 || f.v > 1 || math.IsNaN(f.v) {
			return fmt.Errorf("webgraph: profile %q: %s = %v outside [0,1]", p.Name, f.name, f.v)
		}
	}
	if p.LocalFraction+p.RemoteFraction > 1 {
		return fmt.Errorf("webgraph: profile %q: audience fractions sum to %v > 1",
			p.Name, p.LocalFraction+p.RemoteFraction)
	}
	return nil
}

// Generate builds a site from the profile using the given random source.
// The same profile and seed always produce the identical site.
func Generate(p Profile, g *stats.RNG) (*Site, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &Site{Name: p.Name, EntrySkew: p.EntrySkew}

	// 1. Create pages with sizes and audiences.
	for i := 0; i < p.Pages; i++ {
		size := int64(p.PageSize.Sample(g))
		if size < 256 {
			size = 256
		}
		aud := Global
		u := g.Float64()
		switch {
		case u < p.LocalFraction:
			aud = LocalOnly
		case u < p.LocalFraction+p.RemoteFraction:
			aud = RemoteOnly
		}
		s.Docs = append(s.Docs, Document{
			ID:       DocID(len(s.Docs)),
			Path:     fmt.Sprintf("/pages/p%04d.html", i),
			Kind:     Page,
			Size:     size,
			Audience: aud,
		})
	}

	// 2. Attach embedded objects, sharing some across pages.
	var objects []DocID
	for pid := 0; pid < p.Pages; pid++ {
		n := int(p.EmbeddedPerPage.Sample(g))
		for k := 0; k < n; k++ {
			var oid DocID
			if len(objects) > 0 && g.Bool(p.SharedObjProb) {
				oid = objects[g.Intn(len(objects))]
			} else {
				size := int64(p.ObjectSize.Sample(g))
				if size < 64 {
					size = 64
				}
				oid = DocID(len(s.Docs))
				s.Docs = append(s.Docs, Document{
					ID:       oid,
					Path:     fmt.Sprintf("/img/o%05d", len(objects)),
					Kind:     Object,
					Size:     size,
					Audience: s.Docs[pid].Audience,
				})
				objects = append(objects, oid)
			}
			// Avoid duplicate embeddings of the same object in one page.
			dup := false
			for _, e := range s.Docs[pid].Embedded {
				if e == oid {
					dup = true
					break
				}
			}
			if !dup {
				s.Docs[pid].Embedded = append(s.Docs[pid].Embedded, oid)
			}
		}
	}

	// 3. Wire hyperlinks with preferential attachment and audience
	// homophily. inWeight[i] starts at 1 so every page is reachable in
	// principle.
	inWeight := make([]int, p.Pages)
	for i := range inWeight {
		inWeight[i] = 1
	}
	byAud := make(map[Audience][]int)
	allPages := make([]int, p.Pages)
	var publicPages []int // everything except the internal (LocalOnly) section
	for i := 0; i < p.Pages; i++ {
		allPages[i] = i
		byAud[s.Docs[i].Audience] = append(byAud[s.Docs[i].Audience], i)
		if s.Docs[i].Audience != LocalOnly {
			publicPages = append(publicPages, i)
		}
	}
	drawPreferential := func(pool []int) DocID {
		total := 0
		for _, i := range pool {
			total += inWeight[i]
		}
		t := g.Intn(total)
		for _, i := range pool {
			t -= inWeight[i]
			if t < 0 {
				return DocID(i)
			}
		}
		return DocID(pool[len(pool)-1])
	}
	for pid := 0; pid < p.Pages; pid++ {
		n := int(p.LinksPerPage.Sample(g))
		if n < 1 {
			n = 1
		}
		for k := 0; k < n; k++ {
			// Cross-audience links are asymmetric: internal (LocalOnly)
			// pages may link anywhere, but public pages do not link into
			// the internal section — department sites of the era kept
			// internal material reachable from internal indexes, not
			// from the public front. This is what keeps the remote
			// share of internal pages below the paper's 15% threshold.
			pool := allPages
			if s.Docs[pid].Audience != LocalOnly && len(publicPages) > 1 {
				pool = publicPages
			}
			if same := byAud[s.Docs[pid].Audience]; len(same) > 1 && g.Bool(p.LinkHomophily) {
				pool = same
			}
			var target DocID
			if g.Bool(p.LinkAttachment) {
				target = drawPreferential(pool)
			} else {
				target = DocID(pool[g.Intn(len(pool))])
			}
			if target == DocID(pid) {
				continue // no self links
			}
			dup := false
			for _, l := range s.Docs[pid].Links {
				if l == target {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			s.Docs[pid].Links = append(s.Docs[pid].Links, target)
			inWeight[target] += 4 // rich get richer
		}
	}

	// 4. Choose entry pages: preferential targets make natural entries
	// (the home page is the most linked-to page).
	nEntries := int(float64(p.Pages) * p.EntryFraction)
	if nEntries < 1 {
		nEntries = 1
	}
	type pw struct {
		id DocID
		w  int
	}
	best := make([]pw, 0, p.Pages)
	for i := 0; i < p.Pages; i++ {
		best = append(best, pw{DocID(i), inWeight[i]})
	}
	// Partial selection sort for the top nEntries by in-weight; stable
	// under ties by ID so generation stays deterministic.
	for i := 0; i < nEntries && i < len(best); i++ {
		maxJ := i
		for j := i + 1; j < len(best); j++ {
			if best[j].w > best[maxJ].w ||
				(best[j].w == best[maxJ].w && best[j].id < best[maxJ].id) {
				maxJ = j
			}
		}
		best[i], best[maxJ] = best[maxJ], best[i]
		s.Entries = append(s.Entries, best[i].id)
	}

	// 5. Assign update probabilities: a small mutable core among
	// locally-popular pages updates often; everything else rarely.
	for i := range s.Docs {
		d := &s.Docs[i]
		switch {
		case d.Kind == Object:
			d.UpdateProb = p.ObjectUpdateProb
		case d.Audience == LocalOnly && g.Bool(p.MutableFraction):
			d.UpdateProb = p.MutableUpdate
		default:
			d.UpdateProb = p.ImmutableUpdate
		}
	}

	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("webgraph: generated site failed validation: %w", err)
	}
	return s, nil
}
