// Package webgraph models a synthetic web site: a set of documents (HTML
// pages and embedded multimedia objects) connected by embedding and
// hyperlink relations, with heavy-tailed sizes and audience annotations.
//
// The paper's trace-driven evaluation ran against the real cs-www.bu.edu
// site of 1995, which is not available; webgraph is the substitute substrate.
// Its structure is what gives the synthesized traces the properties the
// paper's results rest on:
//
//   - embedding relations produce the "embedding dependencies" of §3.1
//     (documents always requested together, p[i,j] = 1);
//   - uniform link-following over an integer number of anchors produces the
//     "traversal dependencies" with the 1/k probability peaks of Figure 4;
//   - preferential attachment of hyperlinks plus Zipf entry-page selection
//     produces the heavy-tailed document popularity of Figure 1;
//   - audience annotations (local vs. remote interest) produce the
//     remote/local/global popularity classes of §2;
//   - per-document update probabilities produce the mutable/immutable split.
package webgraph

import (
	"errors"
	"fmt"
)

// DocID identifies a document within a Site. IDs are dense: valid IDs are
// exactly [0, len(Site.Docs)).
type DocID int32

// None is the sentinel for "no document".
const None DocID = -1

// Kind distinguishes the two structural document classes.
type Kind uint8

const (
	// Page is an HTML document: it embeds objects and links to other pages.
	Page Kind = iota
	// Object is an embedded multimedia object (image, audio, ...).
	Object
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Page:
		return "page"
	case Object:
		return "object"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Audience biases which client population requests a document; it is the
// generator-side ground truth behind the paper's remotely/locally/globally
// popular classification (§2), which the analyzer must recover from traces.
type Audience uint8

const (
	// Global documents interest local and remote clients alike.
	Global Audience = iota
	// LocalOnly documents interest mostly clients inside the organization.
	LocalOnly
	// RemoteOnly documents interest mostly clients outside the organization.
	RemoteOnly
)

// String returns the audience name.
func (a Audience) String() string {
	switch a {
	case Global:
		return "global"
	case LocalOnly:
		return "local"
	case RemoteOnly:
		return "remote"
	default:
		return fmt.Sprintf("audience(%d)", uint8(a))
	}
}

// Document is one retrievable object on the site.
type Document struct {
	ID   DocID
	Path string // URL path, unique within the site
	Kind Kind
	Size int64 // bytes

	// Embedded lists objects always retrieved along with this page
	// (images etc.). Empty for Kind == Object.
	Embedded []DocID
	// Links lists hyperlink targets (always pages). Empty for objects.
	Links []DocID

	// Audience biases the requesting population.
	Audience Audience
	// UpdateProb is the per-day probability that the document's content
	// changes. The paper found ≈2%/day for locally popular documents and
	// <0.5%/day for the rest, with frequent updates confined to a small
	// "mutable" subset.
	UpdateProb float64
}

// IsPage reports whether the document is an HTML page.
func (d *Document) IsPage() bool { return d.Kind == Page }

// Site is a generated web site.
type Site struct {
	Name string
	Docs []Document

	// Entries are the pages at which sessions may begin (home page,
	// popular deep links). Entry i is drawn with Zipf(EntrySkew) rank i+1.
	Entries   []DocID
	EntrySkew float64

	byPath map[string]DocID
}

// Doc returns the document with the given ID. It panics if id is invalid;
// IDs originate inside the package, so an invalid one is a programming
// error, not an input error.
func (s *Site) Doc(id DocID) *Document {
	return &s.Docs[id]
}

// Valid reports whether id names a document of this site.
func (s *Site) Valid(id DocID) bool {
	return id >= 0 && int(id) < len(s.Docs)
}

// ByPath returns the document with the given URL path, or nil.
func (s *Site) ByPath(path string) *Document {
	if s.byPath == nil {
		s.indexPaths()
	}
	id, ok := s.byPath[path]
	if !ok {
		return nil
	}
	return &s.Docs[id]
}

func (s *Site) indexPaths() {
	s.byPath = make(map[string]DocID, len(s.Docs))
	for i := range s.Docs {
		s.byPath[s.Docs[i].Path] = s.Docs[i].ID
	}
}

// NumDocs returns the total number of documents.
func (s *Site) NumDocs() int { return len(s.Docs) }

// NumPages returns the number of HTML pages.
func (s *Site) NumPages() int {
	n := 0
	for i := range s.Docs {
		if s.Docs[i].Kind == Page {
			n++
		}
	}
	return n
}

// TotalBytes returns the total size of all documents, the paper's "50+
// MBytes available through the server".
func (s *Site) TotalBytes() int64 {
	var t int64
	for i := range s.Docs {
		t += s.Docs[i].Size
	}
	return t
}

// PageBytes returns the size of a page plus all its embedded objects — the
// bytes a browser transfers to render it.
func (s *Site) PageBytes(id DocID) int64 {
	d := s.Doc(id)
	t := d.Size
	for _, e := range d.Embedded {
		t += s.Doc(e).Size
	}
	return t
}

// Validate checks the structural invariants of the site. Generated sites
// always pass; the check exists for sites loaded or constructed by hand.
func (s *Site) Validate() error {
	if len(s.Docs) == 0 {
		return errors.New("webgraph: site has no documents")
	}
	seen := make(map[string]bool, len(s.Docs))
	for i := range s.Docs {
		d := &s.Docs[i]
		if d.ID != DocID(i) {
			return fmt.Errorf("webgraph: doc at index %d has ID %d", i, d.ID)
		}
		if d.Path == "" {
			return fmt.Errorf("webgraph: doc %d has empty path", i)
		}
		if seen[d.Path] {
			return fmt.Errorf("webgraph: duplicate path %q", d.Path)
		}
		seen[d.Path] = true
		if d.Size <= 0 {
			return fmt.Errorf("webgraph: doc %d has non-positive size %d", i, d.Size)
		}
		if d.UpdateProb < 0 || d.UpdateProb > 1 {
			return fmt.Errorf("webgraph: doc %d has update probability %v outside [0,1]", i, d.UpdateProb)
		}
		if d.Kind == Object && (len(d.Embedded) > 0 || len(d.Links) > 0) {
			return fmt.Errorf("webgraph: object %d has structure", i)
		}
		for _, e := range d.Embedded {
			if !s.Valid(e) {
				return fmt.Errorf("webgraph: doc %d embeds invalid ID %d", i, e)
			}
			if s.Doc(e).Kind != Object {
				return fmt.Errorf("webgraph: doc %d embeds non-object %d", i, e)
			}
		}
		for _, l := range d.Links {
			if !s.Valid(l) {
				return fmt.Errorf("webgraph: doc %d links to invalid ID %d", i, l)
			}
			if s.Doc(l).Kind != Page {
				return fmt.Errorf("webgraph: doc %d links to non-page %d", i, l)
			}
		}
	}
	if len(s.Entries) == 0 {
		return errors.New("webgraph: site has no entry pages")
	}
	for _, e := range s.Entries {
		if !s.Valid(e) || s.Doc(e).Kind != Page {
			return fmt.Errorf("webgraph: invalid entry %d", e)
		}
	}
	return nil
}
