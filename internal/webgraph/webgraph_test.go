package webgraph

import (
	"testing"
	"testing/quick"

	"specweb/internal/stats"
)

func genSite(t *testing.T, p Profile, seed int64) *Site {
	t.Helper()
	s, err := Generate(p, stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGenerateDeterminism(t *testing.T) {
	a := genSite(t, DepartmentSite(), 1)
	b := genSite(t, DepartmentSite(), 1)
	if a.NumDocs() != b.NumDocs() {
		t.Fatalf("doc counts differ: %d vs %d", a.NumDocs(), b.NumDocs())
	}
	for i := range a.Docs {
		if a.Docs[i].Size != b.Docs[i].Size || a.Docs[i].Path != b.Docs[i].Path {
			t.Fatalf("doc %d differs between identical seeds", i)
		}
	}
	c := genSite(t, DepartmentSite(), 2)
	if c.TotalBytes() == a.TotalBytes() {
		t.Error("different seeds produced byte-identical sites (suspicious)")
	}
}

func TestGeneratedSiteValidates(t *testing.T) {
	for _, p := range []Profile{DepartmentSite(), MediaSite(), TinySite()} {
		s := genSite(t, p, 7)
		if err := s.Validate(); err != nil {
			t.Errorf("profile %s: %v", p.Name, err)
		}
	}
}

func TestDepartmentSiteScale(t *testing.T) {
	s := genSite(t, DepartmentSite(), 3)
	if s.NumDocs() < 1000 || s.NumDocs() > 4000 {
		t.Errorf("department site has %d docs, want ≈2000", s.NumDocs())
	}
	total := s.TotalBytes()
	// The paper's server held "50+ MBytes"; accept a broad band.
	if total < 10e6 || total > 400e6 {
		t.Errorf("department site holds %d bytes, want tens of MB", total)
	}
	if s.NumPages() != 700 {
		t.Errorf("pages = %d, want 700", s.NumPages())
	}
}

func TestAudienceMix(t *testing.T) {
	s := genSite(t, DepartmentSite(), 11)
	var local, remote, global int
	for i := range s.Docs {
		if s.Docs[i].Kind != Page {
			continue
		}
		switch s.Docs[i].Audience {
		case LocalOnly:
			local++
		case RemoteOnly:
			remote++
		default:
			global++
		}
	}
	n := float64(s.NumPages())
	if f := float64(local) / n; f < 0.40 || f < float64(remote)/n {
		t.Errorf("local fraction %v; want ≈0.52 and > remote", f)
	}
	if f := float64(remote) / n; f < 0.03 || f > 0.20 {
		t.Errorf("remote fraction %v; want ≈0.10", f)
	}
}

func TestLinkDegreeHeavyTail(t *testing.T) {
	s := genSite(t, DepartmentSite(), 13)
	in := make(map[DocID]int)
	for i := range s.Docs {
		for _, l := range s.Docs[i].Links {
			in[l]++
		}
	}
	var max, sum int
	for _, c := range in {
		sum += c
		if c > max {
			max = c
		}
	}
	if len(in) == 0 {
		t.Fatal("no links generated")
	}
	mean := float64(sum) / float64(len(in))
	if float64(max) < 5*mean {
		t.Errorf("max in-degree %d vs mean %.1f: preferential attachment should produce a heavy tail", max, mean)
	}
}

func TestEntriesAreMostLinked(t *testing.T) {
	s := genSite(t, DepartmentSite(), 17)
	if len(s.Entries) < 10 {
		t.Fatalf("only %d entries", len(s.Entries))
	}
	in := make(map[DocID]int)
	for i := range s.Docs {
		for _, l := range s.Docs[i].Links {
			in[l]++
		}
	}
	// The first entry should be among the most linked-to pages.
	first := in[s.Entries[0]]
	better := 0
	for _, c := range in {
		if c > first {
			better++
		}
	}
	if better > 5 {
		t.Errorf("first entry has in-degree %d but %d pages have more", first, better)
	}
}

func TestUpdateProbClasses(t *testing.T) {
	s := genSite(t, DepartmentSite(), 19)
	mutable := 0
	for i := range s.Docs {
		d := &s.Docs[i]
		if d.UpdateProb == 0.02 {
			mutable++
			if d.Audience != LocalOnly {
				t.Errorf("mutable doc %d is %v, want local", d.ID, d.Audience)
			}
		}
	}
	if mutable == 0 {
		t.Error("no mutable documents generated")
	}
	if frac := float64(mutable) / float64(s.NumDocs()); frac > 0.2 {
		t.Errorf("mutable fraction %v: frequent updates should be confined to a small subset", frac)
	}
}

func TestPageBytesIncludesEmbedded(t *testing.T) {
	s := genSite(t, DepartmentSite(), 23)
	for i := range s.Docs {
		d := &s.Docs[i]
		if d.Kind == Page && len(d.Embedded) > 0 {
			if s.PageBytes(d.ID) <= d.Size {
				t.Errorf("PageBytes(%d) = %d, want > own size %d", d.ID, s.PageBytes(d.ID), d.Size)
			}
			return
		}
	}
	t.Fatal("no page with embedded objects found")
}

func TestByPath(t *testing.T) {
	s := genSite(t, TinySite(), 29)
	d0 := &s.Docs[0]
	if got := s.ByPath(d0.Path); got == nil || got.ID != d0.ID {
		t.Errorf("ByPath(%q) = %v", d0.Path, got)
	}
	if s.ByPath("/nonexistent") != nil {
		t.Error("ByPath should return nil for unknown path")
	}
}

func TestValidateRejectsBadSites(t *testing.T) {
	cases := []struct {
		name string
		site Site
	}{
		{"empty", Site{}},
		{"bad id", Site{Docs: []Document{{ID: 5, Path: "/a", Size: 1}}}},
		{"empty path", Site{Docs: []Document{{ID: 0, Path: "", Size: 1}}}},
		{"zero size", Site{Docs: []Document{{ID: 0, Path: "/a", Size: 0}}}},
		{"dup path", Site{Docs: []Document{
			{ID: 0, Path: "/a", Size: 1, Kind: Page},
			{ID: 1, Path: "/a", Size: 1, Kind: Page},
		}}},
		{"object with links", Site{Docs: []Document{
			{ID: 0, Path: "/a", Size: 1, Kind: Object, Links: []DocID{0}},
		}}},
		{"bad embed target", Site{Docs: []Document{
			{ID: 0, Path: "/a", Size: 1, Kind: Page, Embedded: []DocID{9}},
		}}},
		{"embed of page", Site{Docs: []Document{
			{ID: 0, Path: "/a", Size: 1, Kind: Page, Embedded: []DocID{1}},
			{ID: 1, Path: "/b", Size: 1, Kind: Page},
		}}},
		{"link to object", Site{Docs: []Document{
			{ID: 0, Path: "/a", Size: 1, Kind: Page, Links: []DocID{1}},
			{ID: 1, Path: "/b", Size: 1, Kind: Object},
		}}},
		{"no entries", Site{Docs: []Document{{ID: 0, Path: "/a", Size: 1, Kind: Page}}}},
		{"bad update prob", Site{
			Docs:    []Document{{ID: 0, Path: "/a", Size: 1, Kind: Page, UpdateProb: 1.5}},
			Entries: []DocID{0},
		}},
		{"entry is object", Site{
			Docs:    []Document{{ID: 0, Path: "/a", Size: 1, Kind: Object}},
			Entries: []DocID{0},
		}},
	}
	for _, c := range cases {
		if err := c.site.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid site", c.name)
		}
	}
}

func TestProfileValidate(t *testing.T) {
	p := DepartmentSite()
	p.Pages = 0
	if err := p.Validate(); err == nil {
		t.Error("Pages=0 accepted")
	}
	p = DepartmentSite()
	p.LocalFraction = 0.8
	p.RemoteFraction = 0.5
	if err := p.Validate(); err == nil {
		t.Error("audience fractions > 1 accepted")
	}
	p = DepartmentSite()
	p.SharedObjProb = -0.1
	if err := p.Validate(); err == nil {
		t.Error("negative probability accepted")
	}
	p = DepartmentSite()
	p.PageSize = nil
	if err := p.Validate(); err == nil {
		t.Error("nil distribution accepted")
	}
}

func TestKindAudienceStrings(t *testing.T) {
	if Page.String() != "page" || Object.String() != "object" {
		t.Error("kind strings wrong")
	}
	if Global.String() != "global" || LocalOnly.String() != "local" || RemoteOnly.String() != "remote" {
		t.Error("audience strings wrong")
	}
	if Kind(9).String() == "" || Audience(9).String() == "" {
		t.Error("unknown enums should still print")
	}
}

// Property: generation never produces self-links, duplicate links, or
// duplicate embeddings, for arbitrary small profiles.
func TestGenerateStructureProperty(t *testing.T) {
	f := func(seed int64, pagesRaw uint8) bool {
		p := TinySite()
		p.Pages = int(pagesRaw%50) + 2
		s, err := Generate(p, stats.NewRNG(seed))
		if err != nil {
			return false
		}
		for i := range s.Docs {
			d := &s.Docs[i]
			seen := map[DocID]bool{}
			for _, l := range d.Links {
				if l == d.ID || seen[l] {
					return false
				}
				seen[l] = true
			}
			seenE := map[DocID]bool{}
			for _, e := range d.Embedded {
				if seenE[e] {
					return false
				}
				seenE[e] = true
			}
		}
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
