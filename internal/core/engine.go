// Package core is the online form of the paper's two protocols — the
// library a production server embeds, as opposed to the trace-driven
// simulators used for evaluation.
//
// Engine implements speculative service (§3): it observes the server's
// request stream as it happens, maintains the document-dependency estimate
// P* with the §3.4 aging mechanism, and answers "what should be sent along
// with this document" — as documents to push, as prefetch hints, or as the
// hybrid of both.
//
// Replicator implements demand-based dissemination (§2): it tracks document
// popularity online, classifies documents, fits the exponential popularity
// model, and produces replica sets and per-server storage allocations for
// service proxies.
//
// Both types are safe for concurrent use. The engine's decision path
// (Speculate/Hints/Split and their *Into variants) is lock-free: decisions
// read an immutable {frozen matrix, policy, size cache} snapshot published
// through an atomic pointer, and Record appends to striped shard buffers,
// so concurrent requests contend on nothing but their own shard.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"specweb/internal/checkpoint"
	"specweb/internal/estguard"
	"specweb/internal/markov"
	"specweb/internal/obs"
	"specweb/internal/speculation"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// EngineConfig parameterizes the online speculation engine.
type EngineConfig struct {
	// Window and StrideTimeout are T_w and the stride bound of §3.2.
	Window        time.Duration
	StrideTimeout time.Duration
	// MinOccurrences and Smoothing control estimate robustness (see
	// markov.EstimateConfig).
	MinOccurrences int
	Smoothing      float64
	// DecayPerDay is the §3.4 aging factor applied at each refresh.
	DecayPerDay float64
	// RefreshEvery is how often the dependency estimate is re-snapshotted
	// (the paper's UpdateCycle; its baseline is one day).
	RefreshEvery time.Duration

	// Policy knobs.
	Tp      float64
	TopK    int   // when > 0, top-K selection instead of thresholding
	MaxSize int64 // 0 = ∞
	// EmbedThreshold splits hybrid responses: candidates at or above it
	// are pushed, the rest hinted.
	EmbedThreshold float64

	// RecordShards overrides the number of striped ingestion buffers
	// (rounded up to a power of two); 0 sizes them from GOMAXPROCS.
	RecordShards int

	// MaxRows and RowTopK, when either is positive, select the
	// memory-bounded streaming estimator instead of the exact one: at most
	// MaxRows documents tracked (popularity-ranked admission) with at most
	// RowTopK successors each (per-row space-saving). Whichever of the two
	// is zero takes markov.DefaultBounded's value. Both zero (the default)
	// keeps the exact estimator — the reference implementation the bounded
	// path is conformance-tested against.
	MaxRows int
	RowTopK int

	// Guard, when non-nil, installs the estguard robustness layer on the
	// refresh path: quarantined clients' transitions divert to a
	// side-ledger instead of P[i,j], per-row trust damps sparse or
	// poisoned rows before the freeze, drift can trigger an early
	// re-freeze, and candidate snapshots that would regress speculation
	// confidence past the guard's bound are rejected in favor of the
	// last-good frozen matrix.
	Guard *estguard.Guard

	// Feedback, when non-nil alongside Guard, supplies the attribution
	// ledger's cumulative delivered/consumed/wasted counts so snapshot
	// validation can calibrate its bound against realized interception.
	Feedback func() (delivered, consumed, wasted int64)

	// Checkpoint, when non-nil, persists the engine's trained state: every
	// accepted freeze writes a durable frame (the frozen matrix, the knobs
	// in force, and the guard's client/judge summaries), and WarmStart can
	// republish a decoded frame after a crash so interception survives the
	// restart. See internal/checkpoint and DESIGN §13.
	Checkpoint *checkpoint.Store

	// Metrics selects the registry the engine's metrics register in;
	// nil means the process-wide obs.Default.
	Metrics *obs.Registry
}

// DefaultEngineConfig mirrors the paper's baseline with a moderate
// threshold.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{
		Window:         5 * time.Second,
		StrideTimeout:  5 * time.Second,
		MinOccurrences: 5,
		Smoothing:      2,
		DecayPerDay:    0.97,
		RefreshEvery:   24 * time.Hour,
		Tp:             0.25,
		EmbedThreshold: 0.95,
	}
}

// Validate reports configuration errors.
func (c *EngineConfig) Validate() error {
	if c.Window <= 0 {
		return fmt.Errorf("core: Window must be positive, got %v", c.Window)
	}
	if c.RefreshEvery <= 0 {
		return fmt.Errorf("core: RefreshEvery must be positive, got %v", c.RefreshEvery)
	}
	if c.DecayPerDay <= 0 || c.DecayPerDay > 1 {
		return fmt.Errorf("core: DecayPerDay %v outside (0,1]", c.DecayPerDay)
	}
	if c.Tp < 0 || c.Tp > 1 {
		return fmt.Errorf("core: Tp %v outside [0,1]", c.Tp)
	}
	if c.RecordShards < 0 {
		return fmt.Errorf("core: RecordShards %d negative", c.RecordShards)
	}
	if c.MaxRows < 0 {
		return fmt.Errorf("core: MaxRows %d negative", c.MaxRows)
	}
	if c.RowTopK < 0 {
		return fmt.Errorf("core: RowTopK %d negative", c.RowTopK)
	}
	return nil
}

// bounded resolves the estimator selection: enabled when either cap is
// set, with the other defaulted. Shared by NewEngine and StateFingerprint
// so the fingerprint always reflects the caps actually in force.
func (c *EngineConfig) bounded() (markov.BoundedConfig, bool) {
	if c.MaxRows <= 0 && c.RowTopK <= 0 {
		return markov.BoundedConfig{}, false
	}
	b := markov.BoundedConfig{MaxRows: c.MaxRows, RowTopK: c.RowTopK}
	d := markov.DefaultBounded()
	if b.MaxRows <= 0 {
		b.MaxRows = d.MaxRows
	}
	if b.RowTopK <= 0 {
		b.RowTopK = d.RowTopK
	}
	return b, true
}

// SizeFunc reports a document's size in bytes (and whether it exists).
// Engines consult it for the MaxSize provision.
type SizeFunc func(webgraph.DocID) (int64, bool)

// snapshot is the engine's immutable read-path state: one frozen matrix,
// the policy compiled over it with the knobs in force, and the size cache
// resolved at publish time so decisions never call back into the store.
// A new snapshot is published on every refresh and every knob change;
// readers load it once per decision and never take a lock.
type snapshot struct {
	frozen *markov.Frozen
	policy speculation.Policy
	// sizes caches SizeFunc results for every successor in frozen;
	// nil when the engine has no SizeFunc. Docs the SizeFunc does not
	// know are absent (treated as size-unknown, never filtered).
	sizes map[webgraph.DocID]int64

	tp      float64
	embed   float64
	maxSize int64
	pairs   int
	docs    int

	// estStats is the estimator's footprint/eviction ledger captured at
	// the refresh that produced this snapshot; nil on exact-estimator
	// engines so Stats payloads stay byte-identical to pre-bounding
	// builds. Cached here so Stats() stays lock-free.
	estStats *markov.EstimatorStats
}

// recordShard is one striped ingestion buffer. The padding keeps adjacent
// shards on separate cache lines so uncontended shard locks do not falsely
// share.
type recordShard struct {
	mu   sync.Mutex
	reqs []trace.Request
	_    [64]byte
}

// Engine is the online speculative-service engine.
type Engine struct {
	cfg  EngineConfig
	size SizeFunc
	met  *engineMetrics

	// snap is the RCU-style published decision state.
	snap atomic.Pointer[snapshot]

	// Ingestion: Record hashes the client onto a shard and appends under
	// that shard's lock only; the refresh cycle drains and merges all
	// shards under mu.
	shards    []recordShard
	shardMask uint32

	recorded    atomic.Int64
	lastRefresh atomic.Int64 // unix nanos; 0 = never
	started     atomic.Bool

	// Estimator-hardening counters (all zero without a Guard).
	refreshes      atomic.Int64
	earlyRefreshes atomic.Int64
	rejectedSnaps  atomic.Int64
	quarReqs       atomic.Int64
	driftChecks    atomic.Int64 // rate-limits DriftScore on the record path

	deltaFreezes atomic.Int64

	// mu serializes the write path: refreshes (drain + AddDay + publish)
	// and knob changes (republish). The read path never takes it.
	mu         sync.Mutex
	est        markov.Estimator // exact (*markov.Aging) or bounded (*markov.Bounded)
	quarantine markov.Estimator // side-ledger for quarantined transitions; nil without a Guard
	carry      *trace.Trace     // open strides carried across refreshes
	// deltaBase records whether the currently published frozen matrix was
	// compiled directly from est's previous Snapshot — the precondition
	// for patching only dirty rows into it. Trust damping, snapshot
	// rejection, and warm starts all publish something else, so they clear
	// it and the next refresh freezes in full.
	deltaBase bool
	// lastEstStats is the bounded estimator's ledger captured at the most
	// recent refresh (nil on exact engines); installLocked copies it into
	// the published snapshot for lock-free Stats.
	lastEstStats *markov.EstimatorStats
}

// engineMetrics are the engine's observability series. Decision counters
// share one family, split by outcome, so the speculative "what happened
// to each candidate above/below T_p" breakdown is one Prometheus query.
type engineMetrics struct {
	recorded         *obs.Counter
	refreshes        *obs.Counter
	earlyRefreshes   *obs.Counter
	rejectedSnaps    *obs.Counter
	push             *obs.Counter
	hint             *obs.Counter
	belowThreshold   *obs.Counter
	digestSuppressed *obs.Counter
	deltaFreezes     *obs.Counter
	pairs            *obs.Gauge
	docs             *obs.Gauge
	estMemory        *obs.Gauge
	estTrackedPairs  *obs.Gauge
	estEvictedPairs  *obs.Gauge
	estEvictedRows   *obs.Gauge
	estErrorBound    *obs.Gauge
}

func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	const decisions = "specweb_engine_decisions_total"
	const decisionsHelp = "Speculation candidate decisions by outcome."
	return &engineMetrics{
		recorded:  reg.Counter("specweb_engine_recorded_total", "Client requests observed by the engine.", nil),
		refreshes: reg.Counter("specweb_engine_refreshes_total", "Dependency-matrix update cycles (the paper's UpdateCycle).", nil),
		earlyRefreshes: reg.Counter("specweb_engine_early_refreshes_total",
			"Update cycles triggered early by estimator drift.", nil),
		rejectedSnaps: reg.Counter("specweb_engine_snapshots_rejected_total",
			"Candidate snapshots rejected by the guard; last-good kept.", nil),
		push:             reg.Counter(decisions, decisionsHelp, obs.Labels{"decision": "push"}),
		hint:             reg.Counter(decisions, decisionsHelp, obs.Labels{"decision": "hint"}),
		belowThreshold:   reg.Counter(decisions, decisionsHelp, obs.Labels{"decision": "below_threshold"}),
		digestSuppressed: reg.Counter(decisions, decisionsHelp, obs.Labels{"decision": "digest_suppressed"}),
		deltaFreezes: reg.Counter("specweb_engine_delta_freezes_total",
			"Refreshes that patched dirty rows into the previous frozen matrix instead of rebuilding it.", nil),
		pairs: reg.Gauge("specweb_engine_pairs", "Dependency pairs in the current P* estimate.", nil),
		docs:  reg.Gauge("specweb_engine_docs", "Documents with at least one successor in P*.", nil),
		estMemory: reg.Gauge("specweb_estimator_memory_bytes",
			"Analytic live footprint of the dependency estimator.", nil),
		estTrackedPairs: reg.Gauge("specweb_estimator_tracked_pairs",
			"Dependency pairs currently tracked by the estimator.", nil),
		estEvictedPairs: reg.Gauge("specweb_estimator_evicted_pairs_total",
			"Cumulative pairs evicted by the bounded estimator's space-saving store.", nil),
		estEvictedRows: reg.Gauge("specweb_estimator_evicted_rows_total",
			"Cumulative rows displaced by the bounded estimator's admission policy.", nil),
		estErrorBound: reg.Gauge("specweb_estimator_error_bound",
			"Largest per-entry space-saving overcount currently tracked.", nil),
	}
}

// shardCount picks the stripe width: enough shards that concurrent clients
// rarely collide, bounded so the refresh drain stays cheap.
func shardCount(configured int) int {
	n := configured
	if n <= 0 {
		n = runtime.GOMAXPROCS(0) * 2
	}
	if n < 4 {
		n = 4
	}
	if n > 128 {
		n = 128
	}
	// Round up to a power of two so the shard pick is a mask, not a mod.
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewEngine builds an engine. size may be nil when MaxSize is unused.
func NewEngine(cfg EngineConfig, size SizeFunc) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	est := markov.EstimateConfig{
		Window:         cfg.Window,
		StrideTimeout:  cfg.StrideTimeout,
		MinOccurrences: cfg.MinOccurrences,
		Smoothing:      cfg.Smoothing,
	}
	// DecayPerDay is specified per day; the aging estimator decays once
	// per refresh, so scale the factor to the configured cadence.
	decay := math.Pow(cfg.DecayPerDay, cfg.RefreshEvery.Hours()/24)
	if decay > 1 {
		decay = 1
	}
	// newEst builds the configured estimator: exact by default, the
	// memory-bounded streaming one when caps are set. Both the clean
	// estimate and the quarantined side-ledger use the same constructor so
	// their occurrence counts stay directly comparable for trust scoring.
	bcfg, boundedEst := cfg.bounded()
	newEst := func() markov.Estimator {
		if boundedEst {
			b := markov.NewBounded(decay, est, bcfg)
			b.Transitive = true // the engine speculates on P*, per the baseline
			return b
		}
		ag := markov.NewAging(decay, est)
		ag.Transitive = true
		return ag
	}
	n := shardCount(cfg.RecordShards)
	e := &Engine{
		cfg:       cfg,
		size:      size,
		met:       newEngineMetrics(cfg.Metrics),
		shards:    make([]recordShard, n),
		shardMask: uint32(n - 1),
		est:       newEst(),
		carry:     &trace.Trace{},
	}
	if cfg.Guard != nil {
		// The quarantined side-ledger ages on the same cadence and with
		// the same windows as the clean estimate.
		e.quarantine = newEst()
	}
	e.installLocked(markov.Freeze(markov.NewMatrix()), nil)
	return e, nil
}

// shardOf hashes a client onto its stripe (FNV-1a, allocation-free).
func shardOf(c trace.ClientID) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(c); i++ {
		h = (h ^ uint32(c[i])) * 16777619
	}
	return h
}

// Record observes one client-initiated request. Times should be
// non-decreasing; a refresh happens automatically when RefreshEvery has
// elapsed since the last one. Concurrent requests from different clients
// land on different shard buffers and never contend.
func (e *Engine) Record(client trace.ClientID, doc webgraph.DocID, at time.Time) {
	if !e.started.Load() {
		e.mu.Lock()
		if !e.started.Load() {
			e.lastRefresh.Store(at.UnixNano())
			e.started.Store(true)
		}
		e.mu.Unlock()
	}
	var size int64
	if e.size != nil {
		if s, ok := e.size(doc); ok {
			size = s
		}
	}
	sh := &e.shards[shardOf(client)&e.shardMask]
	sh.mu.Lock()
	sh.reqs = append(sh.reqs, trace.Request{
		Time: at, Client: client, Doc: doc, Size: size,
	})
	sh.mu.Unlock()
	e.recorded.Add(1)
	e.met.recorded.Inc()
	if g := e.cfg.Guard; g != nil {
		g.NoteRequest(doc)
	}
	if at.Sub(e.lastRefreshTime()) >= e.cfg.RefreshEvery {
		e.maybeRefresh(at)
	} else if e.cfg.Guard != nil {
		e.maybeEarlyRefresh(at)
	}
}

// maybeEarlyRefresh re-freezes before the regular deadline when the guard
// reports real drift — a flash crowd or diurnal shift has made the frozen
// snapshot stale. Two gates keep this cheap and bounded: the drift score
// is only computed every 64th recorded request, and never before
// EarlyRefreshFraction of the refresh interval has elapsed (so a
// deterministic benchmark that freezes its virtual clock after warmup can
// never trigger a mid-measurement refresh).
func (e *Engine) maybeEarlyRefresh(at time.Time) {
	g := e.cfg.Guard
	minElapsed := time.Duration(g.EarlyRefreshFraction() * float64(e.cfg.RefreshEvery))
	if at.Sub(e.lastRefreshTime()) < minElapsed {
		return
	}
	if e.driftChecks.Add(1)&63 != 0 {
		return
	}
	if g.DriftScore() < g.DriftThreshold() {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if at.Sub(e.lastRefreshTime()) < minElapsed {
		return
	}
	if g.DriftScore() < g.DriftThreshold() {
		return
	}
	e.earlyRefreshes.Add(1)
	e.met.earlyRefreshes.Inc()
	e.refreshLocked(at)
}

func (e *Engine) lastRefreshTime() time.Time {
	ns := e.lastRefresh.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// maybeRefresh re-checks the refresh deadline under the write lock, so a
// burst of requests crossing the boundary triggers exactly one cycle.
func (e *Engine) maybeRefresh(at time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if at.Sub(e.lastRefreshTime()) < e.cfg.RefreshEvery {
		return
	}
	e.refreshLocked(at)
}

// Refresh folds the buffered requests into the aged estimate immediately.
func (e *Engine) Refresh(at time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.refreshLocked(at)
}

func (e *Engine) refreshLocked(at time.Time) {
	// Drain the shard buffers into one trace, merging with the open
	// strides carried from the previous refresh. Per-client order is
	// preserved: a client maps to exactly one shard, and the sort below
	// is stable.
	buf := e.carry
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		buf.Requests = append(buf.Requests, sh.reqs...)
		if cap(sh.reqs) > 1<<16 {
			sh.reqs = nil // don't pin a giant buffer across quiet cycles
		} else {
			sh.reqs = sh.reqs[:0]
		}
		sh.mu.Unlock()
	}
	buf.SortByTime()
	// Strides still open at the refresh instant (their last request is
	// within StrideTimeout of now) are carried into the next buffer
	// rather than finalized — otherwise a refresh landing mid-stride
	// would permanently split the dependency pair across buffers.
	flush, carry := splitOpenStrides(buf, at, e.cfg.StrideTimeout)

	// Estimator hardening: classify clients over the sorted flush and
	// divert quarantined transitions into the side-ledger. The side-ledger
	// ages every cycle (even with nothing quarantined this window) so its
	// occurrence counts decay in lockstep with the clean estimate.
	g := e.cfg.Guard
	if g != nil {
		clean, quar := g.Partition(flush)
		if n := int64(quar.Len()); n > 0 {
			e.quarReqs.Add(n)
		}
		if err := e.quarantine.AddDay(quar); err != nil {
			panic(fmt.Sprintf("core: refresh quarantine ledger: %v", err))
		}
		flush = clean
	}

	// AddDay never fails here: the config was validated at construction.
	if err := e.est.AddDay(flush); err != nil {
		panic(fmt.Sprintf("core: refresh: %v", err))
	}
	e.carry = carry
	e.lastRefresh.Store(at.UnixNano())
	e.refreshes.Add(1)
	e.met.refreshes.Inc()
	e.captureEstStatsLocked()

	if g == nil {
		m := e.est.Snapshot()
		var frozen *markov.Frozen
		// Delta-freeze: when the estimator can bound which rows changed
		// and the published frozen matrix was compiled from its previous
		// snapshot, patch only the dirty rows — byte-identical to a full
		// Freeze (see markov.DeltaFreeze), just cheaper.
		if dirty, ok := e.est.DirtyDocs(); ok && e.deltaBase {
			frozen = markov.DeltaFreeze(e.snap.Load().frozen, m, dirty)
			e.deltaFreezes.Add(1)
			e.met.deltaFreezes.Inc()
		} else {
			frozen = markov.Freeze(m)
		}
		e.deltaBase = true
		e.installLocked(frozen, e.snapshotSizes(frozen))
		e.met.pairs.Set(float64(frozen.NumPairs()))
		e.met.docs.Set(float64(frozen.NumRows()))
		e.saveCheckpointLocked(at)
		return
	}

	// Confidence damping: scale each candidate row by its trust — sample
	// support × clean fraction against the side-ledger — so sparse or
	// poisoned rows sink below the push/hint thresholds instead of
	// driving speculation. The damped matrix is no longer the estimator's
	// own snapshot, so delta-freezing has no valid base after this.
	m := e.est.Snapshot()
	for _, i := range m.Docs() {
		t := g.RowTrust(e.est.Occurrences(i), e.quarantine.Occurrences(i))
		m.ScaleRow(i, t)
	}
	frozen := markov.Freeze(m)
	e.deltaBase = false

	// Snapshot validation: a candidate whose predicted interception
	// regresses past the guard's bound is rejected, and the last-good
	// frozen matrix keeps serving — the estimator's analogue of the
	// Replicator's last-good-fit fallback. The aging state still advanced
	// above, so decay can repair the estimate on later cycles.
	var fb estguard.Feedback
	if e.cfg.Feedback != nil {
		fb.Delivered, fb.Consumed, fb.Wasted = e.cfg.Feedback()
	}
	if !g.AcceptSnapshot(frozen, e.cfg.Tp, fb) {
		e.rejectedSnaps.Add(1)
		e.met.rejectedSnaps.Inc()
		return
	}
	e.installLocked(frozen, e.snapshotSizes(frozen))
	e.met.pairs.Set(float64(frozen.NumPairs()))
	e.met.docs.Set(float64(frozen.NumRows()))
	e.saveCheckpointLocked(at)
}

// captureEstStatsLocked records the estimator's footprint and eviction
// ledger after an AddDay, on bounded engines only — exact engines keep
// the field nil so their Stats payloads are byte-identical to
// pre-bounding builds. Also publishes the estimator gauge series.
func (e *Engine) captureEstStatsLocked() {
	if _, ok := e.cfg.bounded(); !ok {
		return
	}
	st := e.est.EstimatorStats()
	e.lastEstStats = &st
	e.met.estMemory.Set(float64(st.MemoryBytes))
	e.met.estTrackedPairs.Set(float64(st.TrackedPairs))
	e.met.estEvictedPairs.Set(float64(st.EvictedPairs))
	e.met.estEvictedRows.Set(float64(st.EvictedRows))
	e.met.estErrorBound.Set(st.ErrorBound)
}

// snapshotSizes resolves the SizeFunc once per distinct successor at
// publish time, so the decision path reads a plain map instead of calling
// into the store.
func (e *Engine) snapshotSizes(f *markov.Frozen) map[webgraph.DocID]int64 {
	if e.size == nil {
		return nil
	}
	sizes := make(map[webgraph.DocID]int64)
	f.RangeRows(func(_ webgraph.DocID, row []markov.Successor) bool {
		for _, s := range row {
			if _, seen := sizes[s.Doc]; seen {
				continue
			}
			if sz, ok := e.size(s.Doc); ok {
				sizes[s.Doc] = sz
			}
		}
		return true
	})
	return sizes
}

// installLocked compiles the policy over frozen with the knobs currently
// in cfg and publishes the combined snapshot. Callers hold mu (or are the
// constructor).
func (e *Engine) installLocked(frozen *markov.Frozen, sizes map[webgraph.DocID]int64) {
	var pol speculation.Policy
	if e.cfg.TopK > 0 {
		pol = speculation.TopK{M: frozen, K: e.cfg.TopK, MinP: e.cfg.Tp}
	} else {
		pol = speculation.Threshold{M: frozen, Tp: e.cfg.Tp}
	}
	e.snap.Store(&snapshot{
		frozen:   frozen,
		policy:   pol,
		sizes:    sizes,
		tp:       e.cfg.Tp,
		embed:    e.cfg.EmbedThreshold,
		maxSize:  e.cfg.MaxSize,
		pairs:    frozen.NumPairs(),
		docs:     frozen.NumRows(),
		estStats: e.lastEstStats,
	})
}

// splitOpenStrides partitions buf into requests safe to finalize and the
// per-client trailing strides that may still continue past `at`.
func splitOpenStrides(buf *trace.Trace, at time.Time, strideTimeout time.Duration) (flush, carry *trace.Trace) {
	flush = &trace.Trace{}
	carry = &trace.Trace{}
	if strideTimeout <= 0 {
		flush.Requests = buf.Requests
		return flush, carry
	}
	for _, reqs := range buf.ByClient() {
		last := reqs[len(reqs)-1].Time
		if at.Sub(last) >= strideTimeout {
			flush.Requests = append(flush.Requests, reqs...)
			continue
		}
		// Walk back to the start of the trailing stride.
		cut := len(reqs) - 1
		for cut > 0 && reqs[cut].Time.Sub(reqs[cut-1].Time) < strideTimeout {
			cut--
		}
		flush.Requests = append(flush.Requests, reqs[:cut]...)
		carry.Requests = append(carry.Requests, reqs[cut:]...)
	}
	flush.SortByTime()
	carry.SortByTime()
	return flush, carry
}

// Decision is a reusable buffer for one request's speculation outcome.
// Acquire one from the pool, pass it to the *Into decision methods, and
// Release it when the response has been written; the backing arrays are
// recycled, which is what keeps the decision path allocation-free.
type Decision struct {
	Push []webgraph.DocID
	// PushP holds, parallel to Push, the estimated probability that
	// drove each push — what the attribution ledger records so waste can
	// later be read against the engine's own confidence.
	PushP []float64
	Hints []speculation.Hint
}

// Reset empties the buffers, keeping capacity.
func (d *Decision) Reset() {
	d.Push = d.Push[:0]
	d.PushP = d.PushP[:0]
	d.Hints = d.Hints[:0]
}

var decisionPool = sync.Pool{New: func() any { return new(Decision) }}

// AcquireDecision returns a cleared Decision from the shared pool.
func AcquireDecision() *Decision {
	return decisionPool.Get().(*Decision)
}

// ReleaseDecision resets d and returns it to the pool. The caller must not
// retain d.Push or d.Hints afterwards.
func ReleaseDecision(d *Decision) {
	if d == nil {
		return
	}
	d.Reset()
	decisionPool.Put(d)
}

// decideMode selects what decide appends where.
type decideMode int

const (
	modePush decideMode = iota
	modeHints
	modeSplit
)

// decide evaluates the policy for doc against snap and appends the outcome
// to d: pushes to d.Push, hints to d.Hints (modeSplit partitions at the
// embed threshold). It applies the MaxSize provision from the snapshot's
// size cache and the cooperative-digest filter, counting the candidates
// the digest suppressed and the successors the policy left below T_p.
// Lock-free and allocation-free given warm buffers.
func (e *Engine) decide(snap *snapshot, d *Decision, doc webgraph.DocID, have map[webgraph.DocID]bool, mode decideMode) {
	cands := snap.policy.Candidates(doc)
	kept := 0
	for _, c := range cands {
		if snap.maxSize > 0 {
			if sz, ok := snap.sizes[c.Doc]; ok && sz > snap.maxSize {
				continue
			}
		}
		kept++
		if c.Doc == doc {
			continue
		}
		if have[c.Doc] {
			e.met.digestSuppressed.Inc()
			continue
		}
		switch mode {
		case modePush:
			d.Push = append(d.Push, c.Doc)
			d.PushP = append(d.PushP, c.P)
		case modeHints:
			d.Hints = append(d.Hints, speculation.Hint{Doc: c.Doc, P: c.P, Size: snap.sizes[c.Doc]})
		case modeSplit:
			if c.P >= snap.embed {
				d.Push = append(d.Push, c.Doc)
				d.PushP = append(d.PushP, c.P)
			} else {
				d.Hints = append(d.Hints, speculation.Hint{Doc: c.Doc, P: c.P, Size: snap.sizes[c.Doc]})
			}
		}
	}
	if n := snap.frozen.RowLen(doc); n > kept {
		e.met.belowThreshold.Add(int64(n - kept))
	}
}

// SpeculateInto fills d.Push with the documents to push along with doc,
// excluding any the caller knows the client has (the cooperative digest;
// may be nil). It takes no locks and, with a pooled Decision, allocates
// nothing.
func (e *Engine) SpeculateInto(d *Decision, doc webgraph.DocID, have map[webgraph.DocID]bool) {
	d.Reset()
	e.decide(e.snap.Load(), d, doc, have, modePush)
	e.met.push.Add(int64(len(d.Push)))
}

// HintsInto fills d.Hints with the server-assisted prefetching list for
// doc. Lock-free; allocation-free with a pooled Decision.
func (e *Engine) HintsInto(d *Decision, doc webgraph.DocID, have map[webgraph.DocID]bool) {
	d.Reset()
	e.decide(e.snap.Load(), d, doc, have, modeHints)
	e.met.hint.Add(int64(len(d.Hints)))
}

// SplitInto fills d with the hybrid response for doc: candidates at or
// above EmbedThreshold in d.Push, the rest in d.Hints. Lock-free;
// allocation-free with a pooled Decision.
func (e *Engine) SplitInto(d *Decision, doc webgraph.DocID, have map[webgraph.DocID]bool) {
	d.Reset()
	e.decide(e.snap.Load(), d, doc, have, modeSplit)
	e.met.push.Add(int64(len(d.Push)))
	e.met.hint.Add(int64(len(d.Hints)))
}

// Speculate returns the documents to push along with doc, excluding any the
// caller knows the client has (the cooperative digest; may be nil). The
// returned slice is owned by the caller; servers on the hot path should
// prefer SpeculateInto with a pooled Decision.
func (e *Engine) Speculate(doc webgraph.DocID, have map[webgraph.DocID]bool) []webgraph.DocID {
	var d Decision
	e.SpeculateInto(&d, doc, have)
	return d.Push
}

// Hints returns the server-assisted prefetching list for doc.
func (e *Engine) Hints(doc webgraph.DocID, have map[webgraph.DocID]bool) []speculation.Hint {
	var d Decision
	e.HintsInto(&d, doc, have)
	return d.Hints
}

// Split returns the hybrid response for doc: candidates at or above
// EmbedThreshold to push, the rest as hints.
func (e *Engine) Split(doc webgraph.DocID, have map[webgraph.DocID]bool) (push []webgraph.DocID, hints []speculation.Hint) {
	var d Decision
	e.SplitInto(&d, doc, have)
	return d.Push, d.Hints
}

// SetTp replaces the speculation threshold at runtime — the §3.4 knob an
// overload governor turns as load climbs. The same range check as
// Config.Validate applies: Tp outside [0,1] is rejected. The change is
// published as a fresh snapshot over the current frozen matrix, so
// in-flight decisions see either the old or the new threshold, never a
// mix.
func (e *Engine) SetTp(tp float64) error {
	if tp < 0 || tp > 1 {
		return fmt.Errorf("core: Tp %v outside [0,1]", tp)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg.Tp = tp
	prev := e.snap.Load()
	e.installLocked(prev.frozen, prev.sizes)
	return nil
}

// SetLimits replaces the MaxSize and TopK provisions at runtime (0
// restores "unbounded" / "threshold-only" respectively); negatives are
// rejected.
func (e *Engine) SetLimits(maxSize int64, topK int) error {
	if maxSize < 0 {
		return fmt.Errorf("core: MaxSize %d negative", maxSize)
	}
	if topK < 0 {
		return fmt.Errorf("core: TopK %d negative", topK)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg.MaxSize = maxSize
	e.cfg.TopK = topK
	prev := e.snap.Load()
	e.installLocked(prev.frozen, prev.sizes)
	return nil
}

// Tp reports the threshold currently in force.
func (e *Engine) Tp() float64 {
	return e.snap.Load().tp
}

// Stats reports the engine's observable state. The estimator-hardening
// counters are omitted from JSON while zero, so stats payloads are
// byte-identical to pre-guard builds when the feature is off.
type Stats struct {
	Recorded   int64
	Pairs      int
	Docs       int
	LastUpdate time.Time

	Refreshes           int64 `json:",omitempty"`
	EarlyRefreshes      int64 `json:",omitempty"`
	SnapshotsRejected   int64 `json:",omitempty"`
	QuarantinedRequests int64 `json:",omitempty"`

	// DeltaFreezes counts refreshes that patched dirty rows into the
	// previous frozen matrix instead of rebuilding it.
	DeltaFreezes int64 `json:",omitempty"`

	// Estimator is the bounded estimator's footprint and eviction ledger
	// as of the last refresh; nil (and omitted) on exact-estimator
	// engines, so stats payloads are byte-identical to pre-bounding
	// builds when the feature is off.
	Estimator *markov.EstimatorStats `json:",omitempty"`

	// Checkpoint is the durability tally; nil (and omitted) when the
	// engine runs without a checkpoint store, so stats payloads are
	// byte-identical to pre-checkpoint builds when the feature is off.
	Checkpoint *checkpoint.Counters `json:",omitempty"`
}

// Stats returns a snapshot of the engine state.
func (e *Engine) Stats() Stats {
	snap := e.snap.Load()
	s := Stats{
		Recorded:            e.recorded.Load(),
		Pairs:               snap.pairs,
		Docs:                snap.docs,
		LastUpdate:          e.lastRefreshTime(),
		Refreshes:           e.refreshes.Load(),
		EarlyRefreshes:      e.earlyRefreshes.Load(),
		SnapshotsRejected:   e.rejectedSnaps.Load(),
		QuarantinedRequests: e.quarReqs.Load(),
		DeltaFreezes:        e.deltaFreezes.Load(),
		Estimator:           snap.estStats,
	}
	if st := e.cfg.Checkpoint; st != nil {
		c := st.Counters()
		s.Checkpoint = &c
	}
	return s
}

// ClientStatus reports the guard's classification for a client. Without a
// guard every client is Human. Lock-free; safe on the serve hot path.
func (e *Engine) ClientStatus(client trace.ClientID) (estguard.Status, string) {
	if e.cfg.Guard == nil {
		return estguard.Human, ""
	}
	return e.cfg.Guard.Status(client)
}

// Guard returns the engine's estimator guard, or nil when hardening is
// not installed.
func (e *Engine) Guard() *estguard.Guard { return e.cfg.Guard }
