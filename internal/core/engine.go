// Package core is the online form of the paper's two protocols — the
// library a production server embeds, as opposed to the trace-driven
// simulators used for evaluation.
//
// Engine implements speculative service (§3): it observes the server's
// request stream as it happens, maintains the document-dependency estimate
// P* with the §3.4 aging mechanism, and answers "what should be sent along
// with this document" — as documents to push, as prefetch hints, or as the
// hybrid of both.
//
// Replicator implements demand-based dissemination (§2): it tracks document
// popularity online, classifies documents, fits the exponential popularity
// model, and produces replica sets and per-server storage allocations for
// service proxies.
//
// Both types are safe for concurrent use.
package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"specweb/internal/markov"
	"specweb/internal/obs"
	"specweb/internal/speculation"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// EngineConfig parameterizes the online speculation engine.
type EngineConfig struct {
	// Window and StrideTimeout are T_w and the stride bound of §3.2.
	Window        time.Duration
	StrideTimeout time.Duration
	// MinOccurrences and Smoothing control estimate robustness (see
	// markov.EstimateConfig).
	MinOccurrences int
	Smoothing      float64
	// DecayPerDay is the §3.4 aging factor applied at each refresh.
	DecayPerDay float64
	// RefreshEvery is how often the dependency estimate is re-snapshotted
	// (the paper's UpdateCycle; its baseline is one day).
	RefreshEvery time.Duration

	// Policy knobs.
	Tp      float64
	TopK    int   // when > 0, top-K selection instead of thresholding
	MaxSize int64 // 0 = ∞
	// EmbedThreshold splits hybrid responses: candidates at or above it
	// are pushed, the rest hinted.
	EmbedThreshold float64

	// Metrics selects the registry the engine's metrics register in;
	// nil means the process-wide obs.Default.
	Metrics *obs.Registry
}

// DefaultEngineConfig mirrors the paper's baseline with a moderate
// threshold.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{
		Window:         5 * time.Second,
		StrideTimeout:  5 * time.Second,
		MinOccurrences: 5,
		Smoothing:      2,
		DecayPerDay:    0.97,
		RefreshEvery:   24 * time.Hour,
		Tp:             0.25,
		EmbedThreshold: 0.95,
	}
}

// Validate reports configuration errors.
func (c *EngineConfig) Validate() error {
	if c.Window <= 0 {
		return fmt.Errorf("core: Window must be positive, got %v", c.Window)
	}
	if c.RefreshEvery <= 0 {
		return fmt.Errorf("core: RefreshEvery must be positive, got %v", c.RefreshEvery)
	}
	if c.DecayPerDay <= 0 || c.DecayPerDay > 1 {
		return fmt.Errorf("core: DecayPerDay %v outside (0,1]", c.DecayPerDay)
	}
	if c.Tp < 0 || c.Tp > 1 {
		return fmt.Errorf("core: Tp %v outside [0,1]", c.Tp)
	}
	return nil
}

// SizeFunc reports a document's size in bytes (and whether it exists).
// Engines consult it for the MaxSize provision.
type SizeFunc func(webgraph.DocID) (int64, bool)

// Engine is the online speculative-service engine.
type Engine struct {
	cfg  EngineConfig
	size SizeFunc
	met  *engineMetrics

	mu          sync.Mutex
	buffer      *trace.Trace // requests since the last refresh
	aging       *markov.Aging
	current     *markov.Matrix
	lastRefresh time.Time
	started     bool
	recorded    int64
}

// engineMetrics are the engine's observability series. Decision counters
// share one family, split by outcome, so the speculative "what happened
// to each candidate above/below T_p" breakdown is one Prometheus query.
type engineMetrics struct {
	recorded         *obs.Counter
	refreshes        *obs.Counter
	push             *obs.Counter
	hint             *obs.Counter
	belowThreshold   *obs.Counter
	digestSuppressed *obs.Counter
	pairs            *obs.Gauge
	docs             *obs.Gauge
}

func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	const decisions = "specweb_engine_decisions_total"
	const decisionsHelp = "Speculation candidate decisions by outcome."
	return &engineMetrics{
		recorded:         reg.Counter("specweb_engine_recorded_total", "Client requests observed by the engine.", nil),
		refreshes:        reg.Counter("specweb_engine_refreshes_total", "Dependency-matrix update cycles (the paper's UpdateCycle).", nil),
		push:             reg.Counter(decisions, decisionsHelp, obs.Labels{"decision": "push"}),
		hint:             reg.Counter(decisions, decisionsHelp, obs.Labels{"decision": "hint"}),
		belowThreshold:   reg.Counter(decisions, decisionsHelp, obs.Labels{"decision": "below_threshold"}),
		digestSuppressed: reg.Counter(decisions, decisionsHelp, obs.Labels{"decision": "digest_suppressed"}),
		pairs:            reg.Gauge("specweb_engine_pairs", "Dependency pairs in the current P* estimate.", nil),
		docs:             reg.Gauge("specweb_engine_docs", "Documents with at least one successor in P*.", nil),
	}
}

// NewEngine builds an engine. size may be nil when MaxSize is unused.
func NewEngine(cfg EngineConfig, size SizeFunc) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	est := markov.EstimateConfig{
		Window:         cfg.Window,
		StrideTimeout:  cfg.StrideTimeout,
		MinOccurrences: cfg.MinOccurrences,
		Smoothing:      cfg.Smoothing,
	}
	// DecayPerDay is specified per day; the aging estimator decays once
	// per refresh, so scale the factor to the configured cadence.
	decay := math.Pow(cfg.DecayPerDay, cfg.RefreshEvery.Hours()/24)
	if decay > 1 {
		decay = 1
	}
	ag := markov.NewAging(decay, est)
	ag.Transitive = true // the engine speculates on P*, per the baseline
	return &Engine{
		cfg:     cfg,
		size:    size,
		met:     newEngineMetrics(cfg.Metrics),
		buffer:  &trace.Trace{},
		aging:   ag,
		current: markov.NewMatrix(),
	}, nil
}

// Record observes one client-initiated request. Times should be
// non-decreasing; a refresh happens automatically when RefreshEvery has
// elapsed since the last one.
func (e *Engine) Record(client trace.ClientID, doc webgraph.DocID, at time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.started {
		e.lastRefresh = at
		e.started = true
	}
	var size int64
	if e.size != nil {
		if s, ok := e.size(doc); ok {
			size = s
		}
	}
	e.buffer.Requests = append(e.buffer.Requests, trace.Request{
		Time: at, Client: client, Doc: doc, Size: size,
	})
	e.recorded++
	e.met.recorded.Inc()
	if at.Sub(e.lastRefresh) >= e.cfg.RefreshEvery {
		e.refreshLocked(at)
	}
}

// Refresh folds the buffered requests into the aged estimate immediately.
func (e *Engine) Refresh(at time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.refreshLocked(at)
}

func (e *Engine) refreshLocked(at time.Time) {
	e.buffer.SortByTime()
	// Strides still open at the refresh instant (their last request is
	// within StrideTimeout of now) are carried into the next buffer
	// rather than finalized — otherwise a refresh landing mid-stride
	// would permanently split the dependency pair across buffers.
	flush, carry := splitOpenStrides(e.buffer, at, e.cfg.StrideTimeout)
	// AddDay never fails here: the config was validated at construction.
	if err := e.aging.AddDay(flush); err != nil {
		panic(fmt.Sprintf("core: refresh: %v", err))
	}
	e.current = e.aging.Snapshot()
	e.buffer = carry
	e.lastRefresh = at
	e.met.refreshes.Inc()
	e.met.pairs.Set(float64(e.current.NumPairs()))
	e.met.docs.Set(float64(e.current.NumRows()))
}

// splitOpenStrides partitions buf into requests safe to finalize and the
// per-client trailing strides that may still continue past `at`.
func splitOpenStrides(buf *trace.Trace, at time.Time, strideTimeout time.Duration) (flush, carry *trace.Trace) {
	flush = &trace.Trace{}
	carry = &trace.Trace{}
	if strideTimeout <= 0 {
		flush.Requests = buf.Requests
		return flush, carry
	}
	for _, reqs := range buf.ByClient() {
		last := reqs[len(reqs)-1].Time
		if at.Sub(last) >= strideTimeout {
			flush.Requests = append(flush.Requests, reqs...)
			continue
		}
		// Walk back to the start of the trailing stride.
		cut := len(reqs) - 1
		for cut > 0 && reqs[cut].Time.Sub(reqs[cut-1].Time) < strideTimeout {
			cut--
		}
		flush.Requests = append(flush.Requests, reqs[:cut]...)
		carry.Requests = append(carry.Requests, reqs[cut:]...)
	}
	flush.SortByTime()
	carry.SortByTime()
	return flush, carry
}

// selector builds the policy view over the current matrix. Callers hold the
// lock.
func (e *Engine) selectorLocked() *speculation.Selector {
	var pol speculation.Policy
	if e.cfg.TopK > 0 {
		pol = speculation.TopK{M: e.current, K: e.cfg.TopK, MinP: e.cfg.Tp}
	} else {
		pol = speculation.Threshold{M: e.current, Tp: e.cfg.Tp}
	}
	return &speculation.Selector{Policy: pol, Site: nil, MaxSize: 0}
}

// filterSize applies the MaxSize provision using the engine's SizeFunc
// (the speculation.Selector's own filter needs a *webgraph.Site, which an
// online server may not have).
func (e *Engine) filterSize(docs []markov.Successor) []markov.Successor {
	if e.cfg.MaxSize <= 0 || e.size == nil {
		return docs
	}
	out := docs[:0]
	for _, d := range docs {
		if s, ok := e.size(d.Doc); ok && s > e.cfg.MaxSize {
			continue
		}
		out = append(out, d)
	}
	return out
}

// candidatesLocked returns doc's speculation candidates with the
// cooperative-digest filter applied, counting the candidates the digest
// suppressed and the successors the policy left below T_p. Callers hold
// the lock.
func (e *Engine) candidatesLocked(doc webgraph.DocID, have map[webgraph.DocID]bool) []speculation.Hint {
	cands := e.filterSize(e.selectorLocked().Policy.Candidates(doc))
	if row := e.current.Row(doc); len(row) > len(cands) {
		e.met.belowThreshold.Add(int64(len(row) - len(cands)))
	}
	out := make([]speculation.Hint, 0, len(cands))
	for _, c := range cands {
		if c.Doc == doc {
			continue
		}
		if have[c.Doc] {
			e.met.digestSuppressed.Inc()
			continue
		}
		var size int64
		if e.size != nil {
			size, _ = e.size(c.Doc)
		}
		out = append(out, speculation.Hint{Doc: c.Doc, P: c.P, Size: size})
	}
	return out
}

// Speculate returns the documents to push along with doc, excluding any the
// caller knows the client has (the cooperative digest; may be nil).
func (e *Engine) Speculate(doc webgraph.DocID, have map[webgraph.DocID]bool) []webgraph.DocID {
	e.mu.Lock()
	defer e.mu.Unlock()
	cands := e.candidatesLocked(doc, have)
	out := make([]webgraph.DocID, 0, len(cands))
	for _, c := range cands {
		out = append(out, c.Doc)
	}
	e.met.push.Add(int64(len(out)))
	return out
}

// Hints returns the server-assisted prefetching list for doc.
func (e *Engine) Hints(doc webgraph.DocID, have map[webgraph.DocID]bool) []speculation.Hint {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := e.candidatesLocked(doc, have)
	e.met.hint.Add(int64(len(out)))
	return out
}

// Split returns the hybrid response for doc: candidates at or above
// EmbedThreshold to push, the rest as hints.
func (e *Engine) Split(doc webgraph.DocID, have map[webgraph.DocID]bool) (push []webgraph.DocID, hints []speculation.Hint) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, h := range e.candidatesLocked(doc, have) {
		if h.P >= e.cfg.EmbedThreshold {
			push = append(push, h.Doc)
		} else {
			hints = append(hints, h)
		}
	}
	e.met.push.Add(int64(len(push)))
	e.met.hint.Add(int64(len(hints)))
	return push, hints
}

// SetTp replaces the speculation threshold at runtime — the §3.4 knob an
// overload governor turns as load climbs. The same range check as
// Config.Validate applies: Tp outside [0,1] is rejected.
func (e *Engine) SetTp(tp float64) error {
	if tp < 0 || tp > 1 {
		return fmt.Errorf("core: Tp %v outside [0,1]", tp)
	}
	e.mu.Lock()
	e.cfg.Tp = tp
	e.mu.Unlock()
	return nil
}

// SetLimits replaces the MaxSize and TopK provisions at runtime (0
// restores "unbounded" / "threshold-only" respectively); negatives are
// rejected.
func (e *Engine) SetLimits(maxSize int64, topK int) error {
	if maxSize < 0 {
		return fmt.Errorf("core: MaxSize %d negative", maxSize)
	}
	if topK < 0 {
		return fmt.Errorf("core: TopK %d negative", topK)
	}
	e.mu.Lock()
	e.cfg.MaxSize = maxSize
	e.cfg.TopK = topK
	e.mu.Unlock()
	return nil
}

// Tp reports the threshold currently in force.
func (e *Engine) Tp() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cfg.Tp
}

// Stats reports the engine's observable state.
type Stats struct {
	Recorded   int64
	Pairs      int
	Docs       int
	LastUpdate time.Time
}

// Stats returns a snapshot of the engine state.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		Recorded:   e.recorded,
		Pairs:      e.current.NumPairs(),
		Docs:       e.current.NumRows(),
		LastUpdate: e.lastRefresh,
	}
}
