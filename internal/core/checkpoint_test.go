package core

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"specweb/internal/checkpoint"
	"specweb/internal/estguard"
	"specweb/internal/obs"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

func newCheckpointStore(t *testing.T, fp uint64) *checkpoint.Store {
	t.Helper()
	st, err := checkpoint.NewStore(checkpoint.StoreConfig{
		Dir: t.TempDir(), Fingerprint: fp, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestEngineCheckpointsOnAcceptedFreeze: every accepted refresh persists a
// frame; an engine without a store is unaffected.
func TestEngineCheckpointsOnAcceptedFreeze(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.Metrics = obs.NewRegistry()
	st := newCheckpointStore(t, cfg.StateFingerprint())
	cfg.Checkpoint = st
	e := newTestEngine(t, cfg)

	feedPattern(e, 10)
	if c := st.Counters(); c.Saved != 1 || c.SaveErrors != 0 {
		t.Fatalf("after one refresh: %+v", c)
	}
	e.Refresh(t0.Add(48 * time.Hour))
	if c := st.Counters(); c.Saved != 2 {
		t.Fatalf("after two refreshes: %+v", c)
	}
	stats := e.Stats()
	if stats.Checkpoint == nil || stats.Checkpoint.Saved != 2 {
		t.Fatalf("Stats must carry checkpoint counters: %+v", stats.Checkpoint)
	}
}

func TestEngineStatsOmitCheckpointWithoutStore(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.Metrics = obs.NewRegistry()
	e := newTestEngine(t, cfg)
	if e.Stats().Checkpoint != nil {
		t.Fatal("Stats.Checkpoint must stay nil without a store")
	}
}

// TestEngineWarmStartRoundTrip: checkpoint an engine, warm-start a fresh
// one from the decoded frame, and require identical decisions, identical
// stats, and a byte-identical re-export — the codec determinism
// acceptance criterion at the engine level.
func TestEngineWarmStartRoundTrip(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.Metrics = obs.NewRegistry()
	stA := newCheckpointStore(t, cfg.StateFingerprint())
	cfgA := cfg
	cfgA.Checkpoint = stA
	a := newTestEngine(t, cfgA)
	feedPattern(a, 10, 3)
	if err := a.SetTp(0.33); err != nil { // runtime knob must survive the trip
		t.Fatal(err)
	}

	// Restore at the instant the persisted matrix was estimated: WarmStart
	// rearms the refresh schedule at the restore time, so exports can only
	// be byte-identical when the two instants coincide (the restart
	// harness's virtual clock guarantees exactly this).
	at := a.Stats().LastUpdate
	if err := a.CheckpointNow(at); err != nil {
		t.Fatal(err)
	}
	snap, _, err := stA.Load()
	if err != nil || snap == nil {
		t.Fatalf("Load: %v %v", snap, err)
	}

	cfgB := cfg
	cfgB.Metrics = obs.NewRegistry()
	b := newTestEngine(t, cfgB)
	if err := b.WarmStart(snap, at); err != nil {
		t.Fatalf("WarmStart: %v", err)
	}

	sa, sb := a.Stats(), b.Stats()
	if sa.Pairs != sb.Pairs || sa.Docs != sb.Docs || sa.Recorded != sb.Recorded {
		t.Fatalf("stats diverged: %+v vs %+v", sa, sb)
	}
	if got, want := b.Tp(), 0.33; got != want {
		t.Fatalf("Tp not restored: %v", got)
	}
	if pa, pb := a.Speculate(1, nil), b.Speculate(1, nil); !reflect.DeepEqual(pa, pb) {
		t.Fatalf("decisions diverged: %v vs %v", pa, pb)
	}

	// Byte determinism: the warm-started engine's own export, encoded,
	// must reproduce the original frame's bytes exactly.
	frameA := encodeExport(t, a, at)
	frameB := encodeExport(t, b, at)
	if !bytes.Equal(frameA, frameB) {
		t.Fatal("re-export after warm start is not byte-identical")
	}
}

func encodeExport(t *testing.T, e *Engine, at time.Time) []byte {
	t.Helper()
	e.mu.Lock()
	cs := e.exportCheckpointLocked(at)
	e.mu.Unlock()
	cs.Meta.Fingerprint = 7 // normalize: the store stamps this on Save
	b, err := checkpoint.Encode(cs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestEngineCheckpointWorkerCountIndependence: the same logical traffic
// recorded by 1 goroutine and by 8 concurrent goroutines must freeze —
// and therefore checkpoint — to byte-identical frames.
func TestEngineCheckpointWorkerCountIndependence(t *testing.T) {
	run := func(workers int) []byte {
		cfg := DefaultEngineConfig()
		cfg.Metrics = obs.NewRegistry()
		e := newTestEngine(t, cfg)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for c := w; c < 64; c += workers {
					client := trace.ClientID(fmt.Sprintf("client-%02d", c))
					at := t0.Add(time.Duration(c) * time.Minute)
					e.Record(client, 1, at)
					e.Record(client, 2, at.Add(time.Second))
					e.Record(client, webgraph.DocID(3+c%2), at.Add(2*time.Second))
				}
			}(w)
		}
		wg.Wait()
		e.Refresh(t0.Add(2 * time.Hour))
		return encodeExport(t, e, t0.Add(2*time.Hour))
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("checkpoint bytes depend on recording worker count")
	}
}

// TestEngineWarmStartGuardState: quarantine verdicts and the judge's
// calibration bound survive the restart.
func TestEngineWarmStartGuardState(t *testing.T) {
	mkcfg := func() EngineConfig {
		cfg := DefaultEngineConfig()
		cfg.Metrics = obs.NewRegistry()
		cfg.Guard = estguard.New(estguard.Config{
			Seed: 7, MinRequests: 8, Metrics: obs.NewRegistry(),
		})
		return cfg
	}
	cfgA := mkcfg()
	stA := newCheckpointStore(t, cfgA.StateFingerprint())
	cfgA.Checkpoint = stA
	a := newTestEngine(t, cfgA)

	// A scanner: many distinct docs, no repeats, metronomic 1s gaps.
	at := t0
	for i := 0; i < 400; i++ {
		a.Record("scanner-1", webgraph.DocID(i+10), at)
		at = at.Add(time.Second)
	}
	// And a human-ish client so the clean estimate is non-empty.
	for i := 0; i < 10; i++ {
		a.Record("human-1", 1, at)
		a.Record("human-1", 2, at.Add(7*time.Second))
		at = at.Add(time.Duration(40+17*i) * time.Second)
	}
	a.Refresh(at)

	if st, reason := a.ClientStatus("scanner-1"); st != estguard.Quarantined {
		t.Fatalf("setup: scanner not quarantined (%v %q)", st, reason)
	}
	if err := a.CheckpointNow(at); err != nil {
		t.Fatal(err)
	}
	snap, _, err := stA.Load()
	if err != nil || snap == nil {
		t.Fatalf("Load: %v %v", snap, err)
	}

	cfgB := mkcfg()
	b := newTestEngine(t, cfgB)
	if err := b.WarmStart(snap, at); err != nil {
		t.Fatal(err)
	}
	stB, reasonB := b.ClientStatus("scanner-1")
	_, reasonA := a.ClientStatus("scanner-1")
	if stB != estguard.Quarantined || reasonB != reasonA {
		t.Fatalf("quarantine not restored: %v %q (want %q)", stB, reasonB, reasonA)
	}
	if ja, jb := cfgA.Guard.ExportJudge(), cfgB.Guard.ExportJudge(); ja != jb {
		t.Fatalf("judge bound not restored: %+v vs %+v", ja, jb)
	}
	if ca, cb := cfgA.Guard.ExportClients(), cfgB.Guard.ExportClients(); !reflect.DeepEqual(ca, cb) {
		t.Fatal("client summaries not restored")
	}
}

// TestEngineWarmStartCountsAsRefresh: the first post-restart request must
// not trigger a refresh that would overwrite the restored matrix with a
// freeze of the still-empty accumulator.
func TestEngineWarmStartCountsAsRefresh(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.Metrics = obs.NewRegistry()
	st := newCheckpointStore(t, cfg.StateFingerprint())
	cfgA := cfg
	cfgA.Checkpoint = st
	a := newTestEngine(t, cfgA)
	feedPattern(a, 10)

	snap, _, err := st.Load()
	if err != nil || snap == nil {
		t.Fatalf("Load: %v %v", snap, err)
	}
	b := newTestEngine(t, cfg)
	// Restore "long after" the checkpoint was written: the stale persisted
	// refresh instant must not count against the new process's schedule.
	now := t0.Add(90 * 24 * time.Hour)
	if err := b.WarmStart(snap, now); err != nil {
		t.Fatal(err)
	}
	pairs := b.Stats().Pairs
	if pairs == 0 {
		t.Fatal("setup: warm start restored an empty matrix")
	}
	b.Record("c", 1, now.Add(time.Second))
	if got := b.Stats().Pairs; got != pairs {
		t.Fatalf("first post-restart request wiped the warm matrix: %d -> %d", pairs, got)
	}
	// The regular cadence still applies from the restore instant.
	b.Record("c", 2, now.Add(cfg.RefreshEvery+2*time.Second))
	if got := b.Stats().Refreshes; got != 1 {
		t.Fatalf("refresh schedule not rearmed: %d refreshes", got)
	}
}

// TestEngineWarmStartRejectsInvalid: a frame that decodes but carries
// unusable state must error (the caller then cold-starts) instead of
// publishing garbage.
func TestEngineWarmStartRejectsInvalid(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.Metrics = obs.NewRegistry()
	e := newTestEngine(t, cfg)
	if err := e.WarmStart(nil, t0); err == nil {
		t.Fatal("nil checkpoint accepted")
	}
	bad := &checkpoint.Snapshot{Knobs: checkpoint.Knobs{Tp: 2}}
	if err := e.WarmStart(bad, t0); err == nil {
		t.Fatal("out-of-range Tp accepted")
	}
}

func TestStateFingerprintSensitivity(t *testing.T) {
	a := DefaultEngineConfig()
	b := a
	if a.StateFingerprint() != b.StateFingerprint() {
		t.Fatal("identical configs must fingerprint equal")
	}
	b.Window = a.Window * 2
	if a.StateFingerprint() == b.StateFingerprint() {
		t.Fatal("estimation parameter change must change the fingerprint")
	}
	c := a
	c.Tp = 0.9 // runtime knob: rides in the checkpoint, not the fingerprint
	if a.StateFingerprint() != c.StateFingerprint() {
		t.Fatal("runtime knobs must not change the fingerprint")
	}
}
