package core

import (
	"bytes"
	"testing"
	"time"

	"specweb/internal/checkpoint"
	"specweb/internal/obs"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// FuzzBoundedEstimator drives a memory-bounded engine through
// fuzzer-chosen interleavings of the operations that interact in the
// bounded path: Record (which triggers space-saving evictions), Refresh
// (which exercises both the delta-freeze and the full-freeze branch),
// checkpoint export (version-2 frames) and WarmStart (which resets the
// delta baseline mid-stream). The invariants: no operation panics, the
// eviction ledger in Stats never moves backwards — not even across a warm
// restart — and every exported frame survives Decode → Encode
// byte-identically (the canonical-form contract of the v2 codec).
func FuzzBoundedEstimator(f *testing.F) {
	f.Add([]byte{1, 0, 0, 1, 1, 2, 3, 0, 0, 4, 0, 0})
	f.Add([]byte{0, 3, 1, 2, 3, 4, 5, 6, 7, 3, 0, 0, 4, 0, 0, 0, 1, 2, 3, 0, 0})
	f.Add(bytes.Repeat([]byte{0, 1, 2, 3, 4, 5, 6, 7}, 16))
	f.Add([]byte{255, 255, 4, 4, 4, 3, 3, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		cfg := DefaultEngineConfig()
		cfg.Metrics = obs.NewRegistry()
		cfg.MinOccurrences = 1
		// Tiny caps so the fuzzer reaches the eviction branches quickly;
		// the first bytes pick the shape, including decay 1 (the
		// delta-freeze regime) vs < 1 (full rebuilds every refresh).
		cfg.MaxRows = 2 + int(data[0]%6)
		cfg.RowTopK = 1 + int(data[1]%4)
		if data[2]%2 == 0 {
			cfg.DecayPerDay = 1
		} else {
			cfg.DecayPerDay = 0.9
		}
		e, err := NewEngine(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}

		at := t0
		var prevRows, prevPairs int64
		checkLedger := func(when string) {
			st := e.Stats().Estimator
			if st == nil {
				return // no refresh published yet
			}
			if st.EvictedRows < prevRows || st.EvictedPairs < prevPairs {
				t.Fatalf("%s: eviction ledger went backwards: rows %d→%d pairs %d→%d",
					when, prevRows, st.EvictedRows, prevPairs, st.EvictedPairs)
			}
			prevRows, prevPairs = st.EvictedRows, st.EvictedPairs
		}

		clients := []trace.ClientID{"a", "b", "c", "d"}
		for p := 3; p+2 < len(data); p += 3 {
			op, x, y := data[p], data[p+1], data[p+2]
			switch op % 6 {
			case 0, 1: // the common case: traffic
				at = at.Add(time.Duration(x%8) * time.Second)
				e.Record(clients[int(x)%len(clients)], webgraph.DocID(y%48), at)
			case 2: // explicit refresh: delta-freeze or full rebuild
				at = at.Add(time.Duration(1+x%4) * time.Hour)
				e.Refresh(at)
				checkLedger("refresh")
			case 3: // checkpoint round trip through the v2 codec
				e.mu.Lock()
				cs := e.exportCheckpointLocked(at)
				e.mu.Unlock()
				if cs.Estimator == nil {
					t.Fatal("bounded engine exported a frame without an estimator section")
				}
				frame, err := checkpoint.Encode(cs)
				if err != nil {
					t.Fatalf("Encode: %v", err)
				}
				decoded, err := checkpoint.Decode(frame)
				if err != nil {
					t.Fatalf("Decode rejected a frame the engine exported: %v", err)
				}
				again, err := checkpoint.Encode(decoded)
				if err != nil {
					t.Fatalf("re-Encode: %v", err)
				}
				if !bytes.Equal(frame, again) {
					t.Fatalf("v2 frame not canonical: %d bytes in, %d out", len(frame), len(again))
				}
				// Warm-start from the decoded frame mid-stream: the delta
				// baseline resets, the ledger must survive via the frame.
				if err := e.WarmStart(decoded, at); err != nil {
					t.Fatalf("WarmStart: %v", err)
				}
				checkLedger("warm start")
			case 4: // large time jump so auto-refresh paths fire on Record
				at = at.Add(time.Duration(x) * time.Minute)
			case 5: // read path against whatever snapshot is published
				e.Speculate(webgraph.DocID(y%48), nil)
			}
		}
		e.Refresh(at.Add(cfg.RefreshEvery))
		checkLedger("final refresh")
	})
}
