package core

import (
	"fmt"
	"sort"
	"sync"

	"specweb/internal/allocation"
	"specweb/internal/obs"
	"specweb/internal/stats"
	"specweb/internal/webgraph"
)

// Replicator is the online side of the §2 dissemination protocol for one
// home server: it counts accesses as they happen, and on demand produces
// the ranked "most popular b bytes" replica set a service proxy should
// duplicate, the exponential-model fit λ, and — acting as a proxy — the
// optimal split of a storage budget across several home servers.
type Replicator struct {
	met replicatorMetrics

	mu         sync.Mutex
	sizes      map[webgraph.DocID]int64
	total      map[webgraph.DocID]int64 // all requests
	remote     map[webgraph.DocID]int64 // remote requests
	reqs       int64
	remReq     int64
	lastDemand *ServerDemand // last successful fit, for degraded service
}

type replicatorMetrics struct {
	requests        *obs.Counter
	remote          *obs.Counter
	replicaSets     *obs.Counter
	demandFallbacks *obs.Counter
	rotations       *obs.Counter
	replicaDocs     *obs.Gauge
	replicaBytes    *obs.Gauge
}

// NewReplicator returns an empty tracker with metrics in obs.Default.
func NewReplicator() *Replicator { return NewReplicatorIn(nil) }

// NewReplicatorIn returns an empty tracker registering its metrics in reg
// (nil means obs.Default).
func NewReplicatorIn(reg *obs.Registry) *Replicator {
	const scoped = "specweb_replicator_requests_total"
	const scopedHelp = "Requests observed by the dissemination tracker, by client scope."
	return &Replicator{
		met: replicatorMetrics{
			requests:        reg.Counter(scoped, scopedHelp, obs.Labels{"scope": "all"}),
			remote:          reg.Counter(scoped, scopedHelp, obs.Labels{"scope": "remote"}),
			replicaSets:     reg.Counter("specweb_replicator_replica_sets_total", "Replica-set computations served to proxies.", nil),
			demandFallbacks: reg.Counter("specweb_replicator_demand_fallbacks_total", "Demand exports served from the last good fit because the current window could not be fitted.", nil),
			rotations:       reg.Counter("specweb_replicator_rotations_total", "Observation-window rotations.", nil),
			replicaDocs:     reg.Gauge("specweb_replicator_replica_docs", "Documents in the most recent replica set.", nil),
			replicaBytes:    reg.Gauge("specweb_replicator_replica_bytes", "Bytes selected for dissemination in the most recent replica set.", nil),
		},
		sizes:  make(map[webgraph.DocID]int64),
		total:  make(map[webgraph.DocID]int64),
		remote: make(map[webgraph.DocID]int64),
	}
}

// Record observes one request.
func (r *Replicator) Record(doc webgraph.DocID, size int64, remote bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sizes[doc] = size
	r.total[doc]++
	r.reqs++
	r.met.requests.Inc()
	if remote {
		r.remote[doc]++
		r.remReq++
		r.met.remote.Inc()
	}
}

// Requests returns the total and remote request counts observed.
func (r *Replicator) Requests() (total, remote int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reqs, r.remReq
}

// Rotate starts a fresh observation window, discarding the access counts
// but keeping document sizes and the last good demand fit. Long-running
// servers rotate periodically so popularity tracks the current workload
// instead of the process's whole history; Demand stays answerable across
// the empty start of a new window via the retained fit.
func (r *Replicator) Rotate() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total = make(map[webgraph.DocID]int64)
	r.remote = make(map[webgraph.DocID]int64)
	r.reqs, r.remReq = 0, 0
	r.met.rotations.Inc()
}

// rankedLocked returns docs by decreasing remote popularity (ties by ID).
func (r *Replicator) rankedLocked() []webgraph.DocID {
	out := make([]webgraph.DocID, 0, len(r.total))
	for id := range r.total {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if r.remote[a] != r.remote[b] {
			return r.remote[a] > r.remote[b]
		}
		return a < b
	})
	return out
}

// ReplicaSet returns the most remotely-popular documents fitting the byte
// budget, the set a proxy should duplicate from this server.
func (r *Replicator) ReplicaSet(budget int64) []webgraph.DocID {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []webgraph.DocID
	var used int64
	for _, id := range r.rankedLocked() {
		if r.remote[id] == 0 {
			break
		}
		size := r.sizes[id]
		if used+size > budget {
			continue
		}
		used += size
		out = append(out, id)
	}
	r.met.replicaSets.Inc()
	r.met.replicaDocs.Set(float64(len(out)))
	r.met.replicaBytes.Set(float64(used))
	return out
}

// FitLambda fits the exponential popularity model to the observed remote
// hit curve, as §2.2 prescribes estimating λ from server logs.
func (r *Replicator) FitLambda() (float64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.remReq == 0 {
		return 0, fmt.Errorf("core: no remote requests observed")
	}
	var bs, hs []float64
	var cumB, cumR int64
	for _, id := range r.rankedLocked() {
		cumB += r.sizes[id]
		cumR += r.remote[id]
		bs = append(bs, float64(cumB))
		hs = append(hs, float64(cumR)/float64(r.remReq))
	}
	return stats.FitExponentialHitCurve(bs, hs)
}

// ServerDemand summarizes one home server for proxy-side allocation.
type ServerDemand struct {
	// R is the outside-demand weight (bytes per unit time, eq. 1).
	R float64
	// Lambda is the server's fitted popularity constant.
	Lambda float64
}

// Demand exports this server's allocation inputs: R as remote bytes served
// over the observation period and the fitted λ. The duration normalization
// cancels in eq. 4, so raw totals are fine as long as every server in the
// cluster reports over the same period.
//
// When the current window cannot be fitted — typically right after a
// Rotate, before any remote traffic has arrived — Demand degrades to the
// last successful fit instead of failing, so cluster-wide allocation
// keeps working through the transient. Fallbacks are counted in
// specweb_replicator_demand_fallbacks_total. The error is only returned
// when no fit has ever succeeded.
func (r *Replicator) Demand() (ServerDemand, error) {
	lam, err := r.FitLambda()
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		if r.lastDemand != nil {
			r.met.demandFallbacks.Inc()
			return *r.lastDemand, nil
		}
		return ServerDemand{}, err
	}
	var remoteBytes float64
	for id, n := range r.remote {
		remoteBytes += float64(n) * float64(r.sizes[id])
	}
	d := ServerDemand{R: remoteBytes, Lambda: lam}
	r.lastDemand = &d
	return d, nil
}

// AllocateProxy splits a proxy's storage budget across the demands of a
// cluster of home servers (eq. 4–5 with KKT clamping) and reports the
// expected intercepted fraction α (eq. 1).
func AllocateProxy(budget int64, demands []ServerDemand) (perServer []float64, alpha float64, err error) {
	servers := make([]allocation.Server, len(demands))
	for i, d := range demands {
		servers[i] = allocation.Server{R: d.R, Lambda: d.Lambda}
	}
	bs, err := allocation.ExponentialAllocate(float64(budget), servers)
	if err != nil {
		return nil, 0, err
	}
	return bs, allocation.Alpha(bs, servers), nil
}
