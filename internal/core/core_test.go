package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"specweb/internal/speculation"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

var t0 = time.Date(1995, time.March, 6, 9, 0, 0, 0, time.UTC)

func newTestEngine(t *testing.T, cfg EngineConfig) *Engine {
	t.Helper()
	sizes := map[webgraph.DocID]int64{1: 1000, 2: 2000, 3: 500, 4: 90000}
	e, err := NewEngine(cfg, func(d webgraph.DocID) (int64, bool) {
		s, ok := sizes[d]
		return s, ok
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// feedPattern teaches the engine "doc 1 is followed by doc 2" n times.
func feedPattern(e *Engine, n int, extra ...webgraph.DocID) {
	at := t0
	for i := 0; i < n; i++ {
		client := trace.ClientID("c")
		e.Record(client, 1, at)
		e.Record(client, 2, at.Add(time.Second))
		for j, d := range extra {
			e.Record(client, d, at.Add(time.Duration(2+j)*time.Second))
		}
		at = at.Add(time.Hour)
	}
	e.Refresh(at)
}

func TestEngineLearnsDependencies(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.MinOccurrences = 2
	e := newTestEngine(t, cfg)
	if got := e.Speculate(1, nil); len(got) != 0 {
		t.Errorf("untrained engine speculated %v", got)
	}
	feedPattern(e, 20)
	got := e.Speculate(1, nil)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("Speculate(1) = %v, want [2]", got)
	}
	if got := e.Speculate(2, nil); len(got) != 0 {
		t.Errorf("Speculate(2) = %v, want none (2 is never followed)", got)
	}
}

func TestEngineCooperativeExclusion(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.MinOccurrences = 2
	e := newTestEngine(t, cfg)
	feedPattern(e, 20)
	got := e.Speculate(1, map[webgraph.DocID]bool{2: true})
	if len(got) != 0 {
		t.Errorf("cooperative exclusion failed: %v", got)
	}
}

func TestEngineMaxSize(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.MinOccurrences = 2
	cfg.MaxSize = 10000
	e := newTestEngine(t, cfg)
	feedPattern(e, 20, 4) // doc 4 is 90 KB
	got := e.Speculate(1, nil)
	for _, d := range got {
		if d == 4 {
			t.Error("oversized doc speculated despite MaxSize")
		}
	}
	if len(got) == 0 {
		t.Error("everything filtered out")
	}
}

func TestEngineHintsAndSplit(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.MinOccurrences = 2
	cfg.Tp = 0.1
	cfg.EmbedThreshold = 0.9
	e := newTestEngine(t, cfg)
	// 1→2 always; 1→3 half the time.
	at := t0
	for i := 0; i < 40; i++ {
		e.Record("c", 1, at)
		e.Record("c", 2, at.Add(time.Second))
		if i%2 == 0 {
			e.Record("c", 3, at.Add(2*time.Second))
		}
		at = at.Add(time.Hour)
	}
	e.Refresh(at)
	hints := e.Hints(1, nil)
	if len(hints) != 2 {
		t.Fatalf("hints = %v", hints)
	}
	if hints[0].Doc != 2 || hints[0].P < hints[1].P {
		t.Errorf("hints not ordered by probability: %v", hints)
	}
	if hints[0].Size != 2000 {
		t.Errorf("hint size = %d, want 2000", hints[0].Size)
	}
	push, hint := e.Split(1, nil)
	if len(push) != 1 || push[0] != 2 {
		t.Errorf("hybrid push = %v, want [2]", push)
	}
	if len(hint) != 1 || hint[0].Doc != 3 {
		t.Errorf("hybrid hints = %v, want doc 3", hint)
	}
}

func TestEngineAutoRefresh(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.MinOccurrences = 2
	cfg.RefreshEvery = time.Minute
	e := newTestEngine(t, cfg)
	at := t0
	for i := 0; i < 30; i++ {
		e.Record("c", 1, at)
		e.Record("c", 2, at.Add(time.Second))
		at = at.Add(2 * time.Minute) // crosses the refresh boundary
	}
	// No manual Refresh: the time-based refresh must have kicked in.
	if got := e.Speculate(1, nil); len(got) != 1 || got[0] != 2 {
		t.Errorf("auto-refresh did not learn: %v", got)
	}
	st := e.Stats()
	if st.Recorded != 60 || st.Pairs == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEngineAgingForgets(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.MinOccurrences = 2
	cfg.DecayPerDay = 0.2 // aggressive decay
	cfg.Tp = 0.5
	e := newTestEngine(t, cfg)
	feedPattern(e, 10)
	if got := e.Speculate(1, nil); len(got) != 1 {
		t.Fatalf("not learned: %v", got)
	}
	// New era: doc 1 now followed by doc 3. After several refreshes the
	// old dependency must fade below threshold and the new one dominate.
	at := t0.Add(1000 * time.Hour)
	for day := 0; day < 6; day++ {
		for i := 0; i < 10; i++ {
			e.Record("c", 1, at)
			e.Record("c", 3, at.Add(time.Second))
			at = at.Add(time.Hour)
		}
		e.Refresh(at)
	}
	got := e.Speculate(1, nil)
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("aging failed to shift dependency: %v", got)
	}
}

func TestEngineTopK(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.MinOccurrences = 2
	cfg.TopK = 1
	cfg.Tp = 0
	e := newTestEngine(t, cfg)
	feedPattern(e, 20, 3)
	got := e.Speculate(1, nil)
	if len(got) != 1 {
		t.Errorf("TopK=1 returned %v", got)
	}
}

func TestEngineConcurrency(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.MinOccurrences = 2
	cfg.RefreshEvery = time.Millisecond
	e := newTestEngine(t, cfg)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			at := t0.Add(time.Duration(w) * time.Second)
			client := trace.ClientID(string(rune('a' + w)))
			for i := 0; i < 500; i++ {
				e.Record(client, webgraph.DocID(1+i%3), at)
				e.Speculate(1, nil)
				e.Hints(2, nil)
				at = at.Add(time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if e.Stats().Recorded != 4000 {
		t.Errorf("recorded %d, want 4000", e.Stats().Recorded)
	}
}

func TestEngineConfigValidation(t *testing.T) {
	bad := DefaultEngineConfig()
	bad.Window = 0
	if _, err := NewEngine(bad, nil); err == nil {
		t.Error("zero window accepted")
	}
	bad = DefaultEngineConfig()
	bad.RefreshEvery = 0
	if _, err := NewEngine(bad, nil); err == nil {
		t.Error("zero refresh accepted")
	}
	bad = DefaultEngineConfig()
	bad.DecayPerDay = 0
	if _, err := NewEngine(bad, nil); err == nil {
		t.Error("zero decay accepted")
	}
	bad = DefaultEngineConfig()
	bad.Tp = 2
	if _, err := NewEngine(bad, nil); err == nil {
		t.Error("Tp > 1 accepted")
	}
}

func TestEngineSetTpValidates(t *testing.T) {
	e := newTestEngine(t, DefaultEngineConfig())
	for _, bad := range []float64{-0.1, 1.01, 2} {
		if err := e.SetTp(bad); err == nil {
			t.Errorf("SetTp(%v) accepted", bad)
		}
	}
	if err := e.SetTp(0.5); err != nil {
		t.Fatalf("SetTp(0.5): %v", err)
	}
	if got := e.Tp(); got != 0.5 {
		t.Errorf("Tp() = %v, want 0.5", got)
	}
}

func TestEngineSetLimitsValidates(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.MinOccurrences = 2
	e := newTestEngine(t, cfg)
	if err := e.SetLimits(-1, 0); err == nil {
		t.Error("negative MaxSize accepted")
	}
	if err := e.SetLimits(0, -1); err == nil {
		t.Error("negative TopK accepted")
	}
	feedPattern(e, 20)
	if err := e.SetLimits(1500, 0); err != nil {
		t.Fatal(err)
	}
	// Doc 2 is 2000 bytes: the new MaxSize must suppress it.
	if got := e.Speculate(1, nil); len(got) != 0 {
		t.Errorf("Speculate(1) = %v after MaxSize 1500, want none", got)
	}
	if err := e.SetLimits(0, 0); err != nil {
		t.Fatal(err)
	}
	if got := e.Speculate(1, nil); len(got) != 1 || got[0] != 2 {
		t.Errorf("Speculate(1) = %v after restoring limits, want [2]", got)
	}
}

// TestEngineSetTpRace hammers the runtime setters concurrently with the
// decision paths; meaningful under -race (the Makefile overload target).
func TestEngineSetTpRace(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.MinOccurrences = 2
	e := newTestEngine(t, cfg)
	feedPattern(e, 10)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if err := e.SetTp(float64(i%10) / 10); err != nil {
					t.Errorf("SetTp: %v", err)
					return
				}
				if err := e.SetLimits(int64(i%3)*1000, i%4); err != nil {
					t.Errorf("SetLimits: %v", err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			at := t0.Add(time.Duration(w) * time.Minute)
			client := trace.ClientID(string(rune('p' + w)))
			for i := 0; i < 500; i++ {
				e.Record(client, webgraph.DocID(1+i%3), at)
				e.Speculate(1, nil)
				e.Split(1, nil)
				at = at.Add(time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if tp := e.Tp(); tp < 0 || tp > 1 {
		t.Errorf("Tp() = %v outside [0,1] after hammering", tp)
	}
}

// TestEngineShardedRecordDeterminism feeds the same per-client request
// streams once sequentially and once from concurrent goroutines (one per
// client, so per-client order holds, as in any real server) and demands
// byte-identical speculation decisions after refresh — the acceptance bar
// for the sharded ingestion path.
func TestEngineShardedRecordDeterminism(t *testing.T) {
	build := func(concurrent bool) *Engine {
		cfg := DefaultEngineConfig()
		cfg.MinOccurrences = 2
		// One explicit refresh at the end: auto-refresh timing depends on
		// request interleaving (as it always has — the loadgen harness
		// trains sequentially for the same reason), which is not what
		// this test pins.
		cfg.RefreshEvery = 5000 * time.Hour
		e := newTestEngine(t, cfg)
		var wg sync.WaitGroup
		for c := 0; c < 16; c++ {
			feed := func(c int) {
				at := t0.Add(time.Duration(c) * time.Minute)
				client := trace.ClientID(fmt.Sprintf("client-%02d", c))
				for i := 0; i < 50; i++ {
					e.Record(client, 1, at)
					e.Record(client, webgraph.DocID(2+(c+i)%3), at.Add(time.Second))
					if c%2 == 0 {
						e.Record(client, 3, at.Add(2*time.Second))
					}
					at = at.Add(time.Hour)
				}
			}
			if concurrent {
				wg.Add(1)
				go func(c int) { defer wg.Done(); feed(c) }(c)
			} else {
				feed(c)
			}
		}
		wg.Wait()
		e.Refresh(t0.Add(100 * 24 * time.Hour))
		return e
	}
	seq := build(false)
	con := build(true)
	if s, c := seq.Stats(), con.Stats(); s.Recorded != c.Recorded || s.Pairs != c.Pairs || s.Docs != c.Docs {
		t.Fatalf("stats diverge: sequential %+v concurrent %+v", s, c)
	}
	for doc := webgraph.DocID(1); doc <= 5; doc++ {
		a := seq.Hints(doc, nil)
		b := con.Hints(doc, nil)
		if len(a) != len(b) {
			t.Fatalf("doc %d: sequential %v vs concurrent %v", doc, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("doc %d hint %d: sequential %+v vs concurrent %+v", doc, i, a[i], b[i])
			}
		}
	}
}

// TestEngineDecisionPathAllocFree pins the tentpole acceptance criterion:
// a warm pooled Decision makes Speculate/Hints/Split allocation-free.
func TestEngineDecisionPathAllocFree(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.MinOccurrences = 2
	e := newTestEngine(t, cfg)
	feedPattern(e, 20, 3)
	d := AcquireDecision()
	defer ReleaseDecision(d)
	e.SplitInto(d, 1, nil) // warm the buffers
	for name, fn := range map[string]func(){
		"SpeculateInto": func() { e.SpeculateInto(d, 1, nil) },
		"HintsInto":     func() { e.HintsInto(d, 1, nil) },
		"SplitInto":     func() { e.SplitInto(d, 1, nil) },
	} {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s allocates %v per op, want 0", name, allocs)
		}
	}
	e.SpeculateInto(d, 1, nil)
	if len(d.Push) == 0 {
		t.Fatal("nothing speculated")
	}
}

// TestDecisionPoolRecycles checks Release clears the buffers and Acquire
// hands back a usable Decision.
func TestDecisionPoolRecycles(t *testing.T) {
	d := AcquireDecision()
	d.Push = append(d.Push, 1, 2, 3)
	d.Hints = append(d.Hints, speculation.Hint{Doc: 1, P: 0.5})
	ReleaseDecision(d)
	got := AcquireDecision()
	defer ReleaseDecision(got)
	if len(got.Push) != 0 || len(got.Hints) != 0 {
		t.Errorf("pooled decision not reset: %d push, %d hints", len(got.Push), len(got.Hints))
	}
	ReleaseDecision(nil) // must not panic
}

// TestEngineSnapshotCutover checks a knob change republishes atomically:
// decisions concurrent with SetTp see a coherent old or new snapshot.
func TestEngineSnapshotCutover(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.MinOccurrences = 2
	cfg.Tp = 0.1
	e := newTestEngine(t, cfg)
	// 1→2 always, 1→3 half the time: two distinct probability levels.
	at := t0
	for i := 0; i < 40; i++ {
		e.Record("c", 1, at)
		e.Record("c", 2, at.Add(time.Second))
		if i%2 == 0 {
			e.Record("c", 3, at.Add(2*time.Second))
		}
		at = at.Add(time.Hour)
	}
	e.Refresh(at)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = e.SetTp(0.1)
			_ = e.SetTp(0.9)
		}
	}()
	d := AcquireDecision()
	defer ReleaseDecision(d)
	for i := 0; i < 2000; i++ {
		e.SpeculateInto(d, 1, nil)
		// Tp=0.1 admits {2,3}; Tp=0.9 admits {2}. Anything else means a
		// torn snapshot.
		if n := len(d.Push); n != 1 && n != 2 {
			t.Fatalf("torn decision: %v", d.Push)
		}
	}
	<-done
}

func TestReplicatorRankingAndReplicaSet(t *testing.T) {
	r := NewReplicator()
	for i := 0; i < 50; i++ {
		r.Record(1, 1000, true)
	}
	for i := 0; i < 30; i++ {
		r.Record(2, 2000, true)
	}
	for i := 0; i < 100; i++ {
		r.Record(3, 500, false) // locally popular: never remote
	}
	total, remote := r.Requests()
	if total != 180 || remote != 80 {
		t.Errorf("requests = %d/%d", total, remote)
	}
	set := r.ReplicaSet(2500)
	// Ranked by remote count: doc1 (1000B), doc2 (2000B skipped: 3000>2500),
	// doc3 has no remote demand → stop.
	if len(set) != 1 || set[0] != 1 {
		t.Errorf("replica set = %v, want [1]", set)
	}
	set = r.ReplicaSet(3000)
	if len(set) != 2 || set[0] != 1 || set[1] != 2 {
		t.Errorf("replica set = %v, want [1 2]", set)
	}
}

func TestReplicatorFitAndDemand(t *testing.T) {
	r := NewReplicator()
	// Construct a geometric-ish popularity profile over 40 docs.
	for d := 0; d < 40; d++ {
		n := 1 << uint(10-d/4)
		for i := 0; i < n; i++ {
			r.Record(webgraph.DocID(d), 4096, true)
		}
	}
	lam, err := r.FitLambda()
	if err != nil {
		t.Fatal(err)
	}
	if lam <= 0 {
		t.Errorf("lambda = %v", lam)
	}
	dem, err := r.Demand()
	if err != nil {
		t.Fatal(err)
	}
	if dem.R <= 0 || dem.Lambda != lam {
		t.Errorf("demand = %+v", dem)
	}
}

func TestReplicatorRotateAndDemandFallback(t *testing.T) {
	r := NewReplicator()
	for d := 0; d < 40; d++ {
		n := 1 << uint(10-d/4)
		for i := 0; i < n; i++ {
			r.Record(webgraph.DocID(d), 4096, true)
		}
	}
	good, err := r.Demand()
	if err != nil {
		t.Fatal(err)
	}

	r.Rotate()
	total, remote := r.Requests()
	if total != 0 || remote != 0 {
		t.Errorf("after rotate requests = %d/%d, want 0/0", total, remote)
	}
	if set := r.ReplicaSet(1 << 20); len(set) != 0 {
		t.Errorf("after rotate replica set = %v, want empty", set)
	}

	// The fresh window has nothing to fit, but Demand degrades to the
	// last good fit instead of failing.
	if _, err := r.FitLambda(); err == nil {
		t.Fatal("fit on empty window accepted")
	}
	dem, err := r.Demand()
	if err != nil {
		t.Fatalf("demand after rotate: %v", err)
	}
	if dem != good {
		t.Errorf("fallback demand = %+v, want %+v", dem, good)
	}

	// A replicator that never fitted still errors.
	fresh := NewReplicator()
	if _, err := fresh.Demand(); err == nil {
		t.Error("demand with no history accepted")
	}
}

func TestReplicatorFitNoRemote(t *testing.T) {
	r := NewReplicator()
	r.Record(1, 10, false)
	if _, err := r.FitLambda(); err == nil {
		t.Error("fit without remote data accepted")
	}
}

func TestAllocateProxy(t *testing.T) {
	demands := []ServerDemand{
		{R: 5e6, Lambda: 6e-7},
		{R: 1e6, Lambda: 6e-7},
	}
	bs, alpha, err := AllocateProxy(40<<20, demands)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 || bs[0] <= bs[1] {
		t.Errorf("allocation %v should favor the popular server", bs)
	}
	if alpha <= 0 || alpha > 1 {
		t.Errorf("alpha = %v", alpha)
	}
	if _, _, err := AllocateProxy(1, nil); err == nil {
		t.Error("empty demand accepted")
	}
}

func TestReplicatorConcurrency(t *testing.T) {
	r := NewReplicator()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(webgraph.DocID(i%20), 1000, i%2 == 0)
				if i%100 == 0 {
					r.ReplicaSet(10000)
				}
			}
		}(w)
	}
	wg.Wait()
	total, _ := r.Requests()
	if total != 8000 {
		t.Errorf("recorded %d, want 8000", total)
	}
}
