package core

import (
	"errors"
	"fmt"
	"time"

	"specweb/internal/checkpoint"
	"specweb/internal/markov"
)

// Crash-safe state. The engine persists exactly its published decision
// state — the frozen matrix behind the atomic snapshot pointer, the knobs
// in force, and the guard's client/judge summaries — and deliberately not
// the live ingestion state (shard buffers, the aging pair accumulator,
// the open-stride carry, the drift window). The published state is what
// serves requests; the ingestion state describes a window the dead
// process will never finish, and rebuilding it from post-restart traffic
// is both correct and cheap. DESIGN §13 spells out the contract.

// StateFingerprint hashes the configuration fields that change what
// persisted state *means*: the estimation parameters that shaped P[i,j]
// and whether a guard contributed client summaries. Runtime knobs (Tp,
// TopK, MaxSize, EmbedThreshold) are excluded on purpose — they ride in
// the checkpoint itself so a warm start resumes the governor's tuning.
func (c *EngineConfig) StateFingerprint() uint64 {
	desc := fmt.Sprintf(
		"core.EngineConfig/v1|window=%d|stride=%d|minocc=%d|smooth=%g|decay=%g|refresh=%d|guard=%t",
		c.Window, c.StrideTimeout, c.MinOccurrences, c.Smoothing,
		c.DecayPerDay, c.RefreshEvery, c.Guard != nil)
	// The bounding caps change what the persisted rows mean (they are the
	// space-saving survivors, not the full estimate), so they join the
	// fingerprint — but only when bounding is on, keeping every
	// exact-estimator fingerprint identical to pre-bounding builds.
	if b, ok := c.bounded(); ok {
		desc += fmt.Sprintf("|maxrows=%d|topk=%d", b.MaxRows, b.RowTopK)
	}
	return checkpoint.Fingerprint(desc)
}

// exportCheckpointLocked captures the engine's persisted state as of the
// currently published snapshot. Caller holds mu.
func (e *Engine) exportCheckpointLocked(at time.Time) *checkpoint.Snapshot {
	snap := e.snap.Load()
	cs := &checkpoint.Snapshot{
		Meta: checkpoint.Meta{
			CreatedUnixNano:     at.UnixNano(),
			Recorded:            e.recorded.Load(),
			LastRefreshUnixNano: e.lastRefresh.Load(),
		},
		Knobs: checkpoint.Knobs{
			Tp:      e.cfg.Tp,
			Embed:   e.cfg.EmbedThreshold,
			MaxSize: e.cfg.MaxSize,
			TopK:    int32(e.cfg.TopK),
		},
		Rows: checkpoint.RowsFromFrozen(snap.frozen),
	}
	if g := e.cfg.Guard; g != nil {
		cs.Clients = g.ExportClients()
		cs.Judge = g.ExportJudge()
	}
	// Bounded engines persist the caps and the cumulative eviction ledger
	// (selecting checkpoint codec version 2); exact engines leave the
	// section nil and keep emitting byte-identical version-1 frames.
	if b, ok := e.cfg.bounded(); ok {
		st := e.est.EstimatorStats()
		cs.Estimator = &checkpoint.EstimatorState{
			MaxRows:      int32(b.MaxRows),
			RowTopK:      int32(b.RowTopK),
			EvictedRows:  st.EvictedRows,
			EvictedPairs: st.EvictedPairs,
			EvictedMass:  st.EvictedMass,
		}
	}
	return cs
}

// saveCheckpointLocked persists the just-published snapshot. Best-effort
// by design: a full disk must degrade durability, not speculation — the
// store counts the failure and the previous frame keeps serving restarts.
// Caller holds mu.
func (e *Engine) saveCheckpointLocked(at time.Time) {
	st := e.cfg.Checkpoint
	if st == nil {
		return
	}
	st.Save(e.exportCheckpointLocked(at)) // errors counted by the store
}

// CheckpointNow synchronously persists the current published state —
// the SIGHUP / graceful-shutdown / interval-timer entry point. Unlike the
// refresh-path hook it surfaces the write error, so operators see a
// failing final checkpoint. No-op (nil) without a configured store.
func (e *Engine) CheckpointNow(at time.Time) error {
	if e.cfg.Checkpoint == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	_, err := e.cfg.Checkpoint.Save(e.exportCheckpointLocked(at))
	return err
}

// WarmStart republishes a decoded checkpoint as the engine's live
// decision state, before any listener opens. The frozen matrix is rebuilt
// from the frame's rows (re-validated — the file crossed a trust
// boundary), the persisted knobs replace the configured ones, and the
// guard's client population and judge bound are restored.
//
// The restore time `now` becomes the engine's last-refresh instant: a
// warm start counts as a refresh for scheduling, so the first
// post-restart request cannot immediately trigger a refresh that would
// overwrite the restored matrix with a freeze of the empty accumulator.
func (e *Engine) WarmStart(cs *checkpoint.Snapshot, now time.Time) error {
	if cs == nil {
		return errors.New("core: warm start from nil checkpoint")
	}
	frozen, err := checkpoint.FrozenFromRows(cs.Rows)
	if err != nil {
		return fmt.Errorf("core: warm start: %w", err)
	}
	if cs.Knobs.Tp < 0 || cs.Knobs.Tp > 1 {
		return fmt.Errorf("core: warm start: Tp %v outside [0,1]", cs.Knobs.Tp)
	}
	if cs.Knobs.MaxSize < 0 || cs.Knobs.TopK < 0 {
		return fmt.Errorf("core: warm start: negative limits")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg.Tp = cs.Knobs.Tp
	e.cfg.EmbedThreshold = cs.Knobs.Embed
	e.cfg.MaxSize = cs.Knobs.MaxSize
	e.cfg.TopK = int(cs.Knobs.TopK)
	if g := e.cfg.Guard; g != nil {
		g.ImportClients(cs.Clients)
		g.ImportJudge(cs.Judge)
	}
	// Restore the bounded estimator's cumulative eviction ledger so the
	// counters stay monotone across the restart (the live space-saving
	// store itself re-trains from post-restart traffic). A frame from an
	// exact engine cannot reach a bounded one or vice versa — the caps are
	// in the fingerprint — so the type assertion cannot misfire.
	if cs.Estimator != nil {
		if b, ok := e.est.(*markov.Bounded); ok {
			b.ImportCounters(cs.Estimator.EvictedRows, cs.Estimator.EvictedPairs, cs.Estimator.EvictedMass)
		}
		e.captureEstStatsLocked()
	}
	// The restored frozen matrix was not compiled from this process's
	// estimator, so the next refresh must freeze in full.
	e.deltaBase = false
	e.installLocked(frozen, e.snapshotSizes(frozen))
	e.met.pairs.Set(float64(frozen.NumPairs()))
	e.met.docs.Set(float64(frozen.NumRows()))
	e.recorded.Store(cs.Meta.Recorded)
	e.lastRefresh.Store(now.UnixNano())
	e.started.Store(true)
	return nil
}
