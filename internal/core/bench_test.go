package core

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// BenchmarkEngineRecord measures the online request-ingestion hot path.
// Run with -cpu 1,4,8 to see shard-striping scale across writers.
func BenchmarkEngineRecord(b *testing.B) {
	cfg := DefaultEngineConfig()
	e, err := NewEngine(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	base := time.Date(1995, time.May, 1, 0, 0, 0, 0, time.UTC)
	var gid atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// One client per goroutine: each maps to a stable shard, so
		// contention reflects real per-client streams.
		client := trace.ClientID(fmt.Sprintf("c%02d", gid.Add(1)))
		at, i := base, 0
		for pb.Next() {
			e.Record(client, webgraph.DocID(i%500), at)
			at = at.Add(time.Millisecond)
			i++
		}
	})
}

func benchEngine(b *testing.B) *Engine {
	b.Helper()
	cfg := DefaultEngineConfig()
	cfg.MinOccurrences = 2
	e, err := NewEngine(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	at := time.Date(1995, time.May, 1, 0, 0, 0, 0, time.UTC)
	// Train a fan-out of 20 successors on doc 1.
	for round := 0; round < 50; round++ {
		e.Record("c", 1, at)
		for j := 0; j < 20; j++ {
			e.Record("c", webgraph.DocID(2+j%4), at.Add(time.Duration(j+1)*200*time.Millisecond))
		}
		at = at.Add(time.Hour)
	}
	e.Refresh(at)
	return e
}

// BenchmarkEngineSpeculate measures the per-request policy query on the
// lock-free snapshot path. Run with -cpu 1,4,8: throughput should scale
// near-linearly and allocs/op must stay 0.
func BenchmarkEngineSpeculate(b *testing.B) {
	e := benchEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		d := AcquireDecision()
		defer ReleaseDecision(d)
		for pb.Next() {
			e.SpeculateInto(d, 1, nil)
			if len(d.Push) == 0 {
				b.Fatal("nothing learned")
			}
		}
	})
}

// BenchmarkEngineHints measures the hint-building variant of the read path.
func BenchmarkEngineHints(b *testing.B) {
	e := benchEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		d := AcquireDecision()
		defer ReleaseDecision(d)
		for pb.Next() {
			e.HintsInto(d, 1, nil)
			if len(d.Hints) == 0 {
				b.Fatal("nothing learned")
			}
		}
	})
}

// BenchmarkReplicatorRecord measures popularity tracking throughput.
func BenchmarkReplicatorRecord(b *testing.B) {
	r := NewReplicator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(webgraph.DocID(i%2000), int64(1000+i%5000), i%3 != 0)
	}
}

// BenchmarkReplicaSet measures ranked replica-set construction.
func BenchmarkReplicaSet(b *testing.B) {
	r := NewReplicator()
	for i := 0; i < 100000; i++ {
		r.Record(webgraph.DocID(i%2000), int64(1000+i%5000), i%3 != 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if set := r.ReplicaSet(1 << 20); len(set) == 0 {
			b.Fatal("empty replica set")
		}
	}
}
