package core

import (
	"fmt"
	"testing"
	"time"

	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// BenchmarkEngineRecord measures the online request-ingestion hot path.
func BenchmarkEngineRecord(b *testing.B) {
	cfg := DefaultEngineConfig()
	e, err := NewEngine(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	at := time.Date(1995, time.May, 1, 0, 0, 0, 0, time.UTC)
	clients := make([]trace.ClientID, 64)
	for i := range clients {
		clients[i] = trace.ClientID(fmt.Sprintf("c%02d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Record(clients[i%64], webgraph.DocID(i%500), at)
		at = at.Add(time.Second)
	}
}

// BenchmarkEngineSpeculate measures the per-request policy query.
func BenchmarkEngineSpeculate(b *testing.B) {
	cfg := DefaultEngineConfig()
	cfg.MinOccurrences = 2
	e, err := NewEngine(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	at := time.Date(1995, time.May, 1, 0, 0, 0, 0, time.UTC)
	// Train a fan-out of 20 successors on doc 1.
	for round := 0; round < 50; round++ {
		e.Record("c", 1, at)
		for j := 0; j < 20; j++ {
			e.Record("c", webgraph.DocID(2+j%4), at.Add(time.Duration(j+1)*200*time.Millisecond))
		}
		at = at.Add(time.Hour)
	}
	e.Refresh(at)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := e.Speculate(1, nil); len(got) == 0 {
			b.Fatal("nothing learned")
		}
	}
}

// BenchmarkReplicatorRecord measures popularity tracking throughput.
func BenchmarkReplicatorRecord(b *testing.B) {
	r := NewReplicator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(webgraph.DocID(i%2000), int64(1000+i%5000), i%3 != 0)
	}
}

// BenchmarkReplicaSet measures ranked replica-set construction.
func BenchmarkReplicaSet(b *testing.B) {
	r := NewReplicator()
	for i := 0; i < 100000; i++ {
		r.Record(webgraph.DocID(i%2000), int64(1000+i%5000), i%3 != 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if set := r.ReplicaSet(1 << 20); len(set) == 0 {
			b.Fatal("empty replica set")
		}
	}
}
