// Package speculation implements the server-side speculation policies of
// §3.2–3.4: given a client's request for document D_i, which other documents
// should the server push (or hint) along with it?
//
// The paper's baseline policy pushes every D_j with p*[i,j] ≥ T_p, subject
// to a MaxSize cap on individual documents. Variations studied in §3.4 and
// implemented here: thresholding the raw P instead of its closure (an
// ablation), top-K selection, embedding-only speculation (T_p ≈ 1, which the
// paper notes costs no wasted bandwidth), cooperative filtering against the
// client's cache digest, server-assisted prefetching (hints instead of
// pushes), and the hybrid protocol (push near-certain documents, hint the
// rest).
package speculation

import (
	"fmt"
	"sort"

	"specweb/internal/markov"
	"specweb/internal/webgraph"
)

// Policy produces speculative candidates for a requested document, in
// priority order (most valuable first).
type Policy interface {
	// Candidates returns the documents to consider pushing along with
	// doc, each with the policy's confidence that the client will request
	// it soon.
	Candidates(doc webgraph.DocID) []markov.Successor
	// Name identifies the policy in experiment output.
	Name() string
}

// RowSource supplies a document's successors sorted by decreasing
// probability (ties by ascending DocID). Both the live *markov.Matrix
// (which sorts and allocates per call) and the immutable *markov.Frozen
// snapshot (whose rows are pre-sorted shared slices, zero allocation)
// implement it; hot paths should hand policies a Frozen.
type RowSource interface {
	SortedRow(doc webgraph.DocID) []markov.Successor
}

// cut returns the prefix of a probability-descending row with P ≥ minP,
// located by binary search. Equal-probability successors straddling minP
// are all kept, in their deterministic Doc-ascending order.
func cut(row []markov.Successor, minP float64) []markov.Successor {
	i := sort.Search(len(row), func(k int) bool { return row[k].P < minP })
	return row[:i]
}

// Threshold is the paper's baseline policy: speculate on every successor
// with probability at least Tp in the matrix M (the closure P* in the
// baseline configuration; passing the raw P instead is the §3.4 ablation).
type Threshold struct {
	M  RowSource
	Tp float64
}

// Candidates returns successors with p ≥ Tp in decreasing probability. The
// cut is a binary search on the sorted row; over a Frozen snapshot the
// whole call allocates nothing.
func (t Threshold) Candidates(doc webgraph.DocID) []markov.Successor {
	return cut(t.M.SortedRow(doc), t.Tp)
}

// Name identifies the policy.
func (t Threshold) Name() string { return fmt.Sprintf("p*>=%.2f", t.Tp) }

// TopK speculates on the K most likely successors, optionally requiring a
// minimum probability.
type TopK struct {
	M    RowSource
	K    int
	MinP float64
}

// Candidates returns up to K successors with p ≥ MinP.
func (t TopK) Candidates(doc webgraph.DocID) []markov.Successor {
	row := t.M.SortedRow(doc)
	if t.K >= 0 && len(row) > t.K {
		row = row[:t.K]
	}
	return cut(row, t.MinP)
}

// Name identifies the policy.
func (t TopK) Name() string { return fmt.Sprintf("top%d(p>=%.2f)", t.K, t.MinP) }

// None never speculates; it is the non-speculative baseline arm.
type None struct{}

// Candidates returns nothing.
func (None) Candidates(webgraph.DocID) []markov.Successor { return nil }

// Name identifies the policy.
func (None) Name() string { return "none" }

// Selector applies a policy plus the engine-level provisions of §3.2: the
// MaxSize cap ("a document D_j is never speculatively serviced if its size
// is greater than MaxSize") and exclusion of documents the server knows the
// client has (cooperative clients, §3.4).
type Selector struct {
	Policy Policy
	Site   *webgraph.Site
	// MaxSize caps individual speculative documents; 0 or negative means
	// no limit (the baseline's MaxSize = ∞).
	MaxSize int64
}

// Select returns the documents to push along with doc. exclude, when
// non-nil, suppresses documents the server believes the client already has
// (it receives each candidate and reports whether to skip it).
func (s *Selector) Select(doc webgraph.DocID, exclude func(webgraph.DocID) bool) []webgraph.DocID {
	cands := s.Policy.Candidates(doc)
	out := make([]webgraph.DocID, 0, len(cands))
	for _, c := range cands {
		if c.Doc == doc {
			continue
		}
		if s.MaxSize > 0 && s.Site.Valid(c.Doc) && s.Site.Doc(c.Doc).Size > s.MaxSize {
			continue
		}
		if exclude != nil && exclude(c.Doc) {
			continue
		}
		out = append(out, c.Doc)
	}
	return out
}

// Hint is one entry of a server-assisted prefetching list (§3.4): the
// server tells the client what it would have speculated, and the client
// decides what to prefetch.
type Hint struct {
	Doc  webgraph.DocID
	P    float64
	Size int64
}

// Hints returns the hint list for doc under the same policy and MaxSize
// provisions as Select.
func (s *Selector) Hints(doc webgraph.DocID, exclude func(webgraph.DocID) bool) []Hint {
	cands := s.Policy.Candidates(doc)
	out := make([]Hint, 0, len(cands))
	for _, c := range cands {
		if c.Doc == doc {
			continue
		}
		var size int64
		if s.Site.Valid(c.Doc) {
			size = s.Site.Doc(c.Doc).Size
		}
		if s.MaxSize > 0 && size > s.MaxSize {
			continue
		}
		if exclude != nil && exclude(c.Doc) {
			continue
		}
		out = append(out, Hint{Doc: c.Doc, P: c.P, Size: size})
	}
	return out
}

// Split implements the hybrid protocol of §3.4: candidates with probability
// at least embedThreshold are pushed (near-certain documents — embeddings
// cost no wasted bandwidth), the rest are returned as hints for
// client-initiated prefetching.
func (s *Selector) Split(doc webgraph.DocID, embedThreshold float64,
	exclude func(webgraph.DocID) bool) (push []webgraph.DocID, hints []Hint) {

	for _, h := range s.Hints(doc, exclude) {
		if h.P >= embedThreshold {
			push = append(push, h.Doc)
		} else {
			hints = append(hints, h)
		}
	}
	return push, hints
}
