package speculation

import (
	"testing"

	"specweb/internal/markov"
	"specweb/internal/stats"
	"specweb/internal/webgraph"
)

func testSite(t *testing.T) *webgraph.Site {
	t.Helper()
	site, err := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return site
}

func testMatrix() *markov.Matrix {
	m := markov.NewMatrix()
	m.Set(1, 2, 0.9)
	m.Set(1, 3, 0.5)
	m.Set(1, 4, 0.2)
	m.Set(1, 5, 1.0)
	return m
}

func TestThresholdPolicy(t *testing.T) {
	p := Threshold{M: testMatrix(), Tp: 0.5}
	c := p.Candidates(1)
	if len(c) != 3 || c[0].Doc != 5 || c[1].Doc != 2 || c[2].Doc != 3 {
		t.Errorf("candidates = %v", c)
	}
	if got := p.Candidates(9); len(got) != 0 {
		t.Errorf("unknown doc candidates = %v", got)
	}
	all := Threshold{M: testMatrix(), Tp: 0}.Candidates(1)
	if len(all) != 4 {
		t.Errorf("Tp=0 should return all: %v", all)
	}
	none := Threshold{M: testMatrix(), Tp: 1}.Candidates(1)
	if len(none) != 1 || none[0].Doc != 5 {
		t.Errorf("Tp=1 should return only certainties: %v", none)
	}
}

func TestTopKPolicy(t *testing.T) {
	p := TopK{M: testMatrix(), K: 2}
	c := p.Candidates(1)
	if len(c) != 2 || c[0].Doc != 5 || c[1].Doc != 2 {
		t.Errorf("top2 = %v", c)
	}
	p = TopK{M: testMatrix(), K: 10, MinP: 0.4}
	c = p.Candidates(1)
	if len(c) != 3 {
		t.Errorf("top10 minP 0.4 = %v", c)
	}
}

// TestThresholdOverFrozen runs the policies over a frozen snapshot: the
// candidates must match the live-matrix evaluation exactly (the engine's
// byte-identical-decisions guarantee rests on this).
func TestThresholdOverFrozen(t *testing.T) {
	m := testMatrix()
	f := markov.Freeze(m)
	for _, tp := range []float64{0, 0.2, 0.5, 0.9, 1} {
		live := Threshold{M: m, Tp: tp}.Candidates(1)
		froz := Threshold{M: f, Tp: tp}.Candidates(1)
		if len(live) != len(froz) {
			t.Fatalf("tp=%v: live %v vs frozen %v", tp, live, froz)
		}
		for i := range live {
			if live[i] != froz[i] {
				t.Errorf("tp=%v[%d]: live %v vs frozen %v", tp, i, live[i], froz[i])
			}
		}
	}
	for _, k := range []int{0, 1, 2, 10} {
		live := TopK{M: m, K: k, MinP: 0.3}.Candidates(1)
		froz := TopK{M: f, K: k, MinP: 0.3}.Candidates(1)
		if len(live) != len(froz) {
			t.Fatalf("k=%d: live %v vs frozen %v", k, live, froz)
		}
	}
}

// TestThresholdTieOrdering pins the cut's determinism: equal-probability
// successors keep ascending-DocID order, and a threshold equal to the tied
// probability keeps every member of the tie group (the binary search must
// not split it).
func TestThresholdTieOrdering(t *testing.T) {
	m := markov.NewMatrix()
	m.Set(1, 9, 0.5)
	m.Set(1, 3, 0.5)
	m.Set(1, 6, 0.5)
	m.Set(1, 2, 0.8)
	m.Set(1, 8, 0.1)
	for _, src := range []RowSource{m, markov.Freeze(m)} {
		got := Threshold{M: src, Tp: 0.5}.Candidates(1)
		want := []webgraph.DocID{2, 3, 6, 9}
		if len(got) != len(want) {
			t.Fatalf("cut at tie value = %v, want docs %v", got, want)
		}
		for i, d := range want {
			if got[i].Doc != d {
				t.Errorf("tie order[%d] = %d, want %d", i, got[i].Doc, d)
			}
		}
		if top := (TopK{M: src, K: 3, MinP: 0.5}).Candidates(1); len(top) != 3 || top[2].Doc != 6 {
			t.Errorf("topK over ties = %v", top)
		}
	}
}

func TestNonePolicy(t *testing.T) {
	if c := (None{}).Candidates(1); len(c) != 0 {
		t.Errorf("None speculated: %v", c)
	}
	if None.Name(None{}) != "none" {
		t.Error("name wrong")
	}
}

func TestPolicyNames(t *testing.T) {
	if (Threshold{Tp: 0.25}).Name() != "p*>=0.25" {
		t.Errorf("threshold name = %q", (Threshold{Tp: 0.25}).Name())
	}
	if (TopK{K: 3, MinP: 0.1}).Name() != "top3(p>=0.10)" {
		t.Errorf("topk name = %q", TopK{K: 3, MinP: 0.1}.Name())
	}
}

func TestSelectorMaxSize(t *testing.T) {
	site := testSite(t)
	// Build a matrix whose successors are real documents with known sizes.
	m := markov.NewMatrix()
	var small, big webgraph.DocID = -1, -1
	for i := 1; i < len(site.Docs); i++ { // skip doc 0, the requested one
		if site.Docs[i].Size < 4096 && small == -1 {
			small = site.Docs[i].ID
		}
		if site.Docs[i].Size > 20000 && big == -1 {
			big = site.Docs[i].ID
		}
	}
	if small == -1 || big == -1 {
		t.Skip("site lacks size spread")
	}
	m.Set(0, small, 0.9)
	m.Set(0, big, 0.9)
	sel := &Selector{Policy: Threshold{M: m, Tp: 0.5}, Site: site, MaxSize: 8192}
	got := sel.Select(0, nil)
	if len(got) != 1 || got[0] != small {
		t.Errorf("MaxSize filter kept %v, want only %d", got, small)
	}
	sel.MaxSize = 0
	if got := sel.Select(0, nil); len(got) != 2 {
		t.Errorf("MaxSize=∞ kept %v", got)
	}
}

func TestSelectorExclude(t *testing.T) {
	site := testSite(t)
	m := markov.NewMatrix()
	m.Set(0, 1, 0.9)
	m.Set(0, 2, 0.8)
	sel := &Selector{Policy: Threshold{M: m, Tp: 0.5}, Site: site}
	got := sel.Select(0, func(d webgraph.DocID) bool { return d == 1 })
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("exclude failed: %v", got)
	}
}

func TestSelectorSkipsSelf(t *testing.T) {
	site := testSite(t)
	m := markov.NewMatrix()
	m.Set(0, 1, 0.9)
	sel := &Selector{Policy: Threshold{M: m, Tp: 0}, Site: site}
	for _, d := range sel.Select(0, nil) {
		if d == 0 {
			t.Error("selector returned the requested doc itself")
		}
	}
}

func TestHints(t *testing.T) {
	site := testSite(t)
	m := markov.NewMatrix()
	m.Set(0, 1, 0.9)
	m.Set(0, 2, 0.3)
	sel := &Selector{Policy: Threshold{M: m, Tp: 0.2}, Site: site}
	hints := sel.Hints(0, nil)
	if len(hints) != 2 {
		t.Fatalf("hints = %v", hints)
	}
	if hints[0].Doc != 1 || hints[0].P != 0.9 || hints[0].Size != site.Doc(1).Size {
		t.Errorf("hint[0] = %+v", hints[0])
	}
}

func TestSplitHybrid(t *testing.T) {
	site := testSite(t)
	m := markov.NewMatrix()
	m.Set(0, 1, 1.0)  // embedded-level certainty
	m.Set(0, 2, 0.96) // above threshold
	m.Set(0, 3, 0.4)  // hint
	sel := &Selector{Policy: Threshold{M: m, Tp: 0.2}, Site: site}
	push, hints := sel.Split(0, 0.95, nil)
	if len(push) != 2 {
		t.Errorf("push = %v, want docs 1,2", push)
	}
	if len(hints) != 1 || hints[0].Doc != 3 {
		t.Errorf("hints = %v, want doc 3", hints)
	}
}
