package speculation

import (
	"testing"

	"specweb/internal/markov"
	"specweb/internal/stats"
	"specweb/internal/webgraph"
)

func testSite(t *testing.T) *webgraph.Site {
	t.Helper()
	site, err := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return site
}

func testMatrix() *markov.Matrix {
	m := markov.NewMatrix()
	m.Set(1, 2, 0.9)
	m.Set(1, 3, 0.5)
	m.Set(1, 4, 0.2)
	m.Set(1, 5, 1.0)
	return m
}

func TestThresholdPolicy(t *testing.T) {
	p := Threshold{M: testMatrix(), Tp: 0.5}
	c := p.Candidates(1)
	if len(c) != 3 || c[0].Doc != 5 || c[1].Doc != 2 || c[2].Doc != 3 {
		t.Errorf("candidates = %v", c)
	}
	if got := p.Candidates(9); len(got) != 0 {
		t.Errorf("unknown doc candidates = %v", got)
	}
	all := Threshold{M: testMatrix(), Tp: 0}.Candidates(1)
	if len(all) != 4 {
		t.Errorf("Tp=0 should return all: %v", all)
	}
	none := Threshold{M: testMatrix(), Tp: 1}.Candidates(1)
	if len(none) != 1 || none[0].Doc != 5 {
		t.Errorf("Tp=1 should return only certainties: %v", none)
	}
}

func TestTopKPolicy(t *testing.T) {
	p := TopK{M: testMatrix(), K: 2}
	c := p.Candidates(1)
	if len(c) != 2 || c[0].Doc != 5 || c[1].Doc != 2 {
		t.Errorf("top2 = %v", c)
	}
	p = TopK{M: testMatrix(), K: 10, MinP: 0.4}
	c = p.Candidates(1)
	if len(c) != 3 {
		t.Errorf("top10 minP 0.4 = %v", c)
	}
}

func TestNonePolicy(t *testing.T) {
	if c := (None{}).Candidates(1); len(c) != 0 {
		t.Errorf("None speculated: %v", c)
	}
	if None.Name(None{}) != "none" {
		t.Error("name wrong")
	}
}

func TestPolicyNames(t *testing.T) {
	if (Threshold{Tp: 0.25}).Name() != "p*>=0.25" {
		t.Errorf("threshold name = %q", (Threshold{Tp: 0.25}).Name())
	}
	if (TopK{K: 3, MinP: 0.1}).Name() != "top3(p>=0.10)" {
		t.Errorf("topk name = %q", TopK{K: 3, MinP: 0.1}.Name())
	}
}

func TestSelectorMaxSize(t *testing.T) {
	site := testSite(t)
	// Build a matrix whose successors are real documents with known sizes.
	m := markov.NewMatrix()
	var small, big webgraph.DocID = -1, -1
	for i := 1; i < len(site.Docs); i++ { // skip doc 0, the requested one
		if site.Docs[i].Size < 4096 && small == -1 {
			small = site.Docs[i].ID
		}
		if site.Docs[i].Size > 20000 && big == -1 {
			big = site.Docs[i].ID
		}
	}
	if small == -1 || big == -1 {
		t.Skip("site lacks size spread")
	}
	m.Set(0, small, 0.9)
	m.Set(0, big, 0.9)
	sel := &Selector{Policy: Threshold{M: m, Tp: 0.5}, Site: site, MaxSize: 8192}
	got := sel.Select(0, nil)
	if len(got) != 1 || got[0] != small {
		t.Errorf("MaxSize filter kept %v, want only %d", got, small)
	}
	sel.MaxSize = 0
	if got := sel.Select(0, nil); len(got) != 2 {
		t.Errorf("MaxSize=∞ kept %v", got)
	}
}

func TestSelectorExclude(t *testing.T) {
	site := testSite(t)
	m := markov.NewMatrix()
	m.Set(0, 1, 0.9)
	m.Set(0, 2, 0.8)
	sel := &Selector{Policy: Threshold{M: m, Tp: 0.5}, Site: site}
	got := sel.Select(0, func(d webgraph.DocID) bool { return d == 1 })
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("exclude failed: %v", got)
	}
}

func TestSelectorSkipsSelf(t *testing.T) {
	site := testSite(t)
	m := markov.NewMatrix()
	m.Set(0, 1, 0.9)
	sel := &Selector{Policy: Threshold{M: m, Tp: 0}, Site: site}
	for _, d := range sel.Select(0, nil) {
		if d == 0 {
			t.Error("selector returned the requested doc itself")
		}
	}
}

func TestHints(t *testing.T) {
	site := testSite(t)
	m := markov.NewMatrix()
	m.Set(0, 1, 0.9)
	m.Set(0, 2, 0.3)
	sel := &Selector{Policy: Threshold{M: m, Tp: 0.2}, Site: site}
	hints := sel.Hints(0, nil)
	if len(hints) != 2 {
		t.Fatalf("hints = %v", hints)
	}
	if hints[0].Doc != 1 || hints[0].P != 0.9 || hints[0].Size != site.Doc(1).Size {
		t.Errorf("hint[0] = %+v", hints[0])
	}
}

func TestSplitHybrid(t *testing.T) {
	site := testSite(t)
	m := markov.NewMatrix()
	m.Set(0, 1, 1.0)  // embedded-level certainty
	m.Set(0, 2, 0.96) // above threshold
	m.Set(0, 3, 0.4)  // hint
	sel := &Selector{Policy: Threshold{M: m, Tp: 0.2}, Site: site}
	push, hints := sel.Split(0, 0.95, nil)
	if len(push) != 2 {
		t.Errorf("push = %v, want docs 1,2", push)
	}
	if len(hints) != 1 || hints[0].Doc != 3 {
		t.Errorf("hints = %v, want doc 3", hints)
	}
}
