// Package leakcheck fails tests that leave goroutines behind — the
// cheap, dependency-free cousin of goleak. Register it first thing in a
// test; at cleanup time it compares the set of interesting goroutine
// stacks against the snapshot taken at registration, polling briefly so
// goroutines that are mid-exit (connection readers draining after a
// server Close) get a chance to finish before being called leaks.
package leakcheck

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// settleTimeout bounds how long Check waits for goroutines to drain.
const settleTimeout = 5 * time.Second

// Check snapshots the current goroutines and registers a cleanup that
// fails t if new interesting goroutines outlive the test. Register it
// before any cleanup that tears infrastructure down (t.Cleanup runs
// last-in first-out, so the leak check must be first in).
func Check(t testing.TB) {
	t.Helper()
	before := interesting()
	t.Cleanup(func() {
		// Idle keep-alive connections in the shared transport look like
		// leaks but are just pooling; drop them before judging.
		http.DefaultClient.CloseIdleConnections()
		deadline := time.Now().Add(settleTimeout)
		var leaked map[string]int
		for {
			leaked = diff(interesting(), before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
			http.DefaultClient.CloseIdleConnections()
		}
		var sigs []string
		for sig := range leaked {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		var b strings.Builder
		for _, sig := range sigs {
			fmt.Fprintf(&b, "\n  %d x %s", leaked[sig], sig)
		}
		t.Errorf("leakcheck: %d goroutine kind(s) leaked:%s", len(sigs), b.String())
	})
}

// diff returns the signatures (and excess counts) present in after
// beyond their count in before.
func diff(after, before map[string]int) map[string]int {
	out := make(map[string]int)
	for sig, n := range after {
		if extra := n - before[sig]; extra > 0 {
			out[sig] = extra
		}
	}
	return out
}

// interesting returns a multiset of goroutine signatures, excluding the
// runtime's and test framework's own goroutines.
func interesting() map[string]int {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	out := make(map[string]int)
	for _, stanza := range strings.Split(string(buf), "\n\n") {
		sig, ok := signature(stanza)
		if ok {
			out[sig]++
		}
	}
	return out
}

// benign marks goroutines that belong to the runtime or the testing
// harness, not to code under test.
var benign = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*T).Run(",
	"testing.runTests(",
	"testing.(*M).",
	"runtime.goexit",
	"runtime.gc",
	"runtime.forcegchelper",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.scavenge",
	"runtime.ReadTrace",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime/pprof.",
	"runtime/trace.",
}

// signature reduces a goroutine stanza to its chain of function names —
// stable across runs, unlike goroutine IDs, addresses, and file offsets.
func signature(stanza string) (string, bool) {
	lines := strings.Split(strings.TrimSpace(stanza), "\n")
	if len(lines) < 2 {
		return "", false
	}
	var funcs []string
	for _, l := range lines[1:] {
		if strings.HasPrefix(l, "\t") || strings.HasPrefix(l, "goroutine ") {
			continue
		}
		// Function lines look like "pkg.Func(0x...)" or
		// "created by pkg.Func in goroutine N".
		name := l
		if strings.HasPrefix(name, "created by ") {
			if i := strings.Index(name, " in goroutine "); i > 0 {
				name = name[:i]
			}
		} else if i := strings.Index(name, "("); i > 0 {
			name = name[:i]
		}
		funcs = append(funcs, name)
	}
	if len(funcs) == 0 {
		return "", false
	}
	sig := strings.Join(funcs, " <- ")
	for _, b := range benign {
		if strings.Contains(sig, strings.TrimSuffix(b, "(")) {
			return "", false
		}
	}
	return sig, true
}
