package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestDetectsBlockedGoroutine(t *testing.T) {
	before := interesting()
	ch := make(chan struct{})
	go func() { <-ch }()
	time.Sleep(20 * time.Millisecond)
	if len(diff(interesting(), before)) == 0 {
		t.Fatal("blocked goroutine not detected")
	}
	close(ch)
	deadline := time.Now().Add(2 * time.Second)
	for len(diff(interesting(), before)) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("goroutine did not settle after unblocking")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCheckPassesWhenClean(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

func TestSignatureStability(t *testing.T) {
	stanza := "goroutine 42 [chan receive]:\n" +
		"specweb/internal/httpspec.(*Proxy).loop(0xc000123456)\n" +
		"\t/root/repo/internal/httpspec/proxy.go:100 +0x19\n" +
		"created by specweb/internal/httpspec.NewProxy in goroutine 7\n" +
		"\t/root/repo/internal/httpspec/proxy.go:50 +0x66\n"
	a, ok := signature(stanza)
	if !ok {
		t.Fatal("stanza rejected")
	}
	b, _ := signature(strings.ReplaceAll(stanza, "goroutine 7", "goroutine 9"))
	if a != b {
		t.Fatalf("signature not stable across spawner IDs:\n%s\n%s", a, b)
	}
	if _, ok := signature("goroutine 1 [running]:\ntesting.tRunner(0x1, 0x2)\n\t/x.go:1\n"); ok {
		t.Fatal("testing harness goroutine not filtered")
	}
}
