package trace

import "container/heap"

// Stream yields requests one at a time in canonical trace order. It is the
// streaming counterpart of Trace.Requests: a consumer that only needs each
// request once (the CLF writer, the load generator's warmup walk) holds
// O(1) requests instead of O(trace).
type Stream interface {
	// Next returns the next request, or ok=false at end of stream.
	Next() (Request, bool)
}

// ClientCursor is one client's request stream with a non-generating peek.
// The peek is what keeps a k-way merge over a large client population
// cheap: the merge heap orders cursors by their next event *time* without
// forcing every cursor to materialize its next session up front, so only
// clients with a session actually in flight hold any buffered requests.
type ClientCursor interface {
	// Client identifies the cursor's client; all requests it yields carry
	// this ID. It is the cross-client tiebreaker of the canonical order.
	Client() ClientID
	// PeekTime returns the UnixNano timestamp of the next request without
	// generating it, or ok=false when the cursor is exhausted. Next must
	// return a request with exactly this timestamp.
	PeekTime() (int64, bool)
	// Next generates and returns the next request.
	Next() (Request, bool)
}

// mergeEntry is one live cursor in the merge heap.
type mergeEntry struct {
	c  ClientCursor
	at int64 // next event time, UnixNano
	id ClientID
}

type mergeHeap []mergeEntry

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].id < h[j].id
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeEntry)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	out := old[n-1]
	*h = old[:n-1]
	return out
}

// Merged is a Stream over a set of client cursors in canonical order:
// ascending time, ties broken by ClientID, and within one client by that
// client's own generation order. Because the order is a total order on
// events that never references the cursor set, merging any subset of
// clients yields exactly the full merge restricted to that subset — the
// property that makes shard-partitioned replay byte-identical to a
// single-process run regardless of shard count.
type Merged struct {
	h mergeHeap
}

// MergeCursors builds the canonical-order merge of the given cursors.
// Exhausted cursors are dropped immediately; the rest never buffer more
// than their currently open session.
func MergeCursors(cs []ClientCursor) *Merged {
	m := &Merged{h: make(mergeHeap, 0, len(cs))}
	for _, c := range cs {
		if at, ok := c.PeekTime(); ok {
			m.h = append(m.h, mergeEntry{c: c, at: at, id: c.Client()})
		}
	}
	heap.Init(&m.h)
	return m
}

// Next pops the globally earliest request across all cursors.
func (m *Merged) Next() (Request, bool) {
	if len(m.h) == 0 {
		return Request{}, false
	}
	e := &m.h[0]
	req, ok := e.c.Next()
	if !ok {
		// A cursor whose PeekTime succeeded must yield; treat a refusal
		// as exhaustion.
		heap.Pop(&m.h)
		return m.Next()
	}
	if at, more := e.c.PeekTime(); more {
		e.at = at
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	return req, true
}

// Materialize drains a stream into a Trace. The result is already in
// canonical order, so it passes Validate without re-sorting.
func Materialize(s Stream) *Trace {
	t := &Trace{}
	for {
		req, ok := s.Next()
		if !ok {
			return t
		}
		t.Requests = append(t.Requests, req)
	}
}

// CountStream drains a stream, returning the request count and the
// distinct clients in first-appearance order — the two facts the load
// generator's sizing pass needs without holding any request.
func CountStream(s Stream) (n int, clients []ClientID) {
	seen := make(map[ClientID]bool)
	for {
		req, ok := s.Next()
		if !ok {
			return n, clients
		}
		n++
		if !seen[req.Client] {
			seen[req.Client] = true
			clients = append(clients, req.Client)
		}
	}
}

// SliceCursor adapts one client's pre-materialized, time-ordered requests
// to the ClientCursor interface (tests and trace-file replay).
type SliceCursor struct {
	ID   ClientID
	Reqs []Request
	pos  int
}

// Client returns the cursor's client ID.
func (c *SliceCursor) Client() ClientID { return c.ID }

// PeekTime reports the next request's timestamp.
func (c *SliceCursor) PeekTime() (int64, bool) {
	if c.pos >= len(c.Reqs) {
		return 0, false
	}
	return c.Reqs[c.pos].Time.UnixNano(), true
}

// Next yields the next request.
func (c *SliceCursor) Next() (Request, bool) {
	if c.pos >= len(c.Reqs) {
		return Request{}, false
	}
	r := c.Reqs[c.pos]
	c.pos++
	return r, true
}
