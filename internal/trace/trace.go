// Package trace defines specweb's access-trace model and the operations the
// paper performs on raw HTTP logs: Common Log Format reading and writing,
// the preprocessing of §3.2 (dropping accesses to non-existent documents and
// scripts, renaming aliases), per-client ordering, and the segmentation of a
// client's request stream into traversal strides and sessions
// (StrideTimeout / SessionTimeout, §3.2).
package trace

import (
	"fmt"
	"sort"
	"time"

	"specweb/internal/webgraph"
)

// ClientID identifies a requesting client (host or proxy) in a trace.
type ClientID string

// Request is one client-initiated document access.
type Request struct {
	Time   time.Time
	Client ClientID
	Doc    webgraph.DocID
	Size   int64 // bytes transferred (the document size at access time)
	Remote bool  // true if the client is outside the server's organization
	Status int   // HTTP status; preprocessing keeps only 200s
	Path   string
}

// Trace is a time-ordered sequence of requests against one site.
type Trace struct {
	Requests []Request

	// idx caches the per-client view (Clients / ByClient). It is built
	// lazily on first use and considered valid only while len(Requests)
	// is unchanged; SortByTime and Invalidate drop it. Callers that
	// mutate Requests in place without changing its length must call
	// Invalidate themselves.
	idx *clientIndex
}

// clientIndex is the cached per-client view of a trace.
type clientIndex struct {
	n        int // len(Requests) the index was built against
	order    []ClientID
	byClient map[ClientID][]Request
}

// index returns the cached per-client view, rebuilding it when stale.
// One O(n) pass replaces what used to be a fresh map + slice per call —
// the refresh paths (engine flush, estguard, loadgen setup) call Clients
// and ByClient repeatedly on the same trace, and Strides/Sessions used to
// rescan the whole trace once per client.
func (t *Trace) index() *clientIndex {
	if t.idx != nil && t.idx.n == len(t.Requests) {
		return t.idx
	}
	idx := &clientIndex{n: len(t.Requests), byClient: make(map[ClientID][]Request)}
	for i := range t.Requests {
		c := t.Requests[i].Client
		reqs, seen := idx.byClient[c]
		if !seen {
			idx.order = append(idx.order, c)
		}
		idx.byClient[c] = append(reqs, t.Requests[i])
	}
	t.idx = idx
	return idx
}

// Invalidate drops the cached per-client index. Mutating Requests in
// place (without changing its length) requires an explicit Invalidate;
// appends and SortByTime invalidate implicitly.
func (t *Trace) Invalidate() { t.idx = nil }

// Len returns the number of requests.
func (t *Trace) Len() int { return len(t.Requests) }

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	return &Trace{Requests: append([]Request(nil), t.Requests...)}
}

// Span returns the first and last request times. ok is false for an empty
// trace.
func (t *Trace) Span() (first, last time.Time, ok bool) {
	if len(t.Requests) == 0 {
		return time.Time{}, time.Time{}, false
	}
	return t.Requests[0].Time, t.Requests[len(t.Requests)-1].Time, true
}

// SortByTime orders requests chronologically (stable, so simultaneous
// requests keep their relative order).
func (t *Trace) SortByTime() {
	sort.SliceStable(t.Requests, func(i, j int) bool {
		return t.Requests[i].Time.Before(t.Requests[j].Time)
	})
	t.Invalidate()
}

// Validate checks trace invariants: chronological order and non-negative
// sizes.
func (t *Trace) Validate() error {
	for i := range t.Requests {
		r := &t.Requests[i]
		if r.Size < 0 {
			return fmt.Errorf("trace: request %d has negative size %d", i, r.Size)
		}
		if r.Client == "" {
			return fmt.Errorf("trace: request %d has empty client", i)
		}
		if i > 0 && r.Time.Before(t.Requests[i-1].Time) {
			return fmt.Errorf("trace: request %d out of order (%v before %v)",
				i, r.Time, t.Requests[i-1].Time)
		}
	}
	return nil
}

// Clients returns the distinct client IDs in first-appearance order. The
// slice is served from the cached index: treat it as read-only.
func (t *Trace) Clients() []ClientID {
	return t.index().order
}

// ByClient groups requests per client, preserving chronological order within
// each client. The map is served from the cached index: treat it as
// read-only.
func (t *Trace) ByClient() map[ClientID][]Request {
	return t.index().byClient
}

// TotalBytes sums the bytes of all requests.
func (t *Trace) TotalBytes() int64 {
	var b int64
	for i := range t.Requests {
		b += t.Requests[i].Size
	}
	return b
}

// RemoteFraction returns the fraction of requests issued by remote clients.
func (t *Trace) RemoteFraction() float64 {
	if len(t.Requests) == 0 {
		return 0
	}
	n := 0
	for i := range t.Requests {
		if t.Requests[i].Remote {
			n++
		}
	}
	return float64(n) / float64(len(t.Requests))
}

// Window returns the sub-trace with request times in [from, to).
// The trace must be time-sorted.
func (t *Trace) Window(from, to time.Time) *Trace {
	lo := sort.Search(len(t.Requests), func(i int) bool {
		return !t.Requests[i].Time.Before(from)
	})
	hi := sort.Search(len(t.Requests), func(i int) bool {
		return !t.Requests[i].Time.Before(to)
	})
	return &Trace{Requests: t.Requests[lo:hi]}
}

// Stride is a maximal run of one client's requests in which successive
// requests are separated by less than the stride timeout (§3.2: "a sequence
// of requests where the time between successive requests is less than
// StrideTimeout seconds"). Strides are the unit over which document
// dependencies are significant.
type Stride struct {
	Client   ClientID
	Requests []Request
}

// Segment splits one client's chronologically ordered requests into maximal
// runs with inter-request gaps strictly less than timeout. A non-positive
// timeout yields one single-request segment per request.
func Segment(reqs []Request, timeout time.Duration) [][]Request {
	if len(reqs) == 0 {
		return nil
	}
	var out [][]Request
	start := 0
	for i := 1; i < len(reqs); i++ {
		if timeout <= 0 || reqs[i].Time.Sub(reqs[i-1].Time) >= timeout {
			out = append(out, reqs[start:i])
			start = i
		}
	}
	out = append(out, reqs[start:])
	return out
}

// Strides segments the whole trace into per-client strides using
// strideTimeout. The result preserves chronological order within each
// stride; stride order follows each client's first request.
func (t *Trace) Strides(strideTimeout time.Duration) []Stride {
	var out []Stride
	for _, c := range t.Clients() {
		reqs := t.clientRequests(c)
		for _, seg := range Segment(reqs, strideTimeout) {
			out = append(out, Stride{Client: c, Requests: seg})
		}
	}
	return out
}

// Session is a maximal run of one client's requests with gaps below the
// session timeout; it is the lifetime of the paper's client cache model
// ("a document ... remains in the cache until it is purged at the end of
// the session", §3.2).
type Session struct {
	Client   ClientID
	Requests []Request
}

// Sessions segments the trace into per-client sessions using
// sessionTimeout. Passing a non-positive timeout models cache-less clients
// (every request its own session); the paper's SessionTimeout = ∞ is
// expressed by passing a duration longer than the trace span.
func (t *Trace) Sessions(sessionTimeout time.Duration) []Session {
	var out []Session
	for _, c := range t.Clients() {
		reqs := t.clientRequests(c)
		for _, seg := range Segment(reqs, sessionTimeout) {
			out = append(out, Session{Client: c, Requests: seg})
		}
	}
	return out
}

func (t *Trace) clientRequests(c ClientID) []Request {
	return t.index().byClient[c]
}
