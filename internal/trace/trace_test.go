package trace

import (
	"testing"
	"testing/quick"
	"time"

	"specweb/internal/webgraph"
)

var t0 = time.Date(1995, time.January, 9, 12, 0, 0, 0, time.UTC)

func req(client string, offset time.Duration, doc webgraph.DocID, size int64) Request {
	return Request{
		Time:   t0.Add(offset),
		Client: ClientID(client),
		Doc:    doc,
		Size:   size,
		Path:   "/x",
	}
}

func TestSpanAndLen(t *testing.T) {
	tr := &Trace{Requests: []Request{
		req("a", 0, 1, 100),
		req("a", time.Minute, 2, 200),
	}}
	first, last, ok := tr.Span()
	if !ok || !first.Equal(t0) || !last.Equal(t0.Add(time.Minute)) {
		t.Errorf("Span = %v %v %v", first, last, ok)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d", tr.Len())
	}
	var empty Trace
	if _, _, ok := empty.Span(); ok {
		t.Error("empty trace Span ok")
	}
}

func TestSortAndValidate(t *testing.T) {
	tr := &Trace{Requests: []Request{
		req("a", time.Minute, 1, 10),
		req("b", 0, 2, 20),
	}}
	if err := tr.Validate(); err == nil {
		t.Error("out-of-order trace validated")
	}
	tr.SortByTime()
	if err := tr.Validate(); err != nil {
		t.Errorf("sorted trace failed validation: %v", err)
	}
	if tr.Requests[0].Client != "b" {
		t.Error("sort did not reorder")
	}

	bad := &Trace{Requests: []Request{{Time: t0, Client: "a", Size: -1}}}
	if err := bad.Validate(); err == nil {
		t.Error("negative size validated")
	}
	bad2 := &Trace{Requests: []Request{{Time: t0, Size: 1}}}
	if err := bad2.Validate(); err == nil {
		t.Error("empty client validated")
	}
}

func TestClientsOrderAndByClient(t *testing.T) {
	tr := &Trace{Requests: []Request{
		req("b", 0, 1, 1),
		req("a", time.Second, 2, 1),
		req("b", 2*time.Second, 3, 1),
	}}
	cs := tr.Clients()
	if len(cs) != 2 || cs[0] != "b" || cs[1] != "a" {
		t.Errorf("Clients = %v", cs)
	}
	m := tr.ByClient()
	if len(m["b"]) != 2 || len(m["a"]) != 1 {
		t.Errorf("ByClient sizes wrong: %v", m)
	}
	if m["b"][0].Doc != 1 || m["b"][1].Doc != 3 {
		t.Error("ByClient lost chronological order")
	}
}

func TestTotalsAndRemoteFraction(t *testing.T) {
	tr := &Trace{Requests: []Request{
		{Time: t0, Client: "r", Size: 100, Remote: true},
		{Time: t0, Client: "l", Size: 300, Remote: false},
	}}
	if tr.TotalBytes() != 400 {
		t.Errorf("TotalBytes = %d", tr.TotalBytes())
	}
	if tr.RemoteFraction() != 0.5 {
		t.Errorf("RemoteFraction = %v", tr.RemoteFraction())
	}
	var empty Trace
	if empty.RemoteFraction() != 0 {
		t.Error("empty RemoteFraction should be 0")
	}
}

func TestWindow(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 10; i++ {
		tr.Requests = append(tr.Requests, req("c", time.Duration(i)*time.Hour, webgraph.DocID(i), 1))
	}
	w := tr.Window(t0.Add(2*time.Hour), t0.Add(5*time.Hour))
	if w.Len() != 3 || w.Requests[0].Doc != 2 || w.Requests[2].Doc != 4 {
		t.Errorf("Window returned docs %v", w.Requests)
	}
	if tr.Window(t0.Add(100*time.Hour), t0.Add(200*time.Hour)).Len() != 0 {
		t.Error("out-of-range window not empty")
	}
}

func TestSegment(t *testing.T) {
	reqs := []Request{
		req("c", 0, 0, 1),
		req("c", 2*time.Second, 1, 1),
		req("c", 10*time.Second, 2, 1),
		req("c", 11*time.Second, 3, 1),
	}
	segs := Segment(reqs, 5*time.Second)
	if len(segs) != 2 || len(segs[0]) != 2 || len(segs[1]) != 2 {
		t.Fatalf("segments = %v", segs)
	}
	// Exactly-at-timeout gaps split (strictly less than).
	segs = Segment(reqs[:2], 2*time.Second)
	if len(segs) != 2 {
		t.Errorf("gap == timeout should split, got %d segments", len(segs))
	}
	if Segment(nil, time.Second) != nil {
		t.Error("empty input should give nil")
	}
	// Non-positive timeout: one segment per request.
	segs = Segment(reqs, 0)
	if len(segs) != 4 {
		t.Errorf("zero timeout gave %d segments, want 4", len(segs))
	}
}

func TestStridesPerClient(t *testing.T) {
	tr := &Trace{Requests: []Request{
		req("a", 0, 0, 1),
		req("b", time.Second, 1, 1),
		req("a", 2*time.Second, 2, 1),
		req("a", time.Minute, 3, 1),
	}}
	tr.SortByTime()
	strides := tr.Strides(5 * time.Second)
	// a: [0,2] then [3]; b: [1] → 3 strides.
	if len(strides) != 3 {
		t.Fatalf("got %d strides, want 3", len(strides))
	}
	if strides[0].Client != "a" || len(strides[0].Requests) != 2 {
		t.Errorf("first stride = %+v", strides[0])
	}
}

func TestSessions(t *testing.T) {
	tr := &Trace{Requests: []Request{
		req("a", 0, 0, 1),
		req("a", 30*time.Minute, 1, 1),
		req("a", 200*time.Minute, 2, 1),
	}}
	sessions := tr.Sessions(60 * time.Minute)
	if len(sessions) != 2 {
		t.Fatalf("got %d sessions, want 2", len(sessions))
	}
	// Infinite-session emulation: timeout longer than the trace span.
	sessions = tr.Sessions(1000 * time.Hour)
	if len(sessions) != 1 {
		t.Errorf("infinite timeout gave %d sessions, want 1", len(sessions))
	}
	// Cache-less emulation.
	sessions = tr.Sessions(0)
	if len(sessions) != 3 {
		t.Errorf("zero timeout gave %d sessions, want 3", len(sessions))
	}
}

func TestClone(t *testing.T) {
	tr := &Trace{Requests: []Request{req("a", 0, 0, 1)}}
	c := tr.Clone()
	c.Requests[0].Size = 99
	if tr.Requests[0].Size == 99 {
		t.Error("Clone shares backing storage")
	}
}

// Property: segmentation is a partition — concatenating the segments in
// order reproduces the input, and no segment is empty.
func TestSegmentPartitionProperty(t *testing.T) {
	f := func(gapsRaw []uint16, timeoutRaw uint16) bool {
		timeout := time.Duration(timeoutRaw%100) * time.Second
		var reqs []Request
		at := time.Duration(0)
		for i, g := range gapsRaw {
			at += time.Duration(g%200) * time.Second
			reqs = append(reqs, req("c", at, webgraph.DocID(i), 1))
		}
		segs := Segment(reqs, timeout)
		var flat []Request
		for _, s := range segs {
			if len(s) == 0 {
				return false
			}
			// Within a segment all gaps are < timeout (when positive).
			for i := 1; i < len(s); i++ {
				if timeout > 0 && s[i].Time.Sub(s[i-1].Time) >= timeout {
					return false
				}
			}
			flat = append(flat, s...)
		}
		if len(flat) != len(reqs) {
			return false
		}
		for i := range flat {
			if flat[i].Doc != reqs[i].Doc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: preprocessing conserves requests — every input request is
// either kept or counted in exactly one dropped/renamed bucket.
func TestPreprocessConservationProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		resolve := func(p string) (webgraph.DocID, bool) {
			if p == "/ok" || p == "/canon" {
				return 1, true
			}
			return webgraph.None, false
		}
		tr := &Trace{}
		for _, op := range ops {
			r := Request{Time: t0, Client: "c", Doc: webgraph.None}
			switch op % 5 {
			case 0:
				r.Path, r.Status = "/ok", 200
			case 1:
				r.Path, r.Status = "/cgi-bin/x", 200
			case 2:
				r.Path, r.Status = "/gone", 200
			case 3:
				r.Path, r.Status = "/ok", 404
			default:
				r.Path, r.Status = "/alias", 200
			}
			tr.Requests = append(tr.Requests, r)
		}
		opts := DefaultPreprocess()
		opts.Aliases = map[string]string{"/alias": "/canon"}
		out, st := Preprocess(tr, opts, resolve)
		if st.In != len(tr.Requests) || st.Kept != out.Len() {
			return false
		}
		return st.In == st.Kept+st.DroppedStatus+st.DroppedScripts+st.DroppedMissing
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestWindowEmptyTrace(t *testing.T) {
	var tr Trace
	if w := tr.Window(t0, t0.Add(time.Hour)); w.Len() != 0 {
		t.Error("window of empty trace not empty")
	}
}
