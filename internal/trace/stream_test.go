package trace

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

func mkReq(c ClientID, at int64, path string) Request {
	return Request{Time: time.Unix(0, at), Client: c, Path: path, Status: 200, Size: 1}
}

// cursorFixture builds three overlapping client streams with cross-client
// timestamp ties, the case the canonical (time, client) order must break
// deterministically.
func cursorFixture() []ClientCursor {
	return []ClientCursor{
		&SliceCursor{ID: "b.local", Reqs: []Request{
			mkReq("b.local", 10, "/b0"), mkReq("b.local", 20, "/b1"), mkReq("b.local", 20, "/b2"),
		}},
		&SliceCursor{ID: "a.local", Reqs: []Request{
			mkReq("a.local", 10, "/a0"), mkReq("a.local", 30, "/a1"),
		}},
		&SliceCursor{ID: "c.local", Reqs: []Request{
			mkReq("c.local", 5, "/c0"),
		}},
	}
}

// TestMergeCursorsCanonicalOrder pins the total order: ascending time,
// ClientID tiebreak, per-client generation order within ties.
func TestMergeCursorsCanonicalOrder(t *testing.T) {
	got := Materialize(MergeCursors(cursorFixture()))
	want := []string{"/c0", "/a0", "/b0", "/b1", "/b2", "/a1"}
	if got.Len() != len(want) {
		t.Fatalf("merged %d requests, want %d", got.Len(), len(want))
	}
	for i, p := range want {
		if got.Requests[i].Path != p {
			t.Errorf("position %d: got %s, want %s", i, got.Requests[i].Path, p)
		}
	}
	if err := got.Validate(); err != nil {
		t.Errorf("merged trace invalid: %v", err)
	}
}

// TestMergeSubsetRestriction is the shard-identity property in
// miniature: merging any subset of cursors yields exactly the full
// merge restricted to those clients, so the canonical order never
// depends on which other shards exist.
func TestMergeSubsetRestriction(t *testing.T) {
	full := Materialize(MergeCursors(cursorFixture()))
	for _, keep := range []map[ClientID]bool{
		{"a.local": true},
		{"a.local": true, "c.local": true},
		{"b.local": true, "c.local": true},
	} {
		var cs []ClientCursor
		for _, c := range cursorFixture() {
			if keep[c.Client()] {
				cs = append(cs, c)
			}
		}
		sub := Materialize(MergeCursors(cs))
		var want []Request
		for _, r := range full.Requests {
			if keep[r.Client] {
				want = append(want, r)
			}
		}
		if len(sub.Requests) != len(want) {
			t.Fatalf("keep=%v: %d requests, want %d", keep, len(sub.Requests), len(want))
		}
		for i := range want {
			if sub.Requests[i] != want[i] {
				t.Errorf("keep=%v position %d: got %+v, want %+v", keep, i, sub.Requests[i], want[i])
			}
		}
	}
}

// TestCountStream checks the sizing pass: request count plus distinct
// clients in first-appearance order, nothing retained.
func TestCountStream(t *testing.T) {
	n, clients := CountStream(MergeCursors(cursorFixture()))
	if n != 6 {
		t.Errorf("count = %d, want 6", n)
	}
	want := []ClientID{"c.local", "a.local", "b.local"}
	if len(clients) != len(want) {
		t.Fatalf("clients = %v, want %v", clients, want)
	}
	for i := range want {
		if clients[i] != want[i] {
			t.Errorf("client %d = %s, want %s", i, clients[i], want[i])
		}
	}
}

// TestWriteCLFStreamByteIdentity is satellite S1's contract: streaming
// rows out as they are generated produces the byte-identical file the
// buffered writer produces from the materialized trace.
func TestWriteCLFStreamByteIdentity(t *testing.T) {
	tr := Materialize(MergeCursors(cursorFixture()))
	var buffered bytes.Buffer
	if err := WriteCLF(&buffered, tr); err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	n, err := WriteCLFStream(&streamed, MergeCursors(cursorFixture()))
	if err != nil {
		t.Fatal(err)
	}
	if n != tr.Len() {
		t.Errorf("streamed %d rows, want %d", n, tr.Len())
	}
	if !bytes.Equal(buffered.Bytes(), streamed.Bytes()) {
		t.Errorf("CLF outputs diverged:\n%s\n--- vs ---\n%s", streamed.Bytes(), buffered.Bytes())
	}
}

// TestClientIndexCache pins satellite S6: Clients/ByClient serve a
// cached index (same backing store across calls), and every mutation
// path — append, SortByTime, explicit Invalidate — drops it.
func TestClientIndexCache(t *testing.T) {
	tr := Materialize(MergeCursors(cursorFixture()))
	c1 := tr.Clients()
	c2 := tr.Clients()
	if len(c1) == 0 || &c1[0] != &c2[0] {
		t.Error("Clients() rebuilt instead of serving the cache")
	}
	if len(tr.ByClient()["b.local"]) != 3 {
		t.Errorf("ByClient wrong: %v", tr.ByClient())
	}

	// Append invalidates (length change detected lazily).
	tr.Requests = append(tr.Requests, mkReq("d.local", 99, "/d0"))
	if got := len(tr.Clients()); got != 4 {
		t.Errorf("after append: %d clients, want 4", got)
	}

	// In-place mutation + Invalidate.
	tr.Requests[0].Client = "z.local"
	if tr.Clients()[0] != "c.local" {
		t.Error("index rebuilt without invalidation — cache contract changed")
	}
	tr.Invalidate()
	if tr.Clients()[0] != "z.local" {
		t.Error("Invalidate did not drop the cached index")
	}

	// SortByTime invalidates implicitly.
	tr.SortByTime()
	if tr.Clients()[0] != "z.local" {
		t.Errorf("after sort: first client %s", tr.Clients()[0])
	}
}

// benchTrace builds a trace with many clients for the index benchmarks.
func benchTrace(clients, perClient int) *Trace {
	tr := &Trace{}
	for i := 0; i < perClient; i++ {
		for c := 0; c < clients; c++ {
			id := ClientID(fmt.Sprintf("client-%04d.local", c))
			tr.Requests = append(tr.Requests, mkReq(id, int64(i*clients+c), "/p"))
		}
	}
	return tr
}

// BenchmarkClientsCached measures the S6 win: repeated Clients/ByClient
// calls (the engine-refresh and loadgen-setup pattern) against one
// trace. With the cached index every call after the first is O(1);
// before, each call rescanned and reallocated the whole per-client map.
func BenchmarkClientsCached(b *testing.B) {
	tr := benchTrace(500, 40)
	tr.Clients() // prime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(tr.Clients()) != 500 || len(tr.ByClient()) != 500 {
			b.Fatal("bad index")
		}
	}
}

// BenchmarkClientsRebuild is the same access pattern with the cache
// defeated (Invalidate between calls) — the old cost, for comparison.
func BenchmarkClientsRebuild(b *testing.B) {
	tr := benchTrace(500, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Invalidate()
		if len(tr.Clients()) != 500 || len(tr.ByClient()) != 500 {
			b.Fatal("bad index")
		}
	}
}

// BenchmarkSessions measures the segmentation path that previously
// rescanned the full trace once per client and now walks the cached
// per-client slices.
func BenchmarkSessions(b *testing.B) {
	tr := benchTrace(200, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Invalidate()
		if got := tr.Sessions(time.Hour); len(got) == 0 {
			b.Fatal("no sessions")
		}
	}
}
