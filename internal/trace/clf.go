package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"specweb/internal/webgraph"
)

// CLFTimeLayout is the Common Log Format timestamp layout.
const CLFTimeLayout = "02/Jan/2006:15:04:05 -0700"

// WriteCLF writes the trace in NCSA Common Log Format, the format of the
// 1995 httpd logs the paper analyzed:
//
//	host - - [day/mon/year:hh:mm:ss zone] "GET /path HTTP/1.0" status bytes
//
// Remote clients are written as dotted hosts under a synthetic "remote."
// prefix-free convention: the Remote flag is recoverable on parse because
// local clients carry the ".local" suffix.
func WriteCLF(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	for i := range t.Requests {
		if err := writeCLFLine(bw, &t.Requests[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeCLFLine formats one request; both the buffered and the streaming
// writer go through it, so their outputs are byte-identical by
// construction (and pinned by test).
func writeCLFLine(bw *bufio.Writer, r *Request) error {
	status := r.Status
	if status == 0 {
		status = 200
	}
	if _, err := fmt.Fprintf(bw, "%s - - [%s] \"GET %s HTTP/1.0\" %d %d\n",
		string(r.Client), r.Time.Format(CLFTimeLayout), r.Path, status, r.Size); err != nil {
		return fmt.Errorf("trace: writing CLF: %w", err)
	}
	return nil
}

// WriteCLFStream drains a request stream straight into the writer, one
// bufio-buffered row at a time — the whole trace never exists in memory.
// It returns the number of rows written. The output is byte-identical to
// materializing the stream and calling WriteCLF.
func WriteCLFStream(w io.Writer, s Stream) (int, error) {
	bw := bufio.NewWriter(w)
	n := 0
	for {
		req, ok := s.Next()
		if !ok {
			break
		}
		if err := writeCLFLine(bw, &req); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// DocResolver maps a URL path to a document ID, reporting whether the path
// names a live document. Parsing uses it to rebuild Doc fields; analysis
// tools usually pass Site.ByPath-backed resolvers.
type DocResolver func(path string) (webgraph.DocID, bool)

// ParseCLF reads a Common Log Format stream into a Trace. Lines that do not
// parse are reported through onErr (which may be nil to skip silently);
// parsing continues either way, as real 1995 logs were full of junk lines.
// The resolver may be nil, in which case Doc is set to webgraph.None.
func ParseCLF(r io.Reader, resolve DocResolver, onErr func(line string, err error)) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	t := &Trace{}
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		req, err := parseCLFLine(line, resolve)
		if err != nil {
			if onErr != nil {
				onErr(line, err)
			}
			continue
		}
		t.Requests = append(t.Requests, req)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading CLF: %w", err)
	}
	return t, nil
}

func parseCLFLine(line string, resolve DocResolver) (Request, error) {
	var r Request

	// host - - [
	hostEnd := strings.IndexByte(line, ' ')
	if hostEnd <= 0 {
		return r, fmt.Errorf("no host field")
	}
	host := line[:hostEnd]

	lb := strings.IndexByte(line, '[')
	rb := strings.IndexByte(line, ']')
	if lb < 0 || rb < lb {
		return r, fmt.Errorf("no timestamp")
	}
	ts, err := time.Parse(CLFTimeLayout, line[lb+1:rb])
	if err != nil {
		return r, fmt.Errorf("bad timestamp: %w", err)
	}

	q1 := strings.IndexByte(line[rb:], '"')
	if q1 < 0 {
		return r, fmt.Errorf("no request field")
	}
	q1 += rb
	q2 := strings.IndexByte(line[q1+1:], '"')
	if q2 < 0 {
		return r, fmt.Errorf("unterminated request field")
	}
	q2 += q1 + 1
	reqFields := strings.Fields(line[q1+1 : q2])
	if len(reqFields) < 2 {
		return r, fmt.Errorf("malformed request %q", line[q1+1:q2])
	}
	path := reqFields[1]

	rest := strings.Fields(line[q2+1:])
	if len(rest) < 2 {
		return r, fmt.Errorf("missing status/bytes")
	}
	status, err := strconv.Atoi(rest[0])
	if err != nil {
		return r, fmt.Errorf("bad status %q", rest[0])
	}
	var size int64
	if rest[1] != "-" {
		size, err = strconv.ParseInt(rest[1], 10, 64)
		if err != nil {
			return r, fmt.Errorf("bad bytes %q", rest[1])
		}
	}

	r = Request{
		Time:   ts,
		Client: ClientID(host),
		Size:   size,
		Remote: !strings.HasSuffix(host, ".local"),
		Status: status,
		Path:   path,
		Doc:    webgraph.None,
	}
	if resolve != nil {
		if id, ok := resolve(path); ok {
			r.Doc = id
		}
	}
	return r, nil
}
