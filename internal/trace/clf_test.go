package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"specweb/internal/webgraph"
)

func TestCLFRoundTrip(t *testing.T) {
	tr := &Trace{Requests: []Request{
		{
			Time:   time.Date(1995, time.February, 3, 8, 30, 0, 0, time.UTC),
			Client: "alpha.example.com",
			Doc:    3,
			Size:   2048,
			Remote: true,
			Status: 200,
			Path:   "/pages/p0003.html",
		},
		{
			Time:   time.Date(1995, time.February, 3, 8, 30, 5, 0, time.UTC),
			Client: "ws12.local",
			Doc:    4,
			Size:   512,
			Remote: false,
			Status: 200,
			Path:   "/img/o00001",
		},
	}}
	var buf bytes.Buffer
	if err := WriteCLF(&buf, tr); err != nil {
		t.Fatal(err)
	}
	resolve := func(p string) (webgraph.DocID, bool) {
		switch p {
		case "/pages/p0003.html":
			return 3, true
		case "/img/o00001":
			return 4, true
		}
		return webgraph.None, false
	}
	got, err := ParseCLF(&buf, resolve, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("parsed %d requests, want 2", got.Len())
	}
	for i := range tr.Requests {
		w, g := tr.Requests[i], got.Requests[i]
		if !g.Time.Equal(w.Time) || g.Client != w.Client || g.Doc != w.Doc ||
			g.Size != w.Size || g.Remote != w.Remote || g.Path != w.Path {
			t.Errorf("request %d: got %+v, want %+v", i, g, w)
		}
	}
}

func TestWriteCLFDefaultsStatus(t *testing.T) {
	tr := &Trace{Requests: []Request{{
		Time: time.Now().UTC(), Client: "h", Path: "/a", Size: 1,
	}}}
	var buf bytes.Buffer
	if err := WriteCLF(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\" 200 1") {
		t.Errorf("zero status should write 200: %q", buf.String())
	}
}

func TestParseCLFRealLine(t *testing.T) {
	// A line in the shape of real 1995 NCSA logs.
	line := `piweba3y.prodigy.com - - [09/Jan/1995:00:00:12 -0500] "GET /images/logo.gif HTTP/1.0" 200 13402`
	tr, err := ParseCLF(strings.NewReader(line), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("parsed %d", tr.Len())
	}
	r := tr.Requests[0]
	if r.Client != "piweba3y.prodigy.com" || r.Size != 13402 || r.Status != 200 ||
		r.Path != "/images/logo.gif" || !r.Remote || r.Doc != webgraph.None {
		t.Errorf("parsed %+v", r)
	}
	if r.Time.UTC().Hour() != 5 {
		t.Errorf("timezone not applied: %v", r.Time)
	}
}

func TestParseCLFDashBytes(t *testing.T) {
	line := `h.local - - [09/Jan/1995:00:00:12 -0500] "GET /a HTTP/1.0" 304 -`
	tr, err := ParseCLF(strings.NewReader(line), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Requests[0].Size != 0 || tr.Requests[0].Status != 304 {
		t.Errorf("parsed %+v", tr.Requests[0])
	}
	if tr.Requests[0].Remote {
		t.Error(".local host should not be remote")
	}
}

func TestParseCLFBadLines(t *testing.T) {
	input := strings.Join([]string{
		`good.host - - [09/Jan/1995:00:00:12 -0500] "GET /a HTTP/1.0" 200 10`,
		`garbage`,
		``,
		`no.quote - - [09/Jan/1995:00:00:13 -0500] GET /b 200 10`,
		`bad.time - - [not-a-time] "GET /c HTTP/1.0" 200 10`,
		`bad.status - - [09/Jan/1995:00:00:14 -0500] "GET /d HTTP/1.0" xx 10`,
		`bad.bytes - - [09/Jan/1995:00:00:15 -0500] "GET /e HTTP/1.0" 200 yy`,
		`short.req - - [09/Jan/1995:00:00:16 -0500] "GET" 200 10`,
	}, "\n")
	var bad int
	tr, err := ParseCLF(strings.NewReader(input), nil, func(string, error) { bad++ })
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Errorf("kept %d lines, want 1", tr.Len())
	}
	if bad != 6 {
		t.Errorf("reported %d bad lines, want 6", bad)
	}
}

func TestPreprocess(t *testing.T) {
	resolve := func(p string) (webgraph.DocID, bool) {
		if p == "/index.html" || p == "/b" {
			return 1, true
		}
		return webgraph.None, false
	}
	tr := &Trace{Requests: []Request{
		{Time: time.Now(), Client: "a", Path: "/", Status: 200, Doc: webgraph.None},             // alias → kept
		{Time: time.Now(), Client: "a", Path: "/cgi-bin/x", Status: 200, Doc: webgraph.None},    // script
		{Time: time.Now(), Client: "a", Path: "/b?q=1", Status: 200, Doc: webgraph.None},        // query → script
		{Time: time.Now(), Client: "a", Path: "/missing.html", Status: 200, Doc: webgraph.None}, // 404 target
		{Time: time.Now(), Client: "a", Path: "/b", Status: 404, Doc: 1},                        // bad status
		{Time: time.Now(), Client: "a", Path: "/b", Status: 200, Doc: webgraph.None, Size: 10},  // good
	}}
	opts := DefaultPreprocess()
	opts.Aliases = map[string]string{"/": "/index.html"}
	out, st := Preprocess(tr, opts, resolve)
	if out.Len() != 2 {
		t.Fatalf("kept %d, want 2 (alias + good): %+v", out.Len(), out.Requests)
	}
	if out.Requests[0].Path != "/index.html" || out.Requests[0].Doc != 1 {
		t.Errorf("alias not canonicalized: %+v", out.Requests[0])
	}
	if st.In != 6 || st.Kept != 2 || st.DroppedScripts != 2 || st.DroppedMissing != 1 ||
		st.DroppedStatus != 1 || st.Renamed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPreprocessKeepStatuses(t *testing.T) {
	tr := &Trace{Requests: []Request{
		{Time: time.Now(), Client: "a", Path: "/a", Status: 304, Doc: 1},
	}}
	out, _ := Preprocess(tr, PreprocessOptions{KeepStatuses: []int{304}}, nil)
	if out.Len() != 1 {
		t.Error("KeepStatuses not honored")
	}
	out, _ = Preprocess(tr, PreprocessOptions{}, nil)
	if out.Len() != 0 {
		t.Error("default should keep only 200/0")
	}
}

func TestIsScriptPath(t *testing.T) {
	for _, p := range []string{"/cgi-bin/query", "/search?q=x", "/run.cgi", "/x.pl", "/y.php"} {
		if !IsScriptPath(p) {
			t.Errorf("%q should be a script", p)
		}
	}
	for _, p := range []string{"/index.html", "/img/logo.gif", "/papers/p.ps"} {
		if IsScriptPath(p) {
			t.Errorf("%q should not be a script", p)
		}
	}
}
