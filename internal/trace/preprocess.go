package trace

import (
	"strings"

	"specweb/internal/webgraph"
)

// PreprocessOptions mirrors the log cleaning of §3.2's footnote: "removal of
// accesses to non-existent documents, to live documents, and to scripts, as
// well as renaming accesses to aliases of a document."
type PreprocessOptions struct {
	// Aliases maps alias paths to canonical paths (e.g. "/" → "/index.html").
	Aliases map[string]string
	// DropScripts removes requests whose path looks like a CGI script or
	// query ("live documents" in the paper's terminology).
	DropScripts bool
	// DropUnresolved removes requests whose path does not resolve to a
	// document on the site (404s, typos).
	DropUnresolved bool
	// KeepStatuses limits the trace to the listed HTTP statuses. Empty
	// keeps 200 only.
	KeepStatuses []int
}

// DefaultPreprocess returns the paper's cleaning options.
func DefaultPreprocess() PreprocessOptions {
	return PreprocessOptions{
		DropScripts:    true,
		DropUnresolved: true,
	}
}

// IsScriptPath reports whether a URL path names a script or dynamically
// generated ("live") resource.
func IsScriptPath(path string) bool {
	if strings.Contains(path, "?") {
		return true
	}
	if strings.Contains(path, "/cgi-bin/") || strings.HasPrefix(path, "cgi-bin/") {
		return true
	}
	for _, ext := range []string{".cgi", ".pl", ".sh", ".php"} {
		if strings.HasSuffix(path, ext) {
			return true
		}
	}
	return false
}

// PreprocessStats reports what Preprocess removed or rewrote.
type PreprocessStats struct {
	In             int
	Kept           int
	DroppedStatus  int
	DroppedScripts int
	DroppedMissing int
	Renamed        int
}

// Preprocess cleans a parsed trace per the options, resolving documents with
// resolve (which may be nil when DropUnresolved is false). It returns a new
// trace and the cleaning statistics.
func Preprocess(t *Trace, opts PreprocessOptions, resolve DocResolver) (*Trace, PreprocessStats) {
	keep := map[int]bool{}
	if len(opts.KeepStatuses) == 0 {
		keep[200] = true
		keep[0] = true // synthetic traces may leave Status unset
	} else {
		for _, s := range opts.KeepStatuses {
			keep[s] = true
		}
	}
	out := &Trace{Requests: make([]Request, 0, len(t.Requests))}
	st := PreprocessStats{In: len(t.Requests)}
	for i := range t.Requests {
		r := t.Requests[i]
		if !keep[r.Status] {
			st.DroppedStatus++
			continue
		}
		if canon, ok := opts.Aliases[r.Path]; ok {
			r.Path = canon
			r.Doc = webgraph.None // re-resolve below
			st.Renamed++
		}
		if opts.DropScripts && IsScriptPath(r.Path) {
			st.DroppedScripts++
			continue
		}
		if r.Doc == webgraph.None && resolve != nil {
			if id, ok := resolve(r.Path); ok {
				r.Doc = id
			}
		}
		if opts.DropUnresolved && r.Doc == webgraph.None {
			st.DroppedMissing++
			continue
		}
		out.Requests = append(out.Requests, r)
	}
	st.Kept = len(out.Requests)
	return out, st
}
