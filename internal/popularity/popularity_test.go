package popularity

import (
	"math"
	"testing"
	"time"

	"specweb/internal/stats"
	"specweb/internal/synth"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

var t0 = time.Date(1995, time.January, 9, 12, 0, 0, 0, time.UTC)

// handTrace builds a small trace with known counts:
// doc 0 (size 100): 6 requests, 5 remote
// doc 1 (size 200): 3 requests, 0 remote
// doc 2 (size 50):  1 request, 1 remote
func handTrace() *trace.Trace {
	tr := &trace.Trace{}
	add := func(doc webgraph.DocID, size int64, remote bool, n int) {
		for i := 0; i < n; i++ {
			tr.Requests = append(tr.Requests, trace.Request{
				Time: t0, Client: "c", Doc: doc, Size: size, Remote: remote,
			})
		}
	}
	add(0, 100, true, 5)
	add(0, 100, false, 1)
	add(1, 200, false, 3)
	add(2, 50, true, 1)
	return tr
}

func TestAnalyzeCounts(t *testing.T) {
	a := Analyze(handTrace(), nil)
	if a.TotalRequests != 10 || a.RemoteTotal != 6 {
		t.Errorf("totals = %d/%d, want 10/6", a.TotalRequests, a.RemoteTotal)
	}
	if a.AccessedBytes != 350 {
		t.Errorf("accessed bytes = %d, want 350", a.AccessedBytes)
	}
	d0, ok := a.Stats(0)
	if !ok || d0.Requests != 6 || d0.Remote != 5 || d0.BytesServed != 600 || d0.RemoteBytes != 500 {
		t.Errorf("doc0 = %+v", d0)
	}
	if _, ok := a.Stats(99); ok {
		t.Error("unaccessed doc reported")
	}
	if r := d0.RemoteRatio(); math.Abs(r-5.0/6) > 1e-12 {
		t.Errorf("remote ratio = %v", r)
	}
}

func TestAnalyzeSkipsUnresolved(t *testing.T) {
	tr := &trace.Trace{Requests: []trace.Request{
		{Time: t0, Client: "c", Doc: webgraph.None, Size: 10},
		{Time: t0, Client: "c", Doc: 1, Size: 10},
	}}
	a := Analyze(tr, nil)
	if a.TotalRequests != 1 || len(a.Docs) != 1 {
		t.Errorf("unresolved request counted: %+v", a)
	}
}

func TestRankedOrders(t *testing.T) {
	a := Analyze(handTrace(), nil)
	byReq := a.Ranked(ByRequests)
	if byReq[0].Doc != 0 || byReq[1].Doc != 1 || byReq[2].Doc != 2 {
		t.Errorf("ByRequests order: %v", byReq)
	}
	byRem := a.Ranked(ByRemoteRequests)
	if byRem[0].Doc != 0 || byRem[1].Doc != 2 || byRem[2].Doc != 1 {
		t.Errorf("ByRemoteRequests order: %v", byRem)
	}
	// Densities: doc0 6/100=0.06, doc1 3/200=0.015, doc2 1/50=0.02.
	byDen := a.Ranked(ByDensity)
	if byDen[0].Doc != 0 || byDen[1].Doc != 2 || byDen[2].Doc != 1 {
		t.Errorf("ByDensity order: %v", byDen)
	}
	// Remote densities: doc0 0.05, doc2 0.02, doc1 0.
	byRD := a.Ranked(ByRemoteDensity)
	if byRD[0].Doc != 0 || byRD[1].Doc != 2 || byRD[2].Doc != 1 {
		t.Errorf("ByRemoteDensity order: %v", byRD)
	}
}

func TestBlocks(t *testing.T) {
	a := Analyze(handTrace(), nil)
	blocks := a.Blocks(150, ByRequests)
	// Ranked by requests: doc0 (100B), doc1 (200B), doc2 (50B).
	// Block 1: doc0+doc1 = 300B ≥ 150 → flush. Block 2: doc2.
	if len(blocks) != 2 {
		t.Fatalf("got %d blocks: %+v", len(blocks), blocks)
	}
	if blocks[0].Docs != 2 || blocks[0].Bytes != 300 || blocks[0].Requests != 9 {
		t.Errorf("block0 = %+v", blocks[0])
	}
	if math.Abs(blocks[0].CumReqFrac-0.9) > 1e-12 {
		t.Errorf("block0 cum frac = %v", blocks[0].CumReqFrac)
	}
	if math.Abs(blocks[1].CumReqFrac-1.0) > 1e-12 || blocks[1].CumBytes != 350 {
		t.Errorf("block1 = %+v", blocks[1])
	}
	// Default block size kicks in for blockSize <= 0.
	blocks = a.Blocks(0, ByRequests)
	if len(blocks) != 1 {
		t.Errorf("default 256KB should give one block, got %d", len(blocks))
	}
}

func TestHitCurveMonotone(t *testing.T) {
	a := Analyze(handTrace(), nil)
	bs, hs := a.HitCurve(ByRequests)
	if len(bs) != 3 {
		t.Fatalf("curve has %d points", len(bs))
	}
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] || hs[i] < hs[i-1] {
			t.Errorf("curve not monotone at %d", i)
		}
	}
	if math.Abs(hs[2]-1) > 1e-12 {
		t.Errorf("curve should end at 1, got %v", hs[2])
	}
	if math.Abs(hs[0]-0.6) > 1e-12 {
		t.Errorf("first point %v, want 0.6 (6 of 10 requests)", hs[0])
	}
}

func TestTopBytesAndFraction(t *testing.T) {
	a := Analyze(handTrace(), nil)
	top := a.TopBytes(120, ByRequests)
	// doc0 (100) fits; doc1 (200) skipped; doc2 (50) skipped (100+50>120... no, 150>120 → skipped).
	if len(top) != 1 || top[0] != 0 {
		t.Errorf("TopBytes(120) = %v", top)
	}
	top = a.TopBytes(160, ByRequests)
	if len(top) != 2 || top[0] != 0 || top[1] != 2 {
		t.Errorf("TopBytes(160) = %v (doc1 too big, doc2 fits)", top)
	}
	if got := a.TopFraction(0, ByRequests); got != nil {
		t.Errorf("TopFraction(0) = %v", got)
	}
	all := a.TopFraction(1.0, ByRequests)
	if len(all) != 3 {
		t.Errorf("TopFraction(1) covered %d docs", len(all))
	}
	over := a.TopFraction(5, ByRequests)
	if len(over) != 3 {
		t.Errorf("TopFraction(>1) should clamp, got %d docs", len(over))
	}
}

func TestClassify(t *testing.T) {
	a := Analyze(handTrace(), nil)
	c := a.Classify(DefaultClassify())
	// doc0: 5/6 ≈ 0.83 → global; doc1: 0 → local; doc2: 1.0 → remote.
	if c.ByDoc[0] != GloballyPopular || c.ByDoc[1] != LocallyPopular || c.ByDoc[2] != RemotelyPopular {
		t.Errorf("classes = %v", c.ByDoc)
	}
	if c.Counts[GloballyPopular] != 1 || c.Counts[LocallyPopular] != 1 || c.Counts[RemotelyPopular] != 1 {
		t.Errorf("counts = %v", c.Counts)
	}
}

func TestClassifyMutable(t *testing.T) {
	rates, err := ClassifyMutable(map[webgraph.DocID]int{1: 12, 2: 1}, 60, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rates.RatePerDay[1]-0.2) > 1e-12 {
		t.Errorf("rate = %v", rates.RatePerDay[1])
	}
	if !rates.Mutable[1] || rates.Mutable[2] {
		t.Errorf("mutability = %v", rates.Mutable)
	}
	if _, err := ClassifyMutable(nil, 0, 0.01); err == nil {
		t.Error("zero-day window accepted")
	}
}

func TestClassStrings(t *testing.T) {
	if GloballyPopular.String() != "global" || RemotelyPopular.String() != "remote" ||
		LocallyPopular.String() != "local" || Class(9).String() == "" {
		t.Error("class strings wrong")
	}
	if ByRequests.String() != "requests" || ByDensity.String() != "density" ||
		ByRemoteRequests.String() != "remote-requests" || ByRemoteDensity.String() != "remote-density" ||
		Order(9).String() == "" {
		t.Error("order strings wrong")
	}
}

// Integration with synth: the synthetic workload must reproduce the shape of
// Figure 1 — strong popularity concentration and a sane exponential fit.
func TestSyntheticProfileShape(t *testing.T) {
	site, err := webgraph.Generate(webgraph.DepartmentSite(), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := synth.DefaultConfig(site, nil)
	cfg.Days = 30
	cfg.SessionsPerDay = 150
	res, err := synth.Generate(cfg, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(res.Trace, site)

	if a.TotalRequests < 20000 {
		t.Fatalf("only %d requests", a.TotalRequests)
	}
	// Concentration: the top 10% of accessed bytes should cover well over
	// half of all requests (the paper saw 91%).
	_, hs := a.HitCurve(ByRequests)
	bs, _ := a.HitCurve(ByRequests)
	var at10 float64
	for i := range bs {
		if bs[i] >= 0.10*float64(a.AccessedBytes) {
			at10 = hs[i]
			break
		}
	}
	if at10 < 0.55 {
		t.Errorf("top 10%% of bytes covers only %.0f%% of requests; want heavy tail (paper: 91%%)", at10*100)
	}

	// The exponential fit must produce a plausible λ: H at the accessed
	// size should be near 1, and λ·AccessedBytes in single-digit range.
	lam, err := a.FitLambda(ByRequests)
	if err != nil {
		t.Fatal(err)
	}
	x := lam * float64(a.AccessedBytes)
	if x < 1 || x > 50 {
		t.Errorf("λ·B = %v, implausible fit (λ=%v, B=%d)", x, lam, a.AccessedBytes)
	}

	// Classification should produce all three classes, with locally
	// popular documents the plurality as in the paper (510/974).
	c := a.Classify(DefaultClassify())
	if c.Counts[LocallyPopular] == 0 || c.Counts[RemotelyPopular] == 0 || c.Counts[GloballyPopular] == 0 {
		t.Errorf("degenerate classification: %v", c.Counts)
	}
}

func TestMeanUpdateRateByClass(t *testing.T) {
	site, err := webgraph.Generate(webgraph.DepartmentSite(), stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := synth.DefaultConfig(site, nil)
	cfg.Days = 60
	cfg.SessionsPerDay = 60
	res, err := synth.Generate(cfg, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(res.Trace, site)
	cls := a.Classify(DefaultClassify())

	days := map[webgraph.DocID]int{}
	seen := map[[2]int32]bool{}
	for _, u := range res.Updates {
		k := [2]int32{int32(u.Day), int32(u.Doc)}
		if !seen[k] {
			seen[k] = true
			days[u.Doc]++
		}
	}
	mut, err := ClassifyMutable(days, cfg.Days, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	localRate := MeanUpdateRate(cls, mut, LocallyPopular)
	remoteRate := MeanUpdateRate(cls, mut, RemotelyPopular)
	globalRate := MeanUpdateRate(cls, mut, GloballyPopular)
	// §2: locally popular documents update more often than remotely or
	// globally popular ones.
	if localRate <= remoteRate || localRate <= globalRate {
		t.Errorf("update rates local=%.4f remote=%.4f global=%.4f; want local highest",
			localRate, remoteRate, globalRate)
	}
}

func TestBlocksRemoteOrdering(t *testing.T) {
	a := Analyze(handTrace(), nil)
	blocks := a.Blocks(100, ByRemoteRequests)
	// Remote ranking: doc0 (5 remote), doc2 (1), doc1 (0). Remote total 6.
	var cum int64
	for _, b := range blocks {
		cum += b.Requests
	}
	if cum != 6 {
		t.Errorf("remote blocks counted %d requests, want 6", cum)
	}
	last := blocks[len(blocks)-1]
	if math.Abs(last.CumReqFrac-1) > 1e-12 {
		t.Errorf("final remote coverage %v", last.CumReqFrac)
	}
}

func TestHitCurveRemote(t *testing.T) {
	a := Analyze(handTrace(), nil)
	bs, hs := a.HitCurve(ByRemoteRequests)
	// First ranked doc is doc0 with 5/6 remote requests.
	if math.Abs(hs[0]-5.0/6) > 1e-12 {
		t.Errorf("first remote coverage %v, want 5/6", hs[0])
	}
	if bs[0] != 100 {
		t.Errorf("first cum bytes %v", bs[0])
	}
}

func TestFitLambdaEmpty(t *testing.T) {
	a := Analyze(&trace.Trace{}, nil)
	if _, err := a.FitLambda(ByRequests); err == nil {
		t.Error("empty analysis fit accepted")
	}
}

func TestAnalyzeUsesSiteSizeWhenMissing(t *testing.T) {
	site, err := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{Requests: []trace.Request{
		{Time: t0, Client: "c", Doc: 0, Size: 0}, // size unknown in log
	}}
	a := Analyze(tr, site)
	d, _ := a.Stats(0)
	if d.Size != site.Doc(0).Size {
		t.Errorf("size %d, want site's %d", d.Size, site.Doc(0).Size)
	}
}
