package popularity

import (
	"fmt"

	"specweb/internal/webgraph"
)

// Class is the paper's temporal/geographical popularity classification of
// §2: out of the 974 documents accessed at cs-www.bu.edu, 99 were remotely
// popular (remote ratio > 85%), 510 locally popular (< 15%), and 365
// globally popular (in between).
type Class int

const (
	// GloballyPopular documents see a balanced remote/local mix.
	GloballyPopular Class = iota
	// RemotelyPopular documents are requested almost only remotely.
	RemotelyPopular
	// LocallyPopular documents are requested almost only locally.
	LocallyPopular
)

// String names the class.
func (c Class) String() string {
	switch c {
	case GloballyPopular:
		return "global"
	case RemotelyPopular:
		return "remote"
	case LocallyPopular:
		return "local"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ClassifyOptions holds the remote-ratio thresholds; the paper used 85% and
// 15%.
type ClassifyOptions struct {
	RemoteThreshold float64 // ratio above ⇒ remotely popular
	LocalThreshold  float64 // ratio below ⇒ locally popular
}

// DefaultClassify returns the paper's thresholds.
func DefaultClassify() ClassifyOptions {
	return ClassifyOptions{RemoteThreshold: 0.85, LocalThreshold: 0.15}
}

// Classification maps each accessed document to its class and keeps the
// class census.
type Classification struct {
	ByDoc  map[webgraph.DocID]Class
	Counts map[Class]int
}

// Classify labels every accessed document by its remote-to-total ratio.
func (a *Analysis) Classify(opts ClassifyOptions) *Classification {
	c := &Classification{
		ByDoc:  make(map[webgraph.DocID]Class, len(a.Docs)),
		Counts: make(map[Class]int),
	}
	for i := range a.Docs {
		d := &a.Docs[i]
		cl := GloballyPopular
		switch r := d.RemoteRatio(); {
		case r > opts.RemoteThreshold:
			cl = RemotelyPopular
		case r < opts.LocalThreshold:
			cl = LocallyPopular
		}
		c.ByDoc[d.Doc] = cl
		c.Counts[cl]++
	}
	return c
}

// Mutability is the update-frequency classification of §2: documents with
// noticeably frequent updates form a small "mutable" subset; the paper
// monitored last-update dates for 186 days and found <0.5%/day for
// remotely/globally popular documents and ≈2%/day for locally popular ones.
type Mutability struct {
	// RatePerDay is the observed update probability per document per day.
	RatePerDay map[webgraph.DocID]float64
	// Mutable marks documents whose rate is at or above the threshold.
	Mutable map[webgraph.DocID]bool
}

// ClassifyMutable computes per-day update rates from per-document update-day
// counts observed over the given number of days (multiple updates within a
// day count once, per the paper's footnote) and labels documents mutable at
// or above threshold. It returns an error on a non-positive observation
// window.
func ClassifyMutable(updateDays map[webgraph.DocID]int, days int, threshold float64) (*Mutability, error) {
	if days <= 0 {
		return nil, fmt.Errorf("popularity: observation window must be positive, got %d days", days)
	}
	m := &Mutability{
		RatePerDay: make(map[webgraph.DocID]float64, len(updateDays)),
		Mutable:    make(map[webgraph.DocID]bool),
	}
	for id, n := range updateDays {
		rate := float64(n) / float64(days)
		m.RatePerDay[id] = rate
		if rate >= threshold {
			m.Mutable[id] = true
		}
	}
	return m, nil
}

// MeanUpdateRate returns the average per-day update rate over the documents
// in the given class (documents without updates count as rate 0).
func MeanUpdateRate(cls *Classification, mut *Mutability, c Class) float64 {
	var sum float64
	var n int
	for id, cl := range cls.ByDoc {
		if cl != c {
			continue
		}
		sum += mut.RatePerDay[id]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
