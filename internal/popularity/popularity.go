// Package popularity implements the server-log analysis of §2 of the paper:
// per-document access counts, the 256 KB block popularity profile of
// Figure 1, the exponential H(b) model fit that yields λ, the
// remote/local/global popularity classification, and the mutable/immutable
// classification from document-update rates.
package popularity

import (
	"errors"
	"fmt"
	"sort"

	"specweb/internal/stats"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// DocStats aggregates one document's accesses in a trace.
type DocStats struct {
	Doc      webgraph.DocID
	Size     int64
	Requests int64
	Remote   int64 // requests from remote clients
	// BytesServed is Requests × Size: the bandwidth the document cost.
	BytesServed int64
	// RemoteBytes is Remote × Size.
	RemoteBytes int64
}

// RemoteRatio returns the remote-to-total access ratio, the paper's
// classification statistic.
func (d *DocStats) RemoteRatio() float64 {
	if d.Requests == 0 {
		return 0
	}
	return float64(d.Remote) / float64(d.Requests)
}

// Order selects the popularity ordering for ranked views.
type Order int

const (
	// ByRequests ranks by total request count (the paper's "popularity").
	ByRequests Order = iota
	// ByRemoteRequests ranks by remote request count ("remote
	// popularity", the ordering of Figure 1).
	ByRemoteRequests
	// ByDensity ranks by requests per byte, the bandwidth-optimal greedy
	// order for filling a fixed-size proxy.
	ByDensity
	// ByRemoteDensity ranks by remote requests per byte.
	ByRemoteDensity
)

// String names the order.
func (o Order) String() string {
	switch o {
	case ByRequests:
		return "requests"
	case ByRemoteRequests:
		return "remote-requests"
	case ByDensity:
		return "density"
	case ByRemoteDensity:
		return "remote-density"
	default:
		return fmt.Sprintf("order(%d)", int(o))
	}
}

// Analysis holds the aggregated per-document statistics of one trace.
type Analysis struct {
	Docs []DocStats // every document accessed at least once

	TotalRequests int64
	RemoteTotal   int64
	// AccessedBytes is the summed size of distinct accessed documents
	// ("36.5 MBytes ... 73% of the 50+MBytes available").
	AccessedBytes int64
	// SiteBytes is the total size of the site, when known (0 otherwise).
	SiteBytes int64

	index map[webgraph.DocID]int
}

// Analyze aggregates a trace. site may be nil; it only supplies SiteBytes
// and per-document sizes for documents whose trace requests carried Size 0.
func Analyze(tr *trace.Trace, site *webgraph.Site) *Analysis {
	a := &Analysis{index: make(map[webgraph.DocID]int)}
	for i := range tr.Requests {
		r := &tr.Requests[i]
		if r.Doc == webgraph.None {
			continue
		}
		j, ok := a.index[r.Doc]
		if !ok {
			j = len(a.Docs)
			a.index[r.Doc] = j
			size := r.Size
			if size == 0 && site != nil && site.Valid(r.Doc) {
				size = site.Doc(r.Doc).Size
			}
			a.Docs = append(a.Docs, DocStats{Doc: r.Doc, Size: size})
		}
		d := &a.Docs[j]
		d.Requests++
		d.BytesServed += d.Size
		if r.Remote {
			d.Remote++
			d.RemoteBytes += d.Size
		}
		a.TotalRequests++
		if r.Remote {
			a.RemoteTotal++
		}
	}
	for i := range a.Docs {
		a.AccessedBytes += a.Docs[i].Size
	}
	if site != nil {
		a.SiteBytes = site.TotalBytes()
	}
	return a
}

// Stats returns the aggregate for one document, if it was accessed.
func (a *Analysis) Stats(id webgraph.DocID) (DocStats, bool) {
	j, ok := a.index[id]
	if !ok {
		return DocStats{}, false
	}
	return a.Docs[j], true
}

// Ranked returns the accessed documents sorted decreasing by the given
// order, ties broken by DocID for determinism.
func (a *Analysis) Ranked(o Order) []DocStats {
	out := append([]DocStats(nil), a.Docs...)
	key := func(d *DocStats) float64 {
		switch o {
		case ByRemoteRequests:
			return float64(d.Remote)
		case ByDensity:
			if d.Size == 0 {
				return 0
			}
			return float64(d.Requests) / float64(d.Size)
		case ByRemoteDensity:
			if d.Size == 0 {
				return 0
			}
			return float64(d.Remote) / float64(d.Size)
		default:
			return float64(d.Requests)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ki, kj := key(&out[i]), key(&out[j])
		if ki != kj {
			return ki > kj
		}
		return out[i].Doc < out[j].Doc
	})
	return out
}

// Block is one aggregation bucket of Figure 1: blockSize bytes of documents
// in decreasing popularity.
type Block struct {
	Docs     int
	Bytes    int64
	Requests int64
	// CumBytes and CumReqFrac are the running totals through this block.
	CumBytes   int64
	CumReqFrac float64
}

// Blocks groups the ranked documents into consecutive blocks of at least
// blockSize bytes each (the last block may be smaller) and reports request
// coverage per block — the data behind Figure 1. The order parameter
// selects which popularity and which request count (total or remote) the
// profile uses; ByRemoteRequests reproduces the paper's remote-access
// profile.
func (a *Analysis) Blocks(blockSize int64, o Order) []Block {
	if blockSize <= 0 {
		blockSize = 256 << 10
	}
	remote := o == ByRemoteRequests || o == ByRemoteDensity
	ranked := a.Ranked(o)
	total := a.TotalRequests
	if remote {
		total = a.RemoteTotal
	}
	var out []Block
	cur := Block{}
	var cumBytes, cumReqs int64
	flush := func() {
		if cur.Docs == 0 {
			return
		}
		cur.CumBytes = cumBytes
		if total > 0 {
			cur.CumReqFrac = float64(cumReqs) / float64(total)
		}
		out = append(out, cur)
		cur = Block{}
	}
	for i := range ranked {
		d := &ranked[i]
		reqs := d.Requests
		if remote {
			reqs = d.Remote
		}
		cur.Docs++
		cur.Bytes += d.Size
		cur.Requests += reqs
		cumBytes += d.Size
		cumReqs += reqs
		if cur.Bytes >= blockSize {
			flush()
		}
	}
	flush()
	return out
}

// HitCurve returns the empirical H(b) of §2.2: frac[i] is the fraction of
// requests serviceable from the most popular bytes[i] bytes, at document
// granularity under the given order.
func (a *Analysis) HitCurve(o Order) (bytes, frac []float64) {
	remote := o == ByRemoteRequests || o == ByRemoteDensity
	ranked := a.Ranked(o)
	total := a.TotalRequests
	if remote {
		total = a.RemoteTotal
	}
	var cumB, cumR int64
	for i := range ranked {
		cumB += ranked[i].Size
		if remote {
			cumR += ranked[i].Remote
		} else {
			cumR += ranked[i].Requests
		}
		bytes = append(bytes, float64(cumB))
		if total > 0 {
			frac = append(frac, float64(cumR)/float64(total))
		} else {
			frac = append(frac, 0)
		}
	}
	return bytes, frac
}

// FitLambda estimates the exponential popularity parameter λ of
// H(b) = 1 - exp(-λ·b) from the hit curve, as the paper did for
// cs-www.bu.edu (λ = 6.247e-7).
func (a *Analysis) FitLambda(o Order) (float64, error) {
	b, h := a.HitCurve(o)
	if len(b) == 0 {
		return 0, errors.New("popularity: empty analysis")
	}
	return stats.FitExponentialHitCurve(b, h)
}

// TopBytes returns the most popular documents under the order whose summed
// size does not exceed budget bytes (greedy prefix; a document larger than
// the remaining budget is skipped so the proxy can still fill with smaller
// popular documents).
func (a *Analysis) TopBytes(budget int64, o Order) []webgraph.DocID {
	var out []webgraph.DocID
	var used int64
	for _, d := range a.Ranked(o) {
		if used+d.Size > budget {
			continue
		}
		used += d.Size
		out = append(out, d.Doc)
	}
	return out
}

// TopFraction returns the most popular documents covering the given
// fraction of AccessedBytes.
func (a *Analysis) TopFraction(frac float64, o Order) []webgraph.DocID {
	if frac <= 0 {
		return nil
	}
	if frac > 1 {
		frac = 1
	}
	return a.TopBytes(int64(frac*float64(a.AccessedBytes)), o)
}
