// Package obs is the zero-dependency observability layer for the
// speculative-service stack: a metrics registry (atomic counters, gauges,
// and fixed-bucket histograms rendered in the Prometheus text exposition
// format), structured component-tagged logging over log/slog, and
// lightweight span tracing with a bounded in-memory ring of recent spans.
//
// The paper's entire evaluation is a set of measured ratios — bandwidth,
// server load, service time and byte miss rate, speculative over
// non-speculative (§3, Figs. 5–6) — and this package is what lets a
// running server report those quantities continuously instead of only at
// the end of a batch simulation.
//
// Everything here is safe for concurrent use. Metric mutation paths are
// lock-free (a single atomic add per counter or histogram observation);
// registration and rendering take a registry lock.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry: the one cmd binaries expose on
// /metrics. Components accept an explicit *Registry and fall back to
// Default when given nil, so tests can isolate themselves with
// NewRegistry.
var Default = NewRegistry()

// Labels are constant labels attached to one metric series. The same
// metric name with different label sets forms one family with several
// series, exactly as Prometheus models it.
type Labels map[string]string

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float-valued metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (CAS loop; delta may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: bounds are the inclusive upper
// edges (the Prometheus "le" convention), with an implicit +Inf bucket at
// the end. Observations are a binary search plus one atomic add, so hot
// paths can record every request.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64

	// exemplars holds, per bucket, the most recent trace-ID exemplar
	// observed into it (set by ObserveTrace). Lazily allocated so plain
	// histograms pay nothing.
	exemplars []atomic.Pointer[exemplar]
}

// exemplar ties one observed value to the trace that produced it, in the
// OpenMetrics sense: a concrete request a human can pull up in
// /debug/spans?trace=… to explain a bucket.
type exemplar struct {
	trace string
	value float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveTrace records one value and attaches the trace ID as the
// bucket's exemplar (last writer wins). An empty trace ID degrades to a
// plain Observe.
func (h *Histogram) ObserveTrace(v float64, traceID string) {
	if traceID == "" || h.exemplars == nil {
		h.Observe(v)
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].Store(&exemplar{trace: traceID, value: v})
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Exemplar returns the trace ID last attached to the bucket containing v
// ("" if none).
func (h *Histogram) Exemplar(v float64) string {
	if h.exemplars == nil {
		return ""
	}
	i := sort.SearchFloat64s(h.bounds, v)
	if e := h.exemplars[i].Load(); e != nil {
		return e.trace
	}
	return ""
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q ≤ 1) by linear interpolation
// inside the bucket containing it. Observations in the +Inf bucket report
// the largest finite bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	lower := 0.0
	for i, b := range h.bounds {
		n := h.counts[i].Load()
		if float64(cum+n) >= rank && n > 0 {
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(b-lower)
		}
		cum += n
		lower = b
	}
	return h.bounds[len(h.bounds)-1]
}

// LatencyBuckets are upper bounds in seconds suited to an in-memory
// document server: 100µs up to 10s.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// SizeBuckets are upper bounds in bytes for document/response sizes,
// ×4 per step from 256 B to 16 MiB.
func SizeBuckets() []float64 {
	return []float64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family groups the series sharing one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64
	series  map[string]any // label signature → *Counter | *Gauge | *Histogram
}

// Registry holds metric families and renders them. Lookup is
// get-or-create: asking twice for the same name and labels returns the
// same metric, so independently constructed components may share series.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// orDefault resolves nil to the process-wide Default registry.
func orDefault(r *Registry) *Registry {
	if r == nil {
		return Default
	}
	return r
}

func (r *Registry) family(name, help string, kind metricKind, buckets []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets,
			series: make(map[string]any)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

// Counter returns the counter for name+labels, creating it if needed.
// labels may be nil.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r = orDefault(r)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindCounter, nil)
	sig := labelSignature(labels)
	if m, ok := f.series[sig]; ok {
		return m.(*Counter)
	}
	c := &Counter{}
	f.series[sig] = c
	return c
}

// Gauge returns the gauge for name+labels, creating it if needed.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r = orDefault(r)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge, nil)
	sig := labelSignature(labels)
	if m, ok := f.series[sig]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{}
	f.series[sig] = g
	return g
}

// Histogram returns the histogram for name+labels, creating it with the
// given bucket bounds if needed (bounds must be sorted ascending; an
// existing family keeps its original bounds).
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	r = orDefault(r)
	if len(buckets) == 0 {
		buckets = LatencyBuckets()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindHistogram, buckets)
	sig := labelSignature(labels)
	if m, ok := f.series[sig]; ok {
		return m.(*Histogram)
	}
	h := &Histogram{
		bounds:    f.buckets,
		counts:    make([]atomic.Int64, len(f.buckets)+1),
		exemplars: make([]atomic.Pointer[exemplar], len(f.buckets)+1),
	}
	f.series[sig] = h
	return h
}

// labelSignature renders labels in canonical `k="v",…` order; empty for
// nil labels.
func labelSignature(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

// seriesName joins a family name with a label signature.
func seriesName(name, sig string) string {
	if sig == "" {
		return name
	}
	return name + "{" + sig + "}"
}

// withLe appends (or starts) a label signature with an le bucket label.
func withLe(sig, le string) string {
	if sig == "" {
		return `le="` + le + `"`
	}
	return sig + `,le="` + le + `"`
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the text exposition format
// (families and series in lexical order, so output is deterministic).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r = orDefault(r)
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		sigs := make([]string, 0, len(f.series))
		for s := range f.series {
			sigs = append(sigs, s)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			switch m := f.series[sig].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name, sig), m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s %s\n", seriesName(f.name, sig), formatFloat(m.Value()))
			case *Histogram:
				var cum int64
				for i, bound := range m.bounds {
					cum += m.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket{%s} %d%s\n", f.name,
						withLe(sig, formatFloat(bound)), cum, m.exemplarSuffix(i))
				}
				cum += m.counts[len(m.bounds)].Load()
				fmt.Fprintf(&b, "%s_bucket{%s} %d%s\n", f.name,
					withLe(sig, "+Inf"), cum, m.exemplarSuffix(len(m.bounds)))
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, braced(sig), formatFloat(m.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, braced(sig), m.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// exemplarSuffix renders the bucket's OpenMetrics-style exemplar
// (` # {trace_id="…"} value`), or "" when the bucket has none.
func (h *Histogram) exemplarSuffix(i int) string {
	if h.exemplars == nil {
		return ""
	}
	e := h.exemplars[i].Load()
	if e == nil {
		return ""
	}
	return ` # {trace_id="` + e.trace + `"} ` + formatFloat(e.value)
}

func braced(sig string) string {
	if sig == "" {
		return ""
	}
	return "{" + sig + "}"
}

// Handler serves the registry in Prometheus text format — mount it at
// /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
