package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTracer is the process-wide tracer the cmd binaries expose at
// /debug/spans. Components accept a *Tracer and fall back to this when
// given nil.
var DefaultTracer = NewTracer(256)

// TraceparentHeader is the W3C trace-context header the speculative
// stack propagates: a request entering the client carries one trace ID
// through proxy and server hops (and back through speculative pulls), so
// the spans of every process involved in a request share a trace ID and
// can be merged into one tree.
const TraceparentHeader = "traceparent"

// SpanID identifies one span; 0 means "no span / no parent". IDs are
// seeded per process so spans from different processes in one trace do
// not collide when their rings are merged.
type SpanID uint64

// processSeed makes span and trace IDs unique across processes. It is
// drawn once from crypto/rand; on failure (no entropy source) the
// constant fallback still yields unique IDs within the process.
var processSeed = func() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0x9e3779b97f4a7c15
	}
	return binary.LittleEndian.Uint64(b[:])
}()

var idCounter atomic.Uint64

// mix64 is the splitmix64 finalizer: a bijective scramble that turns the
// sequential counter into well-spread 64-bit IDs.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func nextID() uint64 {
	id := mix64(processSeed + idCounter.Add(1))
	if id == 0 {
		id = 1 // 0 is reserved for "no span"
	}
	return id
}

// NewTraceID returns a fresh 32-hex-digit trace ID (unique per process,
// distinct across processes with high probability).
func NewTraceID() string {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], mix64(processSeed))
	binary.BigEndian.PutUint64(b[8:], nextID())
	return hex32(b)
}

const hexDigits = "0123456789abcdef"

func hex32(b [16]byte) string {
	var out [32]byte
	for i, v := range b {
		out[i*2] = hexDigits[v>>4]
		out[i*2+1] = hexDigits[v&0xf]
	}
	return string(out[:])
}

func hex16(v uint64) string {
	var out [16]byte
	for i := 15; i >= 0; i-- {
		out[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return string(out[:])
}

// FormatTraceparent renders the W3C header value for a span within a
// trace: 00-<trace-id>-<span-id>-01.
func FormatTraceparent(traceID string, span SpanID) string {
	return "00-" + traceID + "-" + hex16(uint64(span)) + "-01"
}

// ParseTraceparent extracts the trace ID and parent span ID from a W3C
// traceparent header value. It accepts any version, requires the
// canonical lowercase-hex field widths, and rejects the all-zero trace
// and span IDs the spec declares invalid.
func ParseTraceparent(h string) (traceID string, parent SpanID, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return "", 0, false
	}
	var id uint64
	for _, c := range []byte(parts[2]) {
		var v byte
		switch {
		case c >= '0' && c <= '9':
			v = c - '0'
		case c >= 'a' && c <= 'f':
			v = c - 'a' + 10
		default:
			return "", 0, false
		}
		id = id<<4 | uint64(v)
	}
	allZero := true
	for _, c := range []byte(parts[1]) {
		if c != '0' {
			allZero = false
		}
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return "", 0, false
		}
	}
	if allZero || id == 0 {
		return "", 0, false
	}
	return parts[1], SpanID(id), true
}

// Span is one finished operation. The ring keeps only finished spans;
// in-flight ones live on their *ActiveSpan until Finish.
type Span struct {
	Trace    string            `json:"trace,omitempty"`
	ID       SpanID            `json:"id"`
	Parent   SpanID            `json:"parent,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Tracer records spans into a bounded ring: the most recent spans are
// retained, older ones overwritten. All methods are safe on a nil
// *Tracer (they no-op), so instrumentation never needs a nil check.
type Tracer struct {
	capacity int

	// clock supplies span start times; tests inject a fixed one so the
	// /debug/spans format can be pinned by a golden file.
	clock func() time.Time

	mu    sync.Mutex
	ring  []Span
	head  int    // next write position
	total uint64 // spans ever finished
}

// NewTracer returns a tracer retaining the last capacity finished spans
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{capacity: capacity, clock: time.Now, ring: make([]Span, 0, capacity)}
}

// SetClock injects the span time source (nil restores time.Now). Call
// before recording spans; deterministic tests use it to pin span output.
func (t *Tracer) SetClock(clock func() time.Time) {
	if t == nil {
		return
	}
	if clock == nil {
		clock = time.Now
	}
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
}

func (t *Tracer) now() time.Time {
	t.mu.Lock()
	clock := t.clock
	t.mu.Unlock()
	return clock()
}

// ActiveSpan is an in-flight span; call Finish to record it.
type ActiveSpan struct {
	t     *Tracer
	span  Span
	attrs map[string]string
}

// Start begins a root span under a fresh trace ID.
func (t *Tracer) Start(name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	return t.start(name, NewTraceID(), 0)
}

// StartChild begins a span under parent, inheriting its trace ID. A nil
// parent starts a fresh root span.
func (t *Tracer) StartChild(name string, parent *ActiveSpan) *ActiveSpan {
	if t == nil {
		return nil
	}
	if parent == nil {
		return t.Start(name)
	}
	return t.start(name, parent.span.Trace, parent.span.ID)
}

// StartRemote continues a trace arriving from another process: it parses
// the W3C traceparent header value and begins a span with that trace ID,
// parented on the remote span. An empty or invalid header starts a fresh
// root span, so callers can pass the header through unconditionally.
func (t *Tracer) StartRemote(name, traceparent string) *ActiveSpan {
	if t == nil {
		return nil
	}
	if trace, parent, ok := ParseTraceparent(traceparent); ok {
		return t.start(name, trace, parent)
	}
	return t.Start(name)
}

func (t *Tracer) start(name, trace string, parent SpanID) *ActiveSpan {
	return &ActiveSpan{t: t, span: Span{
		Trace:  trace,
		ID:     SpanID(nextID()),
		Parent: parent,
		Name:   name,
		Start:  t.now(),
	}}
}

// ID returns the span's ID (0 on a nil span), for parenting children.
func (s *ActiveSpan) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.span.ID
}

// TraceID returns the span's trace ID ("" on a nil span).
func (s *ActiveSpan) TraceID() string {
	if s == nil {
		return ""
	}
	return s.span.Trace
}

// Traceparent renders the span as a W3C traceparent header value, for
// propagation to the next hop ("" on a nil span).
func (s *ActiveSpan) Traceparent() string {
	if s == nil {
		return ""
	}
	return FormatTraceparent(s.span.Trace, s.span.ID)
}

// SetAttr attaches a key/value annotation.
func (s *ActiveSpan) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[k] = v
}

// Finish stamps the duration and pushes the span into the ring.
func (s *ActiveSpan) Finish() {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	s.span.Duration = t.clock().Sub(s.span.Start)
	s.span.Attrs = s.attrs
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, s.span)
	} else {
		t.ring[t.head] = s.span
	}
	t.head = (t.head + 1) % t.capacity
	t.total++
	t.mu.Unlock()
}

// Recent returns the retained spans, oldest first.
func (t *Tracer) Recent() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if len(t.ring) < t.capacity {
		out = append(out, t.ring...)
		return out
	}
	out = append(out, t.ring[t.head:]...)
	out = append(out, t.ring[:t.head]...)
	return out
}

// Trace returns the retained spans belonging to one trace ID, oldest
// first.
func (t *Tracer) Trace(traceID string) []Span {
	var out []Span
	for _, s := range t.Recent() {
		if s.Trace == traceID {
			out = append(out, s)
		}
	}
	return out
}

// Total returns how many spans have ever finished (including overwritten
// ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// SpanNode is one node of a rendered request tree: a span and the spans
// parented on it, ordered by start time.
type SpanNode struct {
	Span
	Children []*SpanNode `json:"children,omitempty"`
}

// BuildTree arranges spans into parent/child trees. Spans whose parent
// is absent (0, overwritten, or recorded by another process) become
// roots. Roots and children are ordered by start time, then span ID, so
// the rendering is deterministic for a fixed span set.
func BuildTree(spans []Span) []*SpanNode {
	nodes := make(map[SpanID]*SpanNode, len(spans))
	for _, s := range spans {
		nodes[s.ID] = &SpanNode{Span: s}
	}
	var roots []*SpanNode
	for _, s := range spans {
		n := nodes[s.ID]
		if p, ok := nodes[s.Parent]; ok && s.Parent != s.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	order := func(ns []*SpanNode) {
		sort.Slice(ns, func(i, j int) bool {
			if !ns[i].Start.Equal(ns[j].Start) {
				return ns[i].Start.Before(ns[j].Start)
			}
			return ns[i].ID < ns[j].ID
		})
	}
	order(roots)
	for _, n := range nodes {
		order(n.Children)
	}
	return roots
}

// spansPayload is the /debug/spans JSON document. With a ?trace= filter
// the payload carries only that trace's spans plus their tree rendering.
type spansPayload struct {
	Total uint64      `json:"total"`
	Trace string      `json:"trace,omitempty"`
	Spans []Span      `json:"spans"`
	Tree  []*SpanNode `json:"tree,omitempty"`
}

// Handler serves the ring as JSON — mount it at /debug/spans. A
// ?trace=<id> query filters to one trace and adds its request tree, so a
// whole client→proxy→server request can be read as one nested document.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		payload := spansPayload{Total: t.Total()}
		if id := r.URL.Query().Get("trace"); id != "" {
			payload.Trace = id
			payload.Spans = t.Trace(id)
			payload.Tree = BuildTree(payload.Spans)
		} else {
			payload.Spans = t.Recent()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(payload)
	})
}
