package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTracer is the process-wide tracer the cmd binaries expose at
// /debug/spans. Components accept a *Tracer and fall back to this when
// given nil.
var DefaultTracer = NewTracer(256)

// SpanID identifies one span; 0 means "no span / no parent".
type SpanID uint64

// Span is one finished operation. The ring keeps only finished spans;
// in-flight ones live on their *ActiveSpan until Finish.
type Span struct {
	ID       SpanID            `json:"id"`
	Parent   SpanID            `json:"parent,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Tracer records spans into a bounded ring: the most recent spans are
// retained, older ones overwritten. All methods are safe on a nil
// *Tracer (they no-op), so instrumentation never needs a nil check.
type Tracer struct {
	capacity int
	next     atomic.Uint64

	mu    sync.Mutex
	ring  []Span
	head  int    // next write position
	total uint64 // spans ever finished
}

// NewTracer returns a tracer retaining the last capacity finished spans
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{capacity: capacity, ring: make([]Span, 0, capacity)}
}

// ActiveSpan is an in-flight span; call Finish to record it.
type ActiveSpan struct {
	t     *Tracer
	span  Span
	attrs map[string]string
}

// Start begins a root span.
func (t *Tracer) Start(name string) *ActiveSpan {
	return t.StartChild(name, 0)
}

// StartChild begins a span under parent (0 for a root span).
func (t *Tracer) StartChild(name string, parent SpanID) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{t: t, span: Span{
		ID:     SpanID(t.next.Add(1)),
		Parent: parent,
		Name:   name,
		Start:  time.Now(),
	}}
}

// ID returns the span's ID (0 on a nil span), for parenting children.
func (s *ActiveSpan) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.span.ID
}

// SetAttr attaches a key/value annotation.
func (s *ActiveSpan) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[k] = v
}

// Finish stamps the duration and pushes the span into the ring.
func (s *ActiveSpan) Finish() {
	if s == nil {
		return
	}
	s.span.Duration = time.Since(s.span.Start)
	s.span.Attrs = s.attrs
	t := s.t
	t.mu.Lock()
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, s.span)
	} else {
		t.ring[t.head] = s.span
	}
	t.head = (t.head + 1) % t.capacity
	t.total++
	t.mu.Unlock()
}

// Recent returns the retained spans, oldest first.
func (t *Tracer) Recent() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if len(t.ring) < t.capacity {
		out = append(out, t.ring...)
		return out
	}
	out = append(out, t.ring[t.head:]...)
	out = append(out, t.ring[:t.head]...)
	return out
}

// Total returns how many spans have ever finished (including overwritten
// ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Handler serves the ring as JSON — mount it at /debug/spans.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Total uint64 `json:"total"`
			Spans []Span `json:"spans"`
		}{t.Total(), t.Recent()})
	})
}
