package obs

import "runtime/debug"

// BuildInfo is the version identity stamped into binaries by the Go
// toolchain, surfaced for -version flags and the specweb_build_info
// metric.
type BuildInfo struct {
	Version   string // main module version ("(devel)" for local builds)
	Revision  string // vcs.revision, if the build carried VCS metadata
	Modified  string // vcs.modified ("true" when built from a dirty tree)
	GoVersion string
}

// ReadBuild collects build metadata via runtime/debug.ReadBuildInfo.
// Fields default to "unknown" when the runtime has nothing (e.g. test
// binaries built without module info).
func ReadBuild() BuildInfo {
	out := BuildInfo{Version: "unknown", Revision: "unknown", Modified: "false", GoVersion: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out.GoVersion = bi.GoVersion
	if bi.Main.Version != "" {
		out.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out.Revision = s.Value
		case "vcs.modified":
			out.Modified = s.Value
		}
	}
	return out
}

// String renders the info for a -version flag.
func (b BuildInfo) String() string {
	return b.Version + " (" + b.Revision + ", " + b.GoVersion + ")"
}

// RegisterBuildInfo publishes the standard always-1 specweb_build_info
// gauge, labelled with the binary name and build identity, on the given
// registry (nil means Default). Returns the info so callers can also
// print it.
func RegisterBuildInfo(r *Registry, binary string) BuildInfo {
	b := ReadBuild()
	r.Gauge("specweb_build_info",
		"Build identity; always 1, with version info in the labels.",
		Labels{
			"binary":     binary,
			"version":    b.Version,
			"revision":   b.Revision,
			"go_version": b.GoVersion,
		}).Set(1)
	return b
}
