package obs

import (
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestSpanParentChild(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Start("request")
	child := tr.StartChild("speculate", root.ID())
	child.SetAttr("doc", "/a")
	child.Finish()
	root.Finish()

	spans := tr.Recent()
	if len(spans) != 2 {
		t.Fatalf("%d spans, want 2", len(spans))
	}
	// Child finished first, so it is oldest.
	if spans[0].Name != "speculate" || spans[0].Parent != root.ID() {
		t.Errorf("child span %+v", spans[0])
	}
	if spans[0].Attrs["doc"] != "/a" {
		t.Errorf("attrs %+v", spans[0].Attrs)
	}
	if spans[1].Name != "request" || spans[1].Parent != 0 {
		t.Errorf("root span %+v", spans[1])
	}
	if spans[0].ID == spans[1].ID {
		t.Error("span IDs collide")
	}
}

// TestSpanRingOverflow: a full ring keeps only the newest spans, oldest
// first, and keeps counting the total.
func TestSpanRingOverflow(t *testing.T) {
	tr := NewTracer(4)
	names := []string{"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9"}
	for _, n := range names {
		tr.Start(n).Finish()
	}
	spans := tr.Recent()
	if len(spans) != 4 {
		t.Fatalf("%d spans retained, want 4", len(spans))
	}
	for i, want := range []string{"s6", "s7", "s8", "s9"} {
		if spans[i].Name != want {
			t.Errorf("spans[%d] = %q, want %q", i, spans[i].Name, want)
		}
	}
	if tr.Total() != 10 {
		t.Errorf("total = %d, want 10", tr.Total())
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	s := tr.Start("noop")
	s.SetAttr("k", "v")
	if s.ID() != 0 {
		t.Error("nil span has nonzero ID")
	}
	s.Finish() // must not panic
	if tr.Recent() != nil || tr.Total() != 0 {
		t.Error("nil tracer reports spans")
	}
}

func TestTracerHandler(t *testing.T) {
	tr := NewTracer(4)
	tr.Start("one").Finish()
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans", nil))
	var out struct {
		Total uint64 `json:"total"`
		Spans []Span `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if out.Total != 1 || len(out.Spans) != 1 || out.Spans[0].Name != "one" {
		t.Errorf("handler output %+v", out)
	}
}

func TestLoggerTagsComponent(t *testing.T) {
	var b strings.Builder
	logMu.RLock()
	old := logBase
	logMu.RUnlock()
	SetLogger(slog.New(slog.NewTextHandler(&b, nil)))
	defer SetLogger(old)
	Logger("server").Info("hello", "n", 1)
	got := b.String()
	if !strings.Contains(got, "component=server") || !strings.Contains(got, "msg=hello") {
		t.Errorf("log line %q", got)
	}
}
