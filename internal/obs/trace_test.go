package obs

import (
	"encoding/json"
	"flag"
	"log/slog"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestSpanParentChild(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Start("request")
	child := tr.StartChild("speculate", root)
	child.SetAttr("doc", "/a")
	child.Finish()
	root.Finish()

	spans := tr.Recent()
	if len(spans) != 2 {
		t.Fatalf("%d spans, want 2", len(spans))
	}
	// Child finished first, so it is oldest.
	if spans[0].Name != "speculate" || spans[0].Parent != root.ID() {
		t.Errorf("child span %+v", spans[0])
	}
	if spans[0].Attrs["doc"] != "/a" {
		t.Errorf("attrs %+v", spans[0].Attrs)
	}
	if spans[1].Name != "request" || spans[1].Parent != 0 {
		t.Errorf("root span %+v", spans[1])
	}
	if spans[0].ID == spans[1].ID {
		t.Error("span IDs collide")
	}
	if spans[0].Trace == "" || spans[0].Trace != spans[1].Trace {
		t.Errorf("child trace %q != root trace %q", spans[0].Trace, spans[1].Trace)
	}
}

// TestSpanRingOverflow: a full ring keeps only the newest spans, oldest
// first, and keeps counting the total.
func TestSpanRingOverflow(t *testing.T) {
	tr := NewTracer(4)
	names := []string{"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9"}
	for _, n := range names {
		tr.Start(n).Finish()
	}
	spans := tr.Recent()
	if len(spans) != 4 {
		t.Fatalf("%d spans retained, want 4", len(spans))
	}
	for i, want := range []string{"s6", "s7", "s8", "s9"} {
		if spans[i].Name != want {
			t.Errorf("spans[%d] = %q, want %q", i, spans[i].Name, want)
		}
	}
	if tr.Total() != 10 {
		t.Errorf("total = %d, want 10", tr.Total())
	}
}

// TestSpanRingWraparoundConcurrent hammers a tiny ring from many
// goroutines (run under -race) and then checks the ring's invariants:
// exactly capacity spans retained, total equals spans finished, and no
// retained span is a zero value (a torn or skipped slot).
func TestSpanRingWraparoundConcurrent(t *testing.T) {
	const (
		workers = 8
		perG    = 200
		cap     = 7 // deliberately not a power of two
	)
	tr := NewTracer(cap)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sp := tr.Start("op")
				child := tr.StartChild("child", sp)
				child.Finish()
				sp.Finish()
			}
		}()
	}
	wg.Wait()
	if got, want := tr.Total(), uint64(workers*perG*2); got != want {
		t.Errorf("total = %d, want %d", got, want)
	}
	spans := tr.Recent()
	if len(spans) != cap {
		t.Fatalf("%d spans retained, want %d", len(spans), cap)
	}
	seen := make(map[SpanID]bool)
	for i, s := range spans {
		if s.ID == 0 || s.Name == "" || s.Start.IsZero() {
			t.Errorf("spans[%d] is torn/zero: %+v", i, s)
		}
		if seen[s.ID] {
			t.Errorf("span ID %d appears twice in ring", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	s := tr.Start("noop")
	s.SetAttr("k", "v")
	if s.ID() != 0 {
		t.Error("nil span has nonzero ID")
	}
	if s.TraceID() != "" || s.Traceparent() != "" {
		t.Error("nil span has trace identity")
	}
	s.Finish() // must not panic
	if tr.Recent() != nil || tr.Total() != 0 {
		t.Error("nil tracer reports spans")
	}
	if tr.StartChild("c", nil) != nil || tr.StartRemote("r", "") != nil {
		t.Error("nil tracer returned a span")
	}
	tr.SetClock(nil)
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Start("client.get")
	h := sp.Traceparent()
	if !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("traceparent %q not W3C-shaped", h)
	}
	trace, parent, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected own output", h)
	}
	if trace != sp.TraceID() {
		t.Errorf("trace = %q, want %q", trace, sp.TraceID())
	}
	if parent != sp.ID() {
		t.Errorf("parent = %d, want %d", parent, sp.ID())
	}
	sp.Finish()

	// A second tracer (standing in for another process) continues it.
	tr2 := NewTracer(8)
	remote := tr2.StartRemote("server.request", h)
	if remote.TraceID() != sp.TraceID() {
		t.Errorf("remote trace %q, want %q", remote.TraceID(), sp.TraceID())
	}
	remote.Finish()
	if got := tr2.Recent()[0].Parent; got != sp.ID() {
		t.Errorf("remote parent %d, want %d", got, sp.ID())
	}
}

func TestParseTraceparentRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"not-a-header",
		"00-zz-ff-01",
		"00-0123456789abcdef0123456789abcdef-00000000000000ZZ-01", // bad span hex
		"00-00000000000000000000000000000000-0000000000000001-01", // zero trace
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01", // zero span
		"00-0123456789ABCDEF0123456789ABCDEF-0000000000000001-01", // uppercase
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted garbage", h)
		}
	}
	// And a remote start on garbage degrades to a fresh root.
	tr := NewTracer(4)
	sp := tr.StartRemote("req", "garbage")
	if sp.TraceID() == "" || sp.span.Parent != 0 {
		t.Errorf("StartRemote on garbage: trace=%q parent=%d", sp.TraceID(), sp.span.Parent)
	}
	sp.Finish()
}

func TestTraceFilterAndTree(t *testing.T) {
	tr := NewTracer(16)
	a := tr.Start("request.a")
	ac := tr.StartChild("speculate", a)
	ac.Finish()
	a.Finish()
	b := tr.Start("request.b")
	b.Finish()

	got := tr.Trace(a.TraceID())
	if len(got) != 2 {
		t.Fatalf("Trace(a) = %d spans, want 2", len(got))
	}
	for _, s := range got {
		if s.Trace != a.TraceID() {
			t.Errorf("span %q has trace %q", s.Name, s.Trace)
		}
	}

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec,
		httptest.NewRequest("GET", "/debug/spans?trace="+a.TraceID(), nil))
	var out spansPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if out.Trace != a.TraceID() || len(out.Spans) != 2 {
		t.Fatalf("filtered payload: trace=%q spans=%d", out.Trace, len(out.Spans))
	}
	if len(out.Tree) != 1 {
		t.Fatalf("tree has %d roots, want 1", len(out.Tree))
	}
	root := out.Tree[0]
	if root.Name != "request.a" || len(root.Children) != 1 || root.Children[0].Name != "speculate" {
		t.Errorf("tree %+v", root)
	}
}

func TestBuildTreeOrphansBecomeRoots(t *testing.T) {
	// A child whose parent was overwritten in the ring must still render.
	spans := []Span{
		{Trace: "t", ID: 5, Parent: 99, Name: "orphan", Start: time.Unix(10, 0)},
		{Trace: "t", ID: 6, Parent: 0, Name: "root", Start: time.Unix(5, 0)},
		{Trace: "t", ID: 7, Parent: 6, Name: "kid", Start: time.Unix(6, 0)},
	}
	roots := BuildTree(spans)
	if len(roots) != 2 {
		t.Fatalf("%d roots, want 2", len(roots))
	}
	// Ordered by start time: root (t=5) before orphan (t=10).
	if roots[0].Name != "root" || roots[1].Name != "orphan" {
		t.Errorf("root order: %q, %q", roots[0].Name, roots[1].Name)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Name != "kid" {
		t.Errorf("children %+v", roots[0].Children)
	}
}

func TestTracerHandler(t *testing.T) {
	tr := NewTracer(4)
	tr.Start("one").Finish()
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans", nil))
	var out struct {
		Total uint64 `json:"total"`
		Spans []Span `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if out.Total != 1 || len(out.Spans) != 1 || out.Spans[0].Name != "one" {
		t.Errorf("handler output %+v", out)
	}
}

// TestSpansHandlerGolden pins the /debug/spans wire format (the document
// CI uploads as an artifact): the ring is populated with fixed spans so
// the rendered JSON is byte-stable.
func TestSpansHandlerGolden(t *testing.T) {
	t0 := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	tr := NewTracer(8)
	tr.ring = []Span{
		{Trace: "0123456789abcdef0123456789abcdef", ID: 0x10, Name: "client.get",
			Start: t0, Duration: 5 * time.Millisecond,
			Attrs: map[string]string{"doc": "/index.html"}},
		{Trace: "0123456789abcdef0123456789abcdef", ID: 0x11, Parent: 0x10,
			Name: "server.request", Start: t0.Add(time.Millisecond),
			Duration: 3 * time.Millisecond},
		{Trace: "0123456789abcdef0123456789abcdef", ID: 0x12, Parent: 0x11,
			Name: "server.speculate", Start: t0.Add(2 * time.Millisecond),
			Duration: time.Millisecond},
	}
	tr.head = len(tr.ring) % tr.capacity
	tr.total = uint64(len(tr.ring))

	for name, url := range map[string]string{
		"spans_golden.json":       "/debug/spans",
		"spans_trace_golden.json": "/debug/spans?trace=0123456789abcdef0123456789abcdef",
	} {
		rec := httptest.NewRecorder()
		tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		path := filepath.Join("testdata", name)
		if *updateGolden {
			if err := os.WriteFile(path, rec.Body.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden (run with -update): %v", err)
		}
		if got := rec.Body.String(); got != string(want) {
			t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s",
				url, got, want)
		}
	}
}

func TestLoggerTagsComponent(t *testing.T) {
	var b strings.Builder
	logMu.RLock()
	old := logBase
	logMu.RUnlock()
	SetLogger(slog.New(slog.NewTextHandler(&b, nil)))
	defer SetLogger(old)
	Logger("server").Info("hello", "n", 1)
	got := b.String()
	if !strings.Contains(got, "component=server") || !strings.Contains(got, "msg=hello") {
		t.Errorf("log line %q", got)
	}
}
