package obs

import (
	"strings"
	"testing"
)

func TestHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_seconds", "Request latency.", []float64{0.01, 0.1, 1}, nil)
	h.Observe(0.005) // no exemplar
	h.ObserveTrace(0.05, "0123456789abcdef0123456789abcdef")
	h.ObserveTrace(0.07, "fedcba9876543210fedcba9876543210") // same bucket: last wins
	h.ObserveTrace(0.5, "")                                  // empty trace: plain observe

	if got := h.Exemplar(0.06); got != "fedcba9876543210fedcba9876543210" {
		t.Errorf("Exemplar(0.06) = %q", got)
	}
	if got := h.Exemplar(0.005); got != "" {
		t.Errorf("Exemplar(0.005) = %q, want none", got)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `req_seconds_bucket{le="0.1"} 3 # {trace_id="fedcba9876543210fedcba9876543210"} 0.07`
	if !strings.Contains(out, want) {
		t.Errorf("exposition missing exemplar line %q:\n%s", want, out)
	}
	if strings.Contains(out, `le="0.01"} 1 #`) {
		t.Errorf("bucket without exemplar grew a suffix:\n%s", out)
	}
}

func TestHistogramExemplarConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", "", []float64{1}, nil)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			for i := 0; i < 500; i++ {
				h.ObserveTrace(0.5, "0123456789abcdef0123456789abcdef")
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if h.Count() != 2000 {
		t.Errorf("count = %d, want 2000", h.Count())
	}
	if h.Exemplar(0.5) == "" {
		t.Error("no exemplar after concurrent observes")
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	info := RegisterBuildInfo(r, "specd-test")
	if info.Version == "" || info.GoVersion == "" {
		t.Errorf("empty build info: %+v", info)
	}
	if s := info.String(); !strings.Contains(s, info.GoVersion) {
		t.Errorf("String() = %q missing go version", s)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "specweb_build_info") ||
		!strings.Contains(out, `binary="specd-test"`) {
		t.Errorf("exposition missing build info:\n%s", out)
	}
}
