package obs

import (
	"log/slog"
	"os"
	"sync"
)

var (
	logMu   sync.RWMutex
	logBase = slog.New(slog.NewTextHandler(os.Stderr, nil))
)

// SetLogger replaces the base logger every component logger derives from
// (e.g. to swap in a JSON handler or a test sink). Loggers already handed
// out keep their old handler.
func SetLogger(l *slog.Logger) {
	if l == nil {
		return
	}
	logMu.Lock()
	logBase = l
	logMu.Unlock()
}

// Logger returns the shared structured logger tagged with the given
// component name — the one consistent attribute every subsystem logs
// with, so output can be filtered per component.
func Logger(component string) *slog.Logger {
	logMu.RLock()
	defer logMu.RUnlock()
	return logBase.With("component", component)
}
