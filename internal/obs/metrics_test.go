package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "help", nil)
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("x_total", "help", nil); again != c {
		t.Error("get-or-create returned a different counter")
	}
	if other := r.Counter("x_total", "help", Labels{"k": "v"}); other == c {
		t.Error("labeled series aliases the unlabeled one")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "", nil)
	g.Set(2.5)
	g.Add(-1)
	if v := g.Value(); v != 1.5 {
		t.Errorf("gauge = %v, want 1.5", v)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Error("no panic on counter-vs-gauge mismatch")
		}
	}()
	r.Gauge("m", "", nil)
}

func TestNilRegistryFallsBackToDefault(t *testing.T) {
	var r *Registry
	c := r.Counter("obs_test_nil_fallback_total", "", nil)
	if c != Default.Counter("obs_test_nil_fallback_total", "", nil) {
		t.Error("nil registry did not resolve to Default")
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 2, 4, 8}, nil)
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Errorf("count = %d", h.Count())
	}
	if s := h.Sum(); math.Abs(s-119.5) > 1e-9 {
		t.Errorf("sum = %v", s)
	}
	// Median falls in the (2,4] bucket.
	if q := h.Quantile(0.5); q < 2 || q > 4 {
		t.Errorf("p50 = %v, want within (2,4]", q)
	}
	// The tail observation sits in +Inf: quantile caps at the last bound.
	if q := h.Quantile(0.999); q != 8 {
		t.Errorf("p99.9 = %v, want 8", q)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("empty", "", []float64{1, 2}, nil)
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}

// TestPrometheusExposition is the golden test for the text format.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("specweb_requests_total", "Requests served.", nil)
	c.Add(3)
	cl := r.Counter("specweb_requests_total", "Requests served.", Labels{"mode": "push"})
	cl.Add(2)
	g := r.Gauge("specweb_occupancy_bytes", "Cached bytes.", nil)
	g.Set(1536)
	h := r.Histogram("specweb_latency_seconds", "Request latency.", []float64{0.1, 1}, nil)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP specweb_latency_seconds Request latency.
# TYPE specweb_latency_seconds histogram
specweb_latency_seconds_bucket{le="0.1"} 1
specweb_latency_seconds_bucket{le="1"} 2
specweb_latency_seconds_bucket{le="+Inf"} 3
specweb_latency_seconds_sum 5.55
specweb_latency_seconds_count 3
# HELP specweb_occupancy_bytes Cached bytes.
# TYPE specweb_occupancy_bytes gauge
specweb_occupancy_bytes 1536
# HELP specweb_requests_total Requests served.
# TYPE specweb_requests_total counter
specweb_requests_total 3
specweb_requests_total{mode="push"} 2
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHandlerServesText(t *testing.T) {
	r := NewRegistry()
	r.Counter("one_total", "", nil).Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "one_total 1") {
		t.Errorf("body %q", rec.Body.String())
	}
}

// TestConcurrentUpdates exercises every metric type from many goroutines;
// run with -race. Final values must be exact (no lost updates).
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("conc_total", "", nil)
			g := r.Gauge("conc_gauge", "", nil)
			h := r.Histogram("conc_hist", "", []float64{0.5, 1}, nil)
			for i := 0; i < each; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("conc_total", "", nil).Value(); v != workers*each {
		t.Errorf("counter = %d, want %d", v, workers*each)
	}
	if v := r.Gauge("conc_gauge", "", nil).Value(); v != workers*each {
		t.Errorf("gauge = %v, want %d", v, workers*each)
	}
	h := r.Histogram("conc_hist", "", nil, nil)
	if h.Count() != workers*each {
		t.Errorf("hist count = %d, want %d", h.Count(), workers*each)
	}
	if s := h.Sum(); math.Abs(s-0.25*workers*each) > 1e-6 {
		t.Errorf("hist sum = %v", s)
	}
}
