// Package dissemination implements the trace-driven simulation of §2.4: the
// reduction in network bandwidth — measured in bytes × hops, as the paper
// does — achieved by disseminating the most popular fraction of a server's
// data to a growing number of service proxies (Figure 3).
//
// The baseline serves every request from the home server at the tree root;
// with dissemination, a request for a replicated document is served by the
// deepest proxy on the client's path that holds it. The simulator
// optionally charges the push traffic itself (initial dissemination plus
// re-pushes caused by document updates), supports the per-proxy
// specialization the paper notes would do even better ("better results are
// attainable if the dissemination strategy takes advantage of the
// geographic locality of reference", §2.4), and models the dynamic
// shielding of §2.3, where an overloaded proxy sheds load back to the
// server.
package dissemination

import (
	"fmt"
	"sort"
	"strconv"

	"specweb/internal/clienttree"
	"specweb/internal/netsim"
	"specweb/internal/obs"
	"specweb/internal/popularity"
	"specweb/internal/synth"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// Config parameterizes a dissemination sweep.
type Config struct {
	Site *webgraph.Site
	Topo *netsim.Topology

	// Order ranks documents for the "most popular" replica set.
	Order popularity.Order
	// Fraction of the accessed bytes to disseminate (Figure 3 uses 0.10
	// and 0.04).
	Fraction float64
	// ProxyCounts lists the proxy-set sizes to sweep (Figure 3's x axis).
	ProxyCounts []int

	// IncludePushCost charges the dissemination traffic (root → proxy,
	// once at setup plus once per update of a replicated document).
	IncludePushCost bool
	// Updates is the document-update log used for re-push accounting.
	Updates []synth.Update
	// HierarchicalPush routes dissemination traffic through the proxy
	// hierarchy: a proxy pulls from its nearest ancestor proxy rather
	// than from the home server — §2.3's "the process of disseminating
	// popular information continues for another level, and so on". Only
	// affects push-cost accounting (and only documents the ancestor also
	// holds).
	HierarchicalPush bool

	// Specialized gives each proxy its own replica set, chosen from the
	// access patterns of the clients in its subtree (same byte budget per
	// proxy as the uniform set).
	Specialized bool

	// ProxyCapacity, when positive, is the maximum bytes per proxy the
	// proxy is willing to serve over the trace; savings above it are shed
	// back to the server (§2.3's dynamic shielding).
	ProxyCapacity int64
}

// Point is one x position of Figure 3.
type Point struct {
	Proxies int
	// ReplicaBytes is the per-proxy replica size; TotalStorage the summed
	// storage over all proxies (the paper labels its curves with this).
	ReplicaBytes int64
	TotalStorage int64

	BaselineByteHops int64
	ServiceByteHops  int64
	PushByteHops     int64
	// ReductionPct is the percentage reduction in bytes×hops, net of push
	// cost when configured.
	ReductionPct float64

	// Load balance (§2's "balances load amongst servers" claim and §2.3's
	// bottleneck discussion): bytes served by the home server with and
	// without dissemination, and the busiest proxy's share. Shed load
	// (ProxyCapacity) returns to the home server.
	RootBytesBaseline int64
	RootBytes         int64
	MaxProxyBytes     int64

	// AlphaC is the measured intercepted-request fraction: the share of
	// trace requests some proxy served instead of the home server (the
	// live counterpart of eq. 1's α).
	AlphaC float64
	// PerProxy breaks the interception down by placed proxy, sorted by
	// node ID.
	PerProxy []ProxyLoad
}

// ProxyLoad is one proxy's share of a sweep point.
type ProxyLoad struct {
	Node netsim.NodeID
	// Requests is how many trace requests the proxy served; AlphaC is
	// that count as a fraction of all trace requests.
	Requests int64
	AlphaC   float64
	// Bytes is the load served; SavedByteHops the bytes×hops the proxy
	// kept off the paths above it.
	Bytes         int64
	SavedByteHops int64
}

// Simulate runs the sweep over cfg.ProxyCounts and returns one Point per
// count, in order.
func Simulate(tr *trace.Trace, cfg Config) ([]Point, error) {
	if cfg.Site == nil || cfg.Topo == nil {
		return nil, fmt.Errorf("dissemination: nil site or topology")
	}
	if cfg.Fraction <= 0 || cfg.Fraction > 1 {
		return nil, fmt.Errorf("dissemination: fraction %v outside (0,1]", cfg.Fraction)
	}
	if len(cfg.ProxyCounts) == 0 {
		return nil, fmt.Errorf("dissemination: no proxy counts")
	}
	for _, k := range cfg.ProxyCounts {
		if k < 0 {
			return nil, fmt.Errorf("dissemination: negative proxy count %d", k)
		}
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("dissemination: empty trace")
	}

	an := popularity.Analyze(tr, cfg.Site)
	replicaList := an.TopFraction(cfg.Fraction, cfg.Order)
	replicas := make(map[webgraph.DocID]bool, len(replicaList))
	var replicaBytes int64
	for _, id := range replicaList {
		replicas[id] = true
		replicaBytes += cfg.Site.Doc(id).Size
	}

	demand, err := clienttree.BuildDemand(tr, cfg.Topo, replicas)
	if err != nil {
		return nil, err
	}
	baseline := demand.BaselineByteHops()

	// Budget per proxy for specialized replica sets: same as the uniform
	// replica footprint, so curves are comparable at equal storage.
	var updatesByDoc map[webgraph.DocID]int
	if cfg.IncludePushCost {
		updatesByDoc = make(map[webgraph.DocID]int)
		for _, u := range cfg.Updates {
			updatesByDoc[u.Doc]++
		}
	}

	totalBytes := tr.TotalBytes()
	var points []Point
	for _, k := range cfg.ProxyCounts {
		proxies := demand.GreedyPlace(k)
		holdings := buildHoldings(tr, cfg, an, proxies, replicas, replicaBytes)
		service, perProxy := replay(tr, cfg.Topo, proxies, holdings)

		// Dynamic shielding: an overloaded proxy serves only a fraction
		// of the demand aimed at it; the shed fraction reverts to root
		// cost, i.e. its savings are scaled by cap/load and the shed
		// bytes return to the home server.
		var shedBytes int64
		if cfg.ProxyCapacity > 0 {
			for _, st := range perProxy {
				if st.bytes > cfg.ProxyCapacity {
					keep := float64(cfg.ProxyCapacity) / float64(st.bytes)
					service += int64(float64(st.savedByteHops) * (1 - keep))
					over := st.bytes - cfg.ProxyCapacity
					st.bytes = cfg.ProxyCapacity
					shedBytes += over
				}
			}
		}

		var proxyBytes, maxProxyBytes int64
		for _, st := range perProxy {
			proxyBytes += st.bytes
			if st.bytes > maxProxyBytes {
				maxProxyBytes = st.bytes
			}
		}
		rootBytes := totalBytes - proxyBytes

		totalReqs := int64(tr.Len())
		var intercepted int64
		perLoads := make([]ProxyLoad, 0, len(proxies))
		for _, p := range proxies {
			st := perProxy[p]
			intercepted += st.requests
			perLoads = append(perLoads, ProxyLoad{
				Node:          p,
				Requests:      st.requests,
				AlphaC:        float64(st.requests) / float64(totalReqs),
				Bytes:         st.bytes,
				SavedByteHops: st.savedByteHops,
			})
		}
		sort.Slice(perLoads, func(i, j int) bool { return perLoads[i].Node < perLoads[j].Node })
		alphaC := float64(intercepted) / float64(totalReqs)

		var push int64
		if cfg.IncludePushCost {
			chosen := make(map[netsim.NodeID]bool, len(proxies))
			for _, p := range proxies {
				chosen[p] = true
			}
			for _, p := range proxies {
				depth := int64(cfg.Topo.Node(p).Depth)
				// With hierarchical dissemination a document travels
				// only from the nearest ancestor proxy that also holds
				// it; otherwise (or when no ancestor holds it) from the
				// home server at the root.
				var hopsFor func(id webgraph.DocID) int64
				if cfg.HierarchicalPush {
					path := cfg.Topo.PathToRoot(p)
					hopsFor = func(id webgraph.DocID) int64 {
						for i := 1; i < len(path)-1; i++ {
							if chosen[path[i]] && holdings.has(path[i], id) {
								return int64(i)
							}
						}
						return depth
					}
				} else {
					hopsFor = func(webgraph.DocID) int64 { return depth }
				}
				for id := range holdings.at(p) {
					size := cfg.Site.Doc(id).Size
					push += size * hopsFor(id) * int64(1+updatesByDoc[id])
				}
			}
		}

		var totalStorage int64
		for _, p := range proxies {
			for id := range holdings.at(p) {
				totalStorage += cfg.Site.Doc(id).Size
			}
		}

		red := 0.0
		if baseline > 0 {
			red = 100 * float64(baseline-service-push) / float64(baseline)
		}

		// Publish the sweep point, labeled by proxy count so a sweep
		// leaves one series per x position (a handful per run).
		k := obs.Labels{"proxies": strconv.Itoa(len(proxies))}
		obs.Default.Gauge("specweb_dissemination_alpha",
			"Intercepted-request fraction α_C at the last sweep point.", k).Set(alphaC)
		obs.Default.Gauge("specweb_dissemination_reduction_pct",
			"Net bytes×hops reduction percentage at the last sweep point.", k).Set(red)
		obs.Default.Counter("specweb_dissemination_saved_byte_hops_total",
			"Cumulative bytes×hops kept off the network by dissemination, net of push cost.", nil).
			Add(baseline - service - push)

		points = append(points, Point{
			Proxies:           len(proxies),
			ReplicaBytes:      replicaBytes,
			TotalStorage:      totalStorage,
			BaselineByteHops:  baseline,
			ServiceByteHops:   service,
			PushByteHops:      push,
			ReductionPct:      red,
			RootBytesBaseline: totalBytes,
			RootBytes:         rootBytes,
			MaxProxyBytes:     maxProxyBytes,
			AlphaC:            alphaC,
			PerProxy:          perLoads,
		})
	}
	return points, nil
}

// holdings answers "which documents does proxy p hold".
type holdings struct {
	uniform map[webgraph.DocID]bool
	perNode map[netsim.NodeID]map[webgraph.DocID]bool
}

func (h holdings) at(p netsim.NodeID) map[webgraph.DocID]bool {
	if h.perNode != nil {
		return h.perNode[p]
	}
	return h.uniform
}

func (h holdings) has(p netsim.NodeID, d webgraph.DocID) bool {
	return h.at(p)[d]
}

func buildHoldings(tr *trace.Trace, cfg Config, an *popularity.Analysis,
	proxies []netsim.NodeID, uniform map[webgraph.DocID]bool, budget int64) holdings {

	if !cfg.Specialized {
		return holdings{uniform: uniform}
	}
	// Per-proxy popularity: requests by clients in the proxy's subtree.
	inSubtree := make(map[netsim.NodeID]map[trace.ClientID]bool, len(proxies))
	for _, p := range proxies {
		set := make(map[trace.ClientID]bool)
		for _, c := range cfg.Topo.SubtreeClients(p) {
			set[c] = true
		}
		inSubtree[p] = set
	}
	counts := make(map[netsim.NodeID]map[webgraph.DocID]int64, len(proxies))
	for _, p := range proxies {
		counts[p] = make(map[webgraph.DocID]int64)
	}
	for i := range tr.Requests {
		r := &tr.Requests[i]
		for _, p := range proxies {
			if inSubtree[p][r.Client] {
				counts[p][r.Doc]++
			}
		}
	}
	per := make(map[netsim.NodeID]map[webgraph.DocID]bool, len(proxies))
	for _, p := range proxies {
		type dc struct {
			id    webgraph.DocID
			n     int64
			size  int64
			value int64 // n × size: bytes this doc would absorb at the proxy
		}
		var list []dc
		for id, n := range counts[p] {
			size := cfg.Site.Doc(id).Size
			list = append(list, dc{id: id, n: n, size: size, value: n * size})
		}
		pack := func(less func(a, b dc) bool) (map[webgraph.DocID]bool, int64) {
			l := append([]dc(nil), list...)
			sort.Slice(l, func(i, j int) bool { return less(l[i], l[j]) })
			set := make(map[webgraph.DocID]bool)
			var used, value int64
			for _, d := range l {
				if used+d.size > budget {
					continue
				}
				used += d.size
				value += d.value
				set[d.id] = true
			}
			return set, value
		}
		// Two greedy pack orders — by density (request count; the
		// fractional-knapsack ordering) and by absolute value — plus the
		// uniform replica set as a floor. Document granularity makes
		// either single greedy a poor 0/1 pack when documents are large
		// relative to the budget; taking the best of the three keeps
		// specialization from ever losing to uniform replication, which
		// is the behaviour §2.4's remark promises.
		byDensity, vDensity := pack(func(a, b dc) bool {
			if a.n != b.n {
				return a.n > b.n
			}
			return a.id < b.id
		})
		byValue, vValue := pack(func(a, b dc) bool {
			if a.value != b.value {
				return a.value > b.value
			}
			return a.id < b.id
		})
		var vUniform int64
		for id := range uniform {
			if counts[p][id] > 0 {
				vUniform += counts[p][id] * cfg.Site.Doc(id).Size
			}
		}
		best, vBest := byDensity, vDensity
		if vValue > vBest {
			best, vBest = byValue, vValue
		}
		if vUniform > vBest {
			best = uniform
		}
		per[p] = best
	}
	_ = an
	return holdings{perNode: per}
}

type proxyStats struct {
	requests      int64
	bytes         int64
	savedByteHops int64
}

// replay walks the trace once, serving each request at the deepest proxy on
// the client's path that holds the document, and returns the total service
// bytes×hops plus per-proxy load statistics.
func replay(tr *trace.Trace, topo *netsim.Topology, proxies []netsim.NodeID,
	h holdings) (int64, map[netsim.NodeID]*proxyStats) {

	chosen := make(map[netsim.NodeID]bool, len(proxies))
	for _, p := range proxies {
		chosen[p] = true
	}
	per := make(map[netsim.NodeID]*proxyStats, len(proxies))
	for _, p := range proxies {
		per[p] = &proxyStats{}
	}
	var total int64
	for i := range tr.Requests {
		r := &tr.Requests[i]
		leaf, ok := topo.ClientNode(r.Client)
		if !ok {
			continue
		}
		depth := topo.Node(leaf).Depth
		hops := depth
		var servedAt netsim.NodeID = netsim.NoNode
		steps := 0
		for _, n := range topo.PathToRoot(leaf) {
			if n != leaf && chosen[n] && h.has(n, r.Doc) {
				hops = steps
				servedAt = n
				break
			}
			steps++
		}
		total += r.Size * int64(hops)
		if servedAt != netsim.NoNode {
			st := per[servedAt]
			st.requests++
			st.bytes += r.Size
			st.savedByteHops += r.Size * int64(depth-hops)
		}
	}
	return total, per
}
