package dissemination

import (
	"testing"

	"specweb/internal/netsim"
	"specweb/internal/popularity"
	"specweb/internal/stats"
	"specweb/internal/synth"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

type fixture struct {
	site *webgraph.Site
	topo *netsim.Topology
	tr   *trace.Trace
	upd  []synth.Update
}

func setup(t *testing.T, days int, rate float64) fixture {
	t.Helper()
	site, err := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := netsim.Generate(netsim.TinyConfig(), stats.NewRNG(12))
	if err != nil {
		t.Fatal(err)
	}
	cfg := synth.DefaultConfig(site, topo)
	cfg.Days = days
	cfg.SessionsPerDay = rate
	res, err := synth.Generate(cfg, stats.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	return fixture{site: site, topo: topo, tr: res.Trace, upd: res.Updates}
}

func baseConfig(f fixture) Config {
	return Config{
		Site:        f.site,
		Topo:        f.topo,
		Order:       popularity.ByRequests,
		Fraction:    0.10,
		ProxyCounts: []int{0, 1, 2, 4, 8},
	}
}

func TestSimulateMonotoneInProxies(t *testing.T) {
	f := setup(t, 10, 60)
	pts, err := Simulate(f.tr, baseConfig(f))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].Proxies != 0 || pts[0].ReductionPct != 0 {
		t.Errorf("zero proxies should save nothing: %+v", pts[0])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].ReductionPct < pts[i-1].ReductionPct-1e-9 {
			t.Errorf("reduction decreased: %v then %v", pts[i-1].ReductionPct, pts[i].ReductionPct)
		}
	}
	last := pts[len(pts)-1]
	if last.ReductionPct <= 5 {
		t.Errorf("8 proxies reduce traffic by only %.1f%%; expect substantial savings", last.ReductionPct)
	}
	if last.ReductionPct >= 100 {
		t.Errorf("reduction %.1f%% impossible", last.ReductionPct)
	}
}

func TestSimulateConcaveGains(t *testing.T) {
	// Figure 3's curves flatten: the marginal gain of proxy k+1 is at most
	// that of proxy 1 (submodularity of greedy placement).
	f := setup(t, 10, 60)
	cfg := baseConfig(f)
	cfg.ProxyCounts = []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	pts, err := Simulate(f.tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	firstGain := pts[1].ReductionPct - pts[0].ReductionPct
	for i := 2; i < len(pts); i++ {
		gain := pts[i].ReductionPct - pts[i-1].ReductionPct
		if gain > firstGain+1e-9 {
			t.Errorf("marginal gain grew at k=%d: %v > %v", i, gain, firstGain)
		}
	}
}

func TestFractionOrdering(t *testing.T) {
	// Disseminating 10% of bytes must save at least as much as 4%.
	f := setup(t, 10, 60)
	cfg := baseConfig(f)
	cfg.ProxyCounts = []int{4}
	p10, err := Simulate(f.tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fraction = 0.04
	p4, err := Simulate(f.tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p10[0].ReductionPct < p4[0].ReductionPct-1e-9 {
		t.Errorf("10%% dissemination (%.1f%%) worse than 4%% (%.1f%%)",
			p10[0].ReductionPct, p4[0].ReductionPct)
	}
	if p10[0].ReplicaBytes <= p4[0].ReplicaBytes {
		t.Errorf("replica bytes should grow with fraction: %d vs %d",
			p10[0].ReplicaBytes, p4[0].ReplicaBytes)
	}
}

func TestPushCostReducesNetSavings(t *testing.T) {
	f := setup(t, 10, 60)
	cfg := baseConfig(f)
	cfg.ProxyCounts = []int{4}
	free, err := Simulate(f.tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.IncludePushCost = true
	cfg.Updates = f.upd
	paid, err := Simulate(f.tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if paid[0].PushByteHops <= 0 {
		t.Error("push cost not charged")
	}
	if paid[0].ReductionPct >= free[0].ReductionPct {
		t.Errorf("push cost should reduce net savings: %.2f vs %.2f",
			paid[0].ReductionPct, free[0].ReductionPct)
	}
	// Popularity is stable and updates rare, so push cost must not erase
	// the benefit.
	if paid[0].ReductionPct <= 0 {
		t.Errorf("net savings went negative: %.2f", paid[0].ReductionPct)
	}
}

func TestSpecializedAtLeastUniform(t *testing.T) {
	f := setup(t, 15, 80)
	cfg := baseConfig(f)
	cfg.ProxyCounts = []int{4}
	uni, err := Simulate(f.tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Specialized = true
	spec, err := Simulate(f.tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// §2.4: per-proxy specialization should not lose to uniform replicas
	// at equal per-proxy storage (allow a small tolerance for greedy
	// packing granularity).
	if spec[0].ReductionPct < uni[0].ReductionPct-2.0 {
		t.Errorf("specialized %.2f%% clearly worse than uniform %.2f%%",
			spec[0].ReductionPct, uni[0].ReductionPct)
	}
	if spec[0].TotalStorage > 4*uni[0].ReplicaBytes {
		t.Errorf("specialized storage %d exceeds budget %d", spec[0].TotalStorage, 4*uni[0].ReplicaBytes)
	}
}

func TestDynamicShielding(t *testing.T) {
	f := setup(t, 10, 60)
	cfg := baseConfig(f)
	cfg.ProxyCounts = []int{4}
	open, err := Simulate(f.tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ProxyCapacity = 1 // essentially everything shed
	shielded, err := Simulate(f.tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if shielded[0].ReductionPct >= open[0].ReductionPct {
		t.Errorf("tight capacity should shed savings: %.2f vs %.2f",
			shielded[0].ReductionPct, open[0].ReductionPct)
	}
	if shielded[0].ReductionPct < 0 {
		t.Errorf("shedding cannot make things worse than baseline: %.2f", shielded[0].ReductionPct)
	}
}

func TestSimulateErrors(t *testing.T) {
	f := setup(t, 2, 10)
	cfg := baseConfig(f)
	cfg.Site = nil
	if _, err := Simulate(f.tr, cfg); err == nil {
		t.Error("nil site accepted")
	}
	cfg = baseConfig(f)
	cfg.Fraction = 0
	if _, err := Simulate(f.tr, cfg); err == nil {
		t.Error("zero fraction accepted")
	}
	cfg = baseConfig(f)
	cfg.Fraction = 1.5
	if _, err := Simulate(f.tr, cfg); err == nil {
		t.Error("fraction > 1 accepted")
	}
	cfg = baseConfig(f)
	cfg.ProxyCounts = nil
	if _, err := Simulate(f.tr, cfg); err == nil {
		t.Error("no proxy counts accepted")
	}
	cfg = baseConfig(f)
	cfg.ProxyCounts = []int{-1}
	if _, err := Simulate(f.tr, cfg); err == nil {
		t.Error("negative count accepted")
	}
	cfg = baseConfig(f)
	if _, err := Simulate(&trace.Trace{}, cfg); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestStorageLabel(t *testing.T) {
	// Figure 3 labels curves with total storage over all proxies; uniform
	// replication must report replicaBytes × proxies.
	f := setup(t, 5, 40)
	cfg := baseConfig(f)
	cfg.ProxyCounts = []int{3}
	pts, err := Simulate(f.tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].TotalStorage != int64(pts[0].Proxies)*pts[0].ReplicaBytes {
		t.Errorf("total storage %d != proxies %d × replica %d",
			pts[0].TotalStorage, pts[0].Proxies, pts[0].ReplicaBytes)
	}
}

func TestLoadBalanceAccounting(t *testing.T) {
	f := setup(t, 10, 60)
	cfg := baseConfig(f)
	cfg.ProxyCounts = []int{0, 2, 8}
	pts, err := Simulate(f.tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No proxies: the home server serves everything.
	if pts[0].RootBytes != pts[0].RootBytesBaseline {
		t.Errorf("0 proxies: root %d != baseline %d", pts[0].RootBytes, pts[0].RootBytesBaseline)
	}
	if pts[0].MaxProxyBytes != 0 {
		t.Errorf("0 proxies: max proxy bytes %d", pts[0].MaxProxyBytes)
	}
	// More proxies shed more load off the home server (§2's load
	// balancing).
	if pts[1].RootBytes <= pts[2].RootBytes {
		t.Errorf("root load should fall with proxies: %d then %d", pts[1].RootBytes, pts[2].RootBytes)
	}
	if pts[2].RootBytes >= pts[0].RootBytesBaseline {
		t.Error("dissemination did not reduce root load")
	}
	// Conservation: root + proxies serve every byte.
	if pts[1].MaxProxyBytes <= 0 {
		t.Error("proxies served nothing")
	}
}

func TestShieldingBoundsProxyLoad(t *testing.T) {
	f := setup(t, 10, 60)
	cfg := baseConfig(f)
	cfg.ProxyCounts = []int{4}
	open, err := Simulate(f.tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	capAt := open[0].MaxProxyBytes / 2
	if capAt == 0 {
		t.Skip("no proxy load to cap")
	}
	cfg.ProxyCapacity = capAt
	shielded, err := Simulate(f.tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if shielded[0].MaxProxyBytes > capAt {
		t.Errorf("shielded max proxy load %d exceeds capacity %d", shielded[0].MaxProxyBytes, capAt)
	}
	// The shed load lands back on the home server.
	if shielded[0].RootBytes <= open[0].RootBytes {
		t.Errorf("shed load should return to root: %d vs %d", shielded[0].RootBytes, open[0].RootBytes)
	}
}

func TestHierarchicalPushCheaper(t *testing.T) {
	f := setup(t, 10, 60)
	cfg := baseConfig(f)
	cfg.ProxyCounts = []int{8}
	cfg.IncludePushCost = true
	cfg.Updates = f.upd
	flat, err := Simulate(f.tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.HierarchicalPush = true
	hier, err := Simulate(f.tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With uniform replicas every ancestor proxy holds everything, so any
	// nested placement strictly reduces push traffic; non-nested
	// placements leave it equal.
	if hier[0].PushByteHops > flat[0].PushByteHops {
		t.Errorf("hierarchical push cost %d > flat %d", hier[0].PushByteHops, flat[0].PushByteHops)
	}
	if hier[0].ReductionPct < flat[0].ReductionPct-1e-9 {
		t.Errorf("hierarchical net savings %.2f%% < flat %.2f%%",
			hier[0].ReductionPct, flat[0].ReductionPct)
	}
	// Service-side accounting is untouched.
	if hier[0].ServiceByteHops != flat[0].ServiceByteHops {
		t.Error("hierarchical push changed service accounting")
	}
}
