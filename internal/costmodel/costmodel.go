// Package costmodel holds the cost model and the four evaluation metrics of
// §3.2. The paper assumes a symmetric network where communicating one byte
// costs CommCost and servicing one request costs ServCost (baseline: 1 and
// 10,000 units), and reports speculative-vs-non-speculative performance as
// four ratios: bandwidth, server load, service time, and byte miss rate.
package costmodel

import (
	"fmt"
	"math"
)

// Costs is the symmetric network cost model.
type Costs struct {
	// CommCost is the cost of communicating one byte.
	CommCost float64
	// ServCost is the cost of servicing one request at the server.
	ServCost float64
}

// Default returns the paper's baseline costs (CommCost 1, ServCost 10,000).
func Default() Costs {
	return Costs{CommCost: 1, ServCost: 10000}
}

// Validate reports whether the costs are usable.
func (c Costs) Validate() error {
	if c.CommCost < 0 || math.IsNaN(c.CommCost) {
		return fmt.Errorf("costmodel: invalid CommCost %v", c.CommCost)
	}
	if c.ServCost < 0 || math.IsNaN(c.ServCost) {
		return fmt.Errorf("costmodel: invalid ServCost %v", c.ServCost)
	}
	return nil
}

// RequestLatency is the retrieval latency of one client-initiated request
// that misses the cache and transfers the given number of bytes: the
// per-request service overhead plus the transfer cost of the bytes the
// client must wait for.
func (c Costs) RequestLatency(bytes int64) float64 {
	return c.ServCost + c.CommCost*float64(bytes)
}

// Tally accumulates one simulation arm's raw totals.
type Tally struct {
	// BytesSent is every byte the server transmitted (documents plus
	// speculative pushes).
	BytesSent int64
	// Requests is the number of requests the server serviced.
	Requests int64
	// Latency is the summed retrieval latency over client-initiated
	// requests (cache hits contribute zero).
	Latency float64
	// MissBytes is the bytes of client-initiated requests not found in
	// the client's cache; AccessedBytes the bytes of all client-initiated
	// requests.
	MissBytes     int64
	AccessedBytes int64
}

// Add folds another tally into this one.
func (t *Tally) Add(o Tally) {
	t.BytesSent += o.BytesSent
	t.Requests += o.Requests
	t.Latency += o.Latency
	t.MissBytes += o.MissBytes
	t.AccessedBytes += o.AccessedBytes
}

// MissRate returns the byte miss rate: bytes not found in cache over bytes
// accessed.
func (t *Tally) MissRate() float64 {
	if t.AccessedBytes == 0 {
		return 0
	}
	return float64(t.MissBytes) / float64(t.AccessedBytes)
}

// Ratios are the paper's four metrics: each is the speculative arm's total
// over the non-speculative arm's. Values below 1 are improvements except
// for Bandwidth, where speculation pays extra traffic (values above 1).
type Ratios struct {
	Bandwidth   float64
	ServerLoad  float64
	ServiceTime float64
	MissRate    float64
}

// Compare computes the four ratios of spec against base. A zero denominator
// yields a ratio of 1 (no information).
func Compare(spec, base Tally) Ratios {
	div := func(a, b float64) float64 {
		if b == 0 {
			return 1
		}
		return a / b
	}
	return Ratios{
		Bandwidth:   div(float64(spec.BytesSent), float64(base.BytesSent)),
		ServerLoad:  div(float64(spec.Requests), float64(base.Requests)),
		ServiceTime: div(spec.Latency, base.Latency),
		MissRate:    div(spec.MissRate(), base.MissRate()),
	}
}

// TrafficIncreasePct returns the extra traffic speculation used, in percent
// (the x axis of Figure 6).
func (r Ratios) TrafficIncreasePct() float64 { return (r.Bandwidth - 1) * 100 }

// ServerLoadReductionPct returns the server-load reduction in percent.
func (r Ratios) ServerLoadReductionPct() float64 { return (1 - r.ServerLoad) * 100 }

// ServiceTimeReductionPct returns the service-time reduction in percent.
func (r Ratios) ServiceTimeReductionPct() float64 { return (1 - r.ServiceTime) * 100 }

// MissRateReductionPct returns the client miss-rate reduction in percent.
func (r Ratios) MissRateReductionPct() float64 { return (1 - r.MissRate) * 100 }

// String renders the ratios the way the paper quotes them: signed percent
// changes relative to the non-speculative arm (so "load -30.0%" is a 30%
// reduction and "load +5.7%" a regression).
func (r Ratios) String() string {
	return fmt.Sprintf("traffic %+.1f%%, load %+.1f%%, time %+.1f%%, miss %+.1f%%",
		r.TrafficIncreasePct(), -r.ServerLoadReductionPct(),
		-r.ServiceTimeReductionPct(), -r.MissRateReductionPct())
}
