package costmodel_test

import (
	"fmt"

	"specweb/internal/costmodel"
)

func ExampleCompare() {
	base := costmodel.Tally{BytesSent: 1000, Requests: 100, Latency: 2000, MissBytes: 800, AccessedBytes: 1000}
	spec := costmodel.Tally{BytesSent: 1050, Requests: 70, Latency: 1540, MissBytes: 656, AccessedBytes: 1000}
	fmt.Println(costmodel.Compare(spec, base))
	// Output:
	// traffic +5.0%, load -30.0%, time -23.0%, miss -18.0%
}
