package costmodel

import (
	"math"
	"strings"
	"testing"
)

func TestDefaultMatchesPaper(t *testing.T) {
	c := Default()
	if c.CommCost != 1 || c.ServCost != 10000 {
		t.Errorf("defaults = %+v, want the paper's 1 and 10000", c)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	if err := (Costs{CommCost: -1, ServCost: 1}).Validate(); err == nil {
		t.Error("negative CommCost accepted")
	}
	if err := (Costs{CommCost: 1, ServCost: math.NaN()}).Validate(); err == nil {
		t.Error("NaN ServCost accepted")
	}
}

func TestRequestLatency(t *testing.T) {
	c := Default()
	if got := c.RequestLatency(5000); got != 15000 {
		t.Errorf("latency = %v, want 15000", got)
	}
	if got := c.RequestLatency(0); got != 10000 {
		t.Errorf("latency(0) = %v, want ServCost", got)
	}
}

func TestTallyAddAndMissRate(t *testing.T) {
	a := Tally{BytesSent: 100, Requests: 2, Latency: 5, MissBytes: 50, AccessedBytes: 100}
	b := Tally{BytesSent: 50, Requests: 1, Latency: 3, MissBytes: 10, AccessedBytes: 100}
	a.Add(b)
	if a.BytesSent != 150 || a.Requests != 3 || a.Latency != 8 ||
		a.MissBytes != 60 || a.AccessedBytes != 200 {
		t.Errorf("added tally = %+v", a)
	}
	if got := a.MissRate(); got != 0.3 {
		t.Errorf("miss rate = %v, want 0.3", got)
	}
	var zero Tally
	if zero.MissRate() != 0 {
		t.Error("empty tally miss rate should be 0")
	}
}

func TestCompare(t *testing.T) {
	base := Tally{BytesSent: 1000, Requests: 100, Latency: 2000, MissBytes: 800, AccessedBytes: 1000}
	spec := Tally{BytesSent: 1100, Requests: 70, Latency: 1500, MissBytes: 600, AccessedBytes: 1000}
	r := Compare(spec, base)
	if math.Abs(r.Bandwidth-1.1) > 1e-12 {
		t.Errorf("bandwidth ratio = %v", r.Bandwidth)
	}
	if math.Abs(r.ServerLoad-0.7) > 1e-12 {
		t.Errorf("server load ratio = %v", r.ServerLoad)
	}
	if math.Abs(r.ServiceTime-0.75) > 1e-12 {
		t.Errorf("service time ratio = %v", r.ServiceTime)
	}
	if math.Abs(r.MissRate-0.75) > 1e-12 {
		t.Errorf("miss rate ratio = %v", r.MissRate)
	}
	if math.Abs(r.TrafficIncreasePct()-10) > 1e-9 ||
		math.Abs(r.ServerLoadReductionPct()-30) > 1e-9 ||
		math.Abs(r.ServiceTimeReductionPct()-25) > 1e-9 ||
		math.Abs(r.MissRateReductionPct()-25) > 1e-9 {
		t.Errorf("percent views wrong: %+v", r)
	}
}

func TestCompareZeroDenominators(t *testing.T) {
	r := Compare(Tally{}, Tally{})
	if r.Bandwidth != 1 || r.ServerLoad != 1 || r.ServiceTime != 1 || r.MissRate != 1 {
		t.Errorf("zero-denominator ratios should be 1: %+v", r)
	}
}

func TestRatiosString(t *testing.T) {
	r := Ratios{Bandwidth: 1.05, ServerLoad: 0.70, ServiceTime: 0.77, MissRate: 0.82}
	s := r.String()
	for _, want := range []string{"+5.0%", "-30.0%", "-23.0%", "-18.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
