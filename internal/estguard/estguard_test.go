package estguard

import (
	"testing"
	"time"

	"specweb/internal/markov"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

var t0 = time.Date(1995, time.January, 1, 0, 0, 0, 0, time.UTC)

// window appends n requests for client c starting at start: document IDs
// from docs (cycled), consecutive requests separated by gap(i) seconds.
func window(tr *trace.Trace, c trace.ClientID, start time.Time, n int,
	docs []webgraph.DocID, gap func(i int) float64) {
	at := start
	for i := 0; i < n; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Time:   at,
			Client: c,
			Doc:    docs[i%len(docs)],
			Status: 200,
		})
		at = at.Add(time.Duration(gap(i) * float64(time.Second)))
	}
}

func seqDocs(n int) []webgraph.DocID {
	out := make([]webgraph.DocID, n)
	for i := range out {
		out[i] = webgraph.DocID(i)
	}
	return out
}

// humanGaps look like think times: a heavy-tailed mix, CV well above any
// metronome threshold.
func humanGaps(i int) float64 {
	switch i % 5 {
	case 0:
		return 0.3
	case 1:
		return 2.1
	case 2:
		return 45
	case 3:
		return 0.7
	default:
		return 130
	}
}

func TestClassification(t *testing.T) {
	g := New(Config{Seed: 1})
	flush := &trace.Trace{}
	// Crawler: every document distinct, metronomic 0.5 s gaps.
	window(flush, "crawler.bot", t0, 40, seqDocs(40), func(int) float64 { return 0.5 })
	// Scanner: one pass over a large doc range, 1 s gaps.
	window(flush, "scan.probe", t0, 200, seqDocs(200), func(int) float64 { return 1.0 })
	// Bot: three docs on a fixed 2 s interval — timing alone convicts.
	window(flush, "poll.bot", t0, 30, seqDocs(3), func(int) float64 { return 2.0 })
	// Human: varied think times.
	window(flush, "alice", t0, 30, seqDocs(12), humanGaps)
	// Sparse client: below the evidence floor, never quarantined even
	// with robotic timing.
	window(flush, "newbie", t0, 10, seqDocs(10), func(int) float64 { return 0.5 })
	flush.SortByTime()

	clean, quar := g.Partition(flush)

	want := map[trace.ClientID]string{
		"crawler.bot": ReasonCrawler,
		"scan.probe":  ReasonScanner,
		"poll.bot":    ReasonBot,
		"alice":       "",
		"newbie":      "",
	}
	for c, reason := range want {
		st, got := g.Status(c)
		if reason == "" {
			if st != Human {
				t.Errorf("%s: status %v, want human", c, st)
			}
		} else if st != Quarantined || got != reason {
			t.Errorf("%s: status %v reason %q, want quarantined %q", c, st, got, reason)
		}
	}
	if clean.Len()+quar.Len() != flush.Len() {
		t.Errorf("partition lost requests: %d + %d != %d", clean.Len(), quar.Len(), flush.Len())
	}
	if quar.Len() != 40+200+30 {
		t.Errorf("quarantined %d requests, want %d", quar.Len(), 40+200+30)
	}
	for _, part := range []*trace.Trace{clean, quar} {
		for i := 1; i < part.Len(); i++ {
			if part.Requests[i].Time.Before(part.Requests[i-1].Time) {
				t.Fatal("partition broke chronological order")
			}
		}
	}
	s := g.StatsSnapshot()
	if s.QuarantinedClients != 3 || s.Demotions != 3 {
		t.Errorf("stats = %+v, want 3 quarantined / 3 demotions", s)
	}
	if s.Reasons[ReasonCrawler] != 40 || s.Reasons[ReasonScanner] != 200 || s.Reasons[ReasonBot] != 30 {
		t.Errorf("reason drops = %v", s.Reasons)
	}
}

func TestPromotionAfterCleanWindows(t *testing.T) {
	g := New(Config{Seed: 1, PromoteAfter: 2})
	day := 24 * time.Hour

	flush := &trace.Trace{}
	window(flush, "c", t0, 40, seqDocs(40), func(int) float64 { return 0.5 })
	g.Partition(flush)
	if st, _ := g.Status("c"); st != Quarantined {
		t.Fatal("client not quarantined after crawler window")
	}

	for i := 1; i <= 2; i++ {
		flush = &trace.Trace{}
		window(flush, "c", t0.Add(time.Duration(i)*day), 30, seqDocs(12), humanGaps)
		g.Partition(flush)
		st, _ := g.Status("c")
		if i < 2 && st != Quarantined {
			t.Fatalf("promoted after %d clean window(s), want %d", i, 2)
		}
		if i == 2 && st != Human {
			t.Fatal("not promoted after PromoteAfter clean windows")
		}
	}
	s := g.StatsSnapshot()
	if s.Promotions != 1 || s.QuarantinedClients != 0 {
		t.Errorf("stats = %+v, want 1 promotion, 0 quarantined", s)
	}
}

// TestPartitionDeterminism feeds the identical flush to two guards and
// requires identical decisions — and that requests during the quarantined
// window route by the post-classification status, independent of the
// client's position in the flush.
func TestPartitionDeterminism(t *testing.T) {
	build := func() (*Guard, *trace.Trace) {
		flush := &trace.Trace{}
		window(flush, "crawler.bot", t0, 40, seqDocs(40), func(int) float64 { return 0.5 })
		window(flush, "alice", t0.Add(17*time.Millisecond), 30, seqDocs(12), humanGaps)
		window(flush, "bob", t0.Add(41*time.Millisecond), 30, seqDocs(9), humanGaps)
		flush.SortByTime()
		return New(Config{Seed: 42}), flush
	}
	g1, f1 := build()
	g2, f2 := build()
	c1, q1 := g1.Partition(f1)
	c2, q2 := g2.Partition(f2)
	if c1.Len() != c2.Len() || q1.Len() != q2.Len() {
		t.Fatalf("partitions diverged: (%d,%d) vs (%d,%d)", c1.Len(), q1.Len(), c2.Len(), q2.Len())
	}
	for i := range q1.Requests {
		if q1.Requests[i] != q2.Requests[i] {
			t.Fatalf("quarantined[%d] differs", i)
		}
	}
	if s1, s2 := g1.StatsSnapshot(), g2.StatsSnapshot(); s1.QuarantinedRequests != s2.QuarantinedRequests {
		t.Errorf("stats diverged: %+v vs %+v", s1, s2)
	}
}

func TestDriftScore(t *testing.T) {
	g := New(Config{Seed: 1})

	flush := &trace.Trace{}
	window(flush, "alice", t0, 100, seqDocs(10), humanGaps)
	g.Partition(flush) // profile: uniform over docs 0..9

	if got := g.DriftScore(); got != 0 {
		t.Errorf("score with no live samples = %v, want 0", got)
	}
	// Same distribution live: low divergence.
	for i := 0; i < 100; i++ {
		g.NoteRequest(webgraph.DocID(i % 10))
	}
	if got := g.DriftScore(); got > 0.05 {
		t.Errorf("score on matching traffic = %v, want ~0", got)
	}
	// Flash crowd: the live window shifts to disjoint documents.
	for i := 0; i < 400; i++ {
		g.NoteRequest(webgraph.DocID(100 + i%3))
	}
	got := g.DriftScore()
	if got <= g.DriftThreshold() {
		t.Errorf("score after flash crowd = %v, want > threshold %v", got, g.DriftThreshold())
	}
	if got > 2 {
		t.Errorf("score %v outside [0,2]", got)
	}
	// A refresh rebuilds the profile and resets the live counters.
	flush2 := &trace.Trace{}
	window(flush2, "alice", t0.Add(24*time.Hour), 100, []webgraph.DocID{100, 101, 102}, humanGaps)
	g.Partition(flush2)
	if got := g.DriftScore(); got != 0 {
		t.Errorf("score after refresh = %v, want 0 (counters reset)", got)
	}
}

func TestTrust(t *testing.T) {
	if got := Trust(0, 0, 8); got != 0 {
		t.Errorf("Trust(0,0,8) = %v, want 0", got)
	}
	if got := Trust(8, 0, 8); got != 0.5 {
		t.Errorf("Trust(8,0,8) = %v, want 0.5 (half-saturation)", got)
	}
	if got := Trust(8, 8, 8); got != 0.25 {
		t.Errorf("Trust(8,8,8) = %v, want 0.25", got)
	}
	// Monotonic: more support raises trust, more quarantined mass lowers it.
	if Trust(100, 0, 8) <= Trust(10, 0, 8) {
		t.Error("trust not increasing in occ")
	}
	if Trust(10, 50, 8) >= Trust(10, 5, 8) {
		t.Error("trust not decreasing in quarOcc")
	}
	if got := Trust(1e9, 0, 8); got > 1 {
		t.Errorf("trust %v exceeds 1", got)
	}
}

func frozenWithP(p float64) *markov.Frozen {
	m := markov.NewMatrix()
	for i := 0; i < 4; i++ {
		m.Set(webgraph.DocID(i), webgraph.DocID(i+100), p)
	}
	return markov.Freeze(m)
}

func TestAcceptSnapshot(t *testing.T) {
	g := New(Config{Seed: 1, MinFeedback: 10, MaxConsecutiveRejects: 3})
	const tp = 0.25
	good := frozenWithP(0.9)
	bad := frozenWithP(0.3)

	if !g.AcceptSnapshot(good, tp, Feedback{}) {
		t.Fatal("first snapshot must be accepted")
	}
	// Uncalibrated bound: (1-0.5) * 0.9 = 0.45 > 0.3 — reject, last-good kept.
	if g.AcceptSnapshot(bad, tp, Feedback{}) {
		t.Fatal("regressing snapshot accepted without feedback")
	}
	if s := g.StatsSnapshot(); s.RejectedSnapshots != 1 {
		t.Fatalf("rejected = %d, want 1", s.RejectedSnapshots)
	}
	// Calibration: the ledger says the last snapshot's 0.9 confidence
	// realized almost nothing (1 of 20 consumed), so the bound collapses
	// to its floor and the candidate passes.
	if !g.AcceptSnapshot(bad, tp, Feedback{Delivered: 20, Consumed: 1, Wasted: 19}) {
		t.Fatal("calibrated bound should loosen after the ledger reports waste")
	}

	// Force-accept: an empty snapshot scores 0 and is rejected until the
	// consecutive-reject cap trips — decay must eventually flush through.
	empty := markov.Freeze(markov.NewMatrix())
	fb := Feedback{Delivered: 20, Consumed: 1, Wasted: 19} // unchanged: delta 0, r = 1
	if g.AcceptSnapshot(empty, tp, fb) || g.AcceptSnapshot(empty, tp, fb) {
		t.Fatal("empty snapshot accepted before the reject cap")
	}
	if !g.AcceptSnapshot(empty, tp, fb) {
		t.Fatal("snapshot not force-accepted at MaxConsecutiveRejects")
	}
	s := g.StatsSnapshot()
	if s.ForcedAccepts != 1 {
		t.Errorf("forced accepts = %d, want 1", s.ForcedAccepts)
	}
	if s.RejectedSnapshots != 3 {
		t.Errorf("rejected = %d, want 3", s.RejectedSnapshots)
	}
}

func TestSnapshotConfidence(t *testing.T) {
	if got := SnapshotConfidence(frozenWithP(0.9), 0.25); got != 0.9 {
		t.Errorf("confidence = %v, want 0.9", got)
	}
	// Entries below threshold do not count: they would never be speculated.
	if got := SnapshotConfidence(frozenWithP(0.1), 0.25); got != 0 {
		t.Errorf("confidence of below-threshold snapshot = %v, want 0", got)
	}
	if got := SnapshotConfidence(markov.Freeze(markov.NewMatrix()), 0.25); got != 0 {
		t.Errorf("confidence of empty snapshot = %v, want 0", got)
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	g1 := New(Config{Seed: 7})
	g2 := New(Config{Seed: 7})
	g3 := New(Config{Seed: 8})
	varies := false
	for _, c := range []trace.ClientID{"a", "b", "crawler.bot", "x.y.z"} {
		j1, j2, j3 := g1.jitter(c), g2.jitter(c), g3.jitter(c)
		if j1 != j2 {
			t.Errorf("jitter(%q) not deterministic: %v vs %v", c, j1, j2)
		}
		if j1 < 0.95 || j1 >= 1.05 {
			t.Errorf("jitter(%q) = %v outside [0.95, 1.05)", c, j1)
		}
		if j1 != j3 {
			varies = true
		}
	}
	if !varies {
		t.Error("jitter ignores the seed")
	}
}
