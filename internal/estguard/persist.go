package estguard

import (
	"sort"

	"specweb/internal/trace"
)

// Persistence support: the guard's decision-relevant state — per-client
// behavioral fingerprints with their quarantine verdicts, and the snapshot
// judge's calibration bound — can be exported into plain summaries for the
// checkpoint codec and imported into a fresh guard on warm restart.
//
// Only decision state crosses a restart. The observability counters
// (promotions, demotions, per-reason drop totals) and the live drift
// window deliberately do not: counters are process-scoped like every other
// metric, and the drift profile describes traffic the dead process saw,
// which would mis-score the first post-restart window.
//
// Export iterates clients in sorted ID order, so the exported slice — and
// therefore the encoded checkpoint — is byte-deterministic regardless of
// sync.Map iteration order or the worker count that populated it. Both
// Export* and Import* must be called from the engine's refresh path (or
// before serving starts): they touch fields owned by the refresh
// goroutine.

// ClientSummary is one client's persisted fingerprint: everything the
// classifier needs to resume exactly where the dead process stopped.
type ClientSummary struct {
	ID        trace.ClientID
	Status    Status
	Reason    string // quarantine reason while Status == Quarantined, else ""
	TotalReqs int64
	Windows   int64
	Breadth   float64
	Distinct  float64
	Repeat    float64
	GapCV     float64
	Streak    int32 // consecutive clean windows while quarantined
}

// JudgeSummary is the snapshot judge's persisted state: the last-good
// confidence bound (calibrated by the attribution ledger) and the
// force-accept streak. Restoring it means a warm-started engine keeps
// rejecting candidate snapshots that would regress past the bound the
// previous process had earned.
type JudgeSummary struct {
	HaveLast  bool
	LastScore float64
	Delivered int64 // cumulative ledger totals at the last judgment
	Consumed  int64
	Wasted    int64
	Streak    int32 // consecutive rejections
}

// ExportClients returns every tracked client's fingerprint, sorted by ID.
func (g *Guard) ExportClients() []ClientSummary {
	var out []ClientSummary
	g.clients.Range(func(k, v any) bool {
		st := v.(*clientState)
		if st.windows == 0 {
			return true
		}
		out = append(out, ClientSummary{
			ID:        k.(trace.ClientID),
			Status:    Status(st.status.Load()),
			Reason:    st.reason,
			TotalReqs: st.totalReqs,
			Windows:   st.windows,
			Breadth:   st.breadth,
			Distinct:  st.distinct,
			Repeat:    st.repeat,
			GapCV:     st.gapCV,
			Streak:    int32(st.streak),
		})
		return true
	})
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// ImportClients replaces the guard's client population with the restored
// summaries and rebuilds the quarantined-clients gauge. Reasons outside
// the classifier's closed set are normalized away (the client reverts to
// human rather than minting a new metric label).
func (g *Guard) ImportClients(cs []ClientSummary) {
	g.clients.Range(func(k, _ any) bool {
		g.clients.Delete(k)
		return true
	})
	var quar int64
	for _, c := range cs {
		st := &clientState{
			reason:    c.Reason,
			totalReqs: c.TotalReqs,
			windows:   c.Windows,
			breadth:   c.Breadth,
			distinct:  c.Distinct,
			repeat:    c.Repeat,
			gapCV:     c.GapCV,
			streak:    int(c.Streak),
		}
		status := c.Status
		if status == Quarantined && !ValidReason(c.Reason) {
			status = Human
			st.reason = ""
		}
		if status != Quarantined {
			st.reason = ""
			status = Human
		} else {
			quar++
		}
		st.status.Store(int32(status))
		g.clients.Store(c.ID, st)
	}
	g.quarClients.Store(quar)
}

// ExportJudge returns the snapshot judge's persisted state.
func (g *Guard) ExportJudge() JudgeSummary {
	j := &g.judge
	return JudgeSummary{
		HaveLast:  j.haveLast,
		LastScore: j.lastScore,
		Delivered: j.lastFB.Delivered,
		Consumed:  j.lastFB.Consumed,
		Wasted:    j.lastFB.Wasted,
		Streak:    int32(j.streak),
	}
}

// ImportJudge restores the snapshot judge. The feedback baseline carries
// over verbatim: against a fresh process's attribution ledger (which
// restarts at zero) the first delta may come out negative, in which case
// AcceptSnapshot simply treats the window as uncalibrated (r = 1) and
// re-baselines at the next refresh — safe in both directions.
func (g *Guard) ImportJudge(s JudgeSummary) {
	j := &g.judge
	j.haveLast = s.HaveLast
	j.lastScore = s.LastScore
	j.lastFB = Feedback{Delivered: s.Delivered, Consumed: s.Consumed, Wasted: s.Wasted}
	j.streak = int(s.Streak)
	if !j.haveLast {
		j.lastScore = 0
		j.streak = 0
		j.lastFB = Feedback{}
	}
}

// ValidReason reports whether reason is one of the classifier's closed
// verdict set. The checkpoint decoder uses it to reject files that would
// otherwise mint arbitrary quarantine-reason labels.
func ValidReason(reason string) bool {
	switch reason {
	case ReasonCrawler, ReasonScanner, ReasonBot:
		return true
	}
	return false
}
