// Package estguard hardens the Markov estimation → freeze → speculate
// pipeline against hostile and shifting traffic. The paper's speculation
// quality rests entirely on P[i,j] estimated from server logs (§3), and
// §3.4 shows how bad estimates erode all four ratios — but the paper never
// considers crawlers poisoning the log, flash crowds invalidating the
// frozen snapshot mid-window, or diurnal drift. This package supplies the
// three defenses the pipeline lacks:
//
//  1. Client classification and quarantine: per-client behavioral
//     fingerprints (request rate, fan-out breadth, think-time regularity,
//     repeat ratio) feed a seeded-deterministic classifier. Transitions
//     from clients tagged crawler/scanner/bot are diverted into a
//     quarantined side-ledger and excluded from P[i,j]; a CAS-guarded
//     promotion path restores clients whose later windows look human.
//  2. Drift detection: a windowed divergence score (top-K L1 distance
//     between live request counts and the distribution the frozen
//     snapshot was estimated from) detects flash crowds and diurnal
//     shifts, triggers an early re-freeze when the drift is real, and
//     feeds the overload governor as a load signal.
//  3. Snapshot validation and confidence damping: a candidate snapshot
//     whose predicted interception (calibrated by the attribution
//     ledger's consumed/wasted feedback) would regress past a bound is
//     rejected, keeping the last-good snapshot — the Replicator's
//     last-good-fit idiom applied to the estimator. Per-row trust scores
//     (sample support × clean fraction) scale decision probabilities so
//     sparse or poisoned rows demote push→hint→nothing.
//
// Determinism contract: classification, quarantine transitions, drift
// profiles, and snapshot judgments mutate only at refresh time, under the
// engine mutex, iterating clients in sorted order over the time-sorted
// flush — never on the concurrent record path. The record path only
// increments commutative counters. Frozen snapshots and guard statistics
// are therefore byte-identical across recording-shard layouts and worker
// counts (see DESIGN §12).
package estguard

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"specweb/internal/obs"
	"specweb/internal/trace"
)

// Status is a client's classification.
type Status int32

const (
	// Human clients contribute transitions to P[i,j].
	Human Status = iota
	// Quarantined clients record into the side-ledger only and receive
	// no speculation.
	Quarantined
)

// Quarantine reasons, used as the {reason} label on
// specweb_estimator_quarantined_total and in the X-Specweb-Quarantine
// header.
const (
	ReasonCrawler = "crawler" // broad fan-out with metronomic gaps
	ReasonScanner = "scanner" // touches a large document range once
	ReasonBot     = "bot"     // metronomic timing without human variance
)

// Config parameterizes the guard. Zero values take defaults.
type Config struct {
	// Seed derives per-client threshold jitter, making the classification
	// boundary deterministic for a given seed but not globally uniform —
	// an adversary cannot sit exactly on a published threshold.
	Seed int64

	// MinRequests is the evidence floor: clients with fewer lifetime
	// requests are never quarantined.
	MinRequests int
	// CrawlerBreadth quarantines when the fraction of distinct documents
	// per request (fan-out breadth) stays at or above this and gaps are
	// regular.
	CrawlerBreadth float64
	// RegularityCV is the coefficient-of-variation ceiling below which
	// inter-request gaps count as metronomic. Human think times are
	// heavy-tailed (CV well above 0.5); fixed-interval fetchers sit near 0.
	RegularityCV float64
	// ScanDocs quarantines as "scanner" when a single window touches at
	// least this many distinct documents with essentially no repeats.
	ScanDocs int
	// MaxRepeatRatio is the repeat-ratio ceiling for the scanner verdict.
	MaxRepeatRatio float64
	// PromoteAfter is the number of consecutive human-looking refresh
	// windows after which a quarantined client is promoted back.
	PromoteAfter int

	// DriftTopK bounds the per-window distribution compared by the drift
	// score to the K most-requested documents.
	DriftTopK int
	// DriftThreshold is the L1 divergence (in [0,2]) at which drift is
	// considered real and an early re-freeze is requested.
	DriftThreshold float64
	// DriftMinSamples is the minimum live request count before the drift
	// score is meaningful; below it the score reports 0.
	DriftMinSamples int
	// EarlyRefreshFraction gates early re-freeze: drift may only trigger
	// a refresh after this fraction of the regular refresh interval has
	// elapsed, bounding refresh churn under sustained attack.
	EarlyRefreshFraction float64
	// DriftMaxTracked caps the distinct documents each drift shard counts
	// between refreshes, bounding the live drift window the same way the
	// bounded estimator caps P[i,j]: past the cap a new document displaces
	// the shard's least-counted one, space-saving style. The default
	// (4096/shard across 32 shards) is far above any top-K the score
	// compares, so the score is exact whenever a shard sees fewer distinct
	// documents than the cap — which the determinism suite relies on.
	DriftMaxTracked int

	// TrustSamples is the half-saturation constant of the sample-support
	// trust factor: a row with TrustSamples occurrences earns trust 0.5
	// from support alone.
	TrustSamples float64

	// MaxRegression is the tolerated fractional drop in mean speculation
	// confidence between the last accepted snapshot and a candidate;
	// candidates regressing further are rejected (last-good kept).
	MaxRegression float64
	// MinFeedback is the minimum number of newly resolved speculative
	// deliveries (consumed+wasted, from the attribution ledger) before
	// the observed interception rate calibrates the regression bound.
	MinFeedback int64
	// MaxConsecutiveRejects force-accepts a candidate after this many
	// consecutive rejections, so decay can eventually flush a poisoned
	// accumulator instead of pinning a stale snapshot forever.
	MaxConsecutiveRejects int

	// Metrics receives specweb_estguard_* series (nil = obs.Default).
	Metrics *obs.Registry
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MinRequests <= 0 {
		out.MinRequests = 24
	}
	if out.CrawlerBreadth <= 0 {
		out.CrawlerBreadth = 0.8
	}
	if out.RegularityCV <= 0 {
		out.RegularityCV = 0.25
	}
	if out.ScanDocs <= 0 {
		out.ScanDocs = 150
	}
	if out.MaxRepeatRatio <= 0 {
		out.MaxRepeatRatio = 0.05
	}
	if out.PromoteAfter <= 0 {
		out.PromoteAfter = 2
	}
	if out.DriftTopK <= 0 {
		out.DriftTopK = 64
	}
	if out.DriftThreshold <= 0 {
		out.DriftThreshold = 0.75
	}
	if out.DriftMinSamples <= 0 {
		out.DriftMinSamples = 64
	}
	if out.EarlyRefreshFraction <= 0 {
		out.EarlyRefreshFraction = 0.25
	}
	if out.DriftMaxTracked <= 0 {
		out.DriftMaxTracked = 4096
	}
	if out.TrustSamples <= 0 {
		out.TrustSamples = 8
	}
	if out.MaxRegression <= 0 {
		out.MaxRegression = 0.5
	}
	if out.MinFeedback <= 0 {
		out.MinFeedback = 64
	}
	if out.MaxConsecutiveRejects <= 0 {
		out.MaxConsecutiveRejects = 8
	}
	return out
}

// clientState is one client's behavioral fingerprint. The atomic status is
// read lock-free on the serve path; every other field is owned by the
// refresh goroutine (the engine calls Partition under its mutex).
type clientState struct {
	status atomic.Int32

	reason    string  // quarantine reason while status == Quarantined
	totalReqs int64   // lifetime request count
	windows   int64   // refresh windows with activity
	breadth   float64 // EWMA of distinct/requests per window
	distinct  float64 // EWMA of distinct documents per window
	repeat    float64 // EWMA of repeat ratio per window
	gapCV     float64 // EWMA of inter-request gap coefficient of variation
	streak    int     // consecutive human-looking windows while quarantined
}

// Guard is the estimator-hardening layer. All mutating entry points are
// called from the engine's refresh path (single-threaded, under the engine
// mutex); Status, NoteRequest, DriftScore, and Stats are safe for
// concurrent use from the serve path.
type Guard struct {
	cfg Config

	clients sync.Map // trace.ClientID -> *clientState

	drift driftState

	judge judgeState

	// Counters; atomics so the serve path can read Stats concurrently
	// with a refresh.
	quarClients  atomic.Int64 // currently quarantined clients
	quarRequests atomic.Int64 // transitions diverted to the side-ledger
	promotions   atomic.Int64
	demotions    atomic.Int64

	reasonMu     sync.Mutex
	reasonCounts map[string]int64

	metrics *guardMetrics
}

type guardMetrics struct {
	reg        *obs.Registry
	mu         sync.Mutex
	quarantine map[string]*obs.Counter // reason -> drop counter
	promotions *obs.Counter
	demotions  *obs.Counter
	rejected   *obs.Counter
	forced     *obs.Counter
	drift      *obs.Gauge
}

func newGuardMetrics(reg *obs.Registry) *guardMetrics {
	return &guardMetrics{
		reg:        reg,
		quarantine: make(map[string]*obs.Counter),
		promotions: reg.Counter("specweb_estguard_promotions_total",
			"Quarantined clients promoted back to human after clean windows.", nil),
		demotions: reg.Counter("specweb_estguard_demotions_total",
			"Clients quarantined by the behavioral classifier.", nil),
		rejected: reg.Counter("specweb_estguard_snapshots_rejected_total",
			"Candidate snapshots rejected by the interception-regression bound.", nil),
		forced: reg.Counter("specweb_estguard_snapshots_forced_total",
			"Snapshots force-accepted after too many consecutive rejections.", nil),
		drift: reg.Gauge("specweb_estguard_drift_score",
			"Top-K L1 divergence between live traffic and the frozen snapshot's window.", nil),
	}
}

// quarantined returns the drop counter for a reason, creating it lazily:
// the {reason} label space is bounded by the three classifier verdicts.
func (m *guardMetrics) quarantinedCounter(reason string) *obs.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.quarantine[reason]
	if !ok {
		c = m.reg.Counter("specweb_estimator_quarantined_total",
			"Transitions diverted from P[i,j] into the quarantined side-ledger.",
			obs.Labels{"reason": reason})
		m.quarantine[reason] = c
	}
	return c
}

// New returns a guard with the given configuration.
func New(cfg Config) *Guard {
	c := cfg.withDefaults()
	g := &Guard{
		cfg:          c,
		reasonCounts: make(map[string]int64),
		metrics:      newGuardMetrics(c.Metrics),
	}
	g.drift.init(c)
	g.judge.init(c)
	return g
}

// Status returns a client's current classification and, when quarantined,
// the reason. Lock-free; safe on the serve hot path.
func (g *Guard) Status(c trace.ClientID) (Status, string) {
	v, ok := g.clients.Load(c)
	if !ok {
		return Human, ""
	}
	st := v.(*clientState)
	if Status(st.status.Load()) == Quarantined {
		return Quarantined, st.reason
	}
	return Human, ""
}

// jitter derives a deterministic per-client multiplier in [0.95, 1.05)
// from the seed, so classification thresholds are seeded rather than
// globally fixed.
func (g *Guard) jitter(c trace.ClientID) float64 {
	h := uint64(g.cfg.Seed) ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(c); i++ {
		h ^= uint64(c[i])
		h *= 0x100000001b3
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return 0.95 + float64(h%1024)/1024*0.1
}

// windowFeatures summarizes one client's requests within a refresh window.
type windowFeatures struct {
	n        int
	distinct int
	repeat   float64 // 1 - distinct/n
	gapCV    float64 // coefficient of variation of positive gaps; 10 when <2 gaps
}

func featuresOf(reqs []trace.Request) windowFeatures {
	f := windowFeatures{n: len(reqs)}
	seen := make(map[int64]struct{}, len(reqs))
	for i := range reqs {
		seen[int64(reqs[i].Doc)] = struct{}{}
	}
	f.distinct = len(seen)
	if f.n > 0 {
		f.repeat = 1 - float64(f.distinct)/float64(f.n)
	}
	// Gap regularity over positive inter-request gaps. Zero gaps (bundled
	// embedded objects recorded at the same instant) carry no timing
	// signal and are skipped; so are gaps past the session cap — a robot
	// that crawls in bursts twice a day would otherwise hide its
	// metronomic intra-burst cadence behind two huge inter-burst gaps.
	const sessionGapCap = 900.0 // seconds
	var gaps []float64
	for i := 1; i < len(reqs); i++ {
		d := reqs[i].Time.Sub(reqs[i-1].Time).Seconds()
		if d > 0 && d <= sessionGapCap {
			gaps = append(gaps, d)
		}
	}
	if len(gaps) < 2 {
		f.gapCV = 10 // insufficient timing evidence: looks maximally human
		return f
	}
	var sum float64
	for _, d := range gaps {
		sum += d
	}
	mean := sum / float64(len(gaps))
	var varsum float64
	for _, d := range gaps {
		varsum += (d - mean) * (d - mean)
	}
	sd := math.Sqrt(varsum / float64(len(gaps)))
	if mean > 0 {
		f.gapCV = sd / mean
	} else {
		f.gapCV = 10
	}
	return f
}

const ewmaAlpha = 0.5 // fingerprint EWMA weight for the newest window

func ewma(prev, x float64, first bool) float64 {
	if first {
		return x
	}
	return prev + ewmaAlpha*(x-prev)
}

// classify applies the seeded thresholds to a client's accumulated
// fingerprint. It returns the quarantine reason, or "" for human.
func (g *Guard) classify(c trace.ClientID, st *clientState) string {
	if st.totalReqs < int64(g.cfg.MinRequests) {
		return ""
	}
	j := g.jitter(c)
	// Scanner: one pass over a large document range, essentially no
	// repeats — the estimator would learn sequential doc-ID chains.
	if st.distinct >= float64(g.cfg.ScanDocs)*j && st.repeat <= g.cfg.MaxRepeatRatio {
		return ReasonScanner
	}
	// Crawler: broad fan-out and metronomic gaps — link-structure
	// traversal, not demand.
	if st.breadth >= g.cfg.CrawlerBreadth*j && st.gapCV <= g.cfg.RegularityCV*j {
		return ReasonCrawler
	}
	// Bot: timing alone — fixed-interval fetching with none of the
	// variance human think times show, regardless of breadth.
	if st.gapCV <= g.cfg.RegularityCV*j*0.4 {
		return ReasonBot
	}
	return ""
}

// Partition updates fingerprints from a refresh window's flushed trace
// (time-sorted, as the engine drains it), reclassifies every active
// client, and splits the window into the clean trace (feeds P[i,j]) and
// the quarantined trace (feeds the side-ledger). Both partitions preserve
// the flush's chronological order. It also rebuilds the drift profile from
// the clean partition and resets the live counters.
//
// Must be called from the engine's refresh path: classification order is
// made deterministic by iterating clients sorted by ID, and state
// transitions happen only here, so a request's routing decision depends
// only on trace content — never on shard layout or drain interleaving.
func (g *Guard) Partition(flush *trace.Trace) (clean, quarantined *trace.Trace) {
	byClient := flush.ByClient()
	ids := make([]trace.ClientID, 0, len(byClient))
	for c := range byClient {
		ids = append(ids, c)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })

	for _, c := range ids {
		reqs := byClient[c]
		v, _ := g.clients.LoadOrStore(c, &clientState{})
		st := v.(*clientState)
		f := featuresOf(reqs)
		first := st.windows == 0
		st.windows++
		st.totalReqs += int64(f.n)
		st.breadth = ewma(st.breadth, float64(f.distinct)/math.Max(1, float64(f.n)), first)
		st.distinct = ewma(st.distinct, float64(f.distinct), first)
		st.repeat = ewma(st.repeat, f.repeat, first)
		st.gapCV = ewma(st.gapCV, f.gapCV, first)

		reason := g.classify(c, st)
		cur := Status(st.status.Load())
		switch {
		case reason != "" && cur == Human:
			// Demote. The CAS can only race with another refresh, which
			// the engine mutex excludes; it still guards the promotion
			// path against torn read-modify-write on the serve side.
			st.reason = reason
			st.streak = 0
			if st.status.CompareAndSwap(int32(Human), int32(Quarantined)) {
				g.quarClients.Add(1)
				g.demotions.Add(1)
				g.metrics.demotions.Inc()
			}
		case reason != "" && cur == Quarantined:
			st.reason = reason
			st.streak = 0
		case reason == "" && cur == Quarantined:
			// Promotion path: require PromoteAfter consecutive clean
			// windows before trusting the client again.
			st.streak++
			if st.streak >= g.cfg.PromoteAfter &&
				st.status.CompareAndSwap(int32(Quarantined), int32(Human)) {
				st.reason = ""
				st.streak = 0
				g.quarClients.Add(-1)
				g.promotions.Add(1)
				g.metrics.promotions.Inc()
			}
		}
	}

	// Route requests by final status in one ordered pass, so both
	// partitions stay chronologically sorted for the aging estimators.
	clean = &trace.Trace{Requests: make([]trace.Request, 0, flush.Len())}
	quarantined = &trace.Trace{}
	reasonDrops := make(map[string]int64)
	for i := range flush.Requests {
		r := flush.Requests[i]
		v, ok := g.clients.Load(r.Client)
		if ok {
			st := v.(*clientState)
			if Status(st.status.Load()) == Quarantined {
				quarantined.Requests = append(quarantined.Requests, r)
				reasonDrops[st.reason]++
				continue
			}
		}
		clean.Requests = append(clean.Requests, r)
	}
	for reason, n := range reasonDrops {
		g.quarRequests.Add(n)
		g.metrics.quarantinedCounter(reason).Add(n)
		g.reasonMu.Lock()
		g.reasonCounts[reason] += n
		g.reasonMu.Unlock()
	}

	g.drift.setProfile(clean)
	g.metrics.drift.Set(0)
	return clean, quarantined
}

// Stats is a point-in-time snapshot of the guard's counters, exported on
// /spec/stats and in specbench reports.
type Stats struct {
	QuarantinedClients  int64            `json:"quarantined_clients"`
	QuarantinedRequests int64            `json:"quarantined_requests"`
	Promotions          int64            `json:"promotions,omitempty"`
	Demotions           int64            `json:"demotions,omitempty"`
	Reasons             map[string]int64 `json:"reasons,omitempty"`
	DriftScore          float64          `json:"drift_score"`
	RejectedSnapshots   int64            `json:"rejected_snapshots,omitempty"`
	ForcedAccepts       int64            `json:"forced_accepts,omitempty"`
	// SpecSuppressed is filled by the serving layer: requests answered
	// without speculation because the client was quarantined.
	SpecSuppressed int64 `json:"spec_suppressed,omitempty"`
}

// StatsSnapshot returns current counters. Safe for concurrent use.
func (g *Guard) StatsSnapshot() Stats {
	s := Stats{
		QuarantinedClients:  g.quarClients.Load(),
		QuarantinedRequests: g.quarRequests.Load(),
		Promotions:          g.promotions.Load(),
		Demotions:           g.demotions.Load(),
		DriftScore:          g.DriftScore(),
		RejectedSnapshots:   g.judge.rejected.Load(),
		ForcedAccepts:       g.judge.forced.Load(),
	}
	g.reasonMu.Lock()
	if len(g.reasonCounts) > 0 {
		s.Reasons = make(map[string]int64, len(g.reasonCounts))
		for k, v := range g.reasonCounts {
			s.Reasons[k] = v
		}
	}
	g.reasonMu.Unlock()
	return s
}

// Trust combines a row's sample support with its clean fraction into a
// multiplicative confidence damp in (0, 1]. occ is the row's decayed
// occurrence count in the clean estimator, quarOcc the same document's
// occurrences in the quarantined side-ledger, and samples the
// half-saturation constant: Trust(samples, 0, samples) = 0.5.
//
// Sparse rows (low occ) and poisoned rows (high quarOcc) both damp toward
// zero, demoting their successors push→hint→nothing as the scaled
// probabilities cross below the engine's thresholds.
func Trust(occ, quarOcc, samples float64) float64 {
	return trust(occ, quarOcc, samples)
}

// RowTrust is Trust with the guard's configured TrustSamples constant.
func (g *Guard) RowTrust(occ, quarOcc float64) float64 {
	return trust(occ, quarOcc, g.cfg.TrustSamples)
}

func trust(occ, quarOcc, samples float64) float64 {
	if occ <= 0 {
		return 0
	}
	support := occ / (occ + samples)
	clean := occ / (occ + math.Max(0, quarOcc))
	return support * clean
}

func (s Status) String() string {
	switch s {
	case Human:
		return "human"
	case Quarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("status(%d)", int32(s))
	}
}
