package estguard

import (
	"fmt"
	"reflect"
	"testing"

	"specweb/internal/markov"
	"specweb/internal/obs"
	"specweb/internal/trace"
)

func seededClient(id trace.ClientID, status Status, reason string, streak int32) ClientSummary {
	return ClientSummary{
		ID: id, Status: status, Reason: reason,
		TotalReqs: 120, Windows: 3, Breadth: 0.7, Distinct: 42.5,
		Repeat: 0.1, GapCV: 0.9, Streak: streak,
	}
}

func TestGuardClientExportImportRoundTrip(t *testing.T) {
	in := []ClientSummary{
		seededClient("a-bot", Quarantined, ReasonBot, 1),
		seededClient("b-human", Human, "", 0),
		seededClient("c-crawler", Quarantined, ReasonCrawler, 0),
	}
	g := New(Config{Metrics: obs.NewRegistry()})
	g.ImportClients(in)

	if st, reason := g.Status("a-bot"); st != Quarantined || reason != ReasonBot {
		t.Fatalf("a-bot: %v %q", st, reason)
	}
	if st, _ := g.Status("b-human"); st != Human {
		t.Fatalf("b-human quarantined")
	}
	if got := g.StatsSnapshot().QuarantinedClients; got != 2 {
		t.Fatalf("quarantined gauge %d, want 2", got)
	}
	out := g.ExportClients()
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip diverged:\n in %+v\nout %+v", in, out)
	}
}

// TestGuardExportSortedRegardlessOfInsertOrder: sync.Map iteration order
// is arbitrary; the export must not be.
func TestGuardExportSortedRegardlessOfInsertOrder(t *testing.T) {
	g := New(Config{Metrics: obs.NewRegistry()})
	var in []ClientSummary
	for i := 63; i >= 0; i-- {
		in = append(in, seededClient(trace.ClientID(fmt.Sprintf("client-%02d", i)), Human, "", 0))
	}
	g.ImportClients(in)
	out := g.ExportClients()
	for i := 1; i < len(out); i++ {
		if out[i-1].ID >= out[i].ID {
			t.Fatalf("export not strictly sorted at %d: %q >= %q", i, out[i-1].ID, out[i].ID)
		}
	}
	if len(out) != 64 {
		t.Fatalf("lost clients: %d", len(out))
	}
}

// TestGuardImportReplacesPopulation: importing over a populated guard
// must not leave ghosts of the previous population behind.
func TestGuardImportReplacesPopulation(t *testing.T) {
	g := New(Config{Metrics: obs.NewRegistry()})
	g.ImportClients([]ClientSummary{seededClient("old-bot", Quarantined, ReasonBot, 0)})
	g.ImportClients([]ClientSummary{seededClient("new-human", Human, "", 0)})
	if st, _ := g.Status("old-bot"); st != Human {
		t.Fatal("stale client survived re-import")
	}
	if got := g.StatsSnapshot().QuarantinedClients; got != 0 {
		t.Fatalf("quarantined gauge %d after replacement", got)
	}
}

// TestGuardImportNormalizesUnknownReason: a summary carrying a reason
// outside the closed verdict set reverts to human rather than minting a
// new metric label.
func TestGuardImportNormalizesUnknownReason(t *testing.T) {
	g := New(Config{Metrics: obs.NewRegistry()})
	g.ImportClients([]ClientSummary{seededClient("x", Quarantined, "made-up", 0)})
	if st, reason := g.Status("x"); st != Human || reason != "" {
		t.Fatalf("unknown reason not normalized: %v %q", st, reason)
	}
}

func TestGuardJudgeExportImportRoundTrip(t *testing.T) {
	in := JudgeSummary{HaveLast: true, LastScore: 0.58, Delivered: 10, Consumed: 6, Wasted: 2, Streak: 3}
	g := New(Config{Metrics: obs.NewRegistry()})
	g.ImportJudge(in)
	if out := g.ExportJudge(); out != in {
		t.Fatalf("judge round trip: %+v vs %+v", out, in)
	}
	// Restored bound must keep defending against regressing candidates:
	// a guard with lastScore 0.58 and default MaxRegression 0.5 rejects a
	// zero-confidence candidate (empty snapshot scores 0).
	g2 := New(Config{Metrics: obs.NewRegistry()})
	g2.ImportJudge(in)
	if g2.AcceptSnapshot(emptyFrozen(), 0.25, Feedback{}) {
		t.Fatal("restored bound did not reject a regressing candidate")
	}

	empty := JudgeSummary{}
	g.ImportJudge(JudgeSummary{HaveLast: false, LastScore: 0.9, Streak: 5})
	if out := g.ExportJudge(); out != empty {
		t.Fatalf("no-last import must normalize to zero state, got %+v", out)
	}
}

func emptyFrozen() *markov.Frozen { return markov.Freeze(markov.NewMatrix()) }

func TestValidReason(t *testing.T) {
	for _, r := range []string{ReasonCrawler, ReasonScanner, ReasonBot} {
		if !ValidReason(r) {
			t.Fatalf("ValidReason(%q) = false", r)
		}
	}
	for _, r := range []string{"", "human", "CRAWLER", "bot "} {
		if ValidReason(r) {
			t.Fatalf("ValidReason(%q) = true", r)
		}
	}
}
