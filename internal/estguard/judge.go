package estguard

import (
	"sync/atomic"

	"specweb/internal/markov"
	"specweb/internal/webgraph"
)

// Feedback carries the attribution ledger's running totals (delivery
// counts, not bytes) into snapshot validation. The judge works on deltas
// between successive refreshes, so callers pass cumulative totals.
type Feedback struct {
	Delivered int64
	Consumed  int64
	Wasted    int64
}

// judgeState validates candidate snapshots against the last accepted one,
// the estimator's analogue of the Replicator's last-good-fit fallback.
// Mutated only on the refresh path (engine mutex); the reject counters are
// atomics so Stats can read them concurrently.
type judgeState struct {
	cfg Config

	haveLast  bool
	lastScore float64 // mean speculation confidence of the last accepted snapshot
	lastFB    Feedback
	streak    int // consecutive rejections

	rejected atomic.Int64
	forced   atomic.Int64
}

func (j *judgeState) init(cfg Config) { j.cfg = cfg }

// AcceptSnapshot decides whether a candidate snapshot may replace the
// last-good one. fb carries the attribution ledger's cumulative totals;
// the delta since the previous refresh is the window's realized
// speculation outcome.
//
// The regression bound: reject when the candidate's mean confidence falls
// below (1 − MaxRegression) × lastScore × r, where r calibrates the
// defended score by the realization rate the ledger observed. When the
// last snapshot's nominal confidence over-promised (interception well
// below lastScore), r < 1 loosens the bound — there is little realized
// interception worth defending — and when it delivered, r = 1 defends it
// at full strength. With fewer than MinFeedback newly resolved deliveries
// the bound is uncalibrated (r = 1).
//
// After MaxConsecutiveRejects consecutive rejections the candidate is
// force-accepted: decay must eventually be allowed to flush a poisoned
// accumulator, and a snapshot pinned forever is its own failure mode.
func (g *Guard) AcceptSnapshot(cand *markov.Frozen, tp float64, fb Feedback) bool {
	j := &g.judge
	score := SnapshotConfidence(cand, tp)

	delta := Feedback{
		Delivered: fb.Delivered - j.lastFB.Delivered,
		Consumed:  fb.Consumed - j.lastFB.Consumed,
		Wasted:    fb.Wasted - j.lastFB.Wasted,
	}
	j.lastFB = fb

	if !j.haveLast {
		j.haveLast = true
		j.lastScore = score
		j.streak = 0
		return true
	}

	r := 1.0
	if resolved := delta.Consumed + delta.Wasted; resolved >= j.cfg.MinFeedback && j.lastScore > 0 {
		observed := float64(delta.Consumed) / float64(resolved)
		r = observed / j.lastScore
		if r > 1 {
			r = 1
		}
		if r < 0.25 {
			r = 0.25 // keep a floor: even an over-promising snapshot is defended somewhat
		}
	}

	bound := (1 - j.cfg.MaxRegression) * j.lastScore * r
	if score >= bound {
		j.lastScore = score
		j.streak = 0
		return true
	}

	j.streak++
	if j.streak >= j.cfg.MaxConsecutiveRejects {
		j.forced.Add(1)
		g.metrics.forced.Inc()
		j.lastScore = score
		j.streak = 0
		return true
	}
	j.rejected.Add(1)
	g.metrics.rejected.Inc()
	return false
}

// SnapshotConfidence is the scoring function AcceptSnapshot applies: the
// mean probability across all entries of f at or above the push/hint
// threshold tp — the expected per-push hit rate if the engine speculated
// from this snapshot. A snapshot with no entry above threshold scores 0
// (it would silence speculation entirely).
func SnapshotConfidence(f *markov.Frozen, tp float64) float64 {
	var sum float64
	var n int
	f.RangeRows(func(_ webgraph.DocID, row []markov.Successor) bool {
		for _, s := range row {
			if s.P >= tp {
				sum += s.P
				n++
			}
		}
		return true
	})
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
