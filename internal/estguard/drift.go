package estguard

import (
	"sort"
	"sync"

	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// driftState tracks the divergence between live traffic and the request
// distribution the current frozen snapshot was estimated from.
//
// The record path increments sharded per-document counters (commutative,
// so the merged totals — and therefore the score — are independent of
// shard layout and arrival interleaving). At each refresh, Partition
// rebuilds the profile from the clean window and zeroes the live counters,
// so the score always measures "traffic since the snapshot" against
// "traffic that built the snapshot".
type driftState struct {
	cfg Config

	shards [driftShards]driftShard

	mu      sync.Mutex
	profile map[webgraph.DocID]float64 // normalized top-K frequencies
	rest    float64                    // profile mass outside the top-K
}

const driftShards = 32

type driftShard struct {
	mu     sync.Mutex
	counts map[webgraph.DocID]int64
	total  int64
	_      [32]byte // pad to limit false sharing between shard locks
}

func (d *driftState) init(cfg Config) {
	d.cfg = cfg
	for i := range d.shards {
		d.shards[i].counts = make(map[webgraph.DocID]int64)
	}
}

// NoteRequest records one live demand request for drift scoring. Called on
// the engine's concurrent record path; the per-shard mutex bounds
// contention. Below DriftMaxTracked distinct documents per shard the
// counts are commutative (order-independent); past the cap a new document
// displaces the shard's least-counted entry and inherits its count
// (space-saving), keeping the shard's memory bounded at the cost of
// overcounting displaced-then-returning documents — the drift score reads
// the result as "more drift", never less, so the cap can only make the
// guard refresh earlier.
func (g *Guard) NoteRequest(doc webgraph.DocID) {
	s := &g.drift.shards[uint64(doc)%driftShards]
	max := g.cfg.DriftMaxTracked
	s.mu.Lock()
	if _, ok := s.counts[doc]; !ok && max > 0 && len(s.counts) >= max {
		victim := webgraph.None
		min := int64(-1)
		for d, n := range s.counts {
			if min < 0 || n < min || (n == min && d < victim) {
				victim, min = d, n
			}
		}
		delete(s.counts, victim)
		s.counts[doc] = min
	}
	s.counts[doc]++
	s.total++
	s.mu.Unlock()
}

// mergedCounts snapshots the live counters across shards.
func (d *driftState) mergedCounts() (map[webgraph.DocID]int64, int64) {
	merged := make(map[webgraph.DocID]int64)
	var total int64
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		for doc, n := range s.counts {
			merged[doc] += n
		}
		total += s.total
		s.mu.Unlock()
	}
	return merged, total
}

// topK reduces a frequency map to its K heaviest entries (ties broken by
// DocID for determinism), returning normalized probabilities and the mass
// left outside the kept set.
func topK(counts map[webgraph.DocID]int64, total int64, k int) (map[webgraph.DocID]float64, float64) {
	if total <= 0 || len(counts) == 0 {
		return nil, 0
	}
	type entry struct {
		doc webgraph.DocID
		n   int64
	}
	all := make([]entry, 0, len(counts))
	for doc, n := range counts {
		all = append(all, entry{doc, n})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].n != all[b].n {
			return all[a].n > all[b].n
		}
		return all[a].doc < all[b].doc
	})
	if k < len(all) {
		all = all[:k]
	}
	out := make(map[webgraph.DocID]float64, len(all))
	var kept float64
	for _, e := range all {
		p := float64(e.n) / float64(total)
		out[e.doc] = p
		kept += p
	}
	return out, 1 - kept
}

// setProfile rebuilds the baseline distribution from the clean refresh
// window and resets the live counters.
func (d *driftState) setProfile(clean *trace.Trace) {
	counts := make(map[webgraph.DocID]int64, 256)
	var total int64
	for i := range clean.Requests {
		doc := clean.Requests[i].Doc
		if doc == webgraph.None {
			continue
		}
		counts[doc]++
		total++
	}
	prof, rest := topK(counts, total, d.cfg.DriftTopK)

	d.mu.Lock()
	d.profile = prof
	d.rest = rest
	d.mu.Unlock()

	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		s.counts = make(map[webgraph.DocID]int64)
		s.total = 0
		s.mu.Unlock()
	}
}

// DriftScore returns the top-K L1 distance, in [0, 2], between the live
// request distribution (since the last refresh) and the profile the
// current snapshot was estimated from. It reports 0 while either side has
// insufficient evidence. Deterministic for given counter state.
func (g *Guard) DriftScore() float64 {
	d := &g.drift
	d.mu.Lock()
	prof, profRest := d.profile, d.rest
	d.mu.Unlock()
	if prof == nil {
		return 0
	}
	merged, total := d.mergedCounts()
	if total < int64(d.cfg.DriftMinSamples) {
		return 0
	}
	live, liveRest := topK(merged, total, d.cfg.DriftTopK)

	// Sum in sorted doc order: float addition does not commute in the last
	// ULP, and the score is part of the byte-deterministic fingerprint.
	profDocs := make([]webgraph.DocID, 0, len(prof))
	for doc := range prof {
		profDocs = append(profDocs, doc)
	}
	sort.Slice(profDocs, func(a, b int) bool { return profDocs[a] < profDocs[b] })

	score := 0.0
	for _, doc := range profDocs {
		p := prof[doc]
		q, ok := live[doc]
		if !ok {
			// In the profile's top-K but not the live top-K: use the
			// exact live frequency so a still-popular document is not
			// misread as vanished.
			q = float64(merged[doc]) / float64(total)
			liveRest -= q
		}
		score += abs(p - q)
		delete(live, doc)
	}
	// Documents in the live top-K but absent from the profile's top-K are
	// newly hot: their baseline mass is at most profRest, so counting their
	// full live mass is a (slight) overestimate bounded by profRest.
	liveDocs := make([]webgraph.DocID, 0, len(live))
	for doc := range live {
		liveDocs = append(liveDocs, doc)
	}
	sort.Slice(liveDocs, func(a, b int) bool { return liveDocs[a] < liveDocs[b] })
	for _, doc := range liveDocs {
		score += live[doc]
	}
	score += abs(profRest - liveRest)
	return score
}

// DriftLoad maps the drift score onto the governor's load scale: 1.0 at
// the configured threshold. Wired as overload.GovernorConfig.Drift so
// sustained estimator drift degrades speculation alongside latency
// pressure.
func (g *Guard) DriftLoad() float64 {
	return g.DriftScore() / g.cfg.DriftThreshold
}

// DriftThreshold exposes the configured early-refresh threshold.
func (g *Guard) DriftThreshold() float64 { return g.cfg.DriftThreshold }

// EarlyRefreshFraction exposes the fraction of the refresh interval that
// must elapse before drift may trigger an early re-freeze.
func (g *Guard) EarlyRefreshFraction() float64 { return g.cfg.EarlyRefreshFraction }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
