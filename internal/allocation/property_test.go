package allocation

import (
	"math"
	"testing"

	"specweb/internal/stats"
)

// numericAllocate solves the eq. 4–5 program numerically, by a route
// independent of the closed form's algebra: bisection on the KKT
// multiplier. The stationarity condition for an interior server is
// R·λ·e^{-λB} = k, so B_i = max(0, (ln(λ_i R_i) − ln k)/λ_i), which is
// monotonically decreasing in ln k; bisect ln k (k itself can sit far
// below float range when demand is high) until the sum hits b0.
func numericAllocate(b0 float64, servers []Server) []float64 {
	alloc := func(lnk float64) []float64 {
		out := make([]float64, len(servers))
		for i, s := range servers {
			if s.R <= 0 {
				continue
			}
			if b := (math.Log(s.Lambda*s.R) - lnk) / s.Lambda; b > 0 {
				out[i] = b
			}
		}
		return out
	}
	sum := func(lnk float64) float64 {
		var t float64
		for _, b := range alloc(lnk) {
			t += b
		}
		return t
	}
	hi := math.Inf(-1)
	for _, s := range servers {
		if s.R > 0 {
			hi = math.Max(hi, math.Log(s.Lambda*s.R))
		}
	}
	if math.IsInf(hi, -1) || b0 == 0 {
		return make([]float64, len(servers))
	}
	lo, step := hi, 1.0
	for sum(lo) < b0 {
		lo -= step
		step *= 2
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if sum(mid) > b0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return alloc(lo)
}

type caseRNG struct{ *stats.RNG }

func (r caseRNG) logUniform(lo, hi float64) float64 {
	return lo * math.Exp(r.Float64()*math.Log(hi/lo))
}

// TestExponentialAllocateMatchesNumericOptimum cross-checks the paper's
// closed-form allocation (eqs. 4–5 with KKT clamping) against the
// bisection optimizer over randomized λ and R vectors.
func TestExponentialAllocateMatchesNumericOptimum(t *testing.T) {
	rng := caseRNG{stats.NewRNG(2024).Split("alloc-property")}
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(10)
		servers := make([]Server, n)
		for i := range servers {
			servers[i] = Server{
				R:      rng.logUniform(0.1, 100),
				Lambda: rng.logUniform(1e-8, 1e-3),
			}
		}
		b0 := rng.logUniform(1e3, 1e7)

		closed, err := ExponentialAllocate(b0, servers)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var total float64
		for i, b := range closed {
			if b < 0 {
				t.Fatalf("trial %d: negative allocation %v at %d", trial, b, i)
			}
			total += b
		}
		if math.Abs(total-b0) > 1e-6*b0 {
			t.Fatalf("trial %d: allocations sum to %v, want %v", trial, total, b0)
		}

		numeric := numericAllocate(b0, servers)
		for i := range closed {
			if diff := math.Abs(closed[i] - numeric[i]); diff > 1e-6*(b0+1) {
				t.Fatalf("trial %d: server %d closed=%v numeric=%v (Δ=%v)\nservers=%+v b0=%v",
					trial, i, closed[i], numeric[i], diff, servers, b0)
			}
		}

		// The closed form must dominate random feasible allocations.
		alphaStar := Alpha(closed, servers)
		for p := 0; p < 5; p++ {
			perturbed := randomFeasible(rng, b0, n)
			if a := Alpha(perturbed, servers); a > alphaStar+1e-9 {
				t.Fatalf("trial %d: random allocation beats the optimum: %v > %v",
					trial, a, alphaStar)
			}
		}
	}
}

// randomFeasible draws a non-negative vector summing to b0.
func randomFeasible(rng caseRNG, b0 float64, n int) []float64 {
	out := make([]float64, n)
	var sum float64
	for i := range out {
		out[i] = -math.Log(1 - rng.Float64())
		sum += out[i]
	}
	for i := range out {
		out[i] *= b0 / sum
	}
	return out
}

// TestEqualLambdaMatchesGeneralForm: with one shared λ, eq. 6 must agree
// with the general closed form wherever its unconstrained result is
// feasible (non-negative).
func TestEqualLambdaMatchesGeneralForm(t *testing.T) {
	rng := caseRNG{stats.NewRNG(2024).Split("eq6")}
	matched := 0
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		lambda := rng.logUniform(1e-7, 1e-4)
		rs := make([]float64, n)
		servers := make([]Server, n)
		for i := range rs {
			// R's within one decade keep the unconstrained form feasible
			// once each server's share of b0 dwarfs ln(R_i/R_j)/λ.
			rs[i] = rng.logUniform(1, 10)
			servers[i] = Server{R: rs[i], Lambda: lambda}
		}
		b0 := float64(n) / lambda * rng.logUniform(5, 50)
		eq6, err := EqualLambdaAllocate(b0, lambda, rs)
		if err != nil {
			t.Fatal(err)
		}
		feasible := true
		for _, b := range eq6 {
			if b < 0 {
				feasible = false
			}
		}
		if !feasible {
			continue
		}
		matched++
		general, err := ExponentialAllocate(b0, servers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range eq6 {
			if math.Abs(eq6[i]-general[i]) > 1e-6*(b0+1) {
				t.Fatalf("trial %d: eq6[%d]=%v general=%v", trial, i, eq6[i], general[i])
			}
		}
	}
	if matched < 100 {
		t.Fatalf("only %d/200 trials exercised the feasible regime", matched)
	}
}

// TestEqualRMatchesGeneralForm: with equal popularity, eq. 7 must agree
// with the general closed form wherever feasible.
func TestEqualRMatchesGeneralForm(t *testing.T) {
	rng := caseRNG{stats.NewRNG(2024).Split("eq7")}
	matched := 0
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		r := rng.logUniform(0.5, 50)
		lambdas := make([]float64, n)
		servers := make([]Server, n)
		for i := range lambdas {
			lambdas[i] = rng.logUniform(1e-6, 1e-5)
			servers[i] = Server{R: r, Lambda: lambdas[i]}
		}
		b0 := rng.logUniform(1e6, 1e7)
		eq7, err := EqualRAllocate(b0, lambdas)
		if err != nil {
			t.Fatal(err)
		}
		feasible := true
		for _, b := range eq7 {
			if b < 0 {
				feasible = false
			}
		}
		if !feasible {
			continue
		}
		matched++
		general, err := ExponentialAllocate(b0, servers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range eq7 {
			if math.Abs(eq7[i]-general[i]) > 1e-6*(b0+1) {
				t.Fatalf("trial %d: eq7[%d]=%v general=%v", trial, i, eq7[i], general[i])
			}
		}
	}
	if matched < 100 {
		t.Fatalf("only %d/200 trials exercised the feasible regime", matched)
	}
}

// TestSymmetricMatchesGeneralForm: identical servers split b0 evenly
// (eq. 8), and eq. 9's α agrees with the general α.
func TestSymmetricMatchesGeneralForm(t *testing.T) {
	rng := caseRNG{stats.NewRNG(2024).Split("eq8")}
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(12)
		lambda := rng.logUniform(1e-7, 1e-4)
		r := rng.logUniform(0.5, 50)
		b0 := rng.logUniform(1e4, 1e7)
		servers := make([]Server, n)
		for i := range servers {
			servers[i] = Server{R: r, Lambda: lambda}
		}
		eq8, err := SymmetricAllocate(b0, n)
		if err != nil {
			t.Fatal(err)
		}
		general, err := ExponentialAllocate(b0, servers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range eq8 {
			if math.Abs(eq8[i]-b0/float64(n)) > 1e-9 {
				t.Fatalf("trial %d: eq8 not an even split: %v", trial, eq8)
			}
			if math.Abs(eq8[i]-general[i]) > 1e-6*(b0+1) {
				t.Fatalf("trial %d: eq8[%d]=%v general=%v", trial, i, eq8[i], general[i])
			}
		}
		if a9, a := SymmetricAlpha(lambda, b0, n), Alpha(eq8, servers); math.Abs(a9-a) > 1e-9 {
			t.Fatalf("trial %d: eq9 alpha %v != general alpha %v", trial, a9, a)
		}
	}
}
