// Package allocation implements §2's proxy storage-allocation analysis: how
// a service proxy S₀ with capacity B₀ should split that capacity among the
// home servers S₁..Sₙ of its cluster so as to maximize the fraction α_C of
// outside requests it can intercept (equation 1).
//
// Under the exponential popularity model H_i(b) = 1 - exp(-λ_i·b) (§2.2) the
// optimum has a closed form (equations 4–5), implemented here with the KKT
// clamping the paper leaves implicit: the unconstrained optimum can assign
// negative storage to unpopular servers, in which case they get zero and the
// remainder is re-optimized over the rest. The special cases of §2.3 —
// equal λ (eq. 6), equal R (eq. 7), fully symmetric clusters (eqs. 8–10) —
// are provided both as independent closed forms and as cross-checks of the
// general path.
//
// For empirical (non-exponential) popularity profiles, GreedyAllocate fills
// the proxy by marginal-gain density, which is the fractional-knapsack
// optimum; the gap between it and the exponential closed form measures how
// much the paper's model assumption costs (an ablation in DESIGN.md).
package allocation

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Server describes one cluster member as the model sees it: R is the bytes
// per unit time it serves to clients outside the cluster, λ is its
// exponential popularity constant.
type Server struct {
	R      float64
	Lambda float64
}

// validate checks model preconditions.
func validate(b0 float64, servers []Server) error {
	if len(servers) == 0 {
		return errors.New("allocation: no servers")
	}
	if b0 < 0 || math.IsNaN(b0) || math.IsInf(b0, 0) {
		return fmt.Errorf("allocation: invalid capacity %v", b0)
	}
	for i, s := range servers {
		if s.Lambda <= 0 || math.IsNaN(s.Lambda) || math.IsInf(s.Lambda, 0) {
			return fmt.Errorf("allocation: server %d has invalid lambda %v", i, s.Lambda)
		}
		if s.R < 0 || math.IsNaN(s.R) || math.IsInf(s.R, 0) {
			return fmt.Errorf("allocation: server %d has invalid R %v", i, s.R)
		}
	}
	return nil
}

// ExponentialAllocate returns the optimal allocations B₁..Bₙ of capacity b0
// under the exponential model (equations 4–5), with KKT clamping: servers
// whose unconstrained optimum is negative receive zero. The allocations sum
// to b0 (when at least one server has positive demand) and are non-negative.
func ExponentialAllocate(b0 float64, servers []Server) ([]float64, error) {
	if err := validate(b0, servers); err != nil {
		return nil, err
	}
	n := len(servers)
	out := make([]float64, n)
	active := make([]int, 0, n)
	for i, s := range servers {
		if s.R > 0 {
			active = append(active, i)
		}
	}
	if len(active) == 0 {
		return out, nil // nothing to intercept; leave everything zero
	}

	// Iterate: solve the equality-constrained optimum on the active set;
	// drop servers that would get negative storage; repeat. Each round
	// removes at least one server, so this terminates in ≤ n rounds.
	for {
		// The stationarity condition (eq. 2) gives, for j active:
		//   B_j = (1/λ_j)·ln(λ_j R_j / (k·ΣR)),
		// and Σ_active B_j = b0 pins ln(k·ΣR):
		//   ln(k·ΣR) = (Σ (1/λ_i)·ln(λ_i R_i) - b0) / Σ (1/λ_i).
		var sumInvL, sumWLog float64
		for _, i := range active {
			s := servers[i]
			sumInvL += 1 / s.Lambda
			sumWLog += math.Log(s.Lambda*s.R) / s.Lambda
		}
		logK := (sumWLog - b0) / sumInvL
		neg := false
		for _, i := range active {
			s := servers[i]
			out[i] = (math.Log(s.Lambda*s.R) - logK) / s.Lambda
			if out[i] < 0 {
				neg = true
			}
		}
		if !neg {
			break
		}
		next := active[:0]
		for _, i := range active {
			if out[i] >= 0 {
				next = append(next, i)
			} else {
				out[i] = 0
			}
		}
		active = next
		if len(active) == 0 {
			// Possible only when b0 == 0.
			for i := range out {
				out[i] = 0
			}
			break
		}
	}
	return out, nil
}

// Alpha evaluates equation 1 under the exponential model: the fraction of
// outside requests the proxy intercepts given allocations b.
func Alpha(b []float64, servers []Server) float64 {
	var num, den float64
	for i, s := range servers {
		den += s.R
		bi := 0.0
		if i < len(b) {
			bi = b[i]
		}
		num += s.R * (1 - math.Exp(-s.Lambda*bi))
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// EqualLambdaAllocate implements equation 6: all servers share λ, so server
// j's allocation is B₀/n plus a popularity bonus relative to the geometric
// mean of the R's. The result is the unconstrained closed form — it can be
// negative for very unpopular servers, exactly as the paper's formula; use
// ExponentialAllocate for the clamped optimum.
func EqualLambdaAllocate(b0, lambda float64, rs []float64) ([]float64, error) {
	if len(rs) == 0 {
		return nil, errors.New("allocation: no servers")
	}
	if lambda <= 0 {
		return nil, fmt.Errorf("allocation: invalid lambda %v", lambda)
	}
	logGeo := 0.0
	for i, r := range rs {
		if r <= 0 {
			return nil, fmt.Errorf("allocation: server %d has non-positive R %v", i, r)
		}
		logGeo += math.Log(r)
	}
	logGeo /= float64(len(rs))
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = b0/float64(len(rs)) + (math.Log(r)-logGeo)/lambda
	}
	return out, nil
}

// EqualRAllocate implements equation 7: all servers are equally popular
// (equal R) but have different λ's. Like equation 6 it is the unconstrained
// form and may go negative when b0 is small relative to the λ spread.
func EqualRAllocate(b0 float64, lambdas []float64) ([]float64, error) {
	if len(lambdas) == 0 {
		return nil, errors.New("allocation: no servers")
	}
	for i, l := range lambdas {
		if l <= 0 {
			return nil, fmt.Errorf("allocation: server %d has invalid lambda %v", i, l)
		}
	}
	out := make([]float64, len(lambdas))
	for j, lj := range lambdas {
		var denom, corr float64
		for _, li := range lambdas {
			denom += lj / li
			corr += math.Log(lj/li) / li
		}
		out[j] = (b0 + corr) / denom
	}
	return out, nil
}

// SymmetricAllocate implements equation 8: in a fully symmetric cluster
// every server gets B₀/n.
func SymmetricAllocate(b0 float64, n int) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("allocation: invalid cluster size %d", n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = b0 / float64(n)
	}
	return out, nil
}

// SymmetricAlpha implements equation 9: the intercepted fraction of a
// symmetric cluster, α = 1 - exp(-λ·B₀/n).
func SymmetricAlpha(lambda, b0 float64, n int) float64 {
	if n <= 0 || lambda <= 0 {
		return 0
	}
	return 1 - math.Exp(-lambda*b0/float64(n))
}

// SizingB0 inverts equation 9 (the paper's equation 10, with α there
// denoting the residual fraction): the proxy capacity needed for a
// symmetric cluster of n servers with popularity constant λ to intercept
// the given fraction of outside requests. The paper's example: n=10,
// λ=6.247e-7, hitFraction=0.9 → ≈36 MB.
func SizingB0(n int, lambda, hitFraction float64) (float64, error) {
	if n <= 0 || lambda <= 0 {
		return 0, fmt.Errorf("allocation: invalid n=%d or lambda=%v", n, lambda)
	}
	if hitFraction < 0 || hitFraction >= 1 {
		return 0, fmt.Errorf("allocation: hit fraction %v outside [0,1)", hitFraction)
	}
	return -float64(n) / lambda * math.Log(1-hitFraction), nil
}

// Item is one document of an empirical popularity curve.
type Item struct {
	Size     int64
	Requests int64
}

// Curve is one server's empirical popularity profile: its outside demand
// weight R and per-document request counts.
type Curve struct {
	R     float64
	Items []Item
}

// GreedyAllocate fills capacity b0 across empirical curves by marginal-gain
// density: each document's gain is R_i × (its share of server i's requests)
// and its cost is its size; documents are taken in decreasing gain/cost
// until the budget is exhausted (documents larger than the remaining budget
// are skipped). It returns the per-server byte allocations and the achieved
// α (equation 1 evaluated on the empirical curves). This is the
// fractional-knapsack optimum up to the granularity of single documents and
// serves as the ground truth against which the exponential closed form is
// compared.
func GreedyAllocate(b0 int64, curves []Curve) (allocs []int64, alpha float64, err error) {
	if len(curves) == 0 {
		return nil, 0, errors.New("allocation: no curves")
	}
	if b0 < 0 {
		return nil, 0, fmt.Errorf("allocation: negative capacity %d", b0)
	}
	type cand struct {
		server  int
		size    int64
		gain    float64 // R_i · requests/totalRequests_i
		density float64
	}
	var cands []cand
	var totalR float64
	for si, c := range curves {
		if c.R < 0 || math.IsNaN(c.R) {
			return nil, 0, fmt.Errorf("allocation: curve %d has invalid R %v", si, c.R)
		}
		totalR += c.R
		var totReq int64
		for _, it := range c.Items {
			if it.Size <= 0 || it.Requests < 0 {
				return nil, 0, fmt.Errorf("allocation: curve %d has invalid item %+v", si, it)
			}
			totReq += it.Requests
		}
		if totReq == 0 || c.R == 0 {
			continue
		}
		for _, it := range c.Items {
			if it.Requests == 0 {
				continue
			}
			gain := c.R * float64(it.Requests) / float64(totReq)
			cands = append(cands, cand{
				server: si, size: it.Size,
				gain: gain, density: gain / float64(it.Size),
			})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].density != cands[j].density {
			return cands[i].density > cands[j].density
		}
		if cands[i].server != cands[j].server {
			return cands[i].server < cands[j].server
		}
		return cands[i].size < cands[j].size
	})
	allocs = make([]int64, len(curves))
	var used int64
	var hit float64
	for _, c := range cands {
		if used+c.size > b0 {
			continue
		}
		used += c.size
		allocs[c.server] += c.size
		hit += c.gain
	}
	if totalR > 0 {
		alpha = hit / totalR
	}
	return allocs, alpha, nil
}
