package allocation_test

import (
	"fmt"

	"specweb/internal/allocation"
)

// A proxy with 36 MB fronting a cluster of three servers: the busy server
// gets the most storage, and the expected interception fraction follows
// eq. 1.
func ExampleExponentialAllocate() {
	servers := []allocation.Server{
		{R: 5e6, Lambda: 6.247e-7}, // busy
		{R: 1e6, Lambda: 6.247e-7}, // quiet
		{R: 2e6, Lambda: 2e-6},     // medium, very skewed access
	}
	bs, err := allocation.ExponentialAllocate(36e6, servers)
	if err != nil {
		panic(err)
	}
	for i, b := range bs {
		fmt.Printf("server %d: %.1f MB\n", i+1, b/1e6)
	}
	fmt.Printf("alpha = %.2f\n", allocation.Alpha(bs, servers))
	// Output:
	// server 1: 16.6 MB
	// server 2: 14.1 MB
	// server 3: 5.3 MB
	// alpha = 1.00
}

func ExampleSizingB0() {
	// The paper's example: 10 servers, intercept 90% of remote traffic.
	b0, err := allocation.SizingB0(10, 6.247e-7, 0.90)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f MB\n", b0/1e6)
	// Output:
	// 37 MB
}
