package allocation

import (
	"math"
	"testing"
	"testing/quick"
)

const lambdaBU = 6.247e-7 // the paper's cs-www.bu.edu estimate

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestExponentialAllocateSymmetric(t *testing.T) {
	servers := make([]Server, 10)
	for i := range servers {
		servers[i] = Server{R: 1e6, Lambda: lambdaBU}
	}
	b0 := 36e6
	bs, err := ExponentialAllocate(b0, servers)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, b := range bs {
		if !almostEqual(b, b0/10, 1) {
			t.Errorf("symmetric allocation %v, want %v (eq. 8)", b, b0/10)
		}
		sum += b
	}
	if !almostEqual(sum, b0, 1) {
		t.Errorf("allocations sum to %v, want %v", sum, b0)
	}
	// Equation 9 / the paper's example: 36 MB over 10 servers → ≈90%.
	a := Alpha(bs, servers)
	if a < 0.89 || a > 0.92 {
		t.Errorf("alpha = %v, want ≈0.9 (paper's example)", a)
	}
}

func TestExponentialAllocateMatchesEqualLambdaForm(t *testing.T) {
	rs := []float64{5e6, 2e6, 1e6, 0.5e6}
	servers := make([]Server, len(rs))
	for i, r := range rs {
		servers[i] = Server{R: r, Lambda: lambdaBU}
	}
	b0 := 50e6
	general, err := ExponentialAllocate(b0, servers)
	if err != nil {
		t.Fatal(err)
	}
	special, err := EqualLambdaAllocate(b0, lambdaBU, rs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range general {
		if !almostEqual(general[i], special[i], 1) {
			t.Errorf("server %d: general %v vs eq. 6 %v", i, general[i], special[i])
		}
	}
	// Popular servers get more (eq. 6's log-relative-popularity bonus).
	for i := 1; i < len(general); i++ {
		if general[i-1] <= general[i] {
			t.Errorf("allocation not decreasing with popularity: %v", general)
		}
	}
}

func TestExponentialAllocateMatchesEqualRForm(t *testing.T) {
	lambdas := []float64{1e-6, 2e-6, 5e-6, 1e-5}
	servers := make([]Server, len(lambdas))
	for i, l := range lambdas {
		servers[i] = Server{R: 3e6, Lambda: l}
	}
	b0 := 40e6
	general, err := ExponentialAllocate(b0, servers)
	if err != nil {
		t.Fatal(err)
	}
	special, err := EqualRAllocate(b0, lambdas)
	if err != nil {
		t.Fatal(err)
	}
	for i := range general {
		if !almostEqual(general[i], special[i], 1) {
			t.Errorf("server %d: general %v vs eq. 7 %v", i, general[i], special[i])
		}
	}
	// With a lax budget, smaller λ (more uniform access) gets more space.
	for i := 1; i < len(general); i++ {
		if general[i-1] <= general[i] {
			t.Errorf("lax-budget allocation should favor small λ: %v", general)
		}
	}
}

func TestExponentialAllocateClampsNegatives(t *testing.T) {
	// One wildly popular server and one almost-unpopular one with a tiny
	// budget: the unconstrained form goes negative for the latter.
	servers := []Server{
		{R: 1e9, Lambda: 1e-6},
		{R: 1, Lambda: 1e-6},
	}
	b0 := 1e6
	bs, err := ExponentialAllocate(b0, servers)
	if err != nil {
		t.Fatal(err)
	}
	if bs[1] != 0 {
		t.Errorf("unpopular server should be clamped to 0, got %v", bs[1])
	}
	if !almostEqual(bs[0], b0, 1e-6) {
		t.Errorf("popular server should get the whole budget, got %v", bs[0])
	}
	// Cross-check optimality: the clamped solution beats proportional
	// splitting.
	prop := []float64{b0 / 2, b0 / 2}
	if Alpha(bs, servers) < Alpha(prop, servers) {
		t.Error("clamped optimum worse than naive split")
	}
}

func TestExponentialAllocateOptimality(t *testing.T) {
	// The analytic optimum should beat random feasible allocations.
	servers := []Server{
		{R: 5e6, Lambda: 4e-7},
		{R: 1e6, Lambda: 2e-6},
		{R: 3e6, Lambda: 9e-7},
	}
	b0 := 12e6
	bs, err := ExponentialAllocate(b0, servers)
	if err != nil {
		t.Fatal(err)
	}
	best := Alpha(bs, servers)
	for _, w := range [][3]float64{
		{1, 1, 1}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1},
		{2, 1, 1}, {1, 2, 3}, {5, 1, 2}, {0.1, 0.1, 0.8},
	} {
		tot := w[0] + w[1] + w[2]
		alt := []float64{b0 * w[0] / tot, b0 * w[1] / tot, b0 * w[2] / tot}
		if a := Alpha(alt, servers); a > best+1e-9 {
			t.Errorf("allocation %v gives alpha %v > optimum %v", alt, a, best)
		}
	}
}

func TestExponentialAllocateZeroBudget(t *testing.T) {
	bs, err := ExponentialAllocate(0, []Server{{R: 1, Lambda: 1e-6}, {R: 2, Lambda: 1e-6}})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bs {
		if b != 0 {
			t.Errorf("zero budget allocated %v", b)
		}
	}
}

func TestExponentialAllocateZeroDemand(t *testing.T) {
	bs, err := ExponentialAllocate(1e6, []Server{{R: 0, Lambda: 1e-6}})
	if err != nil {
		t.Fatal(err)
	}
	if bs[0] != 0 {
		t.Errorf("zero-demand server allocated %v", bs[0])
	}
	if Alpha(bs, []Server{{R: 0, Lambda: 1e-6}}) != 0 {
		t.Error("alpha of zero-demand cluster should be 0")
	}
}

func TestExponentialAllocateErrors(t *testing.T) {
	if _, err := ExponentialAllocate(1, nil); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, err := ExponentialAllocate(-1, []Server{{R: 1, Lambda: 1}}); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := ExponentialAllocate(1, []Server{{R: 1, Lambda: 0}}); err == nil {
		t.Error("zero lambda accepted")
	}
	if _, err := ExponentialAllocate(1, []Server{{R: -1, Lambda: 1}}); err == nil {
		t.Error("negative R accepted")
	}
	if _, err := ExponentialAllocate(math.NaN(), []Server{{R: 1, Lambda: 1}}); err == nil {
		t.Error("NaN capacity accepted")
	}
}

func TestSpecialCaseErrors(t *testing.T) {
	if _, err := EqualLambdaAllocate(1, 0, []float64{1}); err == nil {
		t.Error("eq6: zero lambda accepted")
	}
	if _, err := EqualLambdaAllocate(1, 1, nil); err == nil {
		t.Error("eq6: empty accepted")
	}
	if _, err := EqualLambdaAllocate(1, 1, []float64{0}); err == nil {
		t.Error("eq6: zero R accepted")
	}
	if _, err := EqualRAllocate(1, nil); err == nil {
		t.Error("eq7: empty accepted")
	}
	if _, err := EqualRAllocate(1, []float64{-1}); err == nil {
		t.Error("eq7: negative lambda accepted")
	}
	if _, err := SymmetricAllocate(1, 0); err == nil {
		t.Error("eq8: n=0 accepted")
	}
	if _, err := SizingB0(0, 1, 0.5); err == nil {
		t.Error("eq10: n=0 accepted")
	}
	if _, err := SizingB0(1, 1, 1); err == nil {
		t.Error("eq10: hit fraction 1 accepted")
	}
}

func TestSymmetric(t *testing.T) {
	bs, err := SymmetricAllocate(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bs {
		if b != 25 {
			t.Errorf("symmetric allocation %v, want 25", b)
		}
	}
	a := SymmetricAlpha(lambdaBU, 36e6, 10)
	if a < 0.89 || a > 0.92 {
		t.Errorf("SymmetricAlpha = %v, want ≈0.9", a)
	}
	if SymmetricAlpha(0, 1, 1) != 0 || SymmetricAlpha(1, 1, 0) != 0 {
		t.Error("degenerate SymmetricAlpha should be 0")
	}
}

func TestSizingB0PaperExamples(t *testing.T) {
	// "in order to reduce the remote bandwidth by 90% on all [10] servers,
	// the proxy must secure 36 MBytes".
	b0, err := SizingB0(10, lambdaBU, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if b0 < 35e6 || b0 < 0 || b0 > 38e6 {
		t.Errorf("SizingB0(10, λ, 0.9) = %.1f MB, want ≈36 MB", b0/1e6)
	}
	// "With a storage capacity of 500 MBytes, a proxy could shield 100
	// servers from as much as 96% of their remote bandwidth."
	a := SymmetricAlpha(lambdaBU, 500e6, 100)
	if a < 0.95 || a > 0.97 {
		t.Errorf("500MB over 100 servers intercepts %v, want ≈0.96", a)
	}
}

func TestGreedyAllocateBasic(t *testing.T) {
	curves := []Curve{
		{R: 10, Items: []Item{{Size: 100, Requests: 90}, {Size: 100, Requests: 10}}},
		{R: 1, Items: []Item{{Size: 100, Requests: 100}}},
	}
	allocs, alpha, err := GreedyAllocate(200, curves)
	if err != nil {
		t.Fatal(err)
	}
	// Densities: s0 item0 = 10·0.9/100 = 0.09; s1 item0 = 1·1/100 = 0.01;
	// s0 item1 = 10·0.1/100 = 0.01. Ties break by server index: s0 first.
	if allocs[0] != 200 || allocs[1] != 0 {
		t.Errorf("allocs = %v, want [200 0]", allocs)
	}
	if !almostEqual(alpha, 10.0/11, 1e-9) {
		t.Errorf("alpha = %v, want 10/11", alpha)
	}
}

func TestGreedyAllocateSkipsOversized(t *testing.T) {
	curves := []Curve{
		{R: 1, Items: []Item{{Size: 1000, Requests: 100}, {Size: 10, Requests: 5}}},
	}
	allocs, alpha, err := GreedyAllocate(50, curves)
	if err != nil {
		t.Fatal(err)
	}
	if allocs[0] != 10 {
		t.Errorf("allocs = %v, want the small doc only", allocs)
	}
	if !almostEqual(alpha, 5.0/105, 1e-9) {
		t.Errorf("alpha = %v", alpha)
	}
}

func TestGreedyAllocateErrors(t *testing.T) {
	if _, _, err := GreedyAllocate(1, nil); err == nil {
		t.Error("empty curves accepted")
	}
	if _, _, err := GreedyAllocate(-1, []Curve{{R: 1}}); err == nil {
		t.Error("negative budget accepted")
	}
	if _, _, err := GreedyAllocate(1, []Curve{{R: -1}}); err == nil {
		t.Error("negative R accepted")
	}
	if _, _, err := GreedyAllocate(1, []Curve{{R: 1, Items: []Item{{Size: 0, Requests: 1}}}}); err == nil {
		t.Error("zero-size item accepted")
	}
}

func TestGreedyMatchesExponentialOnSyntheticCurves(t *testing.T) {
	// Build per-server item lists whose empirical H follows the
	// exponential model, then verify greedy's alpha is close to the
	// analytic optimum's.
	servers := []Server{
		{R: 8e5, Lambda: 2e-5},
		{R: 2e5, Lambda: 8e-5},
	}
	mkItems := func(lambda float64, n int, size int64) []Item {
		items := make([]Item, n)
		for i := range items {
			lo := float64(i) * float64(size)
			hi := lo + float64(size)
			p := math.Exp(-lambda*lo) - math.Exp(-lambda*hi)
			items[i] = Item{Size: size, Requests: int64(p * 1e6)}
		}
		return items
	}
	curves := []Curve{
		{R: servers[0].R, Items: mkItems(servers[0].Lambda, 100, 2048)},
		{R: servers[1].R, Items: mkItems(servers[1].Lambda, 100, 2048)},
	}
	b0 := 120 * 2048.0
	bs, err := ExponentialAllocate(b0, servers)
	if err != nil {
		t.Fatal(err)
	}
	analytic := Alpha(bs, servers)
	_, greedy, err := GreedyAllocate(int64(b0), curves)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(greedy-analytic) > 0.05 {
		t.Errorf("greedy alpha %v vs analytic %v: should agree when the model holds", greedy, analytic)
	}
}

// Property: for arbitrary positive parameters, the allocation is feasible
// (non-negative, sums to ≤ b0 + tolerance) and locally optimal in the sense
// that perturbing storage between any pair does not improve alpha.
func TestExponentialAllocateProperty(t *testing.T) {
	f := func(seedR [4]uint16, seedL [4]uint8, b0Raw uint16) bool {
		servers := make([]Server, 4)
		for i := range servers {
			servers[i] = Server{
				R:      float64(seedR[i]%1000+1) * 1e4,
				Lambda: (float64(seedL[i]%50) + 1) * 1e-7,
			}
		}
		b0 := float64(b0Raw%500+1) * 1e5
		bs, err := ExponentialAllocate(b0, servers)
		if err != nil {
			return false
		}
		var sum float64
		for _, b := range bs {
			if b < 0 || math.IsNaN(b) {
				return false
			}
			sum += b
		}
		if math.Abs(sum-b0) > 1e-3*b0 {
			return false
		}
		base := Alpha(bs, servers)
		// Pairwise perturbation check.
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if i == j {
					continue
				}
				d := b0 * 0.01
				if bs[i] < d {
					continue
				}
				alt := append([]float64(nil), bs...)
				alt[i] -= d
				alt[j] += d
				if Alpha(alt, servers) > base+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: greedy allocation never exceeds the budget and its alpha is in
// [0, 1].
func TestGreedyAllocateProperty(t *testing.T) {
	f := func(sizes []uint16, reqs []uint16, budget uint32) bool {
		n := len(sizes)
		if len(reqs) < n {
			n = len(reqs)
		}
		items := make([]Item, 0, n)
		for i := 0; i < n; i++ {
			items = append(items, Item{Size: int64(sizes[i]%5000) + 1, Requests: int64(reqs[i] % 100)})
		}
		curves := []Curve{{R: 5, Items: items}, {R: 3, Items: items}}
		b0 := int64(budget % 100000)
		allocs, alpha, err := GreedyAllocate(b0, curves)
		if err != nil {
			return false
		}
		var used int64
		for _, a := range allocs {
			if a < 0 {
				return false
			}
			used += a
		}
		return used <= b0 && alpha >= 0 && alpha <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
