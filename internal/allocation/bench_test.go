package allocation

import "testing"

// BenchmarkExponentialAllocate measures the closed-form optimizer with KKT
// clamping on a 100-server cluster.
func BenchmarkExponentialAllocate(b *testing.B) {
	servers := make([]Server, 100)
	for i := range servers {
		servers[i] = Server{
			R:      float64(1+i%17) * 1e5,
			Lambda: float64(1+i%9) * 1e-7,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExponentialAllocate(500e6, servers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyAllocate measures the empirical fractional-knapsack fill
// over 10 servers × 1000 documents.
func BenchmarkGreedyAllocate(b *testing.B) {
	curves := make([]Curve, 10)
	for s := range curves {
		curves[s].R = float64(1 + s)
		for d := 0; d < 1000; d++ {
			curves[s].Items = append(curves[s].Items, Item{
				Size:     int64(512 + (d*7919)%20000),
				Requests: int64(1 + (1000-d)/3),
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GreedyAllocate(5<<20, curves); err != nil {
			b.Fatal(err)
		}
	}
}
