package attrib

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"specweb/internal/obs"
)

func TestLedgerBasicFlow(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewLedger(16, reg)
	l.Delivered("/a", ClassPush, 100, 800, "normal")
	l.Delivered("/b", ClassPush, 200, 600, "normal")
	l.Delivered("/c", ClassPrefetch, 50, 400, "no_push")
	l.Consumed("/a", ClassPush, 100)
	l.Wasted("/b", ClassPush, 200)

	r := l.Report(10)
	if r.Totals.Deliveries != 3 || r.Totals.DeliveredBytes != 350 {
		t.Errorf("totals %+v", r.Totals)
	}
	if r.Totals.ConsumedBytes != 100 || r.Totals.WastedBytes != 200 {
		t.Errorf("resolution bytes %+v", r.Totals)
	}
	if r.Outstanding != 1 { // /c unresolved
		t.Errorf("outstanding = %d, want 1", r.Outstanding)
	}
	push := r.Classes[ClassPush]
	if push.Deliveries != 2 || push.ConsumedBytes != 100 || push.WastedBytes != 200 {
		t.Errorf("push class %+v", push)
	}
	if r.Rungs["normal"] != 2 || r.Rungs["no_push"] != 1 {
		t.Errorf("rungs %+v", r.Rungs)
	}
	// Rows sorted by delivered bytes desc: /b (200), /a (100), /c (50).
	if len(r.Docs) != 3 || r.Docs[0].Doc != "/b" || r.Docs[2].Doc != "/c" {
		t.Fatalf("docs %+v", r.Docs)
	}
	if r.Docs[1].MeanPMilli != 800 {
		t.Errorf("/a mean p = %d, want 800", r.Docs[1].MeanPMilli)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`specweb_attrib_delivered_bytes_total{class="push"} 300`,
		`specweb_attrib_consumed_bytes_total{class="push"} 100`,
		`specweb_attrib_wasted_bytes_total{class="push"} 200`,
		`specweb_attrib_delivered_bytes_total{class="prefetch"} 50`,
		`specweb_attrib_deliveries_total 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestLedgerTopNTruncation(t *testing.T) {
	l := NewLedger(16, obs.NewRegistry())
	l.Delivered("/big", ClassPush, 1000, 900, "")
	l.Delivered("/mid", ClassPush, 500, 900, "")
	l.Delivered("/small", ClassPush, 10, 900, "")
	r := l.Report(2)
	if len(r.Docs) != 2 || r.Docs[0].Doc != "/big" || r.Docs[1].Doc != "/mid" {
		t.Errorf("top-2 %+v", r.Docs)
	}
	if r.TrackedDocs != 3 {
		t.Errorf("tracked = %d, want 3", r.TrackedDocs)
	}
}

// TestLedgerSpaceSavingEviction: at capacity the lightest row is evicted
// and the newcomer inherits its weight as the error bound; totals stay
// exact throughout.
func TestLedgerSpaceSavingEviction(t *testing.T) {
	l := NewLedger(2, obs.NewRegistry())
	l.Delivered("/a", ClassPush, 100, 500, "")
	l.Delivered("/b", ClassPush, 10, 500, "")
	l.Delivered("/c", ClassPush, 40, 500, "") // evicts /b (weight 10)
	r := l.Report(10)
	if r.Totals.DeliveredBytes != 150 {
		t.Errorf("totals drifted: %+v", r.Totals)
	}
	if r.EvictedDocs != 1 || r.TrackedDocs != 2 {
		t.Errorf("evicted=%d tracked=%d", r.EvictedDocs, r.TrackedDocs)
	}
	var c *DocStat
	for i := range r.Docs {
		if r.Docs[i].Doc == "/c" {
			c = &r.Docs[i]
		}
		if r.Docs[i].Doc == "/b" {
			t.Error("/b still tracked after eviction")
		}
	}
	if c == nil || c.ErrBytes != 10 {
		t.Errorf("/c row %+v, want ErrBytes=10", c)
	}
	// Resolving the evicted doc still lands in the exact totals.
	l.Wasted("/b", ClassPush, 10)
	if got := l.Report(0).Totals.WastedBytes; got != 10 {
		t.Errorf("wasted bytes = %d, want 10", got)
	}
}

// TestLedgerDeterministicAcrossOrders: the same operation multiset,
// applied in different interleavings (and concurrently), yields a
// byte-identical report when capacity covers all docs. This is the
// property the benchmark conformance suite leans on.
func TestLedgerDeterministicAcrossOrders(t *testing.T) {
	type op struct {
		doc, class string
		bytes, pm  int64
		kind       int // 0 delivered, 1 consumed, 2 wasted
	}
	var ops []op
	docs := []string{"/a", "/b", "/c", "/d", "/e"}
	for i, d := range docs {
		for j := 0; j < 4; j++ {
			ops = append(ops, op{d, ClassPush, int64(100 + 10*i + j), int64(500 + i), 0})
			if j%2 == 0 {
				ops = append(ops, op{d, ClassPush, int64(100 + 10*i + j), 0, 1})
			} else {
				ops = append(ops, op{d, ClassPush, int64(100 + 10*i + j), 0, 2})
			}
		}
	}
	apply := func(l *Ledger, o op) {
		switch o.kind {
		case 0:
			l.Delivered(o.doc, o.class, o.bytes, o.pm, "normal")
		case 1:
			l.Consumed(o.doc, o.class, o.bytes)
		case 2:
			l.Wasted(o.doc, o.class, o.bytes)
		}
	}
	render := func(l *Ledger) string {
		b, err := json.Marshal(l.Report(100))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	fwd := NewLedger(len(docs), obs.NewRegistry())
	for _, o := range ops {
		apply(fwd, o)
	}
	rev := NewLedger(len(docs), obs.NewRegistry())
	for i := len(ops) - 1; i >= 0; i-- {
		apply(rev, ops[i])
	}
	conc := NewLedger(len(docs), obs.NewRegistry())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(ops); i += 4 {
				apply(conc, ops[i])
			}
		}(w)
	}
	wg.Wait()

	a, b, c := render(fwd), render(rev), render(conc)
	if a != b {
		t.Errorf("forward vs reverse reports differ:\n%s\n%s", a, b)
	}
	if a != c {
		t.Errorf("sequential vs concurrent reports differ:\n%s\n%s", a, c)
	}
}

func TestLedgerNilSafe(t *testing.T) {
	var l *Ledger
	l.Delivered("/a", ClassPush, 1, 1, "normal")
	l.Consumed("/a", ClassPush, 1)
	l.Wasted("/a", ClassPush, 1)
	if l.Report(5) != nil {
		t.Error("nil ledger produced a report")
	}
}

func TestLedgerHandler(t *testing.T) {
	l := NewLedger(8, obs.NewRegistry())
	l.Delivered("/a", ClassPush, 100, 700, "normal")
	l.Consumed("/a", ClassPush, 100)
	rec := httptest.NewRecorder()
	l.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/attrib?top=5", nil))
	var r Report
	if err := json.Unmarshal(rec.Body.Bytes(), &r); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	want := Totals{Deliveries: 1, DeliveredBytes: 100, Consumed: 1,
		ConsumedBytes: 100, PMilliSum: 700}
	if !reflect.DeepEqual(r.Totals, want) {
		t.Errorf("totals %+v, want %+v", r.Totals, want)
	}
	if len(r.Docs) != 1 || r.Docs[0].Doc != "/a" {
		t.Errorf("docs %+v", r.Docs)
	}
}
