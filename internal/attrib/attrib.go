// Package attrib is the speculation attribution ledger: it answers, per
// document and per delivery class, which speculative bytes were later
// *consumed* by a demand request and which were *wasted* (evicted,
// replaced, or never used).
//
// The paper's ratios (§3.3) only report aggregate traffic; attribution is
// the per-object signal that online re-allocation needs — eqs. 4–8 decide
// per node, so a tuner must know *which* pushes pay off, not just how
// many. Cardinality is bounded by a space-saving top-K sketch so a
// million-document site cannot blow up /metrics or a stats endpoint; when
// the capacity is at least the number of distinct documents the sketch is
// exact and — because every update is a commutative integer add — the
// report is byte-deterministic regardless of the order concurrent
// requests land in. The benchmark harness relies on that to keep
// BENCH.json identical across worker counts.
package attrib

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"specweb/internal/obs"
)

// Delivery classes: how speculative bytes reached the consumer's cache.
const (
	// ClassPush: embedded in a bundle by the server's push decision.
	ClassPush = "push"
	// ClassPrefetch: pulled by the client on a Link hint.
	ClassPrefetch = "prefetch"
	// ClassReplica: disseminated to a proxy replica set.
	ClassReplica = "replica"
)

// PMilli converts a probability to the ledger's fixed-point thousandths
// (clamped to [0,1]): integer sums are associative, float sums are not,
// which is what keeps reports identical across operation orderings.
func PMilli(p float64) int64 {
	if math.IsNaN(p) || p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1000
	}
	return int64(p*1000 + 0.5)
}

// ClampPMilli bounds an externally supplied fixed-point probability to
// the valid [0, 1000] range. Header parsers use it so a forged or
// malformed Spec-P value cannot poison the ledger's confidence sums.
func ClampPMilli(pMilli int64) int64 {
	if pMilli < 0 {
		return 0
	}
	if pMilli > 1000 {
		return 1000
	}
	return pMilli
}

// Totals aggregates one slice of the ledger (overall, or one class).
// Everything is integer so concurrent accumulation is order-independent.
type Totals struct {
	Deliveries     int64 `json:"deliveries"`
	DeliveredBytes int64 `json:"delivered_bytes"`
	Consumed       int64 `json:"consumed"`
	ConsumedBytes  int64 `json:"consumed_bytes"`
	Wasted         int64 `json:"wasted"`
	WastedBytes    int64 `json:"wasted_bytes"`
	// PMilliSum sums the engine probability of each delivery in
	// thousandths (fixed-point so sums don't depend on addition order).
	PMilliSum int64 `json:"p_milli_sum"`
}

func (t *Totals) delivered(bytes, pMilli int64) {
	t.Deliveries++
	t.DeliveredBytes += bytes
	t.PMilliSum += pMilli
}

// DocStat is one document's attribution row.
type DocStat struct {
	Doc            string `json:"doc"`
	Deliveries     int64  `json:"deliveries"`
	DeliveredBytes int64  `json:"delivered_bytes"`
	Consumed       int64  `json:"consumed"`
	ConsumedBytes  int64  `json:"consumed_bytes"`
	Wasted         int64  `json:"wasted"`
	WastedBytes    int64  `json:"wasted_bytes"`
	// MeanPMilli is the mean delivery probability in thousandths
	// (integer division, so it is deterministic).
	MeanPMilli int64 `json:"mean_p_milli"`
	// ErrBytes is the space-saving overestimation bound inherited when
	// this row evicted another; 0 means the row is exact.
	ErrBytes int64 `json:"err_bytes,omitempty"`
}

// entry is the in-sketch state for one tracked document.
type entry struct {
	doc    string
	stats  DocStat
	weight int64 // DeliveredBytes + inherited error; the eviction key
}

// Report is the rendered ledger: overall and per-class totals, the
// per-rung delivery tally, and the top-K document rows.
type Report struct {
	Totals Totals `json:"totals"`
	// Outstanding = deliveries not yet resolved either way. A clean
	// benchmark run drains this to zero before reporting.
	Outstanding int64 `json:"outstanding"`
	// Classes maps push/prefetch/replica to their slice of the totals
	// (encoding/json renders map keys sorted, keeping output stable).
	Classes map[string]Totals `json:"classes,omitempty"`
	// Rungs tallies deliveries by the governor rung they were decided
	// under — the degradation ladder's footprint on speculation.
	Rungs map[string]int64 `json:"rungs,omitempty"`
	// Docs are the heaviest documents by delivered bytes (ties broken by
	// path), at most the requested top-N.
	Docs []DocStat `json:"docs,omitempty"`
	// TrackedDocs / EvictedDocs describe sketch occupancy: EvictedDocs>0
	// means per-doc rows are approximate (totals are always exact).
	TrackedDocs int   `json:"tracked_docs"`
	EvictedDocs int64 `json:"evicted_docs,omitempty"`
}

// Ledger accumulates speculation attribution. All methods are safe for
// concurrent use and safe on a nil *Ledger (no-ops), so instrumentation
// sites never need a nil check.
type Ledger struct {
	capacity int

	mu      sync.Mutex
	total   Totals
	classes map[string]*Totals
	rungs   map[string]int64
	docs    map[string]*entry
	evicted int64

	deliveredB *obs.Counter
	consumedB  *obs.Counter
	wastedB    *obs.Counter
	deliveredC map[string]*obs.Counter
	consumedC  map[string]*obs.Counter
	wastedC    map[string]*obs.Counter
}

// NewLedger builds a ledger tracking at most capacity distinct documents
// (minimum 1; size it at or above the site's document count for exact,
// order-independent per-doc rows). reg selects the metrics registry for
// the specweb_attrib_* families; nil means obs.Default.
func NewLedger(capacity int, reg *obs.Registry) *Ledger {
	if capacity < 1 {
		capacity = 1
	}
	l := &Ledger{
		capacity:   capacity,
		classes:    make(map[string]*Totals, 3),
		rungs:      make(map[string]int64, 4),
		docs:       make(map[string]*entry, capacity),
		deliveredC: make(map[string]*obs.Counter, 3),
		consumedC:  make(map[string]*obs.Counter, 3),
		wastedC:    make(map[string]*obs.Counter, 3),
	}
	for _, class := range []string{ClassPush, ClassPrefetch, ClassReplica} {
		lbl := obs.Labels{"class": class}
		l.deliveredC[class] = reg.Counter("specweb_attrib_delivered_bytes_total",
			"Speculative bytes delivered, by class.", lbl)
		l.consumedC[class] = reg.Counter("specweb_attrib_consumed_bytes_total",
			"Speculative bytes later served from cache by a demand request, by class.", lbl)
		l.wastedC[class] = reg.Counter("specweb_attrib_wasted_bytes_total",
			"Speculative bytes evicted/replaced/expired unused, by class.", lbl)
	}
	l.deliveredB = reg.Counter("specweb_attrib_deliveries_total",
		"Speculative deliveries recorded by the ledger.", nil)
	l.consumedB = reg.Counter("specweb_attrib_consumed_total",
		"Speculative deliveries resolved as consumed.", nil)
	l.wastedB = reg.Counter("specweb_attrib_wasted_total",
		"Speculative deliveries resolved as wasted.", nil)
	return l
}

func (l *Ledger) classTotals(class string) *Totals {
	t, ok := l.classes[class]
	if !ok {
		t = &Totals{}
		l.classes[class] = t
	}
	return t
}

// track returns the sketch entry for doc, admitting it via space-saving
// eviction when the sketch is full: the minimum-weight row is replaced
// and the newcomer inherits its weight as an error bound.
func (l *Ledger) track(doc string) *entry {
	if e, ok := l.docs[doc]; ok {
		return e
	}
	if len(l.docs) < l.capacity {
		e := &entry{doc: doc, stats: DocStat{Doc: doc}}
		l.docs[doc] = e
		return e
	}
	var victim *entry
	for _, e := range l.docs {
		if victim == nil || e.weight < victim.weight ||
			(e.weight == victim.weight && e.doc < victim.doc) {
			victim = e
		}
	}
	delete(l.docs, victim.doc)
	l.evicted++
	e := &entry{doc: doc, weight: victim.weight,
		stats: DocStat{Doc: doc, ErrBytes: victim.weight}}
	l.docs[doc] = e
	return e
}

// Delivered records one speculative delivery: doc was shipped ahead of
// demand with the given byte size, engine probability (in thousandths),
// and governor rung name at decision time.
func (l *Ledger) Delivered(doc, class string, bytes, pMilli int64, rung string) {
	if l == nil {
		return
	}
	if bytes < 0 {
		bytes = 0
	}
	pMilli = ClampPMilli(pMilli)
	l.mu.Lock()
	l.total.delivered(bytes, pMilli)
	l.classTotals(class).delivered(bytes, pMilli)
	if rung != "" {
		l.rungs[rung]++
	}
	e := l.track(doc)
	e.stats.Deliveries++
	e.stats.DeliveredBytes += bytes
	e.stats.MeanPMilli += pMilli // holds the sum until Report divides
	e.weight += bytes
	l.mu.Unlock()
	if c, ok := l.deliveredC[class]; ok {
		c.Add(bytes)
	}
	l.deliveredB.Inc()
}

// TotalsSnapshot returns the ledger-wide totals. Nil-safe (zero totals),
// so callers can wire it as a feedback source without caring whether
// attribution is enabled. Snapshot validation in the estimation pipeline
// reads this to calibrate its regression bound against the consumed/
// wasted rates the last snapshot actually realized.
func (l *Ledger) TotalsSnapshot() Totals {
	if l == nil {
		return Totals{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Consumed resolves one outstanding delivery of doc as consumed: a
// demand request was served from the speculative copy.
func (l *Ledger) Consumed(doc, class string, bytes int64) {
	l.resolve(doc, class, bytes, true)
}

// Wasted resolves one outstanding delivery of doc as wasted: the copy
// was evicted, replaced, or the session ended without it being used.
func (l *Ledger) Wasted(doc, class string, bytes int64) {
	l.resolve(doc, class, bytes, false)
}

func (l *Ledger) resolve(doc, class string, bytes int64, consumed bool) {
	if l == nil {
		return
	}
	if bytes < 0 {
		bytes = 0
	}
	l.mu.Lock()
	tot := []*Totals{&l.total, l.classTotals(class)}
	for _, t := range tot {
		if consumed {
			t.Consumed++
			t.ConsumedBytes += bytes
		} else {
			t.Wasted++
			t.WastedBytes += bytes
		}
	}
	// Admit the doc on resolution too (space-saving admits on every
	// update): with capacity covering all docs this makes every ledger
	// op commutative, so concurrent interleavings cannot change the
	// per-doc rows.
	e := l.track(doc)
	if consumed {
		e.stats.Consumed++
		e.stats.ConsumedBytes += bytes
	} else {
		e.stats.Wasted++
		e.stats.WastedBytes += bytes
	}
	l.mu.Unlock()
	if consumed {
		if c, ok := l.consumedC[class]; ok {
			c.Add(bytes)
		}
		l.consumedB.Inc()
	} else {
		if c, ok := l.wastedC[class]; ok {
			c.Add(bytes)
		}
		l.wastedB.Inc()
	}
}

// Report renders the ledger: exact totals plus the top-N per-doc rows by
// delivered bytes (ties by path). Deterministic for a fixed op multiset
// when no evictions occurred. Nil-safe: a nil ledger reports nil.
func (l *Ledger) Report(topN int) *Report {
	if l == nil {
		return nil
	}
	if topN < 0 {
		topN = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	r := &Report{
		Totals:      l.total,
		Outstanding: l.total.Deliveries - l.total.Consumed - l.total.Wasted,
		TrackedDocs: len(l.docs),
		EvictedDocs: l.evicted,
	}
	if len(l.classes) > 0 {
		r.Classes = make(map[string]Totals, len(l.classes))
		for k, v := range l.classes {
			r.Classes[k] = *v
		}
	}
	if len(l.rungs) > 0 {
		r.Rungs = make(map[string]int64, len(l.rungs))
		for k, v := range l.rungs {
			r.Rungs[k] = v
		}
	}
	rows := make([]DocStat, 0, len(l.docs))
	for _, e := range l.docs {
		s := e.stats
		if s.Deliveries > 0 {
			s.MeanPMilli /= s.Deliveries // field held the sum
		}
		rows = append(rows, s)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].DeliveredBytes != rows[j].DeliveredBytes {
			return rows[i].DeliveredBytes > rows[j].DeliveredBytes
		}
		return rows[i].Doc < rows[j].Doc
	})
	if len(rows) > topN {
		rows = rows[:topN]
	}
	r.Docs = rows
	return r
}

// DocExport is one document's raw attribution row in a ledger export:
// unlike DocStat it carries the delivery-probability *sum* (PMilliSum),
// not the rendered mean, so exports from disjoint shards merge exactly.
type DocExport struct {
	Doc            string `json:"doc"`
	Deliveries     int64  `json:"deliveries"`
	DeliveredBytes int64  `json:"delivered_bytes"`
	Consumed       int64  `json:"consumed"`
	ConsumedBytes  int64  `json:"consumed_bytes"`
	Wasted         int64  `json:"wasted"`
	WastedBytes    int64  `json:"wasted_bytes"`
	PMilliSum      int64  `json:"p_milli_sum"`
}

// Export is a ledger's raw state for distributed merging. Because every
// ledger update is a commutative integer add, summing the exports of
// shards whose operations partition the run reproduces the single-ledger
// state exactly; Report-rendering the merge then yields byte-identical
// output.
type Export struct {
	Totals  Totals            `json:"totals"`
	Classes map[string]Totals `json:"classes,omitempty"`
	Rungs   map[string]int64  `json:"rungs,omitempty"`
	Docs    []DocExport       `json:"docs,omitempty"`
	// Evicted > 0 marks the per-doc rows approximate; such exports are
	// rejected by MergeExports (size shard ledgers to the site).
	Evicted int64 `json:"evicted,omitempty"`
}

// Export snapshots the ledger's raw state with doc rows sorted by path
// (deterministic wire bytes). Nil-safe: a nil ledger exports nil.
func (l *Ledger) Export() *Export {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e := &Export{Totals: l.total, Evicted: l.evicted}
	if len(l.classes) > 0 {
		e.Classes = make(map[string]Totals, len(l.classes))
		for k, v := range l.classes {
			e.Classes[k] = *v
		}
	}
	if len(l.rungs) > 0 {
		e.Rungs = make(map[string]int64, len(l.rungs))
		for k, v := range l.rungs {
			e.Rungs[k] = v
		}
	}
	for _, en := range l.docs {
		s := en.stats
		e.Docs = append(e.Docs, DocExport{
			Doc:            s.Doc,
			Deliveries:     s.Deliveries,
			DeliveredBytes: s.DeliveredBytes,
			Consumed:       s.Consumed,
			ConsumedBytes:  s.ConsumedBytes,
			Wasted:         s.Wasted,
			WastedBytes:    s.WastedBytes,
			PMilliSum:      s.MeanPMilli, // the field holds the sum pre-Report
		})
	}
	sort.Slice(e.Docs, func(i, j int) bool { return e.Docs[i].Doc < e.Docs[j].Doc })
	return e
}

// MergeExports sums shard exports and renders the combined Report with
// the same ranking and truncation rules as Ledger.Report. It rejects
// approximate (evicting) exports: the merge is only exact when every
// shard's ledger tracked all its documents.
func MergeExports(parts []*Export, topN int) (*Report, error) {
	if topN < 0 {
		topN = 0
	}
	var present []*Export
	for _, p := range parts {
		if p == nil {
			continue
		}
		if p.Evicted > 0 {
			return nil, fmt.Errorf("attrib: cannot merge an evicting ledger export (%d evictions); size shard ledgers to the site", p.Evicted)
		}
		present = append(present, p)
	}
	if len(present) == 0 {
		return nil, nil
	}
	var total Totals
	classes := make(map[string]Totals)
	rungs := make(map[string]int64)
	docs := make(map[string]*DocExport)
	addTotals := func(dst *Totals, src Totals) {
		dst.Deliveries += src.Deliveries
		dst.DeliveredBytes += src.DeliveredBytes
		dst.Consumed += src.Consumed
		dst.ConsumedBytes += src.ConsumedBytes
		dst.Wasted += src.Wasted
		dst.WastedBytes += src.WastedBytes
		dst.PMilliSum += src.PMilliSum
	}
	for _, p := range present {
		addTotals(&total, p.Totals)
		for k, v := range p.Classes {
			t := classes[k]
			addTotals(&t, v)
			classes[k] = t
		}
		for k, v := range p.Rungs {
			rungs[k] += v
		}
		for i := range p.Docs {
			d := p.Docs[i]
			m, ok := docs[d.Doc]
			if !ok {
				cp := d
				docs[d.Doc] = &cp
				continue
			}
			m.Deliveries += d.Deliveries
			m.DeliveredBytes += d.DeliveredBytes
			m.Consumed += d.Consumed
			m.ConsumedBytes += d.ConsumedBytes
			m.Wasted += d.Wasted
			m.WastedBytes += d.WastedBytes
			m.PMilliSum += d.PMilliSum
		}
	}
	r := &Report{
		Totals:      total,
		Outstanding: total.Deliveries - total.Consumed - total.Wasted,
		TrackedDocs: len(docs),
	}
	if len(classes) > 0 {
		r.Classes = classes
	}
	if len(rungs) > 0 {
		r.Rungs = rungs
	}
	rows := make([]DocStat, 0, len(docs))
	for _, d := range docs {
		s := DocStat{
			Doc:            d.Doc,
			Deliveries:     d.Deliveries,
			DeliveredBytes: d.DeliveredBytes,
			Consumed:       d.Consumed,
			ConsumedBytes:  d.ConsumedBytes,
			Wasted:         d.Wasted,
			WastedBytes:    d.WastedBytes,
			MeanPMilli:     d.PMilliSum,
		}
		if s.Deliveries > 0 {
			s.MeanPMilli /= s.Deliveries
		}
		rows = append(rows, s)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].DeliveredBytes != rows[j].DeliveredBytes {
			return rows[i].DeliveredBytes > rows[j].DeliveredBytes
		}
		return rows[i].Doc < rows[j].Doc
	})
	if len(rows) > topN {
		rows = rows[:topN]
	}
	r.Docs = rows
	return r, nil
}

// Handler serves the ledger as JSON — mount it at /debug/attrib. A
// ?top=N query bounds the per-doc rows (default 20).
func (l *Ledger) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		top := 20
		if s := req.URL.Query().Get("top"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 {
				top = n
			}
		}
		w.Header().Set("Content-Type", "application/json")
		rep := l.Report(top)
		if rep == nil {
			rep = &Report{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
}
