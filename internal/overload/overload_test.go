package overload

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"specweb/internal/obs"
)

func newTestController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	return NewController(cfg)
}

func TestAcquireReleaseBasics(t *testing.T) {
	c := newTestController(t, Config{DemandSlots: 2, SpecSlots: 1})
	ctx := context.Background()
	rel1, err := c.Acquire(ctx, Demand)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := c.Acquire(ctx, Demand)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Demand.Inflight != 2 || st.Demand.Admitted != 2 {
		t.Errorf("demand stats = %+v, want inflight 2 admitted 2", st.Demand)
	}
	// The speculative class has its own slots.
	rel3, err := c.Acquire(ctx, Speculative)
	if err != nil {
		t.Fatal(err)
	}
	rel1()
	rel2()
	rel3()
	rel3() // double release must be a no-op
	st = c.Stats()
	if st.Demand.Inflight != 0 || st.Speculative.Inflight != 0 {
		t.Errorf("inflight after release = %+v", st)
	}
}

func TestQueueGrantsInFIFOOrder(t *testing.T) {
	c := newTestController(t, Config{DemandSlots: 1, QueueDepth: 4, MaxWait: time.Second})
	ctx := context.Background()
	rel, err := c.Acquire(ctx, Demand)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 2)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 2 {
				<-start // ensure waiter 1 queues first
			}
			r, err := c.Acquire(ctx, Demand)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			r()
		}(i)
	}
	// Wait until waiter 1 is queued, then release waiter 2.
	waitFor(t, func() bool { return c.Stats().Demand.Waiting == 1 })
	close(start)
	waitFor(t, func() bool { return c.Stats().Demand.Waiting == 2 })
	rel()
	wg.Wait()
	close(order)
	var got []int
	for i := range order {
		got = append(got, i)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("grant order = %v, want [1 2]", got)
	}
}

func TestQueueFullRejectsImmediately(t *testing.T) {
	c := newTestController(t, Config{DemandSlots: 1, QueueDepth: -1})
	rel, err := c.Acquire(context.Background(), Demand)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	_, err = c.Acquire(context.Background(), Demand)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if !errors.Is(err, ErrRejected) {
		t.Error("ErrQueueFull does not wrap ErrRejected")
	}
	if got := c.Stats().Demand.Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	if ra := c.RetryAfter(Demand); ra < 1 {
		t.Errorf("RetryAfter = %d, want >= 1", ra)
	}
}

func TestDeadlineAwareRejection(t *testing.T) {
	// A hold EWMA of 1s with one slot means a queued request expects to
	// wait ~1s; a 10ms deadline cannot survive that, so the acquire must
	// fail immediately — not after the deadline expires.
	now := time.Unix(1000, 0)
	c := newTestController(t, Config{
		DemandSlots: 1, QueueDepth: 8,
		Clock: func() time.Time { return now },
	})
	c.classes[Demand].holdEWMA = 1.0
	rel, err := c.Acquire(context.Background(), Demand)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithDeadline(context.Background(), now.Add(10*time.Millisecond))
	defer cancel()
	before := time.Now()
	_, err = c.Acquire(ctx, Demand)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if since := time.Since(before); since > 100*time.Millisecond {
		t.Errorf("deadline rejection took %v, want immediate", since)
	}
	// A deadline beyond the expected wait queues instead. (Real-clock
	// based: the context machinery fires Done on wall time, not on the
	// injected clock.)
	lctx, lcancel := context.WithTimeout(context.Background(), time.Hour)
	defer lcancel()
	done := make(chan error, 1)
	go func() {
		r, err := c.Acquire(lctx, Demand)
		if err == nil {
			r()
		}
		done <- err
	}()
	waitFor(t, func() bool { return c.Stats().Demand.Waiting == 1 })
	rel()
	if err := <-done; err != nil {
		t.Fatalf("long-deadline acquire: %v", err)
	}
}

func TestCancelWhileQueued(t *testing.T) {
	c := newTestController(t, Config{DemandSlots: 1, QueueDepth: 4, MaxWait: time.Minute})
	rel, err := c.Acquire(context.Background(), Demand)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx, Demand)
		done <- err
	}()
	waitFor(t, func() bool { return c.Stats().Demand.Waiting == 1 })
	cancel()
	if err := <-done; !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if got := c.Stats().Demand.Waiting; got != 0 {
		t.Errorf("waiting = %d after cancel, want 0 (abandoned waiter compacted)", got)
	}
}

func TestMaxWaitTimeout(t *testing.T) {
	c := newTestController(t, Config{DemandSlots: 1, QueueDepth: 4, MaxWait: 20 * time.Millisecond})
	rel, err := c.Acquire(context.Background(), Demand)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	_, err = c.Acquire(context.Background(), Demand)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestPressureSignal(t *testing.T) {
	c := newTestController(t, Config{DemandSlots: 2, QueueDepth: 4, MaxWait: time.Minute})
	if p := c.Pressure(); p != 0 {
		t.Errorf("idle pressure = %v, want 0", p)
	}
	rel1, _ := c.Acquire(context.Background(), Demand)
	rel2, _ := c.Acquire(context.Background(), Demand)
	if p := c.Pressure(); p != 1 {
		t.Errorf("saturated pressure = %v, want 1", p)
	}
	go func() {
		r, err := c.Acquire(context.Background(), Demand)
		if err == nil {
			r()
		}
	}()
	waitFor(t, func() bool { return c.Pressure() > 1 })
	rel1()
	rel2()
}

func TestControllerConcurrency(t *testing.T) {
	c := newTestController(t, Config{DemandSlots: 4, SpecSlots: 2, QueueDepth: 64, MaxWait: time.Second})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := Demand
			if w%3 == 0 {
				cl = Speculative
			}
			for i := 0; i < 100; i++ {
				rel, err := c.Acquire(context.Background(), cl)
				if err != nil {
					if !errors.Is(err, ErrRejected) {
						t.Errorf("unexpected error: %v", err)
					}
					continue
				}
				rel()
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Demand.Inflight != 0 || st.Speculative.Inflight != 0 {
		t.Errorf("inflight after drain = %+v", st)
	}
	// 10 demand workers and 6 speculative workers, 100 tries each: every
	// try must end as exactly one of admitted or rejected.
	if got := st.Demand.Admitted + st.Demand.Rejected; got != 1000 {
		t.Errorf("demand outcomes = %d, want 1000", got)
	}
	if got := st.Speculative.Admitted + st.Speculative.Rejected; got != 600 {
		t.Errorf("speculative outcomes = %d, want 600", got)
	}
}

func TestClassString(t *testing.T) {
	if Demand.String() != "demand" || Speculative.String() != "speculative" {
		t.Error("class names wrong")
	}
	if Class(9).String() == "" {
		t.Error("unknown class empty")
	}
}

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}
