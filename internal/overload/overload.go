// Package overload is the load-shedding layer for the speculative
// dissemination stack. The paper's headline result — speculation cuts
// server load and service time (§3.3, Figs. 5–6) — silently assumes the
// server has capacity to spare for the speculative work; when it does
// not, the pushes and replica pulls speculation generates are exactly the
// load that must be shed first, or the service-time ratio inverts and
// speculation hurts the demand traffic it was meant to help.
//
// Two cooperating mechanisms, both stdlib-only:
//
//   - Controller: priority-aware admission over two traffic classes —
//     Demand (client-initiated GETs) and Speculative (pushes, bundle
//     embeds, replica pulls) — with per-class concurrency limits and a
//     bounded, deadline-aware wait queue. A request whose context
//     deadline would expire before a slot is expected to free is
//     rejected immediately (the caller answers 503 + Retry-After);
//     nothing is ever silently queued past its useful life.
//
//   - Governor: a feedback controller that samples demand-path latency
//     (EWMA) and admission pressure, and climbs a degradation ladder as
//     load rises — first raising the effective speculation threshold
//     T_p and shrinking MaxSize/TopK (the paper's §3.4 fine-tuning
//     knobs, turned automatically), then stopping pushes, then stopping
//     speculation entirely, and only as a last resort shedding
//     lowest-priority demand. Rungs are restored as load drains.
//
// Everything is safe for concurrent use and counted in internal/obs
// (specweb_overload_*), so degradation is observable rather than silent.
package overload

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"specweb/internal/obs"
)

// Class is an admission traffic class.
type Class int

const (
	// Demand is client-initiated work: the document GETs the paper's
	// service-time ratio is measured over.
	Demand Class = iota
	// Speculative is work the system created for itself: pushes, bundle
	// embeds, replica pulls. Always shed before demand.
	Speculative

	numClasses
)

// String names the class for labels and logs.
func (c Class) String() string {
	switch c {
	case Demand:
		return "demand"
	case Speculative:
		return "speculative"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Rejection reasons. All wrap ErrRejected, so callers test one sentinel.
var (
	// ErrRejected is the root of every admission refusal.
	ErrRejected = errors.New("overload: admission rejected")
	// ErrQueueFull means the class's wait queue was at capacity.
	ErrQueueFull = fmt.Errorf("%w: queue full", ErrRejected)
	// ErrDeadline means the caller's context deadline would expire
	// before a slot is expected to free, so queueing would be futile.
	ErrDeadline = fmt.Errorf("%w: deadline before expected slot", ErrRejected)
	// ErrTimeout means the request waited MaxWait without a slot freeing.
	ErrTimeout = fmt.Errorf("%w: queue wait exceeded", ErrRejected)
	// ErrCanceled means the caller's context ended while queued.
	ErrCanceled = fmt.Errorf("%w: canceled while queued", ErrRejected)
)

// Config parameterizes an admission Controller. The zero value takes the
// defaults noted on each field.
type Config struct {
	// DemandSlots and SpecSlots bound concurrent in-flight work per
	// class (defaults 256 and 64 — speculation gets the smaller share).
	DemandSlots int
	SpecSlots   int
	// QueueDepth bounds each class's wait queue (default 128); 0 keeps
	// the default, negative disables queueing (immediate reject).
	QueueDepth int
	// MaxWait caps how long a request may sit queued (default 2s).
	MaxWait time.Duration
	// Clock supplies time for hold-time estimation; nil means time.Now.
	Clock func() time.Time
	// Metrics selects the registry; nil means obs.Default.
	Metrics *obs.Registry
}

// waiter is one queued acquisition. grant is buffered so a release can
// hand over a slot without blocking; abandoned marks waiters that gave up
// (deadline, timeout, cancel) so grants skip them.
type waiter struct {
	grant     chan struct{}
	abandoned bool
}

// classState is the admission state of one traffic class.
type classState struct {
	slots int

	mu       sync.Mutex
	inflight int
	queue    []*waiter
	// holdEWMA estimates how long a slot is held (seconds), feeding the
	// expected-wait calculation behind deadline-aware rejection.
	holdEWMA float64
}

// ClassStats snapshots one class's admission activity.
type ClassStats struct {
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	Queued   int64 `json:"queued"`
	Inflight int   `json:"inflight"`
	Waiting  int   `json:"waiting"`
}

// Stats snapshots the controller.
type Stats struct {
	Demand      ClassStats `json:"demand"`
	Speculative ClassStats `json:"speculative"`
}

// Controller is the priority-aware admission controller.
type Controller struct {
	cfg     Config
	classes [numClasses]*classState

	admitted [numClasses]*obs.Counter
	queued   [numClasses]*obs.Counter
	rejected [numClasses]map[string]*obs.Counter
	inflight [numClasses]*obs.Gauge
	waiting  [numClasses]*obs.Gauge

	counts [numClasses]classCounts
}

// classCounts mirror the per-class counters for snapshot Stats.
type classCounts struct {
	admitted atomic.Int64
	rejected atomic.Int64
	queued   atomic.Int64
}

// NewController builds a controller, registering its metrics.
func NewController(cfg Config) *Controller {
	if cfg.DemandSlots <= 0 {
		cfg.DemandSlots = 256
	}
	if cfg.SpecSlots <= 0 {
		cfg.SpecSlots = 64
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 128
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 2 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	c := &Controller{cfg: cfg}
	const rejections = "specweb_overload_rejected_total"
	const rejectionsHelp = "Admission rejections by class and reason."
	for cl := Class(0); cl < numClasses; cl++ {
		slots := cfg.DemandSlots
		if cl == Speculative {
			slots = cfg.SpecSlots
		}
		c.classes[cl] = &classState{slots: slots}
		lbl := cl.String()
		c.admitted[cl] = cfg.Metrics.Counter("specweb_overload_admitted_total",
			"Requests admitted past the overload controller.", obs.Labels{"class": lbl})
		c.queued[cl] = cfg.Metrics.Counter("specweb_overload_queued_total",
			"Requests that waited in the admission queue before a verdict.", obs.Labels{"class": lbl})
		c.rejected[cl] = map[string]*obs.Counter{}
		for _, reason := range []string{"queue_full", "deadline", "timeout", "canceled"} {
			c.rejected[cl][reason] = cfg.Metrics.Counter(rejections, rejectionsHelp,
				obs.Labels{"class": lbl, "reason": reason})
		}
		c.inflight[cl] = cfg.Metrics.Gauge("specweb_overload_inflight",
			"In-flight requests holding an admission slot.", obs.Labels{"class": lbl})
		c.waiting[cl] = cfg.Metrics.Gauge("specweb_overload_waiting",
			"Requests waiting in the admission queue.", obs.Labels{"class": lbl})
	}
	return c
}

// expectedWaitLocked estimates how long a newly queued request of this
// class would wait: the queue ahead of it drains one slot-hold at a time
// across the class's slots. Callers hold st.mu.
func (st *classState) expectedWaitLocked() time.Duration {
	hold := st.holdEWMA
	if hold <= 0 {
		// No completions observed yet: assume a conservative 10ms hold
		// rather than pretending slots free instantly.
		hold = 0.010
	}
	return time.Duration(hold * float64(len(st.queue)+1) / float64(st.slots) * float64(time.Second))
}

// Acquire admits one unit of work in class cl, blocking in the bounded
// wait queue when all slots are busy. On success the returned release
// must be called exactly once when the work completes. On failure the
// error wraps ErrRejected and the caller should answer 503 with a
// Retry-After of RetryAfter(cl) seconds.
func (c *Controller) Acquire(ctx context.Context, cl Class) (release func(), err error) {
	st := c.classes[cl]
	st.mu.Lock()
	if st.inflight < st.slots {
		st.inflight++
		c.inflight[cl].Set(float64(st.inflight))
		st.mu.Unlock()
		c.countAdmit(cl)
		return c.releaser(cl, c.cfg.Clock()), nil
	}
	if c.cfg.QueueDepth < 0 || len(st.queue) >= c.cfg.QueueDepth {
		st.mu.Unlock()
		c.countReject(cl, "queue_full")
		return nil, ErrQueueFull
	}
	// Deadline-aware rejection: if the caller cannot outlast the
	// expected wait for a slot, fail now instead of queueing a request
	// that is guaranteed to die waiting.
	wait := st.expectedWaitLocked()
	if dl, ok := ctx.Deadline(); ok && c.cfg.Clock().Add(wait).After(dl) {
		st.mu.Unlock()
		c.countReject(cl, "deadline")
		return nil, ErrDeadline
	}
	w := &waiter{grant: make(chan struct{}, 1)}
	st.queue = append(st.queue, w)
	c.waiting[cl].Set(float64(len(st.queue)))
	st.mu.Unlock()
	c.queued[cl].Inc()
	c.counts[cl].queued.Add(1)

	timer := time.NewTimer(c.cfg.MaxWait)
	defer timer.Stop()
	select {
	case <-w.grant:
		// The releasing goroutine transferred its slot to us.
		c.countAdmit(cl)
		return c.releaser(cl, c.cfg.Clock()), nil
	case <-ctx.Done():
		if c.abandon(cl, w) {
			c.countReject(cl, "canceled")
			return nil, ErrCanceled
		}
		// Granted in the race window: give the slot straight back.
		c.countAdmit(cl)
		c.releaser(cl, c.cfg.Clock())()
		return nil, ErrCanceled
	case <-timer.C:
		if c.abandon(cl, w) {
			c.countReject(cl, "timeout")
			return nil, ErrTimeout
		}
		c.countAdmit(cl)
		return c.releaser(cl, c.cfg.Clock()), nil
	}
}

// abandon marks a queued waiter as given up, reporting whether it was
// still unserved (false means a grant won the race).
func (c *Controller) abandon(cl Class, w *waiter) bool {
	st := c.classes[cl]
	st.mu.Lock()
	defer st.mu.Unlock()
	select {
	case <-w.grant:
		return false
	default:
	}
	w.abandoned = true
	// Compact the queue eagerly so abandoned waiters do not pin depth.
	q := st.queue[:0]
	for _, x := range st.queue {
		if !x.abandoned {
			q = append(q, x)
		}
	}
	st.queue = q
	c.waiting[cl].Set(float64(len(st.queue)))
	return true
}

// releaser builds the slot-release closure: hand the slot to the next
// live waiter, or free it. Safe against double calls.
func (c *Controller) releaser(cl Class, acquired time.Time) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			st := c.classes[cl]
			held := c.cfg.Clock().Sub(acquired).Seconds()
			st.mu.Lock()
			if held >= 0 {
				const alpha = 0.3
				if st.holdEWMA == 0 {
					st.holdEWMA = held
				} else {
					st.holdEWMA += alpha * (held - st.holdEWMA)
				}
			}
			for len(st.queue) > 0 {
				w := st.queue[0]
				st.queue = st.queue[1:]
				if w.abandoned {
					continue
				}
				c.waiting[cl].Set(float64(len(st.queue)))
				st.mu.Unlock()
				w.grant <- struct{}{}
				return
			}
			st.inflight--
			c.inflight[cl].Set(float64(st.inflight))
			c.waiting[cl].Set(float64(len(st.queue)))
			st.mu.Unlock()
		})
	}
}

// RetryAfter suggests a Retry-After value in whole seconds for a
// rejected request of class cl: the expected time for the backlog to
// drain, at least 1.
func (c *Controller) RetryAfter(cl Class) int {
	st := c.classes[cl]
	st.mu.Lock()
	wait := st.expectedWaitLocked()
	st.mu.Unlock()
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// Pressure reports the demand class's load as (inflight+waiting)/slots —
// 0 idle, 1 saturated, >1 queueing. The Governor uses it as its
// admission-side signal.
func (c *Controller) Pressure() float64 {
	st := c.classes[Demand]
	st.mu.Lock()
	defer st.mu.Unlock()
	return float64(st.inflight+len(st.queue)) / float64(st.slots)
}

func (c *Controller) countAdmit(cl Class) {
	c.admitted[cl].Inc()
	c.counts[cl].admitted.Add(1)
}

func (c *Controller) countReject(cl Class, reason string) {
	c.rejected[cl][reason].Inc()
	c.counts[cl].rejected.Add(1)
}

// Stats returns a snapshot of both classes.
func (c *Controller) Stats() Stats {
	var out Stats
	for cl := Class(0); cl < numClasses; cl++ {
		st := c.classes[cl]
		s := &c.counts[cl]
		cs := ClassStats{
			Admitted: s.admitted.Load(),
			Rejected: s.rejected.Load(),
			Queued:   s.queued.Load(),
		}
		st.mu.Lock()
		cs.Inflight = st.inflight
		cs.Waiting = len(st.queue)
		st.mu.Unlock()
		if cl == Demand {
			out.Demand = cs
		} else {
			out.Speculative = cs
		}
	}
	return out
}
