package overload

import (
	"sync"
	"testing"
	"time"

	"specweb/internal/obs"
)

// steppedClock is a hand-advanced clock shared by governor tests.
type steppedClock struct {
	mu  sync.Mutex
	now time.Time
}

func newSteppedClock() *steppedClock {
	return &steppedClock{now: time.Date(1996, time.February, 26, 9, 0, 0, 0, time.UTC)}
}

func (c *steppedClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *steppedClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// fakeEngine records the knob settings a governor applies.
type fakeEngine struct {
	mu      sync.Mutex
	tp      float64
	maxSize int64
	topK    int
}

func (f *fakeEngine) SetTp(tp float64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tp = tp
	return nil
}

func (f *fakeEngine) SetLimits(maxSize int64, topK int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.maxSize = maxSize
	f.topK = topK
	return nil
}

func (f *fakeEngine) snapshot() (float64, int64, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tp, f.maxSize, f.topK
}

func newTestGovernor(clk *steppedClock) (*Governor, *fakeEngine) {
	g := NewGovernor(GovernorConfig{
		Target:  10 * time.Millisecond,
		Alpha:   1, // every sample replaces the EWMA: deterministic steps
		Hold:    time.Second,
		Clock:   clk.Now,
		Metrics: obs.NewRegistry(),
	})
	eng := &fakeEngine{}
	g.Bind(eng, Baseline{Tp: 0.25, TopK: 8, MaxSize: 64 << 10})
	return g, eng
}

func TestGovernorClimbsAndDrains(t *testing.T) {
	clk := newSteppedClock()
	g, eng := newTestGovernor(clk)
	if g.Rung() != RungNormal {
		t.Fatalf("initial rung %d", g.Rung())
	}
	// Overloaded samples climb one rung per Hold period, to the top.
	for want := RungNoPush; want <= RungShedDemand; want++ {
		clk.Advance(time.Second)
		g.Observe(100 * time.Millisecond)
		if got := g.Rung(); got != want {
			t.Fatalf("after overload sample %d: rung %d, want %d", want, got, want)
		}
	}
	// Further overload holds at the top rung.
	clk.Advance(time.Second)
	g.Observe(100 * time.Millisecond)
	if got := g.Rung(); got != RungShedDemand {
		t.Fatalf("rung %d past the top", got)
	}
	tp, _, _ := eng.snapshot()
	if tp != 1 {
		t.Errorf("effective Tp at top rung = %v, want 1", tp)
	}
	// Idle samples drain the ladder back down and restore the baseline.
	for want := RungNoSpec; want >= RungNormal; want-- {
		clk.Advance(time.Second)
		g.Observe(time.Millisecond)
		if got := g.Rung(); got != want {
			t.Fatalf("draining: rung %d, want %d", got, want)
		}
	}
	tp, maxSize, topK := eng.snapshot()
	if tp != 0.25 || maxSize != 64<<10 || topK != 8 {
		t.Errorf("baseline not restored: tp %v maxSize %d topK %d", tp, maxSize, topK)
	}
	st := g.Stats()
	if st.MaxRungSeen != RungShedDemand || st.Moves != 6 {
		t.Errorf("stats = %+v, want max rung 3, 6 moves", st)
	}
}

func TestGovernorHoldSuppressesFlapping(t *testing.T) {
	clk := newSteppedClock()
	g, _ := newTestGovernor(clk)
	clk.Advance(time.Second)
	g.Observe(100 * time.Millisecond)
	if g.Rung() != RungNoPush {
		t.Fatalf("rung %d, want 1", g.Rung())
	}
	// More overload inside the hold window must not climb further.
	for i := 0; i < 10; i++ {
		g.Observe(100 * time.Millisecond)
	}
	if g.Rung() != RungNoPush {
		t.Errorf("rung %d inside hold window, want still 1", g.Rung())
	}
}

func TestGovernorKnobsShrinkPerRung(t *testing.T) {
	clk := newSteppedClock()
	g, eng := newTestGovernor(clk)
	clk.Advance(time.Second)
	g.Observe(100 * time.Millisecond) // rung 1
	tp, maxSize, topK := eng.snapshot()
	if tp <= 0.25 || tp >= 1 {
		t.Errorf("rung-1 Tp = %v, want between baseline and 1", tp)
	}
	if maxSize != 32<<10 || topK != 4 {
		t.Errorf("rung-1 limits = %d/%d, want 32768/4", maxSize, topK)
	}
	clk.Advance(time.Second)
	g.Observe(100 * time.Millisecond) // rung 2
	_, maxSize, topK = eng.snapshot()
	if maxSize != 16<<10 || topK != 2 {
		t.Errorf("rung-2 limits = %d/%d, want 16384/2", maxSize, topK)
	}
}

func TestGovernorPressureSignal(t *testing.T) {
	clk := newSteppedClock()
	pressure := 0.0
	var mu sync.Mutex
	g := NewGovernor(GovernorConfig{
		Target: 10 * time.Millisecond,
		Alpha:  1,
		Hold:   time.Second,
		Clock:  clk.Now,
		Pressure: func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return pressure
		},
		Metrics: obs.NewRegistry(),
	})
	// Latency is fine, but admission pressure alone must climb the rung.
	mu.Lock()
	pressure = 2.0
	mu.Unlock()
	clk.Advance(time.Second)
	g.Observe(time.Millisecond)
	if g.Rung() != RungNoPush {
		t.Errorf("rung %d under pure pressure overload, want 1", g.Rung())
	}
}

func TestGovernorTickDrainsWithoutTraffic(t *testing.T) {
	clk := newSteppedClock()
	g, _ := newTestGovernor(clk)
	clk.Advance(time.Second)
	g.Observe(100 * time.Millisecond)
	if g.Rung() != RungNoPush {
		t.Fatalf("rung %d, want 1", g.Rung())
	}
	// No more demand traffic: ticks alone must bring the ladder down.
	clk.Advance(time.Second)
	g.Tick()
	if g.Rung() != RungNormal {
		t.Errorf("rung %d after idle tick, want 0", g.Rung())
	}
}

func TestNilGovernorIsNoOp(t *testing.T) {
	var g *Governor
	g.Observe(time.Second)
	g.Tick()
	g.Bind(&fakeEngine{}, Baseline{})
	if g.Rung() != RungNormal {
		t.Error("nil governor not RungNormal")
	}
	if st := g.Stats(); st.Moves != 0 {
		t.Error("nil governor stats non-zero")
	}
}

func TestRungName(t *testing.T) {
	names := map[int]string{
		RungNormal: "normal", RungNoPush: "no_push",
		RungNoSpec: "no_spec", RungShedDemand: "shed_demand", 9: "unknown",
	}
	for r, want := range names {
		if got := RungName(r); got != want {
			t.Errorf("RungName(%d) = %q, want %q", r, got, want)
		}
	}
}

func TestGovernorTransitionCounters(t *testing.T) {
	clk := newSteppedClock()
	reg := obs.NewRegistry()
	g := NewGovernor(GovernorConfig{
		Target:  10 * time.Millisecond,
		Alpha:   1,
		Hold:    time.Second,
		Clock:   clk.Now,
		Metrics: reg,
	})
	g.Bind(&fakeEngine{}, Baseline{Tp: 0.25, TopK: 8, MaxSize: 64 << 10})

	// Climb all the way up, then drain all the way down, twice.
	for round := 0; round < 2; round++ {
		for i := 0; i < maxRung; i++ {
			clk.Advance(time.Second)
			g.Observe(100 * time.Millisecond)
		}
		for i := 0; i < maxRung; i++ {
			clk.Advance(time.Second)
			g.Observe(time.Millisecond)
		}
	}

	edge := func(from, to int) int64 {
		// Registry.Counter is idempotent, so this reads the live series.
		return reg.Counter("specweb_overload_transitions_total", "",
			obs.Labels{"from": RungName(from), "to": RungName(to)}).Value()
	}
	for r := RungNormal; r < maxRung; r++ {
		if got := edge(r, r+1); got != 2 {
			t.Errorf("transitions %s->%s = %d, want 2", RungName(r), RungName(r+1), got)
		}
		if got := edge(r+1, r); got != 2 {
			t.Errorf("transitions %s->%s = %d, want 2", RungName(r+1), RungName(r), got)
		}
	}
	// No self-loops or rung-skipping edges were ever recorded.
	if got := edge(RungNormal, RungNoSpec); got != 0 {
		t.Errorf("skip edge normal->no_spec = %d, want 0", got)
	}
	if got := edge(RungNoPush, RungNoPush); got != 0 {
		t.Errorf("self edge = %d, want 0", got)
	}
}
