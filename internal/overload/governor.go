package overload

import (
	"sync"
	"time"

	"specweb/internal/obs"
)

// Degradation rungs, in shedding order. Speculative work — the load the
// system created for itself — is always shed before any demand request:
// the paper's Fig. 5 server-load ratio only stays below 1 if the
// speculative surplus is the first thing to go when capacity runs out.
const (
	// RungNormal: full speculation at the configured knobs.
	RungNormal = iota
	// RungNoPush: stop pushing documents (bundle embeds become hints);
	// the engine's effective T_p is raised and MaxSize/TopK shrunk.
	RungNoPush
	// RungNoSpec: stop speculation entirely — plain demand responses,
	// no bundles, no hints, no candidate computation.
	RungNoSpec
	// RungShedDemand: additionally shed lowest-priority demand with
	// 503 + Retry-After. The last resort.
	RungShedDemand

	maxRung = RungShedDemand
)

// RungName names a ladder rung for logs and stats.
func RungName(r int) string {
	switch r {
	case RungNormal:
		return "normal"
	case RungNoPush:
		return "no_push"
	case RungNoSpec:
		return "no_spec"
	case RungShedDemand:
		return "shed_demand"
	}
	return "unknown"
}

// ParseRung maps a rung name (as emitted by RungName, e.g. in the
// Spec-Rung header) back to its ladder index. ok is false for anything
// that is not a known rung — callers use this to reject
// attacker-controlled rung strings before they become label values.
func ParseRung(name string) (int, bool) {
	for r := RungNormal; r <= maxRung; r++ {
		if RungName(r) == name {
			return r, true
		}
	}
	return 0, false
}

// EngineControls is the slice of core.Engine the governor drives: the
// §3.4 fine-tuning knobs made safely mutable at runtime.
type EngineControls interface {
	SetTp(tp float64) error
	SetLimits(maxSize int64, topK int) error
}

// Baseline is the engine's configured operating point, restored when
// load drains back to RungNormal.
type Baseline struct {
	Tp      float64
	TopK    int   // 0 = thresholding (no top-K cap)
	MaxSize int64 // 0 = unbounded
}

// GovernorConfig parameterizes the feedback controller.
type GovernorConfig struct {
	// Target is the demand-path latency the governor defends (default
	// 50ms). The load signal is EWMA(latency)/Target.
	Target time.Duration
	// Alpha weights new latency samples into the EWMA (default 0.2).
	Alpha float64
	// HighWater and LowWater bound the hysteresis band: load above
	// HighWater climbs a rung, below LowWater descends one (defaults
	// 1.0 and 0.5).
	HighWater float64
	LowWater  float64
	// Hold is the minimum time between rung moves (default 2s), so one
	// latency spike cannot slam the ladder up and down.
	Hold time.Duration
	// Pressure optionally supplies an admission-side load signal (e.g.
	// Controller.Pressure); the governor acts on max(latency load,
	// pressure). nil means latency only.
	Pressure func() float64
	// Drift optionally supplies the estimator-drift load signal (e.g.
	// estguard.Guard.DriftLoad, normalized so 1.0 means the drift
	// threshold). When the frozen snapshot no longer matches live
	// traffic, speculation is spending bytes on a stale model — that is
	// load-shaped waste, so the governor folds it into the same
	// max(...) and degrades push→hint→nothing alongside latency
	// pressure. nil means no drift input.
	Drift func() float64
	// Clock supplies time; nil means time.Now. Tests step their own.
	Clock func() time.Time
	// Metrics selects the registry; nil means obs.Default.
	Metrics *obs.Registry
}

// GovernorStats snapshots the governor for /spec/stats and the replay
// overload summary.
type GovernorStats struct {
	Rung        int     `json:"rung"`
	MaxRungSeen int     `json:"max_rung_seen"`
	EffectiveTp float64 `json:"effective_tp"`
	LatencyEWMA float64 `json:"latency_ewma_seconds"`
	Moves       int64   `json:"moves"`
}

// Governor is the adaptive speculation throttle: it watches demand-path
// latency (and optionally admission pressure) and climbs or descends the
// degradation ladder, turning the engine's T_p/TopK/MaxSize knobs on the
// way. A nil *Governor is a valid no-op (always RungNormal).
type Governor struct {
	cfg GovernorConfig

	mu          sync.Mutex
	eng         EngineControls // nil until Bind
	base        Baseline
	ewma        float64 // seconds
	haveSample  bool
	rung        int
	maxRungSeen int
	lastMove    time.Time
	moves       int64
	effTp       float64

	rungG  *obs.Gauge
	loadG  *obs.Gauge
	effTpG *obs.Gauge
	movesC *obs.Counter
	// transC caches the per-transition counters, indexed [from][to];
	// ladder moves are ±1 so only adjacent cells ever populate.
	transC [maxRung + 1][maxRung + 1]*obs.Counter
}

// NewGovernor builds a governor at RungNormal.
func NewGovernor(cfg GovernorConfig) *Governor {
	if cfg.Target <= 0 {
		cfg.Target = 50 * time.Millisecond
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.2
	}
	if cfg.HighWater <= 0 {
		cfg.HighWater = 1.0
	}
	if cfg.LowWater <= 0 || cfg.LowWater >= cfg.HighWater {
		cfg.LowWater = cfg.HighWater / 2
	}
	if cfg.Hold <= 0 {
		cfg.Hold = 2 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Governor{
		cfg:      cfg,
		lastMove: cfg.Clock(),
		rungG: cfg.Metrics.Gauge("specweb_overload_rung",
			"Current degradation-ladder rung (0 normal … 3 shed demand).", nil),
		loadG: cfg.Metrics.Gauge("specweb_overload_load",
			"Governor load signal: max(latency EWMA / target, admission pressure).", nil),
		effTpG: cfg.Metrics.Gauge("specweb_overload_effective_tp",
			"Speculation threshold currently applied by the governor.", nil),
		movesC: cfg.Metrics.Counter("specweb_overload_rung_moves_total",
			"Degradation-ladder rung transitions.", nil),
	}
}

// Bind attaches the engine whose knobs the governor turns and records
// the baseline to restore at RungNormal. Calling Bind on a nil governor
// or with a nil engine is a no-op.
func (g *Governor) Bind(e EngineControls, base Baseline) {
	if g == nil || e == nil {
		return
	}
	g.mu.Lock()
	g.eng = e
	g.base = base
	g.effTp = base.Tp
	g.mu.Unlock()
	g.effTpG.Set(base.Tp)
}

// Rung reports the current ladder rung. Nil-safe: a nil governor is
// always RungNormal.
func (g *Governor) Rung() int {
	if g == nil {
		return RungNormal
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rung
}

// Observe feeds one completed demand request's latency into the control
// loop and re-evaluates the ladder. Nil-safe no-op.
func (g *Governor) Observe(latency time.Duration) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	s := latency.Seconds()
	if s < 0 {
		s = 0
	}
	if !g.haveSample {
		g.ewma = s
		g.haveSample = true
	} else {
		g.ewma += g.cfg.Alpha * (s - g.ewma)
	}
	g.evaluateLocked()
}

// Tick re-evaluates the ladder without a new sample — callers with idle
// periods (no demand traffic) can run it on a timer so a high rung
// drains even when no requests arrive to Observe. Nil-safe no-op.
func (g *Governor) Tick() {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	// With no demand flowing the latency signal decays toward zero:
	// nothing is queueing, so the ladder should come down.
	g.ewma *= 1 - g.cfg.Alpha
	g.evaluateLocked()
}

// evaluateLocked applies the control law: load = max(latency EWMA /
// target, admission pressure, estimator drift); climb on load ≥
// HighWater, descend on load ≤ LowWater, at most one rung per Hold.
// Callers hold g.mu.
func (g *Governor) evaluateLocked() {
	load := g.ewma / g.cfg.Target.Seconds()
	if g.cfg.Pressure != nil {
		if p := g.cfg.Pressure(); p > load {
			load = p
		}
	}
	if g.cfg.Drift != nil {
		if d := g.cfg.Drift(); d > load {
			load = d
		}
	}
	g.loadG.Set(load)
	now := g.cfg.Clock()
	if now.Sub(g.lastMove) < g.cfg.Hold {
		return
	}
	switch {
	case load >= g.cfg.HighWater && g.rung < maxRung:
		g.moveLocked(g.rung+1, now)
	case load <= g.cfg.LowWater && g.rung > RungNormal:
		g.moveLocked(g.rung-1, now)
	}
}

// moveLocked transitions to rung r and applies the engine knobs for it.
// Callers hold g.mu.
func (g *Governor) moveLocked(r int, now time.Time) {
	from := g.rung
	g.rung = r
	if r > g.maxRungSeen {
		g.maxRungSeen = r
	}
	g.lastMove = now
	g.moves++
	g.rungG.Set(float64(r))
	g.movesC.Inc()
	g.transitionCounterLocked(from, r).Inc()
	g.applyKnobsLocked()
}

// transitionCounterLocked returns (creating on first use) the labeled
// counter for one ladder edge, so dashboards can see which direction the
// governor is moving, not just how often. Callers hold g.mu.
func (g *Governor) transitionCounterLocked(from, to int) *obs.Counter {
	if c := g.transC[from][to]; c != nil {
		return c
	}
	c := g.cfg.Metrics.Counter("specweb_overload_transitions_total",
		"Degradation-ladder rung transitions by edge.",
		obs.Labels{"from": RungName(from), "to": RungName(to)})
	g.transC[from][to] = c
	return c
}

// applyKnobsLocked turns the §3.4 knobs for the current rung: T_p climbs
// linearly from the baseline to 1.0 at the top rung, TopK and MaxSize
// halve per rung (from their baselines, or from conservative defaults
// when the baseline is unbounded). Callers hold g.mu.
func (g *Governor) applyKnobsLocked() {
	g.effTp = g.base.Tp + (1-g.base.Tp)*float64(g.rung)/float64(maxRung)
	if g.rung == maxRung {
		g.effTp = 1 // exact, despite float rounding above
	}
	g.effTpG.Set(g.effTp)
	if g.eng == nil {
		return
	}
	if g.rung == RungNormal {
		_ = g.eng.SetTp(g.base.Tp)
		_ = g.eng.SetLimits(g.base.MaxSize, g.base.TopK)
		return
	}
	topK := g.base.TopK
	if topK <= 0 {
		topK = 16 // impose a cap even when the baseline had none
	}
	if topK >>= uint(g.rung); topK < 1 {
		topK = 1
	}
	maxSize := g.base.MaxSize
	if maxSize <= 0 {
		maxSize = 256 << 10
	}
	maxSize >>= uint(g.rung)
	_ = g.eng.SetTp(g.effTp)
	_ = g.eng.SetLimits(maxSize, topK)
}

// Stats returns a snapshot. Nil-safe: a nil governor reports zeros.
func (g *Governor) Stats() GovernorStats {
	if g == nil {
		return GovernorStats{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return GovernorStats{
		Rung:        g.rung,
		MaxRungSeen: g.maxRungSeen,
		EffectiveTp: g.effTp,
		LatencyEWMA: g.ewma,
		Moves:       g.moves,
	}
}
