package cache

import (
	"testing"
	"time"

	"specweb/internal/webgraph"
)

// BenchmarkLRUPutHas measures the simulator's per-request cache work.
func BenchmarkLRUPutHas(b *testing.B) {
	c := New(Forever, 1<<20)
	at := time.Date(1995, time.May, 1, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at = at.Add(time.Second)
		c.Touch(at)
		doc := webgraph.DocID(i % 4096)
		if !c.Has(doc) {
			c.Put(doc, int64(500+i%4000))
		}
	}
}

// BenchmarkSessionPurge measures purge-heavy session churn.
func BenchmarkSessionPurge(b *testing.B) {
	c := New(time.Minute, 0)
	at := time.Date(1995, time.May, 1, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at = at.Add(2 * time.Minute) // every touch starts a new session
		c.Touch(at)
		c.Put(webgraph.DocID(i%64), 1000)
	}
}

// BenchmarkDigest measures cooperative-digest export.
func BenchmarkDigest(b *testing.B) {
	c := New(Forever, 0)
	c.Touch(time.Now())
	for i := 0; i < 500; i++ {
		c.Put(webgraph.DocID(i), 1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if docs := c.Docs(); len(docs) != 500 {
			b.Fatal("digest wrong")
		}
	}
}
