package cache

import (
	"testing"
	"testing/quick"
	"time"

	"specweb/internal/webgraph"
)

var t0 = time.Date(1995, time.February, 1, 9, 0, 0, 0, time.UTC)

func TestNullCache(t *testing.T) {
	c := New(0, 0)
	c.Touch(t0)
	c.Put(1, 100)
	if c.Has(1) || c.Len() != 0 || c.Bytes() != 0 || c.Docs() != nil {
		t.Error("null cache cached something")
	}
}

func TestSessionPurge(t *testing.T) {
	c := New(60*time.Minute, 0)
	c.Touch(t0)
	c.Put(1, 100)
	c.Touch(t0.Add(30 * time.Minute))
	if !c.Has(1) {
		t.Error("document purged within session")
	}
	// Gap of exactly the timeout ends the session.
	c.Touch(t0.Add(90 * time.Minute))
	if c.Has(1) || c.Len() != 0 || c.Bytes() != 0 {
		t.Error("session not purged after timeout gap")
	}
}

func TestForeverNeverPurges(t *testing.T) {
	c := New(Forever, 0)
	c.Touch(t0)
	c.Put(1, 100)
	c.Touch(t0.Add(1000 * time.Hour))
	if !c.Has(1) {
		t.Error("infinite cache purged")
	}
}

func TestBytesAndLen(t *testing.T) {
	c := New(Forever, 0)
	c.Touch(t0)
	c.Put(1, 100)
	c.Put(2, 50)
	if c.Len() != 2 || c.Bytes() != 150 {
		t.Errorf("len=%d bytes=%d", c.Len(), c.Bytes())
	}
	// Re-put with a new size replaces, not duplicates.
	c.Put(1, 80)
	if c.Len() != 2 || c.Bytes() != 130 {
		t.Errorf("after resize: len=%d bytes=%d", c.Len(), c.Bytes())
	}
}

func TestDocsSorted(t *testing.T) {
	c := New(Forever, 0)
	c.Touch(t0)
	for _, id := range []webgraph.DocID{5, 1, 3} {
		c.Put(id, 10)
	}
	docs := c.Docs()
	if len(docs) != 3 || docs[0] != 1 || docs[1] != 3 || docs[2] != 5 {
		t.Errorf("docs = %v", docs)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Forever, 250)
	c.Touch(t0)
	c.Put(1, 100)
	c.Put(2, 100)
	// Touch doc 1 so doc 2 is the LRU victim.
	if !c.Has(1) {
		t.Fatal("doc 1 missing")
	}
	c.Put(3, 100) // 300 > 250: evict LRU (doc 2)
	if c.Has(2) {
		t.Error("LRU victim not evicted")
	}
	if !c.Has(1) || !c.Has(3) {
		t.Error("wrong eviction victim")
	}
	if c.Bytes() > 250 {
		t.Errorf("bytes %d exceed capacity", c.Bytes())
	}
}

func TestOversizedDocSkipped(t *testing.T) {
	c := New(Forever, 100)
	c.Touch(t0)
	c.Put(1, 50)
	c.Put(2, 1000) // larger than capacity: skip
	if c.Has(2) {
		t.Error("oversized document cached")
	}
	if !c.Has(1) {
		t.Error("oversized insert evicted existing contents")
	}
}

func TestNegativeSizeClamped(t *testing.T) {
	c := New(Forever, 0)
	c.Touch(t0)
	c.Put(1, -5)
	if c.Bytes() != 0 || !c.Has(1) {
		t.Errorf("negative size handling: bytes=%d has=%v", c.Bytes(), c.Has(1))
	}
}

func TestSessionKeepsAliveOnActivity(t *testing.T) {
	c := New(10*time.Minute, 0)
	at := t0
	c.Touch(at)
	c.Put(1, 10)
	// Nine touches 9 minutes apart: session never expires.
	for i := 0; i < 9; i++ {
		at = at.Add(9 * time.Minute)
		c.Touch(at)
	}
	if !c.Has(1) {
		t.Error("active session expired")
	}
}

// Property: Bytes always equals the sum of cached document sizes, never
// exceeds capacity (when bounded), and Has agrees with Docs.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(ops []uint16, capRaw uint16) bool {
		capacity := int64(capRaw%2000) + 100
		c := New(Forever, capacity)
		at := t0
		sizes := map[webgraph.DocID]int64{}
		for _, op := range ops {
			at = at.Add(time.Second)
			c.Touch(at)
			doc := webgraph.DocID(op % 20)
			size := int64(op%300) + 1
			if op%3 == 0 {
				c.Has(doc)
			} else {
				c.Put(doc, size)
				sizes[doc] = size
			}
		}
		var sum int64
		for _, d := range c.Docs() {
			if !c.Has(d) {
				return false
			}
			sum += sizes[d]
		}
		if sum != c.Bytes() {
			return false
		}
		return c.Bytes() <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
