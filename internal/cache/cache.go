// Package cache implements the client-side caching models of §3.2: "a
// document is cached after it is first retrieved (as a result of a
// client-initiated request or as a result of a server-initiated speculative
// service), and remains in the cache until it is purged at the end of the
// session."
//
// The paper sweeps the session semantics through SessionTimeout: ∞ emulates
// an infinite multi-session cache, 60 minutes an infinite single-session
// cache, and 0 no cache at all. The fine-tuning study of §3.4 also asks
// about modest finite caches, which the LRU capacity bound here provides.
package cache

import (
	"container/list"
	"math"
	"sort"
	"sync"
	"time"

	"specweb/internal/obs"
	"specweb/internal/webgraph"
)

// cacheMetrics aggregates over every live cache instance (replays and
// simulations build one cache per client, so per-instance series would
// explode; the paper's quantities are fleet totals anyway). Registered
// lazily in obs.Default on first cache construction.
type cacheMetrics struct {
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	purges    *obs.Counter
	bytes     *obs.Gauge
	docs      *obs.Gauge
}

var (
	metricsOnce sync.Once
	met         cacheMetrics
)

func metrics() *cacheMetrics {
	metricsOnce.Do(func() {
		met = cacheMetrics{
			hits:      obs.Default.Counter("specweb_cache_hits_total", "Client-cache lookups that hit.", nil),
			misses:    obs.Default.Counter("specweb_cache_misses_total", "Client-cache lookups that missed.", nil),
			evictions: obs.Default.Counter("specweb_cache_evictions_total", "Documents evicted by the LRU capacity bound.", nil),
			purges:    obs.Default.Counter("specweb_cache_purges_total", "End-of-session cache purges.", nil),
			bytes:     obs.Default.Gauge("specweb_cache_bytes", "Bytes currently cached across all live caches.", nil),
			docs:      obs.Default.Gauge("specweb_cache_docs", "Documents currently cached across all live caches.", nil),
		}
	})
	return &met
}

// Forever is the SessionTimeout value meaning "never purge" (the paper's
// SessionTimeout = ∞).
const Forever = time.Duration(math.MaxInt64)

// Cache is one client's document cache. Callers must call Touch with the
// current time before Has/Put so session expiry can take effect; times must
// be non-decreasing across calls.
type Cache interface {
	// Touch advances the cache's clock; a gap of SessionTimeout or more
	// since the previous Touch ends the session and purges the cache.
	Touch(at time.Time)
	// Has reports whether the document is cached.
	Has(doc webgraph.DocID) bool
	// Put inserts a document of the given size.
	Put(doc webgraph.DocID, size int64)
	// Len returns the number of cached documents.
	Len() int
	// Bytes returns the cached byte total.
	Bytes() int64
	// Docs returns the cached document IDs in ascending order — the
	// digest a cooperative client piggybacks on its requests (§3.4).
	Docs() []webgraph.DocID
}

// New builds a cache for the given session timeout and capacity:
//
//   - timeout <= 0: no cache (every request its own session);
//   - timeout == Forever: multi-session cache, never purged;
//   - otherwise: purged after timeout of inactivity.
//
// capacity <= 0 means unbounded; otherwise least-recently-used documents
// are evicted to keep Bytes() <= capacity.
func New(timeout time.Duration, capacity int64) Cache {
	if timeout <= 0 {
		return nullCache{}
	}
	return &lruCache{timeout: timeout, capacity: capacity, met: metrics(),
		entries: make(map[webgraph.DocID]*list.Element), order: list.New()}
}

// nullCache is the SessionTimeout = 0 client: nothing is ever cached.
type nullCache struct{}

func (nullCache) Touch(time.Time)           {}
func (nullCache) Has(webgraph.DocID) bool   { return false }
func (nullCache) Put(webgraph.DocID, int64) {}
func (nullCache) Len() int                  { return 0 }
func (nullCache) Bytes() int64              { return 0 }
func (nullCache) Docs() []webgraph.DocID    { return nil }

type lruEntry struct {
	doc  webgraph.DocID
	size int64
}

type lruCache struct {
	timeout  time.Duration
	capacity int64
	met      *cacheMetrics

	last    time.Time
	started bool
	bytes   int64
	entries map[webgraph.DocID]*list.Element
	order   *list.List // front = most recently used
}

func (c *lruCache) Touch(at time.Time) {
	if c.started && c.timeout != Forever && at.Sub(c.last) >= c.timeout {
		c.purge()
	}
	c.last = at
	c.started = true
}

func (c *lruCache) purge() {
	c.met.purges.Inc()
	c.met.bytes.Add(-float64(c.bytes))
	c.met.docs.Add(-float64(c.order.Len()))
	c.entries = make(map[webgraph.DocID]*list.Element)
	c.order.Init()
	c.bytes = 0
}

func (c *lruCache) Has(doc webgraph.DocID) bool {
	e, ok := c.entries[doc]
	if ok {
		c.order.MoveToFront(e)
		c.met.hits.Inc()
	} else {
		c.met.misses.Inc()
	}
	return ok
}

func (c *lruCache) Put(doc webgraph.DocID, size int64) {
	if size < 0 {
		size = 0
	}
	// A document larger than the whole capacity can never fit; caching it
	// would evict everything for nothing. If a resize pushes a cached
	// document over the capacity, it leaves the cache.
	if c.capacity > 0 && size > c.capacity {
		if e, ok := c.entries[doc]; ok {
			ent := e.Value.(*lruEntry)
			c.order.Remove(e)
			delete(c.entries, doc)
			c.bytes -= ent.size
			c.met.bytes.Add(-float64(ent.size))
			c.met.docs.Add(-1)
		}
		return
	}
	if e, ok := c.entries[doc]; ok {
		ent := e.Value.(*lruEntry)
		c.bytes += size - ent.size
		c.met.bytes.Add(float64(size - ent.size))
		ent.size = size
		c.order.MoveToFront(e)
	} else {
		e := c.order.PushFront(&lruEntry{doc: doc, size: size})
		c.entries[doc] = e
		c.bytes += size
		c.met.bytes.Add(float64(size))
		c.met.docs.Add(1)
	}
	if c.capacity > 0 {
		for c.bytes > c.capacity && c.order.Len() > 1 {
			c.evictOldest()
		}
	}
}

func (c *lruCache) evictOldest() {
	e := c.order.Back()
	if e == nil {
		return
	}
	ent := e.Value.(*lruEntry)
	c.order.Remove(e)
	delete(c.entries, ent.doc)
	c.bytes -= ent.size
	c.met.evictions.Inc()
	c.met.bytes.Add(-float64(ent.size))
	c.met.docs.Add(-1)
}

func (c *lruCache) Len() int     { return c.order.Len() }
func (c *lruCache) Bytes() int64 { return c.bytes }

func (c *lruCache) Docs() []webgraph.DocID {
	out := make([]webgraph.DocID, 0, len(c.entries))
	for id := range c.entries {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
