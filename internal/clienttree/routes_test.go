package clienttree

import (
	"testing"
	"time"

	"specweb/internal/netsim"
	"specweb/internal/stats"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// handTraceFor builds a trace with n requests for doc 1 (size 100) per
// client.
func handTraceFor(counts map[string]int) *trace.Trace {
	tr := &trace.Trace{}
	at := time.Date(1995, time.March, 1, 0, 0, 0, 0, time.UTC)
	for c, n := range counts {
		for i := 0; i < n; i++ {
			tr.Requests = append(tr.Requests, trace.Request{
				Time: at, Client: trace.ClientID(c), Doc: 1, Size: 100,
			})
		}
	}
	return tr
}

func TestFromRoutesBasic(t *testing.T) {
	routes := []Route{
		{Client: "a", Hops: []string{"r1", "g1"}},
		{Client: "b", Hops: []string{"r1", "g1"}},
		{Client: "c", Hops: []string{"r1", "g2"}},
		{Client: "d", Hops: []string{"r2"}},
		{Client: "e", Hops: nil}, // directly attached
	}
	topo, err := FromRoutes(routes)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes: root + r1 + g1 + g2 + r2 + 5 clients = 10.
	if topo.NumNodes() != 10 {
		t.Fatalf("nodes = %d, want 10", topo.NumNodes())
	}
	// a and b share a parent (g1); c shares r1 with them but not g1.
	na, _ := topo.ClientNode("a")
	nb, _ := topo.ClientNode("b")
	nc, _ := topo.ClientNode("c")
	if topo.Node(na).Parent != topo.Node(nb).Parent {
		t.Error("shared route prefix not merged")
	}
	if topo.Node(na).Parent == topo.Node(nc).Parent {
		t.Error("distinct last hops merged")
	}
	if topo.Node(na).Depth != 3 {
		t.Errorf("a at depth %d, want 3", topo.Node(na).Depth)
	}
	ne, _ := topo.ClientNode("e")
	if topo.Node(ne).Depth != 1 {
		t.Errorf("direct client at depth %d, want 1", topo.Node(ne).Depth)
	}
	// Grandparent of a and parent-of-parent of c coincide (r1).
	ga := topo.Node(topo.Node(na).Parent).Parent
	gc := topo.Node(nc).Parent
	if topo.Node(gc).Parent != ga && gc != ga {
		if topo.Node(gc).Parent != ga {
			t.Error("r1 prefix not shared between g1 and g2 branches")
		}
	}
}

func TestFromRoutesErrors(t *testing.T) {
	if _, err := FromRoutes(nil); err == nil {
		t.Error("empty routes accepted")
	}
	if _, err := FromRoutes([]Route{{Client: ""}}); err == nil {
		t.Error("empty client accepted")
	}
	if _, err := FromRoutes([]Route{
		{Client: "a"}, {Client: "a"},
	}); err == nil {
		t.Error("duplicate client accepted")
	}
	if _, err := FromRoutes([]Route{{Client: "a", Hops: []string{""}}}); err == nil {
		t.Error("empty hop accepted")
	}
}

func TestRoutesRoundTrip(t *testing.T) {
	orig, err := netsim.Generate(netsim.TinyConfig(), stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	routes := RoutesFromTopology(orig)
	rebuilt, err := FromRoutes(routes)
	if err != nil {
		t.Fatal(err)
	}
	// Same client set, same depths, same node count (tree shape identical;
	// kinds collapse to Gateway).
	if rebuilt.NumNodes() != orig.NumNodes() {
		t.Errorf("rebuilt %d nodes, original %d", rebuilt.NumNodes(), orig.NumNodes())
	}
	for _, c := range orig.Clients() {
		no, ok1 := orig.ClientNode(c)
		nr, ok2 := rebuilt.ClientNode(c)
		if !ok1 || !ok2 {
			t.Fatalf("client %s missing after round trip", c)
		}
		if orig.Node(no).Depth != rebuilt.Node(nr).Depth {
			t.Errorf("client %s depth %d → %d", c, orig.Node(no).Depth, rebuilt.Node(nr).Depth)
		}
	}
}

// The practical point: a tree built purely from routes supports the same
// demand aggregation and proxy placement as the generated topology.
func TestFromRoutesSupportsPlacement(t *testing.T) {
	routes := []Route{
		{Client: "a", Hops: []string{"r1", "g1"}},
		{Client: "b", Hops: []string{"r1", "g1"}},
		{Client: "c", Hops: []string{"r2"}},
	}
	topo, err := FromRoutes(routes)
	if err != nil {
		t.Fatal(err)
	}
	tr := handTraceFor(map[string]int{"a": 5, "b": 5, "c": 1})
	d, err := BuildDemand(tr, topo, map[webgraph.DocID]bool{1: true})
	if err != nil {
		t.Fatal(err)
	}
	proxies := d.GreedyPlace(1)
	if len(proxies) != 1 {
		t.Fatalf("placed %d proxies", len(proxies))
	}
	// The best proxy serves the heavy a/b branch at its deepest shared
	// node (g1).
	na, _ := topo.ClientNode("a")
	if proxies[0] != topo.Node(na).Parent {
		t.Errorf("proxy at node %d, want a/b's gateway %d", proxies[0], topo.Node(na).Parent)
	}
}
