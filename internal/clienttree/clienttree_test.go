package clienttree

import (
	"testing"
	"time"

	"specweb/internal/netsim"
	"specweb/internal/stats"
	"specweb/internal/synth"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

var t0 = time.Date(1995, time.March, 1, 0, 0, 0, 0, time.UTC)

// handTopology builds a fixed small tree:
//
//	root(0) ── gwA(1) ── ca1(2), ca2(3)
//	       └── gwB(4) ── cb1(5)
func handTopology(t *testing.T) *netsim.Topology {
	t.Helper()
	topo := &netsim.Topology{Nodes: []netsim.Node{
		{ID: 0, Parent: netsim.NoNode, Kind: netsim.Root, Depth: 0, Children: []netsim.NodeID{1, 4}, Region: -1},
		{ID: 1, Parent: 0, Kind: netsim.Gateway, Depth: 1, Children: []netsim.NodeID{2, 3}, Region: 0},
		{ID: 2, Parent: 1, Kind: netsim.Client, Depth: 2, Client: "ca1", Region: 0},
		{ID: 3, Parent: 1, Kind: netsim.Client, Depth: 2, Client: "ca2", Region: 0},
		{ID: 4, Parent: 0, Kind: netsim.Gateway, Depth: 1, Children: []netsim.NodeID{5}, Region: 1},
		{ID: 5, Parent: 4, Kind: netsim.Client, Depth: 2, Client: "cb1", Region: 1},
	}}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	return topo
}

func handTrace() *trace.Trace {
	tr := &trace.Trace{}
	add := func(c string, doc webgraph.DocID, size int64, n int) {
		for i := 0; i < n; i++ {
			tr.Requests = append(tr.Requests, trace.Request{
				Time: t0, Client: trace.ClientID(c), Doc: doc, Size: size,
			})
		}
	}
	add("ca1", 1, 100, 5) // replicated doc
	add("ca2", 1, 100, 3)
	add("ca2", 2, 50, 2) // non-replicated
	add("cb1", 1, 100, 1)
	return tr
}

func handDemand(t *testing.T) *Demand {
	t.Helper()
	d, err := BuildDemand(handTrace(), handTopology(t), map[webgraph.DocID]bool{1: true})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuildDemand(t *testing.T) {
	d := handDemand(t)
	if d.ReplicatedBytes["ca1"] != 500 || d.ReplicatedBytes["ca2"] != 300 || d.ReplicatedBytes["cb1"] != 100 {
		t.Errorf("replicated bytes = %v", d.ReplicatedBytes)
	}
	if d.OtherBytes["ca2"] != 100 {
		t.Errorf("other bytes = %v", d.OtherBytes)
	}
	// NodeBytes: everything flows through the root (1000 total); gwA sees
	// ca1+ca2 = 900; gwB sees 100.
	if d.NodeBytes[0] != 1000 || d.NodeBytes[1] != 900 || d.NodeBytes[4] != 100 {
		t.Errorf("node bytes = %v", d.NodeBytes)
	}
}

func TestBuildDemandRejectsUnknownClient(t *testing.T) {
	tr := &trace.Trace{Requests: []trace.Request{
		{Time: t0, Client: "ghost", Doc: 1, Size: 1},
	}}
	if _, err := BuildDemand(tr, handTopology(t), nil); err == nil {
		t.Error("unknown client accepted")
	}
	if _, err := BuildDemand(tr, nil, nil); err == nil {
		t.Error("nil topology accepted")
	}
}

func TestBaselineByteHops(t *testing.T) {
	d := handDemand(t)
	// All clients at depth 2: (500+300+100+100) × 2 = 2000.
	if got := d.BaselineByteHops(); got != 2000 {
		t.Errorf("baseline = %d, want 2000", got)
	}
}

func TestServiceByteHops(t *testing.T) {
	d := handDemand(t)
	// Proxy at gwA(1): ca1/ca2 replicated served at 1 hop; cb1 replicated
	// still 2 hops; other bytes always 2 hops.
	// = (500+300)×1 + 100×2 + 100×2 = 800 + 200 + 200 = 1200.
	if got := d.ServiceByteHops([]netsim.NodeID{1}); got != 1200 {
		t.Errorf("service cost with gwA = %d, want 1200", got)
	}
	if got := d.Savings([]netsim.NodeID{1}); got != 800 {
		t.Errorf("savings = %d, want 800", got)
	}
	// No proxies: equals baseline.
	if got := d.ServiceByteHops(nil); got != 2000 {
		t.Errorf("no-proxy service cost = %d", got)
	}
}

func TestGreedyPlaceOrder(t *testing.T) {
	d := handDemand(t)
	// First proxy must be gwA (saves 800 vs gwB's 100).
	p1 := d.GreedyPlace(1)
	if len(p1) != 1 || p1[0] != 1 {
		t.Errorf("GreedyPlace(1) = %v, want [1]", p1)
	}
	p2 := d.GreedyPlace(2)
	if len(p2) != 2 || p2[0] != 1 || p2[1] != 4 {
		t.Errorf("GreedyPlace(2) = %v, want [1 4]", p2)
	}
	// k beyond useful proxies stops early.
	p9 := d.GreedyPlace(9)
	if len(p9) != 2 {
		t.Errorf("GreedyPlace(9) = %v, want 2 proxies", p9)
	}
	if d.GreedyPlace(0) != nil {
		t.Error("GreedyPlace(0) should be nil")
	}
}

func TestGreedySavingsMonotone(t *testing.T) {
	d := handDemand(t)
	s1 := d.Savings(d.GreedyPlace(1))
	s2 := d.Savings(d.GreedyPlace(2))
	if s2 < s1 {
		t.Errorf("savings decreased with more proxies: %d then %d", s1, s2)
	}
}

func TestHeaviestNodes(t *testing.T) {
	d := handDemand(t)
	top := d.HeaviestNodes(1)
	if len(top) != 1 || top[0] != 1 {
		t.Errorf("heaviest = %v, want [1] (gwA carries 900)", top)
	}
	all := d.HeaviestNodes(99)
	if len(all) != 2 {
		t.Errorf("heaviest(99) returned %d nodes, want all 2 internal", len(all))
	}
}

// Integration: on a generated topology and synthetic trace, greedy placement
// should strictly beat both no proxies and a random placement of equal size.
func TestGreedyPlacementIntegration(t *testing.T) {
	site, err := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := netsim.Generate(netsim.TinyConfig(), stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := synth.DefaultConfig(site, topo)
	cfg.Days = 10
	cfg.SessionsPerDay = 50
	res, err := synth.Generate(cfg, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}

	// Replicate the top few popular docs (by size budget).
	counts := map[webgraph.DocID]int64{}
	for i := range res.Trace.Requests {
		counts[res.Trace.Requests[i].Doc]++
	}
	replicated := map[webgraph.DocID]bool{}
	var best webgraph.DocID
	var bestN int64
	for id, n := range counts {
		if n > bestN {
			best, bestN = id, n
		}
	}
	replicated[best] = true

	d, err := BuildDemand(res.Trace, topo, replicated)
	if err != nil {
		t.Fatal(err)
	}
	proxies := d.GreedyPlace(3)
	if len(proxies) == 0 {
		t.Fatal("no proxies placed")
	}
	greedy := d.Savings(proxies)
	if greedy <= 0 {
		t.Fatal("greedy placement saved nothing")
	}
	// Compare against placing the same number of proxies at the first
	// internal nodes (an arbitrary placement).
	arbitrary := d.Topo.InternalNodes()[:len(proxies)]
	if arb := d.Savings(arbitrary); greedy < arb {
		t.Errorf("greedy savings %d < arbitrary placement %d", greedy, arb)
	}
}
