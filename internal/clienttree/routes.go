package clienttree

import (
	"fmt"

	"specweb/internal/netsim"
	"specweb/internal/trace"
)

// Route is one client's path from the home server down to itself, as the
// IP record-route option would report it: a sequence of router identifiers
// starting at the server's side and ending at the client. The paper ([6],
// §2.1) built cs-www.bu.edu's 34,000-node clientele tree this way.
type Route struct {
	Client trace.ClientID
	// Hops are the intermediate router identifiers, server side first,
	// excluding the server itself and the client.
	Hops []string
}

// FromRoutes merges per-client routes into a clientele tree: shared route
// prefixes become shared internal nodes (candidate proxy locations), each
// client a leaf under its last hop. Routes must be non-empty per client and
// client IDs unique.
func FromRoutes(routes []Route) (*netsim.Topology, error) {
	if len(routes) == 0 {
		return nil, fmt.Errorf("clienttree: no routes")
	}
	t := &netsim.Topology{}
	t.Nodes = append(t.Nodes, netsim.Node{
		ID: 0, Parent: netsim.NoNode, Kind: netsim.Root, Depth: 0, Region: -1,
	})
	// children[parent][label] is the existing internal node for a hop.
	children := map[netsim.NodeID]map[string]netsim.NodeID{}
	seen := map[trace.ClientID]bool{}
	add := func(parent netsim.NodeID, kind netsim.Kind, client trace.ClientID) netsim.NodeID {
		id := netsim.NodeID(len(t.Nodes))
		t.Nodes = append(t.Nodes, netsim.Node{
			ID: id, Parent: parent, Kind: kind,
			Depth: t.Nodes[parent].Depth + 1, Client: client, Region: -1,
		})
		t.Nodes[parent].Children = append(t.Nodes[parent].Children, id)
		return id
	}
	for _, r := range routes {
		if r.Client == "" {
			return nil, fmt.Errorf("clienttree: route with empty client")
		}
		if seen[r.Client] {
			return nil, fmt.Errorf("clienttree: duplicate route for client %q", r.Client)
		}
		seen[r.Client] = true
		cur := netsim.NodeID(0)
		for _, hop := range r.Hops {
			if hop == "" {
				return nil, fmt.Errorf("clienttree: route for %q has an empty hop", r.Client)
			}
			m := children[cur]
			if m == nil {
				m = make(map[string]netsim.NodeID)
				children[cur] = m
			}
			next, ok := m[hop]
			if !ok {
				next = add(cur, netsim.Gateway, "")
				m[hop] = next
			}
			cur = next
		}
		add(cur, netsim.Client, r.Client)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("clienttree: merged tree invalid: %w", err)
	}
	return t, nil
}

// RoutesFromTopology exports every client's route from an existing
// topology — the synthetic stand-in for collecting record-route data. Round-
// tripping through FromRoutes reproduces the tree shape (node kinds other
// than Root/Gateway/Client are not preserved; hop labels are node IDs).
func RoutesFromTopology(t *netsim.Topology) []Route {
	var routes []Route
	for _, c := range t.Clients() {
		leaf, _ := t.ClientNode(c)
		path := t.PathToRoot(leaf)
		// path is leaf..root; hops are the interior nodes in root→leaf
		// order.
		var hops []string
		for i := len(path) - 2; i >= 1; i-- {
			hops = append(hops, fmt.Sprintf("n%d", path[i]))
		}
		routes = append(routes, Route{Client: c, Hops: hops})
	}
	return routes
}
