// Package clienttree builds the paper's "clientele tree" view of a server's
// demand (§2.1): the network is a tree rooted at the home server, clients
// are leaves, and internal nodes are candidate locations for service
// proxies. The paper built this tree for cs-www.bu.edu from the IP
// record-route option and then chose proxy locations by analyzing client
// access patterns from the server logs; here the tree comes from a
// netsim.Topology and the access patterns from a trace.Trace.
//
// The core operation is proxy placement: given the set of documents that
// would be disseminated (the same replica set at every proxy, as in §2.4's
// simulation), choose the k internal nodes that maximize the byte×hop
// traffic the proxies absorb. Placement is greedy — each round adds the
// node with the largest marginal saving given the proxies already chosen —
// the standard (1-1/e) approximation for this submodular objective.
package clienttree

import (
	"fmt"
	"sort"

	"specweb/internal/netsim"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// Demand is the per-client demand aggregation of one trace over one
// topology, split into bytes that would be replicated on proxies and bytes
// that would not.
type Demand struct {
	Topo *netsim.Topology

	// ReplicatedBytes[c] is the total size of client c's requests for
	// documents in the replica set; OtherBytes[c] the rest.
	ReplicatedBytes map[trace.ClientID]int64
	OtherBytes      map[trace.ClientID]int64

	// NodeBytes[n] is the total requested bytes (replicated + other)
	// whose path to the root passes through node n — the per-node demand
	// view of the clientele tree.
	NodeBytes map[netsim.NodeID]int64
}

// BuildDemand aggregates the trace. Every trace client must exist in the
// topology; a missing client is a wiring error between the trace and the
// topology and is reported rather than skipped.
func BuildDemand(tr *trace.Trace, topo *netsim.Topology, replicated map[webgraph.DocID]bool) (*Demand, error) {
	if topo == nil {
		return nil, fmt.Errorf("clienttree: nil topology")
	}
	d := &Demand{
		Topo:            topo,
		ReplicatedBytes: make(map[trace.ClientID]int64),
		OtherBytes:      make(map[trace.ClientID]int64),
		NodeBytes:       make(map[netsim.NodeID]int64),
	}
	for i := range tr.Requests {
		r := &tr.Requests[i]
		leaf, ok := topo.ClientNode(r.Client)
		if !ok {
			return nil, fmt.Errorf("clienttree: trace client %q not in topology", r.Client)
		}
		if replicated[r.Doc] {
			d.ReplicatedBytes[r.Client] += r.Size
		} else {
			d.OtherBytes[r.Client] += r.Size
		}
		for _, n := range topo.PathToRoot(leaf) {
			d.NodeBytes[n] += r.Size
		}
	}
	return d, nil
}

// BaselineByteHops returns the total bytes×hops cost of serving every
// request from the root, with no proxies.
func (d *Demand) BaselineByteHops() int64 {
	var total int64
	for c, b := range d.ReplicatedBytes {
		leaf, _ := d.Topo.ClientNode(c)
		total += b * int64(d.Topo.HopsToRoot(leaf))
	}
	for c, b := range d.OtherBytes {
		leaf, _ := d.Topo.ClientNode(c)
		total += b * int64(d.Topo.HopsToRoot(leaf))
	}
	return total
}

// ServiceByteHops returns the bytes×hops of serving the demand when the
// given proxies hold the replica set: a request for a replicated document is
// served by the deepest chosen proxy on the client's path to the root; all
// other requests go to the root. Dissemination (push) traffic is not
// included — the dissemination simulator accounts for it separately.
func (d *Demand) ServiceByteHops(proxies []netsim.NodeID) int64 {
	chosen := make(map[netsim.NodeID]bool, len(proxies))
	for _, p := range proxies {
		chosen[p] = true
	}
	var total int64
	for c, b := range d.ReplicatedBytes {
		leaf, _ := d.Topo.ClientNode(c)
		hops := 0
		for _, n := range d.Topo.PathToRoot(leaf) {
			if chosen[n] || n == d.Topo.Root() {
				break
			}
			hops++
		}
		total += b * int64(hops)
	}
	for c, b := range d.OtherBytes {
		leaf, _ := d.Topo.ClientNode(c)
		total += b * int64(d.Topo.HopsToRoot(leaf))
	}
	return total
}

// Savings returns baseline minus service cost for the given proxy set.
func (d *Demand) Savings(proxies []netsim.NodeID) int64 {
	return d.BaselineByteHops() - d.ServiceByteHops(proxies)
}

// GreedyPlace chooses up to k internal nodes as proxies, maximizing
// byte×hop savings for the replicated demand. It returns fewer than k nodes
// when additional proxies cannot save anything (no remaining demand).
func (d *Demand) GreedyPlace(k int) []netsim.NodeID {
	if k <= 0 {
		return nil
	}
	candidates := d.Topo.InternalNodes()

	// serviceDepth[c] is the depth of the deepest chosen proxy on c's
	// path (0 = root service).
	serviceDepth := make(map[trace.ClientID]int, len(d.ReplicatedBytes))

	// clientsUnder[v] caches the clients with replicated demand in v's
	// subtree.
	clientsUnder := make(map[netsim.NodeID][]trace.ClientID, len(candidates))
	for c := range d.ReplicatedBytes {
		leaf, _ := d.Topo.ClientNode(c)
		for _, n := range d.Topo.PathToRoot(leaf) {
			if n == d.Topo.Root() || n == leaf {
				continue
			}
			clientsUnder[n] = append(clientsUnder[n], c)
		}
	}

	var chosen []netsim.NodeID
	chosenSet := make(map[netsim.NodeID]bool)
	for round := 0; round < k; round++ {
		var bestNode netsim.NodeID = netsim.NoNode
		var bestGain int64
		for _, v := range candidates {
			if chosenSet[v] {
				continue
			}
			vDepth := d.Topo.Node(v).Depth
			var gain int64
			for _, c := range clientsUnder[v] {
				if vDepth > serviceDepth[c] {
					gain += d.ReplicatedBytes[c] * int64(vDepth-serviceDepth[c])
				}
			}
			if gain > bestGain || (gain == bestGain && gain > 0 && bestNode != netsim.NoNode && v < bestNode) {
				bestGain = gain
				bestNode = v
			}
		}
		if bestNode == netsim.NoNode || bestGain == 0 {
			break
		}
		chosen = append(chosen, bestNode)
		chosenSet[bestNode] = true
		vDepth := d.Topo.Node(bestNode).Depth
		for _, c := range clientsUnder[bestNode] {
			if vDepth > serviceDepth[c] {
				serviceDepth[c] = vDepth
			}
		}
	}
	sort.Slice(chosen, func(i, j int) bool { return chosen[i] < chosen[j] })
	return chosen
}

// HeaviestNodes returns the n internal nodes with the largest total demand
// flowing through them — a popularity view of the clientele tree useful for
// reporting (the paper's 34,000-node tree analysis).
func (d *Demand) HeaviestNodes(n int) []netsim.NodeID {
	internal := d.Topo.InternalNodes()
	sort.Slice(internal, func(i, j int) bool {
		bi, bj := d.NodeBytes[internal[i]], d.NodeBytes[internal[j]]
		if bi != bj {
			return bi > bj
		}
		return internal[i] < internal[j]
	})
	if n > len(internal) {
		n = len(internal)
	}
	return internal[:n]
}
