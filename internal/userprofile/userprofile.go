// Package userprofile implements the client-side alternative sketched at
// the end of §3.4: "client-initiated prefetching could be based on user
// logs (as opposed to server logs) ... extensive user logs are analyzed to
// obtain a per-user relationship similar to the P and P* relationships
// (i.e. a user profile). Such a relationship is used to initiate document
// prefetching."
//
// Each client builds its own dependency profile online from its own request
// stream only, and after every fetch prefetches the successors its profile
// rates above a threshold. The paper's preliminary finding — reproduced by
// this simulator — is structural: per-user prefetching is "extremely
// effective for access patterns that involve frequently-traversed
// documents, but not effective at all for access patterns that involve
// newly-traversed documents", because a profile built from one user's past
// can only ever name documents that user has already seen. Server-side
// speculative service has no such blind spot, which is §3.4's argument for
// combining the two.
package userprofile

import (
	"fmt"
	"time"

	"specweb/internal/cache"
	"specweb/internal/costmodel"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// Config parameterizes the per-user prefetching simulation.
type Config struct {
	Site  *webgraph.Site
	Costs costmodel.Costs

	// Client cache model (as in simulate).
	SessionTimeout time.Duration
	CacheCapacity  int64

	// Profile estimation.
	StrideTimeout  time.Duration // pairs form within strides, as in §3.1
	MinOccurrences int
	Smoothing      float64

	// Prefetch policy.
	PrefetchTp  float64
	MaxPrefetch int   // per request; 0 means unlimited
	MaxSize     int64 // per-document cap; 0 = ∞
}

// Default returns baseline-compatible parameters. The cache is a
// single-session one (60 minutes): with an infinite multi-session cache a
// per-user profile is pointless, since every document the profile knows is
// already cached — the profile's value is re-warming the cache at the start
// of each session.
func Default(site *webgraph.Site) Config {
	return Config{
		Site:           site,
		Costs:          costmodel.Default(),
		SessionTimeout: 60 * time.Minute,
		StrideTimeout:  5 * time.Second,
		MinOccurrences: 2,
		Smoothing:      1,
		PrefetchTp:     0.4,
		MaxPrefetch:    8,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Site == nil {
		return fmt.Errorf("userprofile: nil site")
	}
	if err := c.Costs.Validate(); err != nil {
		return err
	}
	if c.StrideTimeout <= 0 {
		return fmt.Errorf("userprofile: StrideTimeout must be positive, got %v", c.StrideTimeout)
	}
	if c.PrefetchTp < 0 || c.PrefetchTp > 1 {
		return fmt.Errorf("userprofile: PrefetchTp %v outside [0,1]", c.PrefetchTp)
	}
	return nil
}

// Result is the outcome of one run.
type Result struct {
	Spec   costmodel.Tally // the prefetching arm
	Base   costmodel.Tally // the plain arm
	Ratios costmodel.Ratios

	Prefetched int64 // prefetch fetches issued
	Used       int64 // prefetched documents later requested
	// RepeatConversions counts used prefetches of documents the client had
	// requested before; NovelConversions of first-time documents. By
	// construction of per-user profiles NovelConversions is always zero —
	// the §3.4 structural finding — and is reported to make the contrast
	// with server-side speculation measurable.
	RepeatConversions int64
	NovelConversions  int64
	// RepeatMisses and NovelMisses split the *baseline* misses by whether
	// the client had seen the document before: the reachable and
	// unreachable demand for per-user prefetching.
	RepeatMisses int64
	NovelMisses  int64
}

// profile is one client's online dependency estimate.
type profile struct {
	occ    map[webgraph.DocID]float64
	pairs  map[webgraph.DocID]map[webgraph.DocID]float64
	stride []timedDoc // the in-progress stride

	visited map[webgraph.DocID]bool

	baseCache cache.Cache
	specCache cache.Cache
	pending   map[webgraph.DocID]bool
}

type timedDoc struct {
	at  time.Time
	doc webgraph.DocID
	// paired records the successors this occurrence has already counted,
	// so a document requested twice after it still counts once (the
	// per-occurrence-distinct semantics of markov.Estimate).
	paired map[webgraph.DocID]bool
}

func newProfile(cfg Config) *profile {
	return &profile{
		occ:       make(map[webgraph.DocID]float64),
		pairs:     make(map[webgraph.DocID]map[webgraph.DocID]float64),
		visited:   make(map[webgraph.DocID]bool),
		baseCache: cache.New(cfg.SessionTimeout, cfg.CacheCapacity),
		specCache: cache.New(cfg.SessionTimeout, cfg.CacheCapacity),
		pending:   make(map[webgraph.DocID]bool),
	}
}

// observe folds a request into the profile: every earlier document of the
// current stride gains a pair edge to doc (distinct per occurrence, as in
// markov.Estimate), then doc joins the stride.
func (p *profile) observe(at time.Time, doc webgraph.DocID, strideTimeout time.Duration) {
	// Trim the stride: it ends when the gap to its last request reaches
	// the timeout.
	if n := len(p.stride); n > 0 && at.Sub(p.stride[n-1].at) >= strideTimeout {
		p.stride = p.stride[:0]
	}
	for i := range p.stride {
		td := &p.stride[i]
		if td.doc == doc || td.paired[doc] {
			continue
		}
		if td.paired == nil {
			td.paired = make(map[webgraph.DocID]bool)
		}
		td.paired[doc] = true
		row := p.pairs[td.doc]
		if row == nil {
			row = make(map[webgraph.DocID]float64)
			p.pairs[td.doc] = row
		}
		row[doc]++
	}
	p.occ[doc]++
	p.stride = append(p.stride, timedDoc{at: at, doc: doc})
	p.visited[doc] = true
}

// successors returns doc's profile successors with probability ≥ tp, best
// first.
func (p *profile) successors(doc webgraph.DocID, cfg Config) []webgraph.DocID {
	row := p.pairs[doc]
	if row == nil || p.occ[doc] < float64(cfg.MinOccurrences) {
		return nil
	}
	den := p.occ[doc] + cfg.Smoothing
	type cand struct {
		doc webgraph.DocID
		pr  float64
	}
	var cands []cand
	for d, c := range row {
		pr := c / den
		if pr >= cfg.PrefetchTp {
			cands = append(cands, cand{d, pr})
		}
	}
	// Selection sort by probability then ID: candidate lists are tiny.
	for i := 0; i < len(cands); i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].pr > cands[best].pr ||
				(cands[j].pr == cands[best].pr && cands[j].doc < cands[best].doc) {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	out := make([]webgraph.DocID, 0, len(cands))
	for _, c := range cands {
		out = append(out, c.doc)
	}
	return out
}

// Run replays the trace with per-user profile prefetching against the plain
// baseline.
func Run(tr *trace.Trace, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("userprofile: empty trace")
	}
	res := &Result{}
	profiles := make(map[trace.ClientID]*profile)

	for i := range tr.Requests {
		r := &tr.Requests[i]
		if r.Doc == webgraph.None {
			continue
		}
		p := profiles[r.Client]
		if p == nil {
			p = newProfile(cfg)
			profiles[r.Client] = p
		}
		p.baseCache.Touch(r.Time)
		p.specCache.Touch(r.Time)

		res.Base.AccessedBytes += r.Size
		res.Spec.AccessedBytes += r.Size

		wasSeen := p.visited[r.Doc]

		// Plain arm.
		if !p.baseCache.Has(r.Doc) {
			res.Base.Requests++
			res.Base.BytesSent += r.Size
			res.Base.MissBytes += r.Size
			res.Base.Latency += cfg.Costs.RequestLatency(r.Size)
			p.baseCache.Put(r.Doc, r.Size)
			if wasSeen {
				res.RepeatMisses++
			} else {
				res.NovelMisses++
			}
		}

		// Prefetching arm.
		if p.specCache.Has(r.Doc) {
			if p.pending[r.Doc] {
				delete(p.pending, r.Doc)
				res.Used++
				if wasSeen {
					res.RepeatConversions++
				} else {
					res.NovelConversions++
				}
			}
		} else {
			res.Spec.Requests++
			res.Spec.BytesSent += r.Size
			res.Spec.MissBytes += r.Size
			res.Spec.Latency += cfg.Costs.RequestLatency(r.Size)
			p.specCache.Put(r.Doc, r.Size)
		}

		// Client-initiated prefetching from the user's own profile.
		succ := p.successors(r.Doc, cfg)
		issued := 0
		for _, d := range succ {
			if cfg.MaxPrefetch > 0 && issued >= cfg.MaxPrefetch {
				break
			}
			if p.specCache.Has(d) || !cfg.Site.Valid(d) {
				continue
			}
			size := cfg.Site.Doc(d).Size
			if cfg.MaxSize > 0 && size > cfg.MaxSize {
				continue
			}
			res.Spec.Requests++
			res.Spec.BytesSent += size
			res.Prefetched++
			issued++
			p.specCache.Put(d, size)
			p.pending[d] = true
		}

		// Learn from the request (after acting, so the profile never
		// predicts from the request it is reacting to).
		p.observe(r.Time, r.Doc, cfg.StrideTimeout)
	}
	res.Ratios = costmodel.Compare(res.Spec, res.Base)
	return res, nil
}
