package userprofile

import (
	"testing"
	"time"

	"specweb/internal/simulate"
	"specweb/internal/stats"
	"specweb/internal/synth"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

var t0 = time.Date(1995, time.April, 3, 10, 0, 0, 0, time.UTC)

func mkSiteAndTrace(t *testing.T) (*webgraph.Site, *trace.Trace) {
	t.Helper()
	site, err := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(31))
	if err != nil {
		t.Fatal(err)
	}
	cfg := synth.DefaultConfig(site, nil)
	cfg.Days = 20
	cfg.SessionsPerDay = 50
	cfg.RemoteClients = 40 // few clients → plenty of repeat traversal
	cfg.LocalClients = 6
	res, err := synth.Generate(cfg, stats.NewRNG(32))
	if err != nil {
		t.Fatal(err)
	}
	return site, res.Trace
}

func TestRunBasics(t *testing.T) {
	site, tr := mkSiteAndTrace(t)
	res, err := Run(tr, Default(site))
	if err != nil {
		t.Fatal(err)
	}
	if res.Prefetched == 0 {
		t.Fatal("no prefetches issued")
	}
	if res.Used == 0 {
		t.Fatal("no prefetches used")
	}
	if res.Used > res.Prefetched {
		t.Errorf("used %d > prefetched %d", res.Used, res.Prefetched)
	}
	if res.Spec.AccessedBytes != res.Base.AccessedBytes {
		t.Error("arms diverged on accessed bytes")
	}
	// Miss rate must improve (prefetched docs are in cache when needed).
	if res.Ratios.MissRate >= 1 {
		t.Errorf("miss ratio %v: prefetching should help", res.Ratios.MissRate)
	}
}

// The package's reason to exist: a per-user profile can never convert a
// first-visit access.
func TestNovelAccessesUnreachable(t *testing.T) {
	site, tr := mkSiteAndTrace(t)
	res, err := Run(tr, Default(site))
	if err != nil {
		t.Fatal(err)
	}
	if res.NovelConversions != 0 {
		t.Errorf("per-user prefetching converted %d novel accesses — impossible by construction",
			res.NovelConversions)
	}
	if res.RepeatConversions == 0 {
		t.Error("no repeat conversions: profiles learned nothing")
	}
	if res.NovelMisses == 0 {
		t.Error("workload has no novel misses; the contrast is vacuous")
	}
}

// §3.4's argument for the hybrid: server-side speculation does convert
// novel accesses.
func TestServerSpeculationConvertsNovel(t *testing.T) {
	site, tr := mkSiteAndTrace(t)
	scfg := simulate.Baseline(site, 0.25)
	sres, err := simulate.Run(tr, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if sres.NovelConversions == 0 {
		t.Error("server-side speculation converted no novel accesses")
	}
	ures, err := Run(tr, Default(site))
	if err != nil {
		t.Fatal(err)
	}
	if ures.NovelConversions >= sres.NovelConversions {
		t.Errorf("user profiles (%d) should trail server speculation (%d) on novel conversions",
			ures.NovelConversions, sres.NovelConversions)
	}
}

func TestDeterministicReplay(t *testing.T) {
	site, tr := mkSiteAndTrace(t)
	a, err := Run(tr, Default(site))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, Default(site))
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Error("identical runs diverged")
	}
}

func TestMaxPrefetchAndMaxSize(t *testing.T) {
	site, tr := mkSiteAndTrace(t)
	loose := Default(site)
	loose.MaxPrefetch = 0
	loose.PrefetchTp = 0.2
	rl, err := Run(tr, loose)
	if err != nil {
		t.Fatal(err)
	}
	tight := loose
	tight.MaxPrefetch = 1
	rt, err := Run(tr, tight)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Prefetched > rl.Prefetched {
		t.Errorf("MaxPrefetch=1 issued more prefetches (%d) than unlimited (%d)",
			rt.Prefetched, rl.Prefetched)
	}
	capped := loose
	capped.MaxSize = 2048
	rc, err := Run(tr, capped)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Spec.BytesSent > rl.Spec.BytesSent {
		t.Error("MaxSize cap increased bytes")
	}
}

func TestProfileObserve(t *testing.T) {
	cfg := Default(nil)
	cfg.Site = &webgraph.Site{} // not used by observe/successors
	p := newProfile(cfg)
	// Teach 1 → 2 within strides, three times.
	at := t0
	for i := 0; i < 3; i++ {
		p.observe(at, 1, cfg.StrideTimeout)
		p.observe(at.Add(time.Second), 2, cfg.StrideTimeout)
		at = at.Add(time.Hour)
	}
	succ := p.successors(1, cfg)
	if len(succ) != 1 || succ[0] != 2 {
		t.Errorf("successors(1) = %v, want [2]", succ)
	}
	// Stride boundary: a request an hour later pairs with nothing.
	if got := p.successors(2, cfg); len(got) != 0 {
		t.Errorf("successors(2) = %v, want none (cross-stride)", got)
	}
}

func TestProfileDistinctPerOccurrence(t *testing.T) {
	cfg := Default(nil)
	cfg.Site = &webgraph.Site{}
	cfg.MinOccurrences = 1
	cfg.Smoothing = 0
	p := newProfile(cfg)
	p.observe(t0, 1, cfg.StrideTimeout)
	p.observe(t0.Add(time.Second), 2, cfg.StrideTimeout)
	p.observe(t0.Add(2*time.Second), 2, cfg.StrideTimeout)
	// Pair (1→2) must count once despite two 2's in the stride.
	if got := p.pairs[1][2]; got != 1 {
		t.Errorf("pair count = %v, want 1", got)
	}
}

func TestValidation(t *testing.T) {
	site, tr := mkSiteAndTrace(t)
	bad := Default(site)
	bad.Site = nil
	if _, err := Run(tr, bad); err == nil {
		t.Error("nil site accepted")
	}
	bad = Default(site)
	bad.StrideTimeout = 0
	if _, err := Run(tr, bad); err == nil {
		t.Error("zero stride timeout accepted")
	}
	bad = Default(site)
	bad.PrefetchTp = 2
	if _, err := Run(tr, bad); err == nil {
		t.Error("bad threshold accepted")
	}
	if _, err := Run(&trace.Trace{}, Default(site)); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestCrossSessionLearning(t *testing.T) {
	// A user browses page 1 → 2 across several sessions; from the second
	// visit on, the profile prefetches 2 at the start of each session even
	// though the session cache is cold.
	site, err := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(61))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default(site)
	cfg.MinOccurrences = 2
	cfg.PrefetchTp = 0.3
	d1, d2 := site.Docs[0].ID, site.Docs[1].ID
	tr := &trace.Trace{}
	at := t0
	for s := 0; s < 6; s++ {
		tr.Requests = append(tr.Requests,
			trace.Request{Time: at, Client: "u", Doc: d1, Size: site.Doc(d1).Size},
			trace.Request{Time: at.Add(2 * time.Second), Client: "u", Doc: d2, Size: site.Doc(d2).Size},
		)
		at = at.Add(3 * time.Hour) // beyond the 60-minute session timeout
	}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sessions 3..6 (after MinOccurrences reached) prefetch d2 on seeing
	// d1; all of them convert.
	if res.Prefetched < 3 {
		t.Errorf("prefetched %d, want ≥3 cross-session prefetches", res.Prefetched)
	}
	if res.Used < 3 || res.RepeatConversions != res.Used {
		t.Errorf("used=%d repeat=%d: conversions should all be repeats",
			res.Used, res.RepeatConversions)
	}
	// The prefetching arm's misses on d2 drop accordingly.
	if res.Spec.MissBytes >= res.Base.MissBytes {
		t.Error("prefetching did not reduce miss bytes")
	}
}
