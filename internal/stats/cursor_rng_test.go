package stats

import (
	"math"
	"testing"
	"unsafe"
)

// TestCursorRNGDeterminism pins the defining property of the compact
// core: a cursor stream is a pure function of (seed, index), so any
// process can regenerate any client's stream independently.
func TestCursorRNGDeterminism(t *testing.T) {
	a := NewCursorRNG(1995, 42)
	b := NewCursorRNG(1995, 42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("draw %d diverged: %v vs %v", i, x, y)
		}
	}
}

// TestCursorRNGIndexIndependence: neighboring indexes must produce
// uncorrelated streams (splitmix64's finalizer decorrelates the Weyl
// sequence), and seed changes must reshuffle every index.
func TestCursorRNGIndexIndependence(t *testing.T) {
	const n = 4096
	var mean float64
	for i := 0; i < n; i++ {
		mean += NewCursorRNG(7, uint64(i)).Float64()
	}
	mean /= n
	if math.Abs(mean-0.5) > 0.03 {
		t.Errorf("first draws across indexes have mean %.4f, want ~0.5", mean)
	}
	same := 0
	for i := 0; i < 256; i++ {
		if NewCursorRNG(1, uint64(i)).Int63n(1<<32) == NewCursorRNG(2, uint64(i)).Int63n(1<<32) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d of 256 indexes ignored the seed", same)
	}
}

// TestCursorRNGSplit: splitting a compact RNG stays compact and is
// deterministic, so cursor-derived child streams (per-session labels)
// keep the O(8-byte) state.
func TestCursorRNGSplit(t *testing.T) {
	a := NewCursorRNG(3, 9).Split("sessions")
	b := NewCursorRNG(3, 9).Split("sessions")
	for i := 0; i < 100; i++ {
		if a.Int63n(1000) != b.Int63n(1000) {
			t.Fatal("split of identical cursors diverged")
		}
	}
	if x, y := NewCursorRNG(3, 9).Split("a").Float64(), NewCursorRNG(3, 9).Split("b").Float64(); x == y {
		t.Error("different split labels produced the same first draw")
	}
}

// TestCursorRNGStateIsCompact guards the whole point of the compact
// core: a cursor RNG must not drag a ~5KB math/rand source behind it,
// or 100k client cursors would cost more than the trace they replace.
func TestCursorRNGStateIsCompact(t *testing.T) {
	g := NewCursorRNG(1, 1)
	if g.r != nil {
		t.Fatal("cursor RNG allocated a legacy math/rand core")
	}
	if sz := unsafe.Sizeof(*g); sz > 64 {
		t.Fatalf("cursor RNG state is %d bytes, want pocket-sized", sz)
	}
}

// TestCursorRNGDistributions sanity-checks the compact core's derived
// draws: uniform mean, exponential mean, normal moments, Perm validity.
func TestCursorRNGDistributions(t *testing.T) {
	g := NewCursorRNG(11, 5)
	const n = 20000
	var sumU, sumE, sumN, sumN2 float64
	for i := 0; i < n; i++ {
		sumU += g.Float64()
		sumE += g.ExpFloat64()
		x := g.NormFloat64()
		sumN += x
		sumN2 += x * x
	}
	if m := sumU / n; math.Abs(m-0.5) > 0.01 {
		t.Errorf("uniform mean %.4f", m)
	}
	if m := sumE / n; math.Abs(m-1) > 0.03 {
		t.Errorf("exponential mean %.4f", m)
	}
	if m := sumN / n; math.Abs(m) > 0.03 {
		t.Errorf("normal mean %.4f", m)
	}
	if v := sumN2/n - (sumN/n)*(sumN/n); math.Abs(v-1) > 0.05 {
		t.Errorf("normal variance %.4f", v)
	}
	p := g.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

// TestLegacyRNGUnchanged pins the legacy core's byte-stream against
// golden values: every committed baseline in the repository depends on
// NewRNG's exact math/rand sequence, so any drift here is a red alert.
func TestLegacyRNGUnchanged(t *testing.T) {
	g := NewRNG(1995)
	got := []float64{g.Float64(), g.Float64(), g.Float64()}
	h := NewRNG(1995)
	want := []float64{h.Float64(), h.Float64(), h.Float64()}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("legacy stream not reproducible at draw %d", i)
		}
	}
	if g.r == nil {
		t.Fatal("NewRNG must keep the legacy math/rand core")
	}
	if NewRNG(5).Split("x").r == nil {
		t.Fatal("legacy Split must stay on the legacy core")
	}
}
