package stats

import (
	"math"
	"testing"
	"testing/quick"
)

const sampleN = 20000

func sampleMean(t *testing.T, d Dist, n int, seed int64) float64 {
	t.Helper()
	g := NewRNG(seed)
	var sum float64
	for i := 0; i < n; i++ {
		sum += d.Sample(g)
	}
	return sum / float64(n)
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	g := NewRNG(7)
	c1 := g.Split("alpha")
	c2 := g.Split("alpha")
	// Splitting with the same label from the same parent seed must yield the
	// same stream (pure function of seed and label).
	for i := 0; i < 10; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatalf("split streams with identical labels diverged at draw %d", i)
		}
	}
	c3 := NewRNG(7).Split("beta")
	c4 := NewRNG(7).Split("alpha")
	same := true
	for i := 0; i < 10; i++ {
		if c3.Float64() != c4.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different labels produced identical streams")
	}
}

func TestRNGBool(t *testing.T) {
	g := NewRNG(1)
	if g.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !g.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	hits := 0
	for i := 0; i < sampleN; i++ {
		if g.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / sampleN
	if math.Abs(frac-0.25) > 0.02 {
		t.Errorf("Bool(0.25) frequency = %v, want ≈0.25", frac)
	}
}

func TestExponentialMean(t *testing.T) {
	d := NewExponential(0.5)
	m := sampleMean(t, d, sampleN, 3)
	if math.Abs(m-d.Mean())/d.Mean() > 0.05 {
		t.Errorf("sample mean %v, analytic %v", m, d.Mean())
	}
}

func TestExponentialCDF(t *testing.T) {
	d := NewExponential(2)
	if got := d.CDF(-1); got != 0 {
		t.Errorf("CDF(-1) = %v, want 0", got)
	}
	if got := d.CDF(0); got != 0 {
		t.Errorf("CDF(0) = %v, want 0", got)
	}
	want := 1 - math.Exp(-2)
	if got := d.CDF(1); math.Abs(got-want) > 1e-12 {
		t.Errorf("CDF(1) = %v, want %v", got, want)
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rate <= 0")
		}
	}()
	NewExponential(0)
}

func TestParetoMeanAndSupport(t *testing.T) {
	d := NewPareto(1000, 2.5)
	g := NewRNG(9)
	var sum float64
	for i := 0; i < sampleN; i++ {
		x := d.Sample(g)
		if x < d.Xm {
			t.Fatalf("pareto sample %v below scale %v", x, d.Xm)
		}
		sum += x
	}
	m := sum / sampleN
	if math.Abs(m-d.Mean())/d.Mean() > 0.1 {
		t.Errorf("sample mean %v, analytic %v", m, d.Mean())
	}
	if !math.IsNaN(NewPareto(1, 0.9).Mean()) {
		t.Error("mean should be NaN for alpha <= 1")
	}
}

func TestLognormalMean(t *testing.T) {
	d := NewLognormal(8, 0.5)
	m := sampleMean(t, d, sampleN, 11)
	if math.Abs(m-d.Mean())/d.Mean() > 0.05 {
		t.Errorf("sample mean %v, analytic %v", m, d.Mean())
	}
}

func TestGeometricMean(t *testing.T) {
	d := NewGeometric(0.3)
	m := sampleMean(t, d, sampleN, 13)
	if math.Abs(m-d.Mean()) > 0.1 {
		t.Errorf("sample mean %v, analytic %v", m, d.Mean())
	}
	if got := NewGeometric(1).Sample(NewRNG(1)); got != 0 {
		t.Errorf("Geometric(1) sample = %v, want 0", got)
	}
}

func TestUniformMean(t *testing.T) {
	d := NewUniform(2, 10)
	m := sampleMean(t, d, sampleN, 17)
	if math.Abs(m-6) > 0.1 {
		t.Errorf("sample mean %v, want ≈6", m)
	}
}

func TestConstant(t *testing.T) {
	d := Constant{V: 3.5}
	if d.Sample(NewRNG(1)) != 3.5 || d.Mean() != 3.5 {
		t.Error("constant distribution not constant")
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(100, 1.0)
	var sum float64
	for r := 1; r <= z.N; r++ {
		sum += z.Prob(r)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Zipf probabilities sum to %v, want 1", sum)
	}
	if z.Prob(0) != 0 || z.Prob(101) != 0 {
		t.Error("out-of-range ranks should have probability 0")
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 1.0)
	g := NewRNG(23)
	counts := make([]int64, z.N)
	for i := 0; i < 100000; i++ {
		counts[z.Rank(g)-1]++
	}
	// Rank 1 should dominate: with s=1 and n=1000, p(1) ≈ 1/H_1000 ≈ 0.133.
	frac1 := float64(counts[0]) / 100000
	if math.Abs(frac1-z.Prob(1)) > 0.01 {
		t.Errorf("rank-1 frequency %v, analytic %v", frac1, z.Prob(1))
	}
	// Empirical skew should recover s ≈ 1 over the head of the distribution.
	s, r2, err := FitZipfExponent(counts[:100])
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.8 || s > 1.2 {
		t.Errorf("fitted skew %v (r2=%v), want ≈1", s, r2)
	}
}

func TestZipfRankBounds(t *testing.T) {
	z := NewZipf(10, 0.8)
	g := NewRNG(29)
	for i := 0; i < 10000; i++ {
		r := z.Rank(g)
		if r < 1 || r > 10 {
			t.Fatalf("rank %d out of [1,10]", r)
		}
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(4, 0)
	for r := 1; r <= 4; r++ {
		if math.Abs(z.Prob(r)-0.25) > 1e-9 {
			t.Errorf("Prob(%d) = %v, want 0.25", r, z.Prob(r))
		}
	}
}

func TestBoundedParetoSupport(t *testing.T) {
	d := NewBoundedPareto(500, 1.2, 1<<20)
	g := NewRNG(31)
	for i := 0; i < sampleN; i++ {
		x := d.Sample(g)
		if x < 500 || x > 1<<20 {
			t.Fatalf("bounded pareto sample %v outside [500, 2^20]", x)
		}
	}
}

func TestBoundedParetoMean(t *testing.T) {
	d := NewBoundedPareto(1000, 1.3, 1e8)
	m := sampleMean(t, d, 200000, 37)
	if math.Abs(m-d.Mean())/d.Mean() > 0.15 {
		t.Errorf("sample mean %v, analytic %v", m, d.Mean())
	}
}

func TestBoundedParetoMeanAlphaOne(t *testing.T) {
	d := NewBoundedPareto(1000, 1.0, 1e6)
	m := sampleMean(t, d, 200000, 41)
	if math.Abs(m-d.Mean())/d.Mean() > 0.15 {
		t.Errorf("sample mean %v, analytic %v (alpha=1 branch)", m, d.Mean())
	}
}

// Property: Zipf CDF is monotone and every sampled rank is feasible for
// arbitrary (n, s) in a reasonable range.
func TestZipfProperty(t *testing.T) {
	f := func(nRaw uint8, sRaw uint8, seed int64) bool {
		n := int(nRaw%200) + 1
		s := float64(sRaw%30) / 10 // 0.0 .. 2.9
		z := NewZipf(n, s)
		prev := 0.0
		for i := 0; i < n; i++ {
			if z.cdf[i] < prev-1e-12 {
				return false
			}
			prev = z.cdf[i]
		}
		if math.Abs(z.cdf[n-1]-1) > 1e-12 {
			return false
		}
		g := NewRNG(seed)
		for i := 0; i < 50; i++ {
			r := z.Rank(g)
			if r < 1 || r > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: distribution samples are always finite and non-negative for the
// families specweb uses for sizes and counts.
func TestSamplesFiniteProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		dists := []Dist{
			NewExponential(0.001),
			NewPareto(100, 1.1),
			NewLognormal(9, 1.2),
			NewGeometric(0.4),
			NewBoundedPareto(100, 1.1, 1e9),
		}
		for _, d := range dists {
			for i := 0; i < 20; i++ {
				x := d.Sample(g)
				if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDistStrings(t *testing.T) {
	cases := []struct {
		d    Dist
		want string
	}{
		{NewExponential(2), "Exp(rate=2)"},
		{NewPareto(1, 1.5), "Pareto(xm=1, alpha=1.5)"},
		{NewLognormal(8, 0.5), "Lognormal(mu=8, sigma=0.5)"},
		{NewGeometric(0.3), "Geometric(p=0.3)"},
		{NewUniform(1, 2), "Uniform[1, 2)"},
		{Constant{V: 3}, "Constant(3)"},
		{NewZipf(5, 1), "Zipf(n=5, s=1)"},
		{NewBoundedPareto(1, 1.5, 10), "BoundedPareto(xm=1, alpha=1.5, cap=10)"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := map[string]func(){
		"pareto xm":        func() { NewPareto(0, 1) },
		"pareto alpha":     func() { NewPareto(1, 0) },
		"lognormal sigma":  func() { NewLognormal(1, -1) },
		"geometric low":    func() { NewGeometric(0) },
		"geometric high":   func() { NewGeometric(1.5) },
		"uniform inverted": func() { NewUniform(2, 1) },
		"zipf n":           func() { NewZipf(0, 1) },
		"zipf s":           func() { NewZipf(1, -1) },
		"bpareto cap":      func() { NewBoundedPareto(10, 1, 5) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestZipfSampleIsRank(t *testing.T) {
	z := NewZipf(10, 1)
	g := NewRNG(3)
	for i := 0; i < 100; i++ {
		v := z.Sample(g)
		if v != float64(int(v)) || v < 1 || v > 10 {
			t.Fatalf("Sample = %v, want integer rank in [1,10]", v)
		}
	}
}

func TestZipfMean(t *testing.T) {
	z := NewZipf(4, 0) // uniform over 1..4
	if m := z.Mean(); math.Abs(m-2.5) > 1e-9 {
		t.Errorf("mean = %v, want 2.5", m)
	}
}

func TestRNGHelpers(t *testing.T) {
	g := NewRNG(5)
	if v := g.Intn(10); v < 0 || v >= 10 {
		t.Errorf("Intn out of range: %d", v)
	}
	if v := g.Int63n(100); v < 0 || v >= 100 {
		t.Errorf("Int63n out of range: %d", v)
	}
	p := g.Perm(5)
	seen := map[int]bool{}
	for _, x := range p {
		seen[x] = true
	}
	if len(seen) != 5 {
		t.Errorf("Perm not a permutation: %v", p)
	}
	xs := []int{1, 2, 3, 4, 5}
	g.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, x := range xs {
		sum += x
	}
	if sum != 15 {
		t.Errorf("Shuffle lost elements: %v", xs)
	}
}
