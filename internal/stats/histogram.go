package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width-bin histogram over [Lo, Hi). Values outside the
// range are clamped into the first/last bin so that nothing is silently
// dropped; the paper's Figure 4 histogram of p[i,j] values is produced with
// one of these over [0, 1].
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	total  int64
}

// NewHistogram returns a histogram with n equal-width bins over [lo, hi).
// It panics if n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic(fmt.Sprintf("stats: histogram requires n > 0 bins, got %d", n))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: histogram requires hi > lo, got [%v, %v)", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) { h.AddN(x, 1) }

// AddN records n observations of the same value.
func (h *Histogram) AddN(x float64, n int64) {
	h.Counts[h.binOf(x)] += n
	h.total += n
}

func (h *Histogram) binOf(x float64) int {
	if math.IsNaN(x) || x < h.Lo {
		return 0
	}
	if x >= h.Hi {
		return len(h.Counts) - 1
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	b := int((x - h.Lo) / w)
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	return b
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int64 { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// BinLo returns the inclusive lower edge of bin i.
func (h *Histogram) BinLo(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + float64(i)*w
}

// Fraction returns the fraction of observations in bin i, or 0 when empty.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// PeakBins returns the indices of local maxima whose count is at least
// minCount, in increasing bin order. Used by tests to verify the 1/k peak
// structure of the dependency histogram.
func (h *Histogram) PeakBins(minCount int64) []int {
	var peaks []int
	for i, c := range h.Counts {
		if c < minCount {
			continue
		}
		left := int64(-1)
		if i > 0 {
			left = h.Counts[i-1]
		}
		right := int64(-1)
		if i < len(h.Counts)-1 {
			right = h.Counts[i+1]
		}
		if c >= left && c >= right && (c > left || c > right) {
			peaks = append(peaks, i)
		}
	}
	return peaks
}

// Render draws an ASCII bar chart of the histogram, width columns wide,
// suitable for terminal output from the cmd/ tools.
func (h *Histogram) Render(width int) string {
	if width < 10 {
		width = 10
	}
	var max int64
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if max > 0 {
			bar = int(float64(c) / float64(max) * float64(width))
		}
		fmt.Fprintf(&b, "[%6.3f, %6.3f) %8d |%s\n",
			h.BinLo(i), h.BinLo(i)+(h.Hi-h.Lo)/float64(len(h.Counts)), c,
			strings.Repeat("#", bar))
	}
	return b.String()
}

// CumulativeCurve accumulates (x, weight) points and reports the cumulative
// fraction of total weight covered by the first k points in insertion order.
// specweb uses it to build Figure 1's "fraction of requests covered by the
// most popular b bytes" curve.
type CumulativeCurve struct {
	xs    []float64
	ws    []float64
	total float64
}

// Append adds a point with position x (e.g. cumulative bytes) and weight w
// (e.g. requests attributable to this block).
func (c *CumulativeCurve) Append(x, w float64) {
	c.xs = append(c.xs, x)
	c.ws = append(c.ws, w)
	c.total += w
}

// Len returns the number of points.
func (c *CumulativeCurve) Len() int { return len(c.xs) }

// Point returns the x position and cumulative weight fraction after point i.
func (c *CumulativeCurve) Point(i int) (x, cumFrac float64) {
	var cum float64
	for j := 0; j <= i; j++ {
		cum += c.ws[j]
	}
	if c.total == 0 {
		return c.xs[i], 0
	}
	return c.xs[i], cum / c.total
}

// Points materializes the whole curve as parallel slices of x positions and
// cumulative fractions.
func (c *CumulativeCurve) Points() (xs, fracs []float64) {
	xs = append([]float64(nil), c.xs...)
	fracs = make([]float64, len(c.ws))
	var cum float64
	for i, w := range c.ws {
		cum += w
		if c.total > 0 {
			fracs[i] = cum / c.total
		}
	}
	return xs, fracs
}

// FracAt returns the cumulative weight fraction at position x by linear
// interpolation, assuming the points were appended in increasing x order.
func (c *CumulativeCurve) FracAt(x float64) float64 {
	xs, fracs := c.Points()
	if len(xs) == 0 || c.total == 0 {
		return 0
	}
	if x <= xs[0] {
		if xs[0] == 0 {
			return fracs[0]
		}
		return fracs[0] * x / xs[0]
	}
	for i := 1; i < len(xs); i++ {
		if x <= xs[i] {
			span := xs[i] - xs[i-1]
			if span == 0 {
				return fracs[i]
			}
			t := (x - xs[i-1]) / span
			return fracs[i-1] + t*(fracs[i]-fracs[i-1])
		}
	}
	return fracs[len(fracs)-1]
}
