package stats

import (
	"math"
	"testing"
)

func TestFitExponentialHitCurveRecoversLambda(t *testing.T) {
	// Generate a clean synthetic curve from a known lambda and verify the
	// fit recovers it. lambda is per-byte, in the paper's observed range.
	const lambda = 6.247e-7
	var bs, hs []float64
	for b := 100e3; b <= 20e6; b += 250e3 {
		bs = append(bs, b)
		hs = append(hs, 1-math.Exp(-lambda*b))
	}
	got, err := FitExponentialHitCurve(bs, hs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-lambda)/lambda > 0.01 {
		t.Errorf("fitted lambda %v, want %v", got, lambda)
	}
}

func TestFitExponentialHitCurveNoisy(t *testing.T) {
	const lambda = 1e-6
	g := NewRNG(5)
	var bs, hs []float64
	for b := 50e3; b <= 10e6; b += 100e3 {
		h := 1 - math.Exp(-lambda*b)
		h += (g.Float64() - 0.5) * 0.02
		if h <= 0 || h >= 1 {
			continue
		}
		bs = append(bs, b)
		hs = append(hs, h)
	}
	got, err := FitExponentialHitCurve(bs, hs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-lambda)/lambda > 0.10 {
		t.Errorf("fitted lambda %v, want within 10%% of %v", got, lambda)
	}
}

func TestFitExponentialHitCurveErrors(t *testing.T) {
	if _, err := FitExponentialHitCurve([]float64{1}, []float64{0.1, 0.2}); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, err := FitExponentialHitCurve(nil, nil); err == nil {
		t.Error("empty input not rejected")
	}
	// All points saturated -> nothing usable.
	if _, err := FitExponentialHitCurve([]float64{1, 2, 3}, []float64{1, 1, 1}); err == nil {
		t.Error("saturated curve not rejected")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	a, b, r2, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-1) > 1e-12 || math.Abs(b-2) > 1e-12 || math.Abs(r2-1) > 1e-12 {
		t.Errorf("got a=%v b=%v r2=%v, want 1, 2, 1", a, b, r2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if _, _, _, err := LinearFit([]float64{1, 1, 1}, []float64{2, 3, 4}); err == nil {
		t.Error("vertical data not rejected")
	}
	if _, _, _, err := LinearFit([]float64{1}, []float64{2}); err == nil {
		t.Error("single point not rejected")
	}
	// Constant y: slope 0, r2 defined as 1 by convention here.
	a, b, r2, err := LinearFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-5) > 1e-12 || math.Abs(b) > 1e-12 || r2 != 1 {
		t.Errorf("constant fit a=%v b=%v r2=%v", a, b, r2)
	}
}

func TestFitZipfExponent(t *testing.T) {
	// Exact 1/r^1.2 counts.
	counts := make([]int64, 200)
	for i := range counts {
		counts[i] = int64(1e6 / math.Pow(float64(i+1), 1.2))
	}
	s, r2, err := FitZipfExponent(counts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1.2) > 0.05 {
		t.Errorf("fitted skew %v (r2=%v), want 1.2", s, r2)
	}
}

func TestFitZipfExponentSkipsZeros(t *testing.T) {
	if _, _, err := FitZipfExponent([]int64{0, 0, 5}); err == nil {
		t.Error("fewer than 2 usable points not rejected")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Interpolated case.
	if got := Quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Errorf("interpolated median = %v, want 5", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary %+v", s)
	}
	if math.Abs(s.Std-2.138) > 0.01 {
		t.Errorf("std %v, want ≈2.138 (sample std)", s.Std)
	}
	if s.Median != 4.5 {
		t.Errorf("median %v, want 4.5", s.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Errorf("empty summary %+v", empty)
	}
}
