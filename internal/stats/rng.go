// Package stats provides the statistical substrate used throughout specweb:
// deterministic random sources, the heavy-tailed distributions that web
// workload synthesis requires (Zipf, Pareto, lognormal), histogramming, and
// the least-squares exponential fit used to estimate the popularity
// parameter λ of the paper's H(b) = 1 - exp(-λ·b) model.
//
// Everything in this package is deterministic for a given seed so that every
// experiment in the repository is reproducible bit-for-bit.
package stats

import (
	"math/rand"
)

// RNG wraps math/rand.Rand with a fixed, splittable seeding discipline.
// All specweb components draw randomness through an RNG so that a single
// experiment seed determines the entire run.
type RNG struct {
	r    *rand.Rand
	seed int64
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed)), seed: seed}
}

// Split derives an independent child generator from this one. The child's
// stream is a pure function of the parent seed and the label — it does not
// consume any parent draws — so adding a new consumer of randomness does not
// perturb existing streams.
func (g *RNG) Split(label string) *RNG {
	// FNV-1a over the label bytes, mixed with the parent seed.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	h ^= uint64(g.seed)
	h *= prime64
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	return NewRNG(int64(h ^ 0x9e3779b97f4a7c15))
}

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a uniform draw in [0, n). It panics if n <= 0.
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// NormFloat64 returns a standard normal draw.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponential draw with rate 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}
