// Package stats provides the statistical substrate used throughout specweb:
// deterministic random sources, the heavy-tailed distributions that web
// workload synthesis requires (Zipf, Pareto, lognormal), histogramming, and
// the least-squares exponential fit used to estimate the popularity
// parameter λ of the paper's H(b) = 1 - exp(-λ·b) model.
//
// Everything in this package is deterministic for a given seed so that every
// experiment in the repository is reproducible bit-for-bit.
package stats

import (
	"math"
	"math/rand"
)

// RNG wraps a deterministic random source with a fixed, splittable seeding
// discipline. All specweb components draw randomness through an RNG so that
// a single experiment seed determines the entire run.
//
// Two cores back the same API. NewRNG uses math/rand (≈5 KB of state) and
// is the historical default: every committed baseline depends on its exact
// draw sequence. NewCursorRNG uses a splitmix64 core with 8 bytes of state,
// so a streamed workload can hold one independent generator per client —
// hundreds of thousands of them — without the state dominating memory. The
// two cores produce different (both deterministic) streams.
type RNG struct {
	r    *rand.Rand // nil for compact splitmix64-core generators
	s    uint64     // splitmix64 state, used only when r == nil
	seed int64
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed)), seed: seed}
}

// splitmix64 is the SplitMix64 finalizer: a bijective 64-bit mixer whose
// output sequence over a Weyl increment passes BigCrush. It is the seed
// derivation function for per-client stream cursors: each client's whole
// request sequence is a pure function of (seed, client index).
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// next64 advances the compact core one step (SplitMix64: Weyl sequence
// plus finalizer).
func (g *RNG) next64() uint64 {
	g.s += 0x9e3779b97f4a7c15
	return splitmix64(g.s)
}

// NewCursorRNG returns a compact (8-byte-state) generator whose stream is
// a pure function of (seed, index). Shards regenerate any client's stream
// independently and byte-identically: cursor i draws the same sequence no
// matter which process asks, how many other cursors exist, or in what
// order they are created.
func NewCursorRNG(seed int64, index uint64) *RNG {
	state := splitmix64(uint64(seed)^0x9e3779b97f4a7c15) + splitmix64(index)
	return &RNG{s: state, seed: seed}
}

// Split derives an independent child generator from this one. The child's
// stream is a pure function of the parent seed and the label — it does not
// consume any parent draws — so adding a new consumer of randomness does not
// perturb existing streams. A child inherits the parent's core kind.
func (g *RNG) Split(label string) *RNG {
	// FNV-1a over the label bytes, mixed with the parent seed.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	h ^= uint64(g.seed)
	h *= prime64
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	child := int64(h ^ 0x9e3779b97f4a7c15)
	if g.r == nil {
		return &RNG{s: splitmix64(uint64(child)), seed: child}
	}
	return NewRNG(child)
}

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 {
	if g.r != nil {
		return g.r.Float64()
	}
	return float64(g.next64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int {
	if g.r != nil {
		return g.r.Intn(n)
	}
	if n <= 0 {
		panic("stats: Intn with n <= 0")
	}
	return int(g.next64() % uint64(n))
}

// Int63n returns a uniform draw in [0, n). It panics if n <= 0.
func (g *RNG) Int63n(n int64) int64 {
	if g.r != nil {
		return g.r.Int63n(n)
	}
	if n <= 0 {
		panic("stats: Int63n with n <= 0")
	}
	return int64(g.next64() % uint64(n))
}

// NormFloat64 returns a standard normal draw.
func (g *RNG) NormFloat64() float64 {
	if g.r != nil {
		return g.r.NormFloat64()
	}
	// Box–Muller on the compact core: two uniforms per normal. Slower
	// than ziggurat but stateless beyond the core, which is the point.
	u := g.Float64()
	for u == 0 {
		u = g.Float64()
	}
	v := g.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// ExpFloat64 returns an exponential draw with rate 1.
func (g *RNG) ExpFloat64() float64 {
	if g.r != nil {
		return g.r.ExpFloat64()
	}
	u := g.Float64()
	for u == 0 {
		u = g.Float64()
	}
	return -math.Log(u)
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int {
	if g.r != nil {
		return g.r.Perm(n)
	}
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := g.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) {
	if g.r != nil {
		g.r.Shuffle(n, swap)
		return
	}
	for i := n - 1; i > 0; i-- {
		swap(i, g.Intn(i+1))
	}
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.Float64() < p
}
