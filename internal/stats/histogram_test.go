package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	h.Add(0.05) // bin 0
	h.Add(0.15) // bin 1
	h.Add(0.95) // bin 9
	h.Add(1.0)  // clamped into bin 9
	h.Add(-0.5) // clamped into bin 0
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[9] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total() != 5 {
		t.Errorf("total = %d, want 5", h.Total())
	}
}

func TestHistogramAddN(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddN(3, 7)
	if h.Counts[1] != 7 || h.Total() != 7 {
		t.Errorf("AddN: counts=%v total=%d", h.Counts, h.Total())
	}
}

func TestHistogramNaNClamped(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(math.NaN())
	if h.Counts[0] != 1 {
		t.Errorf("NaN should be clamped into bin 0, counts=%v", h.Counts)
	}
}

func TestHistogramBinCenters(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	want := []float64{0.125, 0.375, 0.625, 0.875}
	for i, w := range want {
		if got := h.BinCenter(i); math.Abs(got-w) > 1e-12 {
			t.Errorf("BinCenter(%d) = %v, want %v", i, got, w)
		}
	}
	if got := h.BinLo(2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("BinLo(2) = %v, want 0.5", got)
	}
}

func TestHistogramFraction(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	if h.Fraction(0) != 0 {
		t.Error("empty histogram fraction should be 0")
	}
	h.Add(0.1)
	h.Add(0.2)
	h.Add(0.9)
	if math.Abs(h.Fraction(0)-2.0/3) > 1e-12 {
		t.Errorf("Fraction(0) = %v", h.Fraction(0))
	}
}

func TestHistogramPeaks(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	// Build peaks in bins 2 and 7.
	h.AddN(0.25, 100)
	h.AddN(0.15, 20)
	h.AddN(0.35, 30)
	h.AddN(0.75, 80)
	h.AddN(0.65, 10)
	h.AddN(0.85, 5)
	peaks := h.PeakBins(50)
	if len(peaks) != 2 || peaks[0] != 2 || peaks[1] != 7 {
		t.Errorf("peaks = %v, want [2 7]", peaks)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	h.AddN(0.1, 10)
	h.AddN(0.5, 5)
	out := h.Render(20)
	if !strings.Contains(out, "####################") {
		t.Errorf("largest bin should render a full-width bar:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Errorf("rendered %d lines, want 3", lines)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCumulativeCurve(t *testing.T) {
	var c CumulativeCurve
	c.Append(100, 60)
	c.Append(200, 30)
	c.Append(300, 10)
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	x, f := c.Point(0)
	if x != 100 || math.Abs(f-0.6) > 1e-12 {
		t.Errorf("Point(0) = (%v, %v)", x, f)
	}
	_, f = c.Point(2)
	if math.Abs(f-1) > 1e-12 {
		t.Errorf("final cumulative fraction %v, want 1", f)
	}
	xs, fs := c.Points()
	if len(xs) != 3 || len(fs) != 3 || math.Abs(fs[1]-0.9) > 1e-12 {
		t.Errorf("Points() = %v %v", xs, fs)
	}
}

func TestCumulativeCurveFracAt(t *testing.T) {
	var c CumulativeCurve
	c.Append(100, 50)
	c.Append(200, 50)
	if got := c.FracAt(150); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("FracAt(150) = %v, want 0.75", got)
	}
	if got := c.FracAt(50); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("FracAt(50) = %v, want 0.25 (linear below first point)", got)
	}
	if got := c.FracAt(1e9); got != 1 {
		t.Errorf("FracAt beyond range = %v, want 1", got)
	}
	var empty CumulativeCurve
	if empty.FracAt(10) != 0 {
		t.Error("empty curve FracAt should be 0")
	}
}

// Property: histogram conserves observations (total equals the number of
// Adds) and fractions sum to 1 for any inputs.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram(0, 1, 8)
		for _, v := range vals {
			h.Add(v)
		}
		var n int64
		var fsum float64
		for i, c := range h.Counts {
			n += c
			fsum += h.Fraction(i)
		}
		if n != int64(len(vals)) || n != h.Total() {
			return false
		}
		return len(vals) == 0 || math.Abs(fsum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: cumulative curve fractions are monotone non-decreasing and end
// at 1 for positive weights.
func TestCumulativeCurveMonotoneProperty(t *testing.T) {
	f := func(ws []uint16) bool {
		var c CumulativeCurve
		x := 0.0
		total := 0
		for _, w := range ws {
			x += 1
			c.Append(x, float64(w))
			total += int(w)
		}
		_, fs := c.Points()
		prev := 0.0
		for _, fr := range fs {
			if fr < prev-1e-12 {
				return false
			}
			prev = fr
		}
		return total == 0 || len(fs) == 0 || math.Abs(fs[len(fs)-1]-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
