package stats

import (
	"fmt"
	"math"
)

// Dist is a continuous or discrete distribution that can be sampled through
// an RNG. Implementations in this package cover the families that 1990s web
// workload characterization identified: Zipf request popularity, Pareto
// (heavy-tailed) object sizes, lognormal page bodies, exponential
// inter-arrival gaps, and geometric structural counts.
type Dist interface {
	// Sample draws one value.
	Sample(g *RNG) float64
	// Mean returns the analytic mean, or NaN when it does not exist.
	Mean() float64
	// String describes the distribution and its parameters.
	String() string
}

// Exponential is an exponential distribution with the given rate (1/mean).
type Exponential struct {
	Rate float64
}

// NewExponential returns an exponential distribution with the given rate.
// It panics if rate is not strictly positive.
func NewExponential(rate float64) Exponential {
	if rate <= 0 || math.IsNaN(rate) {
		panic(fmt.Sprintf("stats: exponential rate must be > 0, got %v", rate))
	}
	return Exponential{Rate: rate}
}

// Sample draws an exponential variate.
func (d Exponential) Sample(g *RNG) float64 { return g.ExpFloat64() / d.Rate }

// Mean returns 1/rate.
func (d Exponential) Mean() float64 { return 1 / d.Rate }

// CDF returns P[X <= x].
func (d Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-d.Rate*x)
}

func (d Exponential) String() string { return fmt.Sprintf("Exp(rate=%g)", d.Rate) }

// Pareto is a Pareto (power-law tail) distribution with scale xm and shape
// alpha. Web object sizes were famously found to have alpha ≈ 1.1–1.3
// (Crovella & Bestavros), which is what makes speculative service's MaxSize
// cap matter: the tail objects dominate bytes.
type Pareto struct {
	Xm    float64 // minimum value (scale)
	Alpha float64 // tail index (shape)
}

// NewPareto returns a Pareto distribution. It panics on non-positive
// parameters.
func NewPareto(xm, alpha float64) Pareto {
	if xm <= 0 || alpha <= 0 {
		panic(fmt.Sprintf("stats: pareto parameters must be > 0, got xm=%v alpha=%v", xm, alpha))
	}
	return Pareto{Xm: xm, Alpha: alpha}
}

// Sample draws a Pareto variate by inversion.
func (d Pareto) Sample(g *RNG) float64 {
	u := g.Float64()
	// Guard the u==0 corner, which would map to +Inf.
	for u == 0 {
		u = g.Float64()
	}
	return d.Xm / math.Pow(u, 1/d.Alpha)
}

// Mean returns alpha·xm/(alpha-1) for alpha > 1 and NaN otherwise.
func (d Pareto) Mean() float64 {
	if d.Alpha <= 1 {
		return math.NaN()
	}
	return d.Alpha * d.Xm / (d.Alpha - 1)
}

func (d Pareto) String() string { return fmt.Sprintf("Pareto(xm=%g, alpha=%g)", d.Xm, d.Alpha) }

// Lognormal is a lognormal distribution parameterized by the mean Mu and
// standard deviation Sigma of the underlying normal.
type Lognormal struct {
	Mu    float64
	Sigma float64
}

// NewLognormal returns a lognormal distribution. It panics if sigma < 0.
func NewLognormal(mu, sigma float64) Lognormal {
	if sigma < 0 {
		panic(fmt.Sprintf("stats: lognormal sigma must be >= 0, got %v", sigma))
	}
	return Lognormal{Mu: mu, Sigma: sigma}
}

// Sample draws a lognormal variate.
func (d Lognormal) Sample(g *RNG) float64 {
	return math.Exp(d.Mu + d.Sigma*g.NormFloat64())
}

// Mean returns exp(mu + sigma²/2).
func (d Lognormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

func (d Lognormal) String() string { return fmt.Sprintf("Lognormal(mu=%g, sigma=%g)", d.Mu, d.Sigma) }

// Geometric is a geometric distribution over {0, 1, 2, ...} with success
// probability P; it models structural counts such as embedded objects per
// page.
type Geometric struct {
	P float64
}

// NewGeometric returns a geometric distribution. It panics unless 0 < p <= 1.
func NewGeometric(p float64) Geometric {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("stats: geometric p must be in (0,1], got %v", p))
	}
	return Geometric{P: p}
}

// Sample draws a geometric variate (number of failures before success).
func (d Geometric) Sample(g *RNG) float64 {
	if d.P == 1 {
		return 0
	}
	u := g.Float64()
	for u == 0 {
		u = g.Float64()
	}
	return math.Floor(math.Log(u) / math.Log(1-d.P))
}

// Mean returns (1-p)/p.
func (d Geometric) Mean() float64 { return (1 - d.P) / d.P }

func (d Geometric) String() string { return fmt.Sprintf("Geometric(p=%g)", d.P) }

// Uniform is a continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// NewUniform returns a uniform distribution. It panics if hi < lo.
func NewUniform(lo, hi float64) Uniform {
	if hi < lo {
		panic(fmt.Sprintf("stats: uniform requires hi >= lo, got [%v, %v)", lo, hi))
	}
	return Uniform{Lo: lo, Hi: hi}
}

// Sample draws a uniform variate.
func (d Uniform) Sample(g *RNG) float64 { return d.Lo + (d.Hi-d.Lo)*g.Float64() }

// Mean returns (lo+hi)/2.
func (d Uniform) Mean() float64 { return (d.Lo + d.Hi) / 2 }

func (d Uniform) String() string { return fmt.Sprintf("Uniform[%g, %g)", d.Lo, d.Hi) }

// Constant is a degenerate distribution that always returns V. It is useful
// for pinning a knob in sweeps.
type Constant struct {
	V float64
}

// Sample returns the constant.
func (d Constant) Sample(*RNG) float64 { return d.V }

// Mean returns the constant.
func (d Constant) Mean() float64 { return d.V }

func (d Constant) String() string { return fmt.Sprintf("Constant(%g)", d.V) }

// Zipf draws ranks {1..N} with probability proportional to 1/rank^S.
// Web document popularity is approximately Zipf with S near 1; specweb uses
// it for entry-page selection and as the ground truth against which the
// paper's exponential H(b) approximation is fit.
type Zipf struct {
	N int     // number of ranks
	S float64 // skew exponent

	cdf []float64 // cumulative probabilities, len N
}

// NewZipf precomputes the CDF for a Zipf distribution over {1..n} with skew
// s. It panics if n <= 0 or s < 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("stats: zipf requires n > 0, got %d", n))
	}
	if s < 0 || math.IsNaN(s) {
		panic(fmt.Sprintf("stats: zipf requires s >= 0, got %v", s))
	}
	z := &Zipf{N: n, S: s, cdf: make([]float64, n)}
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), s)
		z.cdf[i-1] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	// Force the last entry to exactly 1 so binary search can never fall off
	// the end due to rounding.
	z.cdf[n-1] = 1
	return z
}

// Rank draws a rank in [1, N].
func (z *Zipf) Rank(g *RNG) int {
	u := g.Float64()
	lo, hi := 0, z.N-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Sample draws a rank as a float64 to satisfy Dist.
func (z *Zipf) Sample(g *RNG) float64 { return float64(z.Rank(g)) }

// Prob returns the probability of rank r (1-based).
func (z *Zipf) Prob(r int) float64 {
	if r < 1 || r > z.N {
		return 0
	}
	if r == 1 {
		return z.cdf[0]
	}
	return z.cdf[r-1] - z.cdf[r-2]
}

// Mean returns the expected rank.
func (z *Zipf) Mean() float64 {
	m := 0.0
	for r := 1; r <= z.N; r++ {
		m += float64(r) * z.Prob(r)
	}
	return m
}

func (z *Zipf) String() string { return fmt.Sprintf("Zipf(n=%d, s=%g)", z.N, z.S) }

// BoundedPareto draws Pareto variates truncated to [xm, cap] by rejection
// with an analytic fallback; it keeps synthetic object sizes from producing
// absurd multi-gigabyte outliers while preserving the heavy tail below cap.
type BoundedPareto struct {
	P   Pareto
	Cap float64
}

// NewBoundedPareto returns a Pareto distribution truncated at cap.
// It panics if cap <= xm.
func NewBoundedPareto(xm, alpha, cap float64) BoundedPareto {
	if cap <= xm {
		panic(fmt.Sprintf("stats: bounded pareto requires cap > xm, got xm=%v cap=%v", xm, cap))
	}
	return BoundedPareto{P: NewPareto(xm, alpha), Cap: cap}
}

// Sample draws by inversion of the truncated CDF (exact, no rejection loop).
func (d BoundedPareto) Sample(g *RNG) float64 {
	// Truncated inversion: F(x) = (1 - (xm/x)^a) / (1 - (xm/cap)^a).
	a := d.P.Alpha
	hm := math.Pow(d.P.Xm, a)
	hc := math.Pow(d.Cap, a)
	u := g.Float64()
	x := math.Pow(-(u*hc-u*hm-hc)/(hc*hm), -1/a)
	if x < d.P.Xm {
		x = d.P.Xm
	}
	if x > d.Cap {
		x = d.Cap
	}
	return x
}

// Mean returns the truncated Pareto mean.
func (d BoundedPareto) Mean() float64 {
	a := d.P.Alpha
	l, h := d.P.Xm, d.Cap
	if a == 1 {
		return l * h / (h - l) * math.Log(h/l)
	}
	la := math.Pow(l, a)
	return la / (1 - math.Pow(l/h, a)) * a / (a - 1) * (1/math.Pow(l, a-1) - 1/math.Pow(h, a-1))
}

func (d BoundedPareto) String() string {
	return fmt.Sprintf("BoundedPareto(xm=%g, alpha=%g, cap=%g)", d.P.Xm, d.P.Alpha, d.Cap)
}
