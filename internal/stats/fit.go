package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned by fitting routines that need at least two
// usable points.
var ErrInsufficientData = errors.New("stats: insufficient data to fit")

// FitExponentialHitCurve estimates λ for the paper's popularity model
//
//	H(b) = 1 - exp(-λ·b)
//
// from an empirical hit curve: points (b_i, H_i) where H_i is the fraction
// of requests covered by the most popular b_i bytes. The fit is weighted
// linear least squares on the transformed model -log(1-H) = λ·b (a
// regression through the origin). Each point is weighted by (1-H)², the
// inverse variance of the transformed observation under additive noise on H,
// so the saturated tail of the curve — where log(1-H) amplifies noise —
// does not dominate the estimate. Points with H >= hCap are discarded
// outright because log(1-H) blows up as the empirical curve saturates.
func FitExponentialHitCurve(bytes []float64, hits []float64) (lambda float64, err error) {
	const hCap = 0.999
	if len(bytes) != len(hits) {
		return 0, errors.New("stats: bytes and hits length mismatch")
	}
	var sxy, sxx float64
	n := 0
	for i := range bytes {
		b, h := bytes[i], hits[i]
		if b <= 0 || h <= 0 || h >= hCap || math.IsNaN(b) || math.IsNaN(h) {
			continue
		}
		y := -math.Log(1 - h)
		w := (1 - h) * (1 - h)
		sxy += w * b * y
		sxx += w * b * b
		n++
	}
	if n < 2 || sxx == 0 {
		return 0, ErrInsufficientData
	}
	lambda = sxy / sxx
	if lambda <= 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return 0, ErrInsufficientData
	}
	return lambda, nil
}

// LinearFit computes ordinary least squares y = a + b·x and returns the
// intercept a, slope b, and the coefficient of determination r².
func LinearFit(xs, ys []float64) (a, b, r2 float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, 0, ErrInsufficientData
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0, ErrInsufficientData
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		r2 = 1
	} else {
		var ssRes float64
		for i := range xs {
			d := ys[i] - (a + b*xs[i])
			ssRes += d * d
		}
		r2 = 1 - ssRes/ssTot
	}
	return a, b, r2, nil
}

// FitZipfExponent estimates the Zipf skew s from per-rank request counts
// (counts[0] is the most popular item) via a log-log regression
// log(count) = c - s·log(rank). Zero counts are skipped.
func FitZipfExponent(counts []int64) (s float64, r2 float64, err error) {
	var xs, ys []float64
	for i, c := range counts {
		if c <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(i+1)))
		ys = append(ys, math.Log(float64(c)))
	}
	if len(xs) < 2 {
		return 0, 0, ErrInsufficientData
	}
	_, b, r2, err := LinearFit(xs, ys)
	if err != nil {
		return 0, 0, err
	}
	return -b, r2, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics for xs. An empty sample yields a
// zero-count Summary with NaN fields.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{N: 0, Mean: nan, Std: nan, Min: nan, Max: nan, Median: nan}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s
}
