package httpspec

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"specweb/internal/obs"
	"specweb/internal/overload"
	"specweb/internal/stats"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// TestServerAdmissionSheds holds the single demand slot externally and
// verifies the server answers 503 + Retry-After + X-Specweb-Shed, that
// the speculative client surfaces ErrShed without retrying, and that
// service resumes when the slot frees.
func TestServerAdmissionSheds(t *testing.T) {
	reg := obs.NewRegistry()
	ctrl := overload.NewController(overload.Config{
		DemandSlots: 1, SpecSlots: 1, QueueDepth: -1, Metrics: reg,
	})
	w := newWorldCfg(t, ModePush, func(cfg *ServerConfig) {
		cfg.Metrics = reg
		cfg.Admission = ctrl
	})
	d := &w.site.Docs[0]

	// Saturate the demand class from outside the server.
	release, err := ctrl.Acquire(context.Background(), overload.Demand)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(w.ts.URL, ClientConfig{ID: "shed-me"})
	_, _, err = c.Get(d.Path)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if got := c.Stats().Shed; got != 1 {
		t.Errorf("client shed count = %d, want 1", got)
	}
	resp, err := http.Get(w.ts.URL + d.Path)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if got := resp.Header.Get(HeaderShed); got != "demand" {
		t.Errorf("%s = %q, want demand", HeaderShed, got)
	}
	ost := w.server.OverloadStats()
	if ost.DemandShed < 2 {
		t.Errorf("demand shed = %d, want >= 2", ost.DemandShed)
	}

	// Freeing the slot restores service.
	release()
	if _, _, err := c.Get(d.Path); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// TestServerDegradationLadder drives the governor (on the test's stepped
// clock) through every rung and asserts the server's behaviour and the
// specweb_overload_* counters at each: rung 1 demotes pushes to hints,
// rung 2 stops speculation, rung 3 sheds low-priority demand, and
// draining restores the baseline knobs.
func TestServerDegradationLadder(t *testing.T) {
	reg := obs.NewRegistry()
	// The governor runs on its own stepped clock, advanced only by the
	// test; the server's real-latency Observe calls land inside the hold
	// window and therefore cannot move the ladder between steps.
	var clkMu sync.Mutex
	now := time.Date(1996, time.February, 26, 9, 0, 0, 0, time.UTC)
	gov := overload.NewGovernor(overload.GovernorConfig{
		Target: 10 * time.Millisecond,
		Alpha:  1, // each sample replaces the EWMA: deterministic steps
		Hold:   time.Second,
		Clock: func() time.Time {
			clkMu.Lock()
			defer clkMu.Unlock()
			return now
		},
		Metrics: reg,
	})
	advanceGov := func(d time.Duration) {
		clkMu.Lock()
		now = now.Add(d)
		clkMu.Unlock()
	}
	w := newWorldCfg(t, ModePush, func(cfg *ServerConfig) {
		cfg.Metrics = reg
		cfg.Governor = gov
	})
	page := pageWithEmbedded(t, w.site)
	w.train(t, page, 10)
	baseTp := w.server.Engine().Tp()

	// get issues one bundle-accepting request from a fresh client and
	// reports the response; fresh clients keep the server's push set
	// identical across rungs.
	seq := 0
	get := func(pth, prio string) *http.Response {
		t.Helper()
		seq++
		req, _ := http.NewRequest(http.MethodGet, w.ts.URL+pth, nil)
		req.Header.Set(HeaderClient, fmt.Sprintf("rung-client-%d", seq))
		req.Header.Set(HeaderAccept, acceptBundle)
		if prio != "" {
			req.Header.Set(HeaderPriority, prio)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp
	}
	isBundle := func(r *http.Response) bool {
		return strings.HasPrefix(r.Header.Get("Content-Type"), "multipart/")
	}
	// climb advances past the hold window and feeds one overloaded
	// sample; the server's own (microsecond) latency observations inside
	// the hold window cannot move the rung in between.
	climb := func(want int) {
		t.Helper()
		advanceGov(2 * time.Second)
		gov.Observe(100 * time.Millisecond)
		if got := gov.Rung(); got != want {
			t.Fatalf("rung = %d, want %d", got, want)
		}
	}
	counter := func(name string) int64 { return reg.Counter(name, "", nil).Value() }

	// Rung 0: trained pushes flow as bundles.
	if r := get(page.Path, ""); !isBundle(r) {
		t.Fatal("rung 0: no bundle despite training")
	}

	// Rung 1 (no_push): pushes demote to prefetch hints.
	climb(overload.RungNoPush)
	r := get(page.Path, "")
	if isBundle(r) {
		t.Error("rung 1: bundle still sent")
	}
	if len(r.Header.Values("Link")) == 0 {
		t.Error("rung 1: suppressed pushes not demoted to hints")
	}
	if got := counter("specweb_overload_pushes_suppressed_total"); got < 1 {
		t.Errorf("pushes_suppressed = %d, want >= 1", got)
	}
	if tp := w.server.Engine().Tp(); tp <= baseTp || tp >= 1 {
		t.Errorf("rung 1 effective Tp = %v, want in (%v, 1)", tp, baseTp)
	}

	// Rung 2 (no_spec): plain responses, no hints, no bundles.
	climb(overload.RungNoSpec)
	r = get(page.Path, "")
	if isBundle(r) || len(r.Header.Values("Link")) > 0 {
		t.Error("rung 2: speculation still visible")
	}
	if got := counter("specweb_overload_embeds_suppressed_total"); got < 1 {
		t.Errorf("embeds_suppressed = %d, want >= 1", got)
	}

	// Rung 3 (shed_demand): low-priority demand is refused, normal
	// priority still served.
	climb(overload.RungShedDemand)
	if r = get(page.Path, "low"); r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("rung 3: low-priority status = %d, want 503", r.StatusCode)
	} else {
		if r.Header.Get("Retry-After") == "" {
			t.Error("rung 3: shed without Retry-After")
		}
		if r.Header.Get(HeaderShed) != "demand" {
			t.Error("rung 3: shed without marker header")
		}
	}
	if r = get(page.Path, ""); r.StatusCode != http.StatusOK {
		t.Errorf("rung 3: normal-priority status = %d, want 200", r.StatusCode)
	}
	if got := counter("specweb_overload_demand_shed_total"); got < 1 {
		t.Errorf("demand_shed = %d, want >= 1", got)
	}
	if tp := w.server.Engine().Tp(); tp != 1 {
		t.Errorf("top-rung effective Tp = %v, want 1", tp)
	}

	// Drain back to normal: baseline knobs restored, pushes resume.
	for want := overload.RungNoSpec; want >= overload.RungNormal; want-- {
		advanceGov(2 * time.Second)
		gov.Observe(time.Millisecond)
		if got := gov.Rung(); got != want {
			t.Fatalf("draining: rung = %d, want %d", got, want)
		}
	}
	if tp := w.server.Engine().Tp(); tp != baseTp {
		t.Errorf("baseline Tp not restored: %v != %v", tp, baseTp)
	}
	if r = get(page.Path, ""); !isBundle(r) {
		t.Error("after drain: pushes did not resume")
	}

	ost := w.server.OverloadStats()
	if ost.Governor.MaxRungSeen != overload.RungShedDemand {
		t.Errorf("max rung seen = %d, want %d", ost.Governor.MaxRungSeen, overload.RungShedDemand)
	}
	if ost.PushesSuppressed < 1 || ost.EmbedsSuppressed < 1 || ost.DemandShed < 1 {
		t.Errorf("ladder counters = %+v, want every rung engaged", ost)
	}
	if moves := counter("specweb_overload_rung_moves_total"); moves != ost.Governor.Moves {
		t.Errorf("rung_moves_total = %d, governor says %d", moves, ost.Governor.Moves)
	}

	// /spec/stats exposes the overload section for replay scrapes.
	resp, err := http.Get(w.ts.URL + "/spec/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Overload *ServerOverloadStats
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Overload == nil || payload.Overload.Governor.MaxRungSeen != overload.RungShedDemand {
		t.Errorf("stats endpoint overload section = %+v", payload.Overload)
	}
}

// TestStatsOmitOverloadWhenDisabled pins the compatibility contract: a
// server without overload control emits exactly the pre-overload
// /spec/stats shape (no Overload key), and a closed-loop fault-free
// replay summary carries neither a chaos nor an overload section.
func TestStatsOmitOverloadWhenDisabled(t *testing.T) {
	w := newWorld(t, ModePush)
	resp, err := http.Get(w.ts.URL + "/spec/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(raw), "Overload") {
		t.Errorf("stats JSON leaks overload section without overload control: %s", raw)
	}

	tr := &trace.Trace{}
	for i := 0; i < 8; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Client: trace.ClientID(fmt.Sprintf("c%d", i%2)),
			Path:   w.site.Docs[0].Path,
		})
	}
	st, err := Replay(tr, ReplayConfig{Base: w.ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	sum := st.Summary()
	if sum.Overload != nil || sum.Chaos != nil {
		t.Errorf("fault-free closed-loop summary grew sections: %+v", sum)
	}
	b, _ := json.Marshal(sum)
	if strings.Contains(string(b), "overload") {
		t.Errorf("summary JSON leaks overload key: %s", b)
	}
}

// slowStore adds a fixed service delay per content fetch, making
// speculative pushes genuinely expensive so open-loop overload is
// reproducible on any machine.
type slowStore struct {
	Store
	delay time.Duration
}

func (s slowStore) Content(id webgraph.DocID) ([]byte, bool) {
	time.Sleep(s.delay)
	return s.Store.Content(id)
}

// TestOpenLoopOverloadAcceptance is the acceptance bar from the issue:
// replayed at roughly twice the speculative closed-loop saturation rate
// with the governor active, demand p99 must stay near the
// no-speculation baseline while at least 90% of everything shed is
// speculative-class work. Bounds are deliberately loose — the point is
// that the ladder sheds speculation, not demand.
func TestOpenLoopOverloadAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock open-loop run")
	}
	site, err := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	var page *webgraph.Document
	for i := range site.Docs {
		d := &site.Docs[i]
		if d.Kind == webgraph.Page && len(d.Embedded) > 0 {
			page = d
			break
		}
	}
	if page == nil {
		t.Fatal("no page with embedded objects")
	}
	// The store delay dominates per-request service time so that
	// scheduler noise on a busy test machine (a few ms) cannot flip
	// which side of saturation the run lands on.
	const delay = 10 * time.Millisecond

	// buildServer assembles a slow-store server; trained selects whether
	// the engine pushes (speculative run) or stays cold (baseline).
	buildServer := func(t *testing.T, trained, governed bool) (*Server, string, func()) {
		reg := obs.NewRegistry()
		cfg := DefaultServerConfig()
		cfg.Mode = ModePush
		cfg.Engine.MinOccurrences = 2
		cfg.Engine.Tp = 0.3
		cfg.Metrics = reg
		if governed {
			ctrl := overload.NewController(overload.Config{
				DemandSlots: 4, SpecSlots: 2,
				QueueDepth: 2048, MaxWait: 2 * time.Second,
				Metrics: reg,
			})
			cfg.Admission = ctrl
			cfg.Governor = overload.NewGovernor(overload.GovernorConfig{
				Target:   2*delay + delay/2,
				Alpha:    0.4,
				Hold:     25 * time.Millisecond,
				Pressure: ctrl.Pressure,
				Metrics:  reg,
			})
		}
		srv, err := NewServer(slowStore{Store: NewSiteStore(site), delay: delay}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		if trained {
			for i := 0; i < 10; i++ {
				c := NewClient(ts.URL, ClientConfig{ID: "trainer"})
				if _, _, err := c.Get(page.Path); err != nil {
					t.Fatal(err)
				}
				for _, e := range page.Embedded {
					if _, _, err := c.Get(site.Doc(e).Path); err != nil {
						t.Fatal(err)
					}
				}
			}
			srv.Engine().Refresh(time.Now())
		}
		return srv, ts.URL, ts.Close
	}

	tr := &trace.Trace{}
	for i := 0; i < 400; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Client: trace.ClientID(fmt.Sprintf("open-%03d", i)),
			Path:   page.Path,
		})
	}
	// With 4 demand slots and (1+len(embedded))×10ms of store time per
	// speculative response, closed-loop speculative saturation is at
	// most 4/(2×10ms) = 200 req/s, so 250 req/s oversubscribes it —
	// while the no-speculation path (one 10ms store call per response,
	// 400 req/s capacity) keeps ~40% headroom even on a noisy machine.
	rcfg := ReplayConfig{
		AcceptBundles: true,
		Rate:          250,
		Burst:         8,
	}

	_, baseURL, closeBase := buildServer(t, false, true)
	rcfg.Base = baseURL
	baseStats, err := Replay(tr, rcfg)
	closeBase()
	if err != nil {
		t.Fatal(err)
	}
	baseSum := baseStats.Summary()

	_, specURL, closeSpec := buildServer(t, true, true)
	rcfg.Base = specURL
	specStats, err := Replay(tr, rcfg)
	closeSpec()
	if err != nil {
		t.Fatal(err)
	}
	specSum := specStats.Summary()

	ov := specSum.Overload
	if ov == nil {
		t.Fatal("open-loop summary missing overload section")
	}
	t.Logf("baseline p99 %.1fms; governed p99 %.1fms, shed %d spec / %d demand (ratio %.3f), max rung %d",
		baseSum.Overload.DemandP99MS, ov.DemandP99MS,
		ov.SpeculativeShed, ov.DemandShed, ov.ShedSpeculativeRatio, ov.MaxRung)
	if ov.SpeculativeShed == 0 {
		t.Fatal("governor never shed speculative work at 2x saturation")
	}
	if ov.MaxRung < overload.RungNoPush {
		t.Errorf("ladder never climbed: max rung %d", ov.MaxRung)
	}
	if ov.ShedSpeculativeRatio < 0.9 {
		t.Errorf("shed speculative ratio = %.3f, want >= 0.9 (shed must be speculation, not demand)",
			ov.ShedSpeculativeRatio)
	}
	// Loose deterministic bound on the latency claim: the governed run's
	// demand p99 must stay within a small multiple of the
	// no-speculation baseline instead of diverging toward the 2s queue
	// limit as an ungoverned overload would. The additive slack covers
	// the backlog built during the governor's climb (a few Hold
	// periods of oversubscribed arrivals draining at ~150 req/s).
	limit := 3*baseSum.Overload.DemandP99MS + 250
	if ov.DemandP99MS > limit {
		t.Errorf("governed demand p99 %.1fms exceeds %.1fms (3x baseline + 250ms slack)",
			ov.DemandP99MS, limit)
	}
}
