package httpspec

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"specweb/internal/leakcheck"
	"specweb/internal/obs"
	"specweb/internal/stats"
	"specweb/internal/webgraph"
)

// TestServerMetricsExposition asserts that a server's /metrics output
// reflects the requests it actually served.
func TestServerMetricsExposition(t *testing.T) {
	leakcheck.Check(t)
	site, err := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg := DefaultServerConfig()
	cfg.Metrics = reg
	cfg.Tracer = obs.NewTracer(16)
	srv, err := NewServer(NewSiteStore(site), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const served = 3
	for i := 0; i < served; i++ {
		resp, err := http.Get(ts.URL + site.Docs[i].Path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if resp, err := http.Get(ts.URL + "/no/such/doc"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	mts := httptest.NewServer(reg.Handler())
	defer mts.Close()
	resp, err := http.Get(mts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)

	for _, want := range []string{
		"specweb_server_requests_total 3",
		"specweb_server_not_found_total 1",
		"specweb_server_request_seconds_count 3",
		"specweb_server_response_bytes_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q\n%s", want, text)
		}
	}
	var wantBytes int64
	for i := 0; i < served; i++ {
		wantBytes += site.Docs[i].Size
	}
	if want := "specweb_server_bytes_sent_total " + strconv.FormatInt(wantBytes, 10); !strings.Contains(text, want) {
		t.Errorf("metrics output missing %q", want)
	}
}

// TestServerMetricsSpeculation asserts push-mode speculation shows up in
// the pushed-docs counter.
func TestServerMetricsSpeculation(t *testing.T) {
	reg := obs.NewRegistry()
	w := newWorldWithMetrics(t, ModePush, reg)
	page := pageWithEmbedded(t, w.site)
	w.train(t, page, 4)

	c := NewClient(w.ts.URL, ClientConfig{ID: "viewer", AcceptBundles: true})
	if _, _, err := c.Get(page.Path); err != nil {
		t.Fatal(err)
	}
	if cs := c.Stats(); cs.Pushed == 0 {
		t.Skip("training did not yield pushes on this seed")
	}

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	text := rec.Body.String()
	if !strings.Contains(text, "specweb_server_pushed_docs_total") ||
		strings.Contains(text, "specweb_server_pushed_docs_total 0\n") {
		t.Errorf("expected non-zero pushed docs counter, got:\n%s", text)
	}
	if !strings.Contains(text, "specweb_server_bundles_total 1") {
		t.Errorf("expected one bundle built, got:\n%s", text)
	}
}

// newWorldWithMetrics mirrors newWorld but isolates metrics in reg.
func newWorldWithMetrics(t *testing.T, mode Mode, reg *obs.Registry) *testWorld {
	t.Helper()
	leakcheck.Check(t)
	site, err := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	w := &testWorld{
		site:  site,
		store: NewSiteStore(site),
		now:   time.Date(1995, time.June, 1, 9, 0, 0, 0, time.UTC),
	}
	cfg := DefaultServerConfig()
	cfg.Mode = mode
	cfg.Metrics = reg
	cfg.Tracer = obs.NewTracer(64)
	cfg.Engine.MinOccurrences = 2
	cfg.Engine.Tp = 0.3
	cfg.Engine.EmbedThreshold = 0.8
	cfg.Clock = func() time.Time {
		w.mu.Lock()
		defer w.mu.Unlock()
		return w.now
	}
	srv, err := NewServer(w.store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.server = srv
	w.ts = httptest.NewServer(srv)
	t.Cleanup(w.ts.Close)
	return w
}

// TestReplaySummaryRatios checks the ratio arithmetic on hand-built stats.
func TestReplaySummaryRatios(t *testing.T) {
	s := &ReplayStats{
		Clients:      2,
		Requests:     10,
		CacheHits:    4,
		SpecHits:     2,
		Prefetched:   1,
		Pushed:       2,
		BytesIn:      9000,
		SpecHitBytes: 2000,
		DemandBytes:  10000,
		MissBytes:    6000,
		latencies:    []float64{0.001, 0.002, 0.003, 0.004, 0.010, 0.001},
		missDurSum:   0.019,
		missCount:    4,
	}
	sum := s.Summary()
	// baseline bytes = 6000 + 2000 = 8000
	if sum.BaselineBytes != 8000 {
		t.Fatalf("baseline bytes = %d, want 8000", sum.BaselineBytes)
	}
	if got, want := sum.Ratios.Bandwidth, 9000.0/8000.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("bandwidth ratio = %g, want %g", got, want)
	}
	// server load: (10-4+1)/(10-4+2) = 7/8
	if got, want := sum.Ratios.ServerLoad, 7.0/8.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("server load ratio = %g, want %g", got, want)
	}
	// byte miss rate: 6000/8000
	if got, want := sum.Ratios.ByteMissRate, 0.75; math.Abs(got-want) > 1e-9 {
		t.Errorf("byte miss rate ratio = %g, want %g", got, want)
	}
	// service time: sum(lat)=0.021; baseline = 0.021 + 2*(0.019/4)
	wantST := 0.021 / (0.021 + 2*0.019/4)
	if got := sum.Ratios.ServiceTime; math.Abs(got-wantST) > 1e-9 {
		t.Errorf("service time ratio = %g, want %g", got, wantST)
	}
	if sum.LatencyMS.Max != 10 {
		t.Errorf("max latency = %gms, want 10", sum.LatencyMS.Max)
	}
	if sum.LatencyMS.P50 <= 0 || sum.LatencyMS.P99 < sum.LatencyMS.P50 {
		t.Errorf("implausible percentiles: %+v", sum.LatencyMS)
	}
}

// TestReplaySummaryEmpty keeps the degenerate case neutral.
func TestReplaySummaryEmpty(t *testing.T) {
	sum := (&ReplayStats{}).Summary()
	if sum.Ratios.Bandwidth != 1 || sum.Ratios.ServerLoad != 1 ||
		sum.Ratios.ServiceTime != 1 || sum.Ratios.ByteMissRate != 1 {
		t.Errorf("empty run should yield neutral ratios, got %+v", sum.Ratios)
	}
}
