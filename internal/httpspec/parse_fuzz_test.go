package httpspec

import (
	"math"
	"strings"
	"testing"

	"specweb/internal/attrib"
	"specweb/internal/obs"
	"specweb/internal/overload"
	"specweb/internal/stats"
	"specweb/internal/webgraph"
)

// The speculative-protocol headers cross a trust boundary: Spec-P,
// Spec-Rung, and Spec-Attrib arrive from arbitrary clients and flow into
// the attribution ledger and metric labels. These fuzz targets pin the
// hardening contract: no parser may panic, and garbage must degrade to a
// safe zero value instead of poisoning downstream state.

func FuzzParsePMilli(f *testing.F) {
	for _, s := range []string{"", "0", "1000", "500", "-1", "1001",
		"9223372036854775807", "-9223372036854775808", "0x10", "1e3",
		"999999999999999999999999", "12.5", " 7", "7 ", "+3", "\x00"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, ok := parsePMilli(s)
		if v < 0 || v > 1000 {
			t.Fatalf("parsePMilli(%q) = %d outside [0, 1000]", s, v)
		}
		if !ok && v != 0 {
			t.Fatalf("parsePMilli(%q) rejected but returned %d", s, v)
		}
		v2, ok2 := parsePMilli(s)
		if v2 != v || ok2 != ok {
			t.Fatalf("parsePMilli(%q) not deterministic", s)
		}
	})
}

func FuzzValidRung(f *testing.F) {
	for _, s := range []string{"", "full", "no-push", "lean", "off",
		"FULL", "full ", "totally-made-up", "full\x00", strings.Repeat("x", 4096)} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got := validRung(s)
		if got == "" {
			return
		}
		if got != s {
			t.Fatalf("validRung(%q) invented %q", s, got)
		}
		// Whatever passes must be a real ladder rung: these strings become
		// ledger keys and metric labels, so the set must stay closed.
		if _, ok := overload.ParseRung(got); !ok {
			t.Fatalf("validRung(%q) admitted an unknown rung", s)
		}
	})
}

func FuzzClampProb(f *testing.F) {
	for _, v := range []float64{0, 1, 0.5, -1, 2, math.NaN(),
		math.Inf(1), math.Inf(-1), math.SmallestNonzeroFloat64, -0.0} {
		f.Add(v)
	}
	f.Fuzz(func(t *testing.T, p float64) {
		got := clampProb(p)
		if math.IsNaN(got) || got < 0 || got > 1 {
			t.Fatalf("clampProb(%v) = %v outside [0, 1]", p, got)
		}
	})
}

func FuzzParseAttribToken(f *testing.F) {
	for _, s := range []string{"", "c:push:/pages/p0000.html", "w:prefetch:/a",
		"c:replica:/x", "x:push:/a", "c:push:", "c:push:relative", "c::/a",
		"c:push", "c:push:/a:b:c", "c:PUSH:/a", "w:push:/" + strings.Repeat("a", 2000),
		"c:push:/\x00", "::::", "c:push:/a c:push:/b"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, tok string) {
		consumed, class, path, ok := parseAttribToken(tok)
		if !ok {
			if consumed || class != "" || path != "" {
				t.Fatalf("parseAttribToken(%q) rejected but leaked (%v, %q, %q)",
					tok, consumed, class, path)
			}
			return
		}
		if !validAttribClass(class) {
			t.Fatalf("parseAttribToken(%q) admitted class %q", tok, class)
		}
		if path == "" || path[0] != '/' || len(path) > maxAttribPathLen {
			t.Fatalf("parseAttribToken(%q) admitted path %q", tok, path)
		}
	})
}

// FuzzIngestAttrib drives raw header bytes through the server's full
// Spec-Attrib ingestion path and asserts the ledger stays well-formed: no
// panic, class-map cardinality bounded to the known delivery classes, and
// no negative totals — regardless of what a hostile client sends.
func FuzzIngestAttrib(f *testing.F) {
	site, err := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(5))
	if err != nil {
		f.Fatal(err)
	}
	store := NewSiteStore(site)
	realPath, _ := store.Path(site.Entries[0])

	cfg := DefaultServerConfig()
	cfg.Attrib = attrib.NewLedger(64, obs.NewRegistry())
	srv, err := NewServer(store, cfg)
	if err != nil {
		f.Fatal(err)
	}

	f.Add("c:push:" + realPath)
	f.Add("w:prefetch:" + realPath + " c:replica:" + realPath)
	f.Add(strings.Repeat("c:push:"+realPath+" ", 200))
	f.Add("c:evil:" + realPath + " w:push:/no/such/doc")
	f.Add("c:push:" + realPath + "\x00 w:::")
	f.Add(strings.Repeat("\t x", 5000))
	f.Fuzz(func(t *testing.T, header string) {
		srv.ingestAttrib(header)
		rep := cfg.Attrib.Report(8)
		for class := range rep.Classes {
			if !validAttribClass(class) {
				t.Fatalf("hostile header minted ledger class %q", class)
			}
		}
		tot := cfg.Attrib.TotalsSnapshot()
		if tot.ConsumedBytes < 0 || tot.WastedBytes < 0 || tot.Consumed < 0 || tot.Wasted < 0 {
			t.Fatalf("ledger totals went negative: %+v", tot)
		}
	})
}
