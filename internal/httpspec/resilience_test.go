package httpspec

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"specweb/internal/checkpoint"
	"specweb/internal/core"
	"specweb/internal/leakcheck"
	"specweb/internal/obs"
	"specweb/internal/resilience"
	"specweb/internal/resilience/faults"
	"specweb/internal/stats"
	"specweb/internal/synth"
)

// fastRetry keeps retried tests quick and deterministic.
func fastRetry(attempts int) resilience.RetryConfig {
	return resilience.RetryConfig{
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0,
	}
}

func TestProxyPartialDisseminate(t *testing.T) {
	leakcheck.Check(t)
	// An origin whose replica list names two documents, one of which
	// always fails to pull: the refresh must apply the good one instead
	// of discarding the whole set.
	mux := http.NewServeMux()
	mux.HandleFunc("/spec/replicas", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode([]string{"/good", "/bad"})
	})
	mux.HandleFunc("/good", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "good document body")
	})
	mux.HandleFunc("/bad", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	origin := httptest.NewServer(mux)
	defer origin.Close()

	reg := obs.NewRegistry()
	proxy := NewProxyWith(origin.URL, ProxyConfig{
		Retry:   fastRetry(2),
		Metrics: reg,
	})
	n, err := proxy.Disseminate(context.Background(), 1<<20)
	if err == nil {
		t.Fatal("partial refresh reported no error")
	}
	if n != 1 {
		t.Fatalf("applied %d documents, want 1", n)
	}
	if !strings.Contains(err.Error(), "partial refresh") {
		t.Errorf("error does not describe the partial refresh: %v", err)
	}
	if got := reg.Counter("specweb_proxy_partial_disseminations_total", "", nil).Value(); got != 1 {
		t.Errorf("partial_disseminations_total = %d, want 1", got)
	}

	// The applied document serves as a replica hit.
	pts := httptest.NewServer(proxy)
	defer pts.Close()
	resp, err := http.Get(pts.URL + "/good")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Served-By") != "specweb-proxy" || string(body) != "good document body" {
		t.Errorf("replica hit not served: served-by=%q body=%q",
			resp.Header.Get("X-Served-By"), body)
	}
}

func TestProxyServesStaleWhenOriginDown(t *testing.T) {
	leakcheck.Check(t)
	// Phase 1: the origin advertises /doc and the proxy replicates it.
	// Phase 2: the replica list empties, superseding /doc into the stale
	// store. Then the origin dies, and a GET /doc must degrade to the
	// stale copy instead of 502ing.
	var empty atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("/spec/replicas", func(w http.ResponseWriter, r *http.Request) {
		if empty.Load() {
			io.WriteString(w, "[]")
			return
		}
		json.NewEncoder(w).Encode([]string{"/doc"})
	})
	mux.HandleFunc("/doc", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "replicated once upon a time")
	})
	origin := httptest.NewServer(mux)

	reg := obs.NewRegistry()
	proxy := NewProxyWith(origin.URL, ProxyConfig{
		Retry:   fastRetry(2),
		Metrics: reg,
	})
	if n, err := proxy.Disseminate(context.Background(), 1<<20); err != nil || n != 1 {
		t.Fatalf("first disseminate: n=%d err=%v", n, err)
	}
	empty.Store(true)
	if n, err := proxy.Disseminate(context.Background(), 1<<20); err != nil || n != 0 {
		t.Fatalf("second disseminate: n=%d err=%v", n, err)
	}
	if st := proxy.Stats(); st.Replicas != 0 || st.StaleDocs != 1 {
		t.Fatalf("stats after supersede: %+v", st)
	}

	origin.Close()
	pts := httptest.NewServer(proxy)
	defer pts.Close()

	resp, err := http.Get(pts.URL + "/doc")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale serve status = %d", resp.StatusCode)
	}
	if string(body) != "replicated once upon a time" {
		t.Errorf("stale body = %q", body)
	}
	if resp.Header.Get(HeaderStale) != "1" {
		t.Error("stale response not marked with " + HeaderStale)
	}
	if w := resp.Header.Get("Warning"); !strings.Contains(w, "110") {
		t.Errorf("Warning header = %q, want a 110", w)
	}
	if st := proxy.Stats(); st.StaleServes != 1 {
		t.Errorf("StaleServes = %d, want 1", st.StaleServes)
	}
	if got := reg.Counter("specweb_proxy_stale_serves_total", "", nil).Value(); got != 1 {
		t.Errorf("stale_serves_total = %d, want 1", got)
	}
	if got := reg.Counter("specweb_proxy_origin_errors_total", "", nil).Value(); got == 0 {
		t.Error("origin_errors_total not incremented by the dead origin")
	}

	// A path that never had a replica still fails: 502 while the circuit
	// holds, 503 once the accumulated connection refusals trip it.
	resp, err = http.Get(pts.URL + "/never-replicated")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway && resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("unreplicated path status = %d, want 502 or 503", resp.StatusCode)
	}
}

func TestProxyBreakerOpensAndRecovers(t *testing.T) {
	leakcheck.Check(t)
	// Deterministic clock: the test steps through the breaker cool-down.
	var mu sync.Mutex
	now := time.Date(1995, time.July, 1, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	var failing atomic.Bool
	var originHits atomic.Int64
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		originHits.Add(1)
		if failing.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		io.WriteString(w, "ok")
	}))
	defer origin.Close()

	reg := obs.NewRegistry()
	proxy := NewProxyWith(origin.URL, ProxyConfig{
		Retry: resilience.RetryConfig{MaxAttempts: 1}, // isolate the breaker
		Breaker: resilience.BreakerConfig{
			Window:      8,
			MinSamples:  2,
			FailureRate: 0.5,
			OpenFor:     time.Second,
			Clock:       clock,
		},
		DisableServeStale: true,
		Metrics:           reg,
	})
	pts := httptest.NewServer(proxy)
	defer pts.Close()

	get := func() int {
		t.Helper()
		resp, err := http.Get(pts.URL + "/x")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// Two 5xx forwards trip the circuit (MinSamples 2, rate 1.0). The
	// origin's answer is still relayed while the circuit is closed.
	failing.Store(true)
	for i := 0; i < 2; i++ {
		if code := get(); code != http.StatusInternalServerError {
			t.Fatalf("forward %d status = %d, want 500", i, code)
		}
	}
	if st := proxy.Breaker().State(); st != resilience.Open {
		t.Fatalf("breaker state = %v, want open", st)
	}

	// While open, requests are rejected without touching the origin.
	seen := originHits.Load()
	for i := 0; i < 3; i++ {
		if code := get(); code != http.StatusServiceUnavailable {
			t.Fatalf("open-circuit status = %d, want 503", code)
		}
	}
	if originHits.Load() != seen {
		t.Errorf("origin saw %d requests while the circuit was open",
			originHits.Load()-seen)
	}

	// After the cool-down a half-open probe goes through; the recovered
	// origin closes the circuit again.
	failing.Store(false)
	advance(2 * time.Second)
	if code := get(); code != http.StatusOK {
		t.Fatalf("probe status = %d, want 200", code)
	}
	if st := proxy.Breaker().State(); st != resilience.Closed {
		t.Fatalf("breaker state after probe = %v, want closed", st)
	}
	if code := get(); code != http.StatusOK {
		t.Errorf("post-recovery status = %d, want 200", code)
	}
	if bs := proxy.Breaker().Stats(); bs.Opens != 1 || bs.Rejected == 0 {
		t.Errorf("breaker stats = %+v", bs)
	}
	if got := reg.Counter("specweb_breaker_transitions_total", "",
		obs.Labels{"breaker": origin.URL, "to": "open"}).Value(); got != 1 {
		t.Errorf("transitions to open = %d, want 1", got)
	}
}

// headerRecordingTransport hands the proxy a handcrafted response full of
// hop-by-hop headers and records what the proxy actually sent, so both
// stripping directions are observable without real network behaviour in
// the way.
type headerRecordingTransport struct {
	mu   sync.Mutex
	sent http.Header
}

func (t *headerRecordingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	t.sent = req.Header.Clone()
	t.mu.Unlock()
	h := http.Header{}
	h.Set("Content-Type", "text/plain")
	h.Set("Keep-Alive", "timeout=5")
	h.Set("Connection", "X-Origin-Secret")
	h.Set("X-Origin-Secret", "internal")
	h.Set("X-Public", "yes")
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     h,
		Body:       io.NopCloser(strings.NewReader("body")),
		Request:    req,
	}, nil
}

func TestProxyStripsHopByHopHeaders(t *testing.T) {
	rt := &headerRecordingTransport{}
	proxy := NewProxyWith("http://origin.example", ProxyConfig{
		HTTP:    &http.Client{Transport: rt},
		Retry:   resilience.RetryConfig{MaxAttempts: 1},
		Metrics: obs.NewRegistry(),
	})

	req := httptest.NewRequest(http.MethodGet, "/x", nil)
	req.URL = &url.URL{Path: "/x"}
	req.Header.Set("Connection", "X-Client-Secret, Keep-Alive")
	req.Header.Set("X-Client-Secret", "hop")
	req.Header.Set("Keep-Alive", "timeout=9")
	req.Header.Set("Proxy-Connection", "keep-alive")
	req.Header.Set("Te", "trailers")
	req.Header.Set("X-Forward-Me", "yes")
	rec := httptest.NewRecorder()
	proxy.ServeHTTP(rec, req)

	for _, name := range []string{"Connection", "X-Client-Secret", "Keep-Alive", "Proxy-Connection", "Te"} {
		if v := rt.sent.Get(name); v != "" {
			t.Errorf("hop-by-hop request header %s=%q reached the origin", name, v)
		}
	}
	if rt.sent.Get("X-Forward-Me") != "yes" {
		t.Error("end-to-end request header was stripped")
	}

	resp := rec.Result()
	for _, name := range []string{"Connection", "Keep-Alive", "X-Origin-Secret"} {
		if v := resp.Header.Get(name); v != "" {
			t.Errorf("hop-by-hop response header %s=%q reached the client", name, v)
		}
	}
	if resp.Header.Get("X-Public") != "yes" {
		t.Error("end-to-end response header was stripped")
	}
}

func TestStripHopByHop(t *testing.T) {
	h := http.Header{}
	h.Set("Connection", "x-a, x-b")
	h.Set("X-A", "1")
	h.Set("X-B", "2")
	h.Set("X-C", "3")
	h.Set("Transfer-Encoding", "chunked")
	h.Set("Upgrade", "websocket")
	stripHopByHop(h)
	for _, gone := range []string{"Connection", "X-A", "X-B", "Transfer-Encoding", "Upgrade"} {
		if h.Get(gone) != "" {
			t.Errorf("%s survived stripping", gone)
		}
	}
	if h.Get("X-C") != "3" {
		t.Error("unrelated header stripped")
	}
}

func TestChaosReplayAvailability(t *testing.T) {
	// The acceptance bar: a 20% injected connection-error rate with
	// 4-attempt retries must keep request availability above 99%.
	w := newWorld(t, ModePush)
	scfg := synth.DefaultConfig(w.site, nil)
	scfg.Days = 1
	scfg.SessionsPerDay = 25
	scfg.RemoteClients = 20
	scfg.LocalClients = 5
	res, err := synth.Generate(scfg, stats.NewRNG(99))
	if err != nil {
		t.Fatal(err)
	}

	inj := faults.New(faults.Config{
		Seed:      42,
		ErrorRate: 0.2,
		Metrics:   obs.NewRegistry(),
	})
	rs, err := Replay(res.Trace, ReplayConfig{
		Base:           w.ts.URL,
		AcceptBundles:  true,
		HTTP:           &http.Client{Transport: inj.Transport(nil)},
		Retry:          fastRetry(4),
		RequestTimeout: 10 * time.Second,
		Chaos:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fs := inj.Stats(); fs.Errors == 0 {
		t.Fatal("the injector never fired; the chaos run tested nothing")
	}
	if rs.Retried == 0 {
		t.Error("injected errors caused no retries")
	}
	sum := rs.Summary()
	if sum.Chaos == nil {
		t.Fatal("chaos run produced no chaos summary")
	}
	if sum.Chaos.Availability <= 0.99 {
		t.Errorf("availability = %.4f under 20%% faults, want > 0.99 (errors %d of %d)",
			sum.Chaos.Availability, rs.Errors, rs.Requests)
	}
	if sum.Chaos.Retries != rs.Retried {
		t.Errorf("summary retries %d != stats %d", sum.Chaos.Retries, rs.Retried)
	}
}

func TestReplaySummaryChaosFieldOptIn(t *testing.T) {
	// Non-chaos summaries must serialize without any chaos field, so
	// fault-free runs stay byte-identical to earlier versions.
	s := &ReplayStats{Requests: 10, Errors: 1, Retried: 3, StaleServes: 2}
	b, err := json.Marshal(s.Summary())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "chaos") {
		t.Errorf("non-chaos summary mentions chaos: %s", b)
	}

	s.Chaos = true
	sum := s.Summary()
	if sum.Chaos == nil {
		t.Fatal("chaos summary missing")
	}
	if want := 0.9; sum.Chaos.Availability != want {
		t.Errorf("availability = %v, want %v", sum.Chaos.Availability, want)
	}
	if want := 0.2; sum.Chaos.StaleRatio != want {
		t.Errorf("stale ratio = %v, want %v", sum.Chaos.StaleRatio, want)
	}

	// A chaos run against a server without a checkpoint store must not
	// grow a checkpoint section; one with a store carries its ledger.
	b, err = json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "checkpoint") {
		t.Errorf("storeless chaos summary mentions checkpoint: %s", b)
	}
	s.ServerEngine = &core.Stats{Checkpoint: &checkpoint.Counters{Saved: 2, Loaded: 1}}
	sum = s.Summary()
	if sum.Chaos.Checkpoint == nil || sum.Chaos.Checkpoint.Saved != 2 || sum.Chaos.Checkpoint.Loaded != 1 {
		t.Errorf("checkpoint ledger did not flow into chaos summary: %+v", sum.Chaos.Checkpoint)
	}
}

func TestClientCountsStaleServes(t *testing.T) {
	leakcheck.Check(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(HeaderStale, "1")
		io.WriteString(w, "stale body")
	}))
	defer srv.Close()
	c := NewClient(srv.URL, ClientConfig{ID: "stale-counter"})
	if _, _, err := c.Get("/x"); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().StaleServes; got != 1 {
		t.Errorf("StaleServes = %d, want 1", got)
	}
}

func TestClientRetriesThroughFaults(t *testing.T) {
	leakcheck.Check(t)
	// A flaky origin that 500s on every odd request to /a: with retries
	// the client's Get still succeeds, and the retry count is visible.
	var calls, total atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		total.Add(1)
		if r.URL.Path != "/a" {
			http.NotFound(w, r)
			return
		}
		if calls.Add(1)%2 == 1 {
			http.Error(w, "flaky", http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "document %s", r.URL.Path)
	}))
	defer srv.Close()

	c := NewClient(srv.URL, ClientConfig{ID: "retrier", Retry: fastRetry(3)})
	body, fromCache, err := c.Get("/a")
	if err != nil {
		t.Fatal(err)
	}
	if fromCache || string(body) != "document /a" {
		t.Errorf("got %q (cache %v)", body, fromCache)
	}
	if got := c.Stats().Retries; got != 1 {
		t.Errorf("Retries = %d, want 1", got)
	}

	// A 404 is permanent: no retry is spent on it.
	before := total.Load()
	nf := NewClient(srv.URL, ClientConfig{Retry: fastRetry(3)})
	if _, _, err := nf.Get("/nope"); err == nil {
		t.Error("404 did not surface")
	}
	if attempts := total.Load() - before; attempts != 1 {
		t.Errorf("permanent 404 consumed %d attempts, want 1", attempts)
	}
}
