package httpspec

import (
	"testing"
	"time"

	"specweb/internal/estguard"
	"specweb/internal/webgraph"
)

// TestSnapshotRejectionFallsBackToLastGood drives the estimator through a
// poisoned refresh and proves the last-good fallback end to end: the
// candidate snapshot is rejected, the previously accepted snapshot keeps
// serving speculation, and not a single demand request is dropped at any
// point. Classification is floored out (MinRequests huge) so only the
// snapshot judge is under test; leakcheck is registered by newWorldCfg.
func TestSnapshotRejectionFallsBackToLastGood(t *testing.T) {
	var guard *estguard.Guard
	w := newWorldCfg(t, ModePush, func(cfg *ServerConfig) {
		guard = estguard.New(estguard.Config{
			Seed:           1,
			MinRequests:    1 << 20, // never quarantine: isolate the judge
			DriftThreshold: 100,     // never early-refresh: scores cap at 2
			MaxRegression:  0.05,    // any real confidence drop rejects
		})
		cfg.Engine.Guard = guard
	})
	page := pageWithEmbedded(t, w.site)
	w.train(t, page, 10) // refresh 1: first snapshot, accepted unconditionally

	demandGets, cachedGets := 0, 0
	mustGet := func(c *Client, path string, wantSize int64) {
		t.Helper()
		body, fromCache, err := c.Get(path)
		if err != nil {
			t.Fatalf("demand request %s dropped: %v", path, err)
		}
		if fromCache {
			cachedGets++
		} else if int64(len(body)) != wantSize {
			t.Fatalf("demand request %s returned %d bytes, want %d", path, len(body), wantSize)
		}
		demandGets++
	}

	// Poisoning window: every row the trained snapshot relies on (the page
	// and each of its embeds) is followed by a rotating foreign document,
	// with a stride break after each pair. The trained successors decay
	// below the push threshold while each one-shot poison pair stays under
	// the trust floor, so the candidate snapshot scores near zero against
	// the defended last-good confidence.
	var others []*webgraph.Document
	for i := range w.site.Docs {
		d := &w.site.Docs[i]
		if d.Kind == webgraph.Page && d.ID != page.ID {
			others = append(others, d)
		}
	}
	if len(others) < 4 {
		t.Fatal("site too small to poison")
	}
	srcs := []*webgraph.Document{page}
	for _, e := range page.Embedded {
		srcs = append(srcs, w.site.Doc(e))
	}
	k := 0
	for i := 0; i < 12; i++ {
		c := NewClient(w.ts.URL, ClientConfig{ID: "poisoner"})
		for _, src := range srcs {
			mustGet(c, src.Path, src.Size)
			w.advance(300 * time.Millisecond)
			d := others[k%len(others)]
			k++
			mustGet(c, d.Path, d.Size)
			w.advance(6 * time.Second) // past the stride window: pair is closed
		}
		w.advance(time.Hour)
	}
	w.server.Engine().Refresh(w.clock())

	st := w.server.Engine().Stats()
	if st.SnapshotsRejected == 0 {
		t.Fatal("poisoned candidate snapshot was not rejected")
	}
	if st.Refreshes < 2 {
		t.Fatalf("refreshes = %d, want >= 2", st.Refreshes)
	}
	gs := guard.StatsSnapshot()
	if gs.RejectedSnapshots != st.SnapshotsRejected {
		t.Errorf("guard rejected = %d, engine rejected = %d", gs.RejectedSnapshots, st.SnapshotsRejected)
	}
	if gs.QuarantinedClients != 0 {
		t.Errorf("classification fired (%d quarantined) despite the floor", gs.QuarantinedClients)
	}

	// The last-good snapshot must still be serving: a fresh reader gets
	// the trained push bundle exactly as before the poisoning window.
	c := NewClient(w.ts.URL, ClientConfig{ID: "reader", AcceptBundles: true})
	mustGet(c, page.Path, page.Size)
	if c.Stats().Pushed == 0 {
		t.Fatal("rejection did not fall back to the last-good snapshot: no push")
	}
	for _, e := range page.Embedded {
		mustGet(c, w.site.Doc(e).Path, w.site.Doc(e).Size)
	}

	// Zero dropped demand requests: every GET we issued either reached the
	// server and was served (all returned success above) or was satisfied
	// from a client cache fill — nothing was shed or errored. Training ran
	// 10 episodes of 1+len(embeds) uncached GETs each.
	trained := 10 * (1 + len(page.Embedded))
	served := w.server.Stats().Requests
	if served != int64(trained+demandGets-cachedGets) {
		t.Errorf("server served %d requests; want %d (demand GETs minus cache hits)",
			served, trained+demandGets-cachedGets)
	}
}
