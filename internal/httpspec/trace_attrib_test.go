package httpspec

import (
	"net/http/httptest"
	"testing"

	"specweb/internal/attrib"
	"specweb/internal/obs"
)

// findSpan returns the first recorded span with the given name.
func findSpan(t *testing.T, tr *obs.Tracer, name string) obs.Span {
	t.Helper()
	for _, s := range tr.Recent() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no span named %q (have %v)", name, spanNames(tr))
	return obs.Span{}
}

func spanNames(tr *obs.Tracer) []string {
	var names []string
	for _, s := range tr.Recent() {
		names = append(names, s.Name)
	}
	return names
}

// TestTraceSpansClientProxyServer proves the tentpole claim: one demand
// fetch produces a single trace ID visible in three separate processes'
// tracers (client, proxy, origin), with the parent chain intact across
// both network hops.
func TestTraceSpansClientProxyServer(t *testing.T) {
	serverTr := obs.NewTracer(64)
	w := newWorldCfg(t, ModePush, func(cfg *ServerConfig) {
		cfg.Tracer = serverTr
		cfg.Metrics = obs.NewRegistry()
	})
	proxyTr := obs.NewTracer(64)
	p := NewProxyWith(w.ts.URL, ProxyConfig{
		Tracer:  proxyTr,
		Metrics: obs.NewRegistry(),
	})
	pts := httptest.NewServer(p)
	defer pts.Close()

	clientTr := obs.NewTracer(64)
	c := NewClient(pts.URL, ClientConfig{ID: "tracing", Tracer: clientTr})
	doc := &w.site.Docs[0]
	if _, _, err := c.Get(doc.Path); err != nil {
		t.Fatal(err)
	}

	cs := findSpan(t, clientTr, "client.get")
	ps := findSpan(t, proxyTr, "proxy.request")
	ss := findSpan(t, serverTr, "server.request")
	if cs.Trace == "" {
		t.Fatal("client span has empty trace ID")
	}
	if ps.Trace != cs.Trace || ss.Trace != cs.Trace {
		t.Fatalf("trace IDs differ across hops: client=%s proxy=%s server=%s",
			cs.Trace, ps.Trace, ss.Trace)
	}
	if cs.Parent != 0 {
		t.Errorf("client span should be the root, parent = %#x", uint64(cs.Parent))
	}
	if ps.Parent != cs.ID {
		t.Errorf("proxy span parent = %#x, want client span %#x", uint64(ps.Parent), uint64(cs.ID))
	}
	if ss.Parent != ps.ID {
		t.Errorf("server span parent = %#x, want proxy span %#x", uint64(ss.Parent), uint64(ps.ID))
	}
	// All three spans must be distinct — a shared trace, not a shared span.
	if cs.ID == ps.ID || ps.ID == ss.ID || cs.ID == ss.ID {
		t.Errorf("span IDs collide: client=%#x proxy=%#x server=%#x",
			uint64(cs.ID), uint64(ps.ID), uint64(ss.ID))
	}
}

// TestAttribPushEndToEnd walks one push delivery through its whole
// attribution life cycle: the server records the bundle parts it pushes,
// the client records them on arrival, a demand hit resolves one as
// consumed, ResolveOutstanding drains the rest as wasted, and the
// Spec-Attrib feedback header carries every resolution back to the
// server's ledger.
func TestAttribPushEndToEnd(t *testing.T) {
	srvLed := attrib.NewLedger(64, obs.NewRegistry())
	w := newWorldCfg(t, ModePush, func(cfg *ServerConfig) {
		cfg.Attrib = srvLed
		cfg.Metrics = obs.NewRegistry()
	})
	page := pageWithEmbedded(t, w.site)
	w.train(t, page, 3)

	cliLed := attrib.NewLedger(64, obs.NewRegistry())
	c := NewClient(w.ts.URL, ClientConfig{
		ID:             "attrib",
		AcceptBundles:  true,
		Attrib:         cliLed,
		AttribFeedback: true,
	})
	if _, _, err := c.Get(page.Path); err != nil {
		t.Fatal(err)
	}

	cli := cliLed.Report(10)
	if cli.Totals.Deliveries == 0 {
		t.Fatal("client ledger saw no push deliveries; bundle not pushed?")
	}
	srv := srvLed.Report(10)
	if srv.Totals.Deliveries != cli.Totals.Deliveries {
		t.Errorf("server recorded %d deliveries, client %d",
			srv.Totals.Deliveries, cli.Totals.Deliveries)
	}
	if srv.Totals.DeliveredBytes != cli.Totals.DeliveredBytes {
		t.Errorf("server delivered %d bytes, client received %d",
			srv.Totals.DeliveredBytes, cli.Totals.DeliveredBytes)
	}
	if got := cli.Classes[attrib.ClassPush].Deliveries; got != cli.Totals.Deliveries {
		t.Errorf("push class deliveries = %d, want all %d", got, cli.Totals.Deliveries)
	}
	if cli.Totals.PMilliSum <= 0 {
		t.Errorf("push deliveries carried no probabilities (PMilliSum=%d)", cli.Totals.PMilliSum)
	}

	// Demand the first pushed doc: a manufactured hit, resolved consumed.
	hit := w.site.Doc(page.Embedded[0]).Path
	if _, fromCache, err := c.Get(hit); err != nil || !fromCache {
		t.Fatalf("Get(%s) fromCache=%v err=%v, want cache hit", hit, fromCache, err)
	}
	// Everything else was speculated for nothing.
	c.ResolveOutstanding()

	cli = cliLed.Report(10)
	if cli.Totals.Consumed != 1 {
		t.Errorf("consumed = %d, want 1", cli.Totals.Consumed)
	}
	if cli.Totals.Wasted != cli.Totals.Deliveries-1 {
		t.Errorf("wasted = %d, want %d", cli.Totals.Wasted, cli.Totals.Deliveries-1)
	}
	if cli.Outstanding != 0 {
		t.Errorf("outstanding = %d after ResolveOutstanding, want 0", cli.Outstanding)
	}
	if cli.Totals.ConsumedBytes+cli.Totals.WastedBytes != cli.Totals.DeliveredBytes {
		t.Errorf("consumed %d + wasted %d bytes != delivered %d",
			cli.Totals.ConsumedBytes, cli.Totals.WastedBytes, cli.Totals.DeliveredBytes)
	}

	// The next demand miss piggybacks the resolution tokens; the server's
	// ledger converges to the client's view of the same deliveries.
	var uncached string
	for i := range w.site.Docs {
		if p := w.site.Docs[i].Path; !c.Cached(p) {
			uncached = p
			break
		}
	}
	if uncached == "" {
		t.Fatal("every document cached; cannot carry feedback")
	}
	if _, _, err := c.Get(uncached); err != nil {
		t.Fatal(err)
	}
	srv = srvLed.Report(10)
	if srv.Totals.Consumed != cli.Totals.Consumed || srv.Totals.Wasted != cli.Totals.Wasted {
		t.Errorf("server ledger consumed/wasted = %d/%d, want %d/%d from feedback",
			srv.Totals.Consumed, srv.Totals.Wasted, cli.Totals.Consumed, cli.Totals.Wasted)
	}
	if srv.Outstanding != 0 {
		t.Errorf("server outstanding = %d after feedback, want 0", srv.Outstanding)
	}
}

// TestAttribPrefetch covers the hint arm: the client attributes each
// hint-driven prefetch with the hint's probability, and the Spec-Prefetch
// header lets the origin record the same delivery on its side.
func TestAttribPrefetch(t *testing.T) {
	srvLed := attrib.NewLedger(64, obs.NewRegistry())
	w := newWorldCfg(t, ModeHints, func(cfg *ServerConfig) {
		cfg.Attrib = srvLed
		cfg.Metrics = obs.NewRegistry()
	})
	page := pageWithEmbedded(t, w.site)
	w.train(t, page, 3)

	cliLed := attrib.NewLedger(64, obs.NewRegistry())
	c := NewClient(w.ts.URL, ClientConfig{
		ID:                "hinted",
		PrefetchThreshold: 0.05,
		Attrib:            cliLed,
	})
	if _, _, err := c.Get(page.Path); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Prefetched == 0 {
		t.Fatal("no prefetches followed; hints missing?")
	}

	cli := cliLed.Report(10)
	pf := cli.Classes[attrib.ClassPrefetch]
	if pf.Deliveries != c.Stats().Prefetched {
		t.Errorf("prefetch deliveries = %d, want %d", pf.Deliveries, c.Stats().Prefetched)
	}
	if pf.PMilliSum <= 0 {
		t.Errorf("prefetch deliveries carried no probabilities (PMilliSum=%d)", pf.PMilliSum)
	}
	spf := srvLed.Report(10).Classes[attrib.ClassPrefetch]
	if spf.Deliveries != pf.Deliveries || spf.DeliveredBytes != pf.DeliveredBytes {
		t.Errorf("server prefetch ledger %d/%dB, client %d/%dB",
			spf.Deliveries, spf.DeliveredBytes, pf.Deliveries, pf.DeliveredBytes)
	}
	if spf.PMilliSum != pf.PMilliSum {
		t.Errorf("server PMilliSum %d != client %d", spf.PMilliSum, pf.PMilliSum)
	}

	// The prefetched doc consumed on demand hit.
	hit := w.site.Doc(page.Embedded[0]).Path
	if _, fromCache, err := c.Get(hit); err != nil || !fromCache {
		t.Fatalf("Get(%s) fromCache=%v err=%v, want prefetch hit", hit, fromCache, err)
	}
	if got := cliLed.Report(10).Totals.Consumed; got != 1 {
		t.Errorf("consumed = %d after demand hit, want 1", got)
	}
}

// TestAttribReplica covers the dissemination arm: replicas pulled by the
// proxy are recorded as deliveries and resolve consumed only when they
// served a hit.
func TestAttribReplica(t *testing.T) {
	w := newWorldCfg(t, ModePush, func(cfg *ServerConfig) {
		cfg.Metrics = obs.NewRegistry()
	})
	page := pageWithEmbedded(t, w.site)
	w.train(t, page, 3)

	led := attrib.NewLedger(64, obs.NewRegistry())
	p := NewProxyWith(w.ts.URL, ProxyConfig{
		Metrics: obs.NewRegistry(),
		Attrib:  led,
	})
	n, err := p.Disseminate(t.Context(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no replicas disseminated")
	}
	rep := led.Report(10)
	repl := rep.Classes[attrib.ClassReplica]
	if repl.Deliveries != int64(n) {
		t.Errorf("replica deliveries = %d, want %d", repl.Deliveries, n)
	}

	pts := httptest.NewServer(p)
	defer pts.Close()
	c := NewClient(pts.URL, ClientConfig{ID: "replica-hit"})
	if _, _, err := c.Get(page.Path); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Hits == 0 {
		t.Skip("trained page not in replica set; nothing to consume")
	}

	p.FlushAttrib()
	rep = led.Report(10)
	repl = rep.Classes[attrib.ClassReplica]
	if repl.Consumed == 0 {
		t.Error("replica hit not resolved consumed after FlushAttrib")
	}
	if repl.Consumed+repl.Wasted != repl.Deliveries {
		t.Errorf("consumed %d + wasted %d != deliveries %d",
			repl.Consumed, repl.Wasted, repl.Deliveries)
	}
	if rep.Outstanding != 0 {
		t.Errorf("outstanding = %d after FlushAttrib, want 0", rep.Outstanding)
	}
}
