// Package httpspec is a working net/http realization of the paper's two
// protocols — the "development of prototypes to test and evaluate these
// protocols" the paper lists as work in progress (§4):
//
//   - Server serves a document store and speculates on each request using
//     the online core.Engine: it either pushes speculative documents in a
//     multipart/mixed bundle (speculative service), attaches
//     Link: rel="prefetch" hints (server-assisted prefetching), or both
//     (the hybrid protocol). Cooperative clients piggyback a cache digest
//     in a Spec-Have header.
//   - Client consumes bundles and hints, keeps a session cache, and
//     reports whether a fetch was served locally.
//   - Proxy is a dissemination service proxy: it pulls a server's most
//     popular documents and fronts it, forwarding misses.
//
// The wire protocol is plain HTTP/1.0-era machinery (headers and
// multipart), deliberately implementable by 1995 software.
package httpspec

import (
	"fmt"
	"sync"
	"time"

	"specweb/internal/cache"
	"specweb/internal/webgraph"
)

// Store is the document store a speculative server serves.
type Store interface {
	// Lookup resolves a URL path to a document ID.
	Lookup(path string) (webgraph.DocID, bool)
	// Path returns the URL path of a document.
	Path(id webgraph.DocID) (string, bool)
	// Size returns a document's size in bytes.
	Size(id webgraph.DocID) (int64, bool)
	// Content returns the document body.
	Content(id webgraph.DocID) ([]byte, bool)
}

// SiteStore adapts a webgraph.Site as a Store, synthesizing deterministic
// document bodies of the declared sizes. Rendered bodies are kept in a
// bounded LRU so popular documents are synthesized once, not per request;
// the LRU accounting (and its hit/miss/eviction metrics) comes from
// internal/cache.
type SiteStore struct {
	site *webgraph.Site

	// clock supplies the LRU timestamps; nil means time.Now. Injected
	// by tests and the deterministic load generator so store behaviour
	// is a pure function of the request sequence.
	clock func() time.Time

	mu     sync.Mutex
	model  cache.Cache
	bodies map[webgraph.DocID][]byte
}

// DefaultBodyCacheBytes bounds the rendered-body cache NewSiteStore
// installs — enough for every hot document on the stock profiles.
const DefaultBodyCacheBytes = 16 << 20

// NewSiteStore wraps a site with the default body cache.
func NewSiteStore(site *webgraph.Site) *SiteStore {
	return NewSiteStoreCached(site, DefaultBodyCacheBytes)
}

// NewSiteStoreCached wraps a site with a body cache of the given byte
// capacity; capacity <= 0 disables caching (every Content call renders).
func NewSiteStoreCached(site *webgraph.Site, capacity int64) *SiteStore {
	s := &SiteStore{site: site}
	if capacity > 0 {
		s.model = cache.New(cache.Forever, capacity)
		s.bodies = make(map[webgraph.DocID][]byte)
	}
	return s
}

// SetClock injects the time source for the body-cache LRU; nil restores
// time.Now. Call before serving traffic.
func (s *SiteStore) SetClock(clock func() time.Time) *SiteStore {
	s.clock = clock
	return s
}

func (s *SiteStore) now() time.Time {
	if s.clock != nil {
		return s.clock()
	}
	return time.Now()
}

// Lookup resolves a path.
func (s *SiteStore) Lookup(path string) (webgraph.DocID, bool) {
	d := s.site.ByPath(path)
	if d == nil {
		return webgraph.None, false
	}
	return d.ID, true
}

// Path returns a document's URL path.
func (s *SiteStore) Path(id webgraph.DocID) (string, bool) {
	if !s.site.Valid(id) {
		return "", false
	}
	return s.site.Doc(id).Path, true
}

// Size returns a document's size.
func (s *SiteStore) Size(id webgraph.DocID) (int64, bool) {
	if !s.site.Valid(id) {
		return 0, false
	}
	return s.site.Doc(id).Size, true
}

// Content returns the document body: a readable header followed by a
// deterministic filler pattern, exactly Size bytes long. Callers must
// treat the slice as read-only — cached bodies are shared.
func (s *SiteStore) Content(id webgraph.DocID) ([]byte, bool) {
	if !s.site.Valid(id) {
		return nil, false
	}
	if s.model != nil {
		s.mu.Lock()
		s.model.Touch(s.now())
		if s.model.Has(id) {
			if body, ok := s.bodies[id]; ok {
				s.mu.Unlock()
				return body, true
			}
		}
		s.mu.Unlock()
	}
	body := renderBody(s.site.Doc(id))
	if s.model != nil {
		s.mu.Lock()
		s.model.Put(id, int64(len(body)))
		s.bodies[id] = body
		// The model evicts on its own; mirror its retained set whenever
		// the two disagree so evicted bodies are actually released.
		if s.model.Len() < len(s.bodies) {
			keep := make(map[webgraph.DocID]bool, s.model.Len())
			for _, d := range s.model.Docs() {
				keep[d] = true
			}
			for d := range s.bodies {
				if !keep[d] {
					delete(s.bodies, d)
				}
			}
		}
		s.mu.Unlock()
	}
	return body, true
}

func renderBody(d *webgraph.Document) []byte {
	header := fmt.Sprintf("specweb synthetic %s doc=%d path=%s\n", d.Kind, d.ID, d.Path)
	n := int(d.Size)
	body := make([]byte, n)
	copy(body, header)
	for i := len(header); i < n; i++ {
		body[i] = byte('a' + (i+int(d.ID))%26)
	}
	return body
}

// Site exposes the wrapped site.
func (s *SiteStore) Site() *webgraph.Site { return s.site }
