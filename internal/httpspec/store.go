// Package httpspec is a working net/http realization of the paper's two
// protocols — the "development of prototypes to test and evaluate these
// protocols" the paper lists as work in progress (§4):
//
//   - Server serves a document store and speculates on each request using
//     the online core.Engine: it either pushes speculative documents in a
//     multipart/mixed bundle (speculative service), attaches
//     Link: rel="prefetch" hints (server-assisted prefetching), or both
//     (the hybrid protocol). Cooperative clients piggyback a cache digest
//     in a Spec-Have header.
//   - Client consumes bundles and hints, keeps a session cache, and
//     reports whether a fetch was served locally.
//   - Proxy is a dissemination service proxy: it pulls a server's most
//     popular documents and fronts it, forwarding misses.
//
// The wire protocol is plain HTTP/1.0-era machinery (headers and
// multipart), deliberately implementable by 1995 software.
package httpspec

import (
	"fmt"

	"specweb/internal/webgraph"
)

// Store is the document store a speculative server serves.
type Store interface {
	// Lookup resolves a URL path to a document ID.
	Lookup(path string) (webgraph.DocID, bool)
	// Path returns the URL path of a document.
	Path(id webgraph.DocID) (string, bool)
	// Size returns a document's size in bytes.
	Size(id webgraph.DocID) (int64, bool)
	// Content returns the document body.
	Content(id webgraph.DocID) ([]byte, bool)
}

// SiteStore adapts a webgraph.Site as a Store, synthesizing deterministic
// document bodies of the declared sizes.
type SiteStore struct {
	site *webgraph.Site
}

// NewSiteStore wraps a site.
func NewSiteStore(site *webgraph.Site) *SiteStore {
	return &SiteStore{site: site}
}

// Lookup resolves a path.
func (s *SiteStore) Lookup(path string) (webgraph.DocID, bool) {
	d := s.site.ByPath(path)
	if d == nil {
		return webgraph.None, false
	}
	return d.ID, true
}

// Path returns a document's URL path.
func (s *SiteStore) Path(id webgraph.DocID) (string, bool) {
	if !s.site.Valid(id) {
		return "", false
	}
	return s.site.Doc(id).Path, true
}

// Size returns a document's size.
func (s *SiteStore) Size(id webgraph.DocID) (int64, bool) {
	if !s.site.Valid(id) {
		return 0, false
	}
	return s.site.Doc(id).Size, true
}

// Content synthesizes the document body: a readable header followed by a
// deterministic filler pattern, exactly Size bytes long.
func (s *SiteStore) Content(id webgraph.DocID) ([]byte, bool) {
	if !s.site.Valid(id) {
		return nil, false
	}
	d := s.site.Doc(id)
	header := fmt.Sprintf("specweb synthetic %s doc=%d path=%s\n", d.Kind, d.ID, d.Path)
	n := int(d.Size)
	body := make([]byte, n)
	copy(body, header)
	for i := len(header); i < n; i++ {
		body[i] = byte('a' + (i+int(d.ID))%26)
	}
	return body, true
}

// Site exposes the wrapped site.
func (s *SiteStore) Site() *webgraph.Site { return s.site }
