package httpspec

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"

	"specweb/internal/obs"
)

// Proxy is a dissemination service proxy (§2): it holds replicas of a home
// server's most popular documents and fronts the server, serving replica
// hits locally and forwarding everything else. In the paper's vision these
// are rentable "information outlets" placed near consumers.
type Proxy struct {
	origin string
	http   *http.Client
	met    *proxyMetrics
	tracer *obs.Tracer
	log    *slog.Logger

	mu       sync.RWMutex
	replicas map[string][]byte

	hits    atomic.Int64
	misses  atomic.Int64
	hitB    atomic.Int64
	forward atomic.Int64
}

// proxyMetrics aggregate over every proxy instance in the process (the
// snapshot-style ProxyStats stays per instance).
type proxyMetrics struct {
	hits           *obs.Counter
	misses         *obs.Counter
	hitBytes       *obs.Counter
	originErrors   *obs.Counter
	disseminations *obs.Counter
	replicas       *obs.Gauge
	replicaBytes   *obs.Gauge
}

func newProxyMetrics(reg *obs.Registry) *proxyMetrics {
	const requests = "specweb_proxy_requests_total"
	const requestsHelp = "Requests handled by the dissemination proxy, by outcome."
	return &proxyMetrics{
		hits:           reg.Counter(requests, requestsHelp, obs.Labels{"result": "hit"}),
		misses:         reg.Counter(requests, requestsHelp, obs.Labels{"result": "miss"}),
		hitBytes:       reg.Counter("specweb_proxy_hit_bytes_total", "Bytes served from local replicas.", nil),
		originErrors:   reg.Counter("specweb_proxy_origin_errors_total", "Failed forwards and replica pulls against the origin.", nil),
		disseminations: reg.Counter("specweb_proxy_disseminations_total", "Replica-set refreshes pulled from the origin.", nil),
		replicas:       reg.Gauge("specweb_proxy_replicas", "Documents currently replicated at the proxy.", nil),
		replicaBytes:   reg.Gauge("specweb_proxy_replica_bytes", "Bytes currently replicated at the proxy.", nil),
	}
}

// NewProxy fronts the origin server (base URL), registering metrics in
// the process-wide obs.Default.
func NewProxy(origin string, client *http.Client) *Proxy {
	if client == nil {
		client = http.DefaultClient
	}
	return &Proxy{
		origin:   origin,
		http:     client,
		met:      newProxyMetrics(nil),
		tracer:   obs.DefaultTracer,
		log:      obs.Logger("proxy"),
		replicas: make(map[string][]byte),
	}
}

// Disseminate asks the origin which documents deserve replication within
// the byte budget (the origin's Replicator decides, per §2's server-driven
// model) and pulls them. It replaces the current replica set.
func (p *Proxy) Disseminate(budget int64) (int, error) {
	sp := p.tracer.Start("proxy.disseminate")
	defer sp.Finish()
	resp, err := p.http.Get(fmt.Sprintf("%s/spec/replicas?budget=%d", p.origin, budget))
	if err != nil {
		p.met.originErrors.Inc()
		return 0, fmt.Errorf("httpspec: fetching replica list: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		p.met.originErrors.Inc()
		return 0, fmt.Errorf("httpspec: replica list: %s", resp.Status)
	}
	var paths []string
	if err := json.NewDecoder(resp.Body).Decode(&paths); err != nil {
		return 0, fmt.Errorf("httpspec: decoding replica list: %w", err)
	}
	fresh := make(map[string][]byte, len(paths))
	var freshBytes int64
	for _, path := range paths {
		body, err := p.pull(path)
		if err != nil {
			p.met.originErrors.Inc()
			return 0, err
		}
		fresh[path] = body
		freshBytes += int64(len(body))
	}
	p.mu.Lock()
	p.replicas = fresh
	p.mu.Unlock()
	p.met.disseminations.Inc()
	p.met.replicas.Set(float64(len(fresh)))
	p.met.replicaBytes.Set(float64(freshBytes))
	p.log.Info("replica set refreshed", "docs", len(fresh), "bytes", freshBytes, "budget", budget)
	return len(fresh), nil
}

func (p *Proxy) pull(path string) ([]byte, error) {
	resp, err := p.http.Get(p.origin + path)
	if err != nil {
		return nil, fmt.Errorf("httpspec: pulling %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("httpspec: pulling %s: %s", path, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// ProxyStats counts proxy activity.
type ProxyStats struct {
	Hits          int64
	Misses        int64
	HitBytes      int64
	ForwardErrors int64
	Replicas      int
}

// Stats returns a snapshot of the proxy counters.
func (p *Proxy) Stats() ProxyStats {
	p.mu.RLock()
	n := len(p.replicas)
	p.mu.RUnlock()
	return ProxyStats{
		Hits:          p.hits.Load(),
		Misses:        p.misses.Load(),
		HitBytes:      p.hitB.Load(),
		ForwardErrors: p.forward.Load(),
		Replicas:      n,
	}
}

// ServeHTTP serves replica hits locally and forwards misses to the origin,
// streaming the response back (including speculative headers, which pass
// through untouched).
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sp := p.tracer.Start("proxy.request")
	sp.SetAttr("path", r.URL.Path)
	defer sp.Finish()
	if r.Method == http.MethodGet {
		p.mu.RLock()
		body, ok := p.replicas[r.URL.Path]
		p.mu.RUnlock()
		if ok {
			p.hits.Add(1)
			p.hitB.Add(int64(len(body)))
			p.met.hits.Inc()
			p.met.hitBytes.Add(int64(len(body)))
			sp.SetAttr("result", "hit")
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("X-Served-By", "specweb-proxy")
			_, _ = w.Write(body)
			return
		}
	}
	p.misses.Add(1)
	p.met.misses.Inc()
	sp.SetAttr("result", "miss")
	req, err := http.NewRequest(r.Method, p.origin+r.URL.RequestURI(), r.Body)
	if err != nil {
		p.forward.Add(1)
		p.met.originErrors.Inc()
		http.Error(w, "bad gateway", http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.http.Do(req)
	if err != nil {
		p.forward.Add(1)
		p.met.originErrors.Inc()
		p.log.Warn("forward failed", "path", r.URL.Path, "err", err)
		http.Error(w, "bad gateway", http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}
