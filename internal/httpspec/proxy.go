package httpspec

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
)

// Proxy is a dissemination service proxy (§2): it holds replicas of a home
// server's most popular documents and fronts the server, serving replica
// hits locally and forwarding everything else. In the paper's vision these
// are rentable "information outlets" placed near consumers.
type Proxy struct {
	origin string
	http   *http.Client

	mu       sync.RWMutex
	replicas map[string][]byte

	hits    atomic.Int64
	misses  atomic.Int64
	hitB    atomic.Int64
	forward atomic.Int64
}

// NewProxy fronts the origin server (base URL).
func NewProxy(origin string, client *http.Client) *Proxy {
	if client == nil {
		client = http.DefaultClient
	}
	return &Proxy{origin: origin, http: client, replicas: make(map[string][]byte)}
}

// Disseminate asks the origin which documents deserve replication within
// the byte budget (the origin's Replicator decides, per §2's server-driven
// model) and pulls them. It replaces the current replica set.
func (p *Proxy) Disseminate(budget int64) (int, error) {
	resp, err := p.http.Get(fmt.Sprintf("%s/spec/replicas?budget=%d", p.origin, budget))
	if err != nil {
		return 0, fmt.Errorf("httpspec: fetching replica list: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("httpspec: replica list: %s", resp.Status)
	}
	var paths []string
	if err := json.NewDecoder(resp.Body).Decode(&paths); err != nil {
		return 0, fmt.Errorf("httpspec: decoding replica list: %w", err)
	}
	fresh := make(map[string][]byte, len(paths))
	for _, path := range paths {
		body, err := p.pull(path)
		if err != nil {
			return 0, err
		}
		fresh[path] = body
	}
	p.mu.Lock()
	p.replicas = fresh
	p.mu.Unlock()
	return len(fresh), nil
}

func (p *Proxy) pull(path string) ([]byte, error) {
	resp, err := p.http.Get(p.origin + path)
	if err != nil {
		return nil, fmt.Errorf("httpspec: pulling %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("httpspec: pulling %s: %s", path, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// ProxyStats counts proxy activity.
type ProxyStats struct {
	Hits          int64
	Misses        int64
	HitBytes      int64
	ForwardErrors int64
	Replicas      int
}

// Stats returns a snapshot of the proxy counters.
func (p *Proxy) Stats() ProxyStats {
	p.mu.RLock()
	n := len(p.replicas)
	p.mu.RUnlock()
	return ProxyStats{
		Hits:          p.hits.Load(),
		Misses:        p.misses.Load(),
		HitBytes:      p.hitB.Load(),
		ForwardErrors: p.forward.Load(),
		Replicas:      n,
	}
}

// ServeHTTP serves replica hits locally and forwards misses to the origin,
// streaming the response back (including speculative headers, which pass
// through untouched).
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		p.mu.RLock()
		body, ok := p.replicas[r.URL.Path]
		p.mu.RUnlock()
		if ok {
			p.hits.Add(1)
			p.hitB.Add(int64(len(body)))
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("X-Served-By", "specweb-proxy")
			_, _ = w.Write(body)
			return
		}
	}
	p.misses.Add(1)
	req, err := http.NewRequest(r.Method, p.origin+r.URL.RequestURI(), r.Body)
	if err != nil {
		p.forward.Add(1)
		http.Error(w, "bad gateway", http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.http.Do(req)
	if err != nil {
		p.forward.Add(1)
		http.Error(w, "bad gateway", http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}
