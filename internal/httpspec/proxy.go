package httpspec

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"specweb/internal/attrib"
	"specweb/internal/obs"
	"specweb/internal/overload"
	"specweb/internal/resilience"
)

// Proxy is a dissemination service proxy (§2): it holds replicas of a home
// server's most popular documents and fronts the server, serving replica
// hits locally and forwarding everything else. In the paper's vision these
// are rentable "information outlets" placed near consumers — which only
// works if the proxy stays useful while the home server flaps. Forwards
// and replica pulls are retried with jittered backoff behind a per-origin
// circuit breaker, replica refreshes apply partially instead of
// all-or-nothing, and when the origin is unreachable the proxy degrades
// to serving superseded ("stale") replicas rather than failing — the
// paper's proxy-as-availability argument made concrete.
type Proxy struct {
	origin  string
	http    *http.Client
	cfg     ProxyConfig
	retrier *resilience.Retrier
	breaker *resilience.Breaker
	met     *proxyMetrics
	tracer  *obs.Tracer
	log     *slog.Logger

	mu         sync.RWMutex
	replicas   map[string]*replica
	stale      map[string][]byte // superseded replicas kept for degraded service
	staleBytes int64

	hits        atomic.Int64
	misses      atomic.Int64
	hitB        atomic.Int64
	forward     atomic.Int64
	staleServes atomic.Int64
	shed        atomic.Int64
}

// replica is one disseminated document. hit is flipped by the read path
// under the read lock (it is atomic precisely so hits never need the
// write lock); resolved guards the attribution so each dissemination
// resolves exactly once.
type replica struct {
	body     []byte
	hit      atomic.Bool
	resolved atomic.Bool
}

// ProxyConfig parameterizes the proxy's resilience behaviour. The zero
// value gives sane production defaults; NewProxy uses it.
type ProxyConfig struct {
	// HTTP is the origin-facing client; nil means http.DefaultClient.
	HTTP *http.Client
	// Retry shapes forward/pull retries; a zero value (MaxAttempts 0)
	// takes resilience.DefaultRetryConfig. Set MaxAttempts to 1 to
	// disable retries.
	Retry resilience.RetryConfig
	// Breaker shapes the per-origin circuit; zero fields take
	// resilience.DefaultBreakerConfig.
	Breaker resilience.BreakerConfig
	// ForwardTimeout bounds each forwarded request (default 30s);
	// PullTimeout bounds each replica pull (default 30s). A caller
	// deadline that is already tighter wins.
	ForwardTimeout time.Duration
	PullTimeout    time.Duration
	// DisableServeStale turns off the degraded-mode stale replica
	// service, restoring plain 502s on origin failure.
	DisableServeStale bool
	// MaxStaleBytes caps the stale store (default 64 MiB); overflow
	// evicts arbitrary entries.
	MaxStaleBytes int64
	// Admission optionally rate-controls the proxy itself: forwards
	// admit as Demand (replica hits are memory reads and stay free),
	// replica pulls and refreshes admit as Speculative — under load the
	// proxy stops creating background transfer work before it refuses
	// any client. nil disables admission.
	Admission *overload.Controller
	// Metrics selects the registry; nil means obs.Default.
	Metrics *obs.Registry
	// Tracer records spans; nil means obs.DefaultTracer.
	Tracer *obs.Tracer
	// Attrib, when non-nil, records every replica pulled as a
	// speculative delivery and resolves it — consumed if it served at
	// least one hit, wasted otherwise — when the replica set is retired
	// (or on FlushAttrib).
	Attrib *attrib.Ledger
}

// proxyMetrics aggregate over every proxy instance in the process (the
// snapshot-style ProxyStats stays per instance).
type proxyMetrics struct {
	hits           *obs.Counter
	misses         *obs.Counter
	hitBytes       *obs.Counter
	originErrors   *obs.Counter
	staleServes    *obs.Counter
	shed           *obs.Counter
	disseminations *obs.Counter
	partials       *obs.Counter
	replicas       *obs.Gauge
	replicaBytes   *obs.Gauge
	staleDocs      *obs.Gauge
	staleBytesG    *obs.Gauge
}

func newProxyMetrics(reg *obs.Registry) *proxyMetrics {
	const requests = "specweb_proxy_requests_total"
	const requestsHelp = "Requests handled by the dissemination proxy, by outcome."
	return &proxyMetrics{
		hits:           reg.Counter(requests, requestsHelp, obs.Labels{"result": "hit"}),
		misses:         reg.Counter(requests, requestsHelp, obs.Labels{"result": "miss"}),
		hitBytes:       reg.Counter("specweb_proxy_hit_bytes_total", "Bytes served from local replicas.", nil),
		originErrors:   reg.Counter("specweb_proxy_origin_errors_total", "Failed forwards and replica pulls against the origin (per attempt).", nil),
		staleServes:    reg.Counter("specweb_proxy_stale_serves_total", "Requests served from superseded replicas while the origin was unreachable.", nil),
		shed:           reg.Counter("specweb_proxy_shed_total", "Forwards refused by the proxy's admission controller.", nil),
		disseminations: reg.Counter("specweb_proxy_disseminations_total", "Replica-set refreshes pulled from the origin.", nil),
		partials:       reg.Counter("specweb_proxy_partial_disseminations_total", "Replica-set refreshes applied partially after pull failures.", nil),
		replicas:       reg.Gauge("specweb_proxy_replicas", "Documents currently replicated at the proxy.", nil),
		replicaBytes:   reg.Gauge("specweb_proxy_replica_bytes", "Bytes currently replicated at the proxy.", nil),
		staleDocs:      reg.Gauge("specweb_proxy_stale_docs", "Superseded replicas retained for degraded service.", nil),
		staleBytesG:    reg.Gauge("specweb_proxy_stale_bytes", "Bytes retained in the stale store.", nil),
	}
}

// NewProxy fronts the origin server (base URL) with default resilience,
// registering metrics in the process-wide obs.Default.
func NewProxy(origin string, client *http.Client) *Proxy {
	return NewProxyWith(origin, ProxyConfig{HTTP: client})
}

// NewProxyWith fronts the origin with explicit resilience configuration.
func NewProxyWith(origin string, cfg ProxyConfig) *Proxy {
	if cfg.HTTP == nil {
		cfg.HTTP = http.DefaultClient
	}
	if cfg.Retry.MaxAttempts == 0 {
		cfg.Retry = resilience.DefaultRetryConfig()
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 30 * time.Second
	}
	if cfg.PullTimeout <= 0 {
		cfg.PullTimeout = 30 * time.Second
	}
	if cfg.MaxStaleBytes <= 0 {
		cfg.MaxStaleBytes = 64 << 20
	}
	bcfg := cfg.Breaker
	if bcfg.Name == "" {
		bcfg.Name = origin
	}
	if bcfg.Metrics == nil {
		bcfg.Metrics = cfg.Metrics
	}
	if cfg.Tracer == nil {
		cfg.Tracer = obs.DefaultTracer
	}
	return &Proxy{
		origin:   origin,
		http:     cfg.HTTP,
		cfg:      cfg,
		retrier:  resilience.NewRetrierIn(cfg.Metrics, cfg.Retry),
		breaker:  resilience.NewBreaker(bcfg),
		met:      newProxyMetrics(cfg.Metrics),
		tracer:   cfg.Tracer,
		log:      obs.Logger("proxy"),
		replicas: make(map[string]*replica),
		stale:    make(map[string][]byte),
	}
}

// Breaker exposes the origin circuit (for stats and tests).
func (p *Proxy) Breaker() *resilience.Breaker { return p.breaker }

// Disseminate asks the origin which documents deserve replication within
// the byte budget (the origin's Replicator decides, per §2's server-driven
// model) and pulls them. The refresh is best-effort: documents that pull
// successfully are applied even when others fail, so one flaky transfer
// no longer discards a whole refresh. It returns the number of documents
// applied; a non-nil error alongside a positive count means a partial
// refresh. The superseded replica set is retained for stale service.
func (p *Proxy) Disseminate(ctx context.Context, budget int64) (int, error) {
	sp := p.tracer.Start("proxy.disseminate")
	defer sp.Finish()

	// A refresh is pure speculative-class work: when the admission
	// controller is saturated it is the first thing to go, surfacing as
	// an ordinary refresh failure (full or partial) to the caller.
	if p.cfg.Admission != nil {
		release, err := p.cfg.Admission.Acquire(ctx, overload.Speculative)
		if err != nil {
			sp.SetAttr("result", "shed")
			return 0, fmt.Errorf("httpspec: replica refresh shed by admission: %w", err)
		}
		defer release()
	}

	paths, err := p.fetchReplicaList(ctx, sp, budget)
	if err != nil {
		return 0, err
	}

	fresh := make(map[string]*replica, len(paths))
	var freshBytes int64
	var pullErrs []error
	for _, path := range paths {
		if ctx.Err() != nil {
			pullErrs = append(pullErrs, ctx.Err())
			break
		}
		body, err := p.pull(ctx, sp, path)
		if err != nil {
			pullErrs = append(pullErrs, err)
			continue
		}
		fresh[path] = &replica{body: body}
		p.cfg.Attrib.Delivered(path, attrib.ClassReplica, int64(len(body)), 0, "")
		freshBytes += int64(len(body))
	}

	p.mu.Lock()
	p.retireLocked(p.replicas)
	p.replicas = fresh
	staleDocs, staleBytes := len(p.stale), p.staleBytes
	p.mu.Unlock()

	p.met.disseminations.Inc()
	p.met.replicas.Set(float64(len(fresh)))
	p.met.replicaBytes.Set(float64(freshBytes))
	p.met.staleDocs.Set(float64(staleDocs))
	p.met.staleBytesG.Set(float64(staleBytes))

	if len(pullErrs) > 0 {
		p.met.partials.Inc()
		p.log.Warn("partial replica refresh",
			"applied", len(fresh), "failed", len(pullErrs), "budget", budget)
		return len(fresh), fmt.Errorf("httpspec: partial refresh, %d of %d documents applied: %w",
			len(fresh), len(paths), errors.Join(pullErrs...))
	}
	p.log.Info("replica set refreshed", "docs", len(fresh), "bytes", freshBytes, "budget", budget)
	return len(fresh), nil
}

// fetchReplicaList asks the origin's replicator for the replica paths.
func (p *Proxy) fetchReplicaList(ctx context.Context, sp *obs.ActiveSpan, budget int64) ([]string, error) {
	var paths []string
	err := p.retrier.Do(ctx, func(ctx context.Context) error {
		cctx, cancel := resilience.EnsureDeadline(ctx, p.cfg.PullTimeout)
		defer cancel()
		if err := p.breaker.Allow(); err != nil {
			return resilience.Permanent(err)
		}
		req, err := http.NewRequestWithContext(cctx, http.MethodGet,
			fmt.Sprintf("%s/spec/replicas?budget=%d", p.origin, budget), nil)
		if err != nil {
			p.breaker.Record(nil)
			return resilience.Permanent(err)
		}
		if tp := sp.Traceparent(); tp != "" {
			req.Header.Set(obs.TraceparentHeader, tp)
		}
		resp, err := p.http.Do(req)
		if err != nil {
			p.breaker.Record(err)
			p.met.originErrors.Inc()
			return fmt.Errorf("httpspec: fetching replica list: %w", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			ferr := fmt.Errorf("httpspec: replica list: %s", resp.Status)
			p.met.originErrors.Inc()
			if resp.StatusCode >= 500 {
				p.breaker.Record(ferr)
				return ferr
			}
			p.breaker.Record(nil) // the origin answered; our request was bad
			return resilience.Permanent(ferr)
		}
		var got []string
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			p.breaker.Record(err)
			return fmt.Errorf("httpspec: decoding replica list: %w", err)
		}
		p.breaker.Record(nil)
		paths = got
		return nil
	})
	return paths, err
}

// pull fetches one document body from the origin with retries under the
// breaker, continuing the dissemination span's trace.
func (p *Proxy) pull(ctx context.Context, sp *obs.ActiveSpan, path string) ([]byte, error) {
	var body []byte
	err := p.retrier.Do(ctx, func(ctx context.Context) error {
		cctx, cancel := resilience.EnsureDeadline(ctx, p.cfg.PullTimeout)
		defer cancel()
		if err := p.breaker.Allow(); err != nil {
			return resilience.Permanent(err)
		}
		req, err := http.NewRequestWithContext(cctx, http.MethodGet, p.origin+path, nil)
		if err != nil {
			p.breaker.Record(nil)
			return resilience.Permanent(err)
		}
		if tp := sp.Traceparent(); tp != "" {
			req.Header.Set(obs.TraceparentHeader, tp)
		}
		resp, err := p.http.Do(req)
		if err != nil {
			p.breaker.Record(err)
			p.met.originErrors.Inc()
			return fmt.Errorf("httpspec: pulling %s: %w", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			perr := fmt.Errorf("httpspec: pulling %s: %s", path, resp.Status)
			p.met.originErrors.Inc()
			if resp.StatusCode >= 500 {
				p.breaker.Record(perr)
				return perr
			}
			p.breaker.Record(nil)
			return resilience.Permanent(perr)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			p.breaker.Record(err)
			p.met.originErrors.Inc()
			return fmt.Errorf("httpspec: pulling %s: %w", path, err)
		}
		p.breaker.Record(nil)
		body = b
		return nil
	})
	return body, err
}

// retireLocked moves a superseded replica set into the stale store,
// evicting arbitrary entries when over the byte cap, and resolves each
// retired replica's attribution. Callers hold mu.
func (p *Proxy) retireLocked(old map[string]*replica) {
	for path, rep := range old {
		p.resolveReplica(path, rep)
		if prev, ok := p.stale[path]; ok {
			p.staleBytes -= int64(len(prev))
		}
		p.stale[path] = rep.body
		p.staleBytes += int64(len(rep.body))
	}
	for path, body := range p.stale {
		if p.staleBytes <= p.cfg.MaxStaleBytes {
			break
		}
		delete(p.stale, path)
		p.staleBytes -= int64(len(body))
	}
}

// resolveReplica attributes one replica's fate exactly once: consumed if
// it served at least one hit, wasted otherwise.
func (p *Proxy) resolveReplica(path string, rep *replica) {
	if !rep.resolved.CompareAndSwap(false, true) {
		return
	}
	if rep.hit.Load() {
		p.cfg.Attrib.Consumed(path, attrib.ClassReplica, int64(len(rep.body)))
	} else {
		p.cfg.Attrib.Wasted(path, attrib.ClassReplica, int64(len(rep.body)))
	}
}

// FlushAttrib resolves the current replica set's attribution without
// retiring it — for end-of-run reports and graceful shutdown.
func (p *Proxy) FlushAttrib() {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for path, rep := range p.replicas {
		p.resolveReplica(path, rep)
	}
}

// ProxyStats counts proxy activity.
type ProxyStats struct {
	Hits          int64
	Misses        int64
	HitBytes      int64
	ForwardErrors int64
	StaleServes   int64
	Shed          int64
	Replicas      int
	StaleDocs     int
}

// Stats returns a snapshot of the proxy counters.
func (p *Proxy) Stats() ProxyStats {
	p.mu.RLock()
	n := len(p.replicas)
	ns := len(p.stale)
	p.mu.RUnlock()
	return ProxyStats{
		Hits:          p.hits.Load(),
		Misses:        p.misses.Load(),
		HitBytes:      p.hitB.Load(),
		ForwardErrors: p.forward.Load(),
		StaleServes:   p.staleServes.Load(),
		Shed:          p.shed.Load(),
		Replicas:      n,
		StaleDocs:     ns,
	}
}

// hopByHop are the header fields a proxy must not forward (RFC 7230 §6.1
// plus the de-facto Proxy-Connection).
var hopByHop = [...]string{
	"Connection", "Proxy-Connection", "Keep-Alive", "Proxy-Authenticate",
	"Proxy-Authorization", "Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// stripHopByHop removes hop-by-hop fields, including any named by the
// Connection header, in place.
func stripHopByHop(h http.Header) {
	for _, f := range h.Values("Connection") {
		for _, name := range strings.Split(f, ",") {
			if name = strings.TrimSpace(name); name != "" {
				h.Del(name)
			}
		}
	}
	for _, name := range hopByHop {
		h.Del(name)
	}
}

// ServeHTTP serves replica hits locally and forwards misses to the origin,
// streaming the response back (including speculative headers, which pass
// through untouched). When the origin is unreachable — transport failure
// or open circuit — GETs degrade to the stale store before giving up.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Continue the client's trace so client→proxy→server share one ID.
	sp := p.tracer.StartRemote("proxy.request", r.Header.Get(obs.TraceparentHeader))
	sp.SetAttr("path", r.URL.Path)
	defer sp.Finish()
	if r.Method == http.MethodGet {
		p.mu.RLock()
		rep, ok := p.replicas[r.URL.Path]
		p.mu.RUnlock()
		if ok {
			rep.hit.Store(true)
			p.hits.Add(1)
			p.hitB.Add(int64(len(rep.body)))
			p.met.hits.Inc()
			p.met.hitBytes.Add(int64(len(rep.body)))
			sp.SetAttr("result", "hit")
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("X-Served-By", "specweb-proxy")
			_, _ = w.Write(rep.body)
			return
		}
	}
	p.misses.Add(1)
	p.met.misses.Inc()
	sp.SetAttr("result", "miss")

	// Replica hits above are memory reads and stay free; a forward ties
	// up an origin connection, so it has to pass admission.
	if p.cfg.Admission != nil {
		release, err := p.cfg.Admission.Acquire(r.Context(), overload.Demand)
		if err != nil {
			p.shed.Add(1)
			p.met.shed.Inc()
			sp.SetAttr("result", "shed")
			w.Header().Set("Retry-After", strconv.Itoa(p.cfg.Admission.RetryAfter(overload.Demand)))
			w.Header().Set(HeaderShed, overload.Demand.String())
			http.Error(w, "proxy overloaded, retry later", http.StatusServiceUnavailable)
			return
		}
		defer release()
	}

	resp, err := p.forwardOrigin(r, sp)
	if err != nil {
		p.forward.Add(1)
		if p.serveStale(w, r, sp) {
			return
		}
		p.log.Warn("forward failed", "path", r.URL.Path, "err", err)
		if errors.Is(err, resilience.ErrOpen) {
			http.Error(w, "origin circuit open", http.StatusServiceUnavailable)
		} else {
			http.Error(w, "bad gateway", http.StatusBadGateway)
		}
		return
	}
	defer resp.Body.Close()
	stripHopByHop(resp.Header)
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// forwardOrigin relays one request to the origin. Idempotent methods are
// retried under the breaker; anything else gets a single attempt. The
// caller owns the returned response body.
func (p *Proxy) forwardOrigin(r *http.Request, sp *obs.ActiveSpan) (*http.Response, error) {
	idempotent := r.Method == http.MethodGet || r.Method == http.MethodHead
	var resp *http.Response
	op := func(ctx context.Context) error {
		cctx, cancel := resilience.EnsureDeadline(ctx, p.cfg.ForwardTimeout)
		if err := p.breaker.Allow(); err != nil {
			cancel()
			return resilience.Permanent(err)
		}
		req, err := http.NewRequestWithContext(cctx, r.Method, p.origin+r.URL.RequestURI(), r.Body)
		if err != nil {
			cancel()
			p.breaker.Record(nil)
			p.met.originErrors.Inc()
			return resilience.Permanent(err)
		}
		req.Header = r.Header.Clone()
		stripHopByHop(req.Header)
		// Replace the inbound traceparent with the proxy's own span, so
		// the origin's span parents on this hop, not on the client's.
		if tp := sp.Traceparent(); tp != "" {
			req.Header.Set(obs.TraceparentHeader, tp)
		}
		got, err := p.http.Do(req)
		if err != nil {
			cancel()
			p.breaker.Record(err)
			p.met.originErrors.Inc()
			return err
		}
		// The response body must outlive this attempt; tie the timeout's
		// cancel to the body so the caller's Close releases it.
		got.Body = &cancelOnClose{ReadCloser: got.Body, cancel: cancel}
		if resp != nil {
			resp.Body.Close()
		}
		resp = got
		if got.StatusCode >= 500 && idempotent {
			ferr := fmt.Errorf("httpspec: origin: %s", got.Status)
			p.breaker.Record(ferr)
			p.met.originErrors.Inc()
			return ferr // retried; the last 5xx still streams through below
		}
		p.breaker.Record(nil)
		return nil
	}
	var err error
	if idempotent {
		err = p.retrier.Do(r.Context(), op)
	} else {
		err = op(r.Context())
	}
	if resp != nil {
		// Even when retries exhausted on persistent 5xx, relay the
		// origin's last answer rather than synthesizing one.
		return resp, nil
	}
	return nil, err
}

// cancelOnClose releases a per-attempt timeout when the response body is
// closed.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// serveStale answers a GET from the stale store, reporting whether it
// did. Stale responses are marked so clients and chaos replays can count
// degraded service.
func (p *Proxy) serveStale(w http.ResponseWriter, r *http.Request, sp *obs.ActiveSpan) bool {
	if p.cfg.DisableServeStale || r.Method != http.MethodGet {
		return false
	}
	p.mu.RLock()
	body, ok := p.stale[r.URL.Path]
	p.mu.RUnlock()
	if !ok {
		return false
	}
	p.staleServes.Add(1)
	p.met.staleServes.Inc()
	sp.SetAttr("result", "stale")
	p.log.Info("serving stale replica", "path", r.URL.Path)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Served-By", "specweb-proxy")
	w.Header().Set(HeaderStale, "1")
	w.Header().Set("Warning", `110 specweb-proxy "Response is Stale"`)
	_, _ = w.Write(body)
	return true
}
