package httpspec

import (
	"encoding/json"
	"fmt"
	"mime/multipart"
	"net/http"
	"net/textproto"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"specweb/internal/attrib"
	"specweb/internal/core"
	"specweb/internal/estguard"
	"specweb/internal/obs"
	"specweb/internal/overload"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// Protocol header names. Spec-Client identifies the requesting client
// (falling back to the remote address), Spec-Accept announces bundle
// support, and Spec-Have carries the cooperative cache digest as
// space-separated URL paths.
const (
	HeaderClient = "Spec-Client"
	HeaderAccept = "Spec-Accept"
	HeaderHave   = "Spec-Have"
	// HeaderPushed marks a bundle part as speculative (absent on the
	// requested document itself).
	HeaderPushed = "Spec-Pushed"
	// HeaderStale marks a response served from a proxy's superseded
	// replica store while the origin was unreachable (degraded mode).
	HeaderStale = "X-Specweb-Stale"
	// HeaderPriority carries the client's demand priority ("low",
	// "normal" or "high"; absent means normal). Under the deepest
	// degradation rung, low-priority demand is shed first.
	HeaderPriority = "Spec-Priority"
	// HeaderShed marks a 503 as deliberate overload shedding (value is
	// the shed traffic class), so clients and replays can distinguish
	// load shedding from failure.
	HeaderShed = "X-Specweb-Shed"
	// HeaderSpecP carries, on a speculative bundle part, the engine
	// probability that drove the push, in thousandths — the attribution
	// ledger's fixed-point currency.
	HeaderSpecP = "Spec-P"
	// HeaderRung carries the governor's degradation rung name on
	// responses, so attribution can bucket deliveries by the overload
	// state they were decided under.
	HeaderRung = "Spec-Rung"
	// HeaderPrefetch marks a request as a hint-driven prefetch and
	// carries the hint probability in thousandths, letting the server's
	// ledger record the delivery.
	HeaderPrefetch = "Spec-Prefetch"
	// HeaderAttrib piggybacks attribution feedback on demand requests:
	// space-separated "c:<class>:<path>" (consumed) and
	// "w:<class>:<path>" (wasted) tokens resolving earlier speculative
	// deliveries in the server's ledger.
	HeaderAttrib = "Spec-Attrib"
	// HeaderQuarantine announces, on responses to clients the estimator
	// guard has quarantined, the classification reason. Quarantined
	// clients still get full demand service but no speculation: pushing
	// to a crawler is pure waste, and its transitions no longer train
	// P[i,j].
	HeaderQuarantine = "X-Specweb-Quarantine"

	acceptBundle = "bundle"
)

// Mode selects the server's delivery of speculative candidates, mirroring
// simulate.Mode for the live protocol.
type Mode int

const (
	// ModePush sends multipart bundles to clients that accept them.
	ModePush Mode = iota
	// ModeHints only attaches Link: rel="prefetch" headers.
	ModeHints
	// ModeHybrid pushes near-certain candidates and hints the rest.
	ModeHybrid
)

// ParseMode resolves a command-line mode name — the one switch shared by
// every binary that takes a -mode flag.
func ParseMode(name string) (Mode, error) {
	switch name {
	case "push":
		return ModePush, nil
	case "hints":
		return ModeHints, nil
	case "hybrid":
		return ModeHybrid, nil
	}
	return 0, fmt.Errorf("httpspec: unknown mode %q (want push, hints, or hybrid)", name)
}

// ServerConfig parameterizes a speculative HTTP server.
type ServerConfig struct {
	Engine core.EngineConfig
	Mode   Mode
	// MaxPush bounds the number of documents pushed per response.
	MaxPush int
	// Clock supplies request times; nil means time.Now. Tests and
	// trace replays inject their own.
	Clock func() time.Time
	// Metrics selects the registry the server (and its engine and
	// replicator) register metrics in; nil means obs.Default.
	Metrics *obs.Registry
	// Tracer records per-request spans; nil means obs.DefaultTracer.
	Tracer *obs.Tracer
	// Admission gates document requests through the overload
	// controller's demand class; nil admits everything.
	Admission *overload.Controller
	// Governor adapts speculation to load (the degradation ladder); nil
	// leaves the engine's knobs static. NewServer binds it to the
	// engine with the configured Tp/TopK/MaxSize as the baseline.
	Governor *overload.Governor
	// Attrib, when non-nil, records every speculative delivery this
	// server makes (pushes, hinted prefetches it serves) and resolves
	// them from client Spec-Attrib feedback.
	Attrib *attrib.Ledger
}

// DefaultServerConfig returns a push-mode server with the baseline engine.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		Engine:  core.DefaultEngineConfig(),
		Mode:    ModeHybrid,
		MaxPush: 16,
	}
}

// ServerStats counts the server's activity.
type ServerStats struct {
	Requests     int64
	BytesSent    int64
	DocsPushed   int64
	HintsSent    int64
	NotFound     int64
	BundlesBuilt int64
}

// Server is the speculative HTTP server: an http.Handler serving a Store.
type Server struct {
	store  Store
	cfg    ServerConfig
	engine *core.Engine
	repl   *core.Replicator
	met    *serverMetrics
	tracer *obs.Tracer

	requests   atomic.Int64
	bytesSent  atomic.Int64
	docsPushed atomic.Int64
	hintsSent  atomic.Int64
	notFound   atomic.Int64
	bundles    atomic.Int64

	// Degradation-ladder accounting: speculative work suppressed (docs
	// not pushed, requests served without any speculation) and demand
	// requests shed, per instance.
	pushSuppressed  atomic.Int64
	embedSuppressed atomic.Int64
	demandShed      atomic.Int64

	// Requests served without speculation because the estimator guard
	// quarantined the client.
	quarSuppressed atomic.Int64
}

// serverMetrics are the server's observability series; the snapshot-style
// ServerStats struct stays for the JSON /spec/stats endpoint.
type serverMetrics struct {
	requests    *obs.Counter
	notFound    *obs.Counter
	bytesSent   *obs.Counter
	pushedDocs  *obs.Counter
	pushedBytes *obs.Counter
	hints       *obs.Counter
	bundles     *obs.Counter
	digestDocs  *obs.Counter
	latency     *obs.Histogram
	respBytes   *obs.Histogram

	// specweb_overload_* ladder counters, one per shedding rung.
	pushSuppressed  *obs.Counter
	embedSuppressed *obs.Counter
	demandShed      *obs.Counter

	quarSuppressed *obs.Counter
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		requests:    reg.Counter("specweb_server_requests_total", "Client-initiated document requests served.", nil),
		notFound:    reg.Counter("specweb_server_not_found_total", "Requests for unknown paths.", nil),
		bytesSent:   reg.Counter("specweb_server_bytes_sent_total", "Response bytes written (documents and bundle parts).", nil),
		pushedDocs:  reg.Counter("specweb_server_pushed_docs_total", "Documents pushed speculatively in bundles.", nil),
		pushedBytes: reg.Counter("specweb_server_pushed_bytes_total", "Bytes pushed speculatively in bundles.", nil),
		hints:       reg.Counter("specweb_server_hints_total", "Link rel=prefetch hints attached to responses.", nil),
		bundles:     reg.Counter("specweb_server_bundles_total", "Multipart bundles built.", nil),
		digestDocs:  reg.Counter("specweb_server_digest_docs_total", "Documents announced in cooperative Spec-Have digests.", nil),
		latency:     reg.Histogram("specweb_server_request_seconds", "Document request service time in seconds.", obs.LatencyBuckets(), nil),
		respBytes:   reg.Histogram("specweb_server_response_bytes", "Response size in bytes per document request.", obs.SizeBuckets(), nil),
		pushSuppressed: reg.Counter("specweb_overload_pushes_suppressed_total",
			"Documents not pushed because the degradation ladder was at no_push or higher.", nil),
		embedSuppressed: reg.Counter("specweb_overload_embeds_suppressed_total",
			"Requests served without any speculation because the ladder was at no_spec or higher.", nil),
		demandShed: reg.Counter("specweb_overload_demand_shed_total",
			"Demand requests shed with 503 + Retry-After (admission reject or shed_demand rung).", nil),
		quarSuppressed: reg.Counter("specweb_estguard_spec_suppressed_total",
			"Requests served without speculation because the client is quarantined.", nil),
	}
}

// NewServer builds a server over the store.
func NewServer(store Store, cfg ServerConfig) (*Server, error) {
	if store == nil {
		return nil, fmt.Errorf("httpspec: nil store")
	}
	if cfg.MaxPush <= 0 {
		cfg.MaxPush = 16
	}
	if cfg.Engine.Metrics == nil {
		cfg.Engine.Metrics = cfg.Metrics
	}
	if cfg.Tracer == nil {
		cfg.Tracer = obs.DefaultTracer
	}
	if cfg.Engine.Guard != nil && cfg.Engine.Feedback == nil && cfg.Attrib != nil {
		// Close the loop by default: snapshot validation calibrates
		// against the same ledger this server records deliveries in.
		led := cfg.Attrib
		cfg.Engine.Feedback = func() (int64, int64, int64) {
			t := led.TotalsSnapshot()
			return t.Deliveries, t.Consumed, t.Wasted
		}
	}
	eng, err := core.NewEngine(cfg.Engine, func(id webgraph.DocID) (int64, bool) {
		return store.Size(id)
	})
	if err != nil {
		return nil, err
	}
	// The governor throttles this engine's §3.4 knobs, restoring the
	// configured operating point when load drains.
	cfg.Governor.Bind(eng, overload.Baseline{
		Tp:      cfg.Engine.Tp,
		TopK:    cfg.Engine.TopK,
		MaxSize: cfg.Engine.MaxSize,
	})
	return &Server{
		store:  store,
		cfg:    cfg,
		engine: eng,
		repl:   core.NewReplicatorIn(cfg.Metrics),
		met:    newServerMetrics(cfg.Metrics),
		tracer: cfg.Tracer,
	}, nil
}

// Engine exposes the online engine (for tests and stats).
func (s *Server) Engine() *core.Engine { return s.engine }

// Replicator exposes the popularity tracker feeding dissemination.
func (s *Server) Replicator() *core.Replicator { return s.repl }

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Requests:     s.requests.Load(),
		BytesSent:    s.bytesSent.Load(),
		DocsPushed:   s.docsPushed.Load(),
		HintsSent:    s.hintsSent.Load(),
		NotFound:     s.notFound.Load(),
		BundlesBuilt: s.bundles.Load(),
	}
}

func (s *Server) now() time.Time {
	if s.cfg.Clock != nil {
		return s.cfg.Clock()
	}
	return time.Now()
}

// ServeHTTP handles document requests plus two control endpoints:
// GET /spec/stats (JSON counters) and GET /spec/replicas?budget=N (the
// dissemination replica set recommendation).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/spec/stats":
		s.serveStats(w)
		return
	case r.URL.Path == "/spec/replicas":
		s.serveReplicas(w, r)
		return
	}
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	start := s.now()
	// Continue the caller's trace when it sent one (client or proxy hop),
	// so one trace ID spans the whole request path.
	sp := s.tracer.StartRemote("server.request", r.Header.Get(obs.TraceparentHeader))
	sp.SetAttr("path", r.URL.Path)
	defer sp.Finish()

	// Admission first: a saturated server answers 503 + Retry-After
	// before doing any work for the request. The wait queue inside
	// Acquire is deadline-aware, so a request that cannot outlast the
	// backlog fails immediately rather than timing out silently.
	if s.cfg.Admission != nil {
		release, err := s.cfg.Admission.Acquire(r.Context(), overload.Demand)
		if err != nil {
			s.shedDemand(w, sp, s.cfg.Admission.RetryAfter(overload.Demand))
			return
		}
		defer release()
	}

	id, ok := s.store.Lookup(r.URL.Path)
	if !ok {
		s.notFound.Add(1)
		s.met.notFound.Inc()
		sp.SetAttr("status", "404")
		http.NotFound(w, r)
		return
	}

	// The degradation ladder's last rung: shed lowest-priority demand
	// before recording or serving anything — the cheapest possible exit.
	rung := s.cfg.Governor.Rung()
	rungName := overload.RungName(rung)
	sp.SetAttr("rung", rungName)
	if rung >= overload.RungShedDemand && priorityOf(r) == prioLow {
		s.shedDemand(w, sp, 1)
		return
	}
	if s.cfg.Governor != nil {
		w.Header().Set(HeaderRung, rungName)
	}

	// Resolve attribution feedback the client piggybacked before counting
	// this request's own speculation.
	s.ingestAttrib(r.Header.Get(HeaderAttrib))

	s.requests.Add(1)
	s.met.requests.Inc()

	client := clientID(r)
	at := s.now()
	s.engine.Record(client, id, at)
	size, _ := s.store.Size(id)
	s.repl.Record(id, size, isRemote(client))

	// Quarantined clients (crawlers, scanners, bots per the estimator
	// guard) are served normally but never speculated to: every pushed
	// byte to a one-pass crawler is guaranteed waste. The status only
	// changes at refresh time, so this decision is deterministic for a
	// given trace regardless of request interleaving.
	quarReason := ""
	if st, reason := s.engine.ClientStatus(client); st == estguard.Quarantined {
		quarReason = reason
		if quarReason == "" {
			quarReason = "quarantined"
		}
		w.Header().Set(HeaderQuarantine, quarReason)
	}

	var push []webgraph.DocID
	var pushP []float64
	var hints []hint
	switch {
	case quarReason != "":
		s.quarSuppressed.Add(1)
		s.met.quarSuppressed.Inc()
		sp.SetAttr("speculation", "quarantined")
	case rung >= overload.RungNoSpec:
		// Second rung: no speculation at all — skip the candidate
		// computation entirely and serve the plain demand response.
		s.embedSuppressed.Add(1)
		s.met.embedSuppressed.Inc()
		sp.SetAttr("speculation", "suppressed")
	default:
		have := parseHave(r.Header.Get(HeaderHave), s.store)
		s.met.digestDocs.Add(int64(len(have)))
		have[id] = true // never push the requested document

		// The engine's lock-free decision path: the pooled Decision's
		// buffers back push/hints until the response is written, then
		// recycle at request end.
		d := core.AcquireDecision()
		defer core.ReleaseDecision(d)
		spec := s.tracer.StartChild("server.speculate", sp)
		switch s.cfg.Mode {
		case ModePush:
			s.engine.SpeculateInto(d, id, have)
			push, pushP = d.Push, d.PushP
		case ModeHints:
			s.engine.HintsInto(d, id, have)
			for _, h := range d.Hints {
				hints = append(hints, hint{doc: h.Doc, p: h.P})
			}
		case ModeHybrid:
			s.engine.SplitInto(d, id, have)
			push, pushP = d.Push, d.PushP
			for _, h := range d.Hints {
				hints = append(hints, hint{doc: h.Doc, p: h.P})
			}
		}
		if len(push) > s.cfg.MaxPush {
			push = push[:s.cfg.MaxPush]
			pushP = pushP[:s.cfg.MaxPush]
		}
		if rung >= overload.RungNoPush && len(push) > 0 {
			// First rung: stop pushing — the bytes are the expensive
			// part. The already-computed candidates demote to hints, so
			// clients keep some speculative benefit at header cost.
			s.pushSuppressed.Add(int64(len(push)))
			s.met.pushSuppressed.Add(int64(len(push)))
			for i, d := range push {
				hints = append(hints, hint{doc: d, p: pushP[i]})
			}
			push, pushP = nil, nil
		}
		spec.SetAttr("push", strconv.Itoa(len(push)))
		spec.SetAttr("hints", strconv.Itoa(len(hints)))
		spec.Finish()
	}

	for _, h := range hints {
		if path, ok := s.store.Path(h.doc); ok {
			w.Header().Add("Link", fmt.Sprintf("<%s>; rel=\"prefetch\"; spec-p=%.3f", path, h.p))
			s.hintsSent.Add(1)
			s.met.hints.Inc()
		}
	}

	wantBundle := strings.Contains(r.Header.Get(HeaderAccept), acceptBundle)
	var written int64
	if wantBundle && len(push) > 0 {
		bsp := s.tracer.StartChild("server.bundle", sp)
		written = s.serveBundle(w, id, push, pushP, rungName)
		bsp.Finish()
		sp.SetAttr("kind", "bundle")
	} else {
		written = s.serveDoc(w, id)
		sp.SetAttr("kind", "doc")
		// A hint-driven prefetch announces itself (with the hint's
		// probability); the bytes it pulls are a speculative delivery.
		if pm := r.Header.Get(HeaderPrefetch); pm != "" && s.cfg.Attrib != nil {
			// Clamped parse: a forged or malformed probability must not
			// poison the ledger's confidence sums.
			pMilli, _ := parsePMilli(pm)
			s.cfg.Attrib.Delivered(r.URL.Path, attrib.ClassPrefetch, written, pMilli, rungName)
		}
	}
	s.met.respBytes.Observe(float64(written))
	elapsed := s.now().Sub(start)
	// The trace-ID exemplar ties the latency bucket to a concrete request
	// inspectable at /debug/spans?trace=….
	s.met.latency.ObserveTrace(elapsed.Seconds(), sp.TraceID())
	// Feed the governor the full demand-path latency (including any
	// admission queueing): its control loop is what brings the ladder
	// back down when this number recovers.
	s.cfg.Governor.Observe(elapsed)
}

type hint struct {
	doc webgraph.DocID
	p   float64
}

// Demand priorities carried by HeaderPriority.
const (
	prioLow = iota - 1
	prioNormal
	prioHigh
)

// priorityOf parses the request's demand priority; unknown values are
// normal.
func priorityOf(r *http.Request) int {
	switch strings.ToLower(r.Header.Get(HeaderPriority)) {
	case "low":
		return prioLow
	case "high":
		return prioHigh
	}
	return prioNormal
}

// shedDemand answers a demand request with the overload-control 503:
// Retry-After so well-behaved clients back off, HeaderShed so replays
// can separate deliberate shedding from failure.
func (s *Server) shedDemand(w http.ResponseWriter, sp *obs.ActiveSpan, retryAfter int) {
	s.demandShed.Add(1)
	s.met.demandShed.Inc()
	sp.SetAttr("status", "503")
	sp.SetAttr("shed", "demand")
	if retryAfter < 1 {
		retryAfter = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	w.Header().Set(HeaderShed, overload.Demand.String())
	http.Error(w, "overloaded, retry later", http.StatusServiceUnavailable)
}

// ServerOverloadStats reports the server's overload-control state: the
// ladder counters, the governor, and the admission controller. Zero
// values throughout when overload control is not configured.
type ServerOverloadStats struct {
	PushesSuppressed int64                  `json:"pushes_suppressed"`
	EmbedsSuppressed int64                  `json:"embeds_suppressed"`
	DemandShed       int64                  `json:"demand_shed"`
	Governor         overload.GovernorStats `json:"governor"`
	Admission        *overload.Stats        `json:"admission,omitempty"`
}

// SpeculativeShed is the total speculative work units the ladder shed:
// suppressed pushed documents, despeculated requests, and speculative
// admission rejections.
func (o ServerOverloadStats) SpeculativeShed() int64 {
	n := o.PushesSuppressed + o.EmbedsSuppressed
	if o.Admission != nil {
		n += o.Admission.Speculative.Rejected
	}
	return n
}

// TotalDemandShed is every demand request refused with 503: ladder sheds
// (which include admission rejections counted by shedDemand).
func (o ServerOverloadStats) TotalDemandShed() int64 { return o.DemandShed }

// OverloadStats snapshots the server's overload control.
func (s *Server) OverloadStats() ServerOverloadStats {
	st := ServerOverloadStats{
		PushesSuppressed: s.pushSuppressed.Load(),
		EmbedsSuppressed: s.embedSuppressed.Load(),
		DemandShed:       s.demandShed.Load(),
		Governor:         s.cfg.Governor.Stats(),
	}
	if s.cfg.Admission != nil {
		adm := s.cfg.Admission.Stats()
		st.Admission = &adm
	}
	return st
}

// overloadEnabled reports whether any overload control is configured.
func (s *Server) overloadEnabled() bool {
	return s.cfg.Admission != nil || s.cfg.Governor != nil
}

func (s *Server) serveDoc(w http.ResponseWriter, id webgraph.DocID) int64 {
	body, ok := s.store.Content(id)
	if !ok {
		http.Error(w, "document vanished", http.StatusInternalServerError)
		return 0
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	n, _ := w.Write(body)
	s.bytesSent.Add(int64(n))
	s.met.bytesSent.Add(int64(n))
	return int64(n)
}

// serveBundle writes a multipart/mixed response: the requested document
// first, then each speculative document, every part carrying its
// Content-Location (and, when pushed, the Spec-P probability that drove
// the push). Returns the body bytes written.
func (s *Server) serveBundle(w http.ResponseWriter, id webgraph.DocID, push []webgraph.DocID, pushP []float64, rung string) int64 {
	mw := multipart.NewWriter(w)
	w.Header().Set("Content-Type", "multipart/mixed; boundary="+mw.Boundary())
	s.bundles.Add(1)
	s.met.bundles.Inc()

	var total int64
	writePart := func(doc webgraph.DocID, pushed bool, pMilli int64) {
		path, ok := s.store.Path(doc)
		if !ok {
			return
		}
		body, ok := s.store.Content(doc)
		if !ok {
			return
		}
		hdr := textproto.MIMEHeader{}
		hdr.Set("Content-Location", path)
		hdr.Set("Content-Type", "application/octet-stream")
		if pushed {
			hdr.Set(HeaderPushed, "1")
			hdr.Set(HeaderSpecP, strconv.FormatInt(pMilli, 10))
		}
		pw, err := mw.CreatePart(hdr)
		if err != nil {
			return
		}
		n, _ := pw.Write(body)
		total += int64(n)
		s.bytesSent.Add(int64(n))
		s.met.bytesSent.Add(int64(n))
		if pushed {
			s.docsPushed.Add(1)
			s.met.pushedDocs.Inc()
			s.met.pushedBytes.Add(int64(n))
			s.cfg.Attrib.Delivered(path, attrib.ClassPush, int64(n), pMilli, rung)
		}
	}
	writePart(id, false, 0)
	for i, d := range push {
		var pMilli int64
		if i < len(pushP) {
			pMilli = attrib.PMilli(pushP[i])
		}
		writePart(d, true, pMilli)
	}
	_ = mw.Close()
	return total
}

// ingestAttrib resolves client Spec-Attrib feedback tokens
// ("c:<class>:<path>" consumed, "w:<class>:<path>" wasted) against the
// server's ledger, using the store's current size for the byte amount.
// Tokens are validated (known kind, known class, plausible path) and
// capped, so a hostile header cannot poison the ledger's class map or
// grind the store with lookups.
func (s *Server) ingestAttrib(header string) {
	if header == "" || s.cfg.Attrib == nil {
		return
	}
	toks := strings.Fields(header)
	if len(toks) > maxAttribTokens {
		toks = toks[:maxAttribTokens]
	}
	for _, tok := range toks {
		consumed, class, path, ok := parseAttribToken(tok)
		if !ok {
			continue
		}
		id, ok := s.store.Lookup(path)
		if !ok {
			continue
		}
		size, _ := s.store.Size(id)
		if consumed {
			s.cfg.Attrib.Consumed(path, class, size)
		} else {
			s.cfg.Attrib.Wasted(path, class, size)
		}
	}
}

func (s *Server) serveStats(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	st := struct {
		Server   ServerStats
		Engine   core.Stats
		Overload *ServerOverloadStats `json:",omitempty"`
		Attrib   *attrib.Report       `json:",omitempty"`
		Estguard *estguard.Stats      `json:",omitempty"`
	}{Server: s.Stats(), Engine: s.engine.Stats()}
	if s.overloadEnabled() {
		ov := s.OverloadStats()
		st.Overload = &ov
	}
	st.Attrib = s.cfg.Attrib.Report(20)
	if g := s.engine.Guard(); g != nil {
		gs := g.StatsSnapshot()
		gs.SpecSuppressed = s.quarSuppressed.Load()
		st.Estguard = &gs
	}
	_ = json.NewEncoder(w).Encode(st)
}

// serveReplicas reports the paths a dissemination proxy should replicate
// within the given byte budget, ranked by remote popularity.
func (s *Server) serveReplicas(w http.ResponseWriter, r *http.Request) {
	budget, err := strconv.ParseInt(r.URL.Query().Get("budget"), 10, 64)
	if err != nil || budget <= 0 {
		http.Error(w, "budget must be a positive integer", http.StatusBadRequest)
		return
	}
	var paths []string
	for _, id := range s.repl.ReplicaSet(budget) {
		if p, ok := s.store.Path(id); ok {
			paths = append(paths, p)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(paths)
}

func clientID(r *http.Request) trace.ClientID {
	if c := r.Header.Get(HeaderClient); c != "" {
		return trace.ClientID(c)
	}
	host := r.RemoteAddr
	if i := strings.LastIndexByte(host, ':'); i > 0 {
		host = host[:i]
	}
	return trace.ClientID(host)
}

// isRemote classifies a client as outside the organization, by the same
// naming convention the trace generator uses.
func isRemote(c trace.ClientID) bool {
	return !strings.HasSuffix(string(c), ".local")
}

func parseHave(header string, store Store) map[webgraph.DocID]bool {
	have := make(map[webgraph.DocID]bool)
	for _, p := range strings.Fields(header) {
		if id, ok := store.Lookup(p); ok {
			have[id] = true
		}
	}
	return have
}
