package httpspec

import (
	"encoding/json"
	"fmt"
	"mime/multipart"
	"net/http"
	"net/textproto"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"specweb/internal/core"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// Protocol header names. Spec-Client identifies the requesting client
// (falling back to the remote address), Spec-Accept announces bundle
// support, and Spec-Have carries the cooperative cache digest as
// space-separated URL paths.
const (
	HeaderClient = "Spec-Client"
	HeaderAccept = "Spec-Accept"
	HeaderHave   = "Spec-Have"
	// HeaderPushed marks a bundle part as speculative (absent on the
	// requested document itself).
	HeaderPushed = "Spec-Pushed"

	acceptBundle = "bundle"
)

// Mode selects the server's delivery of speculative candidates, mirroring
// simulate.Mode for the live protocol.
type Mode int

const (
	// ModePush sends multipart bundles to clients that accept them.
	ModePush Mode = iota
	// ModeHints only attaches Link: rel="prefetch" headers.
	ModeHints
	// ModeHybrid pushes near-certain candidates and hints the rest.
	ModeHybrid
)

// ServerConfig parameterizes a speculative HTTP server.
type ServerConfig struct {
	Engine core.EngineConfig
	Mode   Mode
	// MaxPush bounds the number of documents pushed per response.
	MaxPush int
	// Clock supplies request times; nil means time.Now. Tests and
	// trace replays inject their own.
	Clock func() time.Time
}

// DefaultServerConfig returns a push-mode server with the baseline engine.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		Engine:  core.DefaultEngineConfig(),
		Mode:    ModeHybrid,
		MaxPush: 16,
	}
}

// ServerStats counts the server's activity.
type ServerStats struct {
	Requests     int64
	BytesSent    int64
	DocsPushed   int64
	HintsSent    int64
	NotFound     int64
	BundlesBuilt int64
}

// Server is the speculative HTTP server: an http.Handler serving a Store.
type Server struct {
	store  Store
	cfg    ServerConfig
	engine *core.Engine
	repl   *core.Replicator

	requests   atomic.Int64
	bytesSent  atomic.Int64
	docsPushed atomic.Int64
	hintsSent  atomic.Int64
	notFound   atomic.Int64
	bundles    atomic.Int64
}

// NewServer builds a server over the store.
func NewServer(store Store, cfg ServerConfig) (*Server, error) {
	if store == nil {
		return nil, fmt.Errorf("httpspec: nil store")
	}
	if cfg.MaxPush <= 0 {
		cfg.MaxPush = 16
	}
	eng, err := core.NewEngine(cfg.Engine, func(id webgraph.DocID) (int64, bool) {
		return store.Size(id)
	})
	if err != nil {
		return nil, err
	}
	return &Server{store: store, cfg: cfg, engine: eng, repl: core.NewReplicator()}, nil
}

// Engine exposes the online engine (for tests and stats).
func (s *Server) Engine() *core.Engine { return s.engine }

// Replicator exposes the popularity tracker feeding dissemination.
func (s *Server) Replicator() *core.Replicator { return s.repl }

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Requests:     s.requests.Load(),
		BytesSent:    s.bytesSent.Load(),
		DocsPushed:   s.docsPushed.Load(),
		HintsSent:    s.hintsSent.Load(),
		NotFound:     s.notFound.Load(),
		BundlesBuilt: s.bundles.Load(),
	}
}

func (s *Server) now() time.Time {
	if s.cfg.Clock != nil {
		return s.cfg.Clock()
	}
	return time.Now()
}

// ServeHTTP handles document requests plus two control endpoints:
// GET /spec/stats (JSON counters) and GET /spec/replicas?budget=N (the
// dissemination replica set recommendation).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/spec/stats":
		s.serveStats(w)
		return
	case r.URL.Path == "/spec/replicas":
		s.serveReplicas(w, r)
		return
	}
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id, ok := s.store.Lookup(r.URL.Path)
	if !ok {
		s.notFound.Add(1)
		http.NotFound(w, r)
		return
	}
	s.requests.Add(1)

	client := clientID(r)
	at := s.now()
	s.engine.Record(client, id, at)
	size, _ := s.store.Size(id)
	s.repl.Record(id, size, isRemote(client))

	have := parseHave(r.Header.Get(HeaderHave), s.store)
	have[id] = true // never push the requested document

	var push []webgraph.DocID
	var hints []hint
	switch s.cfg.Mode {
	case ModePush:
		push = s.engine.Speculate(id, have)
	case ModeHints:
		for _, h := range s.engine.Hints(id, have) {
			hints = append(hints, hint{doc: h.Doc, p: h.P})
		}
	case ModeHybrid:
		p, hs := s.engine.Split(id, have)
		push = p
		for _, h := range hs {
			hints = append(hints, hint{doc: h.Doc, p: h.P})
		}
	}
	if len(push) > s.cfg.MaxPush {
		push = push[:s.cfg.MaxPush]
	}

	for _, h := range hints {
		if path, ok := s.store.Path(h.doc); ok {
			w.Header().Add("Link", fmt.Sprintf("<%s>; rel=\"prefetch\"; spec-p=%.3f", path, h.p))
			s.hintsSent.Add(1)
		}
	}

	wantBundle := strings.Contains(r.Header.Get(HeaderAccept), acceptBundle)
	if wantBundle && len(push) > 0 {
		s.serveBundle(w, id, push)
		return
	}
	s.serveDoc(w, id)
}

type hint struct {
	doc webgraph.DocID
	p   float64
}

func (s *Server) serveDoc(w http.ResponseWriter, id webgraph.DocID) {
	body, ok := s.store.Content(id)
	if !ok {
		http.Error(w, "document vanished", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	n, _ := w.Write(body)
	s.bytesSent.Add(int64(n))
}

// serveBundle writes a multipart/mixed response: the requested document
// first, then each speculative document, every part carrying its
// Content-Location.
func (s *Server) serveBundle(w http.ResponseWriter, id webgraph.DocID, push []webgraph.DocID) {
	mw := multipart.NewWriter(w)
	w.Header().Set("Content-Type", "multipart/mixed; boundary="+mw.Boundary())
	s.bundles.Add(1)

	writePart := func(doc webgraph.DocID, pushed bool) {
		path, ok := s.store.Path(doc)
		if !ok {
			return
		}
		body, ok := s.store.Content(doc)
		if !ok {
			return
		}
		hdr := textproto.MIMEHeader{}
		hdr.Set("Content-Location", path)
		hdr.Set("Content-Type", "application/octet-stream")
		if pushed {
			hdr.Set(HeaderPushed, "1")
		}
		pw, err := mw.CreatePart(hdr)
		if err != nil {
			return
		}
		n, _ := pw.Write(body)
		s.bytesSent.Add(int64(n))
		if pushed {
			s.docsPushed.Add(1)
		}
	}
	writePart(id, false)
	for _, d := range push {
		writePart(d, true)
	}
	_ = mw.Close()
}

func (s *Server) serveStats(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	st := struct {
		Server ServerStats
		Engine core.Stats
	}{s.Stats(), s.engine.Stats()}
	_ = json.NewEncoder(w).Encode(st)
}

// serveReplicas reports the paths a dissemination proxy should replicate
// within the given byte budget, ranked by remote popularity.
func (s *Server) serveReplicas(w http.ResponseWriter, r *http.Request) {
	budget, err := strconv.ParseInt(r.URL.Query().Get("budget"), 10, 64)
	if err != nil || budget <= 0 {
		http.Error(w, "budget must be a positive integer", http.StatusBadRequest)
		return
	}
	var paths []string
	for _, id := range s.repl.ReplicaSet(budget) {
		if p, ok := s.store.Path(id); ok {
			paths = append(paths, p)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(paths)
}

func clientID(r *http.Request) trace.ClientID {
	if c := r.Header.Get(HeaderClient); c != "" {
		return trace.ClientID(c)
	}
	host := r.RemoteAddr
	if i := strings.LastIndexByte(host, ':'); i > 0 {
		host = host[:i]
	}
	return trace.ClientID(host)
}

// isRemote classifies a client as outside the organization, by the same
// naming convention the trace generator uses.
func isRemote(c trace.ClientID) bool {
	return !strings.HasSuffix(string(c), ".local")
}

func parseHave(header string, store Store) map[webgraph.DocID]bool {
	have := make(map[webgraph.DocID]bool)
	for _, p := range strings.Fields(header) {
		if id, ok := store.Lookup(p); ok {
			have[id] = true
		}
	}
	return have
}
