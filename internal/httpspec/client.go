package httpspec

import (
	"context"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"specweb/internal/resilience"
)

// ErrShed marks a demand fetch the server refused under overload control
// (503 with the X-Specweb-Shed header). It is permanent — retrying into
// an overloaded server only deepens the overload — so callers see it
// immediately and should honour Retry-After instead. Detect it with
// errors.Is.
var ErrShed = errors.New("httpspec: request shed by overload control")

// ClientConfig parameterizes a speculative HTTP client.
type ClientConfig struct {
	// ID identifies the client to the server (Spec-Client header).
	ID string
	// AcceptBundles announces multipart bundle support.
	AcceptBundles bool
	// Cooperative piggybacks the cache digest on every request.
	Cooperative bool
	// PrefetchThreshold is the minimum spec-p at which the client follows
	// a prefetch hint; 0 disables hint-driven prefetching.
	PrefetchThreshold float64
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
	// Timeout bounds each demand fetch attempt and each prefetch; 0
	// means no client-imposed deadline (a caller context still applies).
	Timeout time.Duration
	// Retrier, when non-nil, retries failed demand fetches (transport
	// errors, 5xx, truncated bodies) — shared across clients so its
	// retry budget is global. When nil, Retry with MaxAttempts > 1
	// builds a private one; otherwise fetches are single-attempt.
	Retrier *resilience.Retrier
	Retry   resilience.RetryConfig
	// Breaker, when non-nil, guards demand fetches (shared per origin).
	Breaker *resilience.Breaker
	// Priority tags every demand request (Spec-Priority header):
	// "low", "" (normal), or "high". Low-priority demand is the first
	// demand class an overloaded server sheds.
	Priority string
}

// ClientStats counts the client's activity.
type ClientStats struct {
	Fetches    int64 // client-initiated document fetches
	CacheHits  int64
	Pushed     int64 // documents received speculatively
	Prefetched int64 // documents fetched because of hints
	BytesIn    int64

	// SpecHits counts cache hits served by a document that arrived
	// speculatively (pushed or prefetched) and had not been requested
	// before — the hits speculation itself manufactured. SpecHitBytes is
	// their byte total: exactly what a non-speculative client would have
	// had to fetch over the wire.
	SpecHits     int64
	SpecHitBytes int64
	// DemandBytes is the byte total of every client-initiated fetch (hit
	// or miss); MissBytes the requested-document bytes actually fetched.
	// MissBytes/DemandBytes is the live byte miss rate of §3.3.
	DemandBytes int64
	MissBytes   int64

	// Retries counts re-attempted demand fetches; StaleServes counts
	// responses a proxy marked as served from its stale store while the
	// origin was down — both feed the chaos-mode availability report.
	Retries     int64
	StaleServes int64

	// Shed counts demand fetches the server refused under overload
	// control (ErrShed) — deliberate degradation, not failure.
	Shed int64
}

// cacheEntry is one cached document; spec marks it as having arrived
// speculatively and not yet been requested.
type cacheEntry struct {
	body []byte
	spec bool
}

// Client is a caching HTTP client that understands the speculative
// protocol: it consumes bundles, follows prefetch hints, and keeps a
// session cache keyed by URL path.
type Client struct {
	cfg     ClientConfig
	base    string
	retrier *resilience.Retrier

	mu    sync.Mutex
	cache map[string]cacheEntry
	stats ClientStats
}

// NewClient builds a client for the server at base (e.g. the URL of an
// httptest server).
func NewClient(base string, cfg ClientConfig) *Client {
	if cfg.HTTP == nil {
		cfg.HTTP = http.DefaultClient
	}
	retrier := cfg.Retrier
	if retrier == nil && cfg.Retry.MaxAttempts > 1 {
		retrier = resilience.NewRetrier(cfg.Retry)
	}
	return &Client{cfg: cfg, base: strings.TrimRight(base, "/"),
		retrier: retrier, cache: make(map[string]cacheEntry)}
}

// Stats returns a snapshot of the client counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Cached reports whether path is in the cache.
func (c *Client) Cached(path string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.cache[path]
	return ok
}

// EndSession purges the cache (the paper's end-of-session purge).
func (c *Client) EndSession() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cache = make(map[string]cacheEntry)
}

// Get fetches a document, serving from cache when possible. fromCache
// reports whether the body came from the local cache.
func (c *Client) Get(path string) (body []byte, fromCache bool, err error) {
	return c.GetCtx(context.Background(), path)
}

// GetCtx is Get with cancellation and deadline propagation: the caller's
// context bounds the demand fetch, its retries, and any synchronous
// hint-driven prefetches.
func (c *Client) GetCtx(ctx context.Context, path string) (body []byte, fromCache bool, err error) {
	c.mu.Lock()
	c.stats.Fetches++
	if e, ok := c.cache[path]; ok {
		c.stats.CacheHits++
		c.stats.DemandBytes += int64(len(e.body))
		if e.spec {
			// First request for a speculatively delivered document:
			// count the manufactured hit, then treat it as an ordinary
			// cached document from here on.
			c.stats.SpecHits++
			c.stats.SpecHitBytes += int64(len(e.body))
			e.spec = false
			c.cache[path] = e
		}
		c.mu.Unlock()
		return e.body, true, nil
	}
	digest := c.digestLocked()
	c.mu.Unlock()

	var hints []clientHint
	if c.retrier != nil {
		attempts := 0
		err = c.retrier.Do(ctx, func(ctx context.Context) error {
			attempts++
			var ferr error
			body, hints, ferr = c.fetch(ctx, path, digest)
			return ferr
		})
		if attempts > 1 {
			c.mu.Lock()
			c.stats.Retries += int64(attempts - 1)
			c.mu.Unlock()
		}
	} else {
		body, hints, err = c.fetch(ctx, path, digest)
	}
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	c.stats.DemandBytes += int64(len(body))
	c.stats.MissBytes += int64(len(body))
	c.mu.Unlock()
	// Hint-driven prefetching happens synchronously so behaviour is
	// deterministic; a production client would fetch in the background.
	for _, h := range hints {
		if h.p < c.cfg.PrefetchThreshold || c.cfg.PrefetchThreshold == 0 {
			continue
		}
		c.prefetch(ctx, h.path)
	}
	return body, false, nil
}

type clientHint struct {
	path string
	p    float64
}

// fetch performs one HTTP request and ingests the response (direct body or
// bundle), returning the requested document's body and any prefetch hints.
// Transport errors, 5xx responses and truncated bodies return retryable
// errors; 4xx responses are marked permanent so the retrier stops.
func (c *Client) fetch(ctx context.Context, path string, digest string) ([]byte, []clientHint, error) {
	if c.cfg.Breaker != nil {
		if err := c.cfg.Breaker.Allow(); err != nil {
			return nil, nil, resilience.Permanent(err)
		}
	}
	body, hints, err := c.fetchAllowed(ctx, path, digest)
	if c.cfg.Breaker != nil {
		if resilience.IsPermanent(err) {
			c.cfg.Breaker.Record(nil) // the origin answered; 4xx is not its failure
		} else {
			c.cfg.Breaker.Record(err)
		}
	}
	return body, hints, err
}

func (c *Client) fetchAllowed(ctx context.Context, path string, digest string) ([]byte, []clientHint, error) {
	cctx, cancel := resilience.EnsureDeadline(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, nil, resilience.Permanent(err)
	}
	if c.cfg.ID != "" {
		req.Header.Set(HeaderClient, c.cfg.ID)
	}
	if c.cfg.AcceptBundles {
		req.Header.Set(HeaderAccept, acceptBundle)
	}
	if c.cfg.Cooperative && digest != "" {
		req.Header.Set(HeaderHave, digest)
	}
	if c.cfg.Priority != "" {
		req.Header.Set(HeaderPriority, c.cfg.Priority)
	}
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get(HeaderShed) != "" {
			c.mu.Lock()
			c.stats.Shed++
			c.mu.Unlock()
			return nil, nil, resilience.Permanent(
				fmt.Errorf("httpspec: GET %s: %w (Retry-After %s)",
					path, ErrShed, resp.Header.Get("Retry-After")))
		}
		ferr := fmt.Errorf("httpspec: GET %s: %s", path, resp.Status)
		if resp.StatusCode >= 500 {
			return nil, nil, ferr
		}
		return nil, nil, resilience.Permanent(ferr)
	}
	if resp.Header.Get(HeaderStale) != "" {
		c.mu.Lock()
		c.stats.StaleServes++
		c.mu.Unlock()
	}

	var hints []clientHint
	for _, l := range resp.Header.Values("Link") {
		if h, ok := parseLinkHint(l); ok {
			hints = append(hints, h)
		}
	}

	ct := resp.Header.Get("Content-Type")
	mt, params, _ := mime.ParseMediaType(ct)
	if mt == "multipart/mixed" {
		body, err := c.ingestBundle(path, resp.Body, params["boundary"])
		return body, hints, err
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	c.cache[path] = cacheEntry{body: body}
	c.stats.BytesIn += int64(len(body))
	c.mu.Unlock()
	return body, hints, nil
}

// ingestBundle reads a multipart bundle, caching every part and returning
// the part matching the requested path.
func (c *Client) ingestBundle(want string, r io.Reader, boundary string) ([]byte, error) {
	if boundary == "" {
		return nil, fmt.Errorf("httpspec: bundle without boundary")
	}
	mr := multipart.NewReader(r, boundary)
	var wanted []byte
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("httpspec: reading bundle: %w", err)
		}
		loc := part.Header.Get("Content-Location")
		body, err := io.ReadAll(part)
		if err != nil {
			return nil, fmt.Errorf("httpspec: reading bundle part %q: %w", loc, err)
		}
		pushed := part.Header.Get(HeaderPushed) != ""
		c.mu.Lock()
		if _, ok := c.cache[loc]; !ok {
			c.cache[loc] = cacheEntry{body: body, spec: pushed}
			if pushed {
				c.stats.Pushed++
			}
		}
		c.stats.BytesIn += int64(len(body))
		c.mu.Unlock()
		if loc == want {
			wanted = body
		}
	}
	if wanted == nil {
		return nil, fmt.Errorf("httpspec: bundle missing requested document %q", want)
	}
	return wanted, nil
}

// prefetch fetches a hinted path into the cache (no hint recursion).
// Prefetches are speculative, so they stay single-attempt: a failed
// prefetch costs nothing the demand path will not recover later.
func (c *Client) prefetch(ctx context.Context, path string) {
	c.mu.Lock()
	if _, ok := c.cache[path]; ok {
		c.mu.Unlock()
		return
	}
	digest := c.digestLocked()
	c.mu.Unlock()

	cctx, cancel := resilience.EnsureDeadline(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return
	}
	if c.cfg.ID != "" {
		req.Header.Set(HeaderClient, c.cfg.ID)
	}
	if c.cfg.Cooperative && digest != "" {
		req.Header.Set(HeaderHave, digest)
	}
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return
	}
	c.mu.Lock()
	if _, ok := c.cache[path]; !ok {
		c.cache[path] = cacheEntry{body: body, spec: true}
		c.stats.Prefetched++
		c.stats.BytesIn += int64(len(body))
	}
	c.mu.Unlock()
}

// digestLocked renders the cooperative Spec-Have digest. Callers hold mu.
func (c *Client) digestLocked() string {
	if !c.cfg.Cooperative || len(c.cache) == 0 {
		return ""
	}
	paths := make([]string, 0, len(c.cache))
	for p := range c.cache {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return strings.Join(paths, " ")
}

// parseLinkHint parses `</path>; rel="prefetch"; spec-p=0.42`.
func parseLinkHint(l string) (clientHint, bool) {
	parts := strings.Split(l, ";")
	if len(parts) == 0 {
		return clientHint{}, false
	}
	target := strings.TrimSpace(parts[0])
	if !strings.HasPrefix(target, "<") || !strings.HasSuffix(target, ">") {
		return clientHint{}, false
	}
	h := clientHint{path: target[1 : len(target)-1]}
	isPrefetch := false
	for _, p := range parts[1:] {
		p = strings.TrimSpace(p)
		switch {
		case p == `rel="prefetch"` || p == "rel=prefetch":
			isPrefetch = true
		case strings.HasPrefix(p, "spec-p="):
			fmt.Sscanf(p, "spec-p=%f", &h.p)
		}
	}
	return h, isPrefetch
}
