package httpspec

import (
	"context"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"specweb/internal/attrib"
	"specweb/internal/obs"
	"specweb/internal/resilience"
)

// ErrShed marks a demand fetch the server refused under overload control
// (503 with the X-Specweb-Shed header). It is permanent — retrying into
// an overloaded server only deepens the overload — so callers see it
// immediately and should honour Retry-After instead. Detect it with
// errors.Is.
var ErrShed = errors.New("httpspec: request shed by overload control")

// ClientConfig parameterizes a speculative HTTP client.
type ClientConfig struct {
	// ID identifies the client to the server (Spec-Client header).
	ID string
	// AcceptBundles announces multipart bundle support.
	AcceptBundles bool
	// Cooperative piggybacks the cache digest on every request.
	Cooperative bool
	// PrefetchThreshold is the minimum spec-p at which the client follows
	// a prefetch hint; 0 disables hint-driven prefetching.
	PrefetchThreshold float64
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
	// Timeout bounds each demand fetch attempt and each prefetch; 0
	// means no client-imposed deadline (a caller context still applies).
	Timeout time.Duration
	// Retrier, when non-nil, retries failed demand fetches (transport
	// errors, 5xx, truncated bodies) — shared across clients so its
	// retry budget is global. When nil, Retry with MaxAttempts > 1
	// builds a private one; otherwise fetches are single-attempt.
	Retrier *resilience.Retrier
	Retry   resilience.RetryConfig
	// Breaker, when non-nil, guards demand fetches (shared per origin).
	Breaker *resilience.Breaker
	// Priority tags every demand request (Spec-Priority header):
	// "low", "" (normal), or "high". Low-priority demand is the first
	// demand class an overloaded server sheds.
	Priority string
	// Tracer records client spans and supplies the traceparent header
	// propagated on every request; nil means obs.DefaultTracer.
	Tracer *obs.Tracer
	// Attrib, when non-nil, records speculative deliveries into this
	// client's cache and their consumed/wasted resolution.
	Attrib *attrib.Ledger
	// AttribFeedback piggybacks Spec-Attrib resolution tokens on demand
	// requests, so a remote server's ledger learns the fate of the bytes
	// it speculated (best-effort: tokens on failed requests are lost).
	AttribFeedback bool
}

// ClientStats counts the client's activity.
type ClientStats struct {
	Fetches    int64 // client-initiated document fetches
	CacheHits  int64
	Pushed     int64 // documents received speculatively
	Prefetched int64 // documents fetched because of hints
	BytesIn    int64

	// SpecHits counts cache hits served by a document that arrived
	// speculatively (pushed or prefetched) and had not been requested
	// before — the hits speculation itself manufactured. SpecHitBytes is
	// their byte total: exactly what a non-speculative client would have
	// had to fetch over the wire.
	SpecHits     int64
	SpecHitBytes int64
	// DemandBytes is the byte total of every client-initiated fetch (hit
	// or miss); MissBytes the requested-document bytes actually fetched.
	// MissBytes/DemandBytes is the live byte miss rate of §3.3.
	DemandBytes int64
	MissBytes   int64

	// Retries counts re-attempted demand fetches; StaleServes counts
	// responses a proxy marked as served from its stale store while the
	// origin was down — both feed the chaos-mode availability report.
	Retries     int64
	StaleServes int64

	// Shed counts demand fetches the server refused under overload
	// control (ErrShed) — deliberate degradation, not failure.
	Shed int64
}

// cacheEntry is one cached document; spec marks it as having arrived
// speculatively and not yet been requested. class is the delivery class
// for attribution; resolved marks the delivery as already attributed
// (consumed or wasted) so it resolves exactly once.
type cacheEntry struct {
	body     []byte
	spec     bool
	class    string
	resolved bool
}

// Client is a caching HTTP client that understands the speculative
// protocol: it consumes bundles, follows prefetch hints, and keeps a
// session cache keyed by URL path.
type Client struct {
	cfg     ClientConfig
	base    string
	retrier *resilience.Retrier
	tracer  *obs.Tracer

	mu      sync.Mutex
	cache   map[string]cacheEntry
	stats   ClientStats
	pending []string // Spec-Attrib feedback tokens awaiting a demand request
}

// NewClient builds a client for the server at base (e.g. the URL of an
// httptest server).
func NewClient(base string, cfg ClientConfig) *Client {
	if cfg.HTTP == nil {
		cfg.HTTP = http.DefaultClient
	}
	if cfg.Tracer == nil {
		cfg.Tracer = obs.DefaultTracer
	}
	retrier := cfg.Retrier
	if retrier == nil && cfg.Retry.MaxAttempts > 1 {
		retrier = resilience.NewRetrier(cfg.Retry)
	}
	return &Client{cfg: cfg, base: strings.TrimRight(base, "/"),
		retrier: retrier, tracer: cfg.Tracer, cache: make(map[string]cacheEntry)}
}

// Stats returns a snapshot of the client counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Cached reports whether path is in the cache.
func (c *Client) Cached(path string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.cache[path]
	return ok
}

// EndSession purges the cache (the paper's end-of-session purge),
// resolving still-unused speculative entries as wasted.
func (c *Client) EndSession() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for path, e := range c.cache {
		if e.spec {
			c.resolveLocked(path, &e)
		}
	}
	c.cache = make(map[string]cacheEntry)
}

// ResolveOutstanding resolves every speculative cache entry that was
// never demanded as wasted, without purging the cache. Benchmarks and
// replays call it once at the end of a run so the ledger's outstanding
// count drains to zero before reporting.
func (c *Client) ResolveOutstanding() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for path, e := range c.cache {
		if e.spec && !e.resolved {
			c.resolveLocked(path, &e)
			c.cache[path] = e
		}
	}
}

// resolveLocked attributes one speculative delivery's fate exactly once:
// consumed when spec is already cleared by a demand hit, wasted while the
// entry is still marked speculative. Callers hold mu and must store the
// entry back if it stays cached.
func (c *Client) resolveLocked(path string, e *cacheEntry) {
	if e.resolved || e.class == "" {
		return
	}
	e.resolved = true
	consumed := !e.spec
	if consumed {
		c.cfg.Attrib.Consumed(path, e.class, int64(len(e.body)))
	} else {
		c.cfg.Attrib.Wasted(path, e.class, int64(len(e.body)))
	}
	if c.cfg.AttribFeedback {
		kind := "w:"
		if consumed {
			kind = "c:"
		}
		c.pending = append(c.pending, kind+e.class+":"+path)
	}
}

// Get fetches a document, serving from cache when possible. fromCache
// reports whether the body came from the local cache.
func (c *Client) Get(path string) (body []byte, fromCache bool, err error) {
	return c.GetCtx(context.Background(), path)
}

// GetCtx is Get with cancellation and deadline propagation: the caller's
// context bounds the demand fetch, its retries, and any synchronous
// hint-driven prefetches.
func (c *Client) GetCtx(ctx context.Context, path string) (body []byte, fromCache bool, err error) {
	c.mu.Lock()
	c.stats.Fetches++
	if e, ok := c.cache[path]; ok {
		c.stats.CacheHits++
		c.stats.DemandBytes += int64(len(e.body))
		if e.spec {
			// First request for a speculatively delivered document:
			// count the manufactured hit, resolve the delivery as
			// consumed, then treat it as an ordinary cached document.
			c.stats.SpecHits++
			c.stats.SpecHitBytes += int64(len(e.body))
			e.spec = false
			c.resolveLocked(path, &e)
			c.cache[path] = e
		}
		c.mu.Unlock()
		return e.body, true, nil
	}
	digest := c.digestLocked()
	feedback := c.drainFeedbackLocked()
	c.mu.Unlock()

	sp := c.tracer.Start("client.get")
	sp.SetAttr("path", path)
	defer sp.Finish()

	var hints []clientHint
	if c.retrier != nil {
		attempts := 0
		err = c.retrier.Do(ctx, func(ctx context.Context) error {
			attempts++
			var ferr error
			body, hints, ferr = c.fetch(ctx, sp, path, digest, feedback)
			return ferr
		})
		if attempts > 1 {
			c.mu.Lock()
			c.stats.Retries += int64(attempts - 1)
			c.mu.Unlock()
		}
	} else {
		body, hints, err = c.fetch(ctx, sp, path, digest, feedback)
	}
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	c.stats.DemandBytes += int64(len(body))
	c.stats.MissBytes += int64(len(body))
	c.mu.Unlock()
	// Hint-driven prefetching happens synchronously so behaviour is
	// deterministic; a production client would fetch in the background.
	for _, h := range hints {
		if h.p < c.cfg.PrefetchThreshold || c.cfg.PrefetchThreshold == 0 {
			continue
		}
		c.prefetch(ctx, sp, h)
	}
	return body, false, nil
}

// drainFeedbackLocked takes the queued Spec-Attrib tokens (bounded per
// request so one demand fetch never carries an unbounded header).
// Callers hold mu.
func (c *Client) drainFeedbackLocked() string {
	if len(c.pending) == 0 {
		return ""
	}
	const maxTokens = 32
	n := len(c.pending)
	if n > maxTokens {
		n = maxTokens
	}
	out := strings.Join(c.pending[:n], " ")
	c.pending = append(c.pending[:0], c.pending[n:]...)
	return out
}

type clientHint struct {
	path string
	p    float64
}

// fetch performs one HTTP request and ingests the response (direct body or
// bundle), returning the requested document's body and any prefetch hints.
// Transport errors, 5xx responses and truncated bodies return retryable
// errors; 4xx responses are marked permanent so the retrier stops.
func (c *Client) fetch(ctx context.Context, sp *obs.ActiveSpan, path, digest, feedback string) ([]byte, []clientHint, error) {
	if c.cfg.Breaker != nil {
		if err := c.cfg.Breaker.Allow(); err != nil {
			return nil, nil, resilience.Permanent(err)
		}
	}
	body, hints, err := c.fetchAllowed(ctx, sp, path, digest, feedback)
	if c.cfg.Breaker != nil {
		if resilience.IsPermanent(err) {
			c.cfg.Breaker.Record(nil) // the origin answered; 4xx is not its failure
		} else {
			c.cfg.Breaker.Record(err)
		}
	}
	return body, hints, err
}

func (c *Client) fetchAllowed(ctx context.Context, sp *obs.ActiveSpan, path, digest, feedback string) ([]byte, []clientHint, error) {
	cctx, cancel := resilience.EnsureDeadline(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, nil, resilience.Permanent(err)
	}
	if tp := sp.Traceparent(); tp != "" {
		req.Header.Set(obs.TraceparentHeader, tp)
	}
	if c.cfg.ID != "" {
		req.Header.Set(HeaderClient, c.cfg.ID)
	}
	if c.cfg.AcceptBundles {
		req.Header.Set(HeaderAccept, acceptBundle)
	}
	if c.cfg.Cooperative && digest != "" {
		req.Header.Set(HeaderHave, digest)
	}
	if c.cfg.Priority != "" {
		req.Header.Set(HeaderPriority, c.cfg.Priority)
	}
	if feedback != "" {
		req.Header.Set(HeaderAttrib, feedback)
	}
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get(HeaderShed) != "" {
			c.mu.Lock()
			c.stats.Shed++
			c.mu.Unlock()
			return nil, nil, resilience.Permanent(
				fmt.Errorf("httpspec: GET %s: %w (Retry-After %s)",
					path, ErrShed, resp.Header.Get("Retry-After")))
		}
		ferr := fmt.Errorf("httpspec: GET %s: %s", path, resp.Status)
		if resp.StatusCode >= 500 {
			return nil, nil, ferr
		}
		return nil, nil, resilience.Permanent(ferr)
	}
	if resp.Header.Get(HeaderStale) != "" {
		c.mu.Lock()
		c.stats.StaleServes++
		c.mu.Unlock()
	}

	var hints []clientHint
	for _, l := range resp.Header.Values("Link") {
		if h, ok := parseLinkHint(l); ok {
			hints = append(hints, h)
		}
	}

	ct := resp.Header.Get("Content-Type")
	mt, params, _ := mime.ParseMediaType(ct)
	if mt == "multipart/mixed" {
		body, err := c.ingestBundle(path, resp.Body, params["boundary"], validRung(resp.Header.Get(HeaderRung)))
		return body, hints, err
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	c.cache[path] = cacheEntry{body: body}
	c.stats.BytesIn += int64(len(body))
	c.mu.Unlock()
	return body, hints, nil
}

// ingestBundle reads a multipart bundle, caching every part and returning
// the part matching the requested path. Pushed parts are recorded in the
// attribution ledger; a pushed copy of a document already cached is
// resolved as wasted on the spot (the bytes crossed the wire for
// nothing).
func (c *Client) ingestBundle(want string, r io.Reader, boundary, rung string) ([]byte, error) {
	if boundary == "" {
		return nil, fmt.Errorf("httpspec: bundle without boundary")
	}
	mr := multipart.NewReader(r, boundary)
	var wanted []byte
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("httpspec: reading bundle: %w", err)
		}
		loc := part.Header.Get("Content-Location")
		body, err := io.ReadAll(part)
		if err != nil {
			return nil, fmt.Errorf("httpspec: reading bundle part %q: %w", loc, err)
		}
		pushed := part.Header.Get(HeaderPushed) != ""
		var pMilli int64
		if pushed {
			// Clamped parse: Spec-P crosses the wire, so garbage or
			// oversized values must not reach the ledger's sums.
			pMilli, _ = parsePMilli(part.Header.Get(HeaderSpecP))
		}
		c.mu.Lock()
		if pushed {
			c.cfg.Attrib.Delivered(loc, attrib.ClassPush, int64(len(body)), pMilli, rung)
		}
		if _, ok := c.cache[loc]; !ok {
			c.cache[loc] = cacheEntry{body: body, spec: pushed, class: classOf(pushed)}
			if pushed {
				c.stats.Pushed++
			}
		} else if pushed {
			// Duplicate push: discarded immediately, pure waste.
			c.cfg.Attrib.Wasted(loc, attrib.ClassPush, int64(len(body)))
		}
		c.stats.BytesIn += int64(len(body))
		c.mu.Unlock()
		if loc == want {
			wanted = body
		}
	}
	if wanted == nil {
		return nil, fmt.Errorf("httpspec: bundle missing requested document %q", want)
	}
	return wanted, nil
}

// classOf maps a pushed flag to its attribution class ("" for the demand
// document itself, which is not a speculative delivery).
func classOf(pushed bool) string {
	if pushed {
		return attrib.ClassPush
	}
	return ""
}

// prefetch fetches a hinted path into the cache (no hint recursion).
// Prefetches are speculative, so they stay single-attempt: a failed
// prefetch costs nothing the demand path will not recover later. The
// request announces itself with Spec-Prefetch and continues the demand
// fetch's trace as a child span.
func (c *Client) prefetch(ctx context.Context, parent *obs.ActiveSpan, h clientHint) {
	path := h.path
	c.mu.Lock()
	if _, ok := c.cache[path]; ok {
		c.mu.Unlock()
		return
	}
	digest := c.digestLocked()
	c.mu.Unlock()

	sp := c.tracer.StartChild("client.prefetch", parent)
	sp.SetAttr("path", path)
	defer sp.Finish()

	cctx, cancel := resilience.EnsureDeadline(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return
	}
	if tp := sp.Traceparent(); tp != "" {
		req.Header.Set(obs.TraceparentHeader, tp)
	}
	if c.cfg.ID != "" {
		req.Header.Set(HeaderClient, c.cfg.ID)
	}
	if c.cfg.Cooperative && digest != "" {
		req.Header.Set(HeaderHave, digest)
	}
	req.Header.Set(HeaderPrefetch, strconv.FormatInt(attrib.PMilli(h.p), 10))
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return
	}
	c.mu.Lock()
	if _, ok := c.cache[path]; !ok {
		c.cfg.Attrib.Delivered(path, attrib.ClassPrefetch, int64(len(body)),
			attrib.PMilli(h.p), validRung(resp.Header.Get(HeaderRung)))
		c.cache[path] = cacheEntry{body: body, spec: true, class: attrib.ClassPrefetch}
		c.stats.Prefetched++
		c.stats.BytesIn += int64(len(body))
	}
	c.mu.Unlock()
}

// digestLocked renders the cooperative Spec-Have digest. Callers hold mu.
func (c *Client) digestLocked() string {
	if !c.cfg.Cooperative || len(c.cache) == 0 {
		return ""
	}
	paths := make([]string, 0, len(c.cache))
	for p := range c.cache {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return strings.Join(paths, " ")
}

// parseLinkHint parses `</path>; rel="prefetch"; spec-p=0.42`. The
// probability is clamped to [0,1]; NaN, infinities, and malformed values
// fall to 0, so a hostile Link header can at worst suppress one prefetch
// — it cannot poison the attribution ledger's fixed-point sums.
func parseLinkHint(l string) (clientHint, bool) {
	parts := strings.Split(l, ";")
	if len(parts) == 0 {
		return clientHint{}, false
	}
	target := strings.TrimSpace(parts[0])
	if !strings.HasPrefix(target, "<") || !strings.HasSuffix(target, ">") {
		return clientHint{}, false
	}
	h := clientHint{path: target[1 : len(target)-1]}
	isPrefetch := false
	for _, p := range parts[1:] {
		p = strings.TrimSpace(p)
		switch {
		case p == `rel="prefetch"` || p == "rel=prefetch":
			isPrefetch = true
		case strings.HasPrefix(p, "spec-p="):
			if v, err := strconv.ParseFloat(p[len("spec-p="):], 64); err == nil {
				h.p = clampProb(v)
			}
		}
	}
	return h, isPrefetch
}
