package httpspec

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"specweb/internal/core"
	"specweb/internal/leakcheck"
	"specweb/internal/stats"
	"specweb/internal/synth"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// testWorld builds a tiny site, a speculative server over it, and a clock
// the test controls.
type testWorld struct {
	site   *webgraph.Site
	store  *SiteStore
	server *Server
	ts     *httptest.Server
	mu     sync.Mutex
	now    time.Time
}

func newWorld(t *testing.T, mode Mode) *testWorld {
	return newWorldCfg(t, mode, nil)
}

// newWorldCfg is newWorld with a hook to adjust the server config (e.g.
// to attach overload control) before the server is built.
func newWorldCfg(t *testing.T, mode Mode, mutate func(*ServerConfig)) *testWorld {
	t.Helper()
	leakcheck.Check(t) // registered before ts.Close, so it settles last
	site, err := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	w := &testWorld{
		site:  site,
		store: NewSiteStore(site),
		now:   time.Date(1995, time.June, 1, 9, 0, 0, 0, time.UTC),
	}
	cfg := DefaultServerConfig()
	cfg.Mode = mode
	cfg.Engine.MinOccurrences = 2
	cfg.Engine.Tp = 0.3
	// Short training runs keep smoothed probabilities below the default
	// 0.95 certainty bar; 0.8 keeps the hybrid split observable.
	cfg.Engine.EmbedThreshold = 0.8
	cfg.Clock = func() time.Time {
		w.mu.Lock()
		defer w.mu.Unlock()
		return w.now
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := NewServer(w.store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.server = srv
	w.ts = httptest.NewServer(srv)
	t.Cleanup(w.ts.Close)
	return w
}

func (w *testWorld) advance(d time.Duration) {
	w.mu.Lock()
	w.now = w.now.Add(d)
	w.mu.Unlock()
}

// pageWithEmbedded finds a page that embeds at least one object.
func pageWithEmbedded(t *testing.T, site *webgraph.Site) *webgraph.Document {
	t.Helper()
	for i := range site.Docs {
		d := &site.Docs[i]
		if d.Kind == webgraph.Page && len(d.Embedded) > 0 {
			return d
		}
	}
	t.Fatal("no page with embedded objects")
	return nil
}

// train teaches the server's engine that the page's embedded objects follow
// it: n browsing episodes from distinct clients, then a refresh.
func (w *testWorld) train(t *testing.T, page *webgraph.Document, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		c := NewClient(w.ts.URL, ClientConfig{ID: "trainer"})
		if _, _, err := c.Get(page.Path); err != nil {
			t.Fatal(err)
		}
		for _, e := range page.Embedded {
			w.advance(300 * time.Millisecond)
			if _, _, err := c.Get(w.site.Doc(e).Path); err != nil {
				t.Fatal(err)
			}
		}
		w.advance(time.Hour)
	}
	w.server.Engine().Refresh(w.clock())
}

func (w *testWorld) clock() time.Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.now
}

func TestServeDocumentBasics(t *testing.T) {
	w := newWorld(t, ModePush)
	d := &w.site.Docs[0]
	resp, err := http.Get(w.ts.URL + d.Path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if int64(len(body)) != d.Size {
		t.Errorf("body %d bytes, want %d", len(body), d.Size)
	}
	if !strings.Contains(string(body[:64]), "specweb synthetic") {
		t.Errorf("unexpected body prefix %q", body[:32])
	}
	if w.server.Stats().Requests != 1 {
		t.Errorf("requests = %d", w.server.Stats().Requests)
	}
}

func TestNotFound(t *testing.T) {
	w := newWorld(t, ModePush)
	resp, err := http.Get(w.ts.URL + "/no/such/doc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if w.server.Stats().NotFound != 1 {
		t.Error("not-found not counted")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	w := newWorld(t, ModePush)
	resp, err := http.Post(w.ts.URL+w.site.Docs[0].Path, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestBundlePushAfterTraining(t *testing.T) {
	w := newWorld(t, ModePush)
	page := pageWithEmbedded(t, w.site)
	w.train(t, page, 10)

	c := NewClient(w.ts.URL, ClientConfig{ID: "reader", AcceptBundles: true})
	if _, fromCache, err := c.Get(page.Path); err != nil || fromCache {
		t.Fatalf("get page: %v fromCache=%v", err, fromCache)
	}
	if c.Stats().Pushed == 0 {
		t.Fatal("no documents pushed despite training")
	}
	// Embedded objects now come from cache: zero extra server requests.
	before := w.server.Stats().Requests
	for _, e := range page.Embedded {
		body, fromCache, err := c.Get(w.site.Doc(e).Path)
		if err != nil {
			t.Fatal(err)
		}
		if !fromCache {
			t.Errorf("embedded %d not served from cache", e)
		}
		if int64(len(body)) != w.site.Doc(e).Size {
			t.Errorf("pushed body has %d bytes, want %d", len(body), w.site.Doc(e).Size)
		}
	}
	if after := w.server.Stats().Requests; after != before {
		t.Errorf("server saw %d extra requests for cached docs", after-before)
	}
}

func TestBundleRequiresOptIn(t *testing.T) {
	w := newWorld(t, ModePush)
	page := pageWithEmbedded(t, w.site)
	w.train(t, page, 10)
	resp, err := http.Get(w.ts.URL + page.Path) // no Spec-Accept
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "multipart/") {
		t.Error("bundle sent without opt-in")
	}
}

func TestCooperativeDigestSuppressesPush(t *testing.T) {
	w := newWorld(t, ModePush)
	page := pageWithEmbedded(t, w.site)
	w.train(t, page, 10)

	c := NewClient(w.ts.URL, ClientConfig{ID: "coop", AcceptBundles: true, Cooperative: true})
	// Pre-load the embedded objects into the client cache.
	for _, e := range page.Embedded {
		if _, _, err := c.Get(w.site.Doc(e).Path); err != nil {
			t.Fatal(err)
		}
	}
	pushedBefore := w.server.Stats().DocsPushed
	if _, _, err := c.Get(page.Path); err != nil {
		t.Fatal(err)
	}
	// The digest told the server the client has the embedded docs; it
	// must not push them again.
	if got := w.server.Stats().DocsPushed; got != pushedBefore {
		t.Errorf("server pushed %d docs the client already had", got-pushedBefore)
	}
}

func TestHintsMode(t *testing.T) {
	w := newWorld(t, ModeHints)
	page := pageWithEmbedded(t, w.site)
	w.train(t, page, 10)

	req, _ := http.NewRequest(http.MethodGet, w.ts.URL+page.Path, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	links := resp.Header.Values("Link")
	if len(links) == 0 {
		t.Fatal("no Link hints in hints mode")
	}
	if !strings.Contains(links[0], `rel="prefetch"`) || !strings.Contains(links[0], "spec-p=") {
		t.Errorf("malformed hint %q", links[0])
	}
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "multipart/") {
		t.Error("hints mode must not push bundles")
	}
}

func TestClientFollowsHints(t *testing.T) {
	w := newWorld(t, ModeHints)
	page := pageWithEmbedded(t, w.site)
	w.train(t, page, 10)

	c := NewClient(w.ts.URL, ClientConfig{ID: "pf", PrefetchThreshold: 0.3})
	if _, _, err := c.Get(page.Path); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Prefetched == 0 {
		t.Fatal("client followed no hints")
	}
	// The hinted embedded docs must now be cache hits.
	hit := false
	for _, e := range page.Embedded {
		if c.Cached(w.site.Doc(e).Path) {
			hit = true
		}
	}
	if !hit {
		t.Error("no embedded doc prefetched")
	}
}

func TestHybridMode(t *testing.T) {
	w := newWorld(t, ModeHybrid)
	page := pageWithEmbedded(t, w.site)
	w.train(t, page, 12)

	c := NewClient(w.ts.URL, ClientConfig{ID: "hy", AcceptBundles: true, PrefetchThreshold: 0.3})
	if _, _, err := c.Get(page.Path); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Pushed == 0 {
		t.Error("hybrid pushed nothing (embeddings are near-certain)")
	}
}

func TestClientSessionPurge(t *testing.T) {
	w := newWorld(t, ModePush)
	d := &w.site.Docs[0]
	c := NewClient(w.ts.URL, ClientConfig{ID: "s"})
	if _, _, err := c.Get(d.Path); err != nil {
		t.Fatal(err)
	}
	if _, fromCache, _ := c.Get(d.Path); !fromCache {
		t.Error("second get should hit cache")
	}
	c.EndSession()
	if _, fromCache, _ := c.Get(d.Path); fromCache {
		t.Error("cache survived session end")
	}
}

func TestStatsEndpoint(t *testing.T) {
	w := newWorld(t, ModePush)
	warm, err := http.Get(w.ts.URL + w.site.Docs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, warm.Body)
	warm.Body.Close() // an unclosed body pins the transport's conn goroutines
	resp, err := http.Get(w.ts.URL + "/spec/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"Requests":1`) {
		t.Errorf("stats body %s", body)
	}
}

func TestReplicasEndpointAndProxy(t *testing.T) {
	w := newWorld(t, ModePush)
	// Make one document remotely popular.
	popular := &w.site.Docs[0]
	for i := 0; i < 20; i++ {
		req, _ := http.NewRequest(http.MethodGet, w.ts.URL+popular.Path, nil)
		req.Header.Set(HeaderClient, "far.away.example.com")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	proxy := NewProxy(w.ts.URL, nil)
	n, err := proxy.Disseminate(context.Background(), popular.Size+100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("disseminated %d docs, want 1", n)
	}
	pts := httptest.NewServer(proxy)
	defer pts.Close()

	// Replica hit: served by the proxy, not the origin.
	before := w.server.Stats().Requests
	resp, err := http.Get(pts.URL + popular.Path)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Served-By") != "specweb-proxy" {
		t.Error("hit not served by proxy")
	}
	if int64(len(body)) != popular.Size {
		t.Errorf("proxy body %d bytes, want %d", len(body), popular.Size)
	}
	if w.server.Stats().Requests != before {
		t.Error("origin saw the replica hit")
	}

	// Miss: forwarded to origin. Pick a document that is not the replica.
	var other *webgraph.Document
	for i := range w.site.Docs {
		if w.site.Docs[i].ID != popular.ID {
			other = &w.site.Docs[i]
			break
		}
	}
	resp, err = http.Get(pts.URL + other.Path)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if int64(len(body)) != other.Size {
		t.Errorf("forwarded body %d bytes, want %d", len(body), other.Size)
	}
	st := proxy.Stats()
	if st.Hits != 1 || st.Misses == 0 || st.Replicas != 1 {
		t.Errorf("proxy stats %+v", st)
	}
}

func TestProxyDisseminateBadBudget(t *testing.T) {
	w := newWorld(t, ModePush)
	resp, err := http.Get(w.ts.URL + "/spec/replicas?budget=-5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestRemoteClassification(t *testing.T) {
	if isRemote("ws01.local") {
		t.Error(".local should be local")
	}
	if !isRemote("client.example.com") {
		t.Error("external host should be remote")
	}
}

func TestParseLinkHint(t *testing.T) {
	h, ok := parseLinkHint(`</a/b>; rel="prefetch"; spec-p=0.420`)
	if !ok || h.path != "/a/b" || h.p < 0.41 || h.p > 0.43 {
		t.Errorf("parsed %+v ok=%v", h, ok)
	}
	if _, ok := parseLinkHint(`</a>; rel="stylesheet"`); ok {
		t.Error("non-prefetch link accepted")
	}
	if _, ok := parseLinkHint(`garbage`); ok {
		t.Error("garbage accepted")
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, DefaultServerConfig()); err == nil {
		t.Error("nil store accepted")
	}
	cfg := DefaultServerConfig()
	cfg.Engine.Window = 0
	site, _ := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(1))
	if _, err := NewServer(NewSiteStore(site), cfg); err == nil {
		t.Error("bad engine config accepted")
	}
}

func TestSiteStore(t *testing.T) {
	site, err := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	st := NewSiteStore(site)
	d := &site.Docs[3]
	id, ok := st.Lookup(d.Path)
	if !ok || id != d.ID {
		t.Errorf("lookup %q = %v %v", d.Path, id, ok)
	}
	if _, ok := st.Lookup("/missing"); ok {
		t.Error("missing path resolved")
	}
	if p, ok := st.Path(d.ID); !ok || p != d.Path {
		t.Errorf("path = %q", p)
	}
	if s, ok := st.Size(d.ID); !ok || s != d.Size {
		t.Errorf("size = %d", s)
	}
	body, ok := st.Content(d.ID)
	if !ok || int64(len(body)) != d.Size {
		t.Errorf("content %d bytes, want %d", len(body), d.Size)
	}
	if _, ok := st.Content(webgraph.None); ok {
		t.Error("content for invalid ID")
	}
	// Deterministic.
	body2, _ := st.Content(d.ID)
	if string(body) != string(body2) {
		t.Error("content not deterministic")
	}
	if st.Site() != site {
		t.Error("site accessor broken")
	}
}

func TestEngineIntegrationViaCoreStats(t *testing.T) {
	w := newWorld(t, ModePush)
	page := pageWithEmbedded(t, w.site)
	w.train(t, page, 5)
	var est core.Stats = w.server.Engine().Stats()
	if est.Recorded == 0 || est.Pairs == 0 {
		t.Errorf("engine stats %+v", est)
	}
}

func TestReplayEndToEnd(t *testing.T) {
	w := newWorld(t, ModePush)
	// Synthesize a small trace against the same site the server serves.
	scfg := synth.DefaultConfig(w.site, nil)
	scfg.Days = 2
	scfg.SessionsPerDay = 25
	scfg.RemoteClients = 30
	scfg.LocalClients = 5
	res, err := synth.Generate(scfg, stats.NewRNG(77))
	if err != nil {
		t.Fatal(err)
	}

	rs, err := Replay(res.Trace, ReplayConfig{
		Base:          w.ts.URL,
		AcceptBundles: true,
		Cooperative:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Errors != 0 {
		t.Errorf("%d replay errors against the server's own site", rs.Errors)
	}
	if rs.Requests != int64(res.Trace.Len()) {
		t.Errorf("replayed %d of %d requests", rs.Requests, res.Trace.Len())
	}
	if rs.CacheHits == 0 {
		t.Error("no cache hits during replay (revisits exist in any browsing trace)")
	}
	// The server's engine has been learning during the replay.
	if w.server.Engine().Stats().Recorded == 0 {
		t.Error("server engine saw nothing")
	}
	if rs.Clients != len(res.Trace.Clients()) {
		t.Errorf("clients %d != trace clients %d", rs.Clients, len(res.Trace.Clients()))
	}
}

func TestReplaySessionPurge(t *testing.T) {
	w := newWorld(t, ModePush)
	d := &w.site.Docs[0]
	tr := &trace.Trace{}
	for i := 0; i < 6; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Time: w.clock(), Client: "r1", Doc: d.ID, Path: d.Path, Size: d.Size,
		})
	}
	// Without purging: 1 miss + 5 hits. With purge every 2 requests: a
	// fresh fetch at each session start.
	rs, err := Replay(tr, ReplayConfig{Base: w.ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if rs.CacheHits != 5 {
		t.Errorf("no-purge hits = %d, want 5", rs.CacheHits)
	}
	rs, err = Replay(tr, ReplayConfig{Base: w.ts.URL, SessionGapRequests: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rs.CacheHits >= 5 {
		t.Errorf("session purge had no effect: %d hits", rs.CacheHits)
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := Replay(&trace.Trace{}, ReplayConfig{Base: "http://x"}); err == nil {
		t.Error("empty trace accepted")
	}
	tr := &trace.Trace{Requests: []trace.Request{{Client: "a", Path: "/x"}}}
	if _, err := Replay(tr, ReplayConfig{}); err == nil {
		t.Error("missing base accepted")
	}
}

func TestReplayCountsErrors(t *testing.T) {
	w := newWorld(t, ModePush)
	tr := &trace.Trace{Requests: []trace.Request{
		{Time: w.clock(), Client: "a", Path: "/definitely/missing"},
		{Time: w.clock(), Client: "a", Path: w.site.Docs[0].Path},
	}}
	rs, err := Replay(tr, ReplayConfig{Base: w.ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Errors != 1 {
		t.Errorf("errors = %d, want 1", rs.Errors)
	}
}

func TestStoreInvalidIDs(t *testing.T) {
	site, _ := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(9))
	st := NewSiteStore(site)
	if _, ok := st.Path(webgraph.None); ok {
		t.Error("Path(None) resolved")
	}
	if _, ok := st.Size(webgraph.None); ok {
		t.Error("Size(None) resolved")
	}
}

func TestServerReplicatorAccessor(t *testing.T) {
	w := newWorld(t, ModePush)
	if w.server.Replicator() == nil {
		t.Fatal("nil replicator")
	}
	resp, err := http.Get(w.ts.URL + w.site.Docs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	total, _ := w.server.Replicator().Requests()
	if total != 1 {
		t.Errorf("replicator saw %d requests", total)
	}
}

func TestServerDefaultClock(t *testing.T) {
	leakcheck.Check(t)
	site, _ := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(9))
	cfg := DefaultServerConfig() // no Clock
	srv, err := NewServer(NewSiteStore(site), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + site.Docs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if srv.Stats().Requests != 1 {
		t.Error("wall-clock server did not serve")
	}
}

func TestProxyForwardsToDeadOrigin(t *testing.T) {
	leakcheck.Check(t)
	proxy := NewProxy("http://127.0.0.1:1", nil) // nothing listens there
	pts := httptest.NewServer(proxy)
	defer pts.Close()
	resp, err := http.Get(pts.URL + "/anything")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}
	if proxy.Stats().ForwardErrors != 1 {
		t.Error("forward error not counted")
	}
	if _, err := proxy.Disseminate(context.Background(), 1000); err == nil {
		t.Error("dissemination from dead origin succeeded")
	}
}

func TestClientPrefetchSkipsCached(t *testing.T) {
	w := newWorld(t, ModeHints)
	page := pageWithEmbedded(t, w.site)
	w.train(t, page, 10)
	c := NewClient(w.ts.URL, ClientConfig{ID: "pf2", PrefetchThreshold: 0.3})
	// Warm the cache with the embedded docs first (their responses may
	// themselves carry hints and trigger prefetches; that is fine).
	for _, e := range page.Embedded {
		if _, _, err := c.Get(w.site.Doc(e).Path); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Stats().Prefetched
	if _, _, err := c.Get(page.Path); err != nil {
		t.Fatal(err)
	}
	// The page's hinted successors are its embedded objects, all cached:
	// no new prefetches.
	if got := c.Stats().Prefetched - before; got != 0 {
		t.Errorf("client prefetched %d docs it already had", got)
	}
}
