package httpspec

import (
	"math"
	"strconv"
	"strings"

	"specweb/internal/attrib"
	"specweb/internal/overload"
)

// This file hardens the speculative-protocol header parsers. Spec-P,
// Spec-Rung, Spec-Prefetch, and Spec-Attrib all cross a trust boundary —
// any client (or a middlebox) can send arbitrary bytes — and their values
// flow into the attribution ledger, whose integer sums and label maps
// must not be poisonable: a forged Spec-P of 2^62 would corrupt the
// confidence sums, and an unvalidated Spec-Rung becomes an unbounded
// label cardinality on the ledger's per-rung map. Every parser here
// rejects garbage to a safe zero value and never panics (fuzzed in
// parse_fuzz_test.go).

// parsePMilli parses a fixed-point thousandths probability (the Spec-P /
// Spec-Prefetch wire form). The result is always within [0, 1000];
// malformed or oversized input yields (0, false).
func parsePMilli(s string) (int64, bool) {
	if s == "" || len(s) > 20 {
		return 0, false
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return attrib.ClampPMilli(v), true
}

// validRung filters an externally supplied rung name against the known
// degradation ladder, returning "" for anything else so forged values
// never become ledger keys or metric labels.
func validRung(name string) string {
	if name == "" {
		return ""
	}
	if _, ok := overload.ParseRung(name); ok {
		return name
	}
	return ""
}

// clampProb bounds a parsed probability to [0, 1], mapping NaN and ±Inf
// to 0 (a NaN would otherwise survive comparisons and poison fixed-point
// conversion downstream).
func clampProb(p float64) float64 {
	if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Spec-Attrib ingestion bounds: the client caps its own piggyback at 32
// tokens, so anything far beyond that is hostile; paths are bounded so a
// single header cannot force megabytes through the store lookup.
const (
	maxAttribTokens  = 64
	maxAttribPathLen = 1024
)

// validAttribClass restricts feedback classes to the ledger's known
// delivery classes, keeping its per-class map cardinality bounded.
func validAttribClass(class string) bool {
	switch class {
	case attrib.ClassPush, attrib.ClassPrefetch, attrib.ClassReplica:
		return true
	}
	return false
}

// parseAttribToken validates one Spec-Attrib token ("c:<class>:<path>"
// consumed, "w:<class>:<path>" wasted). ok is false for anything
// malformed: unknown kind, unknown class, or an implausible path.
func parseAttribToken(tok string) (consumed bool, class, path string, ok bool) {
	parts := strings.SplitN(tok, ":", 3)
	if len(parts) != 3 {
		return false, "", "", false
	}
	switch parts[0] {
	case "c":
		consumed = true
	case "w":
		consumed = false
	default:
		return false, "", "", false
	}
	if !validAttribClass(parts[1]) {
		return false, "", "", false
	}
	path = parts[2]
	if path == "" || path[0] != '/' || len(path) > maxAttribPathLen {
		return false, "", "", false
	}
	return consumed, parts[1], path, true
}
