package httpspec

import (
	"net/http/httptest"
	"testing"
	"time"

	"specweb/internal/stats"
	"specweb/internal/webgraph"
)

// BenchmarkServerRoundTrip measures a full HTTP GET through the speculative
// server (trained, push mode, bundle-accepting client).
func BenchmarkServerRoundTrip(b *testing.B) {
	site, err := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(5))
	if err != nil {
		b.Fatal(err)
	}
	now := time.Date(1995, time.June, 1, 9, 0, 0, 0, time.UTC)
	cfg := DefaultServerConfig()
	cfg.Mode = ModePush
	cfg.Engine.MinOccurrences = 2
	cfg.Engine.Tp = 0.3
	cfg.Clock = func() time.Time { return now }
	srv, err := NewServer(NewSiteStore(site), cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var page *webgraph.Document
	for i := range site.Docs {
		if site.Docs[i].Kind == webgraph.Page && len(site.Docs[i].Embedded) > 0 {
			page = &site.Docs[i]
			break
		}
	}
	if page == nil {
		b.Fatal("no page with embedded objects")
	}
	// Train so responses carry bundles.
	for i := 0; i < 10; i++ {
		c := NewClient(ts.URL, ClientConfig{ID: "t"})
		_, _, _ = c.Get(page.Path)
		for _, e := range page.Embedded {
			now = now.Add(300 * time.Millisecond)
			_, _, _ = c.Get(site.Doc(e).Path)
		}
		now = now.Add(time.Hour)
	}
	srv.Engine().Refresh(now)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewClient(ts.URL, ClientConfig{ID: "bench", AcceptBundles: true})
		if _, _, err := c.Get(page.Path); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(page.Embedded)), "embedded_docs")
}
