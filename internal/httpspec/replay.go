package httpspec

import (
	"fmt"
	"net/http"
	"sort"
	"time"

	"specweb/internal/resilience"
	"specweb/internal/trace"
)

// ReplayConfig parameterizes replaying a recorded trace against a live
// speculative server — the end-to-end measurement path for the prototype:
// synthesize a trace, start a server, replay, compare stats.
type ReplayConfig struct {
	// Base is the server's base URL.
	Base string
	// AcceptBundles and Cooperative configure every replayed client.
	AcceptBundles bool
	Cooperative   bool
	// PrefetchThreshold enables hint-driven prefetching on the clients.
	PrefetchThreshold float64
	// SessionGapRequests ends a client's session (purging its cache)
	// after this many requests; 0 keeps one session per client for the
	// whole replay. Wall-clock session semantics do not survive replay
	// compression, so the knob is request-count based.
	SessionGapRequests int
	// HTTP is the shared transport; nil means http.DefaultClient.
	HTTP *http.Client

	// Retry, when MaxAttempts > 1, retries failed demand fetches through
	// one shared Retrier (so the retry budget is global across clients).
	Retry resilience.RetryConfig
	// RequestTimeout bounds each replayed request attempt; 0 disables.
	RequestTimeout time.Duration
	// Chaos adds the availability/degradation section to the summary —
	// kept opt-in so non-chaos summaries stay byte-identical.
	Chaos bool
}

// ReplayStats aggregates the outcome over all replayed clients.
type ReplayStats struct {
	Clients    int
	Requests   int64 // client-initiated fetches replayed
	CacheHits  int64
	SpecHits   int64 // cache hits manufactured by speculation
	Pushed     int64
	Prefetched int64
	BytesIn    int64
	Errors     int64

	// SpecHitBytes, DemandBytes and MissBytes feed the paper's ratios;
	// see ClientStats for their definitions.
	SpecHitBytes int64
	DemandBytes  int64
	MissBytes    int64

	// Retried and StaleServes aggregate the clients' degraded-mode
	// accounting; Chaos marks the run for summary reporting.
	Retried     int64
	StaleServes int64
	Chaos       bool

	latencies  []float64 // per successful client-initiated request, seconds
	missDurSum float64
	missCount  int64
}

// PaperRatios are the four quantities of §3's evaluation (Figs. 5–6),
// each expressed as speculative service over the non-speculative baseline
// a client with the same session cache would have seen. Bandwidth > 1 is
// the cost of speculation; server load, service time and byte miss rate
// < 1 are its benefits. Ratios are 1 when a run has no traffic to
// compare.
type PaperRatios struct {
	// Bandwidth: bytes over the wire / bytes a non-speculative client
	// would have fetched.
	Bandwidth float64 `json:"bandwidth"`
	// ServerLoad: server requests issued / server requests a
	// non-speculative client would have issued (spec hits would each
	// have been a request).
	ServerLoad float64 `json:"server_load"`
	// ServiceTime: observed mean request time / estimated baseline mean,
	// where each speculation-manufactured cache hit is charged the mean
	// cache-miss time it avoided.
	ServiceTime float64 `json:"service_time"`
	// ByteMissRate: requested bytes fetched over the wire / requested
	// bytes the baseline would have fetched (§3.3's byte miss rate,
	// speculative over non-speculative).
	ByteMissRate float64 `json:"byte_miss_rate"`
}

// LatencySummary reports client-observed request latency in milliseconds.
type LatencySummary struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// ChaosSummary reports how the run held up under injected faults: the
// fraction of replayed requests that were ultimately answered (from
// cache, origin, retried forwards, or stale replicas), and how much
// degraded machinery it took.
type ChaosSummary struct {
	// Availability is answered requests / replayed requests.
	Availability float64 `json:"availability"`
	// Retries counts re-attempted demand fetches across all clients.
	Retries int64 `json:"retries"`
	// StaleServes counts responses marked as stale-replica service;
	// StaleRatio is their share of all replayed requests.
	StaleServes int64   `json:"stale_serves"`
	StaleRatio  float64 `json:"stale_ratio"`
}

// ReplaySummary is the structured per-run result cmd/replay emits as
// JSON, so runs are machine-comparable across configurations and PRs.
// Chaos is present only for chaos-mode runs, keeping fault-free output
// byte-identical to earlier versions.
type ReplaySummary struct {
	Clients       int            `json:"clients"`
	Requests      int64          `json:"requests"`
	Errors        int64          `json:"errors"`
	CacheHits     int64          `json:"cache_hits"`
	SpecHits      int64          `json:"spec_hits"`
	Pushed        int64          `json:"pushed"`
	Prefetched    int64          `json:"prefetched"`
	BytesIn       int64          `json:"bytes_in"`
	DemandBytes   int64          `json:"demand_bytes"`
	BaselineBytes int64          `json:"baseline_bytes"`
	Ratios        PaperRatios    `json:"ratios"`
	LatencyMS     LatencySummary `json:"latency_ms"`
	Chaos         *ChaosSummary  `json:"chaos,omitempty"`
}

// ratio divides speculative by baseline, reporting the neutral 1 when
// there is nothing to compare.
func ratio(spec, baseline float64) float64 {
	if baseline == 0 {
		return 1
	}
	return spec / baseline
}

// Summary computes the paper's four ratios and the latency percentiles
// for the run.
func (s *ReplayStats) Summary() ReplaySummary {
	baselineBytes := s.MissBytes + s.SpecHitBytes
	specServerReqs := float64(s.Requests-s.CacheHits) + float64(s.Prefetched)
	baseServerReqs := float64(s.Requests-s.CacheHits) + float64(s.SpecHits)

	var durSum float64
	for _, d := range s.latencies {
		durSum += d
	}
	var meanMiss float64
	if s.missCount > 0 {
		meanMiss = s.missDurSum / float64(s.missCount)
	}
	serviceTime := 1.0
	if n := float64(len(s.latencies)); n > 0 {
		baselineDur := durSum + float64(s.SpecHits)*meanMiss
		serviceTime = ratio(durSum/n, baselineDur/n)
	}

	lat := LatencySummary{}
	if len(s.latencies) > 0 {
		sorted := append([]float64(nil), s.latencies...)
		sort.Float64s(sorted)
		pick := func(q float64) float64 {
			i := int(q * float64(len(sorted)-1))
			return sorted[i] * 1000
		}
		lat = LatencySummary{
			P50:  pick(0.50),
			P90:  pick(0.90),
			P99:  pick(0.99),
			Mean: durSum / float64(len(sorted)) * 1000,
			Max:  sorted[len(sorted)-1] * 1000,
		}
	}

	sum := ReplaySummary{
		Clients:       s.Clients,
		Requests:      s.Requests,
		Errors:        s.Errors,
		CacheHits:     s.CacheHits,
		SpecHits:      s.SpecHits,
		Pushed:        s.Pushed,
		Prefetched:    s.Prefetched,
		BytesIn:       s.BytesIn,
		DemandBytes:   s.DemandBytes,
		BaselineBytes: baselineBytes,
		Ratios: PaperRatios{
			Bandwidth:    ratio(float64(s.BytesIn), float64(baselineBytes)),
			ServerLoad:   ratio(specServerReqs, baseServerReqs),
			ServiceTime:  serviceTime,
			ByteMissRate: ratio(float64(s.MissBytes), float64(baselineBytes)),
		},
		LatencyMS: lat,
	}
	if s.Chaos {
		reqs := float64(s.Requests)
		if reqs == 0 {
			reqs = 1
		}
		sum.Chaos = &ChaosSummary{
			Availability: float64(s.Requests-s.Errors) / reqs,
			Retries:      s.Retried,
			StaleServes:  s.StaleServes,
			StaleRatio:   float64(s.StaleServes) / reqs,
		}
	}
	return sum
}

// Replay walks the trace in order, issuing each request through a per-client
// speculative Client against the server at cfg.Base. Requests whose paths
// the server does not serve count as errors but do not stop the replay.
func Replay(tr *trace.Trace, cfg ReplayConfig) (*ReplayStats, error) {
	if cfg.Base == "" {
		return nil, fmt.Errorf("httpspec: replay needs a base URL")
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("httpspec: empty trace")
	}
	// One shared retrier gives the whole replay a single retry budget;
	// one shared breaker keeps every client's view of the origin's
	// health consistent, as a real proxy population's would be.
	var retrier *resilience.Retrier
	if cfg.Retry.MaxAttempts > 1 {
		retrier = resilience.NewRetrier(cfg.Retry)
	}
	clients := make(map[trace.ClientID]*Client)
	sinceSession := make(map[trace.ClientID]int)
	stats := &ReplayStats{Chaos: cfg.Chaos}
	for i := range tr.Requests {
		r := &tr.Requests[i]
		c := clients[r.Client]
		if c == nil {
			c = NewClient(cfg.Base, ClientConfig{
				ID:                string(r.Client),
				AcceptBundles:     cfg.AcceptBundles,
				Cooperative:       cfg.Cooperative,
				PrefetchThreshold: cfg.PrefetchThreshold,
				HTTP:              cfg.HTTP,
				Timeout:           cfg.RequestTimeout,
				Retrier:           retrier,
			})
			clients[r.Client] = c
		}
		if cfg.SessionGapRequests > 0 && sinceSession[r.Client] >= cfg.SessionGapRequests {
			c.EndSession()
			sinceSession[r.Client] = 0
		}
		sinceSession[r.Client]++
		start := time.Now()
		_, fromCache, err := c.Get(r.Path)
		if err != nil {
			stats.Errors++
			continue
		}
		dur := time.Since(start).Seconds()
		stats.latencies = append(stats.latencies, dur)
		if !fromCache {
			stats.missDurSum += dur
			stats.missCount++
		}
	}
	stats.Clients = len(clients)
	for _, c := range clients {
		cs := c.Stats()
		stats.Requests += cs.Fetches
		stats.CacheHits += cs.CacheHits
		stats.SpecHits += cs.SpecHits
		stats.Pushed += cs.Pushed
		stats.Prefetched += cs.Prefetched
		stats.BytesIn += cs.BytesIn
		stats.SpecHitBytes += cs.SpecHitBytes
		stats.DemandBytes += cs.DemandBytes
		stats.MissBytes += cs.MissBytes
		stats.Retried += cs.Retries
		stats.StaleServes += cs.StaleServes
	}
	return stats, nil
}
