package httpspec

import (
	"fmt"
	"net/http"

	"specweb/internal/trace"
)

// ReplayConfig parameterizes replaying a recorded trace against a live
// speculative server — the end-to-end measurement path for the prototype:
// synthesize a trace, start a server, replay, compare stats.
type ReplayConfig struct {
	// Base is the server's base URL.
	Base string
	// AcceptBundles and Cooperative configure every replayed client.
	AcceptBundles bool
	Cooperative   bool
	// PrefetchThreshold enables hint-driven prefetching on the clients.
	PrefetchThreshold float64
	// SessionGapRequests ends a client's session (purging its cache)
	// after this many requests; 0 keeps one session per client for the
	// whole replay. Wall-clock session semantics do not survive replay
	// compression, so the knob is request-count based.
	SessionGapRequests int
	// HTTP is the shared transport; nil means http.DefaultClient.
	HTTP *http.Client
}

// ReplayStats aggregates the outcome over all replayed clients.
type ReplayStats struct {
	Clients    int
	Requests   int64 // client-initiated fetches replayed
	CacheHits  int64
	Pushed     int64
	Prefetched int64
	BytesIn    int64
	Errors     int64
}

// Replay walks the trace in order, issuing each request through a per-client
// speculative Client against the server at cfg.Base. Requests whose paths
// the server does not serve count as errors but do not stop the replay.
func Replay(tr *trace.Trace, cfg ReplayConfig) (*ReplayStats, error) {
	if cfg.Base == "" {
		return nil, fmt.Errorf("httpspec: replay needs a base URL")
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("httpspec: empty trace")
	}
	clients := make(map[trace.ClientID]*Client)
	sinceSession := make(map[trace.ClientID]int)
	stats := &ReplayStats{}
	for i := range tr.Requests {
		r := &tr.Requests[i]
		c := clients[r.Client]
		if c == nil {
			c = NewClient(cfg.Base, ClientConfig{
				ID:                string(r.Client),
				AcceptBundles:     cfg.AcceptBundles,
				Cooperative:       cfg.Cooperative,
				PrefetchThreshold: cfg.PrefetchThreshold,
				HTTP:              cfg.HTTP,
			})
			clients[r.Client] = c
		}
		if cfg.SessionGapRequests > 0 && sinceSession[r.Client] >= cfg.SessionGapRequests {
			c.EndSession()
			sinceSession[r.Client] = 0
		}
		sinceSession[r.Client]++
		if _, _, err := c.Get(r.Path); err != nil {
			stats.Errors++
		}
	}
	stats.Clients = len(clients)
	for _, c := range clients {
		cs := c.Stats()
		stats.Requests += cs.Fetches
		stats.CacheHits += cs.CacheHits
		stats.Pushed += cs.Pushed
		stats.Prefetched += cs.Prefetched
		stats.BytesIn += cs.BytesIn
	}
	return stats, nil
}
