package httpspec

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"sync"
	"time"

	"specweb/internal/attrib"
	"specweb/internal/checkpoint"
	"specweb/internal/core"
	"specweb/internal/obs"
	"specweb/internal/overload"
	"specweb/internal/resilience"
	"specweb/internal/trace"
)

// ReplayConfig parameterizes replaying a recorded trace against a live
// speculative server — the end-to-end measurement path for the prototype:
// synthesize a trace, start a server, replay, compare stats.
type ReplayConfig struct {
	// Base is the server's base URL.
	Base string
	// AcceptBundles and Cooperative configure every replayed client.
	AcceptBundles bool
	Cooperative   bool
	// PrefetchThreshold enables hint-driven prefetching on the clients.
	PrefetchThreshold float64
	// SessionGapRequests ends a client's session (purging its cache)
	// after this many requests; 0 keeps one session per client for the
	// whole replay. Wall-clock session semantics do not survive replay
	// compression, so the knob is request-count based.
	SessionGapRequests int
	// HTTP is the shared transport; nil means http.DefaultClient.
	HTTP *http.Client

	// Retry, when MaxAttempts > 1, retries failed demand fetches through
	// one shared Retrier (so the retry budget is global across clients).
	Retry resilience.RetryConfig
	// RequestTimeout bounds each replayed request attempt; 0 disables.
	RequestTimeout time.Duration
	// Chaos adds the availability/degradation section to the summary —
	// kept opt-in so non-chaos summaries stay byte-identical.
	Chaos bool

	// Rate switches the replay to open-loop arrival: requests are issued
	// at Rate requests/second in groups of Burst without waiting for
	// earlier responses, modelling offered load instead of the default
	// closed-loop walk (where a slow server throttles its own clients).
	// 0 keeps the closed loop. Open-loop runs add the overload section
	// to the summary.
	Rate  float64
	Burst int
	// LowPriority tags roughly this fraction of clients (chosen by a
	// stable hash of the client ID) with Spec-Priority: low, the demand
	// class an overloaded server sheds first. 0 tags nobody.
	LowPriority float64

	// Attrib adds the speculation attribution section to the summary:
	// every speculative delivery resolved as consumed or wasted, by
	// class, with top-K per-doc rows. Opt-in so summaries from earlier
	// versions stay byte-identical.
	Attrib bool
	// AttribFeedback piggybacks Spec-Attrib resolution tokens on demand
	// requests so the server's own ledger (specd /debug/attrib) learns
	// the fate of what it speculated.
	AttribFeedback bool
}

// ReplayStats aggregates the outcome over all replayed clients.
type ReplayStats struct {
	Clients    int
	Requests   int64 // client-initiated fetches replayed
	CacheHits  int64
	SpecHits   int64 // cache hits manufactured by speculation
	Pushed     int64
	Prefetched int64
	BytesIn    int64
	Errors     int64

	// SpecHitBytes, DemandBytes and MissBytes feed the paper's ratios;
	// see ClientStats for their definitions.
	SpecHitBytes int64
	DemandBytes  int64
	MissBytes    int64

	// Retried and StaleServes aggregate the clients' degraded-mode
	// accounting; Chaos marks the run for summary reporting.
	Retried     int64
	StaleServes int64
	Chaos       bool

	// Shed counts demand fetches the server refused under overload
	// control (ErrShed), kept out of Errors: shedding is deliberate.
	Shed int64
	// OpenLoop marks an open-loop run; OfferedRate and Burst echo its
	// arrival process; ServerOverload is the server's overload snapshot
	// scraped from /spec/stats after the run (nil when unavailable).
	OpenLoop       bool
	OfferedRate    float64
	Burst          int
	ServerOverload *ServerOverloadStats

	// ServerEngine is the server's engine snapshot scraped from
	// /spec/stats after a chaos run (nil when unavailable): the refresh,
	// early-refresh, and rejected-snapshot counters feed the chaos
	// summary so estimator churn under faults is visible.
	ServerEngine *core.Stats

	// Attrib is the drained attribution ledger (nil unless requested).
	Attrib *attrib.Report

	latencies  []float64 // per successful client-initiated request, seconds
	missDurSum float64
	missCount  int64
}

// PaperRatios are the four quantities of §3's evaluation (Figs. 5–6),
// each expressed as speculative service over the non-speculative baseline
// a client with the same session cache would have seen. Bandwidth > 1 is
// the cost of speculation; server load, service time and byte miss rate
// < 1 are its benefits. Ratios are 1 when a run has no traffic to
// compare.
type PaperRatios struct {
	// Bandwidth: bytes over the wire / bytes a non-speculative client
	// would have fetched.
	Bandwidth float64 `json:"bandwidth"`
	// ServerLoad: server requests issued / server requests a
	// non-speculative client would have issued (spec hits would each
	// have been a request).
	ServerLoad float64 `json:"server_load"`
	// ServiceTime: observed mean request time / estimated baseline mean,
	// where each speculation-manufactured cache hit is charged the mean
	// cache-miss time it avoided.
	ServiceTime float64 `json:"service_time"`
	// ByteMissRate: requested bytes fetched over the wire / requested
	// bytes the baseline would have fetched (§3.3's byte miss rate,
	// speculative over non-speculative).
	ByteMissRate float64 `json:"byte_miss_rate"`
}

// LatencySummary reports client-observed request latency in milliseconds.
type LatencySummary struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// ChaosSummary reports how the run held up under injected faults: the
// fraction of replayed requests that were ultimately answered (from
// cache, origin, retried forwards, or stale replicas), and how much
// degraded machinery it took.
type ChaosSummary struct {
	// Availability is answered requests / replayed requests.
	Availability float64 `json:"availability"`
	// Retries counts re-attempted demand fetches across all clients.
	Retries int64 `json:"retries"`
	// StaleServes counts responses marked as stale-replica service;
	// StaleRatio is their share of all replayed requests.
	StaleServes int64   `json:"stale_serves"`
	StaleRatio  float64 `json:"stale_ratio"`

	// Estimator-refresh activity during the chaos run, scraped from the
	// server's /spec/stats. All omitempty: a server without the
	// estimator-hardening counters (or an unreachable one) leaves the
	// summary byte-identical to pre-feature output.
	EstimatorRefreshes         int64 `json:"estimator_refreshes,omitempty"`
	EstimatorEarlyRefreshes    int64 `json:"estimator_early_refreshes,omitempty"`
	EstimatorRejectedSnapshots int64 `json:"estimator_rejected_snapshots,omitempty"`

	// Checkpoint mirrors the server's durability ledger (saves, loads,
	// corrupt frames skipped, cold starts) for chaos runs against a
	// state-dir-backed server. Nil — and absent from the JSON — when the
	// server runs without a checkpoint store, keeping the summary
	// byte-identical to pre-feature output.
	Checkpoint *checkpoint.Counters `json:"checkpoint,omitempty"`
}

// OverloadSummary reports how an open-loop run interacted with the
// server's overload control: what load was offered, what was shed and
// from which class, and how far up the degradation ladder the server
// climbed. The paper's promise is only kept if shed work is
// overwhelmingly speculative — ShedSpeculativeRatio is that check.
type OverloadSummary struct {
	OfferedRate float64 `json:"offered_rate"`
	Burst       int     `json:"burst"`
	// DemandShed is demand requests refused with 503 (server-side count
	// when the stats scrape succeeded, client-observed otherwise).
	// SpeculativeShed is speculative work units dropped: suppressed
	// pushes, despeculated requests, and speculative admission rejects.
	DemandShed      int64 `json:"demand_shed"`
	SpeculativeShed int64 `json:"speculative_shed"`
	// ShedSpeculativeRatio = SpeculativeShed / (SpeculativeShed +
	// DemandShed); 1 when nothing was shed.
	ShedSpeculativeRatio float64 `json:"shed_speculative_ratio"`
	// DemandP99MS is the p99 latency of answered demand requests.
	DemandP99MS float64 `json:"demand_p99_ms"`
	// MaxRung / Rung report the highest ladder rung the governor reached
	// during the run and the rung it ended on; EffectiveTp is the
	// speculation threshold in force at the end.
	MaxRung     int     `json:"max_rung"`
	Rung        string  `json:"rung"`
	EffectiveTp float64 `json:"effective_tp"`
}

// ReplaySummary is the structured per-run result cmd/replay emits as
// JSON, so runs are machine-comparable across configurations and PRs.
// Chaos is present only for chaos-mode runs and Overload only for
// open-loop (-rate) runs, keeping fault-free closed-loop output
// byte-identical to earlier versions.
type ReplaySummary struct {
	Clients       int              `json:"clients"`
	Requests      int64            `json:"requests"`
	Errors        int64            `json:"errors"`
	CacheHits     int64            `json:"cache_hits"`
	SpecHits      int64            `json:"spec_hits"`
	Pushed        int64            `json:"pushed"`
	Prefetched    int64            `json:"prefetched"`
	BytesIn       int64            `json:"bytes_in"`
	DemandBytes   int64            `json:"demand_bytes"`
	BaselineBytes int64            `json:"baseline_bytes"`
	Ratios        PaperRatios      `json:"ratios"`
	LatencyMS     LatencySummary   `json:"latency_ms"`
	Chaos         *ChaosSummary    `json:"chaos,omitempty"`
	Overload      *OverloadSummary `json:"overload,omitempty"`
	// Attrib breaks the speculative bytes down into consumed vs wasted
	// per delivery class, with top-K per-doc rows (present with -attrib).
	Attrib *attrib.Report `json:"attrib,omitempty"`
}

// ratio divides speculative by baseline, reporting the neutral 1 when
// there is nothing to compare.
func ratio(spec, baseline float64) float64 {
	if baseline == 0 {
		return 1
	}
	return spec / baseline
}

// Summary computes the paper's four ratios and the latency percentiles
// for the run.
func (s *ReplayStats) Summary() ReplaySummary {
	baselineBytes := s.MissBytes + s.SpecHitBytes
	specServerReqs := float64(s.Requests-s.CacheHits) + float64(s.Prefetched)
	baseServerReqs := float64(s.Requests-s.CacheHits) + float64(s.SpecHits)

	var durSum float64
	for _, d := range s.latencies {
		durSum += d
	}
	var meanMiss float64
	if s.missCount > 0 {
		meanMiss = s.missDurSum / float64(s.missCount)
	}
	serviceTime := 1.0
	if n := float64(len(s.latencies)); n > 0 {
		baselineDur := durSum + float64(s.SpecHits)*meanMiss
		serviceTime = ratio(durSum/n, baselineDur/n)
	}

	lat := LatencySummary{}
	if len(s.latencies) > 0 {
		sorted := append([]float64(nil), s.latencies...)
		sort.Float64s(sorted)
		pick := func(q float64) float64 {
			i := int(q * float64(len(sorted)-1))
			return sorted[i] * 1000
		}
		lat = LatencySummary{
			P50:  pick(0.50),
			P90:  pick(0.90),
			P99:  pick(0.99),
			Mean: durSum / float64(len(sorted)) * 1000,
			Max:  sorted[len(sorted)-1] * 1000,
		}
	}

	sum := ReplaySummary{
		Clients:       s.Clients,
		Requests:      s.Requests,
		Errors:        s.Errors,
		CacheHits:     s.CacheHits,
		SpecHits:      s.SpecHits,
		Pushed:        s.Pushed,
		Prefetched:    s.Prefetched,
		BytesIn:       s.BytesIn,
		DemandBytes:   s.DemandBytes,
		BaselineBytes: baselineBytes,
		Ratios: PaperRatios{
			Bandwidth:    ratio(float64(s.BytesIn), float64(baselineBytes)),
			ServerLoad:   ratio(specServerReqs, baseServerReqs),
			ServiceTime:  serviceTime,
			ByteMissRate: ratio(float64(s.MissBytes), float64(baselineBytes)),
		},
		LatencyMS: lat,
	}
	if s.Chaos {
		reqs := float64(s.Requests)
		if reqs == 0 {
			reqs = 1
		}
		sum.Chaos = &ChaosSummary{
			Availability: float64(s.Requests-s.Errors) / reqs,
			Retries:      s.Retried,
			StaleServes:  s.StaleServes,
			StaleRatio:   float64(s.StaleServes) / reqs,
		}
		if eng := s.ServerEngine; eng != nil {
			sum.Chaos.EstimatorRefreshes = eng.Refreshes
			sum.Chaos.EstimatorEarlyRefreshes = eng.EarlyRefreshes
			sum.Chaos.EstimatorRejectedSnapshots = eng.SnapshotsRejected
			sum.Chaos.Checkpoint = eng.Checkpoint
		}
	}
	if s.OpenLoop {
		ov := &OverloadSummary{
			OfferedRate: s.OfferedRate,
			Burst:       s.Burst,
			DemandShed:  s.Shed,
			DemandP99MS: lat.P99,
			Rung:        overload.RungName(overload.RungNormal),
		}
		if so := s.ServerOverload; so != nil {
			// The server's ledger is authoritative: it sees admission
			// rejects and rung sheds alike, and is the only party that
			// can count suppressed speculation.
			ov.DemandShed = so.DemandShed
			ov.SpeculativeShed = so.SpeculativeShed()
			ov.MaxRung = so.Governor.MaxRungSeen
			ov.Rung = overload.RungName(so.Governor.Rung)
			ov.EffectiveTp = so.Governor.EffectiveTp
		}
		if total := ov.SpeculativeShed + ov.DemandShed; total > 0 {
			ov.ShedSpeculativeRatio = float64(ov.SpeculativeShed) / float64(total)
		} else {
			ov.ShedSpeculativeRatio = 1
		}
		sum.Overload = ov
	}
	sum.Attrib = s.Attrib
	return sum
}

// lowPriorityClient decides, by a stable hash, whether a client falls in
// the low-priority fraction — deterministic across runs of one trace.
func lowPriorityClient(id trace.ClientID, fraction float64) bool {
	if fraction <= 0 {
		return false
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return float64(h.Sum32()%1000) < fraction*1000
}

// replayRun holds the shared state of one replay: the client population
// and the outcome ledger (mutex-guarded, since open-loop requests land
// concurrently).
type replayRun struct {
	cfg     ReplayConfig
	retrier *resilience.Retrier
	attrib  *attrib.Ledger // nil unless cfg.Attrib

	clients      map[trace.ClientID]*Client // dispatcher-only
	sinceSession map[trace.ClientID]int     // dispatcher-only

	mu    sync.Mutex
	stats *ReplayStats
}

// clientFor returns (building on first use) the replay client for id and
// applies the session-gap purge. Called only from the dispatch loop.
func (rr *replayRun) clientFor(id trace.ClientID) *Client {
	c := rr.clients[id]
	if c == nil {
		var prio string
		if lowPriorityClient(id, rr.cfg.LowPriority) {
			prio = "low"
		}
		c = NewClient(rr.cfg.Base, ClientConfig{
			ID:                string(id),
			AcceptBundles:     rr.cfg.AcceptBundles,
			Cooperative:       rr.cfg.Cooperative,
			PrefetchThreshold: rr.cfg.PrefetchThreshold,
			HTTP:              rr.cfg.HTTP,
			Timeout:           rr.cfg.RequestTimeout,
			Retrier:           rr.retrier,
			Priority:          prio,
			Attrib:            rr.attrib,
			AttribFeedback:    rr.cfg.AttribFeedback,
		})
		rr.clients[id] = c
	}
	if rr.cfg.SessionGapRequests > 0 && rr.sinceSession[id] >= rr.cfg.SessionGapRequests {
		c.EndSession()
		rr.sinceSession[id] = 0
	}
	rr.sinceSession[id]++
	return c
}

// record books one request outcome. Shed requests are deliberate
// degradation, not failure, so they stay out of Errors (the client's own
// Shed counter carries them into the overload summary).
func (rr *replayRun) record(dur float64, fromCache bool, err error) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if err != nil {
		if !errors.Is(err, ErrShed) {
			rr.stats.Errors++
		}
		return
	}
	rr.stats.latencies = append(rr.stats.latencies, dur)
	if !fromCache {
		rr.stats.missDurSum += dur
		rr.stats.missCount++
	}
}

// finish aggregates the per-client counters into the run stats and
// drains the attribution ledger: still-unused speculative copies resolve
// as wasted, so Outstanding reports zero. The ledger's updates commute,
// so map iteration order cannot change the report.
func (rr *replayRun) finish() *ReplayStats {
	stats := rr.stats
	stats.Clients = len(rr.clients)
	for _, c := range rr.clients {
		if rr.attrib != nil {
			c.ResolveOutstanding()
		}
		cs := c.Stats()
		stats.Requests += cs.Fetches
		stats.CacheHits += cs.CacheHits
		stats.SpecHits += cs.SpecHits
		stats.Pushed += cs.Pushed
		stats.Prefetched += cs.Prefetched
		stats.BytesIn += cs.BytesIn
		stats.SpecHitBytes += cs.SpecHitBytes
		stats.DemandBytes += cs.DemandBytes
		stats.MissBytes += cs.MissBytes
		stats.Retried += cs.Retries
		stats.StaleServes += cs.StaleServes
		stats.Shed += cs.Shed
	}
	if rr.attrib != nil {
		stats.Attrib = rr.attrib.Report(replayAttribTopDocs)
	}
	return stats
}

// replayAttribTopDocs bounds the per-doc attribution rows in a summary.
const replayAttribTopDocs = 10

// scrapeOverload pulls the server's overload snapshot from /spec/stats;
// nil when the server is unreachable or runs without overload control.
func scrapeOverload(cfg ReplayConfig) *ServerOverloadStats {
	hc := cfg.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Get(cfg.Base + "/spec/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var payload struct {
		Overload *ServerOverloadStats
	}
	if json.NewDecoder(resp.Body).Decode(&payload) != nil {
		return nil
	}
	return payload.Overload
}

// scrapeEngine pulls the server's engine snapshot from /spec/stats; nil
// when the server is unreachable. Chaos runs use it to surface the
// refresh/early-refresh/rejected-snapshot counters.
func scrapeEngine(cfg ReplayConfig) *core.Stats {
	hc := cfg.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	// In chaos mode cfg.HTTP carries the fault injector, so a single
	// scrape may draw an injected failure; a few attempts make the
	// summary's estimator section reliable without a separate transport.
	for attempt := 0; attempt < 3; attempt++ {
		resp, err := hc.Get(cfg.Base + "/spec/stats")
		if err != nil {
			continue
		}
		var payload struct {
			Engine *core.Stats
		}
		err = json.NewDecoder(resp.Body).Decode(&payload)
		resp.Body.Close()
		if err != nil {
			continue
		}
		return payload.Engine
	}
	return nil
}

// Replay walks the trace in order, issuing each request through a per-client
// speculative Client against the server at cfg.Base. Requests whose paths
// the server does not serve count as errors but do not stop the replay.
// With cfg.Rate > 0 the walk is open-loop: requests are dispatched on the
// arrival schedule regardless of how fast the server answers.
func Replay(tr *trace.Trace, cfg ReplayConfig) (*ReplayStats, error) {
	if cfg.Base == "" {
		return nil, fmt.Errorf("httpspec: replay needs a base URL")
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("httpspec: empty trace")
	}
	// One shared retrier gives the whole replay a single retry budget;
	// one shared breaker keeps every client's view of the origin's
	// health consistent, as a real proxy population's would be.
	var retrier *resilience.Retrier
	if cfg.Retry.MaxAttempts > 1 {
		retrier = resilience.NewRetrier(cfg.Retry)
	}
	rr := &replayRun{
		cfg:          cfg,
		retrier:      retrier,
		clients:      make(map[trace.ClientID]*Client),
		sinceSession: make(map[trace.ClientID]int),
		stats:        &ReplayStats{Chaos: cfg.Chaos},
	}
	if cfg.Attrib {
		// Size the ledger past the trace's distinct paths (with slack
		// for pushed documents the trace never demands) so the
		// space-saving sketch never evicts: per-doc rows stay exact and
		// the whole ledger commutes (open-loop completion order cannot
		// change the report).
		distinct := make(map[string]struct{}, 1024)
		for i := range tr.Requests {
			distinct[tr.Requests[i].Path] = struct{}{}
		}
		rr.attrib = attrib.NewLedger(2*len(distinct)+64, obs.NewRegistry())
	}
	if cfg.Rate > 0 {
		return replayOpenLoop(tr, rr)
	}
	for i := range tr.Requests {
		r := &tr.Requests[i]
		c := rr.clientFor(r.Client)
		start := time.Now()
		_, fromCache, err := c.Get(r.Path)
		rr.record(time.Since(start).Seconds(), fromCache, err)
	}
	stats := rr.finish()
	if cfg.Chaos {
		stats.ServerEngine = scrapeEngine(cfg)
	}
	return stats, nil
}

// replayOpenLoop dispatches the trace at a fixed arrival rate in bursts,
// without waiting for responses — the offered load stays constant no
// matter how the server fares, which is the regime where overload
// control matters (a closed loop self-throttles and can never
// meaningfully oversubscribe the server).
func replayOpenLoop(tr *trace.Trace, rr *replayRun) (*ReplayStats, error) {
	cfg := rr.cfg
	burst := cfg.Burst
	if burst < 1 {
		burst = 1
	}
	interval := time.Duration(float64(burst) / cfg.Rate * float64(time.Second))
	rr.stats.OpenLoop = true
	rr.stats.OfferedRate = cfg.Rate
	rr.stats.Burst = burst

	var wg sync.WaitGroup
	next := time.Now()
	for i := range tr.Requests {
		if i > 0 && i%burst == 0 {
			next = next.Add(interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
		r := &tr.Requests[i]
		c := rr.clientFor(r.Client)
		path := r.Path
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			_, fromCache, err := c.Get(path)
			rr.record(time.Since(start).Seconds(), fromCache, err)
		}()
	}
	wg.Wait()
	stats := rr.finish()
	stats.ServerOverload = scrapeOverload(cfg)
	if cfg.Chaos {
		stats.ServerEngine = scrapeEngine(cfg)
	}
	return stats, nil
}
