package cluster

import (
	"fmt"
	"math"
	"testing"

	"specweb/internal/stats"
	"specweb/internal/synth"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// buildMembers generates n synthetic home servers with different popularity
// weights (scaled by session rate).
func buildMembers(t *testing.T, n int) []Member {
	t.Helper()
	var members []Member
	for i := 0; i < n; i++ {
		p := webgraph.TinySite()
		p.Name = fmt.Sprintf("srv%d", i)
		site, err := webgraph.Generate(p, stats.NewRNG(int64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		cfg := synth.DefaultConfig(site, nil)
		cfg.Days = 20
		cfg.SessionsPerDay = float64(30 * (i + 1)) // widely varying demand
		cfg.RemoteClients = 150
		cfg.LocalClients = 10
		res, err := synth.Generate(cfg, stats.NewRNG(int64(200+i)))
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, Member{
			Name:  p.Name,
			Site:  site,
			Trace: res.Trace,
		})
	}
	return members
}

func TestSimulateExponential(t *testing.T) {
	members := buildMembers(t, 3)
	res, err := Simulate(members, Config{Budget: 600 << 10, Strategy: Exponential})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredAlpha <= 0.2 {
		t.Errorf("measured alpha %v: proxy intercepted almost nothing", res.MeasuredAlpha)
	}
	if res.PredictedAlpha <= 0 || res.PredictedAlpha > 1 {
		t.Errorf("predicted alpha %v", res.PredictedAlpha)
	}
	// §2.2's stability claim: the model's prediction from the training
	// window should be in the ballpark of the measured evaluation window.
	if math.Abs(res.PredictedAlpha-res.MeasuredAlpha) > 0.35 {
		t.Errorf("predicted %v vs measured %v: model badly off", res.PredictedAlpha, res.MeasuredAlpha)
	}
	// Total allocation within budget.
	var used int64
	for _, s := range res.Servers {
		if s.Alloc < 0 {
			t.Errorf("negative allocation for %s", s.Name)
		}
		used += s.Alloc
	}
	if used > 600<<10+1024 {
		t.Errorf("allocated %d over budget", used)
	}
	// The busiest member (srv2, 3× the sessions of srv0) should get more
	// storage than the quietest under the optimal split.
	if res.Servers[2].Alloc <= res.Servers[0].Alloc {
		t.Errorf("allocs %v: busy server should get more", res.Servers)
	}
}

func TestStrategyOrdering(t *testing.T) {
	members := buildMembers(t, 3)
	alphas := map[Strategy]float64{}
	for _, s := range []Strategy{Exponential, EqualSplit, ProportionalSplit, GreedyEmpirical} {
		res, err := Simulate(members, Config{Budget: 400 << 10, Strategy: s})
		if err != nil {
			t.Fatal(err)
		}
		alphas[s] = res.MeasuredAlpha
		t.Logf("%s: measured alpha %.3f", s, res.MeasuredAlpha)
	}
	// The paper's optimal allocation should not lose to the naive equal
	// split (small tolerance: the evaluation window differs from
	// training).
	if alphas[Exponential] < alphas[EqualSplit]-0.05 {
		t.Errorf("exponential (%v) clearly lost to equal split (%v)",
			alphas[Exponential], alphas[EqualSplit])
	}
	// Greedy on empirical curves is the strongest training-window
	// strategy; it should be at least competitive.
	if alphas[GreedyEmpirical] < alphas[EqualSplit]-0.05 {
		t.Errorf("greedy (%v) clearly lost to equal split (%v)",
			alphas[GreedyEmpirical], alphas[EqualSplit])
	}
}

func TestSimulateValidation(t *testing.T) {
	members := buildMembers(t, 1)
	if _, err := Simulate(nil, Config{Budget: 1}); err == nil {
		t.Error("no members accepted")
	}
	if _, err := Simulate(members, Config{Budget: 0}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := Simulate(members, Config{Budget: 1, TrainFraction: 1.5}); err == nil {
		t.Error("bad train fraction accepted")
	}
	if _, err := Simulate([]Member{{Name: "x"}}, Config{Budget: 1}); err == nil {
		t.Error("member without site/trace accepted")
	}
	if _, err := Simulate(members, Config{Budget: 1, Strategy: Strategy(99)}); err == nil {
		t.Error("unknown strategy accepted")
	}
	empty := members[0]
	empty.Trace = &trace.Trace{}
	if _, err := Simulate([]Member{empty}, Config{Budget: 1}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestStrategyString(t *testing.T) {
	if Exponential.String() != "exponential" || EqualSplit.String() != "equal" ||
		ProportionalSplit.String() != "proportional" || GreedyEmpirical.String() != "greedy" ||
		Strategy(9).String() == "" {
		t.Error("strategy strings wrong")
	}
}

func TestBudgetScalesAlpha(t *testing.T) {
	members := buildMembers(t, 2)
	var prev float64 = -1
	for _, budget := range []int64{100 << 10, 400 << 10, 1600 << 10} {
		res, err := Simulate(members, Config{Budget: budget, Strategy: Exponential})
		if err != nil {
			t.Fatal(err)
		}
		if res.MeasuredAlpha < prev-0.02 {
			t.Errorf("alpha decreased with more budget: %v after %v", res.MeasuredAlpha, prev)
		}
		prev = res.MeasuredAlpha
	}
}
