// Package cluster implements the §2.1 cluster model end to end: several
// home servers S₁..Sₙ fronted by one service proxy S₀ with storage B₀.
// Each server's demand parameters (R_i, λ_i) are estimated from a training
// window of its own logs, the proxy's storage is split by the paper's
// optimal allocation (eqs. 4–5), each allotment is filled with that
// server's most popular documents, and the resulting interception fraction
// α_C (eq. 1) is *measured* by replaying an evaluation window — closing the
// loop between the analytical model and trace-driven reality, and testing
// the paper's claim that the parameters "are quite static, in that they
// change only slightly over time".
//
// Three baseline allocation strategies are implemented for comparison:
// an equal split, a split proportional to demand, and the empirical greedy
// (fractional-knapsack) optimum.
package cluster

import (
	"fmt"
	"time"

	"specweb/internal/allocation"
	"specweb/internal/popularity"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// Member is one home server of the cluster: its site and its access log.
type Member struct {
	Name  string
	Site  *webgraph.Site
	Trace *trace.Trace
}

// Strategy selects how the proxy splits B₀ among the members.
type Strategy int

const (
	// Exponential is the paper's optimum under the exponential model
	// (eqs. 4–5 with KKT clamping).
	Exponential Strategy = iota
	// EqualSplit gives every member B₀/n.
	EqualSplit
	// ProportionalSplit gives each member storage proportional to its
	// remote demand R_i.
	ProportionalSplit
	// GreedyEmpirical fills the proxy by marginal-gain density over the
	// members' empirical popularity curves (upper baseline).
	GreedyEmpirical
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Exponential:
		return "exponential"
	case EqualSplit:
		return "equal"
	case ProportionalSplit:
		return "proportional"
	case GreedyEmpirical:
		return "greedy"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Config parameterizes a cluster simulation.
type Config struct {
	// Budget is B₀, the proxy's total storage in bytes.
	Budget int64
	// TrainFraction of each member's trace (by time) estimates R_i, λ_i
	// and picks replica contents; the remainder measures α. Default 0.5.
	TrainFraction float64
	Strategy      Strategy
}

// ServerResult is one member's share of the outcome.
type ServerResult struct {
	Name string
	// R and Lambda are the training-window estimates.
	R      float64
	Lambda float64
	// Alloc is the storage granted; ReplicaDocs the documents placed.
	Alloc       int64
	ReplicaDocs int
	// EvalRemote counts the member's remote requests in the evaluation
	// window; Intercepted those served by the proxy.
	EvalRemote  int64
	Intercepted int64
}

// Result is the outcome of one cluster simulation.
type Result struct {
	Strategy Strategy
	// PredictedAlpha is eq. 1 evaluated on the fitted model (only
	// meaningful for the Exponential strategy; 0 otherwise).
	PredictedAlpha float64
	// MeasuredAlpha is the interception fraction actually observed on the
	// evaluation window.
	MeasuredAlpha float64
	Servers       []ServerResult
}

// Simulate runs the cluster end to end.
func Simulate(members []Member, cfg Config) (*Result, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: no members")
	}
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("cluster: budget must be positive, got %d", cfg.Budget)
	}
	tf := cfg.TrainFraction
	if tf == 0 {
		tf = 0.5
	}
	if tf <= 0 || tf >= 1 {
		return nil, fmt.Errorf("cluster: train fraction %v outside (0,1)", tf)
	}

	type memberState struct {
		train, eval *trace.Trace
		an          *popularity.Analysis
		demand      allocation.Server
		curve       allocation.Curve
	}
	states := make([]memberState, len(members))
	for i, m := range members {
		if m.Site == nil || m.Trace == nil || m.Trace.Len() == 0 {
			return nil, fmt.Errorf("cluster: member %d (%s) missing site or trace", i, m.Name)
		}
		first, last, _ := m.Trace.Span()
		cut := first.Add(time.Duration(float64(last.Sub(first)) * tf))
		st := memberState{
			train: m.Trace.Window(first, cut),
			eval:  m.Trace.Window(cut, last.Add(time.Nanosecond)),
		}
		if st.train.Len() == 0 || st.eval.Len() == 0 {
			return nil, fmt.Errorf("cluster: member %d (%s) has an empty train or eval window", i, m.Name)
		}
		st.an = popularity.Analyze(st.train, m.Site)
		lam, err := st.an.FitLambda(popularity.ByRemoteRequests)
		if err != nil {
			return nil, fmt.Errorf("cluster: member %d (%s): fitting lambda: %w", i, m.Name, err)
		}
		var remoteBytes float64
		var items []allocation.Item
		for _, d := range st.an.Ranked(popularity.ByRemoteRequests) {
			remoteBytes += float64(d.RemoteBytes)
			if d.Remote > 0 {
				items = append(items, allocation.Item{Size: d.Size, Requests: d.Remote})
			}
		}
		st.demand = allocation.Server{R: remoteBytes, Lambda: lam}
		st.curve = allocation.Curve{R: remoteBytes, Items: items}
		states[i] = st
	}

	// Split the budget.
	allocs := make([]int64, len(members))
	var predicted float64
	switch cfg.Strategy {
	case Exponential:
		servers := make([]allocation.Server, len(states))
		for i := range states {
			servers[i] = states[i].demand
		}
		bs, err := allocation.ExponentialAllocate(float64(cfg.Budget), servers)
		if err != nil {
			return nil, err
		}
		for i, b := range bs {
			allocs[i] = int64(b)
		}
		predicted = allocation.Alpha(bs, servers)
	case EqualSplit:
		for i := range allocs {
			allocs[i] = cfg.Budget / int64(len(members))
		}
	case ProportionalSplit:
		var totalR float64
		for i := range states {
			totalR += states[i].demand.R
		}
		if totalR == 0 {
			return nil, fmt.Errorf("cluster: no remote demand in any training window")
		}
		for i := range allocs {
			allocs[i] = int64(float64(cfg.Budget) * states[i].demand.R / totalR)
		}
	case GreedyEmpirical:
		curves := make([]allocation.Curve, len(states))
		for i := range states {
			curves[i] = states[i].curve
		}
		var err error
		allocs, _, err = allocation.GreedyAllocate(cfg.Budget, curves)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("cluster: unknown strategy %v", cfg.Strategy)
	}

	// Fill each member's allotment with its most remotely-popular training
	// documents, then measure interception on the evaluation window.
	res := &Result{Strategy: cfg.Strategy, PredictedAlpha: predicted}
	var evalRemote, intercepted int64
	for i, m := range members {
		st := &states[i]
		replicaList := st.an.TopBytes(allocs[i], popularity.ByRemoteRequests)
		replica := make(map[webgraph.DocID]bool, len(replicaList))
		for _, id := range replicaList {
			replica[id] = true
		}
		sr := ServerResult{
			Name:        m.Name,
			R:           st.demand.R,
			Lambda:      st.demand.Lambda,
			Alloc:       allocs[i],
			ReplicaDocs: len(replicaList),
		}
		for j := range st.eval.Requests {
			r := &st.eval.Requests[j]
			if !r.Remote || r.Doc == webgraph.None {
				continue
			}
			sr.EvalRemote++
			if replica[r.Doc] {
				sr.Intercepted++
			}
		}
		evalRemote += sr.EvalRemote
		intercepted += sr.Intercepted
		res.Servers = append(res.Servers, sr)
	}
	if evalRemote > 0 {
		res.MeasuredAlpha = float64(intercepted) / float64(evalRemote)
	}
	return res, nil
}
