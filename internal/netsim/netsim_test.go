package netsim

import (
	"testing"
	"testing/quick"

	"specweb/internal/stats"
)

func genTopo(t *testing.T, cfg Config, seed int64) *Topology {
	t.Helper()
	topo, err := Generate(cfg, stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestGenerateValidates(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), TinyConfig()} {
		topo := genTopo(t, cfg, 1)
		if err := topo.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := genTopo(t, DefaultConfig(), 5)
	b := genTopo(t, DefaultConfig(), 5)
	if a.NumNodes() != b.NumNodes() {
		t.Fatalf("node counts differ: %d vs %d", a.NumNodes(), b.NumNodes())
	}
	for i := range a.Nodes {
		if a.Nodes[i].Parent != b.Nodes[i].Parent || a.Nodes[i].Kind != b.Nodes[i].Kind {
			t.Fatalf("node %d differs", i)
		}
	}
}

func TestTopologyShape(t *testing.T) {
	topo := genTopo(t, DefaultConfig(), 2)
	var local, remote int
	for _, c := range topo.Clients() {
		node, ok := topo.ClientNode(c)
		if !ok {
			t.Fatalf("client %s has no node", c)
		}
		switch topo.Node(node).Depth {
		case 2:
			local++
		case 4:
			remote++
		default:
			t.Errorf("client %s at unexpected depth %d", c, topo.Node(node).Depth)
		}
	}
	if local != 40 {
		t.Errorf("local clients = %d, want 40", local)
	}
	if remote < 100 {
		t.Errorf("remote clients = %d, want hundreds", remote)
	}
}

func TestPathToRootAndHops(t *testing.T) {
	topo := genTopo(t, TinyConfig(), 3)
	clients := topo.Clients()
	var remoteLeaf NodeID = NoNode
	for _, c := range clients {
		id, _ := topo.ClientNode(c)
		if topo.Node(id).Depth == 4 {
			remoteLeaf = id
			break
		}
	}
	if remoteLeaf == NoNode {
		t.Fatal("no remote leaf found")
	}
	path := topo.PathToRoot(remoteLeaf)
	if len(path) != 5 {
		t.Fatalf("path length %d, want 5", len(path))
	}
	if path[0] != remoteLeaf || path[len(path)-1] != topo.Root() {
		t.Errorf("path endpoints wrong: %v", path)
	}
	for i := 0; i < len(path)-1; i++ {
		if topo.Node(path[i]).Parent != path[i+1] {
			t.Errorf("path not parent-linked at %d", i)
		}
	}
	if topo.HopsToRoot(remoteLeaf) != 4 {
		t.Errorf("HopsToRoot = %d", topo.HopsToRoot(remoteLeaf))
	}
	gw := topo.Node(remoteLeaf).Parent
	if d, ok := topo.HopsBetween(gw, remoteLeaf); !ok || d != 1 {
		t.Errorf("HopsBetween(gw, leaf) = %d %v", d, ok)
	}
	if d, ok := topo.HopsBetween(topo.Root(), remoteLeaf); !ok || d != 4 {
		t.Errorf("HopsBetween(root, leaf) = %d %v", d, ok)
	}
	if _, ok := topo.HopsBetween(remoteLeaf, topo.Root()); ok {
		t.Error("descendant-as-ancestor should fail")
	}
}

func TestHopsBetweenNonAncestor(t *testing.T) {
	topo := genTopo(t, TinyConfig(), 7)
	// Two distinct backbones are not ancestors of each other.
	var backbones []NodeID
	for i := range topo.Nodes {
		if topo.Nodes[i].Kind == Backbone {
			backbones = append(backbones, topo.Nodes[i].ID)
		}
	}
	if len(backbones) < 2 {
		t.Skip("need two backbones")
	}
	if _, ok := topo.HopsBetween(backbones[0], backbones[1]); ok {
		t.Error("siblings reported as ancestor/descendant")
	}
}

func TestSubtreeClients(t *testing.T) {
	topo := genTopo(t, TinyConfig(), 11)
	all := topo.SubtreeClients(topo.Root())
	if len(all) != len(topo.Clients()) {
		t.Errorf("root subtree has %d clients, want %d", len(all), len(topo.Clients()))
	}
	// A gateway's clients are exactly its children.
	for i := range topo.Nodes {
		n := &topo.Nodes[i]
		if n.Kind == Gateway {
			sub := topo.SubtreeClients(n.ID)
			if len(sub) != len(n.Children) {
				t.Errorf("gateway %d subtree %d clients, %d children", n.ID, len(sub), len(n.Children))
			}
			break
		}
	}
}

func TestInternalNodes(t *testing.T) {
	topo := genTopo(t, TinyConfig(), 13)
	for _, id := range topo.InternalNodes() {
		k := topo.Node(id).Kind
		if k == Root || k == Client {
			t.Errorf("internal node list includes %v", k)
		}
	}
	if len(topo.InternalNodes()) == 0 {
		t.Error("no internal nodes")
	}
}

func TestLocalClientsAreLANAndNamedLocal(t *testing.T) {
	topo := genTopo(t, TinyConfig(), 17)
	for i := range topo.Nodes {
		n := &topo.Nodes[i]
		if n.Kind != Client {
			continue
		}
		parentKind := topo.Node(n.Parent).Kind
		isLocalName := len(n.Client) > 6 && string(n.Client[len(n.Client)-6:]) == ".local"
		if (parentKind == LANGateway) != isLocalName {
			t.Errorf("client %s: parent %v but name locality %v", n.Client, parentKind, isLocalName)
		}
	}
}

func TestRegions(t *testing.T) {
	topo := genTopo(t, DefaultConfig(), 19)
	if topo.NumRegions() < 4 {
		t.Errorf("regions = %d, want several", topo.NumRegions())
	}
	// Every remote client carries its region; locals carry -1.
	for i := range topo.Nodes {
		n := &topo.Nodes[i]
		if n.Kind != Client {
			continue
		}
		if topo.Node(n.Parent).Kind == LANGateway {
			if n.Region != -1 {
				t.Errorf("local client %s has region %d", n.Client, n.Region)
			}
		} else if n.Region < 0 {
			t.Errorf("remote client %s has no region", n.Client)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Backbones = 0
	if _, err := Generate(cfg, stats.NewRNG(1)); err == nil {
		t.Error("zero backbones accepted")
	}
	cfg = DefaultConfig()
	cfg.ClientsPerOrg = nil
	if _, err := Generate(cfg, stats.NewRNG(1)); err == nil {
		t.Error("nil fan-out accepted")
	}
}

func TestValidateRejectsCorrupt(t *testing.T) {
	topo := genTopo(t, TinyConfig(), 23)
	topo.Nodes[2].Depth = 99
	if err := topo.Validate(); err == nil {
		t.Error("corrupt depth accepted")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		Root: "root", Backbone: "backbone", Regional: "regional",
		Gateway: "gateway", LANGateway: "lan-gateway", Client: "client",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%v.String() = %q", uint8(k), k.String())
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should print")
	}
}

// Property: for any generated topology, every client's path to root is
// acyclic, has length == depth+1, and HopsBetween(root, leaf) == depth.
func TestPathProperty(t *testing.T) {
	f := func(seed int64) bool {
		topo, err := Generate(TinyConfig(), stats.NewRNG(seed))
		if err != nil {
			return false
		}
		for _, c := range topo.Clients() {
			id, ok := topo.ClientNode(c)
			if !ok {
				return false
			}
			path := topo.PathToRoot(id)
			if len(path) != topo.Node(id).Depth+1 {
				return false
			}
			if d, ok := topo.HopsBetween(topo.Root(), id); !ok || d != topo.Node(id).Depth {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestValidateMoreCorruptions(t *testing.T) {
	base := func() *Topology { return genTopo(t, TinyConfig(), 29) }

	topo := base()
	// Duplicate client ID on two leaves.
	var leaves []NodeID
	for i := range topo.Nodes {
		if topo.Nodes[i].Kind == Client {
			leaves = append(leaves, topo.Nodes[i].ID)
		}
	}
	topo.Nodes[leaves[1]].Client = topo.Nodes[leaves[0]].Client
	if err := topo.Validate(); err == nil {
		t.Error("duplicate client accepted")
	}

	topo = base()
	topo.Nodes[leaves[0]].Client = ""
	if err := topo.Validate(); err == nil {
		t.Error("empty client ID accepted")
	}

	topo = base()
	topo.Nodes[leaves[0]].Children = []NodeID{0}
	if err := topo.Validate(); err == nil {
		t.Error("client with children accepted")
	}

	topo = base()
	topo.Nodes[2].Parent = 9999
	if err := topo.Validate(); err == nil {
		t.Error("dangling parent accepted")
	}

	topo = base()
	topo.Nodes[0].Kind = Backbone
	if err := topo.Validate(); err == nil {
		t.Error("non-root node 0 accepted")
	}

	if err := (&Topology{}).Validate(); err == nil {
		t.Error("empty topology accepted")
	}
}
