// Package netsim models the network that connects a home server to its
// clientele as a tree, the view the paper takes in §2.1: "For a given home
// server, we view the WWW clientele (Internet) as a tree rooted at the
// server. The leaves of that tree are the clients and the internal nodes are
// the potential proxies."
//
// The paper built this tree for cs-www.bu.edu from the IP record-route
// option (34,000+ nodes over 22 weeks). That Internet is gone; netsim
// generates a synthetic hierarchy — backbone, regional networks,
// organization gateways, clients — whose fan-out and depth are configurable,
// plus a LAN subtree for the server's own organization so that local and
// remote traffic see different hop counts.
package netsim

import (
	"fmt"

	"specweb/internal/stats"
	"specweb/internal/trace"
)

// NodeID indexes a node within a Topology. IDs are dense.
type NodeID int32

// NoNode is the sentinel for "no node" (the root's parent).
const NoNode NodeID = -1

// Kind classifies topology nodes.
type Kind uint8

const (
	// Root is the home server.
	Root Kind = iota
	// Backbone is a national backbone attachment point.
	Backbone
	// Regional is a regional network point of presence.
	Regional
	// Gateway is an organization's gateway: the "edge of the organization"
	// where the paper imagines renting proxy bandwidth.
	Gateway
	// LANGateway is the gateway of the server's own organization.
	LANGateway
	// Client is a leaf host.
	Client
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Root:
		return "root"
	case Backbone:
		return "backbone"
	case Regional:
		return "regional"
	case Gateway:
		return "gateway"
	case LANGateway:
		return "lan-gateway"
	case Client:
		return "client"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Node is one vertex of the clientele tree.
type Node struct {
	ID       NodeID
	Parent   NodeID // NoNode for the root
	Children []NodeID
	Kind     Kind
	Depth    int // hops to the root
	// Client is the trace client ID for leaf nodes, empty otherwise.
	Client trace.ClientID
	// Region identifies the regional subtree a node belongs to (for
	// geographic interest locality); -1 above the regional level.
	Region int
}

// Topology is a clientele tree rooted at the home server.
type Topology struct {
	Nodes []Node

	byClient map[trace.ClientID]NodeID
}

// Root returns the root (home server) node ID.
func (t *Topology) Root() NodeID { return 0 }

// Node returns the node with the given ID; it panics on invalid IDs, which
// can only arise from programming errors inside this module.
func (t *Topology) Node(id NodeID) *Node { return &t.Nodes[id] }

// Valid reports whether id names a node.
func (t *Topology) Valid(id NodeID) bool { return id >= 0 && int(id) < len(t.Nodes) }

// NumNodes returns the total node count.
func (t *Topology) NumNodes() int { return len(t.Nodes) }

// ClientNode returns the leaf for a trace client.
func (t *Topology) ClientNode(c trace.ClientID) (NodeID, bool) {
	if t.byClient == nil {
		t.indexClients()
	}
	id, ok := t.byClient[c]
	return id, ok
}

func (t *Topology) indexClients() {
	t.byClient = make(map[trace.ClientID]NodeID)
	for i := range t.Nodes {
		if t.Nodes[i].Kind == Client {
			t.byClient[t.Nodes[i].Client] = t.Nodes[i].ID
		}
	}
}

// Clients returns all leaf client IDs in node order.
func (t *Topology) Clients() []trace.ClientID {
	var out []trace.ClientID
	for i := range t.Nodes {
		if t.Nodes[i].Kind == Client {
			out = append(out, t.Nodes[i].Client)
		}
	}
	return out
}

// InternalNodes returns all non-root, non-leaf nodes: the candidate proxy
// locations.
func (t *Topology) InternalNodes() []NodeID {
	var out []NodeID
	for i := range t.Nodes {
		if t.Nodes[i].Kind != Client && t.Nodes[i].Kind != Root {
			out = append(out, t.Nodes[i].ID)
		}
	}
	return out
}

// PathToRoot returns the node IDs from id (inclusive) up to the root
// (inclusive).
func (t *Topology) PathToRoot(id NodeID) []NodeID {
	var path []NodeID
	for id != NoNode {
		path = append(path, id)
		id = t.Nodes[id].Parent
	}
	return path
}

// HopsToRoot returns the number of edges between id and the root.
func (t *Topology) HopsToRoot(id NodeID) int { return t.Nodes[id].Depth }

// HopsBetween returns the tree distance between an ancestor and a
// descendant, where anc must lie on desc's path to the root; ok is false
// otherwise.
func (t *Topology) HopsBetween(anc, desc NodeID) (int, bool) {
	d := t.Nodes[desc].Depth - t.Nodes[anc].Depth
	if d < 0 {
		return 0, false
	}
	n := desc
	for i := 0; i < d; i++ {
		n = t.Nodes[n].Parent
	}
	if n != anc {
		return 0, false
	}
	return d, true
}

// SubtreeClients returns the client leaves under id (including id itself if
// it is a client).
func (t *Topology) SubtreeClients(id NodeID) []trace.ClientID {
	var out []trace.ClientID
	var walk func(NodeID)
	walk = func(n NodeID) {
		node := &t.Nodes[n]
		if node.Kind == Client {
			out = append(out, node.Client)
			return
		}
		for _, c := range node.Children {
			walk(c)
		}
	}
	walk(id)
	return out
}

// Validate checks the tree invariants: a single root, consistent
// parent/child pointers, correct depths, and unique client IDs on leaves.
func (t *Topology) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("netsim: empty topology")
	}
	if t.Nodes[0].Parent != NoNode || t.Nodes[0].Kind != Root || t.Nodes[0].Depth != 0 {
		return fmt.Errorf("netsim: node 0 is not a proper root")
	}
	clients := make(map[trace.ClientID]bool)
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.ID != NodeID(i) {
			return fmt.Errorf("netsim: node at index %d has ID %d", i, n.ID)
		}
		if i > 0 {
			if !t.Valid(n.Parent) {
				return fmt.Errorf("netsim: node %d has invalid parent %d", i, n.Parent)
			}
			p := &t.Nodes[n.Parent]
			if n.Depth != p.Depth+1 {
				return fmt.Errorf("netsim: node %d depth %d, parent depth %d", i, n.Depth, p.Depth)
			}
			found := false
			for _, c := range p.Children {
				if c == n.ID {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("netsim: node %d missing from parent %d child list", i, n.Parent)
			}
		}
		if n.Kind == Client {
			if len(n.Children) > 0 {
				return fmt.Errorf("netsim: client node %d has children", i)
			}
			if n.Client == "" {
				return fmt.Errorf("netsim: client node %d has empty client ID", i)
			}
			if clients[n.Client] {
				return fmt.Errorf("netsim: duplicate client ID %q", n.Client)
			}
			clients[n.Client] = true
		}
	}
	return nil
}

// Config parameterizes topology generation.
type Config struct {
	Backbones          int // backbone nodes under the root's upstream
	RegionsPerBackbone stats.Dist
	OrgsPerRegion      stats.Dist
	ClientsPerOrg      stats.Dist
	LocalClients       int // clients under the server's LAN gateway
}

// DefaultConfig returns a topology configuration giving on the order of a
// few thousand clients over a depth-4 hierarchy, in the spirit of the
// 34,000-node, 8,474-client clientele tree of the paper scaled down to
// simulation-friendly size.
func DefaultConfig() Config {
	return Config{
		Backbones:          4,
		RegionsPerBackbone: stats.NewUniform(3, 7),
		OrgsPerRegion:      stats.NewUniform(4, 10),
		ClientsPerOrg:      stats.NewUniform(3, 12),
		LocalClients:       40,
	}
}

// TinyConfig returns a small topology for tests and examples.
func TinyConfig() Config {
	return Config{
		Backbones:          2,
		RegionsPerBackbone: stats.NewUniform(2, 4),
		OrgsPerRegion:      stats.NewUniform(2, 4),
		ClientsPerOrg:      stats.NewUniform(2, 5),
		LocalClients:       6,
	}
}

// Generate builds a deterministic topology from the configuration and seed
// stream. Remote clients are named "cNNNNN.orgMMM", local clients
// "wsNNN.local" so that trace-level Remote classification agrees with
// topology position.
func Generate(cfg Config, g *stats.RNG) (*Topology, error) {
	if cfg.Backbones < 1 {
		return nil, fmt.Errorf("netsim: need at least one backbone, got %d", cfg.Backbones)
	}
	if cfg.RegionsPerBackbone == nil || cfg.OrgsPerRegion == nil || cfg.ClientsPerOrg == nil {
		return nil, fmt.Errorf("netsim: nil fan-out distribution")
	}
	t := &Topology{}
	add := func(parent NodeID, kind Kind, client trace.ClientID, region int) NodeID {
		id := NodeID(len(t.Nodes))
		depth := 0
		if parent != NoNode {
			depth = t.Nodes[parent].Depth + 1
		}
		t.Nodes = append(t.Nodes, Node{
			ID: id, Parent: parent, Kind: kind, Depth: depth,
			Client: client, Region: region,
		})
		if parent != NoNode {
			t.Nodes[parent].Children = append(t.Nodes[parent].Children, id)
		}
		return id
	}

	root := add(NoNode, Root, "", -1)

	// The server's own LAN hangs directly off the root.
	lan := add(root, LANGateway, "", -1)
	for i := 0; i < cfg.LocalClients; i++ {
		add(lan, Client, trace.ClientID(fmt.Sprintf("ws%03d.local", i)), -1)
	}

	region := 0
	org := 0
	clientN := 0
	atLeast1 := func(d stats.Dist) int {
		n := int(d.Sample(g))
		if n < 1 {
			n = 1
		}
		return n
	}
	for b := 0; b < cfg.Backbones; b++ {
		bb := add(root, Backbone, "", -1)
		for r := 0; r < atLeast1(cfg.RegionsPerBackbone); r++ {
			reg := add(bb, Regional, "", region)
			for o := 0; o < atLeast1(cfg.OrgsPerRegion); o++ {
				gw := add(reg, Gateway, "", region)
				for c := 0; c < atLeast1(cfg.ClientsPerOrg); c++ {
					add(gw, Client,
						trace.ClientID(fmt.Sprintf("c%05d.org%03d", clientN, org)), region)
					clientN++
				}
				org++
			}
			region++
		}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("netsim: generated topology failed validation: %w", err)
	}
	return t, nil
}

// NumRegions returns the count of regional subtrees.
func (t *Topology) NumRegions() int {
	max := -1
	for i := range t.Nodes {
		if t.Nodes[i].Region > max {
			max = t.Nodes[i].Region
		}
	}
	return max + 1
}
