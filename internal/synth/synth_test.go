package synth

import (
	"testing"
	"time"

	"specweb/internal/netsim"
	"specweb/internal/stats"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

func tinySetup(t *testing.T, seed int64) (*webgraph.Site, Config) {
	t.Helper()
	site, err := webgraph.Generate(webgraph.TinySite(), stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(site, nil)
	cfg.Days = 7
	cfg.SessionsPerDay = 40
	cfg.RemoteClients = 100
	cfg.LocalClients = 10
	return site, cfg
}

func gen(t *testing.T, cfg Config, seed int64) *Result {
	t.Helper()
	res, err := Generate(cfg, stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGenerateBasics(t *testing.T) {
	_, cfg := tinySetup(t, 1)
	res := gen(t, cfg, 2)
	if res.Trace.Len() < 500 {
		t.Fatalf("trace has %d requests, want ≥500 for 7 days × 40 sessions", res.Trace.Len())
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	first, last, _ := res.Trace.Span()
	if first.Before(cfg.Start) {
		t.Errorf("first request %v before start %v", first, cfg.Start)
	}
	// Navigation extends past the last arrival, but not unboundedly.
	if last.After(cfg.Start.Add(time.Duration(cfg.Days+2) * 24 * time.Hour)) {
		t.Errorf("last request %v way past horizon", last)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	_, cfg := tinySetup(t, 3)
	a := gen(t, cfg, 5)
	b := gen(t, cfg, 5)
	if a.Trace.Len() != b.Trace.Len() || len(a.Updates) != len(b.Updates) {
		t.Fatalf("sizes differ: %d/%d vs %d/%d",
			a.Trace.Len(), len(a.Updates), b.Trace.Len(), len(b.Updates))
	}
	for i := range a.Trace.Requests {
		ra, rb := a.Trace.Requests[i], b.Trace.Requests[i]
		if ra != rb {
			t.Fatalf("request %d differs: %+v vs %+v", i, ra, rb)
		}
	}
	c := gen(t, cfg, 6)
	if c.Trace.Len() == a.Trace.Len() && c.Trace.Requests[0] == a.Trace.Requests[0] {
		t.Error("different seeds produced identical traces")
	}
}

func TestRemoteLocalMix(t *testing.T) {
	_, cfg := tinySetup(t, 7)
	res := gen(t, cfg, 8)
	f := res.Trace.RemoteFraction()
	if f < 0.35 || f > 0.8 {
		t.Errorf("remote fraction %v, want ≈0.55 for LocalSessionFraction=0.45", f)
	}
}

func TestAudienceBiasShapesAccess(t *testing.T) {
	site, cfg := tinySetup(t, 9)
	cfg.Days = 20
	cfg.SessionsPerDay = 80
	res := gen(t, cfg, 10)

	// For entry pages (where bias applies directly), local-audience pages
	// should see a clearly lower remote fraction than remote-audience ones.
	type acc struct{ remote, total int }
	byDoc := map[webgraph.DocID]*acc{}
	for i := range res.Trace.Requests {
		r := &res.Trace.Requests[i]
		a := byDoc[r.Doc]
		if a == nil {
			a = &acc{}
			byDoc[r.Doc] = a
		}
		a.total++
		if r.Remote {
			a.remote++
		}
	}
	var localSum, localN, remoteSum, remoteN float64
	for _, e := range site.Entries {
		a := byDoc[e]
		if a == nil || a.total < 10 {
			continue
		}
		frac := float64(a.remote) / float64(a.total)
		switch site.Doc(e).Audience {
		case webgraph.LocalOnly:
			localSum += frac
			localN++
		case webgraph.RemoteOnly:
			remoteSum += frac
			remoteN++
		}
	}
	if localN == 0 || remoteN == 0 {
		t.Skip("tiny site lacks both audience classes among entries")
	}
	if localSum/localN >= remoteSum/remoteN {
		t.Errorf("local-audience entry remote-fraction %.2f >= remote-audience %.2f",
			localSum/localN, remoteSum/remoteN)
	}
}

func TestEmbeddedFollowPages(t *testing.T) {
	site, cfg := tinySetup(t, 11)
	res := gen(t, cfg, 12)
	// Find a page with embedded objects and verify each of its requests is
	// followed by its embedded objects from the same client within ~1s.
	var page *webgraph.Document
	for i := range site.Docs {
		if site.Docs[i].Kind == webgraph.Page && len(site.Docs[i].Embedded) > 0 {
			page = &site.Docs[i]
			break
		}
	}
	if page == nil {
		t.Skip("no page with embedded objects")
	}
	byClient := res.Trace.ByClient()
	checked := 0
	for _, reqs := range byClient {
		for i := range reqs {
			if reqs[i].Doc != page.ID {
				continue
			}
			want := map[webgraph.DocID]bool{}
			for _, e := range page.Embedded {
				want[e] = true
			}
			for j := i + 1; j < len(reqs) && len(want) > 0; j++ {
				if reqs[j].Time.Sub(reqs[i].Time) > 5*time.Second {
					break
				}
				delete(want, reqs[j].Doc)
			}
			if len(want) > 0 {
				t.Fatalf("page %d at %v missing embedded %v", page.ID, reqs[i].Time, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Skipf("page %d never requested", page.ID)
	}
}

func TestSessionStructure(t *testing.T) {
	_, cfg := tinySetup(t, 13)
	res := gen(t, cfg, 14)
	sessions := res.Trace.Sessions(30 * time.Minute)
	if len(sessions) < 100 {
		t.Errorf("found %d sessions, want roughly days×rate = 280", len(sessions))
	}
	strides := res.Trace.Strides(5 * time.Second)
	if len(strides) <= len(sessions) {
		t.Errorf("strides (%d) should outnumber sessions (%d)", len(strides), len(sessions))
	}
	// Mean requests per session should be a handful, as in the paper
	// (205,925 / 20,000 ≈ 10).
	mean := float64(res.Trace.Len()) / float64(len(sessions))
	if mean < 2 || mean > 40 {
		t.Errorf("mean requests/session = %v, want single/double digits", mean)
	}
}

func TestUpdateLog(t *testing.T) {
	site, cfg := tinySetup(t, 15)
	cfg.Days = 60
	res := gen(t, cfg, 16)
	if len(res.Updates) == 0 {
		t.Fatal("no updates generated")
	}
	perDoc := map[webgraph.DocID]int{}
	for _, u := range res.Updates {
		if u.Day < 0 || u.Day >= cfg.Days {
			t.Fatalf("update day %d outside [0,%d)", u.Day, cfg.Days)
		}
		perDoc[u.Doc]++
	}
	// Mutable docs (2%/day) should update noticeably more often than
	// immutable ones (0.4%/day) in aggregate.
	var mutUpd, mutDocs, immUpd, immDocs float64
	for i := range site.Docs {
		d := &site.Docs[i]
		if d.Kind != webgraph.Page {
			continue
		}
		if d.UpdateProb >= 0.02 {
			mutUpd += float64(perDoc[d.ID])
			mutDocs++
		} else {
			immUpd += float64(perDoc[d.ID])
			immDocs++
		}
	}
	if mutDocs == 0 {
		t.Skip("no mutable pages in tiny site")
	}
	if mutUpd/mutDocs <= immUpd/immDocs {
		t.Errorf("mutable update rate %.2f <= immutable %.2f",
			mutUpd/mutDocs, immUpd/immDocs)
	}
}

func TestTopologyPopulation(t *testing.T) {
	site, _ := tinySetup(t, 17)
	topo, err := netsim.Generate(netsim.TinyConfig(), stats.NewRNG(18))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(site, topo)
	cfg.Days = 5
	cfg.SessionsPerDay = 30
	res := gen(t, cfg, 19)
	// Every client in the trace must exist in the topology.
	for _, c := range res.Trace.Clients() {
		if _, ok := topo.ClientNode(c); !ok {
			t.Fatalf("trace client %s not in topology", c)
		}
	}
	// Remote flags must agree with topology position.
	for i := range res.Trace.Requests {
		r := &res.Trace.Requests[i]
		nid, _ := topo.ClientNode(r.Client)
		isLAN := topo.Node(topo.Node(nid).Parent).Kind == netsim.LANGateway
		if r.Remote == isLAN {
			t.Fatalf("request by %s remote=%v but LAN=%v", r.Client, r.Remote, isLAN)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	site, cfg := tinySetup(t, 21)
	bad := cfg
	bad.Site = nil
	if _, err := Generate(bad, stats.NewRNG(1)); err == nil {
		t.Error("nil site accepted")
	}
	bad = cfg
	bad.Days = 0
	if _, err := Generate(bad, stats.NewRNG(1)); err == nil {
		t.Error("zero days accepted")
	}
	bad = cfg
	bad.SessionsPerDay = 0
	if _, err := Generate(bad, stats.NewRNG(1)); err == nil {
		t.Error("zero rate accepted")
	}
	bad = cfg
	bad.FollowLinkProb = 1.5
	if _, err := Generate(bad, stats.NewRNG(1)); err == nil {
		t.Error("bad probability accepted")
	}
	bad = cfg
	bad.AudienceBias = 0.5
	if _, err := Generate(bad, stats.NewRNG(1)); err == nil {
		t.Error("bias < 1 accepted")
	}
	bad = cfg
	bad.ThinkTime = nil
	if _, err := Generate(bad, stats.NewRNG(1)); err == nil {
		t.Error("nil distribution accepted")
	}
	bad = cfg
	bad.LocalClients = 0
	bad.RemoteClients = 0
	if _, err := Generate(bad, stats.NewRNG(1)); err == nil {
		t.Error("empty population accepted")
	}
	bad = DefaultConfig(site, nil)
	bad.LocalClients = 0
	bad.LocalSessionFraction = 0.3
	if _, err := Generate(bad, stats.NewRNG(1)); err == nil {
		t.Error("local sessions without local clients accepted")
	}
}

func TestRequestedDocs(t *testing.T) {
	_, cfg := tinySetup(t, 23)
	res := gen(t, cfg, 24)
	docs := RequestedDocs(res.Trace)
	if len(docs) < 10 {
		t.Errorf("only %d distinct docs requested", len(docs))
	}
	for i := 1; i < len(docs); i++ {
		if docs[i] <= docs[i-1] {
			t.Fatal("RequestedDocs not sorted/unique")
		}
	}
}

func TestNoiseInjectionAndCleanup(t *testing.T) {
	site, cfg := tinySetup(t, 31)
	cfg.Noise = 0.1
	res := gen(t, cfg, 32)

	var junk int
	for i := range res.Trace.Requests {
		r := &res.Trace.Requests[i]
		if r.Doc == webgraph.None {
			junk++
		}
	}
	if junk == 0 {
		t.Fatal("no noise injected despite Noise=0.1")
	}
	// The paper's preprocessing removes all of it (aliases are renamed and
	// kept).
	opts := trace.DefaultPreprocess()
	opts.Aliases = map[string]string{"/": site.Doc(site.Entries[0]).Path}
	clean, st := trace.Preprocess(res.Trace, opts, func(p string) (webgraph.DocID, bool) {
		d := site.ByPath(p)
		if d == nil {
			return webgraph.None, false
		}
		return d.ID, true
	})
	if err := func() error { clean.SortByTime(); return clean.Validate() }(); err != nil {
		t.Fatal(err)
	}
	for i := range clean.Requests {
		if clean.Requests[i].Doc == webgraph.None {
			t.Fatal("unresolved request survived preprocessing")
		}
	}
	if st.DroppedMissing == 0 || st.DroppedScripts == 0 || st.DroppedStatus == 0 || st.Renamed == 0 {
		t.Errorf("preprocessing stats %+v: every junk class should appear", st)
	}
	if clean.Len() <= res.Trace.Len()-junk-1 {
		t.Errorf("cleaned %d of %d; aliases should have been kept", clean.Len(), res.Trace.Len())
	}
}
