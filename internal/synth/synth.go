// Package synth generates synthetic access traces against a webgraph.Site,
// standing in for the 1995 cs-www.bu.edu HTTP logs that drove the paper's
// evaluation (205,925 accesses, 8,474 clients, >20,000 sessions over
// January–March 1995).
//
// The generator is a random surfer with session structure:
//
//   - Sessions arrive as a Poisson process over the simulated days, issued
//     by a population of local (LAN) and remote clients.
//   - A session starts at an entry page drawn Zipf-skewed — reweighted by
//     the page's audience (local pages for local clients) and, for remote
//     clients, by a per-region permutation of entry preference. The former
//     yields the paper's remote/local/global popularity classes (§2), the
//     latter its geographic locality of reference.
//   - Within a session the surfer alternates traversal strides (following
//     uniformly-chosen anchors with short think times — the paper's
//     traversal dependencies with probability peaks at 1/k) and jumps to a
//     fresh entry page after a long pause.
//   - Every page view also requests the page's embedded objects (the
//     paper's embedding dependencies, p[i,j] = 1).
//
// Every request a surfer makes is emitted: the output models a server-side
// log with cache-less clients, matching the paper's setup where client
// caching is imposed later by the simulator, not baked into the trace.
//
// The generator also emits the site's document-update log (per-day update
// draws from each document's UpdateProb), which §2's mutability
// classification and the dissemination simulator's re-push accounting need.
package synth

import (
	"fmt"
	"sort"
	"time"

	"specweb/internal/netsim"
	"specweb/internal/stats"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// Config parameterizes trace generation.
type Config struct {
	Site *webgraph.Site
	// Topology optionally supplies the client population and its regions.
	// When nil, a flat population of RemoteClients + LocalClients is used.
	Topology *netsim.Topology

	// Population (used only when Topology == nil).
	RemoteClients int
	LocalClients  int

	// Time structure.
	Start time.Time
	Days  int
	// SessionsPerDay is the mean of the Poisson session-arrival process.
	SessionsPerDay float64
	// LocalSessionFraction is the probability a session comes from a local
	// client.
	LocalSessionFraction float64

	// Navigation.
	PagesPerSession stats.Dist // pages viewed per session (≥1)
	ThinkTime       stats.Dist // seconds between page views inside a stride
	JumpGap         stats.Dist // seconds of pause when a new stride begins
	FollowLinkProb  float64    // continue the stride by following an anchor
	// EmbeddedDelay is the spacing in seconds between a page request and
	// its embedded-object requests (browsers fetched them back-to-back).
	EmbeddedDelay float64

	// Popularity shaping.
	EntrySkew float64 // overrides Site.EntrySkew when > 0
	// AudienceBias is the weight multiplier favoring pages whose audience
	// matches the requesting client (≥1). 1 disables the remote/local
	// structure; the paper's three classes need a strong bias.
	AudienceBias float64
	// GeoLocality is the probability that a remote client's entry choice
	// uses its region's permuted preference order rather than the global
	// one. 0 disables geographic locality.
	GeoLocality float64

	// Noise is the fraction of extra junk requests interleaved into the
	// trace — 404s for missing documents, CGI script hits, and accesses
	// through the "/" alias — the stuff the paper's preprocessing footnote
	// removes ("removal of accesses to non-existent documents, to live
	// documents, and to scripts, as well as renaming accesses to
	// aliases"). 0 produces a clean trace.
	Noise float64

	// Scenario overlays one adversarial profile (see scenario.go). The
	// zero value generates the baseline workload.
	Scenario Scenario
}

// DefaultConfig returns a configuration calibrated to the paper's trace
// scale: with the DepartmentSite profile and ≈90 days it produces roughly
// 200k requests from thousands of clients.
func DefaultConfig(site *webgraph.Site, topo *netsim.Topology) Config {
	return Config{
		Site:                 site,
		Topology:             topo,
		RemoteClients:        2000,
		LocalClients:         60,
		Start:                time.Date(1995, time.January, 1, 0, 0, 0, 0, time.UTC),
		Days:                 90,
		SessionsPerDay:       220,
		LocalSessionFraction: 0.45,
		PagesPerSession:      stats.NewGeometric(0.22), // ≈3.5 extra pages → ≈4.5 views
		ThinkTime:            stats.NewLognormal(0.6, 0.6),
		JumpGap:              stats.NewLognormal(4.6, 0.5), // ≈100 s pauses
		FollowLinkProb:       0.72,
		EmbeddedDelay:        0.3,
		AudienceBias:         12,
		GeoLocality:          0.6,
	}
}

// Update is one document-modification event.
type Update struct {
	Day  int
	Doc  webgraph.DocID
	Time time.Time
}

// Result bundles the generated trace with the update log.
type Result struct {
	Trace   *trace.Trace
	Updates []Update
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Site == nil {
		return fmt.Errorf("synth: nil site")
	}
	if c.Days <= 0 {
		return fmt.Errorf("synth: Days must be > 0, got %d", c.Days)
	}
	if c.SessionsPerDay <= 0 {
		return fmt.Errorf("synth: SessionsPerDay must be > 0, got %v", c.SessionsPerDay)
	}
	if c.Topology == nil && c.RemoteClients+c.LocalClients <= 0 {
		return fmt.Errorf("synth: no client population")
	}
	if c.PagesPerSession == nil || c.ThinkTime == nil || c.JumpGap == nil {
		return fmt.Errorf("synth: nil navigation distribution")
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"LocalSessionFraction", c.LocalSessionFraction},
		{"FollowLinkProb", c.FollowLinkProb},
		{"GeoLocality", c.GeoLocality},
		{"Noise", c.Noise},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("synth: %s = %v outside [0,1]", p.name, p.v)
		}
	}
	if c.AudienceBias < 1 {
		return fmt.Errorf("synth: AudienceBias must be >= 1, got %v", c.AudienceBias)
	}
	return c.Scenario.validate()
}

type client struct {
	id     trace.ClientID
	remote bool
	region int
}

// Generate produces a trace and update log. The output trace is
// chronologically sorted and passes trace.Validate.
func Generate(cfg Config, g *stats.RNG) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	site := cfg.Site

	locals, remotes := population(cfg)
	if len(locals) == 0 && cfg.LocalSessionFraction > 0 {
		return nil, fmt.Errorf("synth: LocalSessionFraction > 0 but no local clients")
	}
	if len(remotes) == 0 && cfg.LocalSessionFraction < 1 {
		return nil, fmt.Errorf("synth: remote sessions required but no remote clients")
	}

	ec := newEntryChooser(site, cfg, g.Split("entries"))
	nav := g.Split("nav")
	arr := g.Split("arrivals")
	upd := g.Split("updates")
	sr := newScenarioRuntime(cfg, site, g.Split("scenario"))

	res := &Result{Trace: &trace.Trace{}}

	// Sessions arrive with exponential gaps at rate SessionsPerDay per day.
	day := 24 * time.Hour
	horizon := cfg.Start.Add(time.Duration(cfg.Days) * day)
	gapMean := float64(day) / cfg.SessionsPerDay
	at := cfg.Start
	for {
		at = at.Add(time.Duration(arr.ExpFloat64() * gapMean))
		if !at.Before(horizon) {
			break
		}
		var cl client
		if arr.Bool(cfg.LocalSessionFraction) {
			cl = locals[arr.Intn(len(locals))]
		} else {
			cl = remotes[arr.Intn(len(remotes))]
		}
		if !sr.keepSession(at) {
			continue
		}
		emitSession(res.Trace, site, cfg, ec, nav, cl, at, sr.entryOverride(cl, at))
	}
	sr.emitRobots(res.Trace)

	// Noise: junk requests the preprocessing stage exists to remove.
	if cfg.Noise > 0 {
		ng := g.Split("noise")
		n := int(cfg.Noise * float64(res.Trace.Len()))
		all := append(append([]client(nil), locals...), remotes...)
		span := horizon.Sub(cfg.Start)
		for i := 0; i < n; i++ {
			cl := all[ng.Intn(len(all))]
			at := cfg.Start.Add(time.Duration(ng.Float64() * float64(span)))
			req := trace.Request{
				Time:   at,
				Client: cl.id,
				Doc:    webgraph.None,
				Remote: cl.remote,
			}
			switch ng.Intn(3) {
			case 0: // non-existent document: a 404, or a 200 for a
				// document that existed when logged but not on the
				// current site (deleted mid-trace)
				req.Path = fmt.Sprintf("/missing/m%04d.html", ng.Intn(5000))
				if ng.Bool(0.5) {
					req.Status = 404
				} else {
					req.Status = 200
					req.Size = 1024
				}
			case 1: // live document / script
				req.Path = fmt.Sprintf("/cgi-bin/query?q=%d", ng.Intn(1000))
				req.Status = 200
				req.Size = 512
			default: // alias of the home page
				req.Path = "/"
				req.Status = 200
				req.Size = site.Doc(site.Entries[0]).Size
			}
			res.Trace.Requests = append(res.Trace.Requests, req)
		}
	}

	// Update log: one draw per document per day.
	for d := 0; d < cfg.Days; d++ {
		when := cfg.Start.Add(time.Duration(d)*day + 12*time.Hour)
		for i := range site.Docs {
			if upd.Bool(site.Docs[i].UpdateProb) {
				res.Updates = append(res.Updates, Update{Day: d, Doc: site.Docs[i].ID, Time: when})
			}
		}
	}

	res.Trace.SortByTime()
	return res, nil
}

func population(cfg Config) (locals, remotes []client) {
	if cfg.Topology != nil {
		t := cfg.Topology
		for _, cid := range t.Clients() {
			nid, _ := t.ClientNode(cid)
			n := t.Node(nid)
			c := client{id: cid, region: n.Region}
			if t.Node(n.Parent).Kind == netsim.LANGateway {
				locals = append(locals, c)
			} else {
				c.remote = true
				remotes = append(remotes, c)
			}
		}
		return locals, remotes
	}
	for i := 0; i < cfg.LocalClients; i++ {
		locals = append(locals, client{id: trace.ClientID(fmt.Sprintf("ws%03d.local", i))})
	}
	for i := 0; i < cfg.RemoteClients; i++ {
		// Without a topology, spread remote clients over 8 synthetic
		// regions so geographic locality still has structure.
		remotes = append(remotes, client{
			id:     trace.ClientID(fmt.Sprintf("c%05d.org%03d", i, i%97)),
			remote: true,
			region: i % 8,
		})
	}
	return locals, remotes
}

// entryChooser draws session entry pages with Zipf skew, audience
// reweighting, and per-region permutations.
type entryChooser struct {
	site    *webgraph.Site
	entries []webgraph.DocID
	zipf    *stats.Zipf
	bias    float64
	geo     float64
	// perms[r] is region r's preference order over entries.
	perms map[int][]int
	g     *stats.RNG
}

func newEntryChooser(site *webgraph.Site, cfg Config, g *stats.RNG) *entryChooser {
	skew := site.EntrySkew
	if cfg.EntrySkew > 0 {
		skew = cfg.EntrySkew
	}
	return &entryChooser{
		site:    site,
		entries: site.Entries,
		zipf:    stats.NewZipf(len(site.Entries), skew),
		bias:    cfg.AudienceBias,
		geo:     cfg.GeoLocality,
		perms:   make(map[int][]int),
		g:       g,
	}
}

func (e *entryChooser) perm(region int) []int {
	if p, ok := e.perms[region]; ok {
		return p
	}
	// Deterministic per-region permutation: derived from a child stream so
	// the set of regions touched does not perturb other draws.
	pg := e.g.Split(fmt.Sprintf("region-%d", region))
	p := pg.Perm(len(e.entries))
	e.perms[region] = p
	return p
}

// choose draws an entry page for the given client. Audience reweighting is
// by rejection: a draw whose audience conflicts with the client is kept only
// with probability 1/bias.
func (e *entryChooser) choose(cl client) webgraph.DocID {
	for attempt := 0; ; attempt++ {
		rank := e.zipf.Rank(e.g) - 1
		idx := rank
		if cl.remote && cl.region >= 0 && e.g.Bool(e.geo) {
			idx = e.perm(cl.region)[rank]
		}
		id := e.entries[idx]
		if attempt >= 24 {
			return id // give up rejecting; keeps termination unconditional
		}
		aud := e.site.Doc(id).Audience
		mismatch := (cl.remote && aud == webgraph.LocalOnly) ||
			(!cl.remote && aud == webgraph.RemoteOnly)
		if !mismatch || e.g.Bool(1/e.bias) {
			return id
		}
	}
}

// emitSession walks one surfing session and appends its requests. A
// scenario can force the initial entry via forced (webgraph.None defers to
// the baseline chooser); mid-session jumps always use the chooser.
func emitSession(tr *trace.Trace, site *webgraph.Site, cfg Config,
	ec *entryChooser, g *stats.RNG, cl client, start time.Time,
	forced webgraph.DocID) {

	pages := int(cfg.PagesPerSession.Sample(g)) + 1
	at := start
	cur := forced
	if cur == webgraph.None {
		cur = ec.choose(cl)
	}
	emitPageView(tr, site, cfg, cl, &at, cur)

	for v := 1; v < pages; v++ {
		links := site.Doc(cur).Links
		if len(links) > 0 && g.Bool(cfg.FollowLinkProb) {
			// Continue the stride: short think time, uniform anchor.
			at = at.Add(secs(cfg.ThinkTime.Sample(g)))
			cur = links[g.Intn(len(links))]
		} else {
			// New stride: long pause, fresh entry.
			at = at.Add(secs(cfg.JumpGap.Sample(g)))
			cur = ec.choose(cl)
		}
		emitPageView(tr, site, cfg, cl, &at, cur)
	}
}

func emitPageView(tr *trace.Trace, site *webgraph.Site, cfg Config,
	cl client, at *time.Time, page webgraph.DocID) {

	d := site.Doc(page)
	tr.Requests = append(tr.Requests, trace.Request{
		Time:   *at,
		Client: cl.id,
		Doc:    page,
		Size:   d.Size,
		Remote: cl.remote,
		Status: 200,
		Path:   d.Path,
	})
	for _, e := range d.Embedded {
		*at = at.Add(secs(cfg.EmbeddedDelay))
		ed := site.Doc(e)
		tr.Requests = append(tr.Requests, trace.Request{
			Time:   *at,
			Client: cl.id,
			Doc:    e,
			Size:   ed.Size,
			Remote: cl.remote,
			Status: 200,
			Path:   ed.Path,
		})
	}
}

func secs(s float64) time.Duration {
	if s < 0 {
		s = 0
	}
	return time.Duration(s * float64(time.Second))
}

// RequestedDocs returns the distinct documents appearing in the trace,
// sorted by ID — the paper's "974 documents accessed during the analysis
// period".
func RequestedDocs(tr *trace.Trace) []webgraph.DocID {
	seen := make(map[webgraph.DocID]bool)
	for i := range tr.Requests {
		seen[tr.Requests[i].Doc] = true
	}
	out := make([]webgraph.DocID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
