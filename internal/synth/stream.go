package synth

import (
	"container/heap"
	"fmt"
	"time"

	"specweb/internal/stats"
	"specweb/internal/trace"
	"specweb/internal/webgraph"
)

// Stream is the streaming counterpart of Generate: instead of
// materializing a whole trace, it exposes one seeded cursor per client,
// each of which derives its entire request sequence from
// splitmix64(seed, client index). Any subset of clients regenerates its
// events independently and byte-identically no matter how many shards
// exist or which process asks — the foundation of distributed replay.
//
// The statistical model matches Generate's random surfer: per-client
// Poisson session arrivals (the superposition over clients reproduces the
// global SessionsPerDay process), Zipf entry choice with audience
// rejection and per-region geographic permutations, link-following
// strides with think times, embedded-object fetches, and optional junk
// noise. The draw *sequences* differ from Generate's shared-stream
// layout, so a streamed workload is a distinct (equally deterministic)
// trace — not a re-encoding of the materialized one. Scenarios are not
// supported: their overlays (flash windows, robot fleets) are inherently
// cross-client and belong to the materialized path.
type Stream struct {
	cfg     Config
	site    *webgraph.Site
	clients []client // locals first, then remotes: the canonical index order
	seed    int64

	start   time.Time
	horizon time.Time
	// localGapMean / remoteGapMean are per-client mean session gaps in
	// nanoseconds; 0 means that class generates no sessions.
	localGapMean  float64
	remoteGapMean float64
	nLocals       int

	entries *streamEntries
}

// streamEntries is the shared, immutable entry-choice model. Region
// permutations are precomputed once from the workload seed (not from any
// cursor's stream), so every cursor sees identical preference orders.
type streamEntries struct {
	site    *webgraph.Site
	entries []webgraph.DocID
	zipf    *stats.Zipf
	bias    float64
	geo     float64
	perms   map[int][]int
}

// NewStream validates the configuration and builds the shared per-client
// stream state. The per-cursor memory is O(1) outside an open session, so
// a million-client population costs megabytes, not the trace's gigabytes.
func NewStream(cfg Config, seed int64) (*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Scenario.Kind != ScenarioNone {
		return nil, fmt.Errorf("synth: scenario %q is not supported by the streaming generator (scenarios are cross-client overlays)", cfg.Scenario.Kind)
	}
	locals, remotes := population(cfg)
	if len(locals) == 0 && cfg.LocalSessionFraction > 0 {
		return nil, fmt.Errorf("synth: LocalSessionFraction > 0 but no local clients")
	}
	if len(remotes) == 0 && cfg.LocalSessionFraction < 1 {
		return nil, fmt.Errorf("synth: remote sessions required but no remote clients")
	}

	day := 24 * time.Hour
	s := &Stream{
		cfg:     cfg,
		site:    cfg.Site,
		clients: append(append([]client(nil), locals...), remotes...),
		seed:    seed,
		start:   cfg.Start,
		horizon: cfg.Start.Add(time.Duration(cfg.Days) * day),
		nLocals: len(locals),
	}
	// Thinning the global Poisson process over the population: each local
	// client runs an independent Poisson process at rate
	// frac·SessionsPerDay/len(locals) per day (remotes analogously), and
	// the superposition reproduces the global arrival statistics.
	if len(locals) > 0 && cfg.LocalSessionFraction > 0 {
		rate := cfg.LocalSessionFraction * cfg.SessionsPerDay / float64(len(locals))
		s.localGapMean = float64(day) / rate
	}
	if len(remotes) > 0 && cfg.LocalSessionFraction < 1 {
		rate := (1 - cfg.LocalSessionFraction) * cfg.SessionsPerDay / float64(len(remotes))
		s.remoteGapMean = float64(day) / rate
	}

	skew := cfg.Site.EntrySkew
	if cfg.EntrySkew > 0 {
		skew = cfg.EntrySkew
	}
	se := &streamEntries{
		site:    cfg.Site,
		entries: cfg.Site.Entries,
		zipf:    stats.NewZipf(len(cfg.Site.Entries), skew),
		bias:    cfg.AudienceBias,
		geo:     cfg.GeoLocality,
		perms:   make(map[int][]int),
	}
	// Precompute every region's permutation from a seed-derived stream so
	// cursors share them without per-cursor O(entries) state.
	pg := stats.NewRNG(seed).Split("stream-entries")
	for i := range s.clients {
		r := s.clients[i].region
		if s.clients[i].remote {
			if _, ok := se.perms[r]; !ok {
				se.perms[r] = pg.Split(fmt.Sprintf("region-%d", r)).Perm(len(se.entries))
			}
		}
	}
	s.entries = se
	return s, nil
}

// NumClients returns the population size (local + remote).
func (s *Stream) NumClients() int { return len(s.clients) }

// ClientID returns the i'th client's ID in canonical index order.
func (s *Stream) ClientID(i int) trace.ClientID { return s.clients[i].id }

// Cursor builds the i'th client's stream cursor. Cursors are independent:
// building one never draws from another's stream, and repeated calls with
// the same index replay the identical sequence.
func (s *Stream) Cursor(i int) *Cursor {
	cl := s.clients[i]
	gap := s.remoteGapMean
	if i < s.nLocals {
		gap = s.localGapMean
	}
	c := &Cursor{
		st:  s,
		cl:  cl,
		g:   stats.NewCursorRNG(s.seed, uint64(i)),
		gap: gap,
	}
	if gap <= 0 {
		c.done = true
		return c
	}
	c.next = s.start.Add(time.Duration(c.g.ExpFloat64() * gap))
	if !c.next.Before(s.horizon) {
		c.done = true
	}
	return c
}

// CursorsWhere builds cursors for every client whose ID passes keep (nil
// keeps all), in canonical index order — the shard-stream constructor.
func (s *Stream) CursorsWhere(keep func(trace.ClientID) bool) []trace.ClientCursor {
	var out []trace.ClientCursor
	for i := range s.clients {
		if keep == nil || keep(s.clients[i].id) {
			out = append(out, s.Cursor(i))
		}
	}
	return out
}

// Cursors builds every client's cursor in canonical index order.
func (s *Stream) Cursors() []trace.ClientCursor { return s.CursorsWhere(nil) }

// Merged returns the canonical-order merge of the whole population.
func (s *Stream) Merged() *trace.Merged { return trace.MergeCursors(s.Cursors()) }

// pendItem is one generated-but-not-yet-yielded request of an open
// session, ordered by (time, per-client sequence number).
type pendItem struct {
	at  int64 // UnixNano
	seq int64
	req trace.Request
}

type pendHeap []pendItem

func (h pendHeap) Len() int { return len(h) }
func (h pendHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h pendHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pendHeap) Push(x any)   { *h = append(*h, x.(pendItem)) }
func (h *pendHeap) Pop() any {
	old := *h
	n := len(old)
	out := old[n-1]
	*h = old[:n-1]
	return out
}

// Cursor streams one client's requests in (time, generation order). Its
// memory is the 8-byte RNG core plus the pending buffer of the currently
// open session — sessions are generated lazily, only when the merge
// actually reaches this client's next arrival, so a large population
// holds in-flight buffers only for the handful of sessions overlapping
// the merge frontier.
type Cursor struct {
	st  *Stream
	cl  client
	g   *stats.RNG
	gap float64 // mean session gap, ns

	next    time.Time // next session arrival (valid while !done)
	done    bool      // arrival process exhausted
	pending pendHeap
	seq     int64
}

// Client returns the cursor's client ID.
func (c *Cursor) Client() trace.ClientID { return c.cl.id }

// PeekTime returns the next request's timestamp without generating the
// session behind it: the next event is either an already-generated
// pending request or the first page view of the next session, which lands
// exactly at the arrival time.
func (c *Cursor) PeekTime() (int64, bool) {
	if c.done {
		if len(c.pending) == 0 {
			return 0, false
		}
		return c.pending[0].at, true
	}
	nxt := c.next.UnixNano()
	if len(c.pending) > 0 && c.pending[0].at <= nxt {
		return c.pending[0].at, true
	}
	return nxt, true
}

// Next yields the client's next request in canonical per-client order.
func (c *Cursor) Next() (trace.Request, bool) {
	for {
		if len(c.pending) > 0 && (c.done || c.pending[0].at <= c.next.UnixNano()) {
			it := heap.Pop(&c.pending).(pendItem)
			if len(c.pending) == 0 {
				// Release the drained session buffer: a large population
				// must not retain every client's peak-session capacity, only
				// the buffers of sessions open at the merge frontier.
				c.pending = nil
			}
			return it.req, true
		}
		if c.done {
			return trace.Request{}, false
		}
		c.genSession()
	}
}

// push enqueues one request, stamping the per-client sequence number that
// makes same-timestamp ordering reproducible.
func (c *Cursor) push(req trace.Request) {
	heap.Push(&c.pending, pendItem{at: req.Time.UnixNano(), seq: c.seq, req: req})
	c.seq++
	// Noise rides per request: with probability Noise, one junk request
	// (404, script hit, or alias access) lands shortly after the real
	// one. Expected junk volume matches Generate's Noise·len(trace); the
	// time-locality keeps the pending buffer session-bounded.
	cfg := &c.st.cfg
	if cfg.Noise > 0 && req.Status == 200 && req.Doc != webgraph.None && c.g.Bool(cfg.Noise) {
		c.pushNoise(req.Time.Add(time.Duration(c.g.Float64() * float64(30*time.Second))))
	}
}

func (c *Cursor) pushNoise(at time.Time) {
	g := c.g
	req := trace.Request{
		Time:   at,
		Client: c.cl.id,
		Doc:    webgraph.None,
		Remote: c.cl.remote,
	}
	switch g.Intn(3) {
	case 0: // non-existent document
		req.Path = fmt.Sprintf("/missing/m%04d.html", g.Intn(5000))
		if g.Bool(0.5) {
			req.Status = 404
		} else {
			req.Status = 200
			req.Size = 1024
		}
	case 1: // live document / script
		req.Path = fmt.Sprintf("/cgi-bin/query?q=%d", g.Intn(1000))
		req.Status = 200
		req.Size = 512
	default: // alias of the home page
		req.Path = "/"
		req.Status = 200
		req.Size = c.st.site.Doc(c.st.site.Entries[0]).Size
	}
	heap.Push(&c.pending, pendItem{at: req.Time.UnixNano(), seq: c.seq, req: req})
	c.seq++
}

// genSession generates the session arriving at c.next into the pending
// buffer and advances the arrival process. The surfer model mirrors
// emitSession: entry choice, link-following strides, jumps, embedded
// objects — all drawn from this client's own stream.
func (c *Cursor) genSession() {
	st, cfg, g := c.st, &c.st.cfg, c.g
	start := c.next

	pages := int(cfg.PagesPerSession.Sample(g)) + 1
	at := start
	cur := st.entries.choose(c.cl, g)
	c.pushPageView(&at, cur)
	for v := 1; v < pages; v++ {
		links := st.site.Doc(cur).Links
		if len(links) > 0 && g.Bool(cfg.FollowLinkProb) {
			at = at.Add(secs(cfg.ThinkTime.Sample(g)))
			cur = links[g.Intn(len(links))]
		} else {
			at = at.Add(secs(cfg.JumpGap.Sample(g)))
			cur = st.entries.choose(c.cl, g)
		}
		c.pushPageView(&at, cur)
	}

	c.next = start.Add(time.Duration(g.ExpFloat64() * c.gap))
	if !c.next.Before(st.horizon) {
		c.done = true
	}
}

func (c *Cursor) pushPageView(at *time.Time, page webgraph.DocID) {
	st, cfg := c.st, &c.st.cfg
	d := st.site.Doc(page)
	c.push(trace.Request{
		Time:   *at,
		Client: c.cl.id,
		Doc:    page,
		Size:   d.Size,
		Remote: c.cl.remote,
		Status: 200,
		Path:   d.Path,
	})
	for _, e := range d.Embedded {
		*at = at.Add(secs(cfg.EmbeddedDelay))
		ed := st.site.Doc(e)
		c.push(trace.Request{
			Time:   *at,
			Client: c.cl.id,
			Doc:    e,
			Size:   ed.Size,
			Remote: c.cl.remote,
			Status: 200,
			Path:   ed.Path,
		})
	}
}

// choose draws an entry page for cl from the cursor's own stream — the
// same Zipf + geographic permutation + audience rejection scheme as the
// materialized generator, against the shared precomputed permutations.
func (e *streamEntries) choose(cl client, g *stats.RNG) webgraph.DocID {
	for attempt := 0; ; attempt++ {
		rank := e.zipf.Rank(g) - 1
		idx := rank
		if cl.remote && cl.region >= 0 && g.Bool(e.geo) {
			if p, ok := e.perms[cl.region]; ok {
				idx = p[rank]
			}
		}
		id := e.entries[idx]
		if attempt >= 24 {
			return id
		}
		aud := e.site.Doc(id).Audience
		mismatch := (cl.remote && aud == webgraph.LocalOnly) ||
			(!cl.remote && aud == webgraph.RemoteOnly)
		if !mismatch || g.Bool(1/e.bias) {
			return id
		}
	}
}
